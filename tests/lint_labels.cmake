# Included by CTest after gtest discovery has registered the lint suite.
# Same multi-label workaround as parallel_labels.cmake: the lint tests are
# fast enough to ride in the tier1 partition as well as `ctest -L lint`.
foreach(t IN LISTS csq_lint_tests_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tier1;lint")
endforeach()
