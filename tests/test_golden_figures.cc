// Golden pins for the paper's figure operating points (Figures 3-6).
//
// Every number below was produced by this repository's own exact analysis
// (analyze_cscq / analyze_csid / analyze_dedicated) and committed as a
// golden: the suite does not re-derive the values, it detects drift. A
// change that moves any pinned mean response by more than one part in 10^6
// fails `ctest -L golden` and must either be fixed or re-pin the goldens in
// the same commit with an explanation.
//
// The operating points cover both workloads the paper plots: exponential
// long jobs (Figures 3-4) and 2-stage Coxian longs with C^2 = 8
// (Figures 5-6), at short loads below, near, and beyond the Dedicated
// frontier rho_S = 1. Points where a policy is outside its stability region
// pin the *rejection* instead (UnstableError), so frontier drift is caught
// too.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "analysis/batch.h"
#include "analysis/cscq.h"
#include "analysis/csid.h"
#include "analysis/dedicated.h"
#include "core/config.h"
#include "core/status.h"
#include "core/sweep.h"

namespace {

using namespace csq;

// Relative tolerance for a pinned value: tight enough that a perturbed
// busy-period moment, phase-type fit, or QBD tolerance shows up, loose
// enough to absorb compiler/libm variation across rebuilds.
constexpr double kRelTol = 1e-6;

void expect_golden(double actual, double golden) {
  EXPECT_NEAR(actual, golden, std::abs(golden) * kRelTol);
}

struct PinnedPoint {
  const char* tag;  // figure + operating point, for failure messages
  double rho_s, rho_l, mean_l, scv_l;
  // NaN = policy unstable at this point (the pin is the rejection).
  double cscq_short, cscq_long;
  double csid_short, csid_long;
  double ded_short, ded_long;
};

constexpr double kUnstable = std::numeric_limits<double>::quiet_NaN();

// clang-format off
const PinnedPoint kPins[] = {
    // Figure 3: equal mean sizes (1/1), exponential, rho_L = 0.5, at the
    // Dedicated frontier rho_S = 1 (the paper's headline comparison).
    {"fig3 rho_S=1.0 rho_L=0.5 exp 1/1", 1.0, 0.5, 1.0, 1.0,
     2.5384248764725692, 2.2414250503734587,
     3.8077995749228268, 2.5,
     kUnstable, kUnstable},
    // Figure 4 panel (b): shorts/longs 1/10, exponential, rho_L = 0.5.
    {"fig4 rho_S=0.5 rho_L=0.5 exp 1/10", 0.5, 0.5, 10.0, 1.0,
     1.4677035546350075, 20.055058775844572,
     1.5195780267208951, 20.333333333333332,
     2.0, 20.0},
    {"fig4 rho_S=0.9 rho_L=0.5 exp 1/10", 0.9, 0.5, 10.0, 1.0,
     3.0969795568265628, 20.169075232550227,
     3.5790878244835156, 20.473684210526315,
     10.000000000000002, 20.0},
    {"fig4 rho_S=1.2 rho_L=0.5 exp 1/10", 1.2, 0.5, 10.0, 1.0,
     10.073928471209303, 20.31217344791121,
     25.396424461300626, 20.545454545454547,
     kUnstable, kUnstable},
    // Figure 5 panel (b): Coxian longs with C^2 = 8.
    {"fig5 rho_S=0.9 rho_L=0.5 cx8 1/10", 0.9, 0.5, 10.0, 8.0,
     3.6374514323514329, 55.164318062857497,
     4.0284627350986479, 55.473684210526315,
     10.000000000000002, 55.0},
    {"fig5 rho_S=1.2 rho_L=0.5 cx8 1/10", 1.2, 0.5, 10.0, 8.0,
     29.738322977613084, 55.309330542908015,
     69.425760788463748, 55.545454545454547,
     kUnstable, kUnstable},
    // Figure 6: rho_S = 1.5 fixed, response vs rho_L. CS-ID's frontier at
    // rho_S = 1.5 is rho_L = 1/6, so it is pinned stable at 0.1 and pinned
    // *unstable* at 0.3; CS-CQ holds until rho_L = 0.5.
    {"fig6 rho_S=1.5 rho_L=0.1 cx8 1/10", 1.5, 0.1, 10.0, 8.0,
     7.0126134838035137, 15.342556280052438,
     44.677320580689049, 15.599999999999998,
     kUnstable, kUnstable},
    {"fig6 rho_S=1.5 rho_L=0.3 cx8 1/10", 1.5, 0.3, 10.0, 8.0,
     37.606977625377851, 29.686401508313619,
     kUnstable, kUnstable,
     kUnstable, kUnstable},
};
// clang-format on

class GoldenFigures : public ::testing::TestWithParam<PinnedPoint> {};

TEST_P(GoldenFigures, CscqMatchesPin) {
  const PinnedPoint& p = GetParam();
  SCOPED_TRACE(p.tag);
  const SystemConfig c = SystemConfig::paper_setup(p.rho_s, p.rho_l, 1.0, p.mean_l, p.scv_l);
  if (std::isnan(p.cscq_short)) {
    EXPECT_THROW((void)analysis::analyze_cscq(c), UnstableError);
    return;
  }
  const analysis::CscqResult r = analysis::analyze_cscq(c);
  expect_golden(r.metrics.shorts.mean_response, p.cscq_short);
  expect_golden(r.metrics.longs.mean_response, p.cscq_long);
}

TEST_P(GoldenFigures, CsidMatchesPin) {
  const PinnedPoint& p = GetParam();
  SCOPED_TRACE(p.tag);
  const SystemConfig c = SystemConfig::paper_setup(p.rho_s, p.rho_l, 1.0, p.mean_l, p.scv_l);
  if (std::isnan(p.csid_short)) {
    EXPECT_THROW((void)analysis::analyze_csid(c), UnstableError);
    return;
  }
  const analysis::CsidResult r = analysis::analyze_csid(c);
  expect_golden(r.metrics.shorts.mean_response, p.csid_short);
  expect_golden(r.metrics.longs.mean_response, p.csid_long);
}

TEST_P(GoldenFigures, DedicatedMatchesPin) {
  const PinnedPoint& p = GetParam();
  SCOPED_TRACE(p.tag);
  const SystemConfig c = SystemConfig::paper_setup(p.rho_s, p.rho_l, 1.0, p.mean_l, p.scv_l);
  if (std::isnan(p.ded_short)) {
    EXPECT_THROW((void)analysis::analyze_dedicated(c), UnstableError);
    return;
  }
  const PolicyMetrics m = analysis::analyze_dedicated(c);
  expect_golden(m.shorts.mean_response, p.ded_short);
  expect_golden(m.longs.mean_response, p.ded_long);
}

INSTANTIATE_TEST_SUITE_P(OperatingPoints, GoldenFigures, ::testing::ValuesIn(kPins),
                         [](const ::testing::TestParamInfo<PinnedPoint>& info) {
                           return "Point" + std::to_string(info.index);
                         });

// The shared sweep grids are part of the golden surface too: the figure
// drivers and any pinned sweep consumers must sample identical abscissae.
TEST(GoldenGrids, FigureGridsArePinned) {
  const std::vector<double> rs = fig_grid_rho_short();
  ASSERT_EQ(rs.size(), 29u);
  EXPECT_DOUBLE_EQ(rs.front(), 0.05);
  EXPECT_DOUBLE_EQ(rs.back(), 1.45);
  const std::vector<double> rls = fig_grid_rho_long_shorts();
  ASSERT_EQ(rls.size(), 25u);
  EXPECT_DOUBLE_EQ(rls.front(), 0.01);
  EXPECT_DOUBLE_EQ(rls.back(), 0.49);
  const std::vector<double> rll = fig_grid_rho_long_longs();
  ASSERT_EQ(rll.size(), 25u);
  EXPECT_DOUBLE_EQ(rll.front(), 0.02);
  EXPECT_DOUBLE_EQ(rll.back(), 0.96);
}

// The batched entry point must reproduce every pin exactly as the direct
// calls do: one workspace amortized over all of Figures 3-6 is the way the
// figure drivers will run, so the pins are exercised through it too. The
// comparison against the direct call is exact (==), not kRelTol — workspace
// reuse is not allowed to move a result by even one bit.
TEST(GoldenFigures, BatchedAnalysisReproducesEveryPinBitForBit) {
  std::vector<analysis::BatchRequest> items;
  for (const PinnedPoint& p : kPins)
    for (Policy policy : {Policy::kCsCq, Policy::kCsId}) {
      analysis::BatchRequest req;
      req.policy = policy;
      req.config = SystemConfig::paper_setup(p.rho_s, p.rho_l, 1.0, p.mean_l, p.scv_l);
      items.push_back(req);
    }

  const std::vector<AnalyzeOutcome> out = analysis::analyze_batch(items);
  ASSERT_EQ(out.size(), items.size());

  std::size_t idx = 0;
  for (const PinnedPoint& p : kPins) {
    SCOPED_TRACE(p.tag);
    const AnalyzeOutcome& cscq = out[idx++];
    const AnalyzeOutcome& csid = out[idx++];
    const SystemConfig c = SystemConfig::paper_setup(p.rho_s, p.rho_l, 1.0, p.mean_l, p.scv_l);

    if (std::isnan(p.cscq_short)) {
      EXPECT_FALSE(cscq.ok());
    } else {
      ASSERT_TRUE(cscq.ok()) << cscq.status.message;
      const analysis::CscqResult direct = analysis::analyze_cscq(c);
      EXPECT_EQ(cscq.metrics.shorts.mean_response, direct.metrics.shorts.mean_response);
      EXPECT_EQ(cscq.metrics.longs.mean_response, direct.metrics.longs.mean_response);
      expect_golden(cscq.metrics.shorts.mean_response, p.cscq_short);
      expect_golden(cscq.metrics.longs.mean_response, p.cscq_long);
    }
    if (std::isnan(p.csid_short)) {
      EXPECT_FALSE(csid.ok());
    } else {
      ASSERT_TRUE(csid.ok()) << csid.status.message;
      const analysis::CsidResult direct = analysis::analyze_csid(c);
      EXPECT_EQ(csid.metrics.shorts.mean_response, direct.metrics.shorts.mean_response);
      EXPECT_EQ(csid.metrics.longs.mean_response, direct.metrics.longs.mean_response);
      expect_golden(csid.metrics.shorts.mean_response, p.csid_short);
      expect_golden(csid.metrics.longs.mean_response, p.csid_long);
    }
  }
}

}  // namespace
