// The csq_serve core (src/serve/): JSON codec, request schema, backoff
// policy, LRU memo-cache, and the Server itself — admission control, budget
// slicing, drain, and the determinism contract (bit-identical responses
// across worker counts).
//
// Suite layout mirrors the ctest labels (tests/serve_labels.cmake):
//   Serve*       tier1;serve — deterministic, no fault injection needed
//   ServeSoak    tier1;serve — the concurrent mixed-traffic soak
//   ServeChaos   chaos       — fault-injected retry/degrade/shed paths;
//                              GTEST_SKIPs unless -DCSQ_FAULT_INJECTION=ON
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/faultpoint.h"
#include "core/status.h"
#include "serve/backoff.h"
#include "serve/cache.h"
#include "serve/json.h"
#include "serve/request.h"
#include "serve/server.h"

namespace csq {
namespace {

using serve::JsonValue;
using serve::parse_json;
using serve::parse_request;
using serve::Request;
using serve::RetryPolicy;
using serve::Server;
using serve::ServerOptions;
using serve::SolverCache;
using serve::Ticket;

// --- helpers ---------------------------------------------------------------

std::string analyze_line(const std::string& id, double rho_s, double rho_l,
                         const std::string& extra = "") {
  return "{\"id\":\"" + id + "\",\"op\":\"analyze\",\"rho_s\":" +
         std::to_string(rho_s) + ",\"rho_l\":" + std::to_string(rho_l) +
         ",\"mean_s\":1,\"mean_l\":1,\"scv_l\":1" + extra + "}";
}

// Field access on a response line; fails the test on schema surprises.
JsonValue parsed(const std::string& response) {
  JsonValue v = parse_json(response);
  EXPECT_TRUE(v.is_object()) << response;
  return v;
}

bool response_ok(const std::string& response) {
  const JsonValue v = parsed(response);
  const JsonValue* ok = v.find("ok");
  return ok != nullptr && ok->as_bool("ok");
}

std::string error_code(const std::string& response) {
  const JsonValue v = parsed(response);
  const JsonValue* err = v.find("error");
  if (err == nullptr || err->find("code") == nullptr) return "";
  return err->find("code")->as_string("code");
}

// A serial server: nothing runs until process_one()/call() drives it.
ServerOptions serial_opts() {
  ServerOptions o;
  o.workers = 0;
  o.request_timeout_ms = 0.0;  // unlimited unless the request says otherwise
  return o;
}

// --- JSON codec ------------------------------------------------------------

TEST(ServeJson, ParsesNestedValuesAndEscapes) {
  const JsonValue v = parse_json(
      "{\"a\": [1, -2.5e1, true, null], \"s\": \"q\\\"\\n\\u0041\"}");
  ASSERT_TRUE(v.is_object());
  const std::vector<JsonValue>& a = v.find("a")->as_array("a");
  ASSERT_EQ(a.size(), 4u);
  EXPECT_DOUBLE_EQ(a[0].as_number("a0"), 1.0);
  EXPECT_DOUBLE_EQ(a[1].as_number("a1"), -25.0);
  EXPECT_TRUE(a[2].as_bool("a2"));
  EXPECT_TRUE(a[3].is_null());
  EXPECT_EQ(v.find("s")->as_string("s"), "q\"\nA");
}

TEST(ServeJson, RejectsHostileInput) {
  EXPECT_THROW((void)parse_json(""), InvalidInputError);
  EXPECT_THROW((void)parse_json("{} trailing"), InvalidInputError);
  EXPECT_THROW((void)parse_json("{\"a\":01}"), InvalidInputError);
  EXPECT_THROW((void)parse_json("{\"a\":+1}"), InvalidInputError);
  EXPECT_THROW((void)parse_json("{\"a\"}"), InvalidInputError);
  EXPECT_THROW((void)parse_json("\"unterminated"), InvalidInputError);
  // Duplicate keys are ambiguous and could smuggle a second value past
  // validation; the parser rejects them outright.
  EXPECT_THROW((void)parse_json("{\"a\":1,\"a\":2}"), InvalidInputError);
  // Depth bomb: past the 64-level cap.
  std::string bomb;
  for (int i = 0; i < 70; ++i) bomb += "[";
  for (int i = 0; i < 70; ++i) bomb += "]";
  EXPECT_THROW((void)parse_json(bomb), InvalidInputError);
  // At a legal depth the same shape is fine.
  std::string deep;
  for (int i = 0; i < 60; ++i) deep += "[";
  for (int i = 0; i < 60; ++i) deep += "]";
  EXPECT_NO_THROW((void)parse_json(deep));
}

TEST(ServeJson, EscapeAndNumberRendering) {
  EXPECT_EQ(serve::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(serve::json_number(1.5), "1.5");
  EXPECT_EQ(serve::json_number(0.0), "0");
  // Non-finite values have no JSON spelling; they render as null.
  EXPECT_EQ(serve::json_number(std::numeric_limits<double>::quiet_NaN()), "null");
}

// --- Request schema --------------------------------------------------------

TEST(ServeRequest, AnalyzeDefaults) {
  const Request r = parse_request(analyze_line("a1", 0.5, 0.5));
  EXPECT_EQ(r.id, "a1");
  EXPECT_EQ(r.op, serve::OpKind::kAnalyze);
  EXPECT_EQ(r.policy, Policy::kCsCq);
  EXPECT_EQ(r.verify, VerifyLevel::kBasic);
  EXPECT_LT(r.timeout_ms, 0.0);  // "server default"
  EXPECT_DOUBLE_EQ(r.cost(), 1.0);
}

TEST(ServeRequest, UnknownFieldsAreRejectedNotIgnored) {
  try {
    (void)parse_request(
        "{\"id\":\"x\",\"op\":\"analyze\",\"rho_i\":0.5,\"rho_l\":0.5,"
        "\"rho_s\":0.5}");
    FAIL() << "typoed field accepted";
  } catch (const InvalidInputError& e) {
    EXPECT_NE(e.status().message.find("rho_i"), std::string::npos);
  }
}

TEST(ServeRequest, ValidationGuards) {
  EXPECT_THROW((void)parse_request("[1,2]"), InvalidInputError);
  EXPECT_THROW((void)parse_request("{\"op\":\"fly\"}"), InvalidInputError);
  EXPECT_THROW((void)parse_request("{\"op\":\"analyze\",\"rho_s\":0.5,"
                                   "\"rho_l\":0.5,\"scv_l\":0.5}"),
               InvalidInputError);
  EXPECT_THROW((void)parse_request("{\"id\":\"" + std::string(300, 'x') +
                                   "\",\"op\":\"ping\"}"),
               InvalidInputError);
  EXPECT_THROW(
      (void)parse_request("{\"op\":\"sweep\",\"axis\":\"rho_s\",\"from\":0.1,"
                          "\"to\":0.5,\"points\":1000,\"rho_l\":0.5}"),
      InvalidInputError);
}

TEST(ServeRequest, CostScalesWithWork) {
  EXPECT_DOUBLE_EQ(parse_request("{\"op\":\"ping\"}").cost(), 0.0);
  const Request sweep = parse_request(
      "{\"op\":\"sweep\",\"axis\":\"rho_s\",\"from\":0.1,\"to\":0.5,"
      "\"points\":32,\"rho_l\":0.5}");
  EXPECT_DOUBLE_EQ(sweep.cost(), 32.0);
  const Request sim = parse_request(
      "{\"op\":\"simulate\",\"rho_s\":0.5,\"rho_l\":0.5,"
      "\"completions\":200000,\"replications\":4}");
  EXPECT_DOUBLE_EQ(sim.cost(), 8.0);
}

TEST(ServeRequest, CacheKeyIsCanonicalAndVerifyAware) {
  const Request a = parse_request(analyze_line("a", 0.5, 0.5));
  const Request b = parse_request(analyze_line("b", 0.5, 0.5));
  EXPECT_EQ(a.cache_key(), b.cache_key());  // id does not enter the key
  const Request c = parse_request(analyze_line("c", 0.5, 0.5, ",\"verify\":\"full\""));
  EXPECT_NE(a.cache_key(), c.cache_key());
  const Request d = parse_request(analyze_line("d", 0.51, 0.5));
  EXPECT_NE(a.cache_key(), d.cache_key());
}

// --- Backoff ---------------------------------------------------------------

TEST(ServeBackoff, DeterministicJitterWithinBounds) {
  const RetryPolicy p;  // 1ms base, x2, 50ms cap, 25% jitter
  const double d1 = serve::backoff_delay_ms(p, "req-1", 1);
  EXPECT_DOUBLE_EQ(d1, serve::backoff_delay_ms(p, "req-1", 1));  // replayable
  EXPECT_NE(d1, serve::backoff_delay_ms(p, "req-2", 1));  // keyed per request
  for (int retry = 1; retry <= 10; ++retry) {
    const double base = std::min(p.base_delay_ms * std::pow(p.multiplier, retry - 1),
                                 p.max_delay_ms);
    const double d = serve::backoff_delay_ms(p, "req-1", retry);
    EXPECT_GE(d, base * (1.0 - p.jitter_fraction));
    EXPECT_LE(d, base * (1.0 + p.jitter_fraction));
  }
  // The cap holds however deep the retry count gets.
  EXPECT_LE(serve::backoff_delay_ms(p, "req-1", 40),
            p.max_delay_ms * (1.0 + p.jitter_fraction));
}

TEST(ServeBackoff, OnlySolverTransientsAreRetryable) {
  EXPECT_TRUE(serve::transient(ErrorCode::kNotConverged));
  EXPECT_TRUE(serve::transient(ErrorCode::kIllConditioned));
  EXPECT_FALSE(serve::transient(ErrorCode::kInvalidInput));
  EXPECT_FALSE(serve::transient(ErrorCode::kUnstable));
  EXPECT_FALSE(serve::transient(ErrorCode::kDeadlineExceeded));
  EXPECT_FALSE(serve::transient(ErrorCode::kCancelled));
  EXPECT_FALSE(serve::transient(ErrorCode::kOverloaded));
}

// --- LRU cache -------------------------------------------------------------

TEST(ServeCache, LruEvictionOrder) {
  SolverCache cache(2);
  PolicyMetrics m;
  m.shorts.mean_response = 1.0;
  cache.insert("a", m);
  cache.insert("b", m);
  EXPECT_TRUE(cache.lookup("a").has_value());  // bump a to most-recent
  cache.insert("c", m);                        // evicts b, the LRU entry
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
  EXPECT_EQ(cache.size(), 2u);
  const SolverCache::Stats s = cache.stats();
  EXPECT_EQ(s.inserts, 3);
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.hits, 3);
  EXPECT_EQ(s.misses, 1);
}

TEST(ServeCache, CapacityZeroDisables) {
  SolverCache cache(0);
  PolicyMetrics m;
  cache.insert("a", m);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup("a").has_value());
  EXPECT_EQ(cache.stats().inserts, 0);
}

// --- Server: serial-mode behaviour ----------------------------------------

TEST(ServeServer, PingAndAnalyzeRoundTrip) {
  Server server(serial_opts());
  const std::string pong = server.call("{\"id\":\"p\",\"op\":\"ping\"}");
  EXPECT_TRUE(response_ok(pong));
  EXPECT_NE(pong.find("\"pong\":true"), std::string::npos);

  const std::string a = server.call(analyze_line("a", 0.5, 0.5));
  EXPECT_TRUE(response_ok(a)) << a;
  const JsonValue v = parsed(a);
  EXPECT_EQ(v.find("id")->as_string("id"), "a");
  ASSERT_NE(v.find("result"), nullptr);
  EXPECT_GT(v.find("result")->find("shorts")->find("mean_response")->as_number("E[T]"),
            1.0);
  // The same request again is byte-identical (and a cache hit).
  EXPECT_EQ(server.call(analyze_line("a", 0.5, 0.5)), a);
  EXPECT_EQ(server.cache_stats().hits, 1);
}

TEST(ServeServer, MalformedLinesBecomeInvalidInputResponses) {
  Server server(serial_opts());
  const std::string r1 = server.call("this is not json");
  EXPECT_FALSE(response_ok(r1));
  EXPECT_EQ(error_code(r1), "InvalidInput");
  EXPECT_EQ(parsed(r1).find("id")->as_string("id"), "");  // no id recoverable
  // A well-formed line with a bad schema still echoes the id.
  const std::string r2 = server.call("{\"id\":\"x\",\"op\":\"fly\"}");
  EXPECT_EQ(error_code(r2), "InvalidInput");
  EXPECT_EQ(parsed(r2).find("id")->as_string("id"), "x");
  const Server::Stats s = server.stats();
  EXPECT_EQ(s.invalid, 2);
  EXPECT_EQ(s.admitted, 0);
  EXPECT_EQ(s.received, 2);
}

TEST(ServeServer, UnstableLoadIsAnErrorResponseNotACrash) {
  Server server(serial_opts());
  const std::string r = server.call(analyze_line("u", 1.6, 0.9));
  EXPECT_FALSE(response_ok(r));
  EXPECT_EQ(error_code(r), "Unstable");
}

TEST(ServeServer, QueueDepthShedsWithRetryAfterHint) {
  ServerOptions o = serial_opts();
  o.queue_depth = 1;
  o.shed_retry_after_ms = 10.0;
  Server server(o);
  auto first = server.submit(analyze_line("q1", 0.5, 0.5));
  auto second = server.submit(analyze_line("q2", 0.5, 0.5));  // over depth
  ASSERT_TRUE(second->done());  // shed responses resolve immediately
  const std::string shed = second->wait();
  EXPECT_EQ(error_code(shed), "Overloaded");
  // hint = base * (1 + pending depth) = 10 * 2.
  EXPECT_DOUBLE_EQ(parsed(shed).find("error")->find("retry_after_ms")
                       ->as_number("retry_after_ms"),
                   20.0);
  while (server.process_one()) {
  }
  EXPECT_TRUE(response_ok(first->wait()));
  const Server::Stats s = server.stats();
  EXPECT_EQ(s.admitted, 1);
  EXPECT_EQ(s.shed, 1);
  EXPECT_EQ(s.completed, 1);
}

TEST(ServeServer, CostCapShedsExpensiveWork) {
  ServerOptions o = serial_opts();
  o.max_inflight_cost = 10.0;
  Server server(o);
  // 32-point sweep costs 32 > 10: shed on cost although the queue is empty.
  const std::string r = server.call(
      "{\"id\":\"s\",\"op\":\"sweep\",\"axis\":\"rho_s\",\"from\":0.1,"
      "\"to\":0.5,\"points\":32,\"rho_l\":0.5}");
  EXPECT_EQ(error_code(r), "Overloaded");
  // Cost 0 pings always fit.
  EXPECT_TRUE(response_ok(server.call("{\"id\":\"p\",\"op\":\"ping\"}")));
}

TEST(ServeServer, ZeroTimeoutIsDeterministicDeadlineExceeded) {
  Server server(serial_opts());
  const std::string r = server.call(analyze_line("t", 0.5, 0.5, ",\"timeout_ms\":0"));
  EXPECT_EQ(error_code(r), "DeadlineExceeded");
  // The message is normalized so responses stay bit-deterministic.
  EXPECT_NE(r.find("request budget exhausted"), std::string::npos);
}

TEST(ServeServer, UnverifiedSolvesAreNeverCached) {
  Server server(serial_opts());
  EXPECT_TRUE(response_ok(
      server.call(analyze_line("n1", 0.5, 0.5, ",\"verify\":\"none\""))));
  EXPECT_TRUE(response_ok(
      server.call(analyze_line("n2", 0.5, 0.5, ",\"verify\":\"none\""))));
  const SolverCache::Stats s = server.cache_stats();
  EXPECT_EQ(s.inserts, 0);
  EXPECT_EQ(s.hits, 0);
}

TEST(ServeServer, SweepAndSimulateRoundTrip) {
  Server server(serial_opts());
  const std::string sw = server.call(
      "{\"id\":\"sw\",\"op\":\"sweep\",\"axis\":\"rho_s\",\"from\":0.2,"
      "\"to\":0.4,\"points\":3,\"rho_l\":0.5}");
  ASSERT_TRUE(response_ok(sw)) << sw;
  EXPECT_EQ(parsed(sw).find("result")->find("rows")->as_array("rows").size(), 3u);
  const std::string sim = server.call(
      "{\"id\":\"sim\",\"op\":\"simulate\",\"rho_s\":0.5,\"rho_l\":0.5,"
      "\"completions\":2000,\"replications\":2,\"seed\":7}");
  ASSERT_TRUE(response_ok(sim)) << sim;
  // Simulations replay bit-identically from the seed.
  EXPECT_EQ(server.call(
                "{\"id\":\"sim\",\"op\":\"simulate\",\"rho_s\":0.5,\"rho_l\":0.5,"
                "\"completions\":2000,\"replications\":2,\"seed\":7}"),
            sim);
}

// --- Server: drain protocol ------------------------------------------------

TEST(ServeDrain, QueuedWorkIsAnsweredCancelled) {
  Server server(serial_opts());
  auto t1 = server.submit(analyze_line("d1", 0.5, 0.5));
  auto t2 = server.submit(analyze_line("d2", 0.5, 0.5));
  server.drain();
  EXPECT_TRUE(server.draining());
  EXPECT_EQ(error_code(t1->wait()), "Cancelled");
  EXPECT_EQ(error_code(t2->wait()), "Cancelled");
  EXPECT_NE(t1->wait().find("request cancelled"), std::string::npos);
  // Post-drain submissions are shed, and every admitted request was
  // accounted for: admitted == completed + cancelled.
  EXPECT_EQ(error_code(server.call(analyze_line("d3", 0.5, 0.5))), "Overloaded");
  const Server::Stats s = server.stats();
  EXPECT_EQ(s.received, 3);
  EXPECT_EQ(s.admitted, 2);
  EXPECT_EQ(s.shed, 1);
  EXPECT_EQ(s.cancelled, 2);
  EXPECT_EQ(s.completed, 0);
}

TEST(ServeDrain, DrainIsIdempotentAndThreadedDrainCompletes) {
  ServerOptions o;
  o.workers = 2;
  o.drain_timeout_ms = 5000.0;
  Server server(o);
  std::vector<std::shared_ptr<Ticket>> tickets;
  for (int i = 0; i < 8; ++i)
    tickets.push_back(server.submit(analyze_line("w" + std::to_string(i), 0.4, 0.4)));
  server.drain();
  server.drain();  // idempotent
  std::int64_t answered = 0;
  for (auto& t : tickets) {
    const std::string& r = t->wait();  // every admitted request resolves
    answered += response_ok(r) || error_code(r) == "Cancelled" ? 1 : 0;
  }
  EXPECT_EQ(answered, 8);
  const Server::Stats s = server.stats();
  EXPECT_EQ(s.admitted, 8);
  EXPECT_EQ(s.completed + s.cancelled, 8);
}

// --- Soak: concurrent mixed traffic, bit-identical across worker counts ----

std::vector<std::string> soak_traffic(int n) {
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::string id = "r" + std::to_string(i);
    switch (i % 10) {
      case 0:
        lines.push_back("{\"id\":\"" + id + "\",\"op\":\"ping\"}");
        break;
      case 1:  // hostile: not JSON at all
        lines.push_back("!!! line " + std::to_string(i) + " !!!");
        break;
      case 2:  // hostile: schema violation (typoed field)
        lines.push_back("{\"id\":\"" + id + "\",\"op\":\"analyze\",\"rho_i\":0.5}");
        break;
      case 3:  // already-expired budget: deterministic DeadlineExceeded
        lines.push_back(analyze_line(id, 0.5, 0.5, ",\"timeout_ms\":0"));
        break;
      case 4:  // outside the stability region: taxonomy error, not a crash
        lines.push_back(analyze_line(id, 1.7, 0.8));
        break;
      case 5:
        lines.push_back(
            "{\"id\":\"" + id +
            "\",\"op\":\"sweep\",\"axis\":\"rho_l\",\"from\":0.2,\"to\":0.6,"
            "\"points\":3,\"rho_s\":0.3}");
        break;
      default: {  // valid analyzes over a small config family (cache traffic)
        const double rho_s = 0.30 + 0.01 * (i % 25);
        lines.push_back(analyze_line(id, rho_s, 0.5));
        break;
      }
    }
  }
  return lines;
}

// Run `lines` through a server with `workers` workers and `clients`
// submitting threads; returns one response per line, in line order.
std::vector<std::string> run_soak(const std::vector<std::string>& lines, int workers,
                                  int clients, Server::Stats* stats_out) {
  ServerOptions o;
  o.workers = workers;
  o.queue_depth = lines.size() + 1;  // the soak proves balance, not shedding
  o.max_inflight_cost = 1e9;
  o.request_timeout_ms = 0.0;
  Server server(o);
  std::vector<std::shared_ptr<Ticket>> tickets(lines.size());
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      for (std::size_t i = static_cast<std::size_t>(c); i < lines.size();
           i += static_cast<std::size_t>(clients))
        tickets[i] = server.submit(lines[i]);
    });
  for (std::thread& t : threads) t.join();
  if (workers == 0)
    while (server.process_one()) {
    }
  std::vector<std::string> responses;
  responses.reserve(lines.size());
  for (auto& t : tickets) responses.push_back(t->wait());
  server.drain();
  *stats_out = server.stats();
  return responses;
}

TEST(ServeSoak, MixedTrafficIsCrashFreeBalancedAndDeterministic) {
  const std::vector<std::string> lines = soak_traffic(500);
  Server::Stats serial{}, threaded{};
  const std::vector<std::string> want = run_soak(lines, 0, 1, &serial);
  const std::vector<std::string> got = run_soak(lines, 4, 4, &threaded);

  ASSERT_EQ(want.size(), lines.size());
  ASSERT_EQ(got.size(), lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    // Every request gets exactly one well-formed JSON response...
    const JsonValue v = parse_json(got[i]);
    ASSERT_TRUE(v.is_object()) << got[i];
    ASSERT_NE(v.find("ok"), nullptr) << got[i];
    // ...and the bytes match the serial run: worker count is invisible.
    EXPECT_EQ(got[i], want[i]) << "line " << i << ": " << lines[i];
  }
  for (const Server::Stats& s : {serial, threaded}) {
    EXPECT_EQ(s.received, static_cast<std::int64_t>(lines.size()));
    EXPECT_EQ(s.received, s.admitted + s.shed + s.invalid);
    EXPECT_EQ(s.admitted, s.completed + s.cancelled);
    EXPECT_EQ(s.shed, 0);
    EXPECT_EQ(s.cancelled, 0);
    EXPECT_EQ(s.invalid, static_cast<std::int64_t>(lines.size()) / 5);  // cases 1+2
  }
}

// --- Chaos: fault-injected serve paths (`ctest -L chaos`) ------------------

class ServeChaos : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::enabled())
      GTEST_SKIP() << "build with -DCSQ_FAULT_INJECTION=ON to run chaos tests";
    fault::disarm_all();
  }
  void TearDown() override {
    if (fault::enabled()) fault::disarm_all();
  }
};

TEST_F(ServeChaos, TransientDispatchFaultIsRetriedWithBackoff) {
  Server server(serial_opts());
  fault::arm(fault::parse_arm_spec("serve.dispatch.run:1:throw:NotConverged"));
  const std::string r = server.call(analyze_line("c1", 0.5, 0.5));
  ASSERT_TRUE(response_ok(r)) << r;
  // One attempt burned, the retry answered; the trail is in the response.
  EXPECT_EQ(parsed(r).find("retries")->as_number("retries"), 1.0);
  EXPECT_EQ(server.stats().retried, 1);
  // Two passes through the dispatch site: the faulted attempt + the retry.
  EXPECT_EQ(fault::hits("serve.dispatch.run"), 2);
  // The answer produced after a faulted attempt is still a verified exact
  // solve, so it IS cacheable.
  EXPECT_EQ(server.cache_stats().inserts, 1);
}

TEST_F(ServeChaos, ExhaustedRetriesDegradeThroughLadderAndSkipCache) {
  ServerOptions o = serial_opts();
  o.retry.max_attempts = 1;  // no retry budget: first transient escalates
  Server server(o);
  fault::arm(fault::parse_arm_spec("serve.dispatch.run:1:throw:NotConverged"));
  const std::string r = server.call(analyze_line("c2", 0.5, 0.5));
  ASSERT_TRUE(response_ok(r)) << r;
  const JsonValue v = parsed(r);
  EXPECT_TRUE(v.find("degraded")->as_bool("degraded"));
  EXPECT_EQ(v.find("rung")->as_string("rung"), "truncated");
  EXPECT_GE(v.find("attempts")->as_array("attempts").size(), 1u);
  EXPECT_EQ(server.stats().degraded, 1);
  // A degraded answer must never enter the memo-cache.
  EXPECT_EQ(server.cache_stats().inserts, 0);
  // And it must not poison later exact solves: the same request now yields
  // a fresh, cacheable exact answer.
  const std::string clean = server.call(analyze_line("c3", 0.5, 0.5));
  ASSERT_TRUE(response_ok(clean)) << clean;
  EXPECT_EQ(parsed(clean).find("degraded"), nullptr);
  EXPECT_EQ(server.cache_stats().inserts, 1);
}

TEST_F(ServeChaos, NoDegradeOptionTurnsExhaustionIntoAnError) {
  ServerOptions o = serial_opts();
  o.retry.max_attempts = 1;
  o.allow_degraded = false;
  Server server(o);
  fault::arm(fault::parse_arm_spec("serve.dispatch.run:1:throw:NotConverged"));
  const std::string r = server.call(analyze_line("c4", 0.5, 0.5));
  EXPECT_EQ(error_code(r), "NotConverged");
  EXPECT_EQ(server.stats().degraded, 0);
}

TEST_F(ServeChaos, FaultedCacheInsertNeverPoisonsTheCache) {
  Server server(serial_opts());
  fault::arm(fault::parse_arm_spec("serve.cache.insert:1:throw:NotConverged"));
  const std::string r1 = server.call(analyze_line("c5", 0.5, 0.5));
  ASSERT_TRUE(response_ok(r1)) << r1;  // the insert failure is invisible
  EXPECT_EQ(server.cache_stats().inserts, 0);
  // The single-shot fault is spent; the identical request re-solves,
  // byte-identically, and this time the insert lands.
  const std::string r2 = server.call(analyze_line("c5", 0.5, 0.5));
  EXPECT_EQ(r2, r1);
  EXPECT_EQ(server.cache_stats().inserts, 1);
  EXPECT_EQ(server.cache_stats().misses, 2);
}

TEST_F(ServeChaos, ForcedAdmissionShed) {
  Server server(serial_opts());
  fault::arm(fault::parse_arm_spec("serve.admission.shed:1:throw:Overloaded"));
  const std::string r = server.call("{\"id\":\"c6\",\"op\":\"ping\"}");
  EXPECT_EQ(error_code(r), "Overloaded");
  ASSERT_NE(parsed(r).find("error")->find("retry_after_ms"), nullptr);
  EXPECT_EQ(server.stats().shed, 1);
  // The site is single-shot: service resumes.
  EXPECT_TRUE(response_ok(server.call("{\"id\":\"c7\",\"op\":\"ping\"}")));
}

}  // namespace
}  // namespace csq
