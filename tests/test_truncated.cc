#include <gtest/gtest.h>

#include "analysis/truncated_cscq.h"
#include "mg1/mmc.h"

namespace csq::analysis {
namespace {

TEST(TruncatedCscq, NoLongsIsExactMM2) {
  const SystemConfig c = SystemConfig::paper_setup(1.2, 0.0, 1.0, 1.0);
  TruncatedCscqOptions o;
  o.max_shorts = 500;
  o.max_longs = 2;
  const TruncatedCscqResult r = analyze_cscq_truncated(c, o);
  ASSERT_TRUE(r.converged);
  const double expected = mg1::mmc_response(2, c.lambda_short, 1.0);
  EXPECT_NEAR(r.metrics.shorts.mean_response, expected, 1e-6 * expected);
}

TEST(TruncatedCscq, ConvergesMonotonicallyInCaps) {
  const SystemConfig c = SystemConfig::paper_setup(1.0, 0.5, 1.0, 1.0);
  double prev_mass = 1.0;
  double prev_resp = 0.0;
  for (const int cap : {25, 50, 100, 200}) {
    TruncatedCscqOptions o;
    o.max_shorts = cap;
    o.max_longs = cap;
    const TruncatedCscqResult r = analyze_cscq_truncated(c, o);
    ASSERT_TRUE(r.converged);
    // Mass trapped at the caps decays; the response estimate grows toward
    // the true value (truncation cuts off the congested tail).
    EXPECT_LT(r.mass_at_short_cap, prev_mass);
    EXPECT_GT(r.metrics.shorts.mean_response, prev_resp);
    prev_mass = r.mass_at_short_cap;
    prev_resp = r.metrics.shorts.mean_response;
  }
  EXPECT_LT(prev_mass, 1e-8);
}

TEST(TruncatedCscq, RegionProbabilitiesSumToNoLongProbability) {
  const SystemConfig c = SystemConfig::paper_setup(0.8, 0.4, 1.0, 1.0);
  const TruncatedCscqResult r = analyze_cscq_truncated(c);
  // P(region1) + P(region2) = P(n_L = 0) >= 1 - rho_L lower bound sanity.
  EXPECT_GT(r.p_region1 + r.p_region2, 0.3);
  EXPECT_LT(r.p_region1 + r.p_region2, 1.0);
}

TEST(TruncatedCscq, LittleLawConsistencyForLongs) {
  // Longs form a single-server system inside CS-CQ: utilization rho_L, so
  // E[N_L] >= rho_L; response = E[N_L]/lambda_L must exceed service mean.
  const SystemConfig c = SystemConfig::paper_setup(0.8, 0.6, 1.0, 1.0);
  const TruncatedCscqResult r = analyze_cscq_truncated(c);
  EXPECT_GT(r.metrics.longs.mean_response, 1.0);
}

TEST(TruncatedCscq, RejectsNonExponential) {
  SystemConfig c = SystemConfig::paper_setup(0.5, 0.5, 1.0, 1.0, 8.0);
  EXPECT_THROW((void)analyze_cscq_truncated(c), std::invalid_argument);
  SystemConfig c2 = SystemConfig::paper_setup(0.5, 0.5, 1.0, 1.0);
  TruncatedCscqOptions o;
  o.max_shorts = 1;
  EXPECT_THROW((void)analyze_cscq_truncated(c2, o), std::invalid_argument);
  EXPECT_THROW((void)analyze_cscq_truncated(SystemConfig::paper_setup(1.8, 0.5, 1, 1)),
               std::domain_error);
}

}  // namespace
}  // namespace csq::analysis
