#include <gtest/gtest.h>

#include <cmath>

#include "mg1/mg1.h"
#include "mg1/mmc.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace csq::sim {
namespace {

SimOptions fast_opts(std::size_t completions = 400000) {
  SimOptions o;
  o.total_completions = completions;
  return o;
}

TEST(Sim, DedicatedShortsAreMM1) {
  const SystemConfig c = SystemConfig::paper_setup(0.7, 0.5, 1.0, 1.0);
  const SimResult r = simulate(PolicyKind::kDedicated, c, fast_opts());
  const double expected = mg1::mm1_response(c.lambda_short, 1.0);
  EXPECT_NEAR(r.shorts.mean_response, expected, 0.03 * expected);
}

TEST(Sim, DedicatedLongsAreMG1WithHighVariability) {
  const SystemConfig c = SystemConfig::paper_setup(0.3, 0.6, 1.0, 1.0, 8.0);
  const SimResult r = simulate(PolicyKind::kDedicated, c, fast_opts(1500000));
  const double expected = mg1::pk_response(c.lambda_long, c.long_size->moments());
  EXPECT_NEAR(r.longs.mean_response, expected, 0.05 * expected);
}

TEST(Sim, Mg2FcfsWithOneClassIsMM2) {
  // Only shorts arriving: the central FCFS queue is an M/M/2.
  const SystemConfig c = SystemConfig::paper_setup(1.4, 1e-12, 1.0, 1.0);
  const SimResult r = simulate(PolicyKind::kMg2Fcfs, c, fast_opts(600000));
  const double expected = mg1::mmc_response(2, c.lambda_short, 1.0);
  EXPECT_NEAR(r.shorts.mean_response, expected, 0.03 * expected);
}

TEST(Sim, CsCqWithOneClassIsAlsoMM2) {
  // CS-CQ degenerates to M/M/2 when no longs ever arrive.
  const SystemConfig c = SystemConfig::paper_setup(1.4, 1e-12, 1.0, 1.0);
  const SimResult r = simulate(PolicyKind::kCsCq, c, fast_opts(600000));
  const double expected = mg1::mmc_response(2, c.lambda_short, 1.0);
  EXPECT_NEAR(r.shorts.mean_response, expected, 0.03 * expected);
}

TEST(Sim, UtilizationMatchesOfferedLoad) {
  const SystemConfig c = SystemConfig::paper_setup(0.6, 0.4, 1.0, 10.0);
  const SimResult r = simulate(PolicyKind::kDedicated, c, fast_opts());
  EXPECT_NEAR(r.utilization[0], 0.6, 0.02);
  EXPECT_NEAR(r.utilization[1], 0.4, 0.03);
}

TEST(Sim, CsCqKeepsAtMostOneServerOnLongs) {
  // Long utilization under CS-CQ equals rho_L (longs are never parallel),
  // so server utilizations sum to rho_S + rho_L when stable.
  const SystemConfig c = SystemConfig::paper_setup(0.9, 0.5, 1.0, 1.0);
  const SimResult r = simulate(PolicyKind::kCsCq, c, fast_opts(800000));
  EXPECT_NEAR(r.utilization[0] + r.utilization[1], 1.4, 0.02);
}

TEST(Sim, DeterministicUnderSeed) {
  const SystemConfig c = SystemConfig::paper_setup(1.0, 0.5, 1.0, 1.0);
  SimOptions o = fast_opts(100000);
  const SimResult a = simulate(PolicyKind::kCsCq, c, o);
  const SimResult b = simulate(PolicyKind::kCsCq, c, o);
  EXPECT_DOUBLE_EQ(a.shorts.mean_response, b.shorts.mean_response);
  o.seed += 1;
  const SimResult d = simulate(PolicyKind::kCsCq, c, o);
  EXPECT_NE(a.shorts.mean_response, d.shorts.mean_response);
}

TEST(Sim, ConfidenceIntervalCoversAnalyticMM1) {
  const SystemConfig c = SystemConfig::paper_setup(0.8, 0.2, 1.0, 1.0);
  const SimResult r = simulate(PolicyKind::kDedicated, c, fast_opts(800000));
  const double expected = mg1::mm1_response(c.lambda_short, 1.0);
  EXPECT_GT(r.shorts.ci95, 0.0);
  EXPECT_NEAR(r.shorts.mean_response, expected, 3.0 * r.shorts.ci95);
}

TEST(Sim, SjfPrioritizesSmallJobs) {
  const SystemConfig c = SystemConfig::paper_setup(0.8, 0.6, 1.0, 10.0);
  const SimResult sjf = simulate(PolicyKind::kMg2Sjf, c, fast_opts());
  const SimResult fcfs = simulate(PolicyKind::kMg2Fcfs, c, fast_opts());
  EXPECT_LT(sjf.shorts.mean_response, fcfs.shorts.mean_response);
}

TEST(Sim, InvalidOptionsThrow) {
  const SystemConfig c = SystemConfig::paper_setup(0.5, 0.5, 1.0, 1.0);
  SimOptions o;
  o.total_completions = 10;
  EXPECT_THROW((void)simulate(PolicyKind::kCsCq, c, o), std::invalid_argument);
  SystemConfig bad = c;
  bad.short_size = nullptr;
  EXPECT_THROW((void)simulate(PolicyKind::kCsCq, bad, fast_opts()), std::invalid_argument);
}

TEST(Sim, PolicyNames) {
  EXPECT_STREQ(policy_name(PolicyKind::kCsCq), "CS-CQ");
  EXPECT_STREQ(policy_name(PolicyKind::kMg2Sjf), "M/G/2-SJF");
}

TEST(Stats, WelfordMatchesDirectComputation) {
  Welford w;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 2.5);
  EXPECT_NEAR(w.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(w.count(), 4u);
}

TEST(Stats, BatchMeansCiShrinksWithSamples) {
  dist::Rng rng = dist::Rng(1234);
  std::exponential_distribution<double> exp_dist(1.0);
  BatchMeans small(10), large(10);
  for (int i = 0; i < 1000; ++i) small.add(exp_dist(rng));
  for (int i = 0; i < 100000; ++i) large.add(exp_dist(rng));
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
  EXPECT_NEAR(large.mean(), 1.0, 3.0 * large.ci95_halfwidth() + 0.02);
}

TEST(Stats, TooFewSamplesGiveZeroCi) {
  BatchMeans b(20);
  for (int i = 0; i < 10; ++i) b.add(1.0);
  EXPECT_DOUBLE_EQ(b.ci95_halfwidth(), 0.0);
  EXPECT_THROW(BatchMeans{1}, std::invalid_argument);
}

TEST(Stats, StudentTQuantiles) {
  EXPECT_NEAR(student_t_975(1), 12.71, 1e-9);
  EXPECT_NEAR(student_t_975(19), 2.09, 1e-9);
  EXPECT_NEAR(student_t_975(1000), 1.96, 1e-9);
}

}  // namespace
}  // namespace csq::sim
