# Included by CTest after gtest discovery has registered the property suite
# (this include is appended between the properties discovery call and the
# slow one, so csq_tests_TESTS holds exactly the property list — later
# discovery calls overwrite it and keep their own labels).
# gtest_discover_tests' serializer cannot carry a multi-label list, so the
# full label set is applied here.
foreach(t IN LISTS csq_tests_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tier1;properties")
endforeach()
