#include <gtest/gtest.h>

#include <cmath>

#include "core/status.h"
#include "ctmc/sparse.h"
#include "ctmc/stationary.h"

namespace csq::ctmc {
namespace {

TEST(Ctmc, TwoStateChain) {
  // 0 -> 1 at rate a, 1 -> 0 at rate b: pi = (b, a)/(a+b).
  Generator q(2);
  q.add(0, 1, 2.0);
  q.add(1, 0, 6.0);
  q.finalize();
  const StationaryResult r = stationary(q);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.pi[0], 0.75, 1e-10);
  EXPECT_NEAR(r.pi[1], 0.25, 1e-10);
}

TEST(Ctmc, TruncatedMM1IsGeometric) {
  const double lambda = 0.6, mu = 1.0;
  const std::size_t n = 60;
  Generator q(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    q.add(i, i + 1, lambda);
    q.add(i + 1, i, mu);
  }
  q.finalize();
  const StationaryResult r = stationary(q);
  ASSERT_TRUE(r.converged);
  const double rho = lambda / mu;
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_NEAR(r.pi[i], (1 - rho) * std::pow(rho, i), 1e-8) << "state " << i;
}

TEST(Ctmc, DuplicateRatesAccumulate) {
  Generator q(2);
  q.add(0, 1, 1.0);
  q.add(0, 1, 1.0);
  q.add(1, 0, 6.0);
  q.finalize();
  const StationaryResult r = stationary(q);
  EXPECT_NEAR(r.pi[1], 0.25, 1e-10);
}

TEST(Ctmc, ApiMisuseThrows) {
  Generator q(2);
  EXPECT_THROW(q.add(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(q.add(0, 5, 1.0), csq::InvalidInputError);
  EXPECT_THROW(q.add(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(stationary(q), csq::InvalidInputError);  // not finalized
  q.finalize();
  EXPECT_THROW(q.finalize(), csq::InvalidInputError);
  EXPECT_THROW(q.add(0, 1, 1.0), csq::InvalidInputError);
}

}  // namespace
}  // namespace csq::ctmc
