// Observability subsystem: counter atomicity under the work-stealing pool,
// span nesting and thread attribution, the Chrome-trace JSON schema, and
// the disabled-build contract (-DCSQ_OBS=OFF). Builds as its own binary so
// the ThreadSanitizer stage can gate just it: `ctest -L obs`. Every test
// branches on obs::compiled_in(), so one suite covers both build flavours.
//
// Metric names here use scratch "test.obs.*" names — lint rule R10 exempts
// tests/ from the one-call-site-per-name rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cscq.h"
#include "core/config.h"
#include "core/deadline.h"
#include "core/status.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "parallel/task_pool.h"
#include "qbd/qbd.h"

namespace {

using namespace csq;

// --- Counters / gauges / histograms ---------------------------------------

TEST(ObsCounters, ParallelIncrementsAreExact) {
  obs::Counter& c = obs::Registry::instance().counter("test.obs.parallel");
  const std::int64_t before = c.value();
  constexpr std::size_t kIters = 20000;
  par::parallel_for(kIters, /*threads=*/4,
                    [](std::size_t) { CSQ_OBS_COUNT("test.obs.parallel"); });
  const std::int64_t moved = c.value() - before;
  EXPECT_EQ(moved, obs::compiled_in() ? static_cast<std::int64_t>(kIters) : 0);
}

TEST(ObsCounters, CountNAddsTheGivenAmount) {
  obs::Counter& c = obs::Registry::instance().counter("test.obs.countn");
  const std::int64_t before = c.value();
  CSQ_OBS_COUNT_N("test.obs.countn", 7);
  CSQ_OBS_COUNT_N("test.obs.countn", 5);
  EXPECT_EQ(c.value() - before, obs::compiled_in() ? 12 : 0);
}

TEST(ObsCounters, GaugeIsLastWriteWins) {
  obs::Gauge& g = obs::Registry::instance().gauge("test.obs.gauge");
  CSQ_OBS_GAUGE_SET("test.obs.gauge", 3);
  CSQ_OBS_GAUGE_SET("test.obs.gauge", 1);
  EXPECT_DOUBLE_EQ(g.value(), obs::compiled_in() ? 1.0 : 0.0);
}

TEST(ObsCounters, HistogramTracksCountSumMinMax) {
  obs::Histogram& h = obs::Registry::instance().histogram("test.obs.hist");
  h.reset();
  // Empty histogram: min/max clamp their infinity sentinels to 0.
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  CSQ_OBS_HIST("test.obs.hist", 4.0);
  CSQ_OBS_HIST("test.obs.hist", -2.0);
  CSQ_OBS_HIST("test.obs.hist", 9.0);
  if (obs::compiled_in()) {
    EXPECT_EQ(h.count(), 3);
    EXPECT_DOUBLE_EQ(h.sum(), 11.0);
    EXPECT_DOUBLE_EQ(h.min(), -2.0);
    EXPECT_DOUBLE_EQ(h.max(), 9.0);
  } else {
    EXPECT_EQ(h.count(), 0);
  }
}

TEST(ObsCounters, KindMismatchThrowsInternalError) {
  // Direct Registry calls work in both build flavours (only the macros
  // compile out), so the kind check is always enforceable.
  (void)obs::Registry::instance().counter("test.obs.kindclash");
  EXPECT_THROW((void)obs::Registry::instance().gauge("test.obs.kindclash"), InternalError);
  EXPECT_THROW((void)obs::Registry::instance().histogram("test.obs.kindclash"), InternalError);
  // Same kind again is fine and returns the same handle.
  obs::Counter& a = obs::Registry::instance().counter("test.obs.kindclash");
  obs::Counter& b = obs::Registry::instance().counter("test.obs.kindclash");
  EXPECT_EQ(&a, &b);
}

TEST(ObsCounters, MetricsJsonListsRegisteredMetrics) {
  (void)obs::Registry::instance().counter("test.obs.jsonname");
  (void)obs::Registry::instance().histogram("test.obs.jsonhist");
  const std::string json = obs::Registry::instance().metrics_json();
  EXPECT_NE(json.find("\"test.obs.jsonname\":"), std::string::npos);
  // Histograms nest their four statistics.
  const std::size_t at = json.find("\"test.obs.jsonhist\":");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(json.find("\"count\":", at), std::string::npos);
  EXPECT_NE(json.find("\"sum\":", at), std::string::npos);
  // Same number of opening and closing braces — cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// --- DeltaScope ------------------------------------------------------------

TEST(ObsDelta, ReportsOnlyCountersThatMoved) {
  (void)obs::Registry::instance().counter("test.obs.still");
  const obs::DeltaScope scope;
  CSQ_OBS_COUNT_N("test.obs.moved", 7);
  const obs::MetricsDelta d = scope.delta();
  if (obs::compiled_in()) {
    EXPECT_EQ(d.value("test.obs.moved"), 7);
    EXPECT_EQ(d.value("test.obs.still"), 0);
    for (const auto& [name, v] : d.values) EXPECT_NE(v, 0) << name;
  } else {
    EXPECT_TRUE(d.empty());
  }
}

TEST(ObsDelta, AnalysisDeltaIsConsistentWithSolveStats) {
  const SystemConfig c = SystemConfig::paper_setup(0.9, 0.5, 1.0, 10.0, 1.0);
  const analysis::CscqResult r = analysis::analyze_cscq(c);
  if (!obs::compiled_in()) {
    EXPECT_TRUE(r.obs_metrics.empty());
    return;
  }
  // Exactly one QBD solve backs a CS-CQ analysis; its winning-stage
  // iteration count must agree with the obs counter for that stage.
  EXPECT_EQ(r.obs_metrics.value("qbd.solve.calls"), 1);
  if (r.solve_stats.method == qbd::RMethod::kFunctionalIteration) {
    EXPECT_EQ(r.obs_metrics.value("qbd.fi.iterations"), r.solve_stats.iterations);
  }
  // to_diagnostics folds the solver-loop counters into `iterations`.
  const Diagnostics d = r.obs_metrics.to_diagnostics();
  EXPECT_GE(d.iterations, r.solve_stats.iterations);
  EXPECT_FALSE(d.notes.empty());
}

// --- Span tracing ----------------------------------------------------------

// Restores a clean trace state around each test (tracing off, buffer empty,
// virtual clock zeroed) so span tests cannot leak into each other or into
// deadline-sensitive suites.
class ObsTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_tracing(false);
    obs::clear_trace();
    timebase::reset_virtual();
  }
  void TearDown() override {
    obs::set_tracing(false);
    obs::clear_trace();
    timebase::reset_virtual();
  }
};

TEST_F(ObsTrace, NestedSpansRecordDepthAndEnclosedDurations) {
  obs::set_tracing(true);
  {
    CSQ_OBS_SPAN("test.span.outer");
    timebase::advance_virtual_ns(2'000'000);
    {
      CSQ_OBS_SPAN("test.span.inner");
      timebase::advance_virtual_ns(1'000'000);
    }
  }
  const std::vector<obs::TraceEvent> evs = obs::trace_events();
  if (!obs::compiled_in()) {
    EXPECT_TRUE(evs.empty());
    return;
  }
  ASSERT_EQ(evs.size(), 2u);
  // Sorted by start time: outer opened first.
  EXPECT_EQ(evs[0].name, "test.span.outer");
  EXPECT_EQ(evs[1].name, "test.span.inner");
  EXPECT_EQ(evs[0].depth, 0);
  EXPECT_EQ(evs[1].depth, 1);
  EXPECT_EQ(evs[0].tid, evs[1].tid);
  // The virtual clock makes the durations exact lower bounds.
  EXPECT_GE(evs[0].dur_ns, 3'000'000);
  EXPECT_GE(evs[1].dur_ns, 1'000'000);
  // Parent encloses child.
  EXPECT_LE(evs[0].start_ns, evs[1].start_ns);
  EXPECT_GE(evs[0].start_ns + evs[0].dur_ns, evs[1].start_ns + evs[1].dur_ns);
}

TEST_F(ObsTrace, SpansRecordNothingWhileTracingIsOff) {
  {
    CSQ_OBS_SPAN("test.span.silent");
  }
  EXPECT_TRUE(obs::trace_events().empty());
  EXPECT_EQ(obs::trace_dropped(), 0u);
}

TEST_F(ObsTrace, PoolWorkersGetStableThreadAttribution) {
  obs::set_tracing(true);
  constexpr std::size_t kSpans = 16;
  par::parallel_for(kSpans, /*threads=*/4, [](std::size_t) {
    CSQ_OBS_SPAN("test.span.worker");
    timebase::advance_virtual_ns(1000);
  });
  const std::vector<obs::TraceEvent> evs = obs::trace_events();
  if (!obs::compiled_in()) {
    EXPECT_TRUE(evs.empty());
    return;
  }
  ASSERT_EQ(evs.size(), kSpans);
  for (const obs::TraceEvent& e : evs) {
    EXPECT_EQ(e.name, "test.span.worker");
    EXPECT_EQ(e.depth, 0);  // top-level on its worker
    EXPECT_GE(e.tid, 0);
  }
}

TEST_F(ObsTrace, ChromeJsonSchemaIsLoadable) {
  obs::set_tracing(true);
  {
    CSQ_OBS_SPAN("test.span.schema");
    timebase::advance_virtual_ns(500'000);
  }
  const std::string json = obs::chrome_trace_json();
  // The envelope is present in both build flavours (empty event list when
  // obs is compiled out).
  EXPECT_NE(json.find("{\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  if (!obs::compiled_in()) return;
  // One complete event with the fields chrome://tracing requires.
  EXPECT_NE(json.find("\"name\": \"test.span.schema\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"csq\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
}

TEST_F(ObsTrace, ClearTraceEmptiesTheBuffer) {
  obs::set_tracing(true);
  {
    CSQ_OBS_SPAN("test.span.cleared");
  }
  obs::clear_trace();
  EXPECT_TRUE(obs::trace_events().empty());
  EXPECT_EQ(obs::trace_dropped(), 0u);
}

}  // namespace
