// Fixture: shared dependency for the throw-flow pair — a free kernel whose
// taxonomy throw must propagate to callers in *other* files (so the escape
// is call-graph-only, invisible to the text-level error-docs rule).
#include "core/status.h"

namespace csq::qbd {

int tdep_kernel(int x) {
  if (x < 0) throw csq::NotConvergedError("tdep_kernel: no fixed point");
  return x + 1;
}

}  // namespace csq::qbd
