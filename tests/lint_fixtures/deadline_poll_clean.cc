// Fixture: clean twin of deadline_poll_bad.cc — the same kernel loop, but
// the body polls budget.interrupted() so cancellation can land.
#include "core/status.h"

namespace csq::qbd {

int stationary_clean(int x) { return x * 2; }

struct FixtureBudget {
  bool interrupted() const { return false; }
};

int drive_polled(int n, const FixtureBudget& budget) {
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    if (budget.interrupted()) return acc;
    acc += stationary_clean(i);
  }
  return acc;
}

}  // namespace csq::qbd
