// Fixture: a well-formed suppression covering the next line — no findings.
bool near_one(double x) {
  // csq-lint: allow(no-float-eq): fixture exercises suppression coverage
  return x == 1.0;
}
