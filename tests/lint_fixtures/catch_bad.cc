// Fixture: seeds one catch-all-swallow violation (line 7).
void run();

int wrapper() {
  try {
    run();
  } catch (...) {
    return -1;
  }
  return 0;
}
