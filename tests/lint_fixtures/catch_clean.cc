// Fixture: clean twin of catch_bad.cc — the catch-all rethrows.
void run();

int wrapper() {
  try {
    run();
  } catch (...) {
    throw;
  }
  return 0;
}
