// Fixture: every suppression form beyond the plain single-line marker —
// block-comment interiors, stacked allow groups, and markers on macro
// continuation lines. All seeded violations below must come back clean.
#include "core/status.h"

/*
 * csq-lint: allow(no-float-eq): fixture — block-comment interior marker
 */
inline bool block_covered(double x) { return x == 1.0; }

// csq-lint: allow(raw-throw) allow(no-float-eq): fixture — stacked allows share one reason
inline void stacked_covered(double x) { if (x == 0.5) throw 42; }

#define FIXTURE_ASSERT(x) \
  assert(x)  // csq-lint: allow(banned-identifier): fixture — marker on a macro continuation line
