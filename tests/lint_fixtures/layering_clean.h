// Fixture: clean twin of layering_bad.h — linalg (layer 1) depending only
// on core (layer 0), the direction the module DAG allows.
#pragma once

#include "core/status.h"

namespace csq::linalg {

int layering_fixture_clean(int x);

}  // namespace csq::linalg
