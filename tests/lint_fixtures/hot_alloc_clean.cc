// Fixture: clean twin of hot_alloc_bad.cc — ping-pong via the *_into kernel.
#include <utility>
#include <vector>

void power(std::vector<double>& v, std::vector<double>& scratch, const Matrix& r, int n) {
  for (int i = 0; i < n; ++i) {
    multiply_into(scratch, v, r);
    std::swap(v, scratch);
  }
}
