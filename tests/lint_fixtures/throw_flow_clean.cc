// Fixture: implementation twin of throw_flow_clean.h.
#include "qbd/throw_flow_clean.h"

namespace csq::qbd {

int solve_outer_clean(int x) { return tdep_kernel(x); }

}  // namespace csq::qbd
