// Clean twin for policy-registry (R19): both enumerators have a
// policy_name() case and a make_policy() case, and the test supplies a docs
// catalog containing both display names — zero findings.
#include <string>

namespace fix {

enum class PolicyKind : int {
  kAlpha,
  kBeta,
};

const char* policy_name(PolicyKind k) {
  switch (k) {
    case PolicyKind::kAlpha: return "Alpha";
    case PolicyKind::kBeta: return "Beta";
  }
  return "?";
}

int make_policy(PolicyKind k) {
  switch (k) {
    case PolicyKind::kAlpha: return 1;
    case PolicyKind::kBeta: return 2;
  }
  return 0;
}

}  // namespace fix
