// Fixture: clean twin of header_bad.h.
#pragma once

#include <string>
#include <vector>

struct Widget {
  std::vector<int> items;
  std::string name;
};
