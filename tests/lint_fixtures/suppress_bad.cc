// Fixture: a reason-less suppression — the marker itself is flagged
// (line 4) and the violation it meant to cover still fires (line 5).
bool near_one(double x) {
  // csq-lint: allow(no-float-eq)
  return x == 1.0;
}
