// Fixture: clean twin of raw_throw_bad.cc — taxonomy type and bare rethrow.
#include "core/status.h"

void f(int x) {
  if (x < 0) throw csq::InvalidInputError("negative");
}

void g() {
  try {
    f(-1);
  } catch (const csq::Error&) {
    throw;
  }
}
