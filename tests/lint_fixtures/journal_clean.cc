// journal-hygiene fixture (linted as src/durable/journal_clean.cc): the
// compliant publish sequence — flush the bytes, then rename.
#include <unistd.h>

#include <cstdio>

namespace csq::durable {

void publish(int fd, const char* tmp, const char* path) {
  fsync(fd);
  std::rename(tmp, path);
}

}  // namespace csq::durable
