// Fixture: clean twin of throw_flow_bad.h — the call-graph escape is
// documented and no stale contract lines remain.
#pragma once

namespace csq::qbd {

// Throws csq::NotConvergedError when the underlying kernel finds no fixed
// point (propagated from tdep_kernel).
int solve_outer_clean(int x);

}  // namespace csq::qbd
