// Fixture: clean twin of nondet_bad.cc — seeded LCG step, no wall clock.
unsigned draw(unsigned state) {
  state = state * 1664525u + 1013904223u;
  return state;
}
