// Fixture: seeds two atomic-order violations — a relaxed load with no
// rationale anywhere near it, and a bare seq_cst hammered inside a loop.
#include <atomic>

namespace csq::par {

bool fixture_flag_read(const std::atomic<bool>& flag) {
  return flag.load(std::memory_order_relaxed);
}

int fixture_spin(const std::atomic<bool>& stop) {
  int spins = 0;
  while (!stop.load(std::memory_order_seq_cst)) {
    ++spins;
  }
  return spins;
}

}  // namespace csq::par
