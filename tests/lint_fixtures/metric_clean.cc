// Fixture: clean twin of metric_bad.cc — well-formed, unique metric names.
#include "obs/obs.h"
#include "obs/trace.h"

void g(double v, int stage) {
  CSQ_OBS_SPAN("module.sub.metric");
  CSQ_OBS_COUNT("module.sub.calls");
  CSQ_OBS_COUNT_N("module.sub.items", 4);
  CSQ_OBS_GAUGE_SET("module.sub.stage", stage);
  CSQ_OBS_HIST("module.sub.latency", v);
}
