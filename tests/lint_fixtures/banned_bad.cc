// Fixture: seeds two banned-identifier violations (lines 5 and 6).
#include <cassert>

void check(int n) {
  assert(n > 0);
  srand(42);
}
