// Fixture: seeds five serve-hygiene violations (lines 11, 12, 13, 14, 15)
// when linted under a serve path (src/serve/ or tools/csq_serve.cc).
#include <cstdlib>
#include <deque>

#include "obs/obs.h"

std::deque<int> pending_;

void handle(int rc, std::deque<int>* reply_queue) {
  if (rc != 0) std::exit(rc);                   // terminates the process
  if (rc < 0) std::abort();                     // terminates the process
  pending_.push_back(rc);                       // unbounded queue growth
  reply_queue->emplace_back(rc);                // unbounded queue growth
  CSQ_OBS_COUNT("serve.fixture.undocumented");  // metric missing from catalog
}
