// Fixture: seeds one hot-path-alloc-transitive violation — the loop calls
// a helper that allocates internally (push_back), which the file-local
// hot-path-alloc rule cannot see but call-graph reachability can.
#include <vector>

namespace csq::qbd {
namespace {

void accumulate_step(std::vector<double>* out, double v) { out->push_back(v); }

}  // namespace

double iterate_fixture(int n) {
  std::vector<double> acc;
  double last = 0.0;
  for (int i = 0; i < n; ++i) {
    accumulate_step(&acc, static_cast<double>(i));
    last = acc.back();
  }
  return last;
}

}  // namespace csq::qbd
