// Fixture: seeds nondeterminism violations (lines 7, 8, 10) when linted
// with a repo-relative path under src/sim/.
#include <chrono>
#include <random>

unsigned seed_from_clock() {
  std::random_device rd;
  const auto t = std::chrono::steady_clock::now();
  (void)t;
  return rd() + static_cast<unsigned>(time(nullptr));
}
