// Fixture: clean twin of banned_bad.cc.
#include "core/check.h"

void check(int n) {
  CSQ_ASSERT(n > 0);
}
