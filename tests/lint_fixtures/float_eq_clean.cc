// Fixture: clean twin of float_eq_bad.cc — helper calls and integer ==.
#include "core/numeric.h"

bool near_one(double x) { return csq::num::approx_eq(x, 1.0); }
bool is_zero(double x) { return csq::num::approx_zero(x); }
bool int_eq(int a, int b) { return a == b; }
