// Fixture: seeds two no-float-eq violations (lines 3 and 7).
bool near_one(double x) {
  return x == 1.0;
}

bool not_zero(double x) {
  return 0.0 != x;
}
