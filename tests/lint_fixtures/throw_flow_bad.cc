// Fixture: implementation twin of throw_flow_bad.h. No direct throws — the
// NotConvergedError arrives purely through the call to tdep_kernel (defined
// in throw_flow_dep.cc), so only the flow-aware rule can see it.
#include "qbd/throw_flow_bad.h"

namespace csq::qbd {

int solve_outer(int x) { return tdep_kernel(x); }

}  // namespace csq::qbd
