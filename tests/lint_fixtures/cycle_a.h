// Fixture: one half of an include cycle (cycle_a.h <-> cycle_b.h) for the
// module-layering rule's cycle detector.
#pragma once

#include "qbd/cycle_b.h"

namespace csq::qbd {

int cycle_a_fixture(int x);

}  // namespace csq::qbd
