// Fixture: second half of the include cycle with cycle_a.h.
#pragma once

#include "qbd/cycle_a.h"

namespace csq::qbd {

int cycle_b_fixture(int x);

}  // namespace csq::qbd
