// Seeded policy-registry (R19) violations: kGamma has no policy_name() case,
// kBeta and kGamma have no make_policy() case, and kBeta's display name
// ("Beta") is absent from the docs catalog the test supplies. Expected
// findings (all anchored to the enumerator lines below):
//   kBeta  -> missing make_policy case, undocumented display name
//   kGamma -> missing policy_name case, missing make_policy case
#include <string>

namespace fix {

enum class PolicyKind : int {
  kAlpha,
  kBeta,
  kGamma,
};

const char* policy_name(PolicyKind k) {
  switch (k) {
    case PolicyKind::kAlpha: return "Alpha";
    case PolicyKind::kBeta: return "Beta";
    default: return "?";
  }
}

int make_policy(PolicyKind k) {
  if (k == PolicyKind::kAlpha) return 1;
  return 0;
}

}  // namespace fix
