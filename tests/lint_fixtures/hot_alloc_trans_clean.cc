// Fixture: clean twin of hot_alloc_trans_bad.cc — the helper writes into a
// caller-provided workspace slot instead of growing a container.
#include <vector>

namespace csq::qbd {
namespace {

void store_step(std::vector<double>* out, int i, double v) { (*out)[i] = v; }

}  // namespace

double iterate_fixture_clean(int n, std::vector<double>* workspace) {
  double last = 0.0;
  for (int i = 0; i < n; ++i) {
    store_step(workspace, i, static_cast<double>(i));
    last = (*workspace)[i];
  }
  return last;
}

}  // namespace csq::qbd
