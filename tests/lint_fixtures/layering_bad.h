// Fixture: seeds one module-layering violation — a linalg header (layer 1)
// reaching up into the analysis layer (layer 4).
#pragma once

#include "analysis/cscq.h"
#include "core/status.h"

namespace csq::linalg {

int layering_fixture(int x);

}  // namespace csq::linalg
