// Fixture: seeds two hot-path-generic-mult violations (lines 7 and 10) when
// linted under a structured-mult path (src/qbd/). The pattern-kernel calls
// must NOT be flagged.
void iterate(Matrix& r, const Matrix& a0, const Matrix& a2, Workspace& ws) {
  linalg::multiply_into_dense(ws.r2, r, r);
  linalg::multiply_into_pattern(ws.acc, ws.r2, a2, ws.pat_a2);
  linalg::multiply_into(ws.prod, ws.acc, a0);
  for (int i = 0; i < 8; ++i) {
    linalg::add_into_pattern(ws.acc, a0, ws.pat_a0);
    multiply_into(ws.next, ws.acc, r);
  }
}
