// journal-hygiene fixture (linted as src/serve/journal_bad.cc): a request
// handler doing its own file I/O instead of going through src/durable/.
#include <cstdio>
#include <fstream>

namespace csq::serve {

void spill_state(const char* path) {
  std::ofstream out(path);  // direct stream I/O: flagged
  out << "state";
  std::fwrite("x", 1, 1, nullptr);  // direct call I/O: flagged
}

}  // namespace csq::serve
