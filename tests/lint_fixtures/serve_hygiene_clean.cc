// Fixture: clean twin for serve-hygiene — the queue push sits on the bounded
// admit path (justified suppression) and the metric appears in the catalog
// text the test supplies via Config::serve_metric_docs.
#include <deque>

#include "obs/obs.h"

std::deque<int> pending_;

bool admit(int item, std::size_t depth_limit) {
  if (pending_.size() >= depth_limit) return false;
  // csq-lint: allow(serve-hygiene): bounded admit path — depth was checked on the line above
  pending_.push_back(item);
  CSQ_OBS_COUNT("serve.fixture.documented");
  return true;
}
