// Fixture: clean twin of faultsite_bad.cc — well-formed, unique sites.
#include "core/faultpoint.h"

void g(double* data, std::size_t n) {
  CSQ_FAULT_POINT("module.sub.action");
  CSQ_FAULT_POINT_MATRIX("module.sub.other_action", data, n);
}
