// Fixture: seeds one raw-throw violation (line 5).
#include <stdexcept>

void f(int x) {
  if (x < 0) throw std::invalid_argument("negative");
}
