// Fixture: seeds four fault-site-naming violations (lines 7, 8, 10, 11).
#include "core/faultpoint.h"

constexpr const char* kSite = "a.b.c";

void f(double* data, std::size_t n) {
  CSQ_FAULT_POINT("qbd.solve");            // two segments
  CSQ_FAULT_POINT("Qbd.solve.Boundary");   // uppercase segments
  CSQ_FAULT_POINT("dup.site.name");        // first registration: fine
  CSQ_FAULT_POINT("dup.site.name");        // duplicate registration
  CSQ_FAULT_POINT_MATRIX(kSite, data, n);  // not a string literal
}
