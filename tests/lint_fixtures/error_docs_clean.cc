// Fixture: implementation twin of error_docs_clean.h.
#include "core/status.h"

double safe_sqrt(double x) {
  if (x < 0) throw csq::InvalidInputError("negative");
  return x;
}
