// Fixture: seeds one error-docs violation — the .cc twin throws
// csq InvalidInput but this header never mentions the class name.
#pragma once

double safe_sqrt(double x);
