// Fixture: seeds four metric-naming violations (lines 7, 8, 10, 11).
#include "obs/obs.h"

constexpr const char* kName = "a.b.c";

void f(double v) {
  CSQ_OBS_COUNT("qbd.solve");              // two segments
  CSQ_OBS_SPAN("Qbd.Solve.Fi");            // uppercase segments
  CSQ_OBS_COUNT("dup.metric.name");        // first registration: fine
  CSQ_OBS_COUNT_N("dup.metric.name", 3);   // duplicate registration
  CSQ_OBS_HIST(kName, v);                  // not a string literal
}
