// Fixture: clean twin of error_docs_bad.h.
//
// Throws csq::InvalidInputError (core/status.h) on negative input.
#pragma once

double safe_sqrt(double x);
