// Fixture: seeds two throw-flow violations. The impl's callee throws a
// taxonomy class that escapes solve_outer but is never documented here,
// and the contract line below claims a throw nothing backs.
#pragma once

namespace csq::qbd {

// Throws csq::UnstableError when the model leaves the stability region.
int solve_outer(int x);

}  // namespace csq::qbd
