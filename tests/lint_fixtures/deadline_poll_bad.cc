// Fixture: seeds one deadline-poll violation — the driver loop calls the
// iterative kernel `stationary` (kernel name, qbd module) without ever
// polling a RunBudget or CancelToken inside the loop body.
#include "core/status.h"

namespace csq::qbd {

int stationary(int x) { return x * 2; }

int drive_unpolled(int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    acc += stationary(i);
  }
  return acc;
}

}  // namespace csq::qbd
