// Fixture: seeds header-hygiene violations — no #pragma once (line 1),
// `using namespace` (line 5), std::vector without <vector> (line 8).
#include <string>

using namespace std;

struct Widget {
  std::vector<int> items;
  string name;
};
