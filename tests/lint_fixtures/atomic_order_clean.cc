// Fixture: clean twin of atomic_order_bad.cc — every non-default order
// carries its rationale, and the loop's fence is justified.
#include <atomic>

namespace csq::par {

bool fixture_flag_read_clean(const std::atomic<bool>& flag) {
  // Relaxed: advisory hint flag, no data is published through it.
  return flag.load(std::memory_order_relaxed);
}

int fixture_spin_clean(const std::atomic<bool>& stop) {
  int spins = 0;
  // seq_cst: the stop flag must be totally ordered against the sleeper
  // protocol; the spin is cold relative to the work it guards.
  while (!stop.load(std::memory_order_seq_cst)) {
    ++spins;
  }
  return spins;
}

}  // namespace csq::par
