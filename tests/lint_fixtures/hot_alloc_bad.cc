// Fixture: seeds one hot-path-alloc violation (line 6) when the lint Config
// lists this file as hot.
#include <vector>

void power(std::vector<double>& v, const Matrix& r, int n) {
  for (int i = 0; i < n; ++i) v = v * r;
}
