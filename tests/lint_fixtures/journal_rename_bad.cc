// journal-hygiene fixture (linted as src/durable/journal_rename_bad.cc):
// an atomic-publish rename with no fsync anywhere in the file.
#include <cstdio>

namespace csq::durable {

void publish(const char* tmp, const char* path) {
  std::rename(tmp, path);  // flagged: unsynced bytes may be published
}

}  // namespace csq::durable
