// Fixture: clean twin of generic_mult_bad.cc — the products go through the
// structure-aware kernels, and the one legitimately generic call (a
// row-vector recursion with no block structure) carries the suppression.
void iterate(Matrix& r, const Matrix& a0, const Matrix& a2, Workspace& ws) {
  linalg::multiply_into_dense(ws.r2, r, r);
  linalg::multiply_into_pattern(ws.acc, ws.r2, a2, ws.pat_a2);
  for (int i = 0; i < 8; ++i) {
    linalg::multiply_into_dense(ws.next, ws.acc, r);
    // csq-lint: allow(hot-path-generic-mult): row-vector recursion has no block structure
    linalg::multiply_into(ws.scratch, ws.v, r);
  }
}
