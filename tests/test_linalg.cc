#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/lu.h"
#include "linalg/matrix.h"

namespace csq::linalg {
namespace {

TEST(Matrix, BasicOps) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 6);
  EXPECT_DOUBLE_EQ(sum(1, 1), 12);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 1), 4);
  const Matrix prod = a * b;
  EXPECT_DOUBLE_EQ(prod(0, 0), 19);
  EXPECT_DOUBLE_EQ(prod(0, 1), 22);
  EXPECT_DOUBLE_EQ(prod(1, 0), 43);
  EXPECT_DOUBLE_EQ(prod(1, 1), 50);
  const Matrix scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6);
}

TEST(Matrix, TransposeAndRowSums) {
  const Matrix a{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = a.transpose();
  ASSERT_EQ(t.rows(), 3u);
  ASSERT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
  const auto rs = a.row_sums();
  EXPECT_DOUBLE_EQ(rs[0], 6);
  EXPECT_DOUBLE_EQ(rs[1], 15);
  EXPECT_DOUBLE_EQ(a.max_abs(), 6);
}

TEST(Matrix, NormsPropagateNaNInsteadOfMaskingIt) {
  // std::max-based folds silently drop NaN (the comparison is false); the
  // norms must surface it so divergence and verification guards fire. The
  // fault-injection chaos suite found the masked variant letting a poisoned
  // functional iteration "converge".
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Matrix a{{1, 2}, {3, 4}};
  Matrix b = a;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.0);
  a(0, 1) = nan;
  EXPECT_TRUE(std::isnan(a.max_abs()));
  EXPECT_TRUE(std::isnan(max_abs_diff(a, b)));
  // NaN anywhere poisons the norm, even when a larger finite entry follows.
  Matrix c{{nan, 2}, {3, 400}};
  EXPECT_TRUE(std::isnan(c.max_abs()));
}

TEST(Matrix, ShapeMismatchThrows) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{1, 2, 3}};
  EXPECT_THROW(a + b, std::invalid_argument);
  EXPECT_THROW(b * b, std::invalid_argument);
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, VectorProducts) {
  const Matrix a{{1, 2}, {3, 4}};
  const std::vector<double> v{1, 1};
  const auto left = v * a;
  EXPECT_DOUBLE_EQ(left[0], 4);
  EXPECT_DOUBLE_EQ(left[1], 6);
  const auto right = a * v;
  EXPECT_DOUBLE_EQ(right[0], 3);
  EXPECT_DOUBLE_EQ(right[1], 7);
  EXPECT_DOUBLE_EQ(dot(v, right), 10);
  EXPECT_DOUBLE_EQ(sum(left), 10);
}

TEST(Lu, SolvesKnownSystem) {
  const Matrix a{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}};
  const std::vector<double> b{8, -11, -3};
  const auto x = Lu(a).solve(b);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(Lu, InverseRoundTrip) {
  const Matrix a{{4, 7, 1}, {2, 6, 0}, {1, 0, 5}};
  const Matrix inv = inverse(a);
  const Matrix eye = a * inv;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(eye(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

TEST(Lu, Determinant) {
  const Matrix a{{3, 8}, {4, 6}};
  EXPECT_NEAR(Lu(a).determinant(), -14.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  const Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(Lu{a}, std::domain_error);
}

TEST(Lu, SolveLeft) {
  const Matrix a{{1, 2}, {3, 4}};
  // x A = b with b = (7, 10) has x = (1, 2).
  const auto x = solve_left(a, std::vector<double>{7, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  const Matrix a{{0, 1}, {1, 0}};
  const auto x = Lu(a).solve(std::vector<double>{3, 5});
  EXPECT_NEAR(x[0], 5.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

}  // namespace
}  // namespace csq::linalg
