#include <gtest/gtest.h>

#include <cmath>

#include "mg1/mmc.h"
#include "qbd/qbd.h"

namespace csq::qbd {
namespace {

// M/M/1 as a one-phase QBD with a single boundary level.
Model mm1_model(double lambda, double mu) {
  Model m;
  m.a0 = Matrix{{lambda}};
  m.a1 = Matrix{{0.0}};
  m.a2 = Matrix{{mu}};
  m.first_down = Matrix{{mu}};
  m.boundary.resize(1);
  m.boundary[0].local = Matrix{{0.0}};
  m.boundary[0].up = Matrix{{lambda}};
  return m;
}

TEST(Qbd, MM1GeometricSolution) {
  const double lambda = 0.7, mu = 1.0;
  const Solution sol = solve(mm1_model(lambda, mu));
  const double rho = lambda / mu;
  EXPECT_NEAR(sol.r(0, 0), rho, 1e-10);
  EXPECT_NEAR(sol.total_mass(), 1.0, 1e-10);
  EXPECT_NEAR(sol.mean_level(), rho / (1 - rho), 1e-8);
  EXPECT_NEAR(sol.level_probability(0), 1 - rho, 1e-10);
  EXPECT_NEAR(sol.level_probability(3), (1 - rho) * std::pow(rho, 3), 1e-10);
}

TEST(Qbd, MM1WithExtraBoundaryLevels) {
  // Same chain, but declaring levels 0..2 as boundary must not change the
  // answer — exercises the heterogeneous-boundary assembly.
  const double lambda = 0.5, mu = 1.0;
  Model m;
  m.a0 = Matrix{{lambda}};
  m.a1 = Matrix{{0.0}};
  m.a2 = Matrix{{mu}};
  m.first_down = Matrix{{mu}};
  m.boundary.resize(3);
  for (int i = 0; i < 3; ++i) {
    m.boundary[static_cast<std::size_t>(i)].local = Matrix{{0.0}};
    m.boundary[static_cast<std::size_t>(i)].up = Matrix{{lambda}};
    if (i > 0) m.boundary[static_cast<std::size_t>(i)].down = Matrix{{mu}};
  }
  const Solution sol = solve(m);
  EXPECT_NEAR(sol.mean_level(), 1.0, 1e-8);
  EXPECT_NEAR(sol.level_probability(1), 0.25, 1e-10);
}

TEST(Qbd, MM2MatchesErlangC) {
  // M/M/2: boundary levels 0 (no service) and 1 (rate mu), repeating 2mu.
  const double lambda = 1.2, mu = 1.0;
  Model m;
  m.a0 = Matrix{{lambda}};
  m.a1 = Matrix{{0.0}};
  m.a2 = Matrix{{2.0 * mu}};
  m.first_down = Matrix{{2.0 * mu}};
  m.boundary.resize(2);
  m.boundary[0].local = Matrix{{0.0}};
  m.boundary[0].up = Matrix{{lambda}};
  m.boundary[1].local = Matrix{{0.0}};
  m.boundary[1].up = Matrix{{lambda}};
  m.boundary[1].down = Matrix{{mu}};
  const Solution sol = solve(m);
  const double expected_mean_number = lambda * mg1::mmc_response(2, lambda, mu);
  EXPECT_NEAR(sol.mean_level(), expected_mean_number, 1e-8);
}

TEST(Qbd, UnstableThrows) {
  EXPECT_THROW(solve(mm1_model(1.0, 1.0)), std::domain_error);
  EXPECT_THROW(solve(mm1_model(1.5, 1.0)), std::domain_error);
}

TEST(Qbd, MalformedModelThrows) {
  Model m = mm1_model(0.5, 1.0);
  m.first_down = Matrix{{0.7}};  // row sums no longer match a2
  EXPECT_THROW(solve(m), std::invalid_argument);
  Model m2 = mm1_model(0.5, 1.0);
  m2.boundary.clear();
  EXPECT_THROW(solve(m2), std::invalid_argument);
}

// A 2-phase MMPP/M/1: arrivals only in phase 1 at rate lambda; modulator
// flips between phases at rates (a, b). Cross-check functional iteration
// against logarithmic reduction.
TEST(Qbd, LogarithmicReductionAgreesWithFunctionalIteration) {
  const double lambda = 1.4, mu = 1.0, a = 0.3, b = 0.9;
  Matrix a0{{0.0, 0.0}, {0.0, lambda}};
  Matrix a1{{0.0, a}, {b, 0.0}};
  Matrix a2{{mu, 0.0}, {0.0, mu}};
  // Fill a1 diagonal for the repeating generator row sums.
  a1(0, 0) = -(a + mu);
  a1(1, 1) = -(b + lambda + mu);
  const Matrix r_iter = solve_r(a0, a1, a2);
  const Matrix g = solve_g_logred(a0, a1, a2);
  const Matrix r_lr = r_from_g(a0, a1, g);
  EXPECT_LT((r_iter - r_lr).max_abs(), 1e-9);
  // G must be stochastic for a recurrent chain.
  const auto rs = g.row_sums();
  EXPECT_NEAR(rs[0], 1.0, 1e-9);
  EXPECT_NEAR(rs[1], 1.0, 1e-9);
}

TEST(Qbd, MmppMeanLevelMatchesPollaczekKhinchineStyleCheck) {
  // Sanity: an MMPP/M/1 with a phase that never generates arrivals still
  // solves and conserves mass; mean level is between the M/M/1 values at
  // the low and high arrival-rate phases... (coarse envelope check).
  const double lambda = 0.9, mu = 1.0, a = 2.0, b = 2.0;
  Model m;
  m.a0 = Matrix{{0.0, 0.0}, {0.0, lambda}};
  m.a1 = Matrix{{0.0, a}, {b, 0.0}};
  m.a2 = Matrix{{mu, 0.0}, {0.0, mu}};
  m.first_down = m.a2;
  m.boundary.resize(1);
  m.boundary[0].local = m.a1;
  m.boundary[0].up = m.a0;
  const Solution sol = solve(m);
  EXPECT_NEAR(sol.total_mass(), 1.0, 1e-9);
  // Effective load is lambda/2; must exceed the M/M/1 mean at lambda/2
  // (burstiness penalty) and stay finite.
  const double rho_eff = 0.5 * lambda / mu;
  EXPECT_GT(sol.mean_level(), rho_eff / (1 - rho_eff));
  EXPECT_LT(sol.mean_level(), 50.0);
}

}  // namespace
}  // namespace csq::qbd

namespace csq::qbd {
namespace {

TEST(QbdTails, MM1GeometricTail) {
  const double rho = 0.6;
  Model m;
  m.a0 = Matrix{{rho}};
  m.a1 = Matrix{{0.0}};
  m.a2 = Matrix{{1.0}};
  m.first_down = Matrix{{1.0}};
  m.boundary.resize(1);
  m.boundary[0].local = Matrix{{0.0}};
  m.boundary[0].up = Matrix{{rho}};
  const Solution sol = solve(m);
  EXPECT_NEAR(sol.tail_decay_rate(), rho, 1e-9);
  // P(N > n) = rho^{n+1} for M/M/1.
  EXPECT_NEAR(sol.level_tail(0), rho, 1e-10);
  EXPECT_NEAR(sol.level_tail(4), std::pow(rho, 5), 1e-10);
  // Quantile: smallest n with 1 - rho^{n+1} >= q.
  const std::size_t p99 = sol.level_quantile(0.99);
  EXPECT_GE(1.0 - std::pow(rho, p99 + 1), 0.99);
  EXPECT_LT(1.0 - std::pow(rho, static_cast<double>(p99)), 0.99);
  EXPECT_THROW((void)sol.level_quantile(0.0), std::invalid_argument);
}

TEST(QbdTails, TailAndProbabilityConsistent) {
  const double lambda = 1.2, mu = 1.0;
  Model m;
  m.a0 = Matrix{{lambda}};
  m.a1 = Matrix{{0.0}};
  m.a2 = Matrix{{2.0 * mu}};
  m.first_down = Matrix{{2.0 * mu}};
  m.boundary.resize(2);
  m.boundary[0].local = Matrix{{0.0}};
  m.boundary[0].up = Matrix{{lambda}};
  m.boundary[1].local = Matrix{{0.0}};
  m.boundary[1].up = Matrix{{lambda}};
  m.boundary[1].down = Matrix{{mu}};
  const Solution sol = solve(m);
  for (const std::size_t n : {0u, 1u, 3u, 7u}) {
    EXPECT_NEAR(sol.level_tail(n) - sol.level_tail(n + 1), sol.level_probability(n + 1),
                1e-12);
  }
  EXPECT_NEAR(sol.level_tail(0), 1.0 - sol.level_probability(0), 1e-12);
}

}  // namespace
}  // namespace csq::qbd
