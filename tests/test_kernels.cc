// Kernel-equivalence suite (`ctest -L kernels`): every structure-exploiting
// kernel in linalg/kernels.h must reproduce the generic linalg::multiply_into
// answer on matrices of every structural class and every size the fixed-N
// dispatch covers (n = 2..8) plus the general fallback (n >= 9). The kernels
// document a bit-identical contract (same additions, same ascending-k order,
// skipped terms exactly zero); the suite pins that exactly, and separately
// pins the issue-level 1e-14 tolerance so a future kernel that trades exact
// order for speed fails the strict test first and the contract test second.
//
// The batched QBD entry points ride on the same workspace-cached patterns,
// so solve_r_batch / workspace reuse are pinned here too: reusing scratch
// buffers across solves must never change a single result bit.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "qbd/qbd.h"

namespace csq::linalg {
namespace {

// Deterministic value stream (xorshift64*): the suite must test the same
// matrices on every run and host, so failures bisect cleanly.
struct ValueStream {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  double next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    const std::uint64_t x = state * 0x2545f4914f6cdd1dULL;
    // Map to [-2, 2) with plenty of mantissa variety.
    return static_cast<double>(x >> 11) / static_cast<double>(1ULL << 52) - 2.0;
  }
};

Matrix dense_matrix(std::size_t rows, std::size_t cols, ValueStream& vs) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = vs.next();
  return m;
}

Matrix diagonal_matrix(std::size_t n, ValueStream& vs) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = vs.next();
  return m;
}

// floor(n*n/4) nonzeros scattered off the pure diagonal, which keeps the
// classifier in kSparse (nnz * 4 <= total) for every n >= 2.
Matrix sparse_matrix(std::size_t n, ValueStream& vs) {
  Matrix m(n, n);
  const std::size_t nnz = (n * n) / 4 > 0 ? (n * n) / 4 : 1;
  for (std::size_t k = 0; k < nnz; ++k) {
    const std::size_t i = (k * 7 + 1) % n;
    const std::size_t j = (k * 5 + i + 1) % n;  // off-diagonal-ish scatter
    m(i, j) = vs.next();
  }
  return m;
}

Matrix tridiagonal_matrix(std::size_t n, ValueStream& vs) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) m(i, i - 1) = vs.next();
    m(i, i) = vs.next();
    if (i + 1 < n) m(i, i + 1) = vs.next();
  }
  return m;
}

// The reference answer, straight from the generic kernel.
Matrix generic_product(const Matrix& a, const Matrix& b) {
  Matrix ref;
  multiply_into(ref, a, b);
  return ref;
}

TEST(KernelPattern, ClassifiesTheFourStructuralClasses) {
  ValueStream vs;
  EXPECT_EQ(analyze_pattern(diagonal_matrix(6, vs)).kind, PatternKind::kDiagonal);
  EXPECT_EQ(analyze_pattern(sparse_matrix(6, vs)).kind, PatternKind::kSparse);
  EXPECT_EQ(analyze_pattern(tridiagonal_matrix(8, vs)).kind, PatternKind::kBanded);
  EXPECT_EQ(analyze_pattern(dense_matrix(6, 6, vs)).kind, PatternKind::kDense);
}

TEST(KernelPattern, MatchesAcceptsSourceAndRejectsUncoveredNonzeros) {
  ValueStream vs;
  const Matrix sp = sparse_matrix(7, vs);
  const BlockPattern pat = analyze_pattern(sp);
  EXPECT_TRUE(pat.matches(sp));

  // A nonzero at a position the pattern does not cover must be rejected.
  Matrix extra = sp;
  bool flipped = false;
  for (std::size_t i = 0; i < extra.rows() && !flipped; ++i)
    for (std::size_t j = 0; j < extra.cols() && !flipped; ++j)
      if (extra(i, j) == 0.0) {
        extra(i, j) = 1.0;
        flipped = true;
      }
  ASSERT_TRUE(flipped);
  EXPECT_FALSE(pat.matches(extra));

  // Shape mismatch is a mismatch, not UB.
  EXPECT_FALSE(pat.matches(dense_matrix(3, 3, vs)));
}

TEST(KernelPattern, RowOfFlattensTheCsrExactly) {
  ValueStream vs;
  for (const Matrix& m : {sparse_matrix(6, vs), diagonal_matrix(5, vs)}) {
    const BlockPattern pat = analyze_pattern(m);
    ASSERT_EQ(pat.row_of.size(), pat.col_idx.size());
    ASSERT_EQ(pat.nnz, pat.col_idx.size());
    for (std::size_t r = 0; r < pat.rows; ++r)
      for (std::uint32_t idx = pat.row_ptr[r]; idx < pat.row_ptr[r + 1]; ++idx)
        EXPECT_EQ(pat.row_of[idx], r) << "flattened row index disagrees with row_ptr";
  }
  // The dense class carries no index lists at all.
  const BlockPattern dense_pat = analyze_pattern(dense_matrix(4, 4, vs));
  EXPECT_TRUE(dense_pat.row_of.empty());
  EXPECT_TRUE(dense_pat.col_idx.empty());
}

// The core equivalence sweep: every structural class x every column count
// covered by a fixed-N dispatch arm (2..8) plus the general fallback (9),
// with a rectangular left operand so rows != inner != cols stays honest.
TEST(KernelEquivalence, PatternMultiplyIsBitIdenticalToGeneric) {
  ValueStream vs;
  for (std::size_t n = 2; n <= 9; ++n) {
    const Matrix a = dense_matrix(n + 3, n, vs);
    const std::vector<Matrix> rights = {diagonal_matrix(n, vs), sparse_matrix(n, vs),
                                        tridiagonal_matrix(n, vs), dense_matrix(n, n, vs)};
    for (const Matrix& b : rights) {
      const BlockPattern pat = analyze_pattern(b);
      ASSERT_TRUE(pat.matches(b));
      Matrix out;
      multiply_into_pattern(out, a, b, pat);
      const Matrix ref = generic_product(a, b);
      EXPECT_EQ(max_abs_diff(out, ref), 0.0)
          << "kernel " << pattern_kind_name(pat.kind) << " diverges at n=" << n;
    }
  }
}

// The issue-level contract is 1e-14; pinned separately so the strict
// bit-identity test above can evolve without silently losing this floor.
TEST(KernelEquivalence, PatternMultiplyWithinContractTolerance) {
  ValueStream vs;
  for (std::size_t n = 2; n <= 9; ++n) {
    const Matrix a = dense_matrix(n + 1, n, vs);
    const Matrix b = sparse_matrix(n, vs);
    Matrix out;
    multiply_into_pattern(out, a, b, analyze_pattern(b));
    EXPECT_LE(max_abs_diff(out, generic_product(a, b)), 1e-14);
  }
}

TEST(KernelEquivalence, DenseMultiplyIsBitIdenticalToGeneric) {
  ValueStream vs;
  for (std::size_t n = 1; n <= 9; ++n) {
    const Matrix a = dense_matrix(n + 2, n, vs);
    const Matrix b = dense_matrix(n, n + 1, vs);  // rectangular right operand
    Matrix out;
    multiply_into_dense(out, a, b);
    EXPECT_EQ(max_abs_diff(out, generic_product(a, b)), 0.0) << "n=" << n;
  }
}

// A pattern that covers a superset of b's nonzeros is legal (the header's
// contract: extra positions cost work, never correctness).
TEST(KernelEquivalence, SupersetPatternStillExact) {
  ValueStream vs;
  const Matrix wide = sparse_matrix(6, vs);  // more nonzeros...
  Matrix b = wide;
  b(1, b.cols() > 2 ? 2 : 0) = 0.0;  // ...than b actually has
  const BlockPattern pat = analyze_pattern(wide);
  ASSERT_TRUE(pat.matches(b));
  const Matrix a = dense_matrix(7, 6, vs);
  Matrix out;
  multiply_into_pattern(out, a, b, pat);
  EXPECT_EQ(max_abs_diff(out, generic_product(a, b)), 0.0);
}

TEST(KernelEquivalence, AddIntoPatternMatchesPlainAdd) {
  ValueStream vs;
  for (const Matrix& b : {diagonal_matrix(6, vs), sparse_matrix(6, vs),
                          tridiagonal_matrix(6, vs), dense_matrix(6, 6, vs)}) {
    const BlockPattern pat = analyze_pattern(b);
    Matrix dst = dense_matrix(6, 6, vs);
    Matrix ref = dst;
    add_into_pattern(dst, b, pat);
    for (std::size_t i = 0; i < 6; ++i)
      for (std::size_t j = 0; j < 6; ++j) ref(i, j) += b(i, j);
    EXPECT_EQ(max_abs_diff(dst, ref), 0.0)
        << "add kernel " << pattern_kind_name(pat.kind) << " diverges";
  }
}

TEST(KernelEquivalence, ShapeMismatchesThrowLikeTheGenericKernel) {
  ValueStream vs;
  const Matrix a = dense_matrix(4, 4, vs);
  const Matrix b = dense_matrix(5, 5, vs);
  const BlockPattern pat = analyze_pattern(b);
  Matrix out;
  EXPECT_THROW(multiply_into_pattern(out, a, b, pat), InvalidInputError);
  EXPECT_THROW(multiply_into_dense(out, a, b), InvalidInputError);
  // Pattern must describe b, not some other matrix's shape.
  const Matrix c = dense_matrix(4, 4, vs);
  EXPECT_THROW(multiply_into_pattern(out, a, c, pat), InvalidInputError);
}

// ---------------------------------------------------------------------------
// Batched / workspace-reusing QBD solves: amortization must be invisible in
// the results.

// A small stable QBD repeating portion: Poisson arrivals at rate `lambda`
// (a0), service completions at rate 2 (a2), a cyclic phase coupling in a1,
// diagonal filled so generator rows sum to zero. lambda < 2 keeps sp(R) < 1.
qbd::RBlocks stable_blocks(double lambda) {
  const std::size_t m = 3;
  const double mu = 2.0, c = 0.2;
  qbd::RBlocks blk;
  blk.a0 = Matrix(m, m);
  blk.a1 = Matrix(m, m);
  blk.a2 = Matrix(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    blk.a0(i, i) = lambda;
    blk.a2(i, i) = mu;
    blk.a1(i, (i + 1) % m) = c;
    blk.a1(i, i) = -(lambda + mu + c);
  }
  return blk;
}

TEST(KernelBatch, SolveRBatchMatchesIndividualSolvesBitForBit) {
  std::vector<qbd::RBlocks> items;
  for (double lambda : {0.4, 0.9, 1.4}) items.push_back(stable_blocks(lambda));

  std::vector<qbd::SolveStats> batch_stats;
  const std::vector<Matrix> batched = qbd::solve_r_batch(items, {}, &batch_stats);
  ASSERT_EQ(batched.size(), items.size());
  ASSERT_EQ(batch_stats.size(), items.size());

  for (std::size_t i = 0; i < items.size(); ++i) {
    qbd::SolveStats solo_stats;
    const Matrix solo =
        qbd::solve_r(items[i].a0, items[i].a1, items[i].a2, {}, &solo_stats);
    EXPECT_EQ(max_abs_diff(batched[i], solo), 0.0) << "item " << i;
    EXPECT_EQ(batch_stats[i].iterations, solo_stats.iterations) << "item " << i;
    EXPECT_EQ(batch_stats[i].residual, solo_stats.residual) << "item " << i;
  }
}

TEST(KernelBatch, WorkspaceReuseAcrossDifferentSolvesIsExact) {
  const qbd::RBlocks first = stable_blocks(0.6);
  const qbd::RBlocks second = stable_blocks(1.3);

  // One workspace, two solves with different values AND different cached
  // pattern contents in between — then the same solves fresh.
  qbd::Workspace shared;
  const Matrix r1_shared = qbd::solve_r(first.a0, first.a1, first.a2, {}, nullptr, &shared);
  const Matrix r2_shared =
      qbd::solve_r(second.a0, second.a1, second.a2, {}, nullptr, &shared);

  const Matrix r1_fresh = qbd::solve_r(first.a0, first.a1, first.a2, {});
  const Matrix r2_fresh = qbd::solve_r(second.a0, second.a1, second.a2, {});

  EXPECT_EQ(max_abs_diff(r1_shared, r1_fresh), 0.0);
  EXPECT_EQ(max_abs_diff(r2_shared, r2_fresh), 0.0);
}

}  // namespace
}  // namespace csq::linalg
