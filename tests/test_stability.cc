#include <gtest/gtest.h>

#include <cmath>

#include "analysis/stability.h"

namespace csq::analysis {
namespace {

TEST(Stability, DedicatedIsUnitSquare) {
  EXPECT_TRUE(dedicated_stable(0.99, 0.99));
  EXPECT_FALSE(dedicated_stable(1.0, 0.5));
  EXPECT_FALSE(dedicated_stable(0.5, 1.0));
  EXPECT_DOUBLE_EQ(dedicated_max_rho_short(0.3), 1.0);
}

TEST(Stability, CsCqFrontierIsTwoMinusRhoL) {
  EXPECT_DOUBLE_EQ(cscq_max_rho_short(0.0), 2.0);
  EXPECT_DOUBLE_EQ(cscq_max_rho_short(0.5), 1.5);
  EXPECT_TRUE(cscq_stable(1.49, 0.5));
  EXPECT_FALSE(cscq_stable(1.5, 0.5));
}

TEST(Stability, CsIdFrontierHitsGoldenRatioAtZeroLoad) {
  EXPECT_NEAR(csid_max_rho_short(0.0), (1.0 + std::sqrt(5.0)) / 2.0, 1e-12);
}

TEST(Stability, CsIdFrontierAtPaperOperatingPoints) {
  // rho_L = 0.5 (Figures 4-5): frontier ~ 1.28.
  EXPECT_NEAR(csid_max_rho_short(0.5), 0.5 * (0.5 + std::sqrt(0.25 + 4.0)), 1e-12);
  EXPECT_GT(csid_max_rho_short(0.5), 1.25);
  EXPECT_LT(csid_max_rho_short(0.5), 1.31);
  // Figure 6 runs rho_S = 1.5: CS-ID diverges at rho_L = 1/6, CS-CQ at 0.5.
  EXPECT_TRUE(csid_stable(1.5, 1.0 / 6.0 - 1e-6));
  EXPECT_FALSE(csid_stable(1.5, 1.0 / 6.0 + 1e-6));
  EXPECT_TRUE(cscq_stable(1.5, 0.499));
  EXPECT_FALSE(cscq_stable(1.5, 0.501));
}

TEST(Stability, OrderingDedicatedCsIdCsCq) {
  for (double rho_l = 0.0; rho_l < 1.0; rho_l += 0.05) {
    const double d = dedicated_max_rho_short(rho_l);
    const double i = csid_max_rho_short(rho_l);
    const double c = cscq_max_rho_short(rho_l);
    EXPECT_LE(d, i + 1e-12) << rho_l;
    EXPECT_LE(i, c + 1e-12) << rho_l;
  }
}

TEST(Stability, CsIdFrontierMonotoneDecreasing) {
  double prev = csid_max_rho_short(0.0);
  for (double rho_l = 0.05; rho_l < 1.0; rho_l += 0.05) {
    const double cur = csid_max_rho_short(rho_l);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Stability, IdleProbabilityClosedForm) {
  EXPECT_NEAR(csid_long_host_idle_probability(0.0, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(csid_long_host_idle_probability(1.0, 0.5), 0.25, 1e-12);
  EXPECT_THROW((void)csid_long_host_idle_probability(0.5, 1.0), std::domain_error);
  EXPECT_THROW((void)csid_long_host_idle_probability(-0.1, 0.5), std::invalid_argument);
}

TEST(Stability, InvalidRhoLongThrows) {
  EXPECT_THROW((void)csid_max_rho_short(1.0), std::domain_error);
  EXPECT_THROW((void)cscq_max_rho_short(-0.1), std::domain_error);
}

}  // namespace
}  // namespace csq::analysis
