// The policy-zoo suite (`ctest -L policies`): registry integrity, job
// conservation, replication determinism and RNG-substream isolation for
// every policy behind sim::policy_registry() — the contracts that make a
// policy a plug-in rather than a special case (docs/policies.md).
//
// Everything here is structural: no response-time values are pinned (the
// property suite owns dominance relations, the golden suite owns numbers).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/status.h"
#include "core/sweep.h"
#include "msim/multi_sim.h"
#include "obs/obs.h"
#include "sim/simulator.h"

namespace {

using namespace csq;

bool same_bits(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

SystemConfig zoo_config() {
  // Stable for every registered policy (rho_S + rho_L < 2, each < 1 per
  // dedicated host), busy enough that queues, steals and shares all happen.
  return SystemConfig::paper_setup(0.8, 0.5, 1.0, 10.0, 1.0);
}

std::vector<sim::PolicyKind> zoo_kinds() {
  std::vector<sim::PolicyKind> kinds;
  for (const sim::PolicyInfo& info : sim::policy_registry()) kinds.push_back(info.kind);
  return kinds;
}

// The six PR-10 zoo additions — the policies whose determinism and
// conservation contracts are new in this suite.
const std::vector<sim::PolicyKind>& new_zoo_kinds() {
  static const std::vector<sim::PolicyKind> kKinds = {
      sim::PolicyKind::kRandom,        sim::PolicyKind::kJiq,
      sim::PolicyKind::kStealOne,      sim::PolicyKind::kStealHalf,
      sim::PolicyKind::kThresholdSteal, sim::PolicyKind::kWorkSharing};
  return kKinds;
}

// --- Registry round-trip -----------------------------------------------------

TEST(PolicyRegistry, TokenKindDisplayRoundTrip) {
  std::set<std::string> tokens;
  std::set<std::string> displays;
  for (const sim::PolicyInfo& info : sim::policy_registry()) {
    SCOPED_TRACE(info.token);
    EXPECT_EQ(sim::policy_kind_from_token(info.token), info.kind);
    EXPECT_STREQ(sim::policy_token(info.kind), info.token);
    // The registry's display column and policy_name() cannot drift apart.
    EXPECT_STREQ(sim::policy_name(info.kind), info.display);
    EXPECT_TRUE(tokens.insert(info.token).second) << "duplicate token";
    EXPECT_TRUE(displays.insert(info.display).second) << "duplicate display name";
  }
}

TEST(PolicyRegistry, UnknownTokenThrowsListingValidOnes) {
  try {
    (void)sim::policy_kind_from_token("not-a-policy");
    FAIL() << "expected InvalidInputError";
  } catch (const InvalidInputError& e) {
    const std::string msg = e.what();
    // The error is the CLI/serve help text: it must enumerate the registry.
    for (const sim::PolicyInfo& info : sim::policy_registry())
      EXPECT_NE(msg.find(info.token), std::string::npos) << info.token;
  }
}

TEST(PolicyRegistry, EveryKindConstructsAndSimulates) {
  const SystemConfig c = zoo_config();
  sim::SimOptions o;
  o.total_completions = 2000;
  for (const sim::PolicyKind kind : zoo_kinds()) {
    SCOPED_TRACE(sim::policy_name(kind));
    const sim::SimResult r = sim::simulate(kind, c, o);
    EXPECT_GT(r.shorts.completions, 0u);
    EXPECT_GT(r.longs.completions, 0u);
  }
}

TEST(PolicyRegistry, MsimTokensMirrorTheZoo) {
  // The multi-host simulator serves the same zoo tokens (its scheduler is
  // the n-host generalization); spot-check the mapping is alive and typos
  // still throw.
  EXPECT_EQ(msim::multi_policy_from_token("steal-half"), msim::MultiPolicy::kStealHalf);
  EXPECT_EQ(msim::multi_policy_from_token("jiq"), msim::MultiPolicy::kJiq);
  EXPECT_EQ(msim::multi_policy_from_token("work-sharing"),
            msim::MultiPolicy::kWorkSharing);
  EXPECT_THROW((void)msim::multi_policy_from_token("not-a-policy"), InvalidInputError);
}

// --- Conservation ------------------------------------------------------------

// Every arrival must end the run completed, queued in the policy, or on a
// server: arrivals == completions + queued_final + in_service_final. A
// policy that loses a job (dropped on migration) or duplicates one (stolen
// twice) breaks the ledger. >= 1e5 events per policy: 60k completions means
// >= 120k arrival+completion events.
TEST(PolicyConservation, LedgerBalancesForEveryPolicy) {
  const SystemConfig c = zoo_config();
  sim::SimOptions o;
  o.total_completions = 60000;
  for (const sim::PolicyKind kind : zoo_kinds()) {
    SCOPED_TRACE(sim::policy_name(kind));
    const obs::DeltaScope scope;
    const sim::SimResult r = sim::simulate(kind, c, o);
    EXPECT_EQ(r.arrivals, r.completions_total + r.queued_final + r.in_service_final);
    EXPECT_GE(r.completions_total, o.total_completions);
    if (obs::compiled_in()) {
      const obs::MetricsDelta d = scope.delta();
      // The obs counter is the same ledger seen from the outside.
      EXPECT_EQ(d.value("sim.engine.arrivals"),
                static_cast<std::int64_t>(r.arrivals));
      EXPECT_GE(d.value("sim.engine.events"),
                static_cast<std::int64_t>(r.arrivals + r.completions_total));
    }
  }
}

TEST(PolicyConservation, ZooCountersFireWhereExpected) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  const SystemConfig c = zoo_config();
  sim::SimOptions o;
  o.total_completions = 30000;
  const auto count = [&](sim::PolicyKind kind, const char* metric) {
    const obs::DeltaScope scope;
    (void)sim::simulate(kind, c, o);
    return scope.delta().value(metric);
  };
  // Stealing policies steal, the sharing policy shares, JIQ hits its idle
  // queue — and none of them touch the others' counters.
  EXPECT_GT(count(sim::PolicyKind::kStealOne, "sim.policy.steals"), 0);
  EXPECT_GT(count(sim::PolicyKind::kStealHalf, "sim.policy.steals"), 0);
  EXPECT_GT(count(sim::PolicyKind::kThresholdSteal, "sim.policy.steals"), 0);
  EXPECT_GT(count(sim::PolicyKind::kWorkSharing, "sim.policy.shares"), 0);
  EXPECT_GT(count(sim::PolicyKind::kJiq, "sim.policy.idle_hits"), 0);
  EXPECT_EQ(count(sim::PolicyKind::kRandom, "sim.policy.steals"), 0);
  EXPECT_EQ(count(sim::PolicyKind::kStealOne, "sim.policy.shares"), 0);
}

// --- Replication determinism -------------------------------------------------

// Per-replication results are bit-identical across thread counts for every
// new zoo policy: replication r is a pure function of split_seed(seed, r),
// never of which worker ran it.
TEST(PolicyDeterminism, ReplicationsBitIdenticalAcrossThreadCounts) {
  const SystemConfig c = zoo_config();
  sim::SimOptions o;
  o.total_completions = 20000;
  sim::ReplicationOptions one;
  one.replications = 4;
  one.threads = 1;
  sim::ReplicationOptions four = one;
  four.threads = 4;
  for (const sim::PolicyKind kind : new_zoo_kinds()) {
    SCOPED_TRACE(sim::policy_name(kind));
    const sim::ReplicatedResult a = sim::simulate_replications(kind, c, o, one);
    const sim::ReplicatedResult b = sim::simulate_replications(kind, c, o, four);
    ASSERT_EQ(a.replications.size(), b.replications.size());
    for (std::size_t r = 0; r < a.replications.size(); ++r) {
      SCOPED_TRACE("replication " + std::to_string(r));
      EXPECT_TRUE(same_bits(a.replications[r].shorts.mean_response,
                            b.replications[r].shorts.mean_response));
      EXPECT_TRUE(same_bits(a.replications[r].longs.mean_response,
                            b.replications[r].longs.mean_response));
      EXPECT_EQ(a.replications[r].arrival_hash, b.replications[r].arrival_hash);
    }
    EXPECT_TRUE(same_bits(a.shorts.mean_response, b.shorts.mean_response));
    EXPECT_TRUE(same_bits(a.longs.mean_response, b.longs.mean_response));
  }
}

// --- Substream isolation -----------------------------------------------------

// The engine draws arrivals from RNG stream 0; policies draw their private
// decisions (dispatch coins, victim picks) from the disjoint policy stream.
// Consequence: at a fixed (seed, config) every policy walks the *same*
// arrival stream — the run merely stops after a policy-dependent number of
// arrivals (the event loop ends at the Nth completion, and queue lengths
// differ). So any two policies that consumed the same number of arrivals
// must agree bit-for-bit on SimResult::arrival_hash. A policy that drew
// from engine randomness would shift the stream and break the collision.
TEST(PolicyIsolation, ArrivalSequenceSharedAcrossEveryPolicy) {
  const SystemConfig c = zoo_config();
  sim::SimOptions o;
  o.total_completions = 20000;
  std::map<std::size_t, std::uint64_t> hash_by_count;
  const std::vector<sim::PolicyKind> kinds = zoo_kinds();
  for (const sim::PolicyKind kind : kinds) {
    SCOPED_TRACE(sim::policy_name(kind));
    const sim::SimResult r = sim::simulate(kind, c, o);
    ASSERT_NE(r.arrival_hash, 0u);
    const auto [it, fresh] = hash_by_count.emplace(r.arrivals, r.arrival_hash);
    if (!fresh) {
      EXPECT_EQ(r.arrival_hash, it->second);
    }
  }
  // Non-vacuity: under the pinned seed most policies stop after the same
  // arrival, so the consistency branch above actually fires.
  EXPECT_LT(hash_by_count.size(), kinds.size());
}

// Regression for the aliasing direction: running one policy must not
// perturb another policy's results under the same master seed (each
// simulate() builds fresh RNGs; nothing leaks across runs), and different
// seeds must actually change the arrival sequence (the hash is not a
// constant).
TEST(PolicyIsolation, RunningOnePolicyDoesNotPerturbAnother) {
  const SystemConfig c = zoo_config();
  sim::SimOptions o;
  o.total_completions = 20000;
  const sim::SimResult before = sim::simulate(sim::PolicyKind::kCsCq, c, o);
  (void)sim::simulate(sim::PolicyKind::kStealHalf, c, o);
  (void)sim::simulate(sim::PolicyKind::kWorkSharing, c, o);
  const sim::SimResult after = sim::simulate(sim::PolicyKind::kCsCq, c, o);
  EXPECT_TRUE(same_bits(before.shorts.mean_response, after.shorts.mean_response));
  EXPECT_TRUE(same_bits(before.longs.mean_response, after.longs.mean_response));
  EXPECT_EQ(before.arrival_hash, after.arrival_hash);

  sim::SimOptions other = o;
  other.seed = o.seed + 1;
  const sim::SimResult reseeded = sim::simulate(sim::PolicyKind::kCsCq, c, other);
  EXPECT_NE(reseeded.arrival_hash, before.arrival_hash);
}

// Policy knobs must not reach the arrival stream either: retuning
// threshold-steal changes decisions, never the sampled workload.
TEST(PolicyIsolation, KnobsDoNotPerturbArrivals) {
  const SystemConfig c = zoo_config();
  sim::SimOptions o;
  o.total_completions = 20000;
  const sim::SimResult base = sim::simulate(sim::PolicyKind::kThresholdSteal, c, o);
  sim::SimOptions tuned = o;
  tuned.policy.steal_threshold = 5;
  tuned.policy.steal_batch = 4;
  const sim::SimResult retuned = sim::simulate(sim::PolicyKind::kThresholdSteal, c, tuned);
  EXPECT_EQ(base.arrival_hash, retuned.arrival_hash);
}

// --- Panel -------------------------------------------------------------------

// The policy x dist x load panel is bit-identical across thread counts and
// classifies cells: analytic policies get exact values, simulated policies
// get CIs, and cells past the pooled stability frontier are kUnstable.
TEST(PolicyPanel, BitIdenticalAcrossThreadCountsAndStatusesClassified) {
  const std::vector<sim::PolicyKind> policies = {sim::PolicyKind::kCsCq,
                                                 sim::PolicyKind::kStealOne};
  const std::vector<double> grid = {0.5, 1.0, 1.8};
  PanelOptions one;
  one.threads = 1;
  one.sim_completions = 20000;
  one.sim_replications = 2;
  PanelOptions four = one;
  four.threads = 4;
  const std::vector<PanelRow> a =
      sweep_policy_panel(policies, JobSizeDist::kBPareto, 0.5, 1.0, 10.0, 4.0, grid, one);
  const std::vector<PanelRow> b =
      sweep_policy_panel(policies, JobSizeDist::kBPareto, 0.5, 1.0, 10.0, 4.0, grid, four);
  ASSERT_EQ(a.size(), policies.size() * grid.size());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i));
    EXPECT_EQ(a[i].policy, b[i].policy);
    EXPECT_EQ(a[i].status, b[i].status);
    EXPECT_TRUE(same_bits(a[i].short_response, b[i].short_response));
    EXPECT_TRUE(same_bits(a[i].long_response, b[i].long_response));
    EXPECT_TRUE(same_bits(a[i].short_ci95, b[i].short_ci95));
    EXPECT_TRUE(same_bits(a[i].long_ci95, b[i].long_ci95));
  }
  // CS-CQ rows are analytic (zero CI); steal-one rows are simulated.
  EXPECT_TRUE(a[0].analytic);
  EXPECT_EQ(a[0].status, PointStatus::kOk);
  EXPECT_TRUE(same_bits(a[0].short_ci95, 0.0));
  EXPECT_FALSE(a[3].analytic);
  EXPECT_EQ(a[3].status, PointStatus::kOk);
  EXPECT_GT(a[3].short_ci95, 0.0);
  // rho_S = 1.8 with rho_L = 0.5 is past both frontiers (CS-CQ needs
  // rho_S < 2 - rho_L; pooled simulation needs rho_S + rho_L < 2).
  EXPECT_EQ(a[2].status, PointStatus::kUnstable);
  EXPECT_EQ(a[5].status, PointStatus::kUnstable);
  EXPECT_TRUE(std::isnan(a[5].short_response));
}

TEST(PolicyPanel, RejectsMalformedArguments) {
  const std::vector<sim::PolicyKind> policies = {sim::PolicyKind::kCsCq};
  EXPECT_THROW((void)sweep_policy_panel({}, JobSizeDist::kExp, 0.5, 1.0, 10.0, 1.0, {0.5}),
               InvalidInputError);
  EXPECT_THROW((void)sweep_policy_panel(policies, JobSizeDist::kExp, 0.5, 1.0, 10.0, 1.0, {}),
               InvalidInputError);
  EXPECT_THROW((void)job_size_dist_from_name("zipf"), InvalidInputError);
  EXPECT_EQ(job_size_dist_from_name("bpareto"), JobSizeDist::kBPareto);
  EXPECT_STREQ(job_size_dist_name(JobSizeDist::kCoxian), "coxian");
}

}  // namespace
