#include <gtest/gtest.h>

#include <memory>

#include "analysis/cscq.h"
#include "analysis/cscq_map.h"
#include "dist/map_process.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace csq::analysis {
namespace {

SystemConfig with_map(double rho_s, double rho_l, dist::MapProcess map, double long_scv = 1.0) {
  SystemConfig c = SystemConfig::paper_setup(rho_s, rho_l, 1.0, 1.0, long_scv);
  c.short_arrivals = std::make_shared<dist::MapProcess>(std::move(map));
  return c;
}

TEST(MapProcess, PoissonBasics) {
  const dist::MapProcess m = dist::MapProcess::poisson(2.5);
  EXPECT_EQ(m.num_phases(), 1u);
  EXPECT_NEAR(m.mean_rate(), 2.5, 1e-12);
}

TEST(MapProcess, Mmpp2StationaryAndRate) {
  // Phase 0 fraction = s10/(s01+s10) = 0.75 with s01 = 1, s10 = 3.
  const dist::MapProcess m = dist::MapProcess::mmpp2(1.0, 5.0, 1.0, 3.0);
  EXPECT_NEAR(m.stationary_phases()[0], 0.75, 1e-12);
  EXPECT_NEAR(m.mean_rate(), 0.75 * 1.0 + 0.25 * 5.0, 1e-12);
}

TEST(MapProcess, BurstyHitsTargets) {
  const dist::MapProcess m = dist::MapProcess::bursty(0.9, 3.0, 0.2, 5.0);
  EXPECT_NEAR(m.mean_rate(), 0.9, 1e-12);
  EXPECT_NEAR(m.stationary_phases()[1], 0.2, 1e-12);
  EXPECT_THROW(dist::MapProcess::bursty(1.0, 10.0, 0.5, 1.0), std::invalid_argument);
}

TEST(MapProcess, SamplingMatchesMeanRate) {
  const dist::MapProcess m = dist::MapProcess::bursty(2.0, 4.0, 0.1, 3.0);
  dist::Rng rng = sim::make_rng(5);
  dist::MapProcess::State st = m.stationary_state(rng);
  const int n = 400000;
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += m.next_interarrival(st, rng);
  EXPECT_NEAR(n / total, 2.0, 0.03);
}

TEST(MapProcess, InvalidInputsThrow) {
  EXPECT_THROW(dist::MapProcess(linalg::Matrix{{-1.0}}, linalg::Matrix{{2.0}}),
               std::invalid_argument);
  EXPECT_THROW(dist::MapProcess::poisson(0.0), std::invalid_argument);
  EXPECT_THROW(dist::MapProcess::mmpp2(0.0, 0.0, 1.0, 1.0), std::invalid_argument);
}

TEST(CscqMap, PoissonMapReducesToBaseAnalysis) {
  for (const double rho_s : {0.5, 1.0, 1.3}) {
    const SystemConfig base = SystemConfig::paper_setup(rho_s, 0.5, 1.0, 1.0, 8.0);
    const SystemConfig mapped =
        with_map(rho_s, 0.5, dist::MapProcess::poisson(base.lambda_short), 8.0);
    const CscqResult expo = analyze_cscq(base);
    const CscqMapResult m = analyze_cscq_map(mapped);
    EXPECT_NEAR(m.metrics.shorts.mean_response, expo.metrics.shorts.mean_response,
                1e-8 * expo.metrics.shorts.mean_response);
    EXPECT_NEAR(m.metrics.longs.mean_response, expo.metrics.longs.mean_response,
                1e-8 * expo.metrics.longs.mean_response);
  }
}

TEST(CscqMap, BurstinessHurtsShorts) {
  const SystemConfig base = SystemConfig::paper_setup(0.9, 0.5, 1.0, 1.0);
  const SystemConfig bursty =
      with_map(0.9, 0.5, dist::MapProcess::bursty(base.lambda_short, 3.0, 0.2, 10.0));
  const double poisson_resp = analyze_cscq(base).metrics.shorts.mean_response;
  const double bursty_resp = analyze_cscq_map(bursty).metrics.shorts.mean_response;
  EXPECT_GT(bursty_resp, 1.3 * poisson_resp);
}

TEST(CscqMap, MatchesSimulationUnderBurstyArrivals) {
  const SystemConfig c =
      with_map(0.9, 0.5, dist::MapProcess::bursty(0.9, 3.0, 0.2, 10.0), 8.0);
  const CscqMapResult r = analyze_cscq_map(c);
  sim::SimOptions opts;
  opts.total_completions = 1500000;
  const sim::SimResult s = sim::simulate(sim::PolicyKind::kCsCq, c, opts);
  EXPECT_NEAR(r.metrics.shorts.mean_response, s.shorts.mean_response,
              0.05 * s.shorts.mean_response + 2.0 * s.shorts.ci95);
  EXPECT_NEAR(r.metrics.longs.mean_response, s.longs.mean_response,
              0.05 * s.longs.mean_response + 2.0 * s.longs.ci95);
}

TEST(CscqMap, StabilityUsesMeanRate) {
  // Mean rho_S = 1.6 > 2 - rho_L even though the low phase is idle.
  const SystemConfig c = with_map(1.6, 0.5, dist::MapProcess::bursty(1.6, 1.2, 0.5, 1.0));
  EXPECT_THROW((void)analyze_cscq_map(c), std::domain_error);
  SystemConfig no_map = SystemConfig::paper_setup(0.5, 0.5, 1.0, 1.0);
  EXPECT_THROW((void)analyze_cscq_map(no_map), std::invalid_argument);
}

}  // namespace
}  // namespace csq::analysis
