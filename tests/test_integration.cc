// End-to-end checks: the analytic chain against the discrete-event
// simulator over a parameter grid (the paper's Section 4 validation, as a
// regression test), plus cross-policy consistency through the facade.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/stability.h"
#include "core/solver.h"
#include "sim/simulator.h"

namespace csq {
namespace {

struct GridPoint {
  double rho_s, rho_l, mean_l, scv_l;
};

class AnalysisVsSimulation : public ::testing::TestWithParam<GridPoint> {};

TEST_P(AnalysisVsSimulation, CsCqWithinFivePercent) {
  const GridPoint g = GetParam();
  const SystemConfig c = SystemConfig::paper_setup(g.rho_s, g.rho_l, 1.0, g.mean_l, g.scv_l);
  const PolicyMetrics m = analyze(Policy::kCsCq, c);
  sim::SimOptions opts;
  opts.total_completions = 800000;
  const sim::SimResult s = sim::simulate(sim::PolicyKind::kCsCq, c, opts);
  EXPECT_NEAR(m.shorts.mean_response, s.shorts.mean_response,
              0.05 * s.shorts.mean_response + 2.0 * s.shorts.ci95);
  EXPECT_NEAR(m.longs.mean_response, s.longs.mean_response,
              0.05 * s.longs.mean_response + 2.0 * s.longs.ci95);
}

TEST_P(AnalysisVsSimulation, CsIdWithinFivePercent) {
  const GridPoint g = GetParam();
  if (!analysis::csid_stable(g.rho_s, g.rho_l)) GTEST_SKIP();
  const SystemConfig c = SystemConfig::paper_setup(g.rho_s, g.rho_l, 1.0, g.mean_l, g.scv_l);
  const PolicyMetrics m = analyze(Policy::kCsId, c);
  sim::SimOptions opts;
  opts.total_completions = 800000;
  const sim::SimResult s = sim::simulate(sim::PolicyKind::kCsId, c, opts);
  EXPECT_NEAR(m.shorts.mean_response, s.shorts.mean_response,
              0.05 * s.shorts.mean_response + 2.0 * s.shorts.ci95);
  EXPECT_NEAR(m.longs.mean_response, s.longs.mean_response,
              0.05 * s.longs.mean_response + 2.0 * s.longs.ci95);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AnalysisVsSimulation,
    ::testing::Values(GridPoint{0.5, 0.5, 1.0, 1.0}, GridPoint{1.0, 0.5, 1.0, 1.0},
                      GridPoint{1.2, 0.3, 10.0, 1.0}, GridPoint{0.8, 0.6, 1.0, 8.0},
                      GridPoint{1.1, 0.5, 10.0, 8.0}),
    [](const ::testing::TestParamInfo<GridPoint>& info) {
      const GridPoint& g = info.param;
      const auto f = [](double v) {
        std::string s = std::to_string(v);
        for (auto& ch : s)
          if (ch == '.' || ch == '-') ch = '_';
        return s.substr(0, 4);
      };
      return "rs" + f(g.rho_s) + "_rl" + f(g.rho_l) + "_ml" + f(g.mean_l) + "_c" + f(g.scv_l);
    });

TEST(Integration, PaperHeadline_OrderOfMagnitudeBenefitNearSaturation) {
  // Figure 4(a): at rho_S slightly below 1, Dedicated is ~10x worse than
  // cycle stealing for shorts.
  const SystemConfig c = SystemConfig::paper_setup(0.97, 0.5, 1.0, 1.0);
  const double ded = analyze(Policy::kDedicated, c).shorts.mean_response;
  const double cq = analyze(Policy::kCsCq, c).shorts.mean_response;
  EXPECT_GT(ded / cq, 10.0);
}

TEST(Integration, PaperHeadline_LongPenaltySmallAtUnitShortLoad) {
  // Figure 4(a) text: at rho_S = 1, long penalty ~10% (CS-CQ) / ~25% (CS-ID).
  const SystemConfig c = SystemConfig::paper_setup(1.0, 0.5, 1.0, 1.0);
  const double ded = 2.0;  // M/M/1 at rho = 0.5, mean 1
  const double cq = analyze(Policy::kCsCq, c).longs.mean_response;
  const double id = analyze(Policy::kCsId, c).longs.mean_response;
  EXPECT_NEAR((cq - ded) / ded, 0.10, 0.05);
  EXPECT_NEAR((id - ded) / ded, 0.25, 0.05);
}

TEST(Integration, PaperHeadline_HighVariabilityShrinksRelativePenalty) {
  // Figure 5 text: with C^2 = 8 longs, the percentage penalty drops —
  // < 5% for CS-CQ and < 10% for CS-ID at rho_S = 1 (case (a)).
  const SystemConfig c = SystemConfig::paper_setup(1.0, 0.5, 1.0, 1.0, 8.0);
  const double ded = 5.5;  // 1 + PK at rho=0.5, E[X^2]=9
  const double cq = analyze(Policy::kCsCq, c).longs.mean_response;
  const double id = analyze(Policy::kCsId, c).longs.mean_response;
  EXPECT_LT((cq - ded) / ded, 0.05);
  EXPECT_LT((id - ded) / ded, 0.10);
}

TEST(Integration, PaperHeadline_CsCqBeatsCsIdNearCsIdFrontier) {
  // Figure 4(a): as rho_S -> 1.28, CS-ID diverges while CS-CQ stays ~7.
  const SystemConfig c = SystemConfig::paper_setup(1.27, 0.5, 1.0, 1.0);
  const double id = analyze(Policy::kCsId, c).shorts.mean_response;
  const double cq = analyze(Policy::kCsCq, c).shorts.mean_response;
  EXPECT_GT(id, 40.0);
  EXPECT_LT(cq, 8.0);
  EXPECT_GT(cq, 4.0);
}

TEST(Integration, SimulatedPolicyOrderingMatchesAnalysis) {
  const SystemConfig c = SystemConfig::paper_setup(0.9, 0.5, 1.0, 10.0);
  sim::SimOptions opts;
  opts.total_completions = 500000;
  const double ded = sim::simulate(sim::PolicyKind::kDedicated, c, opts).shorts.mean_response;
  const double id = sim::simulate(sim::PolicyKind::kCsId, c, opts).shorts.mean_response;
  const double cq = sim::simulate(sim::PolicyKind::kCsCq, c, opts).shorts.mean_response;
  EXPECT_LT(cq, id);
  EXPECT_LT(id, ded);
}

}  // namespace
}  // namespace csq
