// Failure-path coverage for the structured error taxonomy (core/status.h):
// every numerical failure must surface as the right ErrorCode with useful
// diagnostics attached, not a generic exception, and the solve_r fallback
// chain must rescue near-boundary configs that the plain functional
// iteration cannot.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "analysis/cscq.h"
#include "core/check.h"
#include "analysis/stability.h"
#include "core/solver.h"
#include "core/status.h"
#include "linalg/lu.h"
#include "mg1/mg1.h"
#include "qbd/qbd.h"

namespace csq {
namespace {

using linalg::Lu;
using linalg::Matrix;

// M/M/1 as a one-phase QBD (same shape as test_qbd.cc).
qbd::Model mm1_model(double lambda, double mu) {
  qbd::Model m;
  m.a0 = Matrix{{lambda}};
  m.a1 = Matrix{{0.0}};
  m.a2 = Matrix{{mu}};
  m.first_down = Matrix{{mu}};
  m.boundary.resize(1);
  m.boundary[0].local = Matrix{{0.0}};
  m.boundary[0].up = Matrix{{lambda}};
  return m;
}

TEST(Status, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::kOk), "Ok");
  EXPECT_STREQ(error_code_name(ErrorCode::kInvalidInput), "InvalidInput");
  EXPECT_STREQ(error_code_name(ErrorCode::kUnstable), "Unstable");
  EXPECT_STREQ(error_code_name(ErrorCode::kNotConverged), "NotConverged");
  EXPECT_STREQ(error_code_name(ErrorCode::kIllConditioned), "IllConditioned");
  EXPECT_STREQ(error_code_name(ErrorCode::kVerificationFailed), "VerificationFailed");
  EXPECT_STREQ(error_code_name(ErrorCode::kInternal), "Internal");
}

TEST(Status, ErrorClassNames) {
  EXPECT_STREQ(error_class_name(ErrorCode::kInvalidInput), "InvalidInputError");
  EXPECT_STREQ(error_class_name(ErrorCode::kUnstable), "UnstableError");
  EXPECT_STREQ(error_class_name(ErrorCode::kInternal), "InternalError");
}

TEST(Status, StructuredErrorsRemainStdExceptions) {
  // The taxonomy types must be catchable both as csq::Error (new code) and
  // as the std exception each call site historically threw (old code).
  EXPECT_THROW(throw InvalidInputError("x"), std::invalid_argument);
  EXPECT_THROW(throw UnstableError("x"), std::domain_error);
  EXPECT_THROW(throw NotConvergedError("x"), std::domain_error);
  EXPECT_THROW(throw IllConditionedError("x"), std::domain_error);
  EXPECT_THROW(throw VerificationFailedError("x"), std::runtime_error);
  EXPECT_THROW(throw InternalError("x"), std::logic_error);
  try {
    throw UnstableError("load too high", Diagnostics::loads(1.7, 0.5));
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnstable);
    EXPECT_DOUBLE_EQ(e.diagnostics().rho_short, 1.7);
    EXPECT_DOUBLE_EQ(e.diagnostics().rho_long, 0.5);
  }
}

TEST(Status, StatusFromExceptionClassifies) {
  Diagnostics gave_up;
  gave_up.iterations = 42;
  const SolverStatus s1 = status_from_exception(NotConvergedError("gave up", gave_up));
  EXPECT_EQ(s1.code, ErrorCode::kNotConverged);
  EXPECT_EQ(s1.diagnostics.iterations, 42);
  EXPECT_EQ(status_from_exception(std::invalid_argument("x")).code,
            ErrorCode::kInvalidInput);
  EXPECT_EQ(status_from_exception(std::domain_error("x")).code, ErrorCode::kUnstable);
  EXPECT_EQ(status_from_exception(std::runtime_error("x")).code, ErrorCode::kInternal);
  EXPECT_EQ(status_from_exception(InternalError("x")).code, ErrorCode::kInternal);
}

TEST(Status, ThrowErrorMapsInternal) {
  // kInternal (and kOk, defensively) route to InternalError, keeping every
  // throw_error() call inside the taxonomy (csq_lint rule raw-throw).
  EXPECT_THROW(throw_error(ErrorCode::kInternal, "boom"), InternalError);
  try {
    throw_error(ErrorCode::kInternal, "boom");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternal);
  }
}

TEST(Status, CsqAssertThrowsInternalError) {
  CSQ_ASSERT(1 + 1 == 2);  // passing asserts are silent
  try {
    CSQ_ASSERT(2 + 2 == 5);
    FAIL() << "CSQ_ASSERT did not throw";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("CSQ_ASSERT(2 + 2 == 5)"), std::string::npos);
    EXPECT_EQ(e.code(), ErrorCode::kInternal);
  }
}

TEST(Status, JsonCarriesCodeAndDiagnostics) {
  SolverStatus s;
  s.code = ErrorCode::kUnstable;
  s.message = "rho too high";
  s.diagnostics = Diagnostics::loads(1.9, 0.5);
  s.diagnostics.iterations = 7;
  const std::string j = s.to_json();
  EXPECT_NE(j.find("\"code\":\"Unstable\""), std::string::npos);
  EXPECT_NE(j.find("\"rho_short\":1.9"), std::string::npos);
  EXPECT_NE(j.find("\"iterations\":7"), std::string::npos);
  EXPECT_EQ(SolverStatus{}.to_json(), "{\"ok\":true}");
}

TEST(StatusTaxonomy, UnstableLoadsCarryRho) {
  // rho_L >= 1: no policy is stable; the error must say which load is at
  // fault rather than a bare "domain_error".
  const SystemConfig c = SystemConfig::paper_setup(0.5, 1.2, 1.0, 1.0, 1.0);
  try {
    (void)analysis::analyze_cscq(c);
    FAIL() << "expected UnstableError";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnstable);
    EXPECT_NEAR(e.diagnostics().rho_long, 1.2, 1e-12);
  }
}

TEST(StatusTaxonomy, CscqBoundaryViolationIsUnstable) {
  // Just outside rho_S < 2 - rho_L.
  const SystemConfig c = SystemConfig::paper_setup(1.52, 0.5, 1.0, 1.0, 1.0);
  try {
    (void)analysis::analyze_cscq(c);
    FAIL() << "expected UnstableError";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnstable);
    EXPECT_NEAR(e.diagnostics().rho_short, 1.52, 1e-12);
  }
}

TEST(StatusTaxonomy, InvalidConfigIsInvalidInput) {
  try {
    (void)SystemConfig::paper_setup(-0.5, 0.5, 1.0, 1.0, 1.0);
    FAIL() << "expected InvalidInputError";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  }
}

TEST(StatusTaxonomy, SingularLuIsIllConditioned) {
  const Matrix singular{{1.0, 2.0}, {2.0, 4.0}};
  try {
    const Lu lu(singular);
    FAIL() << "expected IllConditionedError";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIllConditioned);
  }
  // Well-conditioned input: condition estimate is sane and cheap.
  const Lu ok(Matrix{{4.0, 1.0}, {1.0, 3.0}});
  EXPECT_GE(ok.condition_estimate(), 1.0);
  EXPECT_LT(ok.condition_estimate(), 100.0);
}

TEST(StatusTaxonomy, UnstableQbdIsUnstableWithSpectralRadius) {
  // rho = 1.5: R exists but sp(R) >= 1. The fallback chain must classify
  // this as genuinely unstable, not "did not converge".
  try {
    (void)qbd::solve(mm1_model(1.5, 1.0));
    FAIL() << "expected UnstableError";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnstable);
    EXPECT_GE(e.diagnostics().spectral_radius, 1.0 - 1e-9);
  }
  // Null-recurrent boundary case rho = 1 classifies the same way.
  try {
    (void)qbd::solve(mm1_model(1.0, 1.0));
    FAIL() << "expected UnstableError";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnstable);
  }
}

TEST(StatusTaxonomy, ExhaustedIterationBudgetIsNotConverged) {
  // A stable but slowly-mixing chain with a tiny budget and the fallback
  // chain disabled: the pre-fallback behaviour, now with a structured code
  // carrying the iteration count and tolerance.
  qbd::Options o;
  o.max_iterations = 3;
  o.allow_fallback = false;
  const Matrix a0{{0.9}}, a1{{-1.9}}, a2{{1.0}};
  try {
    (void)qbd::solve_r(a0, a1, a2, o);
    FAIL() << "expected NotConvergedError";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotConverged);
    EXPECT_EQ(e.diagnostics().iterations, 3);
    EXPECT_GT(e.diagnostics().residual, 0.0);
  }
}

TEST(FallbackChain, LogReductionRescuesExhaustedIteration) {
  // Same starved budget, fallback enabled: logarithmic reduction converges
  // quadratically and must rescue the solve, recording which stage won.
  qbd::Options o;
  o.max_iterations = 3;
  const Matrix a0{{0.9}}, a1{{-1.9}}, a2{{1.0}};
  qbd::SolveStats stats;
  const Matrix r = qbd::solve_r(a0, a1, a2, o, &stats);
  EXPECT_NEAR(r(0, 0), 0.9, 1e-10);
  EXPECT_EQ(stats.method, qbd::RMethod::kLogReduction);
  EXPECT_GE(stats.residual, 0.0);
  EXPECT_LE(stats.residual, 1e-9);
  EXPECT_FALSE(stats.trail.empty());
}

TEST(FallbackChain, NearBoundaryCscqSolvesViaLogReduction) {
  // Acceptance criterion: a CS-CQ config within 1% of the stability
  // boundary rho_S = 2 - rho_L. At 0.01% from the boundary the functional
  // iteration needs ~ 1/(1 - sp(R)) ≈ 1e4+ iterations per tolerance digit
  // and exhausts the default budget — the seed solver threw "did not
  // converge" here. The fallback chain must now solve it via logarithmic
  // reduction (~20 doubling steps) with a tiny residual.
  const double rho_l = 0.5;
  const double rho_s = 0.9999 * analysis::cscq_max_rho_short(rho_l);
  const SystemConfig c = SystemConfig::paper_setup(rho_s, rho_l, 1.0, 1.0, 1.0);

  // The pre-fallback behaviour really does fail on this config.
  analysis::CscqOptions legacy;
  legacy.qbd.allow_fallback = false;
  try {
    (void)analysis::analyze_cscq(c, legacy);
    FAIL() << "expected NotConvergedError without the fallback chain";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotConverged);
    EXPECT_GT(e.diagnostics().iterations, 0);
    EXPECT_GT(e.diagnostics().residual, 0.0);
  }

  // With the chain: solved, verified, and attributed to the right stage.
  const analysis::CscqResult res = analysis::analyze_cscq(c);
  EXPECT_EQ(res.solve_stats.method, qbd::RMethod::kLogReduction);
  EXPECT_LT(res.solve_stats.residual, 1e-8);
  EXPECT_GT(res.solve_stats.spectral_radius, 0.999);
  EXPECT_LT(res.solve_stats.spectral_radius, 1.0);
  EXPECT_TRUE(std::isfinite(res.metrics.shorts.mean_response));
  EXPECT_GT(res.metrics.shorts.mean_response, 100.0);  // near-saturation
  EXPECT_TRUE(std::isfinite(res.metrics.longs.mean_response));
}

TEST(FallbackChain, WellInsideRegionStillUsesFunctionalIteration) {
  // The fallback must not steal work from the fast path.
  const SystemConfig c = SystemConfig::paper_setup(1.1, 0.5, 1.0, 1.0, 1.0);
  const analysis::CscqResult res = analysis::analyze_cscq(c);
  EXPECT_EQ(res.solve_stats.method, qbd::RMethod::kFunctionalIteration);
  EXPECT_LT(res.solve_stats.residual, 1e-10);
  EXPECT_GT(res.solve_stats.boundary_condition, 1.0);
}

TEST(Verification, QbdSolutionVerifyPasses) {
  const qbd::Solution sol = qbd::solve(mm1_model(0.7, 1.0));
  EXPECT_TRUE(sol.verify(VerifyLevel::kNone).ok());
  EXPECT_TRUE(sol.verify(VerifyLevel::kBasic).ok());
  EXPECT_TRUE(sol.verify(VerifyLevel::kFull).ok());
}

TEST(Verification, CorruptedSolutionFailsVerify) {
  qbd::Solution sol = qbd::solve(mm1_model(0.7, 1.0));
  sol.pi_k[0] = -0.2;  // negative probability and broken mass
  const SolverStatus bad = sol.verify(VerifyLevel::kBasic);
  EXPECT_EQ(bad.code, ErrorCode::kVerificationFailed);
  EXPECT_FALSE(bad.diagnostics.notes.empty());
  EXPECT_TRUE(sol.verify(VerifyLevel::kNone).ok());  // kNone skips the checks
}

TEST(Verification, AnalyzeAtFullLevelPassesForAllPolicies) {
  const SystemConfig c = SystemConfig::paper_setup(0.9, 0.5, 1.0, 1.0, 1.0);
  for (const Policy p : {Policy::kDedicated, Policy::kCsId, Policy::kCsCq}) {
    const PolicyMetrics m = analyze(p, c, 3, VerifyLevel::kFull);
    EXPECT_TRUE(verify_metrics(m, c, VerifyLevel::kFull).ok()) << policy_label(p);
  }
}

TEST(Verification, VerifyMetricsRejectsNonsense) {
  const SystemConfig c = SystemConfig::paper_setup(0.9, 0.5, 1.0, 1.0, 1.0);
  PolicyMetrics m = analyze(Policy::kCsCq, c);
  m.shorts.mean_response = -3.0;
  EXPECT_EQ(verify_metrics(m, c).code, ErrorCode::kVerificationFailed);
  PolicyMetrics m2 = analyze(Policy::kCsCq, c);
  m2.longs.mean_number = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(verify_metrics(m2, c).code, ErrorCode::kVerificationFailed);
  // Little's-law breakage only trips at kFull.
  PolicyMetrics m3 = analyze(Policy::kCsCq, c);
  m3.shorts.mean_number += 0.5;
  EXPECT_TRUE(verify_metrics(m3, c, VerifyLevel::kBasic).ok());
  EXPECT_EQ(verify_metrics(m3, c, VerifyLevel::kFull).code,
            ErrorCode::kVerificationFailed);
}

TEST(TryAnalyze, ClassifiesWithoutThrowing) {
  const SystemConfig stable = SystemConfig::paper_setup(0.9, 0.5, 1.0, 1.0, 1.0);
  const AnalyzeOutcome good = try_analyze(Policy::kCsCq, stable);
  ASSERT_TRUE(good.ok());
  EXPECT_GT(good.metrics.shorts.mean_response, 0.0);

  const SystemConfig unstable = SystemConfig::paper_setup(1.9, 0.5, 1.0, 1.0, 1.0);
  const AnalyzeOutcome bad = try_analyze(Policy::kCsCq, unstable);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status.code, ErrorCode::kUnstable);
  EXPECT_NEAR(bad.status.diagnostics.rho_short, 1.9, 1e-12);
  EXPECT_NE(bad.status.to_json().find("\"code\":\"Unstable\""), std::string::npos);
}

TEST(StatusTaxonomy, Mg1OverloadIsUnstable) {
  try {
    (void)mg1::mm1_response(1.3, 1.0);
    FAIL() << "expected UnstableError";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnstable);
    EXPECT_NEAR(e.diagnostics().rho_long, 1.3, 1e-12);
  }
}

TEST(Tails, DecayRateMatchesSpectralRadiusEstimate) {
  // tail_decay_rate delegates to the shared power iteration; for M/M/1 both
  // must equal rho exactly (up to the early-exit tolerance).
  const double rho = 0.85;
  const qbd::Solution sol = qbd::solve(mm1_model(rho, 1.0));
  EXPECT_NEAR(sol.tail_decay_rate(), rho, 1e-9);
  EXPECT_NEAR(qbd::spectral_radius_estimate(sol.r), rho, 1e-9);
}

}  // namespace
}  // namespace csq
