# Included by CTest after gtest discovery has registered the in-process
# durable suite (this include is appended between the two csq_durable_tests
# discovery calls, so csq_durable_tests_TESTS holds exactly that list — the
# crash-drill discovery overwrites it afterwards and keeps its single
# `durable` label). gtest_discover_tests' serializer cannot carry a
# multi-label list, so the full label set is applied here.
foreach(t IN LISTS csq_durable_tests_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tier1;durable")
endforeach()
