#include <gtest/gtest.h>

#include "jets/jet.h"

namespace csq::jets {
namespace {

TEST(Jet, ProductTruncates) {
  // (1 + s)(1 - s) = 1 - s^2.
  const Jet a{{1, 1, 0, 0}};
  const Jet b{{1, -1, 0, 0}};
  const Jet p = a * b;
  EXPECT_DOUBLE_EQ(p[0], 1);
  EXPECT_DOUBLE_EQ(p[1], 0);
  EXPECT_DOUBLE_EQ(p[2], -1);
  EXPECT_DOUBLE_EQ(p[3], 0);
}

TEST(Jet, Reciprocal) {
  // 1/(1 + s) = 1 - s + s^2 - s^3.
  const Jet r = reciprocal(Jet{{1, 1, 0, 0}});
  EXPECT_DOUBLE_EQ(r[0], 1);
  EXPECT_DOUBLE_EQ(r[1], -1);
  EXPECT_DOUBLE_EQ(r[2], 1);
  EXPECT_DOUBLE_EQ(r[3], -1);
  EXPECT_THROW(reciprocal(Jet{{0, 1, 0, 0}}), csq::InvalidInputError);
}

TEST(Jet, DivisionMatchesGeometricSeries) {
  // mu/(mu + s) with mu = 2: coefficients (-1)^k / 2^k.
  const Jet f = 2.0 / (Jet::variable() + 2.0);
  EXPECT_DOUBLE_EQ(f[0], 1);
  EXPECT_DOUBLE_EQ(f[1], -0.5);
  EXPECT_DOUBLE_EQ(f[2], 0.25);
  EXPECT_DOUBLE_EQ(f[3], -0.125);
}

TEST(Jet, ExponentialLstRoundTrip) {
  // Exp(mu): LST mu/(mu+s), moments k!/mu^k.
  const double mu = 3.0;
  const Jet f = mu / (Jet::variable() + mu);
  const RawMoments3 m = moments_from_lst(f);
  EXPECT_NEAR(m.m1, 1.0 / mu, 1e-12);
  EXPECT_NEAR(m.m2, 2.0 / (mu * mu), 1e-12);
  EXPECT_NEAR(m.m3, 6.0 / (mu * mu * mu), 1e-12);
}

TEST(Jet, LstFromMomentsInverse) {
  const Jet f = lst_from_moments(1.5, 4.0, 20.0);
  const RawMoments3 m = moments_from_lst(f);
  EXPECT_DOUBLE_EQ(m.m1, 1.5);
  EXPECT_DOUBLE_EQ(m.m2, 4.0);
  EXPECT_DOUBLE_EQ(m.m3, 20.0);
}

TEST(Jet, Compose0Polynomial) {
  // f(u) = 1 + u + u^2 + u^3 composed with g = 2s:
  // 1 + 2s + 4s^2 + 8s^3.
  const Jet f{{1, 1, 1, 1}};
  const Jet g{{0, 2, 0, 0}};
  const Jet c = compose0(f, g);
  EXPECT_DOUBLE_EQ(c[0], 1);
  EXPECT_DOUBLE_EQ(c[1], 2);
  EXPECT_DOUBLE_EQ(c[2], 4);
  EXPECT_DOUBLE_EQ(c[3], 8);
  EXPECT_THROW(compose0(f, Jet{{1, 0, 0, 0}}), csq::InvalidInputError);
}

TEST(Jet, ComposeAnalyticOuter) {
  // g(z) = 1/(2 - z) around z = 1: derivatives k! — compose with inner
  // z(s) = 1 + s gives 1/(1 - s) = 1 + s + s^2 + s^3.
  const std::array<double, kOrder> derivs{1.0, 1.0, 2.0, 6.0};
  const Jet inner{{1, 1, 0, 0}};
  const Jet c = compose(derivs, inner);
  for (int k = 0; k < kOrder; ++k) EXPECT_NEAR(c[k], 1.0, 1e-12);
}

TEST(Jet, GeometricCompoundMatchesClosedForm) {
  // Sum of a Geometric(p)-distributed number (support 1,2,...) of Exp(mu)
  // variables is Exp(mu p): check via composition of the PGF with the LST.
  const double mu = 2.0, p = 0.25;
  const Jet x = mu / (Jet::variable() + mu);
  // PGF of Geometric(p) on {1,2,...}: g(z) = p z / (1 - (1-p) z).
  // Derivatives at z = 1: g(1)=1, g'(1)=1/p, g''(1)=2(1-p)/p^2,
  // g'''(1)=6(1-p)^2/p^3.
  const std::array<double, kOrder> derivs{1.0, 1.0 / p, 2.0 * (1 - p) / (p * p),
                                          6.0 * (1 - p) * (1 - p) / (p * p * p)};
  const RawMoments3 m = moments_from_lst(compose(derivs, x));
  const double rate = mu * p;
  EXPECT_NEAR(m.m1, 1.0 / rate, 1e-12);
  EXPECT_NEAR(m.m2, 2.0 / (rate * rate), 1e-12);
  EXPECT_NEAR(m.m3, 6.0 / (rate * rate * rate), 1e-12);
}

}  // namespace
}  // namespace csq::jets
