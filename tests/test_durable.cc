// The durability layer (src/durable/): CRC-framed write-ahead request
// journal, checkpointed sweeps, and their integration with the serve tier —
// plus kill/restart crash drills against the real csq_serve / csq_cli
// binaries (tools/chaos_crash.sh runs the same drills with SIGKILL timing
// under the CI durable stage).
//
// Suite layout mirrors the ctest labels (tests/durable_labels.cmake):
//   DurableCrc / DurableJournal / DurableCheckpoint / DurableSweep /
//   DurableServe    tier1;durable — deterministic, in-process
//   ServeCrash / SweepCrash  durable — fork/exec the installed binaries,
//                   kill them, and assert the recovery contract; assertions
//                   hold for *any* kill timing, so the suite is not flaky,
//                   but it stays off the tier1 gate because it spawns
//                   processes and sleeps.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/deadline.h"
#include "core/faultpoint.h"
#include "core/status.h"
#include "core/sweep.h"
#include "durable/checkpoint.h"
#include "durable/journal.h"
#include "serve/server.h"

namespace csq {
namespace {

using durable::Journal;
using durable::JournalOptions;
using durable::Record;
using durable::RecordKind;
using durable::Recovery;
using durable::ReplayStats;
using durable::SweepCheckpoint;

// --- helpers ---------------------------------------------------------------

// Unique scratch path per call; the file itself is created by the code under
// test. Leaks into the gtest temp dir, which the harness owns.
std::string scratch_path(const std::string& tag) {
  static int counter = 0;
  return ::testing::TempDir() + "csq_durable_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + "_" + tag;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good()) << path;
}

std::string analyze_line(const std::string& id, double rho_s, double rho_l) {
  return "{\"id\":\"" + id + "\",\"op\":\"analyze\",\"rho_s\":" + std::to_string(rho_s) +
         ",\"rho_l\":" + std::to_string(rho_l) + ",\"mean_s\":1,\"mean_l\":1,\"scv_l\":1}";
}

// --- CRC-32 ----------------------------------------------------------------

TEST(DurableCrc, KnownAnswerAndChaining) {
  // The IEEE CRC-32 check value: crc32("123456789") == 0xCBF43926.
  const char kCheck[] = "123456789";
  EXPECT_EQ(durable::crc32(kCheck, 9), 0xCBF43926u);
  EXPECT_EQ(durable::crc32("", 0), 0u);
  // Chaining via the seed matches one-shot computation.
  const std::uint32_t head = durable::crc32(kCheck, 4);
  EXPECT_EQ(durable::crc32(kCheck + 4, 5, head), 0xCBF43926u);
  // A single flipped bit changes the sum (the torn-tail detector's whole
  // job).
  char flipped[9];
  std::memcpy(flipped, kCheck, 9);
  flipped[4] ^= 0x01;
  EXPECT_NE(durable::crc32(flipped, 9), 0xCBF43926u);
}

// --- Journal ---------------------------------------------------------------

TEST(DurableJournal, RoundTripAppendReplay) {
  const std::string path = scratch_path("roundtrip.ndjson");
  {
    Journal j = Journal::open(path);
    EXPECT_EQ(j.append_request("{\"id\":\"a\"}"), 1u);
    j.append_response(1, "{\"id\":\"a\",\"ok\":true}");
    EXPECT_EQ(j.append_request("{\"id\":\"b\"}"), 2u);
    j.close();
  }
  ReplayStats stats;
  const std::vector<Record> records = durable::replay(path, &stats);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(stats.frames, 3u);
  EXPECT_EQ(stats.max_seq, 2u);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(records[0].kind, RecordKind::kRequest);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[0].payload, "{\"id\":\"a\"}");
  EXPECT_EQ(records[1].kind, RecordKind::kResponse);
  EXPECT_EQ(records[1].payload, "{\"id\":\"a\",\"ok\":true}");
  EXPECT_EQ(records[2].seq, 2u);

  const Recovery rec = durable::recover(path);
  ASSERT_EQ(rec.requests.size(), 2u);
  EXPECT_TRUE(rec.requests[0].completed());
  EXPECT_EQ(rec.requests[0].response, "{\"id\":\"a\",\"ok\":true}");
  EXPECT_FALSE(rec.requests[1].completed());
}

TEST(DurableJournal, MissingFileReplaysEmpty) {
  ReplayStats stats;
  EXPECT_TRUE(durable::replay(scratch_path("never_created"), &stats).empty());
  EXPECT_EQ(stats.frames, 0u);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_TRUE(durable::recover(scratch_path("never_created_2")).requests.empty());
}

TEST(DurableJournal, TruncatedTailIsDiscardedSilently) {
  const std::string path = scratch_path("torn.ndjson");
  {
    Journal j = Journal::open(path);
    (void)j.append_request("first request line");
    (void)j.append_request("second request line");
    j.close();
  }
  const std::string full = slurp(path);
  // Chop bytes off the end: every cut inside the final frame must replay to
  // exactly the first record plus a torn tail — never an exception.
  for (std::size_t cut = 1; cut < 30; ++cut) {
    spit(path, full.substr(0, full.size() - cut));
    ReplayStats stats;
    std::vector<Record> records;
    ASSERT_NO_THROW(records = durable::replay(path, &stats)) << "cut=" << cut;
    ASSERT_EQ(records.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(records[0].payload, "first request line");
    EXPECT_TRUE(stats.torn_tail);
    EXPECT_GT(stats.torn_bytes, 0u);
  }
}

TEST(DurableJournal, FlippedPayloadByteInTailIsTorn) {
  const std::string path = scratch_path("crc_tail.ndjson");
  {
    Journal j = Journal::open(path);
    (void)j.append_request("payload under test");
    j.close();
  }
  std::string bytes = slurp(path);
  bytes[bytes.size() - 5] ^= 0x20;  // flip a payload bit in the final frame
  spit(path, bytes);
  ReplayStats stats;
  EXPECT_TRUE(durable::replay(path, &stats).empty());
  EXPECT_TRUE(stats.torn_tail);
}

TEST(DurableJournal, HugeLengthHeaderCannotWrapTheBoundsCheck) {
  const std::string path = scratch_path("hugelen.ndjson");
  {
    Journal j = Journal::open(path);
    (void)j.append_request("good frame");
    j.close();
  }
  // A corrupt header claiming a near-2^64 payload: the naive truncation
  // check `payload_start + len + 1 > size` wraps to a small number, passes,
  // and downstream indexing runs on garbage offsets. Must decode as a torn
  // tail, never crash.
  spit(path, slurp(path) + "CSQJ1 req 2 18446744073709551610 00000000\njunk\n");
  ReplayStats stats;
  std::vector<Record> records;
  ASSERT_NO_THROW(records = durable::replay(path, &stats));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "good frame");
  EXPECT_TRUE(stats.torn_tail);
}

TEST(DurableJournal, MidFileCorruptionThrows) {
  const std::string path = scratch_path("midfile.ndjson");
  {
    Journal j = Journal::open(path);
    (void)j.append_request("first request line");
    (void)j.append_request("second request line");
    j.close();
  }
  std::string bytes = slurp(path);
  // Corrupt the *first* frame's payload; the intact second frame after it
  // proves this is tampering, not a crash artifact.
  bytes[bytes.find("first") + 1] ^= 0x20;
  spit(path, bytes);
  EXPECT_THROW((void)durable::replay(path), CorruptJournalError);
  EXPECT_THROW((void)durable::recover(path), CorruptJournalError);
}

TEST(DurableJournal, ResponseWithoutRequestIsCorruption) {
  const std::string path = scratch_path("orphan_res.ndjson");
  {
    Journal j = Journal::open(path);
    j.append_record(RecordKind::kResponse, 7, "orphan response");
    j.close();
  }
  EXPECT_THROW((void)durable::recover(path), CorruptJournalError);
}

TEST(DurableJournal, DuplicateRecordsKeepFirstOccurrence) {
  const std::string path = scratch_path("dupes.ndjson");
  {
    Journal j = Journal::open(path);
    j.append_record(RecordKind::kRequest, 1, "original request");
    j.append_record(RecordKind::kRequest, 1, "late duplicate request");
    j.append_record(RecordKind::kResponse, 1, "original response");
    j.append_record(RecordKind::kResponse, 1, "late duplicate response");
    j.close();
  }
  const Recovery rec = durable::recover(path);
  ASSERT_EQ(rec.requests.size(), 1u);
  EXPECT_EQ(rec.requests[0].request, "original request");
  EXPECT_EQ(rec.requests[0].response, "original response");
}

TEST(DurableJournal, FsyncIsBatchedAndFlushedOnClose) {
  const std::string path = scratch_path("fsync.ndjson");
  JournalOptions opts;
  opts.fsync_every = 4;
  Journal j = Journal::open(path, opts);
  for (int i = 0; i < 8; ++i) (void)j.append_request("r" + std::to_string(i));
  EXPECT_EQ(j.fsyncs(), 2);  // two full batches
  (void)j.append_request("tail");
  EXPECT_EQ(j.fsyncs(), 2);  // ninth append sits in the open batch
  j.flush();
  EXPECT_EQ(j.fsyncs(), 3);
  j.flush();                 // nothing pending: no extra fsync
  EXPECT_EQ(j.fsyncs(), 3);
  j.close();
  EXPECT_FALSE(j.is_open());
}

TEST(DurableJournal, RejectsMultiLinePayloadAndBadOptions) {
  const std::string path = scratch_path("reject.ndjson");
  Journal j = Journal::open(path);
  EXPECT_THROW((void)j.append_request("two\nlines"), InvalidInputError);
  EXPECT_THROW((void)Journal::open(""), InvalidInputError);
  JournalOptions bad;
  bad.fsync_every = 0;
  EXPECT_THROW((void)Journal::open(path, bad), InvalidInputError);
}

TEST(DurableJournal, NextSeqContinuesAfterRecovery) {
  const std::string path = scratch_path("reopen.ndjson");
  {
    Journal j = Journal::open(path);
    (void)j.append_request("before crash");
    j.close();
  }
  ReplayStats stats;
  (void)durable::replay(path, &stats);
  JournalOptions opts;
  opts.next_seq = stats.max_seq + 1;
  Journal j = Journal::open(path, opts);
  EXPECT_EQ(j.append_request("after restart"), 2u);
  j.close();
  EXPECT_EQ(durable::recover(path).requests.size(), 2u);
}

TEST(DurableJournal, TornTailIsTrimmedOnReopenSoLaterAppendsStayRecoverable) {
  const std::string path = scratch_path("trim.ndjson");
  {
    Journal j = Journal::open(path);
    (void)j.append_request("survives the crash");
    (void)j.append_request("torn by the crash");
    j.close();
  }
  const std::string full = slurp(path);
  spit(path, full.substr(0, full.size() - 7));  // power-loss tears the last frame

  ReplayStats stats;
  ASSERT_EQ(durable::replay(path, &stats).size(), 1u);
  ASSERT_TRUE(stats.torn_tail);
  // Reopen the way csq_serve --recover does: trim the debris, then append.
  JournalOptions opts;
  opts.next_seq = stats.max_seq + 1;
  opts.trim_tail_bytes = stats.torn_bytes;
  {
    Journal j = Journal::open(path, opts);
    (void)j.append_request("written after recovery");
    j.close();
  }
  // The second recovery must see a clean history — the regression was new
  // frames landing *after* the torn tail, which replay() then refused as
  // mid-file corruption, making one power loss fatal to the journal.
  ReplayStats again;
  std::vector<Record> records;
  ASSERT_NO_THROW(records = durable::replay(path, &again));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].payload, "survives the crash");
  EXPECT_EQ(records[1].payload, "written after recovery");
  EXPECT_FALSE(again.torn_tail);
  // A trim that exceeds the file (the file changed since replay) refuses
  // loudly rather than truncating good history.
  JournalOptions bad = opts;
  bad.trim_tail_bytes = slurp(path).size() + 1;
  EXPECT_THROW((void)Journal::open(path, bad), InvalidInputError);
}

TEST(DurableJournal, FailedAppendWithoutRollbackPoisonsTheJournal) {
  // /dev/full fails every write with ENOSPC and, being a character device,
  // also refuses the ftruncate rollback — the shape where a partial frame
  // could be stranded mid-file. The journal must poison itself: later
  // appends refuse instead of landing after potential debris.
  if (::access("/dev/full", W_OK) != 0) GTEST_SKIP() << "no writable /dev/full";
  Journal j = Journal::open("/dev/full");
  EXPECT_THROW((void)j.append_request("doomed"), InternalError);
  try {
    (void)j.append_request("after the failure");
    FAIL() << "poisoned journal accepted an append";
  } catch (const InternalError& e) {
    EXPECT_NE(e.status().message.find("disabled"), std::string::npos)
        << e.status().message;
  }
  j.close();
}

// --- Checkpoint files ------------------------------------------------------

SweepCheckpoint sample_checkpoint(std::size_t n) {
  SweepCheckpoint ckpt;
  ckpt.meta = "axis=test;n=" + std::to_string(n);
  for (std::size_t i = 0; i < n; ++i) {
    SweepRow row;
    row.x = 0.1 * static_cast<double>(i + 1);
    row.dedicated_short = 1.5 + static_cast<double>(i);
    row.cscq_long = 2.5 - 0.25 * static_cast<double>(i);
    row.dedicated_status = PointStatus::kOk;
    row.cscq_status = i % 2 == 0 ? PointStatus::kOk : PointStatus::kTimedOut;
    ckpt.rows.push_back(row);
    ckpt.done.push_back(i % 2 == 0 ? 1 : 0);
  }
  return ckpt;
}

// Bit-level row equality, field by field: double bit patterns (so NaN ==
// NaN) plus exact statuses. Whole-struct memcmp would also compare the tail
// padding, which the loader leaves indeterminate.
void expect_rows_bit_identical(const std::vector<SweepRow>& got,
                               const std::vector<SweepRow>& want) {
  const auto bits = [](double d) {
    std::uint64_t u = 0;
    std::memcpy(&u, &d, sizeof u);
    return u;
  };
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const SweepRow& g = got[i];
    const SweepRow& w = want[i];
    EXPECT_EQ(bits(g.x), bits(w.x)) << "row " << i;
    EXPECT_EQ(bits(g.dedicated_short), bits(w.dedicated_short)) << "row " << i;
    EXPECT_EQ(bits(g.csid_short), bits(w.csid_short)) << "row " << i;
    EXPECT_EQ(bits(g.cscq_short), bits(w.cscq_short)) << "row " << i;
    EXPECT_EQ(bits(g.dedicated_long), bits(w.dedicated_long)) << "row " << i;
    EXPECT_EQ(bits(g.csid_long), bits(w.csid_long)) << "row " << i;
    EXPECT_EQ(bits(g.cscq_long), bits(w.cscq_long)) << "row " << i;
    EXPECT_EQ(g.dedicated_status, w.dedicated_status) << "row " << i;
    EXPECT_EQ(g.csid_status, w.csid_status) << "row " << i;
    EXPECT_EQ(g.cscq_status, w.cscq_status) << "row " << i;
  }
}

TEST(DurableCheckpoint, SaveLoadRoundTripsBitExactlyIncludingNaN) {
  const std::string path = scratch_path("ckpt.bin");
  SweepCheckpoint ckpt = sample_checkpoint(5);
  // csid columns stay at their NaN defaults: the loader must hand back the
  // same bit patterns, not normalize them through arithmetic.
  durable::save_sweep_checkpoint(path, ckpt);
  std::string reason;
  const auto loaded = durable::load_sweep_checkpoint(path, &reason);
  ASSERT_TRUE(loaded.has_value()) << reason;
  EXPECT_EQ(loaded->meta, ckpt.meta);
  ASSERT_EQ(loaded->rows.size(), ckpt.rows.size());
  EXPECT_EQ(loaded->done, ckpt.done);
  expect_rows_bit_identical(loaded->rows, ckpt.rows);
}

TEST(DurableCheckpoint, MissingFileIsAbsentNotAnError) {
  std::string reason;
  EXPECT_FALSE(durable::load_sweep_checkpoint(scratch_path("no_ckpt"), &reason)
                   .has_value());
  EXPECT_EQ(reason, "missing");
}

TEST(DurableCheckpoint, CorruptFileIsTreatedAsAbsent) {
  const std::string path = scratch_path("ckpt_corrupt.bin");
  durable::save_sweep_checkpoint(path, sample_checkpoint(4));
  std::string bytes = slurp(path);
  // Flip a byte in every region in turn: magic, header, a row, the CRC.
  for (const std::size_t at : {std::size_t{0}, std::size_t{9}, bytes.size() / 2,
                               bytes.size() - 1}) {
    std::string mangled = bytes;
    mangled[at] ^= 0x5A;
    spit(path, mangled);
    std::string reason;
    EXPECT_FALSE(durable::load_sweep_checkpoint(path, &reason).has_value())
        << "byte " << at;
    EXPECT_FALSE(reason.empty());
  }
  // Truncation (an interrupted rename source) is also just "absent".
  spit(path, bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(durable::load_sweep_checkpoint(path).has_value());
}

TEST(DurableCheckpoint, WrappedPointCountIsRejectedNotResized) {
  const std::string path = scratch_path("ckpt_wrap.bin");
  durable::save_sweep_checkpoint(path, SweepCheckpoint{});  // zero points
  std::string bytes = slurp(path);
  // Patch the point count to 2^62 and re-seal the CRC: 2^62 * 60 bytes per
  // point wraps to 0 mod 2^64, so a multiply-based size check accepts the
  // empty point block and rows.resize(2^62) escapes as a non-csq exception.
  // The loader must reject it on the documented absent-checkpoint path.
  ASSERT_GE(bytes.size(), 12u);
  const std::size_t n_at = bytes.size() - 12;  // u64 count sits just before the CRC
  for (int i = 0; i < 8; ++i) bytes[n_at + static_cast<std::size_t>(i)] = '\0';
  bytes[n_at + 7] = static_cast<char>(0x40);  // little-endian 1 << 62
  const std::uint32_t crc = durable::crc32(bytes.data() + 8, bytes.size() - 12);
  for (int i = 0; i < 4; ++i)
    bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFFu);
  spit(path, bytes);
  std::string reason;
  std::optional<SweepCheckpoint> loaded;
  ASSERT_NO_THROW(loaded = durable::load_sweep_checkpoint(path, &reason));
  EXPECT_FALSE(loaded.has_value());
  EXPECT_EQ(reason, "point block size mismatch");
}

TEST(DurableCheckpoint, SaveValidatesShape) {
  SweepCheckpoint ckpt = sample_checkpoint(3);
  ckpt.done.pop_back();
  EXPECT_THROW(durable::save_sweep_checkpoint(scratch_path("bad.bin"), ckpt),
               InvalidInputError);
  EXPECT_THROW(durable::save_sweep_checkpoint("", sample_checkpoint(1)),
               InvalidInputError);
}

// --- Checkpointed sweeps ---------------------------------------------------

std::vector<double> small_grid() { return linspace(0.1, 0.7, 6); }

TEST(DurableSweep, UninterruptedRunMatchesPlainSweepBitExactly) {
  const std::string path = scratch_path("sweep.ckpt");
  const std::vector<SweepRow> plain =
      sweep_rho_short(0.5, 1.0, 1.0, 1.0, small_grid());
  durable::CheckpointedSweepOptions opts;
  opts.every = 2;
  const durable::CheckpointedSweepResult r =
      durable::checkpointed_sweep_rho_short(path, 0.5, 1.0, 1.0, 1.0, small_grid(), opts);
  ASSERT_EQ(r.rows.size(), plain.size());
  EXPECT_EQ(r.resumed, 0u);
  EXPECT_EQ(r.evaluated, plain.size());
  EXPECT_EQ(r.incomplete, 0u);
  expect_rows_bit_identical(r.rows, plain);
  // Second run resumes everything from the final checkpoint, recomputing
  // nothing, and stays bit-identical.
  const durable::CheckpointedSweepResult again =
      durable::checkpointed_sweep_rho_short(path, 0.5, 1.0, 1.0, 1.0, small_grid(), opts);
  EXPECT_EQ(again.resumed, plain.size());
  EXPECT_EQ(again.evaluated, 0u);
  expect_rows_bit_identical(again.rows, plain);
}

TEST(DurableSweep, PartialCheckpointResumesToIdenticalRows) {
  const std::string path = scratch_path("sweep_partial.ckpt");
  const std::vector<SweepRow> plain =
      sweep_rho_short(0.5, 1.0, 1.0, 1.0, small_grid());
  durable::CheckpointedSweepOptions opts;
  (void)durable::checkpointed_sweep_rho_short(path, 0.5, 1.0, 1.0, 1.0, small_grid(),
                                              opts);
  // Simulate a crash that left only half the rows done: clear done flags
  // (keeping the checkpoint's identity) and resume.
  auto ckpt = durable::load_sweep_checkpoint(path);
  ASSERT_TRUE(ckpt.has_value());
  for (std::size_t i = 0; i < ckpt->done.size(); i += 2) {
    ckpt->done[i] = 0;
    ckpt->rows[i] = SweepRow{};  // stale bytes must be recomputed, not trusted
  }
  durable::save_sweep_checkpoint(path, *ckpt);
  const durable::CheckpointedSweepResult r =
      durable::checkpointed_sweep_rho_short(path, 0.5, 1.0, 1.0, 1.0, small_grid(), opts);
  EXPECT_EQ(r.resumed, small_grid().size() / 2);
  EXPECT_EQ(r.evaluated, small_grid().size() - r.resumed);
  expect_rows_bit_identical(r.rows, plain);
}

TEST(DurableSweep, ExpiredBudgetRowsAreNotDoneAndResumeCompletes) {
  const std::string path = scratch_path("sweep_budget.ckpt");
  durable::CheckpointedSweepOptions opts;
  opts.sweep.budget = RunBudget::with_timeout_ms(0.0);  // expired before point 1
  const durable::CheckpointedSweepResult interrupted =
      durable::checkpointed_sweep_rho_short(path, 0.5, 1.0, 1.0, 1.0, small_grid(), opts);
  EXPECT_EQ(interrupted.incomplete, small_grid().size());
  // Timed-out rows are budget artifacts: the checkpoint must not mark them
  // done, so a resume with a real budget evaluates them for real.
  durable::CheckpointedSweepOptions fresh;
  const durable::CheckpointedSweepResult completed =
      durable::checkpointed_sweep_rho_short(path, 0.5, 1.0, 1.0, 1.0, small_grid(),
                                            fresh);
  EXPECT_EQ(completed.resumed, 0u);
  EXPECT_EQ(completed.incomplete, 0u);
  const std::vector<SweepRow> plain =
      sweep_rho_short(0.5, 1.0, 1.0, 1.0, small_grid());
  expect_rows_bit_identical(completed.rows, plain);
}

TEST(DurableSweep, RefusesACheckpointFromADifferentSweep) {
  const std::string path = scratch_path("sweep_identity.ckpt");
  durable::CheckpointedSweepOptions opts;
  (void)durable::checkpointed_sweep_rho_short(path, 0.5, 1.0, 1.0, 1.0, small_grid(),
                                              opts);
  // Same path, different fixed parameter: grafting rows across sweeps would
  // silently fabricate results.
  EXPECT_THROW((void)durable::checkpointed_sweep_rho_short(path, 0.6, 1.0, 1.0, 1.0,
                                                           small_grid(), opts),
               InvalidInputError);
  // Different axis entirely.
  EXPECT_THROW((void)durable::checkpointed_sweep_rho_long(path, 0.5, 1.0, 1.0, 1.0,
                                                          small_grid(), opts),
               InvalidInputError);
}

// --- Serve + journal integration -------------------------------------------

serve::ServerOptions serial_opts() {
  serve::ServerOptions o;
  o.workers = 0;
  o.request_timeout_ms = 0.0;
  return o;
}

TEST(DurableServe, JournalsRequestsBeforeResponses) {
  const std::string path = scratch_path("serve.ndjson");
  std::vector<std::string> sunk;
  Journal journal = Journal::open(path);
  serve::ServerOptions o = serial_opts();
  o.journal = &journal;
  o.sink = [&sunk](const std::string& r) { sunk.push_back(r); };
  serve::Server server(o);
  const std::string r1 = server.call(analyze_line("j1", 0.5, 0.5));
  const std::string r2 = server.call(analyze_line("j2", 0.4, 0.3));
  journal.close();

  const Recovery rec = durable::recover(path);
  ASSERT_EQ(rec.requests.size(), 2u);
  EXPECT_EQ(rec.requests[0].request, analyze_line("j1", 0.5, 0.5));
  EXPECT_EQ(rec.requests[0].response, r1);  // exact response bytes on disk
  EXPECT_EQ(rec.requests[1].response, r2);
  ASSERT_EQ(sunk.size(), 2u);
  EXPECT_EQ(sunk[0], r1);
  // Frame order proves write-ahead: each request frame precedes its
  // response frame.
  const std::vector<Record> records = durable::replay(path);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].kind, RecordKind::kRequest);
  EXPECT_EQ(records[1].kind, RecordKind::kResponse);
  EXPECT_EQ(records[2].kind, RecordKind::kRequest);
  EXPECT_EQ(records[3].kind, RecordKind::kResponse);
}

TEST(DurableServe, RecoveredRequestsReExecuteByteIdentically) {
  const std::string path = scratch_path("serve_recover.ndjson");
  std::vector<std::string> original;
  {
    Journal journal = Journal::open(path);
    serve::ServerOptions o = serial_opts();
    o.journal = &journal;
    serve::Server server(o);
    original.push_back(server.call(analyze_line("r1", 0.5, 0.5)));
    original.push_back(server.call(analyze_line("r2", 0.4, 0.3)));
    journal.close();
  }
  // "Crash" after r2's request frame but before its response frame: cut the
  // journal back to just past r2's request record.
  const std::string full = slurp(path);
  const std::size_t r2_req = full.find("CSQJ1 req 2");
  ASSERT_NE(r2_req, std::string::npos);
  const std::size_t r2_payload_end = full.find('\n', full.find('\n', r2_req) + 1);
  spit(path, full.substr(0, r2_payload_end + 1));

  Recovery rec = durable::recover(path);
  ASSERT_EQ(rec.requests.size(), 2u);
  ASSERT_TRUE(rec.requests[0].completed());
  EXPECT_EQ(rec.requests[0].response, original[0]);
  ASSERT_FALSE(rec.requests[1].completed());

  // Restart: journal continues past the recovered history; the unfinished
  // request re-executes under its original seq and lands the same bytes.
  JournalOptions jopts;
  jopts.next_seq = rec.stats.max_seq + 1;
  Journal journal = Journal::open(path, jopts);
  serve::ServerOptions o = serial_opts();
  o.journal = &journal;
  serve::Server server(o);
  auto ticket = server.submit_recovered(rec.requests[1].request, rec.requests[1].seq);
  while (server.process_one()) {
  }
  EXPECT_EQ(ticket->wait(), original[1]);
  EXPECT_EQ(server.stats().recovered, 1);
  journal.close();
  // The re-executed response was journaled against the *original* seq: a
  // second recovery sees both requests completed, no new request frames.
  const Recovery again = durable::recover(path);
  ASSERT_EQ(again.requests.size(), 2u);
  EXPECT_EQ(again.requests[1].response, original[1]);
}

TEST(DurableServe, JournalAppendFailureRefusesAdmissionLoudly) {
#ifndef CSQ_FAULT_INJECTION
  GTEST_SKIP() << "build with -DCSQ_FAULT_INJECTION=ON to run chaos tests";
#else
  const std::string path = scratch_path("serve_fault.ndjson");
  Journal journal = Journal::open(path);
  serve::ServerOptions o = serial_opts();
  o.journal = &journal;
  serve::Server server(o);
  fault::arm(fault::parse_arm_spec("durable.journal.append:1:throw:Internal"));
  const std::string r = server.call(analyze_line("f1", 0.5, 0.5));
  fault::disarm_all();
  // The request could not be made durable, so it was refused with an error
  // response — never silently dropped, never run un-journaled.
  EXPECT_NE(r.find("\"ok\":false"), std::string::npos) << r;
  EXPECT_TRUE(durable::recover(path).requests.empty());
  // The journal recovers for the next request.
  const std::string r2 = server.call(analyze_line("f2", 0.5, 0.5));
  EXPECT_NE(r2.find("\"ok\":true"), std::string::npos) << r2;
  journal.close();
  EXPECT_EQ(durable::recover(path).requests.size(), 1u);
#endif
}

TEST(DurableServe, InvalidBurstIsBoundedAndResets) {
  std::vector<std::string> sunk;
  serve::ServerOptions o = serial_opts();
  o.invalid_burst_limit = 3;
  o.sink = [&sunk](const std::string& r) { sunk.push_back(r); };
  serve::Server server(o);
  std::vector<std::shared_ptr<serve::Ticket>> tickets;
  for (int i = 0; i < 10; ++i) tickets.push_back(server.submit("not json #" + std::to_string(i)));
  // Lines 1-2: per-line errors. Line 3: the one burst announcement. Lines
  // 4-10: suppressed — tickets resolve empty, nothing reaches the sink.
  ASSERT_EQ(sunk.size(), 3u);
  EXPECT_NE(sunk[2].find("consecutive malformed lines"), std::string::npos) << sunk[2];
  for (int i = 3; i < 10; ++i) EXPECT_EQ(tickets[i]->wait(), "");
  serve::Server::Stats s = server.stats();
  EXPECT_EQ(s.invalid, 10);
  EXPECT_EQ(s.invalid_suppressed, 7);
  EXPECT_EQ(s.received, 10);
  // A well-formed line ends the burst; the next malformed line gets a
  // normal per-line error again.
  EXPECT_NE(server.call(analyze_line("ok", 0.5, 0.5)).find("\"ok\":true"),
            std::string::npos);
  sunk.clear();
  (void)server.submit("still not json");
  ASSERT_EQ(sunk.size(), 1u);
  EXPECT_NE(sunk[0].find("InvalidInput"), std::string::npos);
  s = server.stats();
  EXPECT_EQ(s.received, s.admitted + s.shed + s.invalid);  // balance holds
}

TEST(DurableServe, BurstLimitZeroAnswersEveryLine) {
  std::vector<std::string> sunk;
  serve::ServerOptions o = serial_opts();
  o.invalid_burst_limit = 0;
  o.sink = [&sunk](const std::string& r) { sunk.push_back(r); };
  serve::Server server(o);
  for (int i = 0; i < 20; ++i) (void)server.submit("garbage");
  EXPECT_EQ(sunk.size(), 20u);
  EXPECT_EQ(server.stats().invalid_suppressed, 0);
}

// --- Crash drills against the real binaries --------------------------------
//
// These fork/exec the installed csq_serve / csq_cli (paths baked in by the
// build), kill them at an arbitrary point, restart, and assert the recovery
// contract. The assertions are timing-independent: whatever the kill hit,
// every journaled request gets exactly one response on restart and
// re-emitted bytes match pre-crash bytes.

struct Child {
  pid_t pid = -1;
  int stdin_fd = -1;
  int stdout_fd = -1;
};

Child spawn(const char* bin, const std::vector<std::string>& args) {
  int in_pipe[2];
  int out_pipe[2];
  if (::pipe(in_pipe) != 0 || ::pipe(out_pipe) != 0) ADD_FAILURE() << "pipe failed";
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(bin));
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(bin, argv.data());
    ::_exit(127);
  }
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  Child c;
  c.pid = pid;
  c.stdin_fd = in_pipe[1];
  c.stdout_fd = out_pipe[0];
  return c;
}

void write_line(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::write(fd, framed.data() + off, framed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // child died mid-write: fine, the drill kills it anyway
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string read_until_eof(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) out.push_back(line);
  return out;
}

// The "id" field of a request/response line (the drills control the ids).
std::string id_of(const std::string& line) {
  const std::size_t key = line.find("\"id\":\"");
  if (key == std::string::npos) return "";
  const std::size_t start = key + 6;
  return line.substr(start, line.find('"', start) - start);
}

int wait_exit(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

TEST(ServeCrash, KillMidLoadThenRecoverDeliversExactlyOnce) {
  const std::string journal = scratch_path("crash.ndjson");
  const int kRequests = 24;
  Child serve = spawn(CSQ_SERVE_BIN, {"--workers", "0", "--journal=" + journal,
                                      "--fsync-every", "1"});
  for (int i = 0; i < kRequests; ++i)
    write_line(serve.stdin_fd, analyze_line("c" + std::to_string(i),
                                            0.3 + 0.01 * i, 0.4));
  // Let it chew through part of the load, then kill it dead — no drain, no
  // destructor, whatever instant the scheduler picked.
  ::usleep(150 * 1000);
  ::kill(serve.pid, SIGKILL);
  ::close(serve.stdin_fd);
  const std::string pre_crash = read_until_eof(serve.stdout_fd);
  ::close(serve.stdout_fd);
  EXPECT_EQ(wait_exit(serve.pid), -SIGKILL);

  // The journal must recover cleanly (a torn tail is fine, corruption not).
  Recovery rec;
  ASSERT_NO_THROW(rec = durable::recover(journal));

  // Restart with --recover and no new traffic: its stdout is the recovery
  // verdict — completed requests re-emitted, torn ones re-executed.
  Child again = spawn(CSQ_SERVE_BIN, {"--workers", "0", "--journal=" + journal,
                                      "--recover"});
  ::close(again.stdin_fd);  // immediate EOF
  const std::string post = read_until_eof(again.stdout_fd);
  ::close(again.stdout_fd);
  ASSERT_EQ(wait_exit(again.pid), 0) << post;

  // Exactly-once: every admitted (journaled) request answers exactly once
  // on restart; nothing extra appears.
  std::vector<std::string> post_lines = lines_of(post);
  ASSERT_EQ(post_lines.size(), rec.requests.size());
  for (std::size_t i = 0; i < rec.requests.size(); ++i)
    EXPECT_EQ(id_of(post_lines[i]), id_of(rec.requests[i].request)) << i;
  // Byte-identical re-delivery: any response the client saw before the
  // crash matches the restart's bytes for the same id, byte for byte.
  for (const std::string& before : lines_of(pre_crash)) {
    bool matched = false;
    for (const std::string& after : post_lines)
      if (id_of(after) == id_of(before)) {
        EXPECT_EQ(after, before);
        matched = true;
      }
    EXPECT_TRUE(matched) << "response for id " << id_of(before)
                         << " seen pre-crash but missing after recovery";
  }
}

TEST(ServeCrash, SecondCrashDuringRecoveryStillConverges) {
  const std::string journal = scratch_path("crash2.ndjson");
  Child serve = spawn(CSQ_SERVE_BIN, {"--workers", "0", "--journal=" + journal,
                                      "--fsync-every", "1"});
  for (int i = 0; i < 12; ++i)
    write_line(serve.stdin_fd, analyze_line("d" + std::to_string(i), 0.5, 0.3));
  ::usleep(80 * 1000);
  ::kill(serve.pid, SIGKILL);
  ::close(serve.stdin_fd);
  (void)read_until_eof(serve.stdout_fd);
  ::close(serve.stdout_fd);
  (void)wait_exit(serve.pid);

  // First recovery also gets killed mid-flight.
  Child r1 = spawn(CSQ_SERVE_BIN, {"--workers", "0", "--journal=" + journal,
                                   "--recover"});
  ::usleep(30 * 1000);
  ::kill(r1.pid, SIGKILL);
  ::close(r1.stdin_fd);
  (void)read_until_eof(r1.stdout_fd);
  ::close(r1.stdout_fd);
  (void)wait_exit(r1.pid);

  // Second recovery converges: one response per journaled request.
  Recovery rec;
  ASSERT_NO_THROW(rec = durable::recover(journal));
  Child r2 = spawn(CSQ_SERVE_BIN, {"--workers", "0", "--journal=" + journal,
                                   "--recover"});
  ::close(r2.stdin_fd);
  const std::string post = read_until_eof(r2.stdout_fd);
  ::close(r2.stdout_fd);
  ASSERT_EQ(wait_exit(r2.pid), 0) << post;
  EXPECT_EQ(lines_of(post).size(), rec.requests.size());
}

TEST(ServeCrash, TornTailThenRecoveredAppendsThenRecoverAgain) {
  // The reviewer scenario for the trim fix: a power-loss torn tail, one
  // recovered run that serves *new* traffic (appending frames), then a
  // second recovery. Without trimming, the new frames land after the torn
  // debris and the second recovery dies with CorruptJournalError (exit 10).
  const std::string journal = scratch_path("crash_torn.ndjson");
  {
    Journal j = Journal::open(journal);
    (void)j.append_request(analyze_line("t0", 0.5, 0.3));
    (void)j.append_request(analyze_line("t1", 0.4, 0.3));
    j.close();
  }
  const std::string full = slurp(journal);
  spit(journal, full.substr(0, full.size() - 9));  // tear the final frame

  // Recovery run #1 also takes one fresh request before draining.
  Child r1 = spawn(CSQ_SERVE_BIN, {"--workers", "0", "--journal=" + journal,
                                   "--fsync-every", "1", "--recover"});
  write_line(r1.stdin_fd, analyze_line("t2", 0.6, 0.2));
  ::close(r1.stdin_fd);
  const std::string out1 = read_until_eof(r1.stdout_fd);
  ::close(r1.stdout_fd);
  ASSERT_EQ(wait_exit(r1.pid), 0) << out1;
  EXPECT_EQ(lines_of(out1).size(), 2u) << out1;  // t0 re-executed + t2 served

  // Recovery run #2 must still read a clean journal: every request answers
  // exactly once, exit 0 — not CorruptJournalError.
  Recovery rec;
  ASSERT_NO_THROW(rec = durable::recover(journal));
  ASSERT_EQ(rec.requests.size(), 2u);
  Child r2 = spawn(CSQ_SERVE_BIN, {"--workers", "0", "--journal=" + journal,
                                   "--recover"});
  ::close(r2.stdin_fd);
  const std::string out2 = read_until_eof(r2.stdout_fd);
  ::close(r2.stdout_fd);
  ASSERT_EQ(wait_exit(r2.pid), 0) << out2;
  const std::vector<std::string> replies = lines_of(out2);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(id_of(replies[0]), "t0");
  EXPECT_EQ(id_of(replies[1]), "t2");
}

TEST(ServeCrash, CorruptJournalRefusesRecoveryWithExitTen) {
  const std::string journal = scratch_path("crash_corrupt.ndjson");
  {
    Journal j = Journal::open(journal);
    (void)j.append_request("{\"id\":\"x\",\"op\":\"ping\"}");
    (void)j.append_request("{\"id\":\"y\",\"op\":\"ping\"}");
    j.close();
  }
  std::string bytes = slurp(journal);
  bytes[bytes.find("\"x\"") + 1] ^= 0x20;  // mid-file damage, valid frame after
  spit(journal, bytes);
  Child serve = spawn(CSQ_SERVE_BIN, {"--workers", "0", "--journal=" + journal,
                                      "--recover"});
  ::close(serve.stdin_fd);
  (void)read_until_eof(serve.stdout_fd);
  ::close(serve.stdout_fd);
  EXPECT_EQ(wait_exit(serve.pid), 10);
}

TEST(ServeCrash, SignalStormNeitherKillsNorWedgesTheServer) {
  // Regression for the EINTR handling: SIGUSR1 interrupts the poll loop
  // (handler installed without SA_RESTART) and must change nothing; SIGTERM
  // must still drain promptly afterwards.
  Child serve = spawn(CSQ_SERVE_BIN, {"--workers", "0"});
  // Handshake first: a served ping proves main() is past handler
  // installation — a SIGUSR1 during exec startup would hit the default
  // action (terminate) and test nothing.
  write_line(serve.stdin_fd, "{\"id\":\"hello\",\"op\":\"ping\"}");
  std::string hello;
  char hbuf[256];
  while (hello.find('\n') == std::string::npos) {
    const ssize_t n = ::read(serve.stdout_fd, hbuf, sizeof(hbuf));
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0);
    hello.append(hbuf, static_cast<std::size_t>(n));
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(::kill(serve.pid, SIGUSR1), 0);
    ::usleep(1000);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(serve.pid, &status, WNOHANG), 0)
      << "server died under a SIGUSR1 storm";
  // Still serving after the storm.
  write_line(serve.stdin_fd, "{\"id\":\"alive\",\"op\":\"ping\"}");
  std::string out;
  char buf[256];
  while (out.find('\n') == std::string::npos) {
    const ssize_t n = ::read(serve.stdout_fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0);
    out.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_NE(out.find("\"pong\":true"), std::string::npos) << out;
  ASSERT_EQ(::kill(serve.pid, SIGTERM), 0);
  ::close(serve.stdin_fd);
  EXPECT_EQ(wait_exit(serve.pid), 0);
  ::close(serve.stdout_fd);
}

TEST(SweepCrash, InterruptedCliSweepResumesByteIdentically) {
  const std::string ckpt = scratch_path("cli.ckpt");
  const std::string golden = scratch_path("golden.csv");
  const std::string resumed = scratch_path("resumed.csv");
  const std::string sweep_flags =
      " sweep --x rho_s --from 0.1 --to 0.9 --points 8 --csv";
  const std::string cli = CSQ_CLI_BIN;
  ASSERT_EQ(std::system((cli + sweep_flags + " > " + golden).c_str()), 0);
  // Interrupt deterministically: an expired budget times out every point,
  // leaving a checkpoint with zero completed rows (same shape as a SIGKILL
  // mid-sweep; tools/chaos_crash.sh drills the literal-SIGKILL version).
  ASSERT_EQ(std::system((cli + sweep_flags + " --checkpoint " + ckpt +
                         " --timeout-ms 0 > /dev/null 2>&1")
                            .c_str()),
            0);
  ASSERT_EQ(std::system((cli + sweep_flags + " --checkpoint " + ckpt + " > " +
                         resumed + " 2> /dev/null")
                            .c_str()),
            0);
  EXPECT_EQ(slurp(resumed), slurp(golden));
}

}  // namespace
}  // namespace csq
