// The determinism contract of the parallel layers: sweeps, two-host
// simulation replications and multi-host replications must be BIT-identical
// for every thread count (same seeds, same grids). See docs/performance.md.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/sweep.h"
#include "msim/multi_sim.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace csq {
namespace {

// Bit-level equality that treats NaN == NaN (unstable sweep cells).
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0 || (std::isnan(a) && std::isnan(b));
}

void expect_rows_identical(const std::vector<SweepRow>& a, const std::vector<SweepRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(same_bits(a[i].x, b[i].x)) << "row " << i;
    EXPECT_TRUE(same_bits(a[i].dedicated_short, b[i].dedicated_short)) << "row " << i;
    EXPECT_TRUE(same_bits(a[i].csid_short, b[i].csid_short)) << "row " << i;
    EXPECT_TRUE(same_bits(a[i].cscq_short, b[i].cscq_short)) << "row " << i;
    EXPECT_TRUE(same_bits(a[i].dedicated_long, b[i].dedicated_long)) << "row " << i;
    EXPECT_TRUE(same_bits(a[i].csid_long, b[i].csid_long)) << "row " << i;
    EXPECT_TRUE(same_bits(a[i].cscq_long, b[i].cscq_long)) << "row " << i;
  }
}

TEST(SweepDeterminism, RhoShortSweepIdenticalAcrossThreadCounts) {
  // Includes points beyond the Dedicated and CS-ID frontiers (NaN cells).
  const std::vector<double> grid = linspace(0.1, 1.45, 12);
  SweepOptions seq;  // threads = 1, inline
  const auto baseline = sweep_rho_short(0.5, 1.0, 1.0, 8.0, grid, seq);
  for (int threads : {2, 8}) {
    SweepOptions par;
    par.threads = threads;
    expect_rows_identical(baseline, sweep_rho_short(0.5, 1.0, 1.0, 8.0, grid, par));
  }
}

TEST(SweepDeterminism, RhoLongSweepIdenticalAcrossThreadCounts) {
  const std::vector<double> grid = linspace_open(0.0, 0.95, 10);
  const auto baseline = sweep_rho_long(0.9, 1.0, 1.0, 1.0, grid, {});
  SweepOptions par;
  par.threads = 8;
  expect_rows_identical(baseline, sweep_rho_long(0.9, 1.0, 1.0, 1.0, grid, par));
}

TEST(SweepDeterminism, UnsolvablePointBecomesNaNRowNotACrash) {
  // rho_S exactly at the CS-CQ frontier (2 - rho_L): is_stable() lets it
  // through but the solve must fail — the row keeps NaN shorts columns and
  // the rest of the sweep still evaluates.
  const std::vector<double> grid = {0.5, 1.5, 0.9};
  for (int threads : {1, 4}) {
    SweepOptions opts;
    opts.threads = threads;
    const auto rows = sweep_rho_short(0.5, 1.0, 1.0, 1.0, grid, opts);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_FALSE(std::isnan(rows[0].cscq_short));
    EXPECT_TRUE(std::isnan(rows[1].cscq_short));
    EXPECT_FALSE(std::isnan(rows[2].cscq_short));
  }
}

TEST(SimDeterminism, ReplicationsIdenticalAcrossThreadCounts) {
  const SystemConfig cfg = SystemConfig::paper_setup(0.9, 0.5, 1.0, 1.0, 8.0);
  sim::SimOptions opts;
  opts.total_completions = 20000;
  sim::ReplicationOptions seq;
  seq.replications = 6;
  seq.threads = 1;
  const sim::ReplicatedResult baseline =
      sim::simulate_replications(sim::PolicyKind::kCsCq, cfg, opts, seq);
  ASSERT_EQ(baseline.replications.size(), 6u);
  for (int threads : {2, 8}) {
    sim::ReplicationOptions par = seq;
    par.threads = threads;
    const sim::ReplicatedResult r =
        sim::simulate_replications(sim::PolicyKind::kCsCq, cfg, opts, par);
    ASSERT_EQ(r.replications.size(), baseline.replications.size());
    for (std::size_t i = 0; i < r.replications.size(); ++i) {
      EXPECT_TRUE(same_bits(r.replications[i].shorts.mean_response,
                            baseline.replications[i].shorts.mean_response));
      EXPECT_TRUE(same_bits(r.replications[i].longs.mean_response,
                            baseline.replications[i].longs.mean_response));
      EXPECT_TRUE(same_bits(r.replications[i].sim_time, baseline.replications[i].sim_time));
    }
    EXPECT_TRUE(same_bits(r.shorts.mean_response, baseline.shorts.mean_response));
    EXPECT_TRUE(same_bits(r.shorts.ci95, baseline.shorts.ci95));
  }
}

TEST(SimDeterminism, SubstreamsAreIndependentPerReplication) {
  // Different replication indices must see genuinely different randomness.
  const SystemConfig cfg = SystemConfig::paper_setup(0.9, 0.5, 1.0, 1.0, 1.0);
  sim::SimOptions opts;
  opts.total_completions = 10000;
  sim::ReplicationOptions ropts;
  ropts.replications = 4;
  const auto r = sim::simulate_replications(sim::PolicyKind::kCsCq, cfg, opts, ropts);
  for (std::size_t i = 1; i < r.replications.size(); ++i)
    EXPECT_NE(r.replications[i].shorts.mean_response,
              r.replications[0].shorts.mean_response);
  // And the aggregate CI over replications is positive (spread exists).
  EXPECT_GT(r.shorts.ci95, 0.0);
}

TEST(SimDeterminism, SplitSeedIsDeterministicAndWellSpread) {
  EXPECT_EQ(sim::split_seed(42, 0), sim::split_seed(42, 0));
  EXPECT_NE(sim::split_seed(42, 0), sim::split_seed(42, 1));
  EXPECT_NE(sim::split_seed(42, 0), sim::split_seed(43, 0));
  // Adjacent keys differ in many bits (no low-bit lattice structure).
  const std::uint64_t x = sim::split_seed(7, 100) ^ sim::split_seed(7, 101);
  int bits = 0;
  for (std::uint64_t v = x; v; v >>= 1) bits += static_cast<int>(v & 1);
  EXPECT_GE(bits, 16);
}

TEST(MultiSimDeterminism, ReplicationsIdenticalAcrossThreadCounts) {
  msim::MultiConfig mc;
  mc.short_hosts = 2;
  mc.long_hosts = 2;
  mc.workload = SystemConfig::paper_setup(0.9, 0.5, 1.0, 1.0, 1.0);
  sim::SimOptions opts;
  opts.total_completions = 20000;
  sim::ReplicationOptions seq;
  seq.replications = 4;
  seq.threads = 1;
  const auto baseline =
      msim::simulate_multi_replications(msim::MultiPolicy::kCsCq, mc, opts, seq);
  sim::ReplicationOptions par = seq;
  par.threads = 8;
  const auto r = msim::simulate_multi_replications(msim::MultiPolicy::kCsCq, mc, opts, par);
  ASSERT_EQ(r.replications.size(), baseline.replications.size());
  for (std::size_t i = 0; i < r.replications.size(); ++i) {
    EXPECT_TRUE(same_bits(r.replications[i].shorts.mean_response,
                          baseline.replications[i].shorts.mean_response));
    EXPECT_TRUE(same_bits(r.replications[i].longs.mean_response,
                          baseline.replications[i].longs.mean_response));
  }
}

TEST(Replications, AggregateMatchesHandComputedMeanAndCi) {
  std::vector<sim::ClassStats> reps(4);
  const double means[4] = {1.0, 2.0, 3.0, 4.0};
  for (int i = 0; i < 4; ++i) {
    reps[static_cast<std::size_t>(i)].completions = 10;
    reps[static_cast<std::size_t>(i)].mean_response = means[i];
  }
  const sim::ClassStats agg = sim::aggregate_replications(reps);
  EXPECT_EQ(agg.completions, 40u);
  EXPECT_DOUBLE_EQ(agg.mean_response, 2.5);
  // sample sd = sqrt(5/3); CI = 1.96 * sd / 2.
  EXPECT_NEAR(agg.ci95, 1.96 * std::sqrt(5.0 / 3.0) / 2.0, 1e-12);
}

}  // namespace
}  // namespace csq
