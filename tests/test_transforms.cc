#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "dist/distribution.h"
#include "sim/rng.h"
#include "transforms/busy_period.h"

namespace csq::transforms {
namespace {

TEST(BusyPeriod, MM1ClosedForm) {
  // M/M/1 busy period: E[B] = 1/(mu(1-rho)), E[B^2] = 2/(mu^2 (1-rho)^3).
  const double mu = 2.0, lambda = 1.0;
  const dist::Moments job = dist::Moments::exponential(1.0 / mu);
  const dist::Moments b = mg1_busy_period(job, lambda);
  const double rho = lambda / mu;
  EXPECT_NEAR(b.m1, 1.0 / (mu * (1 - rho)), 1e-12);
  EXPECT_NEAR(b.m2, 2.0 / (mu * mu * std::pow(1 - rho, 3)), 1e-12);
  // Third moment of M/M/1 busy period: 6(1+rho)/(mu^3 (1-rho)^5).
  EXPECT_NEAR(b.m3, 6.0 * (1 + rho) / (std::pow(mu, 3) * std::pow(1 - rho, 5)), 1e-12);
}

TEST(BusyPeriod, ZeroLoadIsJustTheJob) {
  const dist::Moments job{2.0, 10.0, 80.0};
  const dist::Moments b = mg1_busy_period(job, 0.0);
  EXPECT_DOUBLE_EQ(b.m1, job.m1);
  EXPECT_DOUBLE_EQ(b.m2, job.m2);
  EXPECT_DOUBLE_EQ(b.m3, job.m3);
}

TEST(BusyPeriod, UnstableThrows) {
  EXPECT_THROW((void)mg1_busy_period(dist::Moments::exponential(1.0), 1.0), std::domain_error);
  EXPECT_THROW((void)mg1_busy_period(dist::Moments::exponential(1.0), -0.1), std::invalid_argument);
}

TEST(DelayCycle, SingleJobInitialWorkEqualsBusyPeriod) {
  const dist::Moments job{1.0, 9.0, 250.0};
  const double lambda = 0.6;
  const jets::Jet w = jets::lst_from_moments(job.m1, job.m2, job.m3);
  const dist::Moments via_delay = delay_cycle(w, job, lambda);
  const dist::Moments direct = mg1_busy_period(job, lambda);
  EXPECT_NEAR(via_delay.m1, direct.m1, 1e-10 * direct.m1);
  EXPECT_NEAR(via_delay.m2, direct.m2, 1e-10 * direct.m2);
  EXPECT_NEAR(via_delay.m3, direct.m3, 1e-10 * direct.m3);
}

TEST(BatchBusyPeriod, LargeDeltaReducesToSingleBusyPeriod) {
  // delta -> infinity: no arrivals fit in the window, so B_{N+1} -> B_L.
  const dist::Moments job = dist::Moments::exponential(1.0);
  const double lambda = 0.5;
  const dist::Moments batch = batch_busy_period(job, lambda, 1e9);
  const dist::Moments single = mg1_busy_period(job, lambda);
  EXPECT_NEAR(batch.m1, single.m1, 1e-6);
  EXPECT_NEAR(batch.m2, single.m2, 1e-5);
  EXPECT_NEAR(batch.m3, single.m3, 1e-4);
}

TEST(BatchBusyPeriod, InitialWorkMeanClosedForm) {
  // E[W] = (1 + E[N]) E[X] with E[N] = lambda/delta.
  const dist::Moments job{2.0, 12.0, 120.0};
  const double lambda = 0.3, delta = 1.7;
  const jets::Jet w = batch_initial_work_lst(job, lambda, delta);
  const auto m = jets::moments_from_lst(w);
  EXPECT_NEAR(m.m1, (1.0 + lambda / delta) * job.m1, 1e-12);
}

TEST(BatchBusyPeriod, MeanMatchesWorkConservation) {
  // E[B_{N+1}] = E[W]/(1 - rho).
  const dist::Moments job{1.0, 9.0, 250.0};
  const double lambda = 0.5, delta = 2.0;
  const jets::Jet w = batch_initial_work_lst(job, lambda, delta);
  const auto wm = jets::moments_from_lst(w);
  const dist::Moments b = batch_busy_period(job, lambda, delta);
  EXPECT_NEAR(b.m1, wm.m1 / (1.0 - lambda * job.m1), 1e-10);
}

// Monte-Carlo oracle: simulate the batch busy period directly and compare
// the first two moments. This is the strongest check that the jet-based
// transform composition implements the right random variable.
TEST(BatchBusyPeriod, MonteCarloAgreement) {
  const double mu_l = 1.0;       // exponential long jobs, mean 1
  const double lambda = 0.5;     // long arrival rate
  const double delta = 2.0;      // Exp(delta) accumulation window
  dist::Rng rng = sim::make_rng(7);
  std::exponential_distribution<double> window(delta);
  std::exponential_distribution<double> size(mu_l);
  std::exponential_distribution<double> interarrival(lambda);

  const int kReps = 300000;
  double s1 = 0.0, s2 = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    // Initial work: N+1 jobs, N = Poisson arrivals during the window.
    const double theta = window(rng);
    double work = size(rng);
    for (double t = interarrival(rng); t < theta; t += interarrival(rng)) work += size(rng);
    // Busy period: drain `work` while arrivals keep joining.
    double busy = 0.0;
    double backlog = work;
    while (backlog > 0.0) {
      const double gap = interarrival(rng);
      if (gap < backlog) {
        busy += gap;
        backlog -= gap;
        backlog += size(rng);
      } else {
        busy += backlog;
        backlog = 0.0;
      }
    }
    s1 += busy;
    s2 += busy * busy;
  }
  s1 /= kReps;
  s2 /= kReps;

  const dist::Moments b =
      batch_busy_period(dist::Moments::exponential(1.0 / mu_l), lambda, delta);
  EXPECT_NEAR(s1, b.m1, 0.02 * b.m1);
  EXPECT_NEAR(s2, b.m2, 0.08 * b.m2);
}

}  // namespace
}  // namespace csq::transforms
