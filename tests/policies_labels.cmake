# Included by CTest after gtest discovery has registered the policy-zoo
# suite. gtest_discover_tests' serializer cannot carry a multi-label list,
# so the full label set is applied here; `csq_policies_tests_TESTS` is
# exported by the generated *_tests.cmake include.
foreach(t IN LISTS csq_policies_tests_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tier1;policies")
endforeach()
