#include <gtest/gtest.h>

#include "analysis/cscq.h"
#include "mg1/mg1.h"
#include "mg1/mmc.h"
#include "msim/multi_sim.h"

namespace csq::msim {
namespace {

sim::SimOptions opts(std::size_t n = 500000) {
  sim::SimOptions o;
  o.total_completions = n;
  return o;
}

MultiConfig make(int k, int m, double rho_s_total, double rho_l_total, double mean_l = 1.0,
                 double scv_l = 1.0) {
  MultiConfig c;
  c.short_hosts = k;
  c.long_hosts = m;
  c.workload = SystemConfig::paper_setup(rho_s_total, rho_l_total, 1.0, mean_l, scv_l);
  return c;
}

TEST(MultiSim, TwoHostCsCqMatchesAnalyticChain) {
  // k = m = 1 must reproduce the analyzed 2-host system.
  const MultiConfig c = make(1, 1, 0.9, 0.5);
  const MultiResult r = simulate_multi(MultiPolicy::kCsCq, c, opts(1000000));
  const analysis::CscqResult a = analysis::analyze_cscq(c.workload);
  EXPECT_NEAR(r.shorts.mean_response, a.metrics.shorts.mean_response,
              0.03 * a.metrics.shorts.mean_response + 2.0 * r.shorts.ci95);
  EXPECT_NEAR(r.longs.mean_response, a.metrics.longs.mean_response,
              0.03 * a.metrics.longs.mean_response + 2.0 * r.longs.ci95);
}

TEST(MultiSim, DedicatedShortPartitionIsMMk) {
  // Two short hosts fed from one central queue = M/M/2.
  const MultiConfig c = make(2, 1, 1.4, 0.3);
  const MultiResult r = simulate_multi(MultiPolicy::kDedicated, c, opts(800000));
  const double expected = mg1::mmc_response(2, c.workload.lambda_short, 1.0);
  EXPECT_NEAR(r.shorts.mean_response, expected, 0.04 * expected);
}

TEST(MultiSim, MoreDonorsHelpShorts) {
  // Fixed overloaded short partition (rho_S = 1.3 on one host); adding
  // donor hosts (each at rho_L = 0.5) adds stealable capacity.
  double prev = 1e100;
  for (int m = 1; m <= 3; ++m) {
    MultiConfig c = make(1, m, 1.3, 0.5 * m);
    const MultiResult r = simulate_multi(MultiPolicy::kCsCq, c, opts(800000));
    EXPECT_LT(r.shorts.mean_response, prev) << "m=" << m;
    prev = r.shorts.mean_response;
  }
}

TEST(MultiSim, CsCqBeatsCsIdBeatsDedicatedAtScale) {
  const MultiConfig c = make(2, 2, 1.8, 1.0, 10.0, 8.0);
  const double ded =
      simulate_multi(MultiPolicy::kDedicated, c, opts()).shorts.mean_response;
  const double id = simulate_multi(MultiPolicy::kCsId, c, opts()).shorts.mean_response;
  const double cq = simulate_multi(MultiPolicy::kCsCq, c, opts()).shorts.mean_response;
  EXPECT_LT(cq, id);
  EXPECT_LT(id, ded);
}

TEST(MultiSim, UtilizationAccounting) {
  const MultiConfig c = make(2, 2, 1.0, 0.8);
  const MultiResult r = simulate_multi(MultiPolicy::kDedicated, c, opts());
  EXPECT_NEAR(r.short_partition_utilization, 0.5, 0.02);  // rho_S/k
  EXPECT_NEAR(r.long_partition_utilization, 0.4, 0.02);   // rho_L/m
}

TEST(MultiSim, WorkConservationAcrossPartitions) {
  // Under CS-CQ the donor partition absorbs overflow shorts, so per-
  // partition utilization mixes classes; total busy work must still equal
  // the offered load (rho_S + rho_L) spread over k + m servers.
  const MultiConfig c = make(1, 2, 1.5, 1.2);
  const MultiResult r = simulate_multi(MultiPolicy::kCsCq, c, opts());
  const double total =
      (1.0 * r.short_partition_utilization + 2.0 * r.long_partition_utilization) / 3.0;
  EXPECT_NEAR(total, (1.5 + 1.2) / 3.0, 0.02);
}

TEST(MultiSim, InvalidConfigsThrow) {
  MultiConfig c = make(1, 1, 0.5, 0.5);
  c.short_hosts = 0;
  EXPECT_THROW((void)simulate_multi(MultiPolicy::kCsCq, c, opts()), std::invalid_argument);
  EXPECT_STREQ(multi_policy_name(MultiPolicy::kCsCq), "CS-CQ");
}

}  // namespace
}  // namespace csq::msim
