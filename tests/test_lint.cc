// Drives the csq_lint pass (tools/lint/) as a library: every rule is proven
// by a seeded-violation fixture in tests/lint_fixtures/ with exact rule-id
// and line assertions, and each has a clean twin that must produce nothing.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "callgraph.h"
#include "lint.h"
#include "sarif.h"

namespace {

using csq::lint::Config;
using csq::lint::Finding;
using csq::lint::SourceFile;
using csq::lint::TokKind;

// CSQ_LINT_FIXTURE_DIR is injected by tests/CMakeLists.txt.
SourceFile fixture(const std::string& name, const std::string& rel) {
  const std::string path = std::string(CSQ_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return csq::lint::scan_source(name, rel, ss.str());
}

std::vector<Finding> lint_one(const std::string& name, const std::string& rel,
                              const Config& cfg = {}) {
  std::vector<SourceFile> files = {fixture(name, rel)};
  return csq::lint::run_rules(files, cfg);
}

// Multi-file variant for the cross-TU rules (R13-R17): each {fixture, rel}
// pair is scanned and the whole set linted together.
std::vector<Finding> lint_set(const std::vector<std::pair<std::string, std::string>>& specs,
                              const Config& cfg = {}) {
  std::vector<SourceFile> files;
  for (const auto& spec : specs) files.push_back(fixture(spec.first, spec.second));
  return csq::lint::run_rules(files, cfg);
}

std::vector<Finding> by_rule(const std::vector<Finding>& fs, const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : fs)
    if (f.rule == rule) out.push_back(f);
  return out;
}

// --- Tokenizer -------------------------------------------------------------

TEST(LintScanner, SkipsCommentsStringsAndDirectives) {
  const SourceFile f = csq::lint::scan_source(
      "<mem>", "<mem>",
      "#include <vector>\n"
      "int x = 1;  // trailing == comment\n"
      "/* block == */ const char* s = \"a == b\";\n");
  for (const csq::lint::Token& t : f.tokens)
    EXPECT_NE(t.text, "==") << "matched inside comment or string";
  ASSERT_EQ(f.directives.size(), 1u);
  EXPECT_EQ(f.directives[0].text, "#include <vector>");
  ASSERT_EQ(f.comments.size(), 2u);
  EXPECT_FALSE(f.comments[0].own_line);  // trails `int x = 1;`
  EXPECT_EQ(f.comments[1].line, 3);
  // The string literal is one token, contents untouched.
  bool saw_string = false;
  for (const csq::lint::Token& t : f.tokens)
    if (t.kind == TokKind::kString) {
      saw_string = true;
      EXPECT_EQ(t.text, "\"a == b\"");
    }
  EXPECT_TRUE(saw_string);
}

TEST(LintScanner, TracksLinesAndMultiCharPunct) {
  const SourceFile f =
      csq::lint::scan_source("<mem>", "<mem>", "a\n<=\n...\ncatch(...)\n");
  ASSERT_GE(f.tokens.size(), 4u);
  EXPECT_EQ(f.tokens[0].line, 1);
  EXPECT_EQ(f.tokens[1].text, "<=");
  EXPECT_EQ(f.tokens[1].line, 2);
  EXPECT_EQ(f.tokens[2].text, "...");
  EXPECT_EQ(f.tokens[3].text, "catch");
  EXPECT_EQ(f.tokens[3].line, 4);
}

TEST(LintFormat, FileLineRuleMessage) {
  EXPECT_EQ(csq::lint::format_finding({"a/b.cc", 7, "raw-throw", "boom"}),
            "a/b.cc:7: [raw-throw] boom");
}

// --- Rules, one seeded fixture + clean twin each ---------------------------

TEST(LintRules, RawThrow) {
  const std::vector<Finding> fs = lint_one("raw_throw_bad.cc", "src/x/raw_throw_bad.cc");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "raw-throw");
  EXPECT_EQ(fs[0].line, 5);
  EXPECT_TRUE(lint_one("raw_throw_clean.cc", "src/x/raw_throw_clean.cc").empty());
}

TEST(LintRules, RawThrowSkipsTests) {
  EXPECT_TRUE(lint_one("raw_throw_bad.cc", "tests/raw_throw_bad.cc").empty());
}

TEST(LintRules, NoFloatEq) {
  const std::vector<Finding> fs = lint_one("float_eq_bad.cc", "src/x/float_eq_bad.cc");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "no-float-eq");
  EXPECT_EQ(fs[0].line, 3);
  EXPECT_EQ(fs[1].rule, "no-float-eq");
  EXPECT_EQ(fs[1].line, 7);
  EXPECT_TRUE(lint_one("float_eq_clean.cc", "src/x/float_eq_clean.cc").empty());
}

TEST(LintRules, Nondeterminism) {
  const std::vector<Finding> fs = lint_one("nondet_bad.cc", "src/sim/nondet_bad.cc");
  ASSERT_EQ(fs.size(), 3u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "nondeterminism");
  EXPECT_EQ(fs[0].line, 7);   // std::random_device
  EXPECT_EQ(fs[1].line, 8);   // steady_clock::now()
  EXPECT_EQ(fs[2].line, 10);  // time(nullptr)
  EXPECT_TRUE(lint_one("nondet_clean.cc", "src/sim/nondet_clean.cc").empty());
  // The same file outside a deterministic dir is not the rule's business.
  EXPECT_TRUE(lint_one("nondet_bad.cc", "src/analysis/nondet_bad.cc").empty());
}

TEST(LintRules, HotPathAlloc) {
  // rel paths stay outside src/qbd/ so the R12 structured-mult rule (which
  // has its own fixtures) does not fire on the clean twin's multiply_into.
  Config cfg;
  cfg.hot_files = {"hot_alloc_bad.cc", "hot_alloc_clean.cc"};
  const std::vector<Finding> fs =
      lint_one("hot_alloc_bad.cc", "src/linalg/hot_alloc_bad.cc", cfg);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "hot-path-alloc");
  EXPECT_EQ(fs[0].line, 6);
  EXPECT_TRUE(lint_one("hot_alloc_clean.cc", "src/linalg/hot_alloc_clean.cc", cfg).empty());
  // Not listed as hot -> no findings even with the allocating loop.
  EXPECT_TRUE(lint_one("hot_alloc_bad.cc", "src/other/hot_alloc_bad.cc").empty());
}

TEST(LintRules, HotPathGenericMult) {
  const std::vector<Finding> fs =
      lint_one("generic_mult_bad.cc", "src/qbd/generic_mult_bad.cc");
  ASSERT_EQ(fs.size(), 2u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "hot-path-generic-mult");
  EXPECT_EQ(fs[0].line, 7);   // qualified generic call
  EXPECT_EQ(fs[1].line, 10);  // unqualified generic call inside the loop
  // The clean twin's pattern-kernel calls and suppressed generic call pass.
  EXPECT_TRUE(lint_one("generic_mult_clean.cc", "src/qbd/generic_mult_clean.cc").empty());
  // Outside the structured-mult paths the generic kernel is fine (it IS the
  // reference implementation elsewhere).
  EXPECT_TRUE(lint_one("generic_mult_bad.cc", "src/linalg/generic_mult_bad.cc").empty());
}

TEST(LintRules, HeaderHygiene) {
  const std::vector<Finding> fs = lint_one("header_bad.h", "src/x/header_bad.h");
  ASSERT_EQ(fs.size(), 3u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "header-hygiene");
  EXPECT_EQ(fs[0].line, 1);  // missing #pragma once
  EXPECT_EQ(fs[1].line, 5);  // using namespace
  EXPECT_EQ(fs[2].line, 8);  // std::vector without <vector>
  EXPECT_TRUE(lint_one("header_clean.h", "src/x/header_clean.h").empty());
}

TEST(LintRules, ErrorDocs) {
  std::vector<SourceFile> bad = {fixture("error_docs_bad.h", "src/fix/error_docs_bad.h"),
                                 fixture("error_docs_bad.cc", "src/fix/error_docs_bad.cc")};
  const std::vector<Finding> fs = csq::lint::run_rules(bad);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "error-docs");
  EXPECT_EQ(fs[0].file, "error_docs_bad.h");
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_NE(fs[0].message.find("InvalidInputError"), std::string::npos);

  std::vector<SourceFile> clean = {
      fixture("error_docs_clean.h", "src/fix/error_docs_clean.h"),
      fixture("error_docs_clean.cc", "src/fix/error_docs_clean.cc")};
  EXPECT_TRUE(csq::lint::run_rules(clean).empty());
}

TEST(LintRules, CatchAllSwallow) {
  const std::vector<Finding> fs = lint_one("catch_bad.cc", "src/x/catch_bad.cc");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "catch-all-swallow");
  EXPECT_EQ(fs[0].line, 7);
  EXPECT_TRUE(lint_one("catch_clean.cc", "src/x/catch_clean.cc").empty());
}

TEST(LintRules, BannedIdentifier) {
  const std::vector<Finding> fs = lint_one("banned_bad.cc", "src/x/banned_bad.cc");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "banned-identifier");
  EXPECT_EQ(fs[0].line, 5);  // assert(
  EXPECT_EQ(fs[1].line, 6);  // srand(
  EXPECT_NE(fs[0].message.find("CSQ_ASSERT"), std::string::npos);
  EXPECT_TRUE(lint_one("banned_clean.cc", "src/x/banned_clean.cc").empty());
}

TEST(LintRules, FaultSiteNaming) {
  const std::vector<Finding> fs = lint_one("faultsite_bad.cc", "src/x/faultsite_bad.cc");
  ASSERT_EQ(fs.size(), 4u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "fault-site-naming");
  EXPECT_EQ(fs[0].line, 7);   // two segments
  EXPECT_EQ(fs[1].line, 8);   // uppercase segments
  EXPECT_EQ(fs[2].line, 10);  // duplicate registration
  EXPECT_EQ(fs[3].line, 11);  // non-literal site
  EXPECT_NE(fs[0].message.find("module.sub.action"), std::string::npos);
  EXPECT_NE(fs[2].message.find("already registered"), std::string::npos);
  EXPECT_TRUE(lint_one("faultsite_clean.cc", "src/x/faultsite_clean.cc").empty());
}

TEST(LintRules, FaultSiteNamingCrossFileDuplicate) {
  // The same site registered in two different files is still a duplicate.
  std::vector<SourceFile> two = {fixture("faultsite_clean.cc", "src/a/faultsite_clean.cc"),
                                 fixture("faultsite_clean.cc", "src/b/faultsite_clean.cc")};
  const std::vector<Finding> fs = csq::lint::run_rules(two);
  ASSERT_EQ(fs.size(), 2u);
  for (const Finding& f : fs) {
    EXPECT_EQ(f.rule, "fault-site-naming");
    EXPECT_NE(f.message.find("already registered at src/a/"), std::string::npos);
  }
}

TEST(LintRules, FaultSiteNamingSkipsTests) {
  EXPECT_TRUE(lint_one("faultsite_bad.cc", "tests/faultsite_bad.cc").empty());
}

TEST(LintRules, MetricNaming) {
  const std::vector<Finding> fs = lint_one("metric_bad.cc", "src/x/metric_bad.cc");
  ASSERT_EQ(fs.size(), 4u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "metric-naming");
  EXPECT_EQ(fs[0].line, 7);   // two segments
  EXPECT_EQ(fs[1].line, 8);   // uppercase segments
  EXPECT_EQ(fs[2].line, 10);  // duplicate registration
  EXPECT_EQ(fs[3].line, 11);  // non-literal name
  EXPECT_NE(fs[0].message.find("module.sub.metric"), std::string::npos);
  EXPECT_NE(fs[2].message.find("already registered"), std::string::npos);
  EXPECT_TRUE(lint_one("metric_clean.cc", "src/x/metric_clean.cc").empty());
}

TEST(LintRules, MetricNamingCrossFileDuplicate) {
  // The same metric registered in two different files is still a duplicate.
  std::vector<SourceFile> two = {fixture("metric_clean.cc", "src/a/metric_clean.cc"),
                                 fixture("metric_clean.cc", "src/b/metric_clean.cc")};
  const std::vector<Finding> fs = csq::lint::run_rules(two);
  ASSERT_EQ(fs.size(), 5u);
  for (const Finding& f : fs) {
    EXPECT_EQ(f.rule, "metric-naming");
    EXPECT_NE(f.message.find("already registered at src/a/"), std::string::npos);
  }
}

TEST(LintRules, MetricNamingSkipsTests) {
  EXPECT_TRUE(lint_one("metric_bad.cc", "tests/metric_bad.cc").empty());
}

TEST(LintRules, ServeHygieneBad) {
  // Default Config has an empty serve_metric_docs, so the serve.* metric is
  // also flagged as undocumented.
  const std::vector<Finding> fs =
      lint_one("serve_hygiene_bad.cc", "src/serve/serve_hygiene_bad.cc");
  ASSERT_EQ(fs.size(), 5u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "serve-hygiene");
  EXPECT_EQ(fs[0].line, 11);  // std::exit
  EXPECT_EQ(fs[1].line, 12);  // std::abort
  EXPECT_EQ(fs[2].line, 13);  // pending_.push_back
  EXPECT_EQ(fs[3].line, 14);  // reply_queue->emplace_back
  EXPECT_EQ(fs[4].line, 15);  // undocumented serve.* metric
  EXPECT_NE(fs[0].message.find("must not call exit()"), std::string::npos);
  EXPECT_NE(fs[2].message.find("bounded admit path"), std::string::npos);
  EXPECT_NE(fs[4].message.find("docs/serving.md"), std::string::npos);
}

TEST(LintRules, ServeHygieneAppliesToServeBinary) {
  // tools/csq_serve.cc is request-handler code too.
  const std::vector<Finding> fs =
      lint_one("serve_hygiene_bad.cc", "tools/csq_serve.cc");
  ASSERT_EQ(fs.size(), 5u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "serve-hygiene");
}

TEST(LintRules, ServeHygieneScopedToServePaths) {
  // Outside serve paths the same file is not the rule's business.
  EXPECT_TRUE(lint_one("serve_hygiene_bad.cc", "src/x/serve_hygiene_bad.cc").empty());
}

TEST(LintRules, ServeHygieneCleanWithCatalog) {
  Config cfg;
  cfg.serve_metric_docs = "| `serve.fixture.documented` | counter | fixture metric |";
  EXPECT_TRUE(
      lint_one("serve_hygiene_clean.cc", "src/serve/serve_hygiene_clean.cc", cfg).empty());
}

TEST(LintRules, JournalHygieneDirectIoInServe) {
  const std::vector<Finding> fs = lint_one("journal_bad.cc", "src/serve/journal_bad.cc");
  ASSERT_EQ(fs.size(), 2u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "journal-hygiene");
  EXPECT_NE(fs[0].message.find("ofstream"), std::string::npos);
  EXPECT_NE(fs[1].message.find("fwrite"), std::string::npos);
  EXPECT_NE(fs[0].message.find("durable"), std::string::npos);
}

TEST(LintRules, JournalHygieneRenameNeedsFsync) {
  const std::vector<Finding> fs =
      lint_one("journal_rename_bad.cc", "src/durable/journal_rename_bad.cc");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "journal-hygiene");
  EXPECT_NE(fs[0].message.find("fsync"), std::string::npos);
  // The compliant twin fsyncs before the rename.
  EXPECT_TRUE(lint_one("journal_clean.cc", "src/durable/journal_clean.cc").empty());
}

TEST(LintRules, JournalHygieneScopedToItsPaths) {
  // Outside src/serve/ and src/durable/ the same files are unconstrained
  // (tools/ owns its own files; the rename fixture is fine in core).
  EXPECT_TRUE(lint_one("journal_bad.cc", "tools/journal_bad.cc").empty());
  EXPECT_TRUE(
      lint_one("journal_rename_bad.cc", "src/core/journal_rename_bad.cc").empty());
}

TEST(LintRules, ServeHygieneMissingCatalogFlagsMetric) {
  // The clean twin's admit-path push is suppressed with a reason, but its
  // metric still needs a catalog entry: an empty catalog means one finding.
  const std::vector<Finding> fs =
      lint_one("serve_hygiene_clean.cc", "src/serve/serve_hygiene_clean.cc");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "serve-hygiene");
  EXPECT_NE(fs[0].message.find("serve.fixture.documented"), std::string::npos);
  EXPECT_NE(fs[0].message.find("not documented"), std::string::npos);
}

TEST(LintRules, PolicyRegistryBad) {
  // kBeta: no make_policy case + display name absent from the catalog;
  // kGamma: no policy_name case + no make_policy case. Findings anchor to
  // the enumerator lines inside the enum.
  Config cfg;
  cfg.policy_docs = "| Alpha | fixture policy |";
  const std::vector<Finding> fs =
      lint_one("policy_registry_bad.cc", "src/fix/policy_registry_bad.cc", cfg);
  const std::vector<Finding> pr = by_rule(fs, "policy-registry");
  ASSERT_EQ(pr.size(), 4u);
  // Findings at the same line share a sort key, so compare per-line message
  // bags instead of positions.
  std::string beta;   // line 13
  std::string gamma;  // line 14
  for (const Finding& f : pr) {
    ASSERT_TRUE(f.line == 13 || f.line == 14) << f.message;
    (f.line == 13 ? beta : gamma) += f.message + "\n";
  }
  EXPECT_NE(beta.find("kBeta"), std::string::npos);
  EXPECT_NE(beta.find("make_policy"), std::string::npos);
  EXPECT_NE(beta.find("\"Beta\""), std::string::npos);
  EXPECT_NE(beta.find("docs/policies.md"), std::string::npos);
  EXPECT_NE(gamma.find("policy_name"), std::string::npos);
  EXPECT_NE(gamma.find("make_policy"), std::string::npos);
}

TEST(LintRules, PolicyRegistryClean) {
  Config cfg;
  cfg.policy_docs = "| Alpha | ... |\n| Beta | ... |";
  const std::vector<Finding> fs =
      lint_one("policy_registry_clean.cc", "src/fix/policy_registry_clean.cc", cfg);
  EXPECT_TRUE(by_rule(fs, "policy-registry").empty());
}

TEST(LintRules, PolicyRegistryEmptyCatalogFlagsEveryPolicy) {
  // A missing docs/policies.md (empty catalog) marks every display name
  // undocumented — the catalog is part of the registry contract.
  const std::vector<Finding> fs =
      lint_one("policy_registry_clean.cc", "src/fix/policy_registry_clean.cc");
  const std::vector<Finding> pr = by_rule(fs, "policy-registry");
  ASSERT_EQ(pr.size(), 2u);
  EXPECT_NE(pr[0].message.find("not documented"), std::string::npos);
}

TEST(LintRules, PolicyRegistryInertWithoutTheEnum) {
  // File sets with no PolicyKind definition (every other fixture, forward
  // declarations) must not trip the rule.
  const std::vector<Finding> fs = lint_one("metric_clean.cc", "src/x/metric_clean.cc");
  EXPECT_TRUE(by_rule(fs, "policy-registry").empty());
}

// --- Suppressions ----------------------------------------------------------

TEST(LintSuppress, AllowWithReasonCoversNextLine) {
  EXPECT_TRUE(lint_one("suppress_ok.cc", "src/x/suppress_ok.cc").empty());
}

TEST(LintSuppress, ReasonlessMarkerIsItselfAFinding) {
  const std::vector<Finding> fs = lint_one("suppress_bad.cc", "src/x/suppress_bad.cc");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "suppression");
  EXPECT_EQ(fs[0].line, 4);
  EXPECT_EQ(fs[1].rule, "no-float-eq");  // the violation still fires
  EXPECT_EQ(fs[1].line, 5);
}

TEST(LintSuppress, SelftestPasses) {
  bool ok = false;
  const std::string report = csq::lint::suppression_selftest(&ok);
  EXPECT_TRUE(ok) << report;
  EXPECT_EQ(report.find("FAIL"), std::string::npos) << report;
}

TEST(LintRegistry, CatalogIsStable) {
  const std::vector<csq::lint::RuleInfo>& rs = csq::lint::rules();
  ASSERT_EQ(rs.size(), 21u);
  EXPECT_STREQ(rs[0].id, "raw-throw");
  EXPECT_STREQ(rs[8].id, "fault-site-naming");
  EXPECT_STREQ(rs[9].id, "metric-naming");
  EXPECT_STREQ(rs[10].id, "serve-hygiene");
  EXPECT_STREQ(rs[11].id, "hot-path-generic-mult");
  EXPECT_STREQ(rs[12].id, "throw-flow");
  EXPECT_STREQ(rs[13].id, "deadline-poll");
  EXPECT_STREQ(rs[14].id, "hot-path-alloc-transitive");
  EXPECT_STREQ(rs[15].id, "atomic-order");
  EXPECT_STREQ(rs[16].id, "module-layering");
  EXPECT_STREQ(rs[17].id, "journal-hygiene");
  EXPECT_STREQ(rs[18].id, "policy-registry");
  EXPECT_STREQ(rs[19].id, "suppression");
  EXPECT_STREQ(rs[20].id, "baseline");
  // --explain material: every rule ships a full rationale paragraph.
  for (const csq::lint::RuleInfo& r : rs) {
    EXPECT_NE(r.detail, nullptr) << r.id;
    EXPECT_GT(std::string(r.detail).size(), 40u) << r.id;
  }
}

// --- Semantic rules (R13-R17): cross-TU fixtures --------------------------

TEST(LintSemantic, ThrowFlowUndocumentedAndStale) {
  const std::vector<Finding> fs =
      lint_set({{"throw_flow_bad.h", "src/qbd/throw_flow_bad.h"},
                {"throw_flow_bad.cc", "src/qbd/throw_flow_bad.cc"},
                {"throw_flow_dep.cc", "src/qbd/throw_flow_dep.cc"}});
  ASSERT_EQ(fs.size(), 2u);  // nothing else fires on the set
  const std::vector<Finding> tf = by_rule(fs, "throw-flow");
  ASSERT_EQ(tf.size(), 2u);
  // The escape arrives only through the call graph (dep file), so the
  // text-level error-docs rule stays silent and R13 owns the finding.
  EXPECT_EQ(tf[0].file, "throw_flow_bad.h");
  EXPECT_EQ(tf[0].line, 1);
  EXPECT_NE(tf[0].message.find("NotConvergedError"), std::string::npos);
  EXPECT_NE(tf[0].message.find("via its callees"), std::string::npos);
  // Stale contract: the header claims UnstableError, nothing backs it.
  EXPECT_EQ(tf[1].file, "throw_flow_bad.h");
  EXPECT_EQ(tf[1].line, 8);
  EXPECT_NE(tf[1].message.find("stale contract"), std::string::npos);
  EXPECT_NE(tf[1].message.find("UnstableError"), std::string::npos);
}

TEST(LintSemantic, ThrowFlowCleanTwin) {
  const std::vector<Finding> fs =
      lint_set({{"throw_flow_clean.h", "src/qbd/throw_flow_clean.h"},
                {"throw_flow_clean.cc", "src/qbd/throw_flow_clean.cc"},
                {"throw_flow_dep.cc", "src/qbd/throw_flow_dep.cc"}});
  EXPECT_TRUE(fs.empty()) << fs.size() << " unexpected finding(s)";
}

TEST(LintSemantic, DeadlinePollUnpolledKernelLoop) {
  const std::vector<Finding> fs =
      lint_one("deadline_poll_bad.cc", "src/qbd/deadline_poll_bad.cc");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "deadline-poll");
  EXPECT_EQ(fs[0].line, 13);
  EXPECT_NE(fs[0].message.find("stationary()"), std::string::npos);
}

TEST(LintSemantic, DeadlinePollCleanTwin) {
  EXPECT_TRUE(lint_one("deadline_poll_clean.cc", "src/qbd/deadline_poll_clean.cc").empty());
}

TEST(LintSemantic, HotAllocTransitiveThroughHelper) {
  // rel ends with the hot-file suffix qbd/qbd.cc; the allocation hides one
  // call away, out of reach of the file-local hot-path-alloc rule.
  const std::vector<Finding> fs =
      lint_one("hot_alloc_trans_bad.cc", "src/qbd/qbd.cc");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "hot-path-alloc-transitive");
  EXPECT_EQ(fs[0].line, 17);
  EXPECT_NE(fs[0].message.find("accumulate_step()"), std::string::npos);
}

TEST(LintSemantic, HotAllocTransitiveCleanTwin) {
  EXPECT_TRUE(lint_one("hot_alloc_trans_clean.cc", "src/qbd/qbd.cc").empty());
}

TEST(LintSemantic, AtomicOrderNeedsRationale) {
  const std::vector<Finding> fs =
      lint_one("atomic_order_bad.cc", "src/parallel/atomic_order_bad.cc");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "atomic-order");
  EXPECT_EQ(fs[0].line, 8);  // relaxed load, no rationale anywhere
  EXPECT_NE(fs[0].message.find("memory_order_relaxed"), std::string::npos);
  EXPECT_EQ(fs[1].rule, "atomic-order");
  EXPECT_EQ(fs[1].line, 13);  // bare seq_cst in the spin loop's condition
  EXPECT_NE(fs[1].message.find("seq_cst"), std::string::npos);
}

TEST(LintSemantic, AtomicOrderCleanTwin) {
  EXPECT_TRUE(
      lint_one("atomic_order_clean.cc", "src/parallel/atomic_order_clean.cc").empty());
}

TEST(LintSemantic, ModuleLayeringUpwardInclude) {
  const std::vector<Finding> fs = lint_one("layering_bad.h", "src/linalg/layering_bad.h");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "module-layering");
  EXPECT_EQ(fs[0].line, 5);  // the analysis/cscq.h include
  EXPECT_NE(fs[0].message.find("`linalg` (layer 1)"), std::string::npos);
  EXPECT_NE(fs[0].message.find("`analysis` (layer 4)"), std::string::npos);
}

TEST(LintSemantic, ModuleLayeringCleanTwin) {
  EXPECT_TRUE(lint_one("layering_clean.h", "src/linalg/layering_clean.h").empty());
}

TEST(LintSemantic, IncludeCycleIsOneFinding) {
  const std::vector<Finding> fs = lint_set({{"cycle_a.h", "src/qbd/cycle_a.h"},
                                            {"cycle_b.h", "src/qbd/cycle_b.h"}});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "module-layering");
  EXPECT_EQ(fs[0].file, "cycle_a.h");  // anchored at the lexicographic head
  EXPECT_EQ(fs[0].line, 5);
  EXPECT_NE(fs[0].message.find("include cycle"), std::string::npos);
  EXPECT_NE(fs[0].message.find("src/qbd/cycle_a.h -> src/qbd/cycle_b.h"),
            std::string::npos);
}

TEST(LintSemantic, IndexSelftestPasses) {
  bool ok = false;
  const std::string report = csq::lint::index_selftest(&ok);
  EXPECT_TRUE(ok) << report;
  EXPECT_EQ(report.find("FAIL"), std::string::npos) << report;
}

// --- Suppression forms (block interiors, stacked allows, macro lines) -----

TEST(LintSuppress, BlockStackedAndMacroFormsAllCover) {
  EXPECT_TRUE(lint_one("suppress_forms.cc", "src/core/suppress_forms.cc").empty());
}

TEST(LintSuppress, FormFixtureParsesToExactLines) {
  const SourceFile f = fixture("suppress_forms.cc", "src/core/suppress_forms.cc");
  std::vector<Finding> malformed;
  const std::vector<csq::lint::Suppression> sups =
      csq::lint::parse_suppressions(f, &malformed);
  EXPECT_TRUE(malformed.empty());
  ASSERT_EQ(sups.size(), 4u);
  // Block-comment interior: binds to its own physical line, and to the
  // first line after the comment closes (the declaration it guards).
  EXPECT_EQ(sups[0].rule, "no-float-eq");
  EXPECT_EQ(sups[0].line, 7);
  EXPECT_EQ(sups[0].alt_line, 9);
  // Stacked allow(a) allow(b): two suppressions sharing line and reason.
  EXPECT_EQ(sups[1].rule, "raw-throw");
  EXPECT_EQ(sups[1].line, 11);
  EXPECT_EQ(sups[2].rule, "no-float-eq");
  EXPECT_EQ(sups[2].line, 11);
  EXPECT_EQ(sups[1].reason, sups[2].reason);
  // Marker on a macro continuation line binds to that physical line.
  EXPECT_EQ(sups[3].rule, "banned-identifier");
  EXPECT_EQ(sups[3].line, 15);
}

// --- Machine output and baseline -------------------------------------------

TEST(LintOutput, JsonDocumentShape) {
  std::vector<Finding> fs = {{"a.cc", 3, "raw-throw", "msg \"quoted\"", "src/a.cc"}};
  const std::string j = csq::lint::to_json(fs);
  EXPECT_NE(j.find("\"tool\":\"csq_lint\""), std::string::npos);
  EXPECT_NE(j.find("\"count\":1"), std::string::npos);
  EXPECT_NE(j.find("\"rel\":\"src/a.cc\""), std::string::npos);
  EXPECT_NE(j.find("\\\"quoted\\\""), std::string::npos);  // escaping survives
}

TEST(LintOutput, SarifCarriesCatalogAndLocations) {
  std::vector<Finding> fs = {{"a.cc", 3, "raw-throw", "boom", "src/a.cc"}};
  const std::string sarif = csq::lint::to_sarif(fs);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"csq_lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"raw-throw\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\":\"src/a.cc\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":3"), std::string::npos);
  // The full rule catalog rides on the driver.
  for (const csq::lint::RuleInfo& r : csq::lint::rules())
    EXPECT_NE(sarif.find("\"id\":\"" + std::string(r.id) + "\""), std::string::npos) << r.id;
}

TEST(LintBaseline, ExactCountSuppressesStaleAndRegressionSurface) {
  using csq::lint::BaselineEntry;
  const Finding f1{"src/core/sweep.cc", 6, "module-layering", "up-include", "src/core/sweep.cc"};
  const Finding f2{"src/core/sweep.cc", 7, "module-layering", "up-include", "src/core/sweep.cc"};
  // Exact match: both suppressed, nothing surfaces.
  std::vector<BaselineEntry> exact = {{"module-layering", "src/core/sweep.cc", 2, "facade"}};
  EXPECT_TRUE(csq::lint::apply_baseline({f1, f2}, exact, "lint_baseline.json").empty());
  // Stale (tree improved): suppress what's left, demand a refresh.
  std::vector<Finding> stale =
      csq::lint::apply_baseline({f1}, exact, "lint_baseline.json");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].rule, "baseline");
  EXPECT_NE(stale[0].message.find("stale"), std::string::npos);
  // Regression (count exceeded): nothing suppressed, meta finding explains.
  std::vector<BaselineEntry> tight = {{"module-layering", "src/core/sweep.cc", 1, "facade"}};
  std::vector<Finding> regressed =
      csq::lint::apply_baseline({f1, f2}, tight, "lint_baseline.json");
  ASSERT_EQ(regressed.size(), 3u);  // both originals + the meta finding
  // A reasonless entry is itself a finding and suppresses nothing.
  std::vector<BaselineEntry> noreason = {{"module-layering", "src/core/sweep.cc", 2, ""}};
  std::vector<Finding> unjustified =
      csq::lint::apply_baseline({f1, f2}, noreason, "lint_baseline.json");
  ASSERT_EQ(unjustified.size(), 3u);
  EXPECT_EQ(unjustified[0].rule, "baseline");
  EXPECT_NE(unjustified[0].message.find("no reason"), std::string::npos);
}

TEST(LintBaseline, LoadRejectsMalformedDocuments) {
  std::vector<csq::lint::BaselineEntry> entries;
  std::string error;
  EXPECT_FALSE(csq::lint::load_baseline("not json", &entries, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(csq::lint::load_baseline("{\"entries\": [{\"rule\": 1}]}", &entries, &error));
  ASSERT_TRUE(csq::lint::load_baseline(
      "{\"entries\": [{\"rule\": \"r\", \"file\": \"f\", \"count\": 2, \"reason\": \"ok\"}]}",
      &entries, &error));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].rule, "r");
  EXPECT_EQ(entries[0].count, 2);
}

}  // namespace
