// Drives the csq_lint pass (tools/lint/) as a library: every rule is proven
// by a seeded-violation fixture in tests/lint_fixtures/ with exact rule-id
// and line assertions, and each has a clean twin that must produce nothing.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace {

using csq::lint::Config;
using csq::lint::Finding;
using csq::lint::SourceFile;
using csq::lint::TokKind;

// CSQ_LINT_FIXTURE_DIR is injected by tests/CMakeLists.txt.
SourceFile fixture(const std::string& name, const std::string& rel) {
  const std::string path = std::string(CSQ_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return csq::lint::scan_source(name, rel, ss.str());
}

std::vector<Finding> lint_one(const std::string& name, const std::string& rel,
                              const Config& cfg = {}) {
  std::vector<SourceFile> files = {fixture(name, rel)};
  return csq::lint::run_rules(files, cfg);
}

// --- Tokenizer -------------------------------------------------------------

TEST(LintScanner, SkipsCommentsStringsAndDirectives) {
  const SourceFile f = csq::lint::scan_source(
      "<mem>", "<mem>",
      "#include <vector>\n"
      "int x = 1;  // trailing == comment\n"
      "/* block == */ const char* s = \"a == b\";\n");
  for (const csq::lint::Token& t : f.tokens)
    EXPECT_NE(t.text, "==") << "matched inside comment or string";
  ASSERT_EQ(f.directives.size(), 1u);
  EXPECT_EQ(f.directives[0].text, "#include <vector>");
  ASSERT_EQ(f.comments.size(), 2u);
  EXPECT_FALSE(f.comments[0].own_line);  // trails `int x = 1;`
  EXPECT_EQ(f.comments[1].line, 3);
  // The string literal is one token, contents untouched.
  bool saw_string = false;
  for (const csq::lint::Token& t : f.tokens)
    if (t.kind == TokKind::kString) {
      saw_string = true;
      EXPECT_EQ(t.text, "\"a == b\"");
    }
  EXPECT_TRUE(saw_string);
}

TEST(LintScanner, TracksLinesAndMultiCharPunct) {
  const SourceFile f =
      csq::lint::scan_source("<mem>", "<mem>", "a\n<=\n...\ncatch(...)\n");
  ASSERT_GE(f.tokens.size(), 4u);
  EXPECT_EQ(f.tokens[0].line, 1);
  EXPECT_EQ(f.tokens[1].text, "<=");
  EXPECT_EQ(f.tokens[1].line, 2);
  EXPECT_EQ(f.tokens[2].text, "...");
  EXPECT_EQ(f.tokens[3].text, "catch");
  EXPECT_EQ(f.tokens[3].line, 4);
}

TEST(LintFormat, FileLineRuleMessage) {
  EXPECT_EQ(csq::lint::format_finding({"a/b.cc", 7, "raw-throw", "boom"}),
            "a/b.cc:7: [raw-throw] boom");
}

// --- Rules, one seeded fixture + clean twin each ---------------------------

TEST(LintRules, RawThrow) {
  const std::vector<Finding> fs = lint_one("raw_throw_bad.cc", "src/x/raw_throw_bad.cc");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "raw-throw");
  EXPECT_EQ(fs[0].line, 5);
  EXPECT_TRUE(lint_one("raw_throw_clean.cc", "src/x/raw_throw_clean.cc").empty());
}

TEST(LintRules, RawThrowSkipsTests) {
  EXPECT_TRUE(lint_one("raw_throw_bad.cc", "tests/raw_throw_bad.cc").empty());
}

TEST(LintRules, NoFloatEq) {
  const std::vector<Finding> fs = lint_one("float_eq_bad.cc", "src/x/float_eq_bad.cc");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "no-float-eq");
  EXPECT_EQ(fs[0].line, 3);
  EXPECT_EQ(fs[1].rule, "no-float-eq");
  EXPECT_EQ(fs[1].line, 7);
  EXPECT_TRUE(lint_one("float_eq_clean.cc", "src/x/float_eq_clean.cc").empty());
}

TEST(LintRules, Nondeterminism) {
  const std::vector<Finding> fs = lint_one("nondet_bad.cc", "src/sim/nondet_bad.cc");
  ASSERT_EQ(fs.size(), 3u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "nondeterminism");
  EXPECT_EQ(fs[0].line, 7);   // std::random_device
  EXPECT_EQ(fs[1].line, 8);   // steady_clock::now()
  EXPECT_EQ(fs[2].line, 10);  // time(nullptr)
  EXPECT_TRUE(lint_one("nondet_clean.cc", "src/sim/nondet_clean.cc").empty());
  // The same file outside a deterministic dir is not the rule's business.
  EXPECT_TRUE(lint_one("nondet_bad.cc", "src/analysis/nondet_bad.cc").empty());
}

TEST(LintRules, HotPathAlloc) {
  // rel paths stay outside src/qbd/ so the R12 structured-mult rule (which
  // has its own fixtures) does not fire on the clean twin's multiply_into.
  Config cfg;
  cfg.hot_files = {"hot_alloc_bad.cc", "hot_alloc_clean.cc"};
  const std::vector<Finding> fs =
      lint_one("hot_alloc_bad.cc", "src/linalg/hot_alloc_bad.cc", cfg);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "hot-path-alloc");
  EXPECT_EQ(fs[0].line, 6);
  EXPECT_TRUE(lint_one("hot_alloc_clean.cc", "src/linalg/hot_alloc_clean.cc", cfg).empty());
  // Not listed as hot -> no findings even with the allocating loop.
  EXPECT_TRUE(lint_one("hot_alloc_bad.cc", "src/other/hot_alloc_bad.cc").empty());
}

TEST(LintRules, HotPathGenericMult) {
  const std::vector<Finding> fs =
      lint_one("generic_mult_bad.cc", "src/qbd/generic_mult_bad.cc");
  ASSERT_EQ(fs.size(), 2u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "hot-path-generic-mult");
  EXPECT_EQ(fs[0].line, 7);   // qualified generic call
  EXPECT_EQ(fs[1].line, 10);  // unqualified generic call inside the loop
  // The clean twin's pattern-kernel calls and suppressed generic call pass.
  EXPECT_TRUE(lint_one("generic_mult_clean.cc", "src/qbd/generic_mult_clean.cc").empty());
  // Outside the structured-mult paths the generic kernel is fine (it IS the
  // reference implementation elsewhere).
  EXPECT_TRUE(lint_one("generic_mult_bad.cc", "src/linalg/generic_mult_bad.cc").empty());
}

TEST(LintRules, HeaderHygiene) {
  const std::vector<Finding> fs = lint_one("header_bad.h", "src/x/header_bad.h");
  ASSERT_EQ(fs.size(), 3u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "header-hygiene");
  EXPECT_EQ(fs[0].line, 1);  // missing #pragma once
  EXPECT_EQ(fs[1].line, 5);  // using namespace
  EXPECT_EQ(fs[2].line, 8);  // std::vector without <vector>
  EXPECT_TRUE(lint_one("header_clean.h", "src/x/header_clean.h").empty());
}

TEST(LintRules, ErrorDocs) {
  std::vector<SourceFile> bad = {fixture("error_docs_bad.h", "src/fix/error_docs_bad.h"),
                                 fixture("error_docs_bad.cc", "src/fix/error_docs_bad.cc")};
  const std::vector<Finding> fs = csq::lint::run_rules(bad);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "error-docs");
  EXPECT_EQ(fs[0].file, "error_docs_bad.h");
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_NE(fs[0].message.find("InvalidInputError"), std::string::npos);

  std::vector<SourceFile> clean = {
      fixture("error_docs_clean.h", "src/fix/error_docs_clean.h"),
      fixture("error_docs_clean.cc", "src/fix/error_docs_clean.cc")};
  EXPECT_TRUE(csq::lint::run_rules(clean).empty());
}

TEST(LintRules, CatchAllSwallow) {
  const std::vector<Finding> fs = lint_one("catch_bad.cc", "src/x/catch_bad.cc");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "catch-all-swallow");
  EXPECT_EQ(fs[0].line, 7);
  EXPECT_TRUE(lint_one("catch_clean.cc", "src/x/catch_clean.cc").empty());
}

TEST(LintRules, BannedIdentifier) {
  const std::vector<Finding> fs = lint_one("banned_bad.cc", "src/x/banned_bad.cc");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "banned-identifier");
  EXPECT_EQ(fs[0].line, 5);  // assert(
  EXPECT_EQ(fs[1].line, 6);  // srand(
  EXPECT_NE(fs[0].message.find("CSQ_ASSERT"), std::string::npos);
  EXPECT_TRUE(lint_one("banned_clean.cc", "src/x/banned_clean.cc").empty());
}

TEST(LintRules, FaultSiteNaming) {
  const std::vector<Finding> fs = lint_one("faultsite_bad.cc", "src/x/faultsite_bad.cc");
  ASSERT_EQ(fs.size(), 4u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "fault-site-naming");
  EXPECT_EQ(fs[0].line, 7);   // two segments
  EXPECT_EQ(fs[1].line, 8);   // uppercase segments
  EXPECT_EQ(fs[2].line, 10);  // duplicate registration
  EXPECT_EQ(fs[3].line, 11);  // non-literal site
  EXPECT_NE(fs[0].message.find("module.sub.action"), std::string::npos);
  EXPECT_NE(fs[2].message.find("already registered"), std::string::npos);
  EXPECT_TRUE(lint_one("faultsite_clean.cc", "src/x/faultsite_clean.cc").empty());
}

TEST(LintRules, FaultSiteNamingCrossFileDuplicate) {
  // The same site registered in two different files is still a duplicate.
  std::vector<SourceFile> two = {fixture("faultsite_clean.cc", "src/a/faultsite_clean.cc"),
                                 fixture("faultsite_clean.cc", "src/b/faultsite_clean.cc")};
  const std::vector<Finding> fs = csq::lint::run_rules(two);
  ASSERT_EQ(fs.size(), 2u);
  for (const Finding& f : fs) {
    EXPECT_EQ(f.rule, "fault-site-naming");
    EXPECT_NE(f.message.find("already registered at src/a/"), std::string::npos);
  }
}

TEST(LintRules, FaultSiteNamingSkipsTests) {
  EXPECT_TRUE(lint_one("faultsite_bad.cc", "tests/faultsite_bad.cc").empty());
}

TEST(LintRules, MetricNaming) {
  const std::vector<Finding> fs = lint_one("metric_bad.cc", "src/x/metric_bad.cc");
  ASSERT_EQ(fs.size(), 4u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "metric-naming");
  EXPECT_EQ(fs[0].line, 7);   // two segments
  EXPECT_EQ(fs[1].line, 8);   // uppercase segments
  EXPECT_EQ(fs[2].line, 10);  // duplicate registration
  EXPECT_EQ(fs[3].line, 11);  // non-literal name
  EXPECT_NE(fs[0].message.find("module.sub.metric"), std::string::npos);
  EXPECT_NE(fs[2].message.find("already registered"), std::string::npos);
  EXPECT_TRUE(lint_one("metric_clean.cc", "src/x/metric_clean.cc").empty());
}

TEST(LintRules, MetricNamingCrossFileDuplicate) {
  // The same metric registered in two different files is still a duplicate.
  std::vector<SourceFile> two = {fixture("metric_clean.cc", "src/a/metric_clean.cc"),
                                 fixture("metric_clean.cc", "src/b/metric_clean.cc")};
  const std::vector<Finding> fs = csq::lint::run_rules(two);
  ASSERT_EQ(fs.size(), 5u);
  for (const Finding& f : fs) {
    EXPECT_EQ(f.rule, "metric-naming");
    EXPECT_NE(f.message.find("already registered at src/a/"), std::string::npos);
  }
}

TEST(LintRules, MetricNamingSkipsTests) {
  EXPECT_TRUE(lint_one("metric_bad.cc", "tests/metric_bad.cc").empty());
}

TEST(LintRules, ServeHygieneBad) {
  // Default Config has an empty serve_metric_docs, so the serve.* metric is
  // also flagged as undocumented.
  const std::vector<Finding> fs =
      lint_one("serve_hygiene_bad.cc", "src/serve/serve_hygiene_bad.cc");
  ASSERT_EQ(fs.size(), 5u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "serve-hygiene");
  EXPECT_EQ(fs[0].line, 11);  // std::exit
  EXPECT_EQ(fs[1].line, 12);  // std::abort
  EXPECT_EQ(fs[2].line, 13);  // pending_.push_back
  EXPECT_EQ(fs[3].line, 14);  // reply_queue->emplace_back
  EXPECT_EQ(fs[4].line, 15);  // undocumented serve.* metric
  EXPECT_NE(fs[0].message.find("must not call exit()"), std::string::npos);
  EXPECT_NE(fs[2].message.find("bounded admit path"), std::string::npos);
  EXPECT_NE(fs[4].message.find("docs/serving.md"), std::string::npos);
}

TEST(LintRules, ServeHygieneAppliesToServeBinary) {
  // tools/csq_serve.cc is request-handler code too.
  const std::vector<Finding> fs =
      lint_one("serve_hygiene_bad.cc", "tools/csq_serve.cc");
  ASSERT_EQ(fs.size(), 5u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "serve-hygiene");
}

TEST(LintRules, ServeHygieneScopedToServePaths) {
  // Outside serve paths the same file is not the rule's business.
  EXPECT_TRUE(lint_one("serve_hygiene_bad.cc", "src/x/serve_hygiene_bad.cc").empty());
}

TEST(LintRules, ServeHygieneCleanWithCatalog) {
  Config cfg;
  cfg.serve_metric_docs = "| `serve.fixture.documented` | counter | fixture metric |";
  EXPECT_TRUE(
      lint_one("serve_hygiene_clean.cc", "src/serve/serve_hygiene_clean.cc", cfg).empty());
}

TEST(LintRules, ServeHygieneMissingCatalogFlagsMetric) {
  // The clean twin's admit-path push is suppressed with a reason, but its
  // metric still needs a catalog entry: an empty catalog means one finding.
  const std::vector<Finding> fs =
      lint_one("serve_hygiene_clean.cc", "src/serve/serve_hygiene_clean.cc");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "serve-hygiene");
  EXPECT_NE(fs[0].message.find("serve.fixture.documented"), std::string::npos);
  EXPECT_NE(fs[0].message.find("not documented"), std::string::npos);
}

// --- Suppressions ----------------------------------------------------------

TEST(LintSuppress, AllowWithReasonCoversNextLine) {
  EXPECT_TRUE(lint_one("suppress_ok.cc", "src/x/suppress_ok.cc").empty());
}

TEST(LintSuppress, ReasonlessMarkerIsItselfAFinding) {
  const std::vector<Finding> fs = lint_one("suppress_bad.cc", "src/x/suppress_bad.cc");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "suppression");
  EXPECT_EQ(fs[0].line, 4);
  EXPECT_EQ(fs[1].rule, "no-float-eq");  // the violation still fires
  EXPECT_EQ(fs[1].line, 5);
}

TEST(LintSuppress, SelftestPasses) {
  bool ok = false;
  const std::string report = csq::lint::suppression_selftest(&ok);
  EXPECT_TRUE(ok) << report;
  EXPECT_EQ(report.find("FAIL"), std::string::npos) << report;
}

TEST(LintRegistry, CatalogIsStable) {
  const std::vector<csq::lint::RuleInfo>& rs = csq::lint::rules();
  ASSERT_EQ(rs.size(), 13u);
  EXPECT_STREQ(rs[0].id, "raw-throw");
  EXPECT_STREQ(rs[8].id, "fault-site-naming");
  EXPECT_STREQ(rs[9].id, "metric-naming");
  EXPECT_STREQ(rs[10].id, "serve-hygiene");
  EXPECT_STREQ(rs[11].id, "hot-path-generic-mult");
  EXPECT_STREQ(rs[12].id, "suppression");
}

}  // namespace
