# Included by CTest after gtest discovery has registered the non-chaos serve
# suite (this include is appended between the two csq_serve_tests discovery
# calls, so csq_serve_tests_TESTS holds exactly that list — the ServeChaos
# discovery overwrites it afterwards and keeps its single `chaos` label).
# gtest_discover_tests' serializer cannot carry a multi-label list, so the
# full label set is applied here.
foreach(t IN LISTS csq_serve_tests_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tier1;serve")
endforeach()
