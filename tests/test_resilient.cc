// The degradation ladder (analysis/resilient.h) and the deterministic fault
// injection layer (core/faultpoint.h) that exercises it.
//
// The ResilientChaos suite carries the `chaos` ctest label: in a normal
// build its tests GTEST_SKIP (fault injection is compiled out); under
// -DCSQ_FAULT_INJECTION=ON they drive every rung of the ladder plus the
// deadline/cancel paths deterministically — burn faults advance the virtual
// clock (core/deadline.h timebase), so no test ever sleeps.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/cscq.h"
#include "analysis/resilient.h"
#include "core/config.h"
#include "core/deadline.h"
#include "core/faultpoint.h"
#include "core/sweep.h"
#include "sim/simulator.h"

namespace csq {
namespace {

using analysis::Rung;
using analysis::analyze_resilient;
using analysis::ResilientOptions;
using analysis::ResilientResult;

SystemConfig clean_config() {
  // Exponential shorts and longs so every rung (the truncated oracle
  // requires exponential sizes) can answer.
  return SystemConfig::paper_setup(0.5, 0.5, 1.0, 1.0);
}

// Cheap simulation rung for tests: small runs, fixed replication count.
ResilientOptions fast_sim_opts() {
  ResilientOptions opts;
  opts.sim.total_completions = 20000;
  opts.sim_reps.replications = 4;
  opts.sim_target_rel_ci = 0.0;  // fixed count: deterministic and fast
  return opts;
}

// --- Ladder semantics that need no fault injection -------------------------

TEST(ResilientLadder, CleanConfigUsesTheExactRung) {
  const ResilientResult r = analyze_resilient(clean_config());
  EXPECT_EQ(r.rung_used, Rung::kExact);
  ASSERT_EQ(r.attempts.size(), 1u);
  EXPECT_TRUE(r.attempts[0].succeeded);
  EXPECT_EQ(r.attempts[0].rung, Rung::kExact);
  // The exact rung's answer is the exact analysis's answer.
  const analysis::CscqResult exact = analysis::analyze_cscq(clean_config());
  EXPECT_DOUBLE_EQ(r.metrics.shorts.mean_response, exact.metrics.shorts.mean_response);
  EXPECT_DOUBLE_EQ(r.metrics.longs.mean_response, exact.metrics.longs.mean_response);
  // Analytic rungs report no CI.
  EXPECT_EQ(r.ci_half_width_short, 0.0);
  EXPECT_EQ(r.replications_used, 0);
}

TEST(ResilientLadder, ExpiredBudgetAtEntryThrowsDeadlineExceeded) {
  ResilientOptions opts;
  opts.budget = RunBudget::with_timeout_ms(0);
  EXPECT_THROW((void)analyze_resilient(clean_config(), opts), DeadlineExceededError);
}

TEST(ResilientLadder, CancelledBudgetThrowsCancelledNotDeadline) {
  CancelToken token;
  token.cancel();
  ResilientOptions opts;
  // Cancelled *and* expired: cancellation must win (the user asked to stop;
  // a deadline answer would misreport why).
  opts.budget = RunBudget::with_timeout_ms(0).with_token(token);
  EXPECT_THROW((void)analyze_resilient(clean_config(), opts), CancelledError);
}

TEST(ResilientLadder, UnstableConfigThrowsBeforeAnyRung) {
  // rho_S = 1.8 at rho_L = 0.5 is outside the CS-CQ region (frontier 1.5):
  // no rung can produce a steady state, so the ladder must not try.
  const SystemConfig c = SystemConfig::paper_setup(1.8, 0.5, 1.0, 1.0);
  EXPECT_THROW((void)analyze_resilient(c), UnstableError);
}

TEST(ResilientLadder, MalformedOptionsThrowInvalidInput) {
  ResilientOptions opts;
  opts.exact_budget_fraction = 0.0;
  EXPECT_THROW((void)analyze_resilient(clean_config(), opts), InvalidInputError);
  opts = ResilientOptions{};
  opts.truncation_mass_tolerance = 0.0;
  EXPECT_THROW((void)analyze_resilient(clean_config(), opts), InvalidInputError);
}

TEST(ResilientLadder, RungNamesAreStable) {
  EXPECT_STREQ(analysis::rung_name(Rung::kExact), "exact");
  EXPECT_STREQ(analysis::rung_name(Rung::kTruncated), "truncated");
  EXPECT_STREQ(analysis::rung_name(Rung::kSimulation), "simulation");
}

// --- Fault-spec parsing (available in every build) -------------------------

TEST(FaultSpec, ParsesTheThreeKinds) {
  const fault::ArmSpec t = fault::parse_arm_spec("qbd.fi.iterate:2:throw:NotConverged");
  EXPECT_EQ(t.site, "qbd.fi.iterate");
  EXPECT_EQ(t.trigger_count, 2);
  EXPECT_EQ(t.kind, fault::Kind::kThrow);
  EXPECT_EQ(t.code, ErrorCode::kNotConverged);

  const fault::ArmSpec n = fault::parse_arm_spec("a.b.c:1:nan");
  EXPECT_EQ(n.kind, fault::Kind::kNan);

  const fault::ArmSpec b = fault::parse_arm_spec("a.b.c:1:burn:5.5");
  EXPECT_EQ(b.kind, fault::Kind::kBurn);
  EXPECT_DOUBLE_EQ(b.burn_ms, 5.5);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  for (const char* spec : {"nosep", "a.b.c:1", "a.b.c:x:nan", "a.b.c:0:nan",
                           ":1:nan", "a.b.c:1:burn:-2", "a.b.c:1:burn:x",
                           "a.b.c:1:throw:Bogus", "a.b.c:1:weird"})
    EXPECT_THROW((void)fault::parse_arm_spec(spec), InvalidInputError) << spec;
}

TEST(FaultSpec, ArmWithoutFaultBuildThrows) {
  if (fault::enabled()) GTEST_SKIP() << "fault injection compiled in";
  EXPECT_THROW(fault::arm(fault::parse_arm_spec("a.b.c:1:nan")), InvalidInputError);
}

// --- Chaos: fault-injected ladder walks (`ctest -L chaos`) -----------------

class ResilientChaos : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::enabled())
      GTEST_SKIP() << "build with -DCSQ_FAULT_INJECTION=ON to run chaos tests";
    fault::disarm_all();
    timebase::reset_virtual();
  }
  void TearDown() override {
    if (fault::enabled()) {
      fault::disarm_all();
      timebase::reset_virtual();
    }
  }
};

TEST_F(ResilientChaos, ExactRungFaultFallsBackToTruncated) {
  fault::arm(fault::parse_arm_spec("analysis.cscq.solve:1:throw:NotConverged"));
  const ResilientResult r = analyze_resilient(clean_config(), fast_sim_opts());
  EXPECT_EQ(r.rung_used, Rung::kTruncated);
  ASSERT_EQ(r.attempts.size(), 2u);
  EXPECT_FALSE(r.attempts[0].succeeded);
  EXPECT_EQ(r.attempts[0].status.code, ErrorCode::kNotConverged);
  EXPECT_TRUE(r.attempts[1].succeeded);
  EXPECT_EQ(r.truncation_cap, 100);  // first cap suffices on this easy config
  EXPECT_LE(r.truncation_mass, 1e-6);
  EXPECT_GT(r.metrics.shorts.mean_response, 1.0);
  // Single-shot: the site fired once and is healthy again.
  EXPECT_EQ(fault::hits("analysis.cscq.solve"), 1);
  EXPECT_TRUE(fault::armed_sites().empty());
}

TEST_F(ResilientChaos, BothAnalyticRungsFaultedFallToSimulation) {
  fault::arm(fault::parse_arm_spec("analysis.cscq.solve:1:throw:NotConverged"));
  fault::arm(fault::parse_arm_spec("analysis.truncated.solve:1:throw:NotConverged"));
  ResilientOptions opts = fast_sim_opts();
  opts.truncation_caps = {60};  // one cap, so the single-shot fault kills the rung
  const ResilientResult r = analyze_resilient(clean_config(), opts);
  EXPECT_EQ(r.rung_used, Rung::kSimulation);
  ASSERT_EQ(r.attempts.size(), 3u);
  EXPECT_EQ(r.attempts[0].rung, Rung::kExact);
  EXPECT_EQ(r.attempts[1].rung, Rung::kTruncated);
  EXPECT_EQ(r.attempts[1].status.code, ErrorCode::kNotConverged);
  EXPECT_TRUE(r.attempts[2].succeeded);
  EXPECT_EQ(r.replications_used, 4);
  EXPECT_GT(r.ci_half_width_short, 0.0);
  // The simulated estimate is in the right ballpark of the exact answer.
  const analysis::CscqResult exact = analysis::analyze_cscq(clean_config());
  EXPECT_NEAR(r.metrics.shorts.mean_response, exact.metrics.shorts.mean_response,
              0.5 * exact.metrics.shorts.mean_response);
}

TEST_F(ResilientChaos, NanInjectionIsAbsorbedByTheQbdFallbackChain) {
  // Poison the functional iteration's R once: the solver must detect the
  // damage and rescue the *exact* rung via logarithmic reduction — the
  // ladder never even sees a failure.
  fault::arm(fault::parse_arm_spec("qbd.fi.iterate:1:nan"));
  const ResilientResult r = analyze_resilient(clean_config(), fast_sim_opts());
  EXPECT_EQ(r.rung_used, Rung::kExact);
  EXPECT_EQ(r.solve_stats.method, qbd::RMethod::kLogReduction);
  EXPECT_TRUE(std::isfinite(r.metrics.shorts.mean_response));
  EXPECT_GE(fault::hits("qbd.fi.iterate"), 1);
}

TEST_F(ResilientChaos, BurnFaultTripsTheDeadlineMidLadder) {
  // 1000ms of *virtual* time burned inside the exact rung blows the 50ms
  // budget without sleeping: the exact rung dies on DeadlineExceeded, the
  // truncated rung is skipped, and the simulation rung still answers (once
  // reached it always runs its initial batch).
  fault::arm(fault::parse_arm_spec("analysis.cscq.solve:1:burn:1000"));
  ResilientOptions opts = fast_sim_opts();
  opts.budget = RunBudget::with_timeout_ms(50);
  const ResilientResult r = analyze_resilient(clean_config(), opts);
  EXPECT_EQ(r.rung_used, Rung::kSimulation);
  ASSERT_GE(r.attempts.size(), 3u);
  EXPECT_EQ(r.attempts[0].rung, Rung::kExact);
  EXPECT_EQ(r.attempts[0].status.code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(r.attempts[1].rung, Rung::kTruncated);
  EXPECT_EQ(r.attempts[1].status.code, ErrorCode::kDeadlineExceeded);
  EXPECT_TRUE(r.attempts.back().succeeded);
  EXPECT_TRUE(std::isfinite(r.metrics.shorts.mean_response));
}

TEST_F(ResilientChaos, CancellationAbortsTheLadderNoConsolationPrize) {
  // A throw:Cancelled fault models the cancel token firing inside the exact
  // rung: unlike a deadline, cancellation must abort the whole ladder.
  fault::arm(fault::parse_arm_spec("analysis.cscq.solve:1:throw:Cancelled"));
  EXPECT_THROW((void)analyze_resilient(clean_config(), fast_sim_opts()), CancelledError);
}

TEST_F(ResilientChaos, SweepMarksAFaultedPolicyFailedNotUnstable) {
  // mg1.pk.wait is hit first by the Dedicated analysis: the injected
  // failure must show up as kFailed on that policy's status byte only.
  fault::arm(fault::parse_arm_spec("mg1.pk.wait:1:throw:NotConverged"));
  const auto rows = sweep_rho_short(0.5, 1.0, 1.0, 1.0, {0.5});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].dedicated_status, PointStatus::kFailed);
  EXPECT_TRUE(std::isnan(rows[0].dedicated_short));
  EXPECT_EQ(rows[0].cscq_status, PointStatus::kOk);
  // The saturated-long fallback fill still runs (the site is healthy again).
  EXPECT_FALSE(std::isnan(rows[0].dedicated_long));
}

// --- Adaptive CI stopping in the simulation rung's engine ------------------

TEST(SimAdaptive, DisabledRuleRunsExactlyTheRequestedReplications) {
  sim::SimOptions sopts;
  sopts.total_completions = 5000;
  sim::ReplicationOptions ropts;
  ropts.replications = 3;
  ropts.target_rel_ci = 0.0;
  const sim::ReplicatedResult r =
      sim::simulate_replications(sim::PolicyKind::kCsCq, clean_config(), sopts, ropts);
  EXPECT_EQ(r.replications.size(), 3u);
}

TEST(SimAdaptive, UnreachableTargetExtendsToTheCap) {
  sim::SimOptions sopts;
  sopts.total_completions = 5000;
  sim::ReplicationOptions ropts;
  ropts.replications = 2;
  ropts.target_rel_ci = 1e-9;  // unreachable: must stop at max_replications
  ropts.max_replications = 6;
  const sim::ReplicatedResult r =
      sim::simulate_replications(sim::PolicyKind::kCsCq, clean_config(), sopts, ropts);
  EXPECT_EQ(r.replications.size(), 6u);
  EXPECT_GT(r.shorts.ci95, 0.0);
}

TEST(SimAdaptive, ExpiredBudgetStillRunsTheInitialBatch) {
  sim::SimOptions sopts;
  sopts.total_completions = 5000;
  sim::ReplicationOptions ropts;
  ropts.replications = 2;
  ropts.target_rel_ci = 1e-9;
  ropts.max_replications = 64;
  ropts.budget = RunBudget::with_timeout_ms(0);  // expired before the first run
  const sim::ReplicatedResult r =
      sim::simulate_replications(sim::PolicyKind::kCsCq, clean_config(), sopts, ropts);
  // The initial batch always completes; the expired budget only stops the
  // adaptive extension.
  EXPECT_EQ(r.replications.size(), 2u);
}

TEST(SimAdaptive, MalformedOptionsThrowInvalidInput) {
  sim::ReplicationOptions ropts;
  ropts.replications = 0;
  EXPECT_THROW((void)sim::simulate_replications(sim::PolicyKind::kCsCq, clean_config(),
                                                sim::SimOptions{}, ropts),
               InvalidInputError);
  ropts = sim::ReplicationOptions{};
  ropts.target_rel_ci = 0.5;
  ropts.max_replications = ropts.replications - 1;  // cap below the batch
  EXPECT_THROW((void)sim::simulate_replications(sim::PolicyKind::kCsCq, clean_config(),
                                                sim::SimOptions{}, ropts),
               InvalidInputError);
}

}  // namespace
}  // namespace csq
