#include <gtest/gtest.h>

#include <cmath>

#include "analysis/cscq.h"
#include "analysis/csid.h"
#include "analysis/dedicated.h"
#include "analysis/stability.h"
#include "analysis/truncated_cscq.h"
#include "mg1/mg1.h"
#include "mg1/mmc.h"

namespace csq::analysis {
namespace {

TEST(Cscq, LimitNoLongsIsExactMM2) {
  // lambda_L -> 0: shorts own both hosts, an M/M/2 queue (paper Section 4,
  // "validation against known limiting cases ... was perfect").
  for (const double rho_s : {0.2, 0.7, 1.3, 1.8}) {
    const SystemConfig c = SystemConfig::paper_setup(rho_s, 1e-10, 1.0, 1.0);
    const CscqResult r = analyze_cscq(c);
    EXPECT_NEAR(r.metrics.shorts.mean_response, mg1::mmc_response(2, c.lambda_short, 1.0),
                1e-6)
        << "rho_s=" << rho_s;
  }
}

TEST(Cscq, LimitNoShortsIsExactMG1ForLongs) {
  for (const double scv : {1.0, 8.0}) {
    const SystemConfig c = SystemConfig::paper_setup(1e-10, 0.7, 1.0, 1.0, scv);
    const CscqResult r = analyze_cscq(c);
    EXPECT_NEAR(r.metrics.longs.mean_response,
                mg1::pk_response(c.lambda_long, c.long_size->moments()), 1e-6)
        << "scv=" << scv;
  }
}

TEST(Cscq, MatchesExactTruncatedChain) {
  // Exponential/exponential: the truncated 2-D chain is exact up to
  // truncation; the busy-period-transition QBD should track it closely
  // (the paper reports <2% typical vs simulation).
  for (const double rho_l : {0.3, 0.6}) {
    for (const double rho_s : {0.5, 1.0}) {
      const SystemConfig c = SystemConfig::paper_setup(rho_s, rho_l, 1.0, 1.0);
      const CscqResult qbd = analyze_cscq(c);
      TruncatedCscqOptions topts;
      topts.max_shorts = 150;
      topts.max_longs = 150;
      const TruncatedCscqResult exact = analyze_cscq_truncated(c, topts);
      ASSERT_TRUE(exact.converged);
      EXPECT_NEAR(qbd.metrics.shorts.mean_response, exact.metrics.shorts.mean_response,
                  0.02 * exact.metrics.shorts.mean_response)
          << "rho_s=" << rho_s << " rho_l=" << rho_l;
      // Region probabilities feed the long-job setup model; check them too.
      EXPECT_NEAR(qbd.p_region1, exact.p_region1, 0.02);
      EXPECT_NEAR(qbd.p_region2, exact.p_region2, 0.02);
    }
  }
}

TEST(Cscq, StationaryMassSumsToOne) {
  const SystemConfig c = SystemConfig::paper_setup(1.2, 0.5, 1.0, 10.0, 8.0);
  const CscqResult r = analyze_cscq(c);
  EXPECT_LT(r.qbd_mass_error, 1e-8);
  EXPECT_GT(r.p_region1, 0.0);
  EXPECT_GT(r.p_region2, 0.0);
}

TEST(Cscq, BusyPeriodFitsMatchThreeMoments) {
  const SystemConfig c = SystemConfig::paper_setup(1.0, 0.5, 1.0, 1.0, 8.0);
  const CscqResult r = analyze_cscq(c);
  EXPECT_EQ(r.fit_single.moments_matched, 3);
  EXPECT_EQ(r.fit_batch.moments_matched, 3);
  EXPECT_FALSE(r.fit_single.used_fallback);
}

TEST(Cscq, ShortResponseIncreasesInLoad) {
  double prev = 0.0;
  for (double rho_s = 0.1; rho_s < 1.45; rho_s += 0.1) {
    const SystemConfig c = SystemConfig::paper_setup(rho_s, 0.5, 1.0, 1.0);
    const double v = analyze_cscq(c).metrics.shorts.mean_response;
    EXPECT_GT(v, prev) << "rho_s=" << rho_s;
    prev = v;
  }
}

TEST(Cscq, LongResponseIncreasesInShortLoad) {
  // More shorts -> more chances the first long of a cycle must wait.
  double prev = 0.0;
  for (double rho_s = 0.1; rho_s < 1.45; rho_s += 0.2) {
    const SystemConfig c = SystemConfig::paper_setup(rho_s, 0.5, 1.0, 1.0);
    const double v = analyze_cscq(c).metrics.longs.mean_response;
    EXPECT_GT(v, prev) << "rho_s=" << rho_s;
    prev = v;
  }
}

TEST(Cscq, SaturatedLongResponseIsContinuousAtTheFrontier) {
  // Just inside the stability frontier the full analysis should approach the
  // saturated-shorts closed form (setup probability -> 1).
  const double rho_l = 0.5;
  const SystemConfig inside =
      SystemConfig::paper_setup(2.0 - rho_l - 0.002, rho_l, 1.0, 1.0);
  const double full = analyze_cscq(inside).metrics.longs.mean_response;
  const double saturated = cscq_long_response_saturated(inside);
  EXPECT_NEAR(full, saturated, 0.01 * saturated);
}

TEST(Cscq, OutsideStabilityRegionThrows) {
  EXPECT_THROW((void)analyze_cscq(SystemConfig::paper_setup(1.5, 0.5, 1.0, 1.0)),
               std::domain_error);
  EXPECT_THROW((void)analyze_cscq(SystemConfig::paper_setup(0.5, 1.0, 1.0, 1.0)),
               std::domain_error);
  EXPECT_THROW((void)cscq_long_response_saturated(SystemConfig::paper_setup(1.5, 1.0, 1, 1)),
               std::domain_error);
}

TEST(Cscq, NonExponentialShortsRejected) {
  SystemConfig c = SystemConfig::paper_setup(0.5, 0.5, 1.0, 1.0);
  c.short_size = std::make_shared<dist::PhaseType>(dist::PhaseType::erlang(2, 2.0));
  EXPECT_THROW((void)analyze_cscq(c), std::invalid_argument);
}

TEST(Cscq, FewerMomentsStillSolveButLoseAccuracy) {
  const SystemConfig c = SystemConfig::paper_setup(1.0, 0.6, 1.0, 1.0);
  TruncatedCscqOptions topts;
  topts.max_shorts = 140;
  topts.max_longs = 140;
  const double exact = analyze_cscq_truncated(c, topts).metrics.shorts.mean_response;
  double err[4] = {};
  for (int k = 1; k <= 3; ++k) {
    CscqOptions o;
    o.busy_period_moments = k;
    const double v = analyze_cscq(c, o).metrics.shorts.mean_response;
    err[k] = std::abs(v - exact) / exact;
  }
  // Three moments must beat one moment; two must be sane.
  EXPECT_LT(err[3], err[1]);
  EXPECT_LT(err[3], 0.02);
  EXPECT_LT(err[2], 0.10);
}

// Paper headline claims, as properties over a parameter grid.
class CscqDominance : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(CscqDominance, ShortsGainLongsBarelyPay) {
  const auto [rho_s, rho_l, scv_l] = GetParam();
  if (!csid_stable(rho_s, rho_l)) GTEST_SKIP() << "outside CS-ID stability region";
  const SystemConfig c = SystemConfig::paper_setup(rho_s, rho_l, 1.0, 1.0, scv_l);
  const CscqResult cq = analyze_cscq(c);
  const CsidResult id = analyze_csid(c);
  // CS-CQ >= CS-ID >= Dedicated for shorts (smaller is better).
  EXPECT_LE(cq.metrics.shorts.mean_response, id.metrics.shorts.mean_response * 1.0001);
  if (dedicated_stable(rho_s, rho_l)) {
    const PolicyMetrics ded = analyze_dedicated(c);
    EXPECT_LE(id.metrics.shorts.mean_response, ded.shorts.mean_response * 1.0001);
    // Longs: both cycle stealers pay something, CS-CQ pays less than CS-ID
    // (renamable servers), and never more than the first-of-two-shorts
    // residual per busy cycle.
    EXPECT_GE(cq.metrics.longs.mean_response, ded.longs.mean_response * 0.9999);
    EXPECT_LE(cq.metrics.longs.mean_response, id.metrics.longs.mean_response * 1.0001);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, CscqDominance,
                         ::testing::Combine(::testing::Values(0.3, 0.7, 0.95, 1.2),
                                            ::testing::Values(0.2, 0.5, 0.7),
                                            ::testing::Values(1.0, 8.0)));

}  // namespace
}  // namespace csq::analysis
