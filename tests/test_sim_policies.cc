// Tests for the extended simulator policies: LWR equivalence with
// central-queue FCFS, the renaming ablation, and heterogeneous host speeds.
#include <gtest/gtest.h>

#include "mg1/mg1.h"
#include "mg1/mmc.h"
#include "sim/simulator.h"

namespace csq::sim {
namespace {

SimOptions opts(std::size_t n = 500000) {
  SimOptions o;
  o.total_completions = n;
  return o;
}

TEST(LwrPolicy, EquivalentToCentralQueueFcfs) {
  // Least-Work-Remaining immediate dispatch == M/G/k central FCFS
  // (Harchol-Balter, JACM 2002). Check mean response agreement within
  // simulation noise on a mixed workload.
  const SystemConfig c = SystemConfig::paper_setup(0.8, 0.6, 1.0, 10.0, 8.0);
  const SimResult lwr = simulate(PolicyKind::kLwr, c, opts(800000));
  const SimResult fcfs = simulate(PolicyKind::kMg2Fcfs, c, opts(800000));
  EXPECT_NEAR(lwr.shorts.mean_response, fcfs.shorts.mean_response,
              0.04 * fcfs.shorts.mean_response + 2.0 * fcfs.shorts.ci95);
  EXPECT_NEAR(lwr.longs.mean_response, fcfs.longs.mean_response,
              0.04 * fcfs.longs.mean_response + 2.0 * fcfs.longs.ci95);
}

TEST(LwrPolicy, SingleClassMatchesMM2) {
  const SystemConfig c = SystemConfig::paper_setup(1.2, 1e-12, 1.0, 1.0);
  const SimResult r = simulate(PolicyKind::kLwr, c, opts());
  const double expected = mg1::mmc_response(2, c.lambda_short, 1.0);
  EXPECT_NEAR(r.shorts.mean_response, expected, 0.04 * expected);
}

TEST(Renaming, NoRenameLongsPayMore) {
  // The paper's explanation of CS-CQ's low long penalty is renaming; with a
  // fixed long host, longs can get stuck behind a short on *their* host
  // while the other host idles.
  const SystemConfig c = SystemConfig::paper_setup(1.1, 0.5, 1.0, 1.0);
  const SimResult cq = simulate(PolicyKind::kCsCq, c, opts(1000000));
  const SimResult nr = simulate(PolicyKind::kCsCqNoRename, c, opts(1000000));
  EXPECT_GT(nr.longs.mean_response, cq.longs.mean_response);
}

TEST(Renaming, NoRenameStillBeatsDedicatedForShorts) {
  const SystemConfig c = SystemConfig::paper_setup(0.9, 0.5, 1.0, 1.0);
  const SimResult nr = simulate(PolicyKind::kCsCqNoRename, c, opts());
  const SimResult ded = simulate(PolicyKind::kDedicated, c, opts());
  EXPECT_LT(nr.shorts.mean_response, ded.shorts.mean_response);
}

TEST(Speeds, FastDedicatedShortHostIsScaledMM1) {
  // Server 0 twice as fast: Dedicated shorts see M/M/1 with service rate 2.
  const SystemConfig c = SystemConfig::paper_setup(0.8, 0.3, 1.0, 1.0);
  SimOptions o = opts();
  o.server_speeds = {2.0, 1.0};
  const SimResult r = simulate(PolicyKind::kDedicated, c, o);
  const double expected = mg1::mm1_response(c.lambda_short, 2.0);
  EXPECT_NEAR(r.shorts.mean_response, expected, 0.03 * expected);
}

TEST(Speeds, FasterDonorHelpsShortsUnderCsCq) {
  const SystemConfig c = SystemConfig::paper_setup(1.0, 0.5, 1.0, 1.0);
  SimOptions slow = opts();
  SimOptions fast = opts();
  fast.server_speeds = {1.0, 2.0};  // faster long host: more idle to donate
  const double t_slow = simulate(PolicyKind::kCsCq, c, slow).shorts.mean_response;
  const double t_fast = simulate(PolicyKind::kCsCq, c, fast).shorts.mean_response;
  EXPECT_LT(t_fast, t_slow);
}

TEST(Speeds, InvalidSpeedThrows) {
  const SystemConfig c = SystemConfig::paper_setup(0.5, 0.5, 1.0, 1.0);
  SimOptions o = opts();
  o.server_speeds = {0.0, 1.0};
  EXPECT_THROW((void)simulate(PolicyKind::kCsCq, c, o), std::invalid_argument);
}

TEST(PolicyNames, NewPolicies) {
  EXPECT_STREQ(policy_name(PolicyKind::kLwr), "LWR");
  EXPECT_STREQ(policy_name(PolicyKind::kCsCqNoRename), "CS-CQ-norename");
}

}  // namespace
}  // namespace csq::sim
