#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "core/config.h"
#include "core/deadline.h"
#include "core/solver.h"
#include "core/sweep.h"
#include "core/table.h"

namespace csq {
namespace {

TEST(Config, FromLoadsComputesRates) {
  const SystemConfig c = SystemConfig::paper_setup(1.2, 0.5, 2.0, 10.0);
  EXPECT_NEAR(c.lambda_short, 0.6, 1e-12);
  EXPECT_NEAR(c.lambda_long, 0.05, 1e-12);
  EXPECT_NEAR(c.rho_short(), 1.2, 1e-12);
  EXPECT_NEAR(c.rho_long(), 0.5, 1e-12);
}

TEST(Config, PaperSetupScv) {
  const SystemConfig c = SystemConfig::paper_setup(0.5, 0.5, 1.0, 10.0, 8.0);
  EXPECT_NEAR(c.long_size->scv(), 8.0, 1e-9);
  const SystemConfig e = SystemConfig::paper_setup(0.5, 0.5, 1.0, 10.0);
  EXPECT_NEAR(e.long_size->scv(), 1.0, 1e-9);
}

TEST(Config, ValidationErrors) {
  SystemConfig c;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  EXPECT_THROW(SystemConfig::from_loads(-0.1, 0.5, nullptr, nullptr), std::invalid_argument);
}

TEST(Config, ClassMetricsLittleLaw) {
  const ClassMetrics m = class_metrics_from_response(4.0, 0.5, 1.0);
  EXPECT_DOUBLE_EQ(m.mean_wait, 3.0);
  EXPECT_DOUBLE_EQ(m.mean_number, 2.0);
}

TEST(Solver, DispatchMatchesDirectCalls) {
  const SystemConfig c = SystemConfig::paper_setup(0.9, 0.5, 1.0, 1.0);
  for (const Policy p : {Policy::kDedicated, Policy::kCsId, Policy::kCsCq}) {
    EXPECT_TRUE(is_stable(p, c));
    const PolicyMetrics m = analyze(p, c);
    EXPECT_GT(m.shorts.mean_response, 1.0);
    EXPECT_GT(m.longs.mean_response, 1.0);
  }
  EXPECT_STREQ(policy_label(Policy::kCsCq), "CS-CQ");
}

TEST(Solver, StabilityDispatch) {
  const SystemConfig c = SystemConfig::paper_setup(1.4, 0.5, 1.0, 1.0);
  EXPECT_FALSE(is_stable(Policy::kDedicated, c));
  EXPECT_FALSE(is_stable(Policy::kCsId, c));  // frontier 1.28 at rho_L=0.5
  EXPECT_TRUE(is_stable(Policy::kCsCq, c));
}

TEST(Sweep, Linspace) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_DOUBLE_EQ(v[4], 1.0);
}

TEST(Sweep, LinspaceEdgeCases) {
  // n == 1 collapses to the lower bound instead of dividing by zero.
  const auto single = linspace(0.3, 1.7, 1);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0], 0.3);
  // lo == hi fills with the exact bound.
  for (const double x : linspace(0.7, 0.7, 4)) EXPECT_EQ(x, 0.7);
  // The last point is exactly hi, no accumulated rounding.
  EXPECT_EQ(linspace(0.1, 1.45, 29).back(), 1.45);
  EXPECT_THROW((void)linspace(0, 1, 0), csq::InvalidInputError);
  EXPECT_THROW((void)linspace(0, 1, -3), std::invalid_argument);
}

TEST(Sweep, LinspaceOpenStaysStrictlyInsideTheInterval) {
  // Boundary-exclusive grid for sweeping a stability region: no point may
  // land on lo or hi, where the analysis is degenerate.
  const auto v = linspace_open(0.0, 2.0, 9);
  ASSERT_EQ(v.size(), 9u);
  for (const double x : v) {
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, 2.0);
  }
  EXPECT_DOUBLE_EQ(v[4], 1.0);  // midpoint of an odd-sized grid
  EXPECT_THROW((void)linspace_open(1.0, 1.0, 3), csq::InvalidInputError);
  EXPECT_THROW((void)linspace_open(0, 1, 0), csq::InvalidInputError);
}

TEST(Sweep, LinspaceOpenSingletonIsTheMidpoint) {
  // Deliberately unlike linspace: n == 1 yields the interior midpoint,
  // never the boundary, so a one-point stability-region grid stays solvable.
  const auto v = linspace_open(0.4, 1.2, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 0.8);
}

TEST(Sweep, ExpiredBudgetMarksEveryPointTimedOutButKeepsRows) {
  SweepOptions opts;
  opts.budget = RunBudget::with_timeout_ms(0);
  const auto rows = sweep_rho_short(0.5, 1.0, 1.0, 1.0, {0.3, 0.6}, opts);
  ASSERT_EQ(rows.size(), 2u);  // rows survive; no exception escapes the pool
  EXPECT_DOUBLE_EQ(rows[0].x, 0.3);
  for (const auto& r : rows) {
    EXPECT_EQ(r.dedicated_status, PointStatus::kTimedOut);
    EXPECT_EQ(r.csid_status, PointStatus::kTimedOut);
    EXPECT_EQ(r.cscq_status, PointStatus::kTimedOut);
    EXPECT_TRUE(std::isnan(r.cscq_short));
  }
}

TEST(Sweep, PointStatusNamesAreStable) {
  EXPECT_STREQ(point_status_name(PointStatus::kOk), "ok");
  EXPECT_STREQ(point_status_name(PointStatus::kUnstable), "unstable");
  EXPECT_STREQ(point_status_name(PointStatus::kFailed), "failed");
  EXPECT_STREQ(point_status_name(PointStatus::kDegraded), "degraded");
  EXPECT_STREQ(point_status_name(PointStatus::kTimedOut), "timed-out");
}

TEST(RunBudget, DefaultIsInertAndUnlimited) {
  const RunBudget b;
  EXPECT_FALSE(b.has_deadline());
  EXPECT_FALSE(b.interrupted());
  EXPECT_EQ(b.remaining_ms(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(b.budget_ms(), std::numeric_limits<double>::infinity());
  EXPECT_NO_THROW(b.check("test"));
}

TEST(RunBudget, NonPositiveTimeoutIsAlreadyExpired) {
  for (const double ms : {0.0, -5.0}) {
    const RunBudget b = RunBudget::with_timeout_ms(ms);
    EXPECT_TRUE(b.has_deadline());
    EXPECT_TRUE(b.expired());
    EXPECT_TRUE(b.interrupted());
    EXPECT_DOUBLE_EQ(b.remaining_ms(), 0.0);
    EXPECT_THROW(b.check("test"), DeadlineExceededError);
  }
}

TEST(RunBudget, InfiniteTimeoutIsUnlimitedNanThrows) {
  const RunBudget b = RunBudget::with_timeout_ms(std::numeric_limits<double>::infinity());
  EXPECT_FALSE(b.has_deadline());
  EXPECT_FALSE(b.expired());
  EXPECT_NO_THROW(b.check("test"));
  EXPECT_THROW((void)RunBudget::with_timeout_ms(std::nan("")), InvalidInputError);
}

TEST(RunBudget, CancelTokenWinsOverDeadline) {
  CancelToken token;
  const RunBudget b = RunBudget::with_timeout_ms(0).with_token(token);
  EXPECT_THROW(b.check("test"), DeadlineExceededError);  // not yet cancelled
  token.cancel();
  // Cancelled *and* expired: check() reports the cancellation, not the
  // deadline — the caller asked to stop.
  EXPECT_TRUE(b.cancelled());
  EXPECT_THROW(b.check("test"), CancelledError);
}

TEST(RunBudget, SliceNeverExtendsPastTheParentDeadline) {
  const RunBudget parent = RunBudget::with_timeout_ms(50);
  const RunBudget slice = parent.slice_ms(10000);
  EXPECT_TRUE(slice.has_deadline());
  EXPECT_LE(slice.remaining_ms(), parent.remaining_ms());
  // Slicing an unlimited budget introduces a deadline.
  const RunBudget capped = RunBudget::unlimited().slice_ms(10);
  EXPECT_TRUE(capped.has_deadline());
  EXPECT_LE(capped.remaining_ms(), 10.0);
}

TEST(RunBudget, VirtualClockAdvanceTripsTheDeadlineWithoutSleeping) {
  timebase::reset_virtual();
  const RunBudget b = RunBudget::with_timeout_ms(10000);
  EXPECT_FALSE(b.expired());
  timebase::advance_virtual_ns(20000LL * 1000 * 1000);  // +20 s, instantly
  EXPECT_TRUE(b.expired());
  EXPECT_THROW(b.check("test"), DeadlineExceededError);
  timebase::reset_virtual();
  EXPECT_FALSE(b.expired());
}

TEST(RunBudget, AnnotateStampsBudgetAndElapsed) {
  const Diagnostics inert = RunBudget().annotate({});
  EXPECT_FALSE(inert.has(inert.budget_ms));
  const Diagnostics d = RunBudget::with_timeout_ms(100).annotate({});
  EXPECT_TRUE(d.has(d.budget_ms));
  EXPECT_TRUE(d.has(d.elapsed_ms));
  EXPECT_NEAR(d.budget_ms, 100.0, 1.0);
}

TEST(Sweep, RhoShortMarksInstabilityWithNaN) {
  const auto rows = sweep_rho_short(0.5, 1.0, 1.0, 1.0, {0.9, 1.1, 1.4});
  ASSERT_EQ(rows.size(), 3u);
  // 0.9: all stable.
  EXPECT_FALSE(std::isnan(rows[0].dedicated_short));
  // 1.1: Dedicated shorts unstable; cycle stealers fine.
  EXPECT_TRUE(std::isnan(rows[1].dedicated_short));
  EXPECT_FALSE(std::isnan(rows[1].csid_short));
  // 1.4: CS-ID shorts also unstable (frontier ~1.28).
  EXPECT_TRUE(std::isnan(rows[2].csid_short));
  EXPECT_FALSE(std::isnan(rows[2].cscq_short));
  // Long columns are always populated while rho_L < 1.
  for (const auto& r : rows) {
    EXPECT_FALSE(std::isnan(r.dedicated_long));
    EXPECT_FALSE(std::isnan(r.csid_long));
    EXPECT_FALSE(std::isnan(r.cscq_long));
  }
}

TEST(Sweep, RhoLongSweepShapes) {
  const auto rows = sweep_rho_long(1.5, 1.0, 1.0, 8.0, {0.1, 0.3, 0.6});
  // CS-ID shorts stable only below rho_L = 1/6.
  EXPECT_FALSE(std::isnan(rows[0].csid_short));
  EXPECT_TRUE(std::isnan(rows[1].csid_short));
  // CS-CQ shorts stable below 0.5.
  EXPECT_FALSE(std::isnan(rows[1].cscq_short));
  EXPECT_TRUE(std::isnan(rows[2].cscq_short));
  // Dedicated shorts never stable at rho_S = 1.5.
  for (const auto& r : rows) EXPECT_TRUE(std::isnan(r.dedicated_short));
}

TEST(Table, PrintAndCsv) {
  Table t({"a", "b"});
  t.add_row({1.0, std::nan("")});
  t.add_row({std::vector<std::string>{"x", "y"}});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1.0000"), std::string::npos);
  EXPECT_NE(os.str().find("-"), std::string::npos);
  std::ostringstream csv;
  t.write_csv(csv);
  EXPECT_NE(csv.str().find("a,b"), std::string::npos);
  EXPECT_NE(csv.str().find("x,y"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, Errors) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
  Table t({"a"});
  EXPECT_THROW(t.add_row({1.0, 2.0}), std::invalid_argument);
}

TEST(Format, Cell) {
  EXPECT_EQ(format_cell(std::nan("")), "-");
  EXPECT_EQ(format_cell(1.5, 2), "1.50");
}

}  // namespace
}  // namespace csq
