#include <gtest/gtest.h>

#include <memory>

#include "analysis/cscq.h"
#include "analysis/cscq_ph.h"
#include "mg1/mmc.h"
#include "sim/simulator.h"

namespace csq::analysis {
namespace {

SystemConfig with_shorts(const SystemConfig& base, dist::PhaseType shorts, double rho_s) {
  SystemConfig c = base;
  const double mean = shorts.mean();
  c.short_size = std::make_shared<dist::PhaseType>(std::move(shorts));
  c.lambda_short = rho_s / mean;
  return c;
}

TEST(CscqPh, ReducesToExponentialAnalysis) {
  // With one-phase shorts the PH chain must coincide with analyze_cscq.
  for (const double rho_s : {0.4, 0.9, 1.3}) {
    for (const double scv_l : {1.0, 8.0}) {
      const SystemConfig c = SystemConfig::paper_setup(rho_s, 0.5, 1.0, 10.0, scv_l);
      const CscqResult expo = analyze_cscq(c);
      const CscqPhResult ph = analyze_cscq_ph(c);
      EXPECT_NEAR(ph.metrics.shorts.mean_response, expo.metrics.shorts.mean_response,
                  1e-8 * expo.metrics.shorts.mean_response);
      EXPECT_NEAR(ph.metrics.longs.mean_response, expo.metrics.longs.mean_response,
                  1e-8 * expo.metrics.longs.mean_response);
      EXPECT_NEAR(ph.p_region1, expo.p_region1, 1e-9);
      EXPECT_NEAR(ph.p_region2, expo.p_region2, 1e-9);
    }
  }
}

TEST(CscqPh, WindowIsFirstOfTwoServices) {
  // Exponential shorts: Theta = Exp(2 mu). Erlang-2 shorts: computed via the
  // pair chain; compare its mean with direct integration (known value
  // 23/(16 mu) for two fresh Erlang-2(2 mu) services... just check bounds
  // and the exponential case exactly).
  const SystemConfig c = SystemConfig::paper_setup(0.5, 0.5, 1.0, 1.0);
  const CscqPhResult r = analyze_cscq_ph(c);
  EXPECT_NEAR(r.window.m1, 0.5, 1e-10);
  EXPECT_NEAR(r.window.m2, 2.0 * 0.25, 1e-10);

  const SystemConfig erl = with_shorts(c, dist::PhaseType::erlang(2, 2.0), 0.5);
  const CscqPhResult re = analyze_cscq_ph(erl);
  // First completion among the two in-service Erlang-2 shorts: shorter than
  // a full service; the fixed point used more than one pass.
  EXPECT_LT(re.window.m1, 1.0);
  EXPECT_GT(re.window.m1, 0.0);
  EXPECT_GT(re.window_iterations, 1);

  // High-variability shorts: the long's window is LONGER than two fresh
  // services would suggest (inspection paradox on the in-service pair).
  const SystemConfig cox = with_shorts(c, dist::PhaseType::coxian_mean_scv(1.0, 4.0), 0.5);
  const CscqPhResult rc = analyze_cscq_ph(cox);
  CscqPhOptions one_pass;
  one_pass.window_iterations = 1;
  const CscqPhResult rc_fresh = analyze_cscq_ph(cox, one_pass);
  EXPECT_GT(rc.window.m1, rc_fresh.window.m1);
}

TEST(CscqPh, MassConservedAndRegionsPositive) {
  const SystemConfig base = SystemConfig::paper_setup(1.0, 0.5, 1.0, 1.0, 8.0);
  const SystemConfig c = with_shorts(base, dist::PhaseType::coxian_mean_scv(1.0, 4.0), 1.0);
  const CscqPhResult r = analyze_cscq_ph(c);
  EXPECT_LT(r.qbd_mass_error, 1e-8);
  EXPECT_GT(r.p_region1, 0.0);
  EXPECT_GT(r.p_region2, 0.0);
  EXPECT_EQ(r.num_phases, 2u * 3u + 2u * 2u * 2u);  // pairs + busy blocks (k=2)
}

TEST(CscqPh, NoLongsIsMPh2AgainstSimulation) {
  // lambda_L -> 0 turns the chain into an exact M/PH/2 queue.
  const SystemConfig base = SystemConfig::paper_setup(1.2, 1e-12, 1.0, 1.0);
  const SystemConfig c = with_shorts(base, dist::PhaseType::erlang(2, 2.0), 1.2);
  const CscqPhResult r = analyze_cscq_ph(c);
  sim::SimOptions opts;
  opts.total_completions = 1000000;
  const sim::SimResult s = sim::simulate(sim::PolicyKind::kCsCq, c, opts);
  EXPECT_NEAR(r.metrics.shorts.mean_response, s.shorts.mean_response,
              0.02 * s.shorts.mean_response + 2.0 * s.shorts.ci95);
}

struct PhCase {
  const char* name;
  double rho_s, rho_l, scv_l;
  bool erlang;  // Erlang-2 (scv 0.5) vs Coxian (scv 4) shorts
};

class CscqPhVsSim : public ::testing::TestWithParam<PhCase> {};

TEST_P(CscqPhVsSim, WithinFivePercent) {
  const PhCase g = GetParam();
  const SystemConfig base = SystemConfig::paper_setup(g.rho_s, g.rho_l, 1.0, 1.0, g.scv_l);
  const dist::PhaseType shorts = g.erlang ? dist::PhaseType::erlang(2, 2.0)
                                          : dist::PhaseType::coxian_mean_scv(1.0, 4.0);
  const SystemConfig c = with_shorts(base, shorts, g.rho_s);
  const CscqPhResult r = analyze_cscq_ph(c);
  sim::SimOptions opts;
  opts.total_completions = 1000000;
  const sim::SimResult s = sim::simulate(sim::PolicyKind::kCsCq, c, opts);
  EXPECT_NEAR(r.metrics.shorts.mean_response, s.shorts.mean_response,
              0.05 * s.shorts.mean_response + 2.0 * s.shorts.ci95);
  EXPECT_NEAR(r.metrics.longs.mean_response, s.longs.mean_response,
              0.05 * s.longs.mean_response + 2.0 * s.longs.ci95);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CscqPhVsSim,
    ::testing::Values(PhCase{"erlang_mid", 0.9, 0.5, 1.0, true},
                      PhCase{"erlang_highvar_longs", 0.8, 0.5, 8.0, true},
                      PhCase{"coxian_mid", 0.9, 0.5, 1.0, false},
                      PhCase{"coxian_heavy", 1.2, 0.3, 1.0, false}),
    [](const ::testing::TestParamInfo<PhCase>& info) { return info.param.name; });

TEST(CscqPh, InvalidInputs) {
  EXPECT_THROW((void)analyze_cscq_ph(SystemConfig::paper_setup(1.6, 0.5, 1.0, 1.0)),
               std::domain_error);
  SystemConfig c = SystemConfig::paper_setup(0.5, 0.5, 1.0, 1.0);
  c.short_size = std::make_shared<dist::Deterministic>(1.0);
  EXPECT_THROW((void)analyze_cscq_ph(c), std::invalid_argument);
}

}  // namespace
}  // namespace csq::analysis
