// TAGS (Task Assignment by Guessing Size) — the related-work policy for
// unknown job sizes, built on the engine's kill-and-restart hook.
#include <gtest/gtest.h>

#include <memory>

#include "mg1/mg1.h"
#include "mg1/mmc.h"
#include "sim/simulator.h"

namespace csq::sim {
namespace {

SimOptions tags_opts(double cutoff, std::size_t n = 500000) {
  SimOptions o;
  o.total_completions = n;
  o.tags_cutoff = cutoff;
  return o;
}

TEST(Tags, HugeCutoffIsSingleMG1) {
  // Nothing ever overflows: host 0 is an M/G/1 over the merged job stream.
  const SystemConfig c = SystemConfig::paper_setup(0.3, 0.3, 1.0, 10.0);
  const SimResult r = simulate(PolicyKind::kTags, c, tags_opts(1e9));
  const double lambda = c.lambda_short + c.lambda_long;
  const double ps = c.lambda_short / lambda;
  const dist::Moments xs = c.short_size->moments();
  const dist::Moments xl = c.long_size->moments();
  const dist::Moments mix{ps * xs.m1 + (1 - ps) * xl.m1, ps * xs.m2 + (1 - ps) * xl.m2,
                          ps * xs.m3 + (1 - ps) * xl.m3};
  const double expected = mg1::pk_response(lambda, mix);
  const double sim_mixed = ps * r.shorts.mean_response + (1 - ps) * r.longs.mean_response;
  EXPECT_NEAR(sim_mixed, expected, 0.04 * expected);
  EXPECT_NEAR(r.utilization[1], 0.0, 1e-12);  // overflow host never used
}

TEST(Tags, DeterministicSizesShowKillAndRestartCost) {
  // Shorts of size 1, longs of size 10, cutoff 2: at light load a long's
  // response is ~ cutoff (wasted at host 0) + full restart at host 1.
  SystemConfig c;
  c.short_size = std::make_shared<dist::Deterministic>(1.0);
  c.long_size = std::make_shared<dist::Deterministic>(10.0);
  c.lambda_short = 0.02;
  c.lambda_long = 0.002;
  const SimResult r = simulate(PolicyKind::kTags, c, tags_opts(2.0, 200000));
  EXPECT_NEAR(r.longs.mean_response, 12.0, 0.3);
  EXPECT_NEAR(r.shorts.mean_response, 1.0, 0.1);
}

TEST(Tags, SegregatesBetterThanRoundRobin) {
  // High-variability merged workload: a sensible cutoff protects shorts far
  // better than blind Round-Robin dispatch (the literature's comparison —
  // with only two hosts a central M/G/2 queue remains hard to beat).
  const SystemConfig c = SystemConfig::paper_setup(0.5, 0.4, 1.0, 10.0, 8.0);
  const SimResult tags = simulate(PolicyKind::kTags, c, tags_opts(5.0));
  const SimResult rr = simulate(PolicyKind::kRoundRobin, c, tags_opts(5.0));
  EXPECT_LT(tags.shorts.mean_response, rr.shorts.mean_response);
}

TEST(RoundRobin, BalancedExponentialMatchesPerHostQueue) {
  // Only shorts: Round-Robin makes each host an E2/M/1 queue (Erlang
  // interarrivals) — better than M/M/1 at the same per-host load, worse
  // than M/M/2. Envelope check.
  const SystemConfig c = SystemConfig::paper_setup(1.0, 1e-12, 1.0, 1.0);
  const SimResult r = simulate(PolicyKind::kRoundRobin, c, tags_opts(1.0));
  const double mm1 = mg1::mm1_response(c.lambda_short / 2.0, 1.0);
  EXPECT_LT(r.shorts.mean_response, mm1);
  EXPECT_GT(r.shorts.mean_response, mg1::mmc_response(2, c.lambda_short, 1.0));
}

TEST(Tags, ShortsKilledTooAreStillCounted) {
  // Cutoff below the SHORT mean: even shorts overflow; the system must stay
  // consistent (completions conserved, responses include the wasted pass).
  const SystemConfig c = SystemConfig::paper_setup(0.3, 0.2, 1.0, 10.0);
  const SimResult r = simulate(PolicyKind::kTags, c, tags_opts(0.1, 300000));
  EXPECT_GT(r.shorts.completions, 100000u);
  EXPECT_GT(r.shorts.mean_response, 1.0);  // every nontrivial short pays the detour
  EXPECT_GT(r.utilization[1], r.utilization[0]);
}

TEST(Tags, InvalidCutoffThrows) {
  const SystemConfig c = SystemConfig::paper_setup(0.5, 0.5, 1.0, 1.0);
  EXPECT_THROW((void)simulate(PolicyKind::kTags, c, tags_opts(0.0)), std::invalid_argument);
}

}  // namespace
}  // namespace csq::sim
