#include <gtest/gtest.h>

#include <cmath>

#include "analysis/csid.h"
#include "analysis/stability.h"
#include "mg1/mg1.h"
#include "sim/simulator.h"

namespace csq::analysis {
namespace {

TEST(Csid, ModulatorReproducesClosedFormIdleProbability) {
  // The MMPP modulator's stationary idle mass must agree with the exact
  // renewal-theoretic P(idle) = (1-rho_L)/(1+rho_S); the only gap is the
  // 3-moment busy-period fit.
  for (const double rho_s : {0.3, 0.9, 1.2}) {
    for (const double rho_l : {0.2, 0.5}) {
      if (!csid_stable(rho_s, rho_l)) continue;
      const SystemConfig c = SystemConfig::paper_setup(rho_s, rho_l, 1.0, 1.0);
      const CsidResult r = analyze_csid(c);
      EXPECT_LT(r.modulator_idle_error, 2e-3) << "rho_s=" << rho_s << " rho_l=" << rho_l;
    }
  }
}

TEST(Csid, IdleProbabilityMatchesSimulation) {
  const SystemConfig c = SystemConfig::paper_setup(0.9, 0.5, 1.0, 1.0);
  const CsidResult r = analyze_csid(c);
  sim::SimOptions opts;
  opts.total_completions = 400000;
  const sim::SimResult s = sim::simulate(sim::PolicyKind::kCsId, c, opts);
  EXPECT_NEAR(r.p_long_host_idle, s.p_long_host_idle, 0.01);
}

TEST(Csid, LimitNoLongsMatchesStolenFractionModel) {
  // With no longs, the long host is a pure overflow server: a fraction
  // f = 1/(1+rho_S) of shorts is stolen and completes in E[X_S].
  const SystemConfig c = SystemConfig::paper_setup(0.9, 1e-10, 1.0, 1.0);
  const CsidResult r = analyze_csid(c);
  EXPECT_NEAR(r.fraction_stolen, 1.0 / 1.9, 1e-6);
  sim::SimOptions opts;
  opts.total_completions = 600000;
  const sim::SimResult s = sim::simulate(sim::PolicyKind::kCsId, c, opts);
  EXPECT_NEAR(r.metrics.shorts.mean_response, s.shorts.mean_response,
              0.03 * s.shorts.mean_response);
}

TEST(Csid, LimitNoShortsIsExactMG1ForLongs) {
  const SystemConfig c = SystemConfig::paper_setup(1e-10, 0.6, 1.0, 1.0, 8.0);
  const CsidResult r = analyze_csid(c);
  EXPECT_NEAR(r.metrics.longs.mean_response,
              mg1::pk_response(c.lambda_long, c.long_size->moments()), 1e-6);
}

TEST(Csid, LongResponseHelperAgreesWithFullAnalysis) {
  const SystemConfig c = SystemConfig::paper_setup(1.0, 0.5, 1.0, 10.0, 8.0);
  EXPECT_DOUBLE_EQ(csid_long_response(c), analyze_csid(c).metrics.longs.mean_response);
}

TEST(Csid, LongResponseValidBeyondShortStability) {
  // Figure 6 regime: rho_S = 1.5 saturates the short host, the long host
  // doesn't care.
  const SystemConfig c = SystemConfig::paper_setup(1.5, 0.8, 1.0, 1.0, 8.0);
  const double t = csid_long_response(c);
  EXPECT_GT(t, mg1::pk_response(c.lambda_long, c.long_size->moments()));
  EXPECT_LT(t, 1e3);
}

TEST(Csid, StabilityEdgeBehaviour) {
  const double frontier = csid_max_rho_short(0.5);
  EXPECT_NO_THROW((void)analyze_csid(
      SystemConfig::paper_setup(frontier - 0.02, 0.5, 1.0, 1.0)));
  EXPECT_THROW((void)analyze_csid(
                   SystemConfig::paper_setup(frontier + 0.01, 0.5, 1.0, 1.0)),
               std::domain_error);
}

TEST(Csid, ShortResponseDivergesNearFrontier) {
  const double frontier = csid_max_rho_short(0.5);
  const double near = analyze_csid(SystemConfig::paper_setup(frontier - 0.01, 0.5, 1.0, 1.0))
                          .metrics.shorts.mean_response;
  const double mid = analyze_csid(SystemConfig::paper_setup(1.0, 0.5, 1.0, 1.0))
                         .metrics.shorts.mean_response;
  EXPECT_GT(near, 10.0 * mid);
}

TEST(Csid, NonExponentialShortsRejected) {
  SystemConfig c = SystemConfig::paper_setup(0.5, 0.5, 1.0, 1.0);
  c.short_size = std::make_shared<dist::PhaseType>(dist::PhaseType::erlang(2, 2.0));
  EXPECT_THROW((void)analyze_csid(c), std::invalid_argument);
  EXPECT_THROW((void)csid_long_response(c), std::invalid_argument);
}

}  // namespace
}  // namespace csq::analysis
