#include <gtest/gtest.h>

#include <random>

#include "dist/phase_type.h"
#include "mg1/mg1.h"
#include "mg1/mmc.h"
#include "sim/rng.h"

namespace csq::mg1 {
namespace {

TEST(Mg1, PkReducesToMM1) {
  const double lambda = 0.8, mu = 1.0;
  const dist::Moments x = dist::Moments::exponential(1.0 / mu);
  EXPECT_NEAR(pk_response(lambda, x), mm1_response(lambda, mu), 1e-12);
}

TEST(Mg1, PkDeterministicIsHalfExponentialWait) {
  // M/D/1 wait = half of M/M/1 wait at the same load.
  const double lambda = 0.5;
  const dist::Moments det{1.0, 1.0, 1.0};
  const dist::Moments exp = dist::Moments::exponential(1.0);
  EXPECT_NEAR(pk_wait(lambda, det), 0.5 * pk_wait(lambda, exp), 1e-12);
}

TEST(Mg1, UnstableThrows) {
  EXPECT_THROW((void)pk_wait(1.0, dist::Moments::exponential(1.0)), std::domain_error);
  EXPECT_THROW((void)mm1_response(2.0, 1.0), std::domain_error);
  EXPECT_THROW((void)pk_wait(-0.1, dist::Moments::exponential(1.0)), std::invalid_argument);
}

TEST(Mg1, SetupZeroReducesToPk) {
  const double lambda = 0.6;
  const dist::Moments x{1.0, 9.0, 250.0};
  EXPECT_NEAR(setup_wait(lambda, x, {0.0, 0.0, 0.0}), pk_wait(lambda, x), 1e-12);
}

TEST(Mg1, SetupIncreasesWait) {
  const double lambda = 0.6;
  const dist::Moments x = dist::Moments::exponential(1.0);
  const dist::Moments s = dist::Moments::exponential(0.5);
  EXPECT_GT(setup_wait(lambda, x, s), pk_wait(lambda, x));
}

TEST(Mg1, WaitSecondMoment) {
  // For M/M/1, E[W^2] = 2 rho (1+rho...) — use the known LST result:
  // W is 0 w.p. 1-rho, Exp(mu-lambda) w.p. rho, so
  // E[W^2] = rho * 2/(mu-lambda)^2.
  const double lambda = 0.5, mu = 1.0;
  const dist::Moments x = dist::Moments::exponential(1.0);
  const double expected = lambda / mu * 2.0 / ((mu - lambda) * (mu - lambda));
  EXPECT_NEAR(pk_wait_second_moment(lambda, x), expected, 1e-12);
}

// Discrete-event oracle for the M/G/1-with-setup formula: single server,
// Poisson arrivals; when an arrival starts a new busy period the server
// first performs an independent setup.
TEST(Mg1, SetupFormulaMatchesSimulation) {
  const double lambda = 0.5;
  const dist::PhaseType job = dist::PhaseType::exponential(1.0);
  const dist::PhaseType setup = dist::PhaseType::exponential(2.0);

  dist::Rng rng = sim::make_rng(99);
  std::exponential_distribution<double> interarrival(lambda);
  const int kJobs = 2000000;
  double clock = 0.0;          // arrival clock
  double server_free_at = 0.0; // next time the server is idle
  double total_response = 0.0;
  int measured = 0;
  for (int i = 0; i < kJobs; ++i) {
    clock += interarrival(rng);
    double start = server_free_at;
    if (clock >= server_free_at) start = clock + setup.sample(rng);  // new busy period
    const double done = start + job.sample(rng);
    server_free_at = done;
    if (i > kJobs / 10) {
      total_response += done - clock;
      ++measured;
    }
  }
  const double sim_response = total_response / measured;
  const double analytic = setup_response(lambda, job.moments(), setup.moments());
  EXPECT_NEAR(sim_response, analytic, 0.02 * analytic);
}

TEST(Mmc, ErlangCKnownValues) {
  // M/M/1: P(wait) = rho.
  EXPECT_NEAR(erlang_c(1, 0.3), 0.3, 1e-12);
  // M/M/2 with a = 1: C(2,1) = 1/3.
  EXPECT_NEAR(erlang_c(2, 1.0), 1.0 / 3.0, 1e-12);
}

TEST(Mmc, MM2ResponseClosedForm) {
  // E[T] for M/M/2 = 1/mu * 1/(1 - (rho)^2) with rho = lambda/(2mu)... use
  // the standard identity E[T] = 1/mu + C(2,a)/(2mu - lambda).
  const double lambda = 1.0, mu = 1.0;
  const double c = erlang_c(2, lambda / mu);
  EXPECT_NEAR(mmc_response(2, lambda, mu), 1.0 / mu + c / (2 * mu - lambda), 1e-12);
}

TEST(Mmc, InvalidThrows) {
  EXPECT_THROW((void)erlang_c(0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)erlang_c(2, 2.0), std::domain_error);
  EXPECT_THROW((void)mmc_wait(2, 1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace csq::mg1
