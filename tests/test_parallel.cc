// Work-stealing pool: lifecycle, stealing under contention, facade
// ordering, and exception isolation. This file also builds as the dedicated
// `csq_parallel_tests` binary so a ThreadSanitizer configuration
// (-DCSQ_TSAN=ON) can gate just the concurrency layer via `ctest -L
// parallel`.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/task_pool.h"
#include "parallel/work_stealing_deque.h"

namespace csq::par {
namespace {

TEST(WorkStealingDeque, OwnerPushPopIsLifo) {
  WorkStealingDeque<int*> d(2);  // tiny ring: forces growth
  int items[100];
  for (int i = 0; i < 100; ++i) d.push(&items[i]);
  for (int i = 99; i >= 0; --i) EXPECT_EQ(d.pop(), &items[i]);
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(WorkStealingDeque, ThievesDrainFifoWhileOwnerPops) {
  WorkStealingDeque<std::uint64_t*> d;
  constexpr int kItems = 20000;
  std::vector<std::uint64_t> items(kItems);
  std::atomic<std::uint64_t> taken_sum{0};
  std::atomic<int> taken_count{0};
  for (int i = 0; i < kItems; ++i) {
    items[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(i) + 1;
    d.push(&items[static_cast<std::size_t>(i)]);
  }
  std::vector<std::thread> thieves;
  for (int t = 0; t < 3; ++t)
    thieves.emplace_back([&] {
      while (taken_count.load() < kItems)
        if (std::uint64_t* p = d.steal()) {
          taken_sum.fetch_add(*p);
          taken_count.fetch_add(1);
        }
    });
  while (taken_count.load() < kItems)
    if (std::uint64_t* p = d.pop()) {
      taken_sum.fetch_add(*p);
      taken_count.fetch_add(1);
    }
  for (auto& t : thieves) t.join();
  // Every item taken exactly once: the CAS on top_ admits no duplicates.
  const std::uint64_t want = static_cast<std::uint64_t>(kItems) * (kItems + 1) / 2;
  EXPECT_EQ(taken_sum.load(), want);
}

TEST(MpscChannel, SingleProducerIsFifoAndBoundedByCapacity) {
  MpscChannel<int> ch(3);
  EXPECT_FALSE(ch.maybe_nonempty());
  EXPECT_TRUE(ch.try_push(1));
  EXPECT_TRUE(ch.try_push(2));
  EXPECT_TRUE(ch.try_push(3));
  EXPECT_FALSE(ch.try_push(4)) << "capacity 3 must reject a fourth value";
  EXPECT_TRUE(ch.maybe_nonempty());
  int v = 0;
  EXPECT_TRUE(ch.try_pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ch.try_push(4)) << "pop frees the slot for the next lap";
  EXPECT_TRUE(ch.try_pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(ch.try_pop(v));
  EXPECT_EQ(v, 3);
  EXPECT_TRUE(ch.try_pop(v));
  EXPECT_EQ(v, 4);
  EXPECT_FALSE(ch.try_pop(v));
  EXPECT_FALSE(ch.maybe_nonempty());
}

TEST(MpscChannel, ManyProducersLoseNoValues) {
  // 4 producers x 250 values through a capacity-16 channel; the consumer
  // drains concurrently. Every pushed value must arrive exactly once.
  constexpr int kProducers = 4;
  constexpr int kEach = 250;
  MpscChannel<int> ch(16);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&ch, p] {
      for (int k = 0; k < kEach; ++k) {
        const int value = p * kEach + k;
        while (!ch.try_push(value)) std::this_thread::yield();
      }
    });
  std::vector<int> seen(kProducers * kEach, 0);
  int drained = 0;
  while (drained < kProducers * kEach) {
    int v = -1;
    if (ch.try_pop(v)) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, kProducers * kEach);
      ++seen[static_cast<std::size_t>(v)];
      ++drained;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) t.join();
  for (int count : seen) EXPECT_EQ(count, 1);
  // Per-producer FIFO is the Vyukov guarantee consumers rely on for the
  // mailbox (a victim answers requests in arrival order per requester).
  int v = -1;
  EXPECT_FALSE(ch.try_pop(v));
}

TEST(SpscSlot, RendezvousHoldsExactlyOneValue) {
  SpscSlot<int> slot;
  int v = 0;
  EXPECT_FALSE(slot.try_pop(v)) << "empty slot must decline";
  EXPECT_TRUE(slot.try_push(7));
  EXPECT_FALSE(slot.try_push(8)) << "a second push before the pop must fail";
  EXPECT_TRUE(slot.try_pop(v));
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(slot.try_pop(v));
  EXPECT_TRUE(slot.try_push(9)) << "slot is reusable after a pop";
  EXPECT_TRUE(slot.try_pop(v));
  EXPECT_EQ(v, 9);
}

TEST(TaskPool, StartStopRepeatedly) {
  for (int round = 0; round < 3; ++round)
    for (int threads : {1, 2, 4}) {
      TaskPool pool(threads);
      EXPECT_EQ(pool.threads(), threads);
      std::atomic<int> hits{0};
      pool.parallel_for(100, [&](std::size_t) { hits.fetch_add(1); });
      EXPECT_EQ(hits.load(), 100);
    }
}

TEST(TaskPool, EveryIndexRunsExactlyOnce) {
  TaskPool pool(4);
  constexpr std::size_t kN = 5000;
  std::vector<std::atomic<int>> counts(kN);
  pool.parallel_for(kN, [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(TaskPool, SurvivesConcurrentJobsUnderContention) {
  // Several submitter threads race many jobs with skewed per-index costs
  // through one pool: exercises inject, steal, suspend and wake paths.
  TaskPool pool(4);
  constexpr int kSubmitters = 4;
  constexpr int kJobsEach = 8;
  constexpr std::size_t kN = 400;
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s)
    submitters.emplace_back([&] {
      for (int j = 0; j < kJobsEach; ++j)
        pool.parallel_for(kN, [&](std::size_t i) {
          // Skew: index 0 busy-spins so other workers must steal the rest.
          volatile std::uint64_t sink = 0;
          const std::uint64_t spin = i == 0 ? 20000 : 20;
          for (std::uint64_t k = 0; k < spin; ++k) sink = sink + k;
          total.fetch_add(1);
        });
    });
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(), static_cast<std::uint64_t>(kSubmitters) * kJobsEach * kN);
  const PoolStats stats = pool.stats();
  EXPECT_GT(stats.tasks_executed, 0u);
}

TEST(TaskPool, StatsCountWorkAndSometimesSteals) {
  TaskPool pool(2);
  pool.parallel_for(1000, [](std::size_t) {});
  const PoolStats s = pool.stats();
  EXPECT_GT(s.tasks_executed, 0u);
  // steals is schedule-dependent (may be 0 on a loaded 1-core host); just
  // assert the counter is readable and consistent with execution.
  EXPECT_LE(s.steals, s.tasks_executed);
}

TEST(TaskPool, ChannelProtocolInvariantsHoldUnderSkew) {
  // A skewed workload forces idle workers through the request/reply
  // protocol. Whatever the schedule, every granted batch was preceded by a
  // posted request on the same worker, so steals can never exceed
  // steal_requests; declines are a subset of answered requests. With
  // grain=1 every index is exactly one leaf task, so tasks_executed is the
  // one deterministic channel-pool number: it counts indices, not schedule.
  TaskPool pool(4);
  const PoolStats before = pool.stats();
  constexpr std::size_t kN = 2000;
  std::atomic<std::uint64_t> total{0};
  pool.parallel_for(kN, [&](std::size_t i) {
    volatile std::uint64_t sink = 0;
    const std::uint64_t spin = i % 97 == 0 ? 5000 : 10;
    for (std::uint64_t k = 0; k < spin; ++k) sink = sink + k;
    total.fetch_add(1);
  });
  EXPECT_EQ(total.load(), kN);
  const PoolStats after = pool.stats();
  EXPECT_EQ(after.tasks_executed - before.tasks_executed, kN);
  EXPECT_LE(after.steals, after.steal_requests);
  EXPECT_GE(after.steal_requests, before.steal_requests);
  EXPECT_GE(after.declines, before.declines);
}

TEST(ParallelForFacade, InlineAndPooledAgree) {
  for (int threads : {1, 2, 8}) {
    std::vector<int> out(257, -1);
    parallel_for(out.size(), threads, [&](std::size_t i) { out[i] = static_cast<int>(i) * 3; });
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i) * 3);
  }
}

TEST(ParallelMap, PreservesIndexOrderForEveryThreadCount) {
  const auto square = [](std::size_t i) { return static_cast<double>(i * i); };
  const auto seq = parallel_map(300, 1, square);
  for (int threads : {2, 4, 8}) {
    const auto par = parallel_map(300, threads, square);
    ASSERT_EQ(par.size(), seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i) EXPECT_EQ(par[i], seq[i]) << "i=" << i;
  }
}

TEST(ParallelFor, FirstExceptionPropagatesAfterAllIndicesRan) {
  for (int threads : {1, 4}) {
    std::atomic<int> ran{0};
    try {
      parallel_for(100, threads, [&](std::size_t i) {
        ran.fetch_add(1);
        if (i == 17) throw std::runtime_error("index 17 failed");
      });
      FAIL() << "expected the index-17 exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "index 17 failed");
    }
    // Per-index isolation: the other 99 indices still ran.
    EXPECT_EQ(ran.load(), 100);
  }
}

TEST(ParallelFor, PoolRemainsUsableAfterAnException) {
  TaskPool pool(2);
  EXPECT_THROW(pool.parallel_for(10, [](std::size_t) { throw std::logic_error("boom"); }),
               std::logic_error);
  std::atomic<int> hits{0};
  pool.parallel_for(50, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 50);
}

TEST(ParallelFor, ZeroAndSingleIndexEdgeCases) {
  int hits = 0;
  parallel_for(0, 4, [&](std::size_t) { ++hits; });
  EXPECT_EQ(hits, 0);
  parallel_for(1, 4, [&](std::size_t) { ++hits; });
  EXPECT_EQ(hits, 1);
}

TEST(ThreadsResolution, ZeroMeansHardwareAndNegativeClamps) {
  EXPECT_EQ(resolve_threads(0), hardware_threads());
  EXPECT_EQ(resolve_threads(-5), 1);
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_GE(hardware_threads(), 1);
}

}  // namespace
}  // namespace csq::par
