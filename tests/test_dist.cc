#include <gtest/gtest.h>

#include <cmath>

#include "dist/distribution.h"
#include "dist/phase_type.h"
#include "sim/rng.h"

namespace csq::dist {
namespace {

constexpr int kSamples = 400000;

double sample_mean(const Distribution& d, int n = kSamples) {
  Rng rng = sim::make_rng(42);
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += d.sample(rng);
  return s / n;
}

TEST(Moments, Derived) {
  const Moments m = Moments::exponential(2.0);
  EXPECT_DOUBLE_EQ(m.mean(), 2.0);
  EXPECT_DOUBLE_EQ(m.variance(), 4.0);
  EXPECT_DOUBLE_EQ(m.scv(), 1.0);
}

TEST(PhaseType, ExponentialMoments) {
  const PhaseType d = PhaseType::exponential(4.0);
  EXPECT_TRUE(d.is_exponential());
  EXPECT_DOUBLE_EQ(d.rate(), 4.0);
  EXPECT_NEAR(d.moment(1), 0.25, 1e-12);
  EXPECT_NEAR(d.moment(2), 2.0 * 0.25 * 0.25, 1e-12);
  EXPECT_NEAR(d.moment(3), 6.0 * std::pow(0.25, 3), 1e-12);
}

TEST(PhaseType, ErlangMoments) {
  const PhaseType d = PhaseType::erlang(3, 3.0);  // mean 1, scv 1/3
  EXPECT_NEAR(d.mean(), 1.0, 1e-12);
  EXPECT_NEAR(d.scv(), 1.0 / 3.0, 1e-12);
  // E[X^3] for Erlang(k, mu): k(k+1)(k+2)/mu^3.
  EXPECT_NEAR(d.moment(3), 3.0 * 4.0 * 5.0 / 27.0, 1e-12);
}

TEST(PhaseType, HyperexpMoments) {
  const PhaseType d = PhaseType::hyperexp({0.5, 0.5}, {1.0, 2.0});
  EXPECT_NEAR(d.mean(), 0.5 * 1.0 + 0.5 * 0.5, 1e-12);
  EXPECT_NEAR(d.moment(2), 0.5 * 2.0 + 0.5 * 2.0 * 0.25, 1e-12);
}

TEST(PhaseType, CoxianMoments) {
  // Cox-2: rates (2, 1), continue w.p. 0.5: E[X] = 1/2 + 0.5 * 1 = 1.
  const PhaseType d = PhaseType::coxian({2.0, 1.0}, {0.5});
  EXPECT_NEAR(d.mean(), 1.0, 1e-12);
  // E[X^2] = 2/mu1^2 + 2p/(mu1 mu2) + 2p/mu2^2 = 0.5 + 0.5 + 1 = 2.
  EXPECT_NEAR(d.moment(2), 2.0, 1e-12);
}

TEST(PhaseType, CoxianMeanScv) {
  const PhaseType d = PhaseType::coxian_mean_scv(10.0, 8.0);
  EXPECT_NEAR(d.mean(), 10.0, 1e-10);
  EXPECT_NEAR(d.scv(), 8.0, 1e-10);
  const PhaseType e = PhaseType::coxian_mean_scv(3.0, 1.0);
  EXPECT_TRUE(e.is_exponential());
}

TEST(PhaseType, ScaledPreservesShape) {
  const PhaseType d = PhaseType::coxian_mean_scv(1.0, 8.0);
  const PhaseType s = d.scaled(10.0);
  EXPECT_NEAR(s.mean(), 10.0, 1e-10);
  EXPECT_NEAR(s.scv(), 8.0, 1e-10);
}

TEST(PhaseType, SamplingMatchesMean) {
  const PhaseType d = PhaseType::coxian_mean_scv(2.0, 4.0);
  EXPECT_NEAR(sample_mean(d), 2.0, 0.05);
  const PhaseType e = PhaseType::erlang(4, 2.0);
  EXPECT_NEAR(sample_mean(e), 2.0, 0.02);
}

TEST(PhaseType, InvalidInputsThrow) {
  EXPECT_THROW(PhaseType::exponential(0.0), std::invalid_argument);
  EXPECT_THROW(PhaseType::erlang(0, 1.0), std::invalid_argument);
  EXPECT_THROW(PhaseType::hyperexp({0.7, 0.7}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(PhaseType::coxian({1.0, 1.0}, {1.5}), std::invalid_argument);
  EXPECT_THROW(PhaseType({1.0}, linalg::Matrix{{1.0}}), std::invalid_argument);
  const PhaseType d = PhaseType::exponential(1.0);
  EXPECT_THROW((void)d.moment(4), std::invalid_argument);
}

TEST(Deterministic, MomentsAndSampling) {
  const Deterministic d(3.0);
  EXPECT_DOUBLE_EQ(d.moment(1), 3.0);
  EXPECT_DOUBLE_EQ(d.moment(2), 9.0);
  EXPECT_DOUBLE_EQ(d.moment(3), 27.0);
  Rng rng = sim::make_rng(1);
  EXPECT_DOUBLE_EQ(d.sample(rng), 3.0);
}

TEST(Uniform, Moments) {
  const Uniform d(1.0, 3.0);
  EXPECT_DOUBLE_EQ(d.moment(1), 2.0);
  EXPECT_NEAR(d.moment(2), (27.0 - 1.0) / (3.0 * 2.0), 1e-12);
  EXPECT_NEAR(sample_mean(d, 100000), 2.0, 0.01);
}

TEST(BoundedPareto, MomentsMatchSampling) {
  const BoundedPareto d(1.0, 1000.0, 1.5);
  EXPECT_NEAR(sample_mean(d), d.mean(), 0.05 * d.mean());
}

TEST(BoundedPareto, WithMeanHitsTarget) {
  const BoundedPareto d = BoundedPareto::with_mean(10.0, 1e5, 1.1);
  EXPECT_NEAR(d.mean(), 10.0, 1e-6);
}

TEST(BoundedPareto, AlphaEqualsMomentOrder) {
  // alpha == 2 exercises the logarithmic branch of the moment formula.
  const BoundedPareto d(1.0, 100.0, 2.0);
  const double m2 = d.moment(2);
  // Compare with a slightly perturbed alpha (continuity check).
  const double m2_eps = BoundedPareto(1.0, 100.0, 2.0 + 1e-7).moment(2);
  EXPECT_NEAR(m2, m2_eps, 1e-3 * m2);
}

TEST(LogNormal, MomentsAndSampling) {
  const LogNormal d(2.0, 3.0);
  EXPECT_NEAR(d.mean(), 2.0, 1e-12);
  EXPECT_NEAR(d.scv(), 3.0, 1e-9);
  EXPECT_NEAR(sample_mean(d), 2.0, 0.05);
}

}  // namespace
}  // namespace csq::dist
