#include <gtest/gtest.h>

#include <cmath>

#include "dist/moment_match.h"
#include "transforms/busy_period.h"

namespace csq::dist {
namespace {

void expect_moments(const PhaseType& ph, const Moments& target, double rel = 1e-8,
                    int upto = 3) {
  EXPECT_NEAR(ph.moment(1), target.m1, rel * target.m1);
  if (upto >= 2) {
    EXPECT_NEAR(ph.moment(2), target.m2, rel * target.m2);
  }
  if (upto >= 3) {
    EXPECT_NEAR(ph.moment(3), target.m3, rel * target.m3);
  }
}

TEST(MomentMatch, ExponentialTargetsReturnExponential) {
  const Moments m = Moments::exponential(2.5);
  FitReport rep;
  const PhaseType ph = fit_ph(m, 3, &rep);
  expect_moments(ph, m);
  EXPECT_EQ(rep.moments_matched, 3);
}

TEST(MomentMatch, OneMomentFit) {
  const Moments m{4.0, 100.0, 5000.0};
  FitReport rep;
  const PhaseType ph = fit_ph(m, 1, &rep);
  EXPECT_TRUE(ph.is_exponential());
  EXPECT_NEAR(ph.mean(), 4.0, 1e-12);
  EXPECT_EQ(rep.moments_matched, 1);
}

TEST(MomentMatch, TwoMomentFitHighVariability) {
  const Moments m{1.0, 9.0, 1000.0};  // scv = 8
  FitReport rep;
  const PhaseType ph = fit_ph(m, 2, &rep);
  expect_moments(ph, m, 1e-8, 2);
  EXPECT_EQ(rep.moments_matched, 2);
}

TEST(MomentMatch, ThreeMomentCoxianOnBusyPeriods) {
  // Busy-period moments are the actual production inputs; check the fit
  // reproduces all three moments across a load sweep.
  for (const double rho : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const Moments job = Moments::exponential(1.0);
    const Moments busy = transforms::mg1_busy_period(job, rho);
    FitReport rep;
    const PhaseType ph = fit_ph(busy, 3, &rep);
    EXPECT_EQ(rep.moments_matched, 3) << "rho=" << rho;
    expect_moments(ph, busy, 1e-6);
  }
}

TEST(MomentMatch, ThreeMomentCoxianOnHighVariabilityBusyPeriods) {
  const Moments job{1.0, 9.0, 250.0};  // scv = 8 Coxian-like long jobs
  for (const double lambda : {0.05, 0.5, 0.8}) {
    const Moments busy = transforms::mg1_busy_period(job, lambda);
    FitReport rep;
    const PhaseType ph = fit_ph(busy, 3, &rep);
    EXPECT_EQ(rep.moments_matched, 3) << "lambda=" << lambda;
    expect_moments(ph, busy, 1e-6);
  }
}

TEST(MomentMatch, InfeasibleThirdMomentFallsBack) {
  // n3 below the Coxian-2 feasibility bound: m3 < 1.5 m2^2 / m1.
  const Moments m{1.0, 3.0, 10.0};  // bound is 13.5
  FitReport rep;
  const PhaseType ph = fit_ph(m, 3, &rep);
  EXPECT_TRUE(rep.used_fallback);
  expect_moments(ph, m, 1e-8, 2);  // still matches two moments
}

TEST(MomentMatch, MixedErlangLowVariability) {
  const PhaseType ph = fit_mixed_erlang(2.0, 0.4);
  EXPECT_NEAR(ph.mean(), 2.0, 1e-9);
  EXPECT_NEAR(ph.scv(), 0.4, 1e-9);
  const PhaseType nearly_det = fit_mixed_erlang(1.0, 0.05);
  EXPECT_NEAR(nearly_det.scv(), 0.05, 1e-9);
}

TEST(MomentMatch, LowVariabilityThroughFitPh) {
  const Moments m{1.0, 1.25, 2.0};  // scv = 0.25
  const PhaseType ph = fit_ph(m, 2);
  EXPECT_NEAR(ph.mean(), 1.0, 1e-9);
  EXPECT_NEAR(ph.scv(), 0.25, 1e-9);
}

TEST(MomentMatch, InvalidInputsThrow) {
  EXPECT_THROW(fit_ph({-1.0, 1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(fit_ph({1.0, 2.0, 6.0}, 4), std::invalid_argument);
  EXPECT_THROW(fit_ph({1.0, 0.5, 1.0}), std::invalid_argument);  // m2 < m1^2
  EXPECT_THROW(fit_mixed_erlang(1.0, 2.0), std::invalid_argument);
}

class CoxianFitSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CoxianFitSweep, ReproducesMomentsAcrossScvAndSkew) {
  const auto [scv, n3_factor] = GetParam();
  // Build a target with mean 1, the given scv, and third moment set to
  // n3_factor times the Coxian-2 feasibility lower bound 1.5 m2^2 / m1.
  const double m2 = scv + 1.0;
  const double m3 = n3_factor * 1.5 * m2 * m2;
  const Moments target{1.0, m2, m3};
  FitReport rep;
  const PhaseType ph = fit_ph(target, 3, &rep);
  ASSERT_EQ(rep.moments_matched, 3);
  expect_moments(ph, target, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CoxianFitSweep,
    ::testing::Combine(::testing::Values(1.5, 2.0, 4.0, 8.0, 16.0, 64.0),
                       ::testing::Values(1.05, 1.5, 3.0, 10.0)));

}  // namespace
}  // namespace csq::dist
