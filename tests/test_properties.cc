// Metamorphic / property tests for the exact analysis, cross-checked
// against the simulator and the obs counters.
//
// Unlike the golden pins (tests/test_golden_figures.cc), nothing here is a
// committed number: each test asserts a *relation* the paper proves or the
// architecture guarantees — cycle stealing cannot hurt the short class,
// response times are monotone in offered load, analysis and simulation
// agree within simulation noise, and the obs counters attached to every
// result actually reflect the work performed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cscq.h"
#include "analysis/csid.h"
#include "analysis/dedicated.h"
#include "core/config.h"
#include "obs/obs.h"
#include "sim/simulator.h"

namespace {

using namespace csq;

// --- Dominance: shorts can only gain from cycle stealing --------------------

// Paper, Section 1: "the short jobs benefit immensely ... while the long
// jobs are only slightly penalized." The benefit direction is a theorem:
// under CS-CQ the shorts get a second (partial) server, so their mean
// response can never exceed Dedicated's at the same loads.
TEST(Properties, CscqShortsNeverWorseThanDedicated) {
  for (const double rho_l : {0.3, 0.5}) {
    for (const double rho_s : {0.3, 0.6, 0.9}) {
      SCOPED_TRACE("rho_s=" + std::to_string(rho_s) + " rho_l=" + std::to_string(rho_l));
      const SystemConfig c = SystemConfig::paper_setup(rho_s, rho_l, 1.0, 10.0, 1.0);
      const double cscq = analysis::analyze_cscq(c).metrics.shorts.mean_response;
      const double ded = analysis::analyze_dedicated(c).shorts.mean_response;
      EXPECT_LE(cscq, ded * (1.0 + 1e-9));
    }
  }
}

// CS-CQ also dominates CS-ID for shorts (the central queue lets a short
// grab the long host even when a long is merely queued, not in service).
TEST(Properties, CscqShortsNeverWorseThanCsid) {
  for (const double rho_s : {0.5, 0.9, 1.2}) {
    SCOPED_TRACE("rho_s=" + std::to_string(rho_s));
    const SystemConfig c = SystemConfig::paper_setup(rho_s, 0.5, 1.0, 10.0, 1.0);
    const double cscq = analysis::analyze_cscq(c).metrics.shorts.mean_response;
    const double csid = analysis::analyze_csid(c).metrics.shorts.mean_response;
    EXPECT_LE(cscq, csid * (1.0 + 1e-9));
  }
}

// --- Monotonicity in offered load -------------------------------------------

TEST(Properties, CscqResponsesMonotoneInRhoS) {
  double prev_short = 0.0;
  double prev_long = 0.0;
  for (const double rho_s : {0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4}) {
    SCOPED_TRACE("rho_s=" + std::to_string(rho_s));
    const SystemConfig c = SystemConfig::paper_setup(rho_s, 0.5, 1.0, 10.0, 1.0);
    const PolicyMetrics m = analysis::analyze_cscq(c).metrics;
    // Short response strictly grows with short load; the long penalty grows
    // too (more stolen cycles to hand back), though far more slowly.
    EXPECT_GT(m.shorts.mean_response, prev_short);
    EXPECT_GE(m.longs.mean_response, prev_long);
    prev_short = m.shorts.mean_response;
    prev_long = m.longs.mean_response;
  }
}

TEST(Properties, CscqShortResponseMonotoneInRhoL) {
  // More long-job load means fewer stealable cycles: shorts slow down.
  double prev = 0.0;
  for (const double rho_l : {0.1, 0.3, 0.5, 0.7}) {
    SCOPED_TRACE("rho_l=" + std::to_string(rho_l));
    const SystemConfig c = SystemConfig::paper_setup(0.9, rho_l, 1.0, 10.0, 1.0);
    const double t = analysis::analyze_cscq(c).metrics.shorts.mean_response;
    EXPECT_GT(t, prev);
    prev = t;
  }
}

// --- Analysis vs simulation --------------------------------------------------

struct AgreementConfig {
  double rho_s, rho_l, mean_l, scv_l;
};

class AnalysisSimAgreement : public ::testing::TestWithParam<AgreementConfig> {};

TEST_P(AnalysisSimAgreement, MeansAgreeWithinSimNoise) {
  const AgreementConfig& g = GetParam();
  const SystemConfig c = SystemConfig::paper_setup(g.rho_s, g.rho_l, 1.0, g.mean_l, g.scv_l);
  const PolicyMetrics m = analysis::analyze_cscq(c).metrics;

  const obs::DeltaScope obs_scope;
  sim::SimOptions sopts;
  sopts.total_completions = 200000;
  sim::ReplicationOptions ropts;
  ropts.replications = 4;
  const sim::ReplicatedResult s = sim::simulate_replications(sim::PolicyKind::kCsCq, c, sopts, ropts);

  EXPECT_NEAR(m.shorts.mean_response, s.shorts.mean_response,
              0.05 * s.shorts.mean_response + 2.0 * s.shorts.ci95);
  EXPECT_NEAR(m.longs.mean_response, s.longs.mean_response,
              0.05 * s.longs.mean_response + 2.0 * s.longs.ci95);

  // The replication loop is instrumented: one round of exactly
  // `replications` runs, each contributing at least total_completions
  // arrival+completion events.
  const obs::MetricsDelta d = obs_scope.delta();
  if (obs::compiled_in()) {
    EXPECT_EQ(d.value("sim.reps.rounds"), 1);
    EXPECT_EQ(d.value("sim.reps.total"), ropts.replications);
    EXPECT_GT(d.value("sim.engine.events"),
              static_cast<std::int64_t>(ropts.replications * sopts.total_completions));
  } else {
    EXPECT_TRUE(d.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(ThreeConfigs, AnalysisSimAgreement,
                         ::testing::Values(AgreementConfig{0.9, 0.5, 1.0, 1.0},
                                           AgreementConfig{0.9, 0.5, 10.0, 1.0},
                                           AgreementConfig{1.1, 0.5, 10.0, 8.0}),
                         [](const ::testing::TestParamInfo<AgreementConfig>& info) {
                           return "Config" + std::to_string(info.index);
                         });

// --- Results carry their own obs attribution ---------------------------------

TEST(Properties, AnalysisResultsCarryObsMetrics) {
  const SystemConfig c = SystemConfig::paper_setup(0.9, 0.5, 1.0, 10.0, 1.0);
  const analysis::CscqResult cq = analysis::analyze_cscq(c);
  const analysis::CsidResult id = analysis::analyze_csid(c);
  if (!obs::compiled_in()) {
    EXPECT_TRUE(cq.obs_metrics.empty());
    EXPECT_TRUE(id.obs_metrics.empty());
    return;
  }
  // Each exact analysis runs exactly one QBD solve and reports it.
  EXPECT_EQ(cq.obs_metrics.value("qbd.solve.calls"), 1);
  EXPECT_EQ(id.obs_metrics.value("qbd.solve.calls"), 1);
  EXPECT_GT(cq.obs_metrics.value("qbd.fi.iterations") +
                cq.obs_metrics.value("qbd.relaxed.iterations") +
                cq.obs_metrics.value("qbd.logred.doublings"),
            0);
}

}  // namespace
