// Metamorphic / property tests for the exact analysis, cross-checked
// against the simulator and the obs counters.
//
// Unlike the golden pins (tests/test_golden_figures.cc), nothing here is a
// committed number: each test asserts a *relation* the paper proves or the
// architecture guarantees — cycle stealing cannot hurt the short class,
// response times are monotone in offered load, analysis and simulation
// agree within simulation noise, and the obs counters attached to every
// result actually reflect the work performed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cscq.h"
#include "analysis/csid.h"
#include "analysis/dedicated.h"
#include "core/config.h"
#include "core/sweep.h"
#include "obs/obs.h"
#include "sim/simulator.h"

namespace {

using namespace csq;

// --- Dominance: shorts can only gain from cycle stealing --------------------

// Paper, Section 1: "the short jobs benefit immensely ... while the long
// jobs are only slightly penalized." The benefit direction is a theorem:
// under CS-CQ the shorts get a second (partial) server, so their mean
// response can never exceed Dedicated's at the same loads.
TEST(Properties, CscqShortsNeverWorseThanDedicated) {
  for (const double rho_l : {0.3, 0.5}) {
    for (const double rho_s : {0.3, 0.6, 0.9}) {
      SCOPED_TRACE("rho_s=" + std::to_string(rho_s) + " rho_l=" + std::to_string(rho_l));
      const SystemConfig c = SystemConfig::paper_setup(rho_s, rho_l, 1.0, 10.0, 1.0);
      const double cscq = analysis::analyze_cscq(c).metrics.shorts.mean_response;
      const double ded = analysis::analyze_dedicated(c).shorts.mean_response;
      EXPECT_LE(cscq, ded * (1.0 + 1e-9));
    }
  }
}

// CS-CQ also dominates CS-ID for shorts (the central queue lets a short
// grab the long host even when a long is merely queued, not in service).
TEST(Properties, CscqShortsNeverWorseThanCsid) {
  for (const double rho_s : {0.5, 0.9, 1.2}) {
    SCOPED_TRACE("rho_s=" + std::to_string(rho_s));
    const SystemConfig c = SystemConfig::paper_setup(rho_s, 0.5, 1.0, 10.0, 1.0);
    const double cscq = analysis::analyze_cscq(c).metrics.shorts.mean_response;
    const double csid = analysis::analyze_csid(c).metrics.shorts.mean_response;
    EXPECT_LE(cscq, csid * (1.0 + 1e-9));
  }
}

// --- Monotonicity in offered load -------------------------------------------

TEST(Properties, CscqResponsesMonotoneInRhoS) {
  double prev_short = 0.0;
  double prev_long = 0.0;
  for (const double rho_s : {0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4}) {
    SCOPED_TRACE("rho_s=" + std::to_string(rho_s));
    const SystemConfig c = SystemConfig::paper_setup(rho_s, 0.5, 1.0, 10.0, 1.0);
    const PolicyMetrics m = analysis::analyze_cscq(c).metrics;
    // Short response strictly grows with short load; the long penalty grows
    // too (more stolen cycles to hand back), though far more slowly.
    EXPECT_GT(m.shorts.mean_response, prev_short);
    EXPECT_GE(m.longs.mean_response, prev_long);
    prev_short = m.shorts.mean_response;
    prev_long = m.longs.mean_response;
  }
}

TEST(Properties, CscqShortResponseMonotoneInRhoL) {
  // More long-job load means fewer stealable cycles: shorts slow down.
  double prev = 0.0;
  for (const double rho_l : {0.1, 0.3, 0.5, 0.7}) {
    SCOPED_TRACE("rho_l=" + std::to_string(rho_l));
    const SystemConfig c = SystemConfig::paper_setup(0.9, rho_l, 1.0, 10.0, 1.0);
    const double t = analysis::analyze_cscq(c).metrics.shorts.mean_response;
    EXPECT_GT(t, prev);
    prev = t;
  }
}

// --- Analysis vs simulation --------------------------------------------------

struct AgreementConfig {
  double rho_s, rho_l, mean_l, scv_l;
};

class AnalysisSimAgreement : public ::testing::TestWithParam<AgreementConfig> {};

TEST_P(AnalysisSimAgreement, MeansAgreeWithinSimNoise) {
  const AgreementConfig& g = GetParam();
  const SystemConfig c = SystemConfig::paper_setup(g.rho_s, g.rho_l, 1.0, g.mean_l, g.scv_l);
  const PolicyMetrics m = analysis::analyze_cscq(c).metrics;

  const obs::DeltaScope obs_scope;
  sim::SimOptions sopts;
  sopts.total_completions = 200000;
  sim::ReplicationOptions ropts;
  ropts.replications = 4;
  const sim::ReplicatedResult s = sim::simulate_replications(sim::PolicyKind::kCsCq, c, sopts, ropts);

  EXPECT_NEAR(m.shorts.mean_response, s.shorts.mean_response,
              0.05 * s.shorts.mean_response + 2.0 * s.shorts.ci95);
  EXPECT_NEAR(m.longs.mean_response, s.longs.mean_response,
              0.05 * s.longs.mean_response + 2.0 * s.longs.ci95);

  // The replication loop is instrumented: one round of exactly
  // `replications` runs, each contributing at least total_completions
  // arrival+completion events.
  const obs::MetricsDelta d = obs_scope.delta();
  if (obs::compiled_in()) {
    EXPECT_EQ(d.value("sim.reps.rounds"), 1);
    EXPECT_EQ(d.value("sim.reps.total"), ropts.replications);
    EXPECT_GT(d.value("sim.engine.events"),
              static_cast<std::int64_t>(ropts.replications * sopts.total_completions));
  } else {
    EXPECT_TRUE(d.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(ThreeConfigs, AnalysisSimAgreement,
                         ::testing::Values(AgreementConfig{0.9, 0.5, 1.0, 1.0},
                                           AgreementConfig{0.9, 0.5, 10.0, 1.0},
                                           AgreementConfig{1.1, 0.5, 10.0, 8.0}),
                         [](const ::testing::TestParamInfo<AgreementConfig>& info) {
                           return "Config" + std::to_string(info.index);
                         });

// --- Policy-zoo dominance properties (`ctest -L properties`) -----------------
//
// Relations among the PR-10 zoo policies (docs/policies.md), asserted on
// pinned-seed simulations: each claim was measured well outside the 95% CI
// at these operating points before being pinned, and the runs are
// bit-deterministic, so the assertions are stable, not flaky.

// Symmetric unit-mean workload at load `rho` per host, long sizes drawn
// from `family` (the zoo policies are class-blind, so "short"/"long" are
// just two identical Poisson streams here except under kBPareto).
sim::ReplicatedResult run_zoo(sim::PolicyKind kind, double rho,
                              JobSizeDist family = JobSizeDist::kExp) {
  const SystemConfig cfg = family == JobSizeDist::kExp
                               ? SystemConfig::paper_setup(rho, rho, 1.0, 1.0, 1.0)
                               : panel_workload(family, rho, rho, 1.0, 1.0, 1.0);
  sim::SimOptions o;
  o.total_completions = 120000;
  sim::ReplicationOptions r;
  r.replications = 4;
  return sim::simulate_replications(kind, cfg, o, r);
}

// Overall mean response over both classes (the zoo policies are
// class-blind, so the natural comparison metric is the pooled mean).
double pooled_mean(const sim::ReplicatedResult& r) {
  return 0.5 * (r.shorts.mean_response + r.longs.mean_response);
}

double pooled_ci(const sim::ReplicatedResult& r) {
  return 0.5 * (r.shorts.ci95 + r.longs.ci95);
}

// JIQ dispatches to a server it *knows* is idle; random dispatch can queue
// behind a busy server while the other sits empty. Mitzenmacher/Lu's JIQ
// dominance, at symmetric moderate load.
TEST(PolicyProperties, JiqNeverWorseThanRandom) {
  const sim::ReplicatedResult jiq = run_zoo(sim::PolicyKind::kJiq, 0.7);
  const sim::ReplicatedResult random = run_zoo(sim::PolicyKind::kRandom, 0.7);
  EXPECT_LT(pooled_mean(jiq), pooled_mean(random));
  // The gap is structural, not noise: it exceeds both CI half-widths.
  EXPECT_GT(pooled_mean(random) - pooled_mean(jiq), pooled_ci(jiq) + pooled_ci(random));
}

// With two hosts an idle thief can always steal again, so batch size only
// changes migration timing: steal-half is never worse than steal-one under
// symmetric load (they are near-equal; the assertion allows CI noise in
// the <= direction but pins that steal-half gained nothing to lose).
TEST(PolicyProperties, StealHalfNoWorseThanStealOneSymmetric) {
  const sim::ReplicatedResult half = run_zoo(sim::PolicyKind::kStealHalf, 0.7);
  const sim::ReplicatedResult one = run_zoo(sim::PolicyKind::kStealOne, 0.7);
  EXPECT_LE(pooled_mean(half), pooled_mean(one) + pooled_ci(half) + pooled_ci(one));
}

// Both stealing flavours beat plain random dispatch outright: moving work
// to an idle server only helps.
TEST(PolicyProperties, StealingBeatsRandomDispatch) {
  const sim::ReplicatedResult random = run_zoo(sim::PolicyKind::kRandom, 0.7);
  for (const sim::PolicyKind k : {sim::PolicyKind::kStealOne, sim::PolicyKind::kStealHalf}) {
    SCOPED_TRACE(sim::policy_name(k));
    const sim::ReplicatedResult steal = run_zoo(k, 0.7);
    EXPECT_LT(pooled_mean(steal), pooled_mean(random));
  }
}

// The sharing-vs-stealing crossover, in the frame of Van Houdt's comparison
// (arXiv:1810.13186): under exponential sizes, push-based sharing wins at
// low load (a pushed job rarely lands behind much work) and pull-based
// stealing wins at high load (migration timed to an actually-idle server).
// Under BoundedPareto the picture changes: a pushed job can land behind a
// heavy-tailed monster, so sharing loses its low-load advantage and
// stealing dominates at *every* tested load — the crossover point moves
// off the load axis entirely.
TEST(PolicyProperties, SharingVsStealingCrossoverUnderHeavyTails) {
  // Exponential, low load: sharing < stealing.
  {
    const sim::ReplicatedResult share = run_zoo(sim::PolicyKind::kWorkSharing, 0.3);
    const sim::ReplicatedResult steal = run_zoo(sim::PolicyKind::kStealOne, 0.3);
    EXPECT_LT(pooled_mean(share), pooled_mean(steal));
  }
  // Exponential, high load: stealing < sharing.
  {
    const sim::ReplicatedResult share = run_zoo(sim::PolicyKind::kWorkSharing, 0.9);
    const sim::ReplicatedResult steal = run_zoo(sim::PolicyKind::kStealOne, 0.9);
    EXPECT_LT(pooled_mean(steal), pooled_mean(share));
  }
  // BoundedPareto, low load: the sharing advantage is gone — stealing wins
  // even where sharing won under exponential sizes.
  {
    const sim::ReplicatedResult share =
        run_zoo(sim::PolicyKind::kWorkSharing, 0.3, JobSizeDist::kBPareto);
    const sim::ReplicatedResult steal =
        run_zoo(sim::PolicyKind::kStealOne, 0.3, JobSizeDist::kBPareto);
    EXPECT_LT(pooled_mean(steal), pooled_mean(share));
  }
}

// --- Analysis-vs-simulation cross-checks for every analytic policy -----------
//
// CS-CQ is covered by AnalysisSimAgreement above; these close the registry:
// every policy_registry() row with analytic == true has its exact analysis
// checked against replicated simulation at >= 3 operating points, with the
// same 5% + 2 CI tolerance.

struct CrossCheckPoint {
  double rho_s, rho_l, mean_l, scv_l;
};

class AnalyticPolicyCrossCheck : public ::testing::TestWithParam<CrossCheckPoint> {
 protected:
  static sim::ReplicatedResult simulate_policy(sim::PolicyKind kind,
                                               const SystemConfig& c) {
    sim::SimOptions sopts;
    sopts.total_completions = 200000;
    sim::ReplicationOptions ropts;
    ropts.replications = 4;
    return sim::simulate_replications(kind, c, sopts, ropts);
  }
};

TEST_P(AnalyticPolicyCrossCheck, CsidMatchesSimulation) {
  const CrossCheckPoint& g = GetParam();
  const SystemConfig c = SystemConfig::paper_setup(g.rho_s, g.rho_l, 1.0, g.mean_l, g.scv_l);
  const PolicyMetrics m = analysis::analyze_csid(c).metrics;
  const sim::ReplicatedResult s = simulate_policy(sim::PolicyKind::kCsId, c);
  EXPECT_NEAR(m.shorts.mean_response, s.shorts.mean_response,
              0.05 * s.shorts.mean_response + 2.0 * s.shorts.ci95);
  EXPECT_NEAR(m.longs.mean_response, s.longs.mean_response,
              0.05 * s.longs.mean_response + 2.0 * s.longs.ci95);
}

TEST_P(AnalyticPolicyCrossCheck, DedicatedMatchesSimulation) {
  const CrossCheckPoint& g = GetParam();
  const SystemConfig c = SystemConfig::paper_setup(g.rho_s, g.rho_l, 1.0, g.mean_l, g.scv_l);
  const PolicyMetrics m = analysis::analyze_dedicated(c);
  const sim::ReplicatedResult s = simulate_policy(sim::PolicyKind::kDedicated, c);
  EXPECT_NEAR(m.shorts.mean_response, s.shorts.mean_response,
              0.05 * s.shorts.mean_response + 2.0 * s.shorts.ci95);
  EXPECT_NEAR(m.longs.mean_response, s.longs.mean_response,
              0.05 * s.longs.mean_response + 2.0 * s.longs.ci95);
}

INSTANTIATE_TEST_SUITE_P(ThreePoints, AnalyticPolicyCrossCheck,
                         ::testing::Values(CrossCheckPoint{0.5, 0.3, 1.0, 1.0},
                                           CrossCheckPoint{0.8, 0.5, 10.0, 1.0},
                                           CrossCheckPoint{0.9, 0.7, 10.0, 4.0}),
                         [](const ::testing::TestParamInfo<CrossCheckPoint>& info) {
                           return "Point" + std::to_string(info.index);
                         });

// --- Results carry their own obs attribution ---------------------------------

TEST(Properties, AnalysisResultsCarryObsMetrics) {
  const SystemConfig c = SystemConfig::paper_setup(0.9, 0.5, 1.0, 10.0, 1.0);
  const analysis::CscqResult cq = analysis::analyze_cscq(c);
  const analysis::CsidResult id = analysis::analyze_csid(c);
  if (!obs::compiled_in()) {
    EXPECT_TRUE(cq.obs_metrics.empty());
    EXPECT_TRUE(id.obs_metrics.empty());
    return;
  }
  // Each exact analysis runs exactly one QBD solve and reports it.
  EXPECT_EQ(cq.obs_metrics.value("qbd.solve.calls"), 1);
  EXPECT_EQ(id.obs_metrics.value("qbd.solve.calls"), 1);
  EXPECT_GT(cq.obs_metrics.value("qbd.fi.iterations") +
                cq.obs_metrics.value("qbd.relaxed.iterations") +
                cq.obs_metrics.value("qbd.logred.doublings"),
            0);
}

}  // namespace
