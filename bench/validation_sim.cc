// Section 4, "validation against simulation": analysis vs discrete-event
// simulation over a grid of loads, size ratios and long-job variability.
// The paper reports differences "under 2% in almost all cases, never over
// 5%, and such differences occurred rarely and only at very high load".
#include <algorithm>
#include <cmath>
#include <iostream>

#include "analysis/cscq.h"
#include "analysis/stability.h"
#include "analysis/csid.h"
#include "core/table.h"
#include "sim/simulator.h"

int main() {
  using namespace csq;
  std::cout << "=== Validation of the analysis against simulation ===\n"
            << "(paper: <2% typical, <=5% worst case at very high load)\n\n";

  struct Case {
    double rho_s, rho_l, mean_s, mean_l, scv_l;
  };
  const Case cases[] = {
      {0.5, 0.5, 1.0, 1.0, 1.0},  {0.9, 0.5, 1.0, 1.0, 1.0},  {1.2, 0.5, 1.0, 1.0, 1.0},
      {0.9, 0.3, 1.0, 10.0, 1.0}, {0.9, 0.7, 10.0, 1.0, 1.0}, {0.5, 0.5, 1.0, 1.0, 8.0},
      {1.2, 0.5, 1.0, 1.0, 8.0},  {0.9, 0.5, 1.0, 10.0, 8.0}, {1.4, 0.3, 1.0, 1.0, 8.0},
  };

  sim::SimOptions sopts;
  sopts.total_completions = 2000000;

  double worst = 0.0;
  for (const auto policy : {sim::PolicyKind::kCsCq, sim::PolicyKind::kCsId}) {
    std::cout << "-- " << sim::policy_name(policy) << " --\n";
    Table t({"rho_S", "rho_L", "mean_S", "mean_L", "C2_L", "analysis E[T_S]", "sim E[T_S]",
             "err_S%", "analysis E[T_L]", "sim E[T_L]", "err_L%"});
    for (const Case& c : cases) {
      const SystemConfig cfg =
          SystemConfig::paper_setup(c.rho_s, c.rho_l, c.mean_s, c.mean_l, c.scv_l);
      PolicyMetrics m;
      if (policy == sim::PolicyKind::kCsCq) {
        if (!analysis::cscq_stable(c.rho_s, c.rho_l)) continue;
        m = analysis::analyze_cscq(cfg).metrics;
      } else {
        if (!analysis::csid_stable(c.rho_s, c.rho_l)) continue;
        m = analysis::analyze_csid(cfg).metrics;
      }
      const sim::SimResult s = sim::simulate(policy, cfg, sopts);
      const double err_s =
          100.0 * std::abs(m.shorts.mean_response - s.shorts.mean_response) /
          s.shorts.mean_response;
      const double err_l =
          100.0 * std::abs(m.longs.mean_response - s.longs.mean_response) /
          s.longs.mean_response;
      worst = std::max({worst, err_s, err_l});
      t.add_row({c.rho_s, c.rho_l, c.mean_s, c.mean_l, c.scv_l, m.shorts.mean_response,
                 s.shorts.mean_response, err_s, m.longs.mean_response, s.longs.mean_response,
                 err_l});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "worst analysis-vs-simulation deviation: " << worst << "%\n";
  return 0;
}
