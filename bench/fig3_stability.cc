// Figure 3: stability constraint on rho_S as a function of rho_L for
// Dedicated, CS-ID (immediate dispatch) and CS-CQ (central queue).
//
// Paper checkpoints: at rho_L -> 0 the CS-ID frontier approaches the golden
// ratio (~1.618, "about 1.6" in the paper) and CS-CQ approaches 2; Dedicated
// is flat at 1.
#include <cmath>
#include <iostream>

#include "analysis/stability.h"
#include "core/table.h"

int main() {
  using namespace csq;
  std::cout << "=== Figure 3: stability frontier rho_S*(rho_L) ===\n\n";
  Table table({"rho_L", "Dedicated", "CS-ID", "CS-CQ"});
  for (double rho_l = 0.0; rho_l < 0.999; rho_l += 0.05) {
    table.add_row({rho_l, analysis::dedicated_max_rho_short(rho_l),
                   analysis::csid_max_rho_short(rho_l),
                   analysis::cscq_max_rho_short(rho_l)});
  }
  table.print(std::cout);

  std::cout << "\nCheckpoints vs paper:\n";
  std::cout << "  CS-ID frontier at rho_L=0: " << analysis::csid_max_rho_short(0.0)
            << "  (paper: ~1.6, golden ratio " << (1.0 + std::sqrt(5.0)) / 2.0 << ")\n";
  std::cout << "  CS-CQ frontier at rho_L=0: " << analysis::cscq_max_rho_short(0.0)
            << "  (paper: close to 2)\n";
  std::cout << "  CS-ID frontier at rho_L=0.5: " << analysis::csid_max_rho_short(0.5)
            << "  (Figure 4's operating point)\n";
  return 0;
}
