// Extension bench: cycle stealing beyond two hosts (the sizes in the
// paper's Table 1 installations). Simulation study: how much does each
// additional donor host buy an overloaded short partition, and does the
// CS-CQ > CS-ID > Dedicated ordering survive at scale?
#include <iostream>

#include "core/table.h"
#include "msim/multi_sim.h"

int main() {
  using namespace csq;
  sim::SimOptions opts;
  opts.total_completions = 1000000;

  std::cout << "=== Donor scaling: 1 short host at rho_S = 1.3, donors at rho_L = 0.5 each ===\n\n";
  {
    Table t({"donor hosts", "CS-ID E[T_S]", "CS-CQ E[T_S]", "CS-CQ E[T_L]"});
    for (int m = 1; m <= 4; ++m) {
      msim::MultiConfig c;
      c.short_hosts = 1;
      c.long_hosts = m;
      c.workload = SystemConfig::paper_setup(1.3, 0.5 * m, 1.0, 1.0);
      const auto id = msim::simulate_multi(msim::MultiPolicy::kCsId, c, opts);
      const auto cq = msim::simulate_multi(msim::MultiPolicy::kCsCq, c, opts);
      t.add_row({static_cast<double>(m), id.shorts.mean_response, cq.shorts.mean_response,
                 cq.longs.mean_response});
    }
    t.print(std::cout);
  }

  std::cout << "\n=== 4-host cluster (2 short + 2 long hosts), shorts 1 / longs 10 (C^2=8) ===\n\n";
  {
    Table t({"rho_S total", "Dedicated E[T_S]", "CS-ID E[T_S]", "CS-CQ E[T_S]",
             "Dedicated E[T_L]", "CS-CQ E[T_L]"});
    for (const double rho_s : {1.0, 1.6, 2.2, 2.8}) {
      msim::MultiConfig c;
      c.short_hosts = 2;
      c.long_hosts = 2;
      c.workload = SystemConfig::paper_setup(rho_s, 1.0, 1.0, 10.0, 8.0);
      const bool ded_ok = rho_s < 2.0;
      double ded_s = std::numeric_limits<double>::quiet_NaN();
      double ded_l = std::numeric_limits<double>::quiet_NaN();
      if (ded_ok) {
        const auto ded = msim::simulate_multi(msim::MultiPolicy::kDedicated, c, opts);
        ded_s = ded.shorts.mean_response;
        ded_l = ded.longs.mean_response;
      }
      const auto id = msim::simulate_multi(msim::MultiPolicy::kCsId, c, opts);
      const auto cq = msim::simulate_multi(msim::MultiPolicy::kCsCq, c, opts);
      t.add_row({rho_s, ded_s, id.shorts.mean_response, cq.shorts.mean_response, ded_l,
                 cq.longs.mean_response});
    }
    t.print(std::cout);
  }
  std::cout << "\nReading: each extra donor extends the stable region for shorts (total\n"
               "capacity 1 + m - rho_L_total) and the central queue keeps dominating\n"
               "immediate dispatch; long jobs still pay at most a residual short\n"
               "service per long-busy-cycle per donor.\n";
  return 0;
}
