// Figure 5: same sweep as Figure 4 but long jobs drawn from a Coxian with
// squared coefficient of variation C^2 = 8 (higher variability).
//
// Paper checkpoints: shorts' benefit barely changes vs Figure 4; longs'
// absolute response grows (panel (a) Dedicated flat at 5.5 = 1 + PK term)
// while the *percentage* penalty shrinks — < 10% for CS-ID and < 5% for
// CS-CQ in panel (a), < 3% in panel (b) even at the stability edge.
#include <iostream>

#include "fig_common.h"

int main() {
  using namespace csq;
  const double rho_l = 0.5;
  const double scv_long = 8.0;
  std::cout << "=== Figure 5: longs ~ Coxian (C^2 = 8), rho_L = " << rho_l << " ===\n\n";

  const std::vector<double> grid = fig_grid_rho_short();
  for (const auto& p : bench::panels()) {
    const auto rows = sweep_rho_short(rho_l, p.mean_short, p.mean_long, scv_long, grid);
    bench::print_sweep(std::string("-- E[T] short jobs, ") + p.label, "rho_S", rows, true);
    bench::print_sweep(std::string("-- E[T] long jobs,  ") + p.label, "rho_S", rows, false);
  }
  return 0;
}
