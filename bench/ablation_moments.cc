// Ablation on the paper's central design choice: how many busy-period
// moments the phase-type transitions match. The paper matches three and
// claims this "provides sufficient accuracy"; we quantify 1 vs 2 vs 3
// moments against the exact (truncated, exponential/exponential) 2-D chain,
// and also show the truncation error the paper warns about.
#include <cmath>
#include <iostream>

#include "analysis/cscq.h"
#include "analysis/stability.h"
#include "analysis/truncated_cscq.h"
#include "core/table.h"

int main() {
  using namespace csq;
  std::cout << "=== Ablation: busy-period moments matched (exp/exp, exact oracle) ===\n\n";

  {
    Table t({"rho_S", "rho_L", "exact E[T_S]", "1-moment err%", "2-moment err%",
             "3-moment err%"});
    for (const double rho_l : {0.3, 0.5}) {
      for (const double rho_s : {0.5, 0.9, 1.2}) {
        if (!analysis::cscq_stable(rho_s, rho_l)) continue;
        const SystemConfig cfg = SystemConfig::paper_setup(rho_s, rho_l, 1.0, 1.0);
        analysis::TruncatedCscqOptions topts;
        topts.max_shorts = 150;
        topts.max_longs = 150;
        const double exact =
            analysis::analyze_cscq_truncated(cfg, topts).metrics.shorts.mean_response;
        std::vector<double> row{rho_s, rho_l, exact};
        for (int k = 1; k <= 3; ++k) {
          analysis::CscqOptions o;
          o.busy_period_moments = k;
          const double v = analysis::analyze_cscq(cfg, o).metrics.shorts.mean_response;
          row.push_back(100.0 * std::abs(v - exact) / exact);
        }
        t.add_row(row);
      }
    }
    t.print(std::cout);
  }

  std::cout << "\n=== Truncation error of the 2-D chain (the approach the paper rejects) ===\n"
            << "rho_S = 1.2, rho_L = 0.5 (high traffic; mass pushed to the caps)\n\n";
  {
    const SystemConfig cfg = SystemConfig::paper_setup(1.2, 0.5, 1.0, 1.0);
    Table t({"cap", "E[T_S]", "mass at short cap", "mass at long cap"});
    for (const int cap : {10, 20, 40, 80, 160}) {
      analysis::TruncatedCscqOptions topts;
      topts.max_shorts = cap;
      topts.max_longs = cap;
      const auto r = analysis::analyze_cscq_truncated(cfg, topts);
      t.add_row({static_cast<double>(cap), r.metrics.shorts.mean_response,
                 r.mass_at_short_cap, r.mass_at_long_cap});
    }
    t.print(std::cout);
    std::cout << "\n(The QBD analysis needs no truncation: the geometric tail is exact.)\n";
  }
  return 0;
}
