// Figure 4: mean response time vs rho_S at rho_L = 0.5, exponential short
// and long sizes; three size-ratio panels; top row = short jobs (benefit),
// bottom row = long jobs (penalty).
//
// Paper checkpoints for panel (a):
//   shorts at rho_S -> 1:    Dedicated -> inf, CS-ID ~ 4, CS-CQ ~ 3;
//   shorts at rho_S -> 1.28: CS-ID -> inf (its frontier), CS-CQ ~ 7;
//   longs: Dedicated flat at 2; CS-CQ penalty <= ~10%, CS-ID <= ~25%.
// Panel (b) longs: flat at 20; penalties ~1% (CS-CQ) / ~2.5% (CS-ID).
#include <iostream>

#include "fig_common.h"

int main() {
  using namespace csq;
  const double rho_l = 0.5;
  const double scv_long = 1.0;  // exponential
  std::cout << "=== Figure 4: exponential shorts and longs, rho_L = " << rho_l << " ===\n\n";

  const std::vector<double> grid = fig_grid_rho_short();
  for (const auto& p : bench::panels()) {
    const auto rows = sweep_rho_short(rho_l, p.mean_short, p.mean_long, scv_long, grid);
    bench::print_sweep(std::string("-- E[T] short jobs, ") + p.label, "rho_S", rows, true);
    bench::print_sweep(std::string("-- E[T] long jobs,  ") + p.label, "rho_S", rows, false);
  }
  return 0;
}
