// Extension bench: what if job sizes are UNKNOWN? The paper's related-work
// section points to TAGS (Task Assignment by Guessing Size) as the
// segregation policy for that regime. Compare, on the same workload:
// class-aware policies (Dedicated, CS-CQ) vs class-blind ones (central
// FCFS, TAGS with a cutoff sweep).
#include <iostream>

#include "core/config.h"
#include "core/table.h"
#include "sim/simulator.h"

int main() {
  using namespace csq;
  std::cout << "=== Unknown sizes: TAGS cutoff sweep vs class-aware policies ===\n"
            << "workload: shorts exp(1) rho_S=0.7, longs C^2=8 mean 10 rho_L=0.5\n\n";

  const SystemConfig cfg = SystemConfig::paper_setup(0.7, 0.5, 1.0, 10.0, 8.0);
  sim::SimOptions opts;
  opts.total_completions = 1200000;

  Table t({"policy", "E[T_S]", "E[T_L]", "overall E[T]"});
  const double ps = cfg.lambda_short / (cfg.lambda_short + cfg.lambda_long);
  const auto add = [&](const std::string& name, const sim::SimResult& r) {
    t.add_row({name, format_cell(r.shorts.mean_response), format_cell(r.longs.mean_response),
               format_cell(ps * r.shorts.mean_response +
                           (1 - ps) * r.longs.mean_response)});
  };
  add("Dedicated (knows classes)", sim::simulate(sim::PolicyKind::kDedicated, cfg, opts));
  add("CS-CQ (knows classes)", sim::simulate(sim::PolicyKind::kCsCq, cfg, opts));
  add("M/G/2-FCFS (blind, central queue)", sim::simulate(sim::PolicyKind::kMg2Fcfs, cfg, opts));
  add("Round-Robin (blind, distributed)", sim::simulate(sim::PolicyKind::kRoundRobin, cfg, opts));
  for (const double cutoff : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    sim::SimOptions o = opts;
    o.tags_cutoff = cutoff;
    add("TAGS cutoff=" + format_cell(cutoff, 0), sim::simulate(sim::PolicyKind::kTags, cfg, o));
  }
  t.print(std::cout);
  std::cout << "\nReading: among distributed (no-central-queue) blind policies, a\n"
               "well-chosen TAGS cutoff protects shorts far better than Round-Robin;\n"
               "with only two hosts a central M/G/2 queue is strong, and cycle\n"
               "stealing still wins when classes are known. TAGS pays the killed\n"
               "work twice, so it is cutoff-sensitive at these loads.\n";
  return 0;
}
