// Shared scaffolding for the figure-regeneration benches: the paper's three
// size-ratio panels and the sweep printer.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/sweep.h"
#include "core/table.h"

namespace csq::bench {

struct Panel {
  const char* label;
  double mean_short;
  double mean_long;
};

// Panels (a)-(c) of Figures 4-6: shorts/longs mean sizes 1/1, 1/10, 10/1.
inline const std::vector<Panel>& panels() {
  static const std::vector<Panel> kPanels = {
      {"(a) shorts 1, longs 1", 1.0, 1.0},
      {"(b) shorts 1, longs 10", 1.0, 10.0},
      {"(c) shorts 10, longs 1", 10.0, 1.0},
  };
  return kPanels;
}

inline void print_sweep(const std::string& title, const char* xname,
                        const std::vector<SweepRow>& rows, bool shorts) {
  std::cout << title << "\n";
  Table table({xname, "Dedicated", "CS-ID", "CS-CQ"});
  for (const SweepRow& r : rows) {
    if (shorts)
      table.add_row({r.x, r.dedicated_short, r.csid_short, r.cscq_short});
    else
      table.add_row({r.x, r.dedicated_long, r.csid_long, r.cscq_long});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace csq::bench
