// Runtime reproduction of the paper's Section 4 remark: "the simulation
// portion required close to an hour to generate [per results graph], whereas
// the analysis portion required less than a second" (Matlab 6 on a Pentium
// III). One figure panel is ~30 sweep points; compare per-point costs.
//
// Emit a machine-readable baseline with tools/bench_json.sh (the committed
// snapshots live at BENCH_*.json; see docs/performance.md).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <cstdio>
#include <string>

#include <unistd.h>

#include "analysis/batch.h"
#include "analysis/cscq.h"
#include "analysis/stability.h"
#include "analysis/csid.h"
#include "analysis/truncated_cscq.h"
#include "core/sweep.h"
#include "durable/journal.h"
#include "sim/simulator.h"

// ---------------------------------------------------------------------------
// Allocation counting: a global operator new override feeding an atomic
// counter, so benchmarks can report allocs_per_iter. This measures the QBD
// workspace optimisation directly (heap traffic per solve), which is robust
// on any host — unlike wall-clock speedups on a loaded CI machine.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

// GCC inlines the replaced operator new into callers and then flags the
// malloc/free pairing as a new/free mismatch; the pairing here is
// intentional and consistent across all six replaceable functions.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace csq;

// Attach "allocations per benchmark iteration" to the reported counters.
class AllocScope {
 public:
  explicit AllocScope(benchmark::State& state)
      : state_(state), start_(g_alloc_count.load(std::memory_order_relaxed)) {}
  ~AllocScope() {
    const std::uint64_t delta = g_alloc_count.load(std::memory_order_relaxed) - start_;
    state_.counters["allocs_per_iter"] =
        benchmark::Counter(static_cast<double>(delta), benchmark::Counter::kAvgIterations);
  }

 private:
  benchmark::State& state_;
  std::uint64_t start_;
};

const SystemConfig& config() {
  static const SystemConfig cfg = SystemConfig::paper_setup(1.2, 0.5, 1.0, 1.0, 8.0);
  return cfg;
}

void BM_AnalyzeCscq(benchmark::State& state) {
  // Steady-state cost: the workspace (buffers + cached block patterns)
  // persists across iterations, as it does across a sweep's points.
  qbd::Workspace ws;
  analysis::CscqOptions opts;
  opts.workspace = &ws;
  AllocScope allocs(state);
  for (auto _ : state) benchmark::DoNotOptimize(analysis::analyze_cscq(config(), opts));
}
BENCHMARK(BM_AnalyzeCscq);

void BM_AnalyzeCsid(benchmark::State& state) {
  qbd::Workspace ws;
  analysis::CsidOptions opts;
  opts.workspace = &ws;
  AllocScope allocs(state);
  for (auto _ : state) benchmark::DoNotOptimize(analysis::analyze_csid(config(), opts));
}
BENCHMARK(BM_AnalyzeCsid);

void BM_AnalyzeBatch30(benchmark::State& state) {
  // A figure panel's worth of CS-CQ points through the batch entry point:
  // one workspace and the fit memo amortized over all 30 solves.
  std::vector<analysis::BatchRequest> items;
  for (double rho_s : linspace(1.45 / 30.0, 1.45, 30)) {
    analysis::BatchRequest req;
    req.policy = Policy::kCsCq;
    req.config = SystemConfig::paper_setup(rho_s, 0.5, 1.0, 1.0, 8.0);
    if (analysis::cscq_stable(req.config.rho_short(), req.config.rho_long()))
      items.push_back(req);
  }
  AllocScope allocs(state);
  for (auto _ : state) benchmark::DoNotOptimize(analysis::analyze_batch(items));
}
BENCHMARK(BM_AnalyzeBatch30)->Unit(benchmark::kMillisecond);

void BM_SweepPanel30Points(benchmark::State& state) {
  // One figure panel: 30 sweep points, all three policies, evaluated through
  // the public sweep API on `threads` pool workers (threads:1 is the inline
  // baseline). UseRealTime so the thread-count axis shows wall-clock scaling.
  const std::vector<double> grid = linspace(1.45 / 30.0, 1.45, 30);
  SweepOptions opts;
  opts.threads = static_cast<int>(state.range(0));
  AllocScope allocs(state);
  for (auto _ : state)
    benchmark::DoNotOptimize(sweep_rho_short(0.5, 1.0, 1.0, 8.0, grid, opts));
}
BENCHMARK(BM_SweepPanel30Points)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SimulateOnePoint(benchmark::State& state) {
  // Simulation cost for ONE point at the accuracy used in validation
  // (the paper's per-graph hour / 30 points ~ 2 min per point on 2003 HW).
  sim::SimOptions opts;
  opts.total_completions = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate(sim::PolicyKind::kCsCq, config(), opts));
}
BENCHMARK(BM_SimulateOnePoint)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_SimulateReplications(benchmark::State& state) {
  // Eight deterministic replications of one point, fanned out over the pool.
  sim::SimOptions opts;
  opts.total_completions = 100000;
  sim::ReplicationOptions ropts;
  ropts.replications = 8;
  ropts.threads = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_replications(sim::PolicyKind::kCsCq, config(), opts, ropts));
}
BENCHMARK(BM_SimulateReplications)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_JournalAppend(benchmark::State& state) {
  // Per-request durability overhead: one write-ahead request+response append
  // pair at the server's default fsync batching. bench_compare.py caps this
  // at an absolute 5 us — the docs/serving.md §9 overhead promise — because
  // the benchmark postdates the newest committed baseline snapshot.
  char path[] = "/tmp/csq_bench_journal_XXXXXX";
  const int fd = ::mkstemp(path);
  if (fd < 0) {
    state.SkipWithError("mkstemp failed");
    return;
  }
  ::close(fd);
  durable::JournalOptions jopts;
  jopts.fsync_every = 64;
  durable::Journal journal = durable::Journal::open(path, jopts);
  const std::string request =
      R"({"id":"bench","op":"analyze","rho_s":1.2,"rho_l":0.5,"scv_l":8})";
  const std::string response =
      R"({"id":"bench","ok":true,"op":"analyze","result":{"mean_short":3.14}})";
  std::uint64_t appended = 0;
  for (auto _ : state) {
    const std::uint64_t seq = journal.append_request(request);
    journal.append_response(seq, response);
    if (++appended % 200000 == 0) {
      // Keep the scratch file bounded (~30 MB) over long timed runs; the
      // truncate-and-reopen happens outside the measured region.
      state.PauseTiming();
      journal.close();
      std::remove(path);
      journal = durable::Journal::open(path, jopts);
      state.ResumeTiming();
    }
  }
  journal.close();
  std::remove(path);
}
BENCHMARK(BM_JournalAppend);

void BM_TruncatedChain(benchmark::State& state) {
  analysis::TruncatedCscqOptions topts;
  topts.max_shorts = static_cast<int>(state.range(0));
  topts.max_longs = static_cast<int>(state.range(0));
  const SystemConfig cfg = SystemConfig::paper_setup(1.2, 0.5, 1.0, 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::analyze_cscq_truncated(cfg, topts));
}
BENCHMARK(BM_TruncatedChain)->Arg(60)->Arg(120)->Unit(benchmark::kMillisecond);

}  // namespace
