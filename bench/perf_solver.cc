// Runtime reproduction of the paper's Section 4 remark: "the simulation
// portion required close to an hour to generate [per results graph], whereas
// the analysis portion required less than a second" (Matlab 6 on a Pentium
// III). One figure panel is ~30 sweep points; compare per-point costs.
#include <benchmark/benchmark.h>

#include "analysis/cscq.h"
#include "analysis/stability.h"
#include "analysis/csid.h"
#include "analysis/truncated_cscq.h"
#include "sim/simulator.h"

namespace {

using namespace csq;

const SystemConfig& config() {
  static const SystemConfig cfg = SystemConfig::paper_setup(1.2, 0.5, 1.0, 1.0, 8.0);
  return cfg;
}

void BM_AnalyzeCscq(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(analysis::analyze_cscq(config()));
}
BENCHMARK(BM_AnalyzeCscq);

void BM_AnalyzeCsid(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(analysis::analyze_csid(config()));
}
BENCHMARK(BM_AnalyzeCsid);

void BM_SweepPanel30Points(benchmark::State& state) {
  // One figure panel: 30 sweep points, all three policies.
  for (auto _ : state) {
    for (int i = 1; i <= 30; ++i) {
      const double rho_s = 1.45 * i / 30.0;
      const SystemConfig cfg = SystemConfig::paper_setup(rho_s, 0.5, 1.0, 1.0, 8.0);
      if (analysis::cscq_stable(rho_s, 0.5))
        benchmark::DoNotOptimize(analysis::analyze_cscq(cfg));
      if (analysis::csid_stable(rho_s, 0.5))
        benchmark::DoNotOptimize(analysis::analyze_csid(cfg));
    }
  }
}
BENCHMARK(BM_SweepPanel30Points)->Unit(benchmark::kMillisecond);

void BM_SimulateOnePoint(benchmark::State& state) {
  // Simulation cost for ONE point at the accuracy used in validation
  // (the paper's per-graph hour / 30 points ~ 2 min per point on 2003 HW).
  sim::SimOptions opts;
  opts.total_completions = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate(sim::PolicyKind::kCsCq, config(), opts));
}
BENCHMARK(BM_SimulateOnePoint)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_TruncatedChain(benchmark::State& state) {
  analysis::TruncatedCscqOptions topts;
  topts.max_shorts = static_cast<int>(state.range(0));
  topts.max_longs = static_cast<int>(state.range(0));
  const SystemConfig cfg = SystemConfig::paper_setup(1.2, 0.5, 1.0, 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::analyze_cscq_truncated(cfg, topts));
}
BENCHMARK(BM_TruncatedChain)->Arg(60)->Arg(120)->Unit(benchmark::kMillisecond);

}  // namespace
