// Figure 6: mean response time vs rho_L at fixed rho_S = 1.5 (longs Coxian
// with C^2 = 8). Dedicated is unstable for shorts over the whole range
// (rho_S > 1), so the short-job row shows CS-ID and CS-CQ only.
//
// Paper checkpoints: CS-ID's short curve diverges at its frontier
// rho_L = 1/6 (solution of rho_S^2 + rho_S rho_L = 1 + rho_S at rho_S=1.5);
// CS-CQ diverges at rho_L = 0.5 (= 2 - rho_S). For longs, cycle stealing is
// essentially invisible except in panel (c) (shorts 10x longs), where the
// penalty appears at low rho_L and vanishes as rho_L -> 1 (no cycles left
// to steal).
#include <iostream>

#include "fig_common.h"

int main() {
  using namespace csq;
  const double rho_s = 1.5;
  const double scv_long = 8.0;
  std::cout << "=== Figure 6: response vs rho_L at rho_S = " << rho_s
            << " (longs C^2 = 8) ===\n\n";

  // Shorts: only meaningful below the CS-CQ frontier rho_L = 0.5.
  const std::vector<double> grid_s = fig_grid_rho_long_shorts();
  // Longs: stable for all rho_L < 1 under every policy.
  const std::vector<double> grid_l = fig_grid_rho_long_longs();
  for (const auto& p : bench::panels()) {
    const auto rows_s = sweep_rho_long(rho_s, p.mean_short, p.mean_long, scv_long, grid_s);
    bench::print_sweep(std::string("-- E[T] short jobs, ") + p.label, "rho_L", rows_s, true);
    const auto rows_l = sweep_rho_long(rho_s, p.mean_short, p.mean_long, scv_long, grid_l);
    bench::print_sweep(std::string("-- E[T] long jobs,  ") + p.label, "rho_L", rows_l, false);
  }
  return 0;
}
