// Section 4, "validation against known limiting cases":
//   lambda_L -> 0 : CS-CQ shorts see an M/M/2 queue;
//   lambda_S -> 0 : CS-CQ/CS-ID longs see a plain M/G/1 queue;
//   rho_S -> 0 with longs present: a tagged short sees a free host.
// The paper reports this validation as "perfect"; we print analysis vs the
// exact closed forms.
#include <iostream>

#include "analysis/cscq.h"
#include "analysis/csid.h"
#include "core/table.h"
#include "mg1/mg1.h"
#include "mg1/mmc.h"

int main() {
  using namespace csq;
  std::cout << "=== Validation against known limiting cases ===\n\n";

  {
    std::cout << "-- lambda_L -> 0: CS-CQ shorts vs exact M/M/2 --\n";
    Table t({"rho_S", "CS-CQ analysis", "M/M/2 exact", "rel err"});
    for (const double rho_s : {0.3, 0.8, 1.2, 1.6, 1.9}) {
      const SystemConfig c = SystemConfig::paper_setup(rho_s, 1e-9, 1.0, 1.0);
      const double a = analysis::analyze_cscq(c).metrics.shorts.mean_response;
      const double e = mg1::mmc_response(2, c.lambda_short, 1.0);
      t.add_row({rho_s, a, e, std::abs(a - e) / e});
    }
    t.print(std::cout);
  }

  {
    std::cout << "\n-- lambda_S -> 0: longs vs exact M/G/1 (PK), C^2=8 longs --\n";
    Table t({"rho_L", "CS-CQ analysis", "CS-ID analysis", "M/G/1 exact"});
    for (const double rho_l : {0.2, 0.5, 0.8, 0.95}) {
      const SystemConfig c = SystemConfig::paper_setup(1e-9, rho_l, 1.0, 1.0, 8.0);
      const double cq = analysis::analyze_cscq(c).metrics.longs.mean_response;
      const double id = analysis::analyze_csid(c).metrics.longs.mean_response;
      const double e = mg1::pk_response(c.lambda_long, c.long_size->moments());
      t.add_row({rho_l, cq, id, e});
    }
    t.print(std::cout);
  }

  {
    std::cout << "\n-- rho_S -> 0: a tagged short finds a free host (E[T_S] -> E[X_S]) --\n";
    Table t({"rho_L", "CS-CQ E[T_S]", "E[X_S]"});
    for (const double rho_l : {0.3, 0.6, 0.9}) {
      const SystemConfig c = SystemConfig::paper_setup(1e-9, rho_l, 1.0, 1.0);
      t.add_row({rho_l, analysis::analyze_cscq(c).metrics.shorts.mean_response, 1.0});
    }
    t.print(std::cout);
  }
  return 0;
}
