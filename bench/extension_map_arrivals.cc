// Extension bench: bursty (MMPP) short-job arrivals — the paper's "can be
// generalized to a MAP" remark, realized. Same mean load as the Poisson
// baseline; burstiness knob = peak-to-mean ratio of the arrival rate.
#include <iostream>
#include <memory>

#include "analysis/cscq.h"
#include "analysis/cscq_map.h"
#include "core/table.h"
#include "dist/map_process.h"
#include "sim/simulator.h"

int main() {
  using namespace csq;
  const double rho_s = 0.9, rho_l = 0.5;
  std::cout << "=== Extension: MMPP short arrivals under CS-CQ ===\n"
            << "rho_S = " << rho_s << " (mean), rho_L = " << rho_l
            << ", exponential sizes; high phase holds 20% of time, mean sojourn 10\n\n";

  const SystemConfig base = SystemConfig::paper_setup(rho_s, rho_l, 1.0, 1.0);
  Table t({"peak/mean", "analysis E[T_S]", "sim E[T_S]", "analysis E[T_L]", "sim E[T_L]"});
  sim::SimOptions opts;
  opts.total_completions = 1200000;

  // Poisson row (peak/mean = 1) via the base chain.
  {
    const auto a = analysis::analyze_cscq(base);
    const auto s = sim::simulate(sim::PolicyKind::kCsCq, base, opts);
    t.add_row({1.0, a.metrics.shorts.mean_response, s.shorts.mean_response,
               a.metrics.longs.mean_response, s.longs.mean_response});
  }
  for (const double peak : {1.5, 2.0, 3.0, 4.0}) {
    SystemConfig c = base;
    c.short_arrivals = std::make_shared<dist::MapProcess>(
        dist::MapProcess::bursty(base.lambda_short, peak, 0.2, 10.0));
    const auto a = analysis::analyze_cscq_map(c);
    const auto s = sim::simulate(sim::PolicyKind::kCsCq, c, opts);
    t.add_row({peak, a.metrics.shorts.mean_response, s.shorts.mean_response,
               a.metrics.longs.mean_response, s.longs.mean_response});
  }
  t.print(std::cout);
  std::cout << "\nReading: burstiness inflates the short-job response several-fold at\n"
               "the same mean load (the donor host cannot absorb rate peaks above the\n"
               "combined capacity), while long jobs barely notice; the MAP chain\n"
               "tracks simulation across the sweep.\n";
  return 0;
}
