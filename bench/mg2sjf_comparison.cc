// Section 6 discussion: M/G/2/SJF (central queue, shortest-job-first at both
// hosts) "sometimes outperforms our cycle stealing algorithms and sometimes
// does worse, depending on rho_S, rho_L and the job size distributions".
// Pure simulation study (the paper does not analyze M/G/2/SJF either).
#include <iostream>

#include "core/config.h"
#include "core/table.h"
#include "sim/simulator.h"

int main() {
  using namespace csq;
  std::cout << "=== CS-CQ vs M/G/2/SJF vs M/G/2/FCFS (simulation) ===\n\n";

  struct Case {
    double rho_s, rho_l, mean_s, mean_l, scv_l;
    const char* note;
  };
  const Case cases[] = {
      {0.9, 0.2, 1.0, 10.0, 1.0, "low rho_L: SJF can capture both hosts for longs"},
      {0.9, 0.7, 1.0, 10.0, 1.0, "high rho_L: shorts need the dedicated host"},
      {1.2, 0.5, 1.0, 10.0, 8.0, "heavy shorts, variable longs"},
      {0.5, 0.5, 1.0, 1.0, 1.0, "indistinguishable classes"},
      {1.4, 0.4, 1.0, 10.0, 1.0, "near CS-ID frontier"},
  };

  sim::SimOptions opts;
  opts.total_completions = 1500000;

  Table t({"rho_S", "rho_L", "CS-CQ E[T_S]", "SJF E[T_S]", "FCFS E[T_S]", "CS-CQ E[T_L]",
           "SJF E[T_L]", "FCFS E[T_L]"});
  for (const Case& c : cases) {
    const SystemConfig cfg =
        SystemConfig::paper_setup(c.rho_s, c.rho_l, c.mean_s, c.mean_l, c.scv_l);
    const sim::SimResult cq = sim::simulate(sim::PolicyKind::kCsCq, cfg, opts);
    const sim::SimResult sjf = sim::simulate(sim::PolicyKind::kMg2Sjf, cfg, opts);
    const sim::SimResult fcfs = sim::simulate(sim::PolicyKind::kMg2Fcfs, cfg, opts);
    t.add_row({c.rho_s, c.rho_l, cq.shorts.mean_response, sjf.shorts.mean_response,
               fcfs.shorts.mean_response, cq.longs.mean_response, sjf.longs.mean_response,
               fcfs.longs.mean_response});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape (paper, Section 6): neither CS-CQ nor M/G/2/SJF dominates;\n"
               "SJF wins when longs are rare/short queues matter, loses when shorts get\n"
               "stuck behind two longs (no dedicated short server).\n";
  return 0;
}
