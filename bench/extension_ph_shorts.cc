// Extension bench: CS-CQ with NON-exponential short jobs — the
// generalization the paper sketches ("straightforward to generalize using
// any phase-type distribution"). All of the paper's numerical results use
// exponential shorts; this bench regenerates the Figure-4 panel-(a) sweep
// with Erlang-2 (C^2 = 0.5) and Coxian (C^2 = 4) shorts and cross-checks the
// phase-type chain against simulation at a few points.
#include <iostream>
#include <memory>

#include "analysis/cscq_ph.h"
#include "analysis/stability.h"
#include "core/table.h"
#include "sim/simulator.h"

namespace {

csq::SystemConfig make_config(double rho_s, double rho_l, const csq::dist::PhaseType& shorts,
                              double long_scv) {
  csq::SystemConfig c = csq::SystemConfig::paper_setup(rho_s, rho_l, 1.0, 1.0, long_scv);
  c.short_size = std::make_shared<csq::dist::PhaseType>(shorts);
  c.lambda_short = rho_s / shorts.mean();
  return c;
}

}  // namespace

int main() {
  using namespace csq;
  const double rho_l = 0.5;
  std::cout << "=== Extension: CS-CQ with phase-type shorts (rho_L = 0.5, longs exp) ===\n\n";

  struct ShortKind {
    const char* label;
    dist::PhaseType dist;
  };
  const ShortKind kinds[] = {
      {"Erlang-2 shorts (C^2=0.5)", dist::PhaseType::erlang(2, 2.0)},
      {"exponential shorts (C^2=1)", dist::PhaseType::exponential(1.0)},
      {"Coxian shorts (C^2=4)", dist::PhaseType::coxian_mean_scv(1.0, 4.0)},
  };

  for (const auto& kind : kinds) {
    std::cout << "-- " << kind.label << " --\n";
    Table t({"rho_S", "E[T_S] analysis", "E[T_L] analysis"});
    for (double rho_s = 0.1; rho_s < 1.45; rho_s += 0.1) {
      const SystemConfig c = make_config(rho_s, rho_l, kind.dist, 1.0);
      const auto r = analysis::analyze_cscq_ph(c);
      t.add_row({rho_s, r.metrics.shorts.mean_response, r.metrics.longs.mean_response});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "-- spot-check vs simulation (C^2=4 shorts) --\n";
  Table v({"rho_S", "analysis E[T_S]", "sim E[T_S]", "analysis E[T_L]", "sim E[T_L]"});
  sim::SimOptions opts;
  opts.total_completions = 1000000;
  for (const double rho_s : {0.6, 1.0, 1.3}) {
    const SystemConfig c = make_config(rho_s, rho_l, kinds[2].dist, 1.0);
    const auto r = analysis::analyze_cscq_ph(c);
    const auto s = sim::simulate(sim::PolicyKind::kCsCq, c, opts);
    v.add_row({rho_s, r.metrics.shorts.mean_response, s.shorts.mean_response,
               r.metrics.longs.mean_response, s.longs.mean_response});
  }
  v.print(std::cout);
  std::cout << "\nReading: lower-variability shorts narrow the gap the donor host must\n"
               "cover; higher-variability shorts lengthen the window a waiting long\n"
               "spends behind two in-service shorts, raising the long-job penalty.\n";
  return 0;
}
