// Ablation: what does CS-CQ's host *renaming* buy? The paper explains the
// surprising fact that CS-CQ penalizes longs LESS than CS-ID by renaming:
// "a long job arriving to find both servers serving short jobs need only
// wait for the first of the two servers to free up". Here we simulate CS-CQ
// with a fixed long host (no renaming) to isolate that effect.
#include <iostream>

#include "core/config.h"
#include "core/table.h"
#include "sim/simulator.h"

int main() {
  using namespace csq;
  std::cout << "=== Renaming ablation (simulation): CS-CQ vs CS-CQ-norename vs CS-ID ===\n\n";

  sim::SimOptions opts;
  opts.total_completions = 1500000;

  Table t({"rho_S", "rho_L", "CS-CQ E[T_L]", "norename E[T_L]", "CS-ID E[T_L]",
           "CS-CQ E[T_S]", "norename E[T_S]", "CS-ID E[T_S]"});
  for (const double rho_l : {0.3, 0.5}) {
    for (const double rho_s : {0.6, 0.9, 1.1}) {
      const SystemConfig cfg = SystemConfig::paper_setup(rho_s, rho_l, 1.0, 1.0);
      const sim::SimResult cq = sim::simulate(sim::PolicyKind::kCsCq, cfg, opts);
      const sim::SimResult nr = sim::simulate(sim::PolicyKind::kCsCqNoRename, cfg, opts);
      const sim::SimResult id = sim::simulate(sim::PolicyKind::kCsId, cfg, opts);
      t.add_row({rho_s, rho_l, cq.longs.mean_response, nr.longs.mean_response,
                 id.longs.mean_response, cq.shorts.mean_response, nr.shorts.mean_response,
                 id.shorts.mean_response});
    }
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: for longs, CS-CQ <= CS-CQ-norename (renaming halves the\n"
               "wait behind in-service shorts); both central-queue variants still beat\n"
               "CS-ID for shorts because queued shorts can steal.\n";
  return 0;
}
