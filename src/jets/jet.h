// Truncated Taylor-series ("jet") arithmetic, order 3 (four coefficients).
//
// Used to manipulate Laplace–Stieltjes transforms (LSTs) symbolically enough
// to extract the first three moments of composed random variables — e.g. the
// busy period started by a batch of jobs accumulated during an exponential
// window (the B_{N+1} transition of the CS-CQ chain).
//
// A Jet stores Taylor *coefficients* c_k = f^(k)(0) / k!, so for an LST
// f(s) = E[e^{-sX}] the k-th raw moment is E[X^k] = (-1)^k k! c_k.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "core/numeric.h"
#include "core/status.h"

namespace csq::jets {

inline constexpr int kOrder = 4;  // number of stored coefficients

struct Jet {
  std::array<double, kOrder> c{};

  constexpr double operator[](int i) const { return c[static_cast<std::size_t>(i)]; }
  constexpr double& operator[](int i) { return c[static_cast<std::size_t>(i)]; }

  static constexpr Jet constant(double v) { return Jet{{v, 0.0, 0.0, 0.0}}; }
  // The identity series s.
  static constexpr Jet variable() { return Jet{{0.0, 1.0, 0.0, 0.0}}; }
};

constexpr Jet operator+(const Jet& a, const Jet& b) {
  Jet r;
  for (int i = 0; i < kOrder; ++i) r[i] = a[i] + b[i];
  return r;
}

constexpr Jet operator-(const Jet& a, const Jet& b) {
  Jet r;
  for (int i = 0; i < kOrder; ++i) r[i] = a[i] - b[i];
  return r;
}

constexpr Jet operator-(const Jet& a) {
  Jet r;
  for (int i = 0; i < kOrder; ++i) r[i] = -a[i];
  return r;
}

constexpr Jet operator*(double s, const Jet& a) {
  Jet r;
  for (int i = 0; i < kOrder; ++i) r[i] = s * a[i];
  return r;
}

constexpr Jet operator*(const Jet& a, double s) { return s * a; }

constexpr Jet operator+(const Jet& a, double s) {
  Jet r = a;
  r[0] += s;
  return r;
}
constexpr Jet operator+(double s, const Jet& a) { return a + s; }
constexpr Jet operator-(const Jet& a, double s) { return a + (-s); }
constexpr Jet operator-(double s, const Jet& a) { return (-a) + s; }

// Truncated Cauchy product.
constexpr Jet operator*(const Jet& a, const Jet& b) {
  Jet r;
  for (int i = 0; i < kOrder; ++i)
    for (int j = 0; i + j < kOrder; ++j) r[i + j] += a[i] * b[j];
  return r;
}

// Series reciprocal; requires a nonzero constant term.
inline Jet reciprocal(const Jet& a) {
  if (num::exactly_zero(a[0])) throw InvalidInputError("jets::reciprocal: zero constant term");
  Jet r;
  r[0] = 1.0 / a[0];
  for (int k = 1; k < kOrder; ++k) {
    double acc = 0.0;
    for (int j = 1; j <= k; ++j) acc += a[j] * r[k - j];
    r[k] = -acc / a[0];
  }
  return r;
}

inline Jet operator/(const Jet& a, const Jet& b) { return a * reciprocal(b); }
inline Jet operator/(double s, const Jet& b) { return s * reciprocal(b); }
constexpr Jet operator/(const Jet& a, double s) { return (1.0 / s) * a; }

// Compose an analytic outer function with an inner series. The outer function
// is given by its *plain* derivatives d[k] = g^(k)(a) evaluated at the inner
// series' constant term a = inner[0]. Returns the jet of g(inner(s)).
constexpr Jet compose(const std::array<double, kOrder>& outer_derivs_at_inner0,
                      const Jet& inner) {
  Jet u = inner;
  u[0] = 0.0;  // u = inner - a
  const Jet u2 = u * u;
  const Jet u3 = u2 * u;
  return Jet::constant(outer_derivs_at_inner0[0]) + outer_derivs_at_inner0[1] * u +
         (outer_derivs_at_inner0[2] / 2.0) * u2 + (outer_derivs_at_inner0[3] / 6.0) * u3;
}

// Polynomial composition f(g(s)) where g has zero constant term.
constexpr Jet compose0(const Jet& f, const Jet& g) {
  if (!num::exactly_zero(g[0]))
    throw InvalidInputError("jets::compose0: inner constant term must be 0");
  const Jet g2 = g * g;
  const Jet g3 = g2 * g;
  return Jet::constant(f[0]) + f[1] * g + f[2] * g2 + f[3] * g3;
}

// --- LST <-> moments -------------------------------------------------------

struct RawMoments3 {
  double m1 = 0, m2 = 0, m3 = 0;
};

// Jet of the LST E[e^{-sX}] of a random variable with the given raw moments.
constexpr Jet lst_from_moments(double m1, double m2, double m3) {
  return Jet{{1.0, -m1, m2 / 2.0, -m3 / 6.0}};
}

// Extract raw moments from an LST jet: E[X^k] = (-1)^k k! c_k.
constexpr RawMoments3 moments_from_lst(const Jet& f) {
  return {-f[1], 2.0 * f[2], -6.0 * f[3]};
}

}  // namespace csq::jets
