// Structure-exploiting multiply kernels for the QBD hot loops.
//
// The repeating blocks of the paper's chains are tiny but far from dense:
// A0 is a diagonal arrival block (lambda_S I), A2 a sparse service block
// (~m + k nonzeros), and the PH-fit pieces of A1 are banded. The generic
// linalg::multiply_into pays the full O(m^3) with a branch per element; the
// kernels here classify a block's zero structure once (BlockPattern) and
// dispatch to a matching kernel:
//
//   kDiagonal  right-multiply by a diagonal block: one product per entry
//   kSparse    CSR walk over the block's nonzeros: O(rows * nnz)
//   kBanded    k restricted to the band: O(rows * cols * bandwidth)
//   kDense     blocked row kernel with restrict-qualified pointers
//
// Numerical contract: every kernel accumulates dst(i,j) over k in ascending
// order, exactly like the generic kernel, and skipped terms are exact zeros
// — so for finite inputs the results are bit-identical to multiply_into
// (the kernel-equivalence suite pins this at 1e-14, conservatively).
//
// A BlockPattern describes *positions*, not values: it stays valid while the
// matrix keeps the same zero structure, which is exactly the lifetime of a
// QBD solve (A0/A1/A2 are fixed; only R evolves, and R is treated as dense).
// qbd::Workspace caches the patterns so repeated solves skip re-analysis.
//
// Throws csq::InvalidInputError on shape mismatches (same as multiply_into).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace csq::linalg {

enum class PatternKind : std::uint8_t { kDiagonal, kSparse, kBanded, kDense };

[[nodiscard]] const char* pattern_kind_name(PatternKind kind);

// Zero-structure summary of one block, produced by analyze_pattern().
struct BlockPattern {
  PatternKind kind = PatternKind::kDense;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t nnz = 0;
  // kBanded: nonzeros satisfy i - band_lower <= j <= i + band_upper.
  std::size_t band_lower = 0;
  std::size_t band_upper = 0;
  // kDiagonal / kSparse: CSR index lists (row_ptr size rows+1; col_idx holds
  // the nonzero columns of each row in ascending order). row_of flattens the
  // CSR: row_of[idx] is the row of col_idx[idx], so kernels can walk all nnz
  // positions in one loop (row-major order) instead of a nested walk whose
  // irregular inner trip counts defeat the branch predictor on tiny blocks.
  std::vector<std::uint32_t> row_ptr;
  std::vector<std::uint32_t> col_idx;
  std::vector<std::uint32_t> row_of;

  // True when m has this pattern's shape and every nonzero of m sits at a
  // position the pattern covers (extra pattern positions are fine: they only
  // cost work, never correctness). Use in tests/assertions; the solver
  // guarantees it by construction.
  [[nodiscard]] bool matches(const Matrix& m) const;
};

// Classify m's zero structure. O(rows * cols), intended to run once per
// solve (or once per sweep when the structure is config-independent).
[[nodiscard]] BlockPattern analyze_pattern(const Matrix& m);

// In-place variant: refills pat, reusing its index vectors' capacity — the
// workspace-cached patterns in qbd::Workspace re-analyze per solve without
// reallocating.
void analyze_pattern_into(BlockPattern& pat, const Matrix& m);

// dst = a * b where pat describes b (pat = analyze_pattern(b) or any pattern
// covering b's nonzeros). Dispatches on pat.kind; falls back to the dense
// kernel when pat covers everything. dst must not alias a or b.
void multiply_into_pattern(Matrix& dst, const Matrix& a, const Matrix& b,
                           const BlockPattern& pat);

// dst = a * b via the blocked restrict dense kernel (no pattern needed; use
// for products of evolving dense iterates like R*R). dst must not alias.
void multiply_into_dense(Matrix& dst, const Matrix& a, const Matrix& b);

// dst += b touching only the positions pat covers (diagonal add is rows ops
// instead of rows*cols). Shapes must match.
void add_into_pattern(Matrix& dst, const Matrix& b, const BlockPattern& pat);

}  // namespace csq::linalg
