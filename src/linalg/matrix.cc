#include "linalg/matrix.h"

#include <cmath>
#include <ostream>
#include <stdexcept>

#include "core/status.h"

#include "core/check.h"
#include "core/numeric.h"

namespace csq::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) throw InvalidInputError("Matrix: ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw InvalidInputError("Matrix+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw InvalidInputError("Matrix-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix& Matrix::add_scaled(const Matrix& rhs, double s) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw InvalidInputError("Matrix::add_scaled: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * rhs.data_[i];
  return *this;
}

void Matrix::reshape_zero(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);  // keeps capacity; reallocates only to grow
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

std::vector<double> Matrix::row_sums() const {
  std::vector<double> s(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) s[r] += (*this)(r, c);
  return s;
}

double Matrix::max_abs() const {
  // std::max(m, NaN) returns m (the comparison is false), which would mask a
  // NaN entry and let divergence/verification guards built on this norm pass
  // a poisoned matrix. Propagate NaN instead of dropping it.
  double m = 0.0;
  for (double x : data_) {
    const double v = std::abs(x);
    if (std::isnan(v)) return v;
    m = std::max(m, v);
  }
  return m;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }

Matrix operator*(const Matrix& lhs, const Matrix& rhs) {
  if (lhs.cols() != rhs.rows()) throw InvalidInputError("Matrix*: shape mismatch");
  Matrix out(lhs.rows(), rhs.cols());
  for (std::size_t i = 0; i < lhs.rows(); ++i)
    for (std::size_t k = 0; k < lhs.cols(); ++k) {
      const double a = lhs(i, k);
      if (num::exactly_zero(a)) continue;
      for (std::size_t j = 0; j < rhs.cols(); ++j) out(i, j) += a * rhs(k, j);
    }
  return out;
}

Matrix operator*(double s, Matrix m) { return m *= s; }
Matrix operator*(Matrix m, double s) { return m *= s; }

void multiply_into(Matrix& dst, const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw InvalidInputError("multiply_into: shape mismatch");
  if (&dst == &a || &dst == &b)
    throw InvalidInputError("multiply_into: dst must not alias an operand");
  dst.reshape_zero(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double x = a(i, k);
      if (num::exactly_zero(x)) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) dst(i, j) += x * b(k, j);
    }
}

void multiply_into(std::vector<double>& dst, const Matrix& m, const std::vector<double>& v) {
  if (v.size() != m.cols()) throw InvalidInputError("multiply_into: shape mismatch");
  if (&dst == &v) throw InvalidInputError("multiply_into: dst must not alias v");
  dst.assign(m.rows(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) dst[r] += m(r, c) * v[c];
}

void multiply_into(std::vector<double>& dst, const std::vector<double>& v, const Matrix& m) {
  if (v.size() != m.rows()) throw InvalidInputError("multiply_into: shape mismatch");
  if (&dst == &v) throw InvalidInputError("multiply_into: dst must not alias v");
  dst.assign(m.cols(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double a = v[r];
    if (num::exactly_zero(a)) continue;
    for (std::size_t c = 0; c < m.cols(); ++c) dst[c] += a * m(r, c);
  }
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw InvalidInputError("max_abs_diff: shape mismatch");
  double m = 0.0;
  const std::vector<double>& da = a.data();
  const std::vector<double>& db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    // NaN-propagating for the same reason as Matrix::max_abs — iteration
    // convergence checks compare this value against a tolerance, and a masked
    // NaN would read as "converged".
    const double v = std::abs(da[i] - db[i]);
    if (std::isnan(v)) return v;
    m = std::max(m, v);
  }
  return m;
}

std::vector<double> operator*(const std::vector<double>& v, const Matrix& m) {
  if (v.size() != m.rows()) throw InvalidInputError("vec*Matrix: shape mismatch");
  std::vector<double> out(m.cols(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double a = v[r];
    if (num::exactly_zero(a)) continue;
    for (std::size_t c = 0; c < m.cols(); ++c) out[c] += a * m(r, c);
  }
  return out;
}

std::vector<double> operator*(const Matrix& m, const std::vector<double>& v) {
  if (v.size() != m.cols()) throw InvalidInputError("Matrix*vec: shape mismatch");
  std::vector<double> out(m.rows(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) out[r] += m(r, c) * v[c];
  return out;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  CSQ_ASSERT(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < m.cols(); ++c) os << (c ? ", " : "[") << m(r, c);
    os << "]" << (r + 1 == m.rows() ? "]" : "\n");
  }
  return os;
}

}  // namespace csq::linalg
