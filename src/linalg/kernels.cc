#include "linalg/kernels.h"

#include "core/numeric.h"
#include "core/status.h"

namespace csq::linalg {

namespace {

void require(bool cond, const char* msg) {
  if (!cond) throw InvalidInputError(msg);
}

void check_multiply_args(const Matrix& dst, const Matrix& a, const Matrix& b) {
  require(a.cols() == b.rows(), "kernels: multiply shape mismatch");
  require(&dst != &a && &dst != &b, "kernels: dst must not alias an operand");
}

// dst = a * diag(b): dst(i,j) = a(i,j) * b(j,j) — the only k that survives
// is k == j, so this is exactly the generic sum with the zero terms skipped.
void multiply_diagonal(Matrix& dst, const Matrix& a, const Matrix& b) {
  const std::size_t rows = a.rows(), n = b.cols();
  dst.reshape_zero(rows, n);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const double x = a(i, j);
      if (num::exactly_zero(x)) continue;  // keep +0, like the generic kernel
      dst(i, j) = x * b(j, j);
    }
}

// Row accumulator width shared by the banded kernel's stack-buffer path.
constexpr std::size_t kAccCap = 32;

// Sparse core with a compile-time column count. Walks the flattened nnz
// list (row-major, so contributions to each dst(i,j) still arrive in
// ascending k — bit-identical to the generic kernel): one predictable loop
// of pat.nnz steps per output row, instead of `inner` nested loops whose
// irregular 0..2-trip inner counts mispredict on every tiny block. The
// compile-time N turns the accumulator zeroing and final store into
// straight-line vector code and the k*N+j address math into shifts; with a
// runtime n those loops pay per-row vectorizer prologue/remainder overhead
// that dwarfs the 9-ish real multiplies.
template <std::size_t N>
void sparse_core_fixed(double* __restrict__ d, const double* __restrict__ pa,
                       const double* __restrict__ pb, std::size_t rows,
                       std::size_t inner, const std::uint32_t* __restrict__ ro,
                       const std::uint32_t* __restrict__ ci, std::size_t nnz) {
  for (std::size_t i = 0; i < rows; ++i) {
    double acc[N] = {0.0};
    const double* __restrict__ arow = pa + i * inner;
    for (std::size_t idx = 0; idx < nnz; ++idx) {
      const std::size_t k = ro[idx], j = ci[idx];
      const double x = arow[k];
      if (num::exactly_zero(x)) continue;  // matches the generic kernel's skip
      acc[j] += x * pb[k * N + j];
    }
    double* __restrict__ drow = d + i * N;
    for (std::size_t j = 0; j < N; ++j) drow[j] = acc[j];
  }
}

// CSR walk over b's nonzeros. For each (i,j) the contributions arrive in
// ascending k, matching the generic kernel's summation order bit-for-bit.
void multiply_sparse(Matrix& dst, const Matrix& a, const Matrix& b,
                     const BlockPattern& pat) {
  const std::size_t rows = a.rows(), inner = a.cols(), n = b.cols();
  dst.reshape_zero(rows, n);
  if (rows == 0 || n == 0) return;
  const std::uint32_t* rp = pat.row_ptr.data();
  const std::uint32_t* ci = pat.col_idx.data();
  const std::uint32_t* ro = pat.row_of.data();
  const std::size_t nnz = pat.nnz;
  double* __restrict__ d = &dst(0, 0);
  const double* __restrict__ pa = a.data().data();
  const double* __restrict__ pb = b.data().data();
  switch (n) {
    case 2: sparse_core_fixed<2>(d, pa, pb, rows, inner, ro, ci, nnz); return;
    case 3: sparse_core_fixed<3>(d, pa, pb, rows, inner, ro, ci, nnz); return;
    case 4: sparse_core_fixed<4>(d, pa, pb, rows, inner, ro, ci, nnz); return;
    case 5: sparse_core_fixed<5>(d, pa, pb, rows, inner, ro, ci, nnz); return;
    case 6: sparse_core_fixed<6>(d, pa, pb, rows, inner, ro, ci, nnz); return;
    case 7: sparse_core_fixed<7>(d, pa, pb, rows, inner, ro, ci, nnz); return;
    case 8: sparse_core_fixed<8>(d, pa, pb, rows, inner, ro, ci, nnz); return;
    default: break;
  }
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t k = 0; k < inner; ++k) {
      const double x = a(i, k);
      if (num::exactly_zero(x)) continue;
      for (std::uint32_t idx = rp[k]; idx < rp[k + 1]; ++idx) {
        const std::size_t j = ci[idx];
        dst(i, j) += x * b(k, j);
      }
    }
}

// b banded: b(k,j) can be nonzero only for k - band_lower <= j <= k +
// band_upper, so the inner j loop shrinks to the band. k stays the outer
// accumulation index (ascending), matching the generic order.
void multiply_banded(Matrix& dst, const Matrix& a, const Matrix& b,
                     const BlockPattern& pat) {
  const std::size_t rows = a.rows(), inner = a.cols(), n = b.cols();
  dst.reshape_zero(rows, n);
  if (n <= kAccCap) {
    for (std::size_t i = 0; i < rows; ++i) {
      double acc[kAccCap];
      for (std::size_t j = 0; j < n; ++j) acc[j] = 0.0;
      for (std::size_t k = 0; k < inner; ++k) {
        const double x = a(i, k);
        if (num::exactly_zero(x)) continue;
        const std::size_t j0 = k > pat.band_lower ? k - pat.band_lower : 0;
        const std::size_t j1 = std::min(n, k + pat.band_upper + 1);
        for (std::size_t j = j0; j < j1; ++j) acc[j] += x * b(k, j);
      }
      for (std::size_t j = 0; j < n; ++j) dst(i, j) = acc[j];
    }
    return;
  }
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t k = 0; k < inner; ++k) {
      const double x = a(i, k);
      if (num::exactly_zero(x)) continue;
      const std::size_t j0 = k > pat.band_lower ? k - pat.band_lower : 0;
      const std::size_t j1 = std::min(n, k + pat.band_upper + 1);
      for (std::size_t j = j0; j < j1; ++j) dst(i, j) += x * b(k, j);
    }
}

}  // namespace

const char* pattern_kind_name(PatternKind kind) {
  switch (kind) {
    case PatternKind::kDiagonal: return "diagonal";
    case PatternKind::kSparse: return "sparse";
    case PatternKind::kBanded: return "banded";
    case PatternKind::kDense: return "dense";
  }
  return "?";
}

bool BlockPattern::matches(const Matrix& m) const {
  if (m.rows() != rows || m.cols() != cols) return false;
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) {
      if (num::exactly_zero(m(i, j))) continue;
      bool covered = false;
      switch (kind) {
        case PatternKind::kDense:
          covered = true;
          break;
        case PatternKind::kBanded:
          covered = j + band_lower >= i && j <= i + band_upper;
          break;
        case PatternKind::kDiagonal:
        case PatternKind::kSparse:
          for (std::uint32_t idx = row_ptr[i]; idx < row_ptr[i + 1] && !covered; ++idx)
            covered = col_idx[idx] == j;
          break;
      }
      if (!covered) return false;
    }
  return true;
}

BlockPattern analyze_pattern(const Matrix& m) {
  BlockPattern pat;
  analyze_pattern_into(pat, m);
  return pat;
}

void analyze_pattern_into(BlockPattern& pat, const Matrix& m) {
  pat.rows = m.rows();
  pat.cols = m.cols();
  pat.nnz = 0;
  pat.band_lower = 0;
  pat.band_upper = 0;
  pat.col_idx.clear();
  pat.row_of.clear();
  pat.row_ptr.assign(pat.rows + 1, 0);
  bool diagonal_only = pat.rows == pat.cols;
  std::size_t lower = 0, upper = 0;
  for (std::size_t i = 0; i < pat.rows; ++i) {
    pat.row_ptr[i] = static_cast<std::uint32_t>(pat.col_idx.size());
    for (std::size_t j = 0; j < pat.cols; ++j) {
      if (num::exactly_zero(m(i, j))) continue;
      pat.col_idx.push_back(static_cast<std::uint32_t>(j));
      pat.row_of.push_back(static_cast<std::uint32_t>(i));
      if (i != j) diagonal_only = false;
      if (j < i) lower = std::max(lower, i - j);
      if (j > i) upper = std::max(upper, j - i);
    }
  }
  pat.row_ptr[pat.rows] = static_cast<std::uint32_t>(pat.col_idx.size());
  pat.nnz = pat.col_idx.size();
  pat.band_lower = lower;
  pat.band_upper = upper;

  const std::size_t total = pat.rows * pat.cols;
  if (diagonal_only && pat.rows > 0) {
    pat.kind = PatternKind::kDiagonal;
  } else if (total > 0 && pat.nnz * 4 <= total) {
    // Sparse enough that the CSR walk beats even a tight band.
    pat.kind = PatternKind::kSparse;
  } else if (pat.cols > 0 && lower + upper + 1 <= (pat.cols + 1) / 2) {
    pat.kind = PatternKind::kBanded;
  } else {
    pat.kind = PatternKind::kDense;
    pat.row_ptr.clear();
    pat.col_idx.clear();
    pat.row_of.clear();
  }
}

void multiply_into_pattern(Matrix& dst, const Matrix& a, const Matrix& b,
                           const BlockPattern& pat) {
  check_multiply_args(dst, a, b);
  require(pat.rows == b.rows() && pat.cols == b.cols(),
          "multiply_into_pattern: pattern shape does not match b");
  switch (pat.kind) {
    case PatternKind::kDiagonal: multiply_diagonal(dst, a, b); return;
    case PatternKind::kSparse: multiply_sparse(dst, a, b, pat); return;
    case PatternKind::kBanded: multiply_banded(dst, a, b, pat); return;
    case PatternKind::kDense: break;
  }
  multiply_into_dense(dst, a, b);
}

namespace {

// Dense core with a compile-time column count: the j loop unrolls fully, so
// each k step is straight-line vector code with no remainder handling. The
// QBD blocks are tiny (m is single digits for every paper config), where
// that per-step loop machinery dominates the actual arithmetic.
template <std::size_t N>
void dense_core_fixed(double* __restrict__ d, const double* __restrict__ pa,
                      const double* __restrict__ pb, std::size_t rows, std::size_t inner) {
  for (std::size_t i = 0; i < rows; ++i) {
    // Row accumulator: the full j extent lives in registers across the k
    // loop, so the dependence chain is register adds instead of the
    // store-to-load forwarding round trip a `dst(i,j) +=` walk pays per
    // step. Same additions in the same ascending-k order — bit-identical.
    double acc[N] = {0.0};
    const double* __restrict__ arow = pa + i * inner;
    for (std::size_t k = 0; k < inner; ++k) {
      const double x = arow[k];
      if (num::exactly_zero(x)) continue;  // matches the generic kernel's skip
      const double* __restrict__ brow = pb + k * N;
      for (std::size_t j = 0; j < N; ++j) acc[j] += x * brow[j];
    }
    double* __restrict__ drow = d + i * N;
    for (std::size_t j = 0; j < N; ++j) drow[j] = acc[j];
  }
}

void dense_core_general(double* __restrict__ d, const double* __restrict__ pa,
                        const double* __restrict__ pb, std::size_t rows, std::size_t inner,
                        std::size_t n) {
  for (std::size_t i = 0; i < rows; ++i) {
    double* __restrict__ drow = d + i * n;
    const double* __restrict__ arow = pa + i * inner;
    for (std::size_t k = 0; k < inner; ++k) {
      const double x = arow[k];
      if (num::exactly_zero(x)) continue;
      const double* __restrict__ brow = pb + k * n;
      for (std::size_t j = 0; j < n; ++j) drow[j] += x * brow[j];
    }
  }
}

}  // namespace

void multiply_into_dense(Matrix& dst, const Matrix& a, const Matrix& b) {
  check_multiply_args(dst, a, b);
  const std::size_t rows = a.rows(), inner = a.cols(), n = b.cols();
  dst.reshape_zero(rows, n);
  if (rows == 0 || inner == 0 || n == 0) return;
  // reshape_zero guarantees distinct storage (aliasing rejected above), so
  // the restrict qualifiers hold and the inner j loop vectorizes. Unrolling
  // changes neither the per-element operation sequence nor the ascending-k
  // accumulation order, so every variant returns bit-identical results.
  double* __restrict__ d = &dst(0, 0);
  const double* __restrict__ pa = a.data().data();
  const double* __restrict__ pb = b.data().data();
  switch (n) {
    case 2: dense_core_fixed<2>(d, pa, pb, rows, inner); return;
    case 3: dense_core_fixed<3>(d, pa, pb, rows, inner); return;
    case 4: dense_core_fixed<4>(d, pa, pb, rows, inner); return;
    case 5: dense_core_fixed<5>(d, pa, pb, rows, inner); return;
    case 6: dense_core_fixed<6>(d, pa, pb, rows, inner); return;
    case 7: dense_core_fixed<7>(d, pa, pb, rows, inner); return;
    case 8: dense_core_fixed<8>(d, pa, pb, rows, inner); return;
    default: dense_core_general(d, pa, pb, rows, inner, n); return;
  }
}

void add_into_pattern(Matrix& dst, const Matrix& b, const BlockPattern& pat) {
  require(dst.rows() == b.rows() && dst.cols() == b.cols(),
          "add_into_pattern: shape mismatch");
  require(pat.rows == b.rows() && pat.cols == b.cols(),
          "add_into_pattern: pattern shape does not match b");
  switch (pat.kind) {
    case PatternKind::kDiagonal:
    case PatternKind::kSparse:
      for (std::size_t i = 0; i < pat.rows; ++i)
        for (std::uint32_t idx = pat.row_ptr[i]; idx < pat.row_ptr[i + 1]; ++idx) {
          const std::size_t j = pat.col_idx[idx];
          dst(i, j) += b(i, j);
        }
      return;
    case PatternKind::kBanded:
      for (std::size_t i = 0; i < pat.rows; ++i) {
        const std::size_t j0 = i > pat.band_lower ? i - pat.band_lower : 0;
        const std::size_t j1 = std::min(pat.cols, i + pat.band_upper + 1);
        for (std::size_t j = j0; j < j1; ++j) dst(i, j) += b(i, j);
      }
      return;
    case PatternKind::kDense: dst += b; return;
  }
}

}  // namespace csq::linalg
