// Small dense matrix type used by the matrix-analytic (QBD) machinery.
//
// The matrices in this project are tiny (phase counts are single digits), so
// a simple row-major std::vector<double> store with O(n^3) kernels is both
// sufficient and easy to audit. No external linear-algebra dependency.
//
// Throws csq::InvalidInputError (core/status.h) on shape mismatches.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace csq::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  // Row-major brace construction: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  static Matrix zeros(std::size_t rows, std::size_t cols) { return Matrix(rows, cols); }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  // *this += s * rhs, elementwise, no temporaries.
  Matrix& add_scaled(const Matrix& rhs, double s);

  // Reshape to rows x cols and zero-fill, reusing existing capacity — the
  // building block of the allocation-free workspace kernels below.
  void reshape_zero(std::size_t rows, std::size_t cols);

  [[nodiscard]] Matrix transpose() const;

  // Sum of each row (useful for generator diagonals and mass checks).
  [[nodiscard]] std::vector<double> row_sums() const;

  // max_ij |a_ij|; NaN if any entry is NaN (norm guards must see poison).
  [[nodiscard]] double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

[[nodiscard]] Matrix operator+(Matrix lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator-(Matrix lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator*(const Matrix& lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator*(double s, Matrix m);
[[nodiscard]] Matrix operator*(Matrix m, double s);

// Row-vector times matrix (the natural operation on stationary vectors).
[[nodiscard]] std::vector<double> operator*(const std::vector<double>& v, const Matrix& m);
// Matrix times column vector.
[[nodiscard]] std::vector<double> operator*(const Matrix& m, const std::vector<double>& v);

// dst = a * b without allocating when dst already has the right shape (its
// storage is reshaped and reused). dst must not alias a or b. The workspace
// primitive of the QBD solver's hot loop (see qbd::Workspace).
void multiply_into(Matrix& dst, const Matrix& a, const Matrix& b);

// dst = m * v (column-vector product) reusing dst's storage; dst must not
// alias v.
void multiply_into(std::vector<double>& dst, const Matrix& m, const std::vector<double>& v);

// dst = v * m (row-vector product) reusing dst's storage; dst must not alias
// v. Lets stationary-vector recursions (pi <- pi R) ping-pong two buffers
// instead of allocating per level (csq_lint rule hot-path-alloc).
void multiply_into(std::vector<double>& dst, const std::vector<double>& v, const Matrix& m);

// max_ij |a_ij - b_ij| without forming a - b; shapes must match. NaN if any
// entry of the difference is NaN, like Matrix::max_abs.
[[nodiscard]] double max_abs_diff(const Matrix& a, const Matrix& b);

[[nodiscard]] double dot(const std::vector<double>& a, const std::vector<double>& b);
[[nodiscard]] double sum(const std::vector<double>& v);

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace csq::linalg
