// LU factorization with partial pivoting, linear solves and inverses,
// plus the robustness extras the boundary systems need: a 1-norm condition
// estimate and iterative refinement (one residual-correction pass), so
// ill-conditioned systems are detected and mitigated rather than silently
// wrong.
//
// Throws csq::InvalidInputError (core/status.h) on malformed arguments.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace csq::linalg {

// PA = LU factorization of a square matrix. Throws csq::IllConditionedError
// (a std::domain_error) on (numerically) singular input.
class Lu {
 public:
  explicit Lu(Matrix a);

  // Solve A x = b.
  [[nodiscard]] std::vector<double> solve(std::vector<double> b) const;
  // Solve A X = B column-by-column.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  // Solve A x = b, then apply one step of iterative refinement
  // (x += A \ (b - A x)) — recovers most of the accuracy lost to a large
  // condition number at the cost of one extra substitution pass.
  [[nodiscard]] std::vector<double> solve_refined(const std::vector<double>& b) const;

  [[nodiscard]] double determinant() const;

  // A^{-1}, assembled column-by-column through one reused substitution
  // buffer (cheaper than solve(Matrix::identity(n)), same values).
  [[nodiscard]] Matrix inverse() const;

  // 1-norm condition number estimate ||A||_1 ||A^{-1}||_1. Computed on first
  // use (the matrices here are tiny, so the extra n solves are cheap) and
  // cached. Values >~ 1e14 mean the solve carries essentially no correct
  // digits in double precision.
  [[nodiscard]] double condition_estimate() const;

  // max-norm of the residual b - A x for a candidate solution x.
  [[nodiscard]] double residual_max(const std::vector<double>& x,
                                    const std::vector<double>& b) const;

 private:
  // In-place forward/back substitution; x must already hold the permuted
  // right-hand side (x[i] = b[perm_[i]]).
  void substitute(std::vector<double>& x) const;

  Matrix a_;                // original matrix (refinement, condition, residual)
  Matrix lu_;               // packed L (unit diagonal, below) and U (on/above)
  std::vector<int> perm_;   // row permutation
  int sign_ = 1;
  mutable double cond_ = -1.0;  // cached condition estimate (-1 = not computed)
};

// Solve x A = b for a row vector x (i.e. A^T x^T = b^T).
[[nodiscard]] std::vector<double> solve_left(const Matrix& a, const std::vector<double>& b);

[[nodiscard]] Matrix inverse(const Matrix& a);

}  // namespace csq::linalg
