// LU factorization with partial pivoting, linear solves and inverses.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace csq::linalg {

// PA = LU factorization of a square matrix. Throws std::domain_error on
// (numerically) singular input.
class Lu {
 public:
  explicit Lu(Matrix a);

  // Solve A x = b.
  [[nodiscard]] std::vector<double> solve(std::vector<double> b) const;
  // Solve A X = B column-by-column.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  [[nodiscard]] double determinant() const;

 private:
  Matrix lu_;               // packed L (unit diagonal, below) and U (on/above)
  std::vector<int> perm_;   // row permutation
  int sign_ = 1;
};

// Solve x A = b for a row vector x (i.e. A^T x^T = b^T).
[[nodiscard]] std::vector<double> solve_left(const Matrix& a, const std::vector<double>& b);

[[nodiscard]] Matrix inverse(const Matrix& a);

}  // namespace csq::linalg
