#include "linalg/lu.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace csq::linalg {

Lu::Lu(Matrix a) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols()) throw std::invalid_argument("Lu: matrix not square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = static_cast<int>(i);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t piv = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < 1e-300) throw std::domain_error("Lu: singular matrix");
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(piv, c));
      std::swap(perm_[k], perm_[piv]);
      sign_ = -sign_;
    }
    const double d = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = lu_(r, k) / d;
      lu_(r, k) = m;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= m * lu_(k, c);
    }
  }
}

std::vector<double> Lu::solve(std::vector<double> b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("Lu::solve: size mismatch");
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[static_cast<std::size_t>(perm_[i])];
  // Forward substitution (L has unit diagonal).
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu_(i, j) * x[j];
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) x[ii] -= lu_(ii, j) * x[j];
    x[ii] /= lu_(ii, ii);
  }
  return x;
}

Matrix Lu::solve(const Matrix& b) const {
  const std::size_t n = lu_.rows();
  if (b.rows() != n) throw std::invalid_argument("Lu::solve: shape mismatch");
  Matrix x(n, b.cols());
  std::vector<double> col(n);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < n; ++r) col[r] = b(r, c);
    const std::vector<double> xc = solve(col);
    for (std::size_t r = 0; r < n; ++r) x(r, c) = xc[r];
  }
  return x;
}

double Lu::determinant() const {
  double d = sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

std::vector<double> solve_left(const Matrix& a, const std::vector<double>& b) {
  return Lu(a.transpose()).solve(b);
}

Matrix inverse(const Matrix& a) { return Lu(a).solve(Matrix::identity(a.rows())); }

}  // namespace csq::linalg
