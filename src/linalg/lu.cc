#include "linalg/lu.h"

#include <cmath>
#include <utility>

#include "core/status.h"

namespace csq::linalg {

namespace {

double norm1(const Matrix& a) {
  double best = 0.0;
  for (std::size_t c = 0; c < a.cols(); ++c) {
    double s = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r) s += std::abs(a(r, c));
    best = std::max(best, s);
  }
  return best;
}

}  // namespace

Lu::Lu(Matrix a) : a_(std::move(a)), lu_(a_) {
  if (lu_.rows() != lu_.cols()) throw InvalidInputError("Lu: matrix not square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = static_cast<int>(i);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t piv = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < 1e-300) {
      Diagnostics d;
      d.stage = "lu_factorization";
      d.iterations = static_cast<long>(k);
      throw IllConditionedError("Lu: singular matrix (zero pivot at column " +
                                    std::to_string(k) + ")",
                                std::move(d));
    }
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(piv, c));
      std::swap(perm_[k], perm_[piv]);
      sign_ = -sign_;
    }
    const double d = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = lu_(r, k) / d;
      lu_(r, k) = m;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= m * lu_(k, c);
    }
  }
}

void Lu::substitute(std::vector<double>& x) const {
  const std::size_t n = lu_.rows();
  // Forward substitution (L has unit diagonal).
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu_(i, j) * x[j];
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) x[ii] -= lu_(ii, j) * x[j];
    x[ii] /= lu_(ii, ii);
  }
}

std::vector<double> Lu::solve(std::vector<double> b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw InvalidInputError("Lu::solve: size mismatch");
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[static_cast<std::size_t>(perm_[i])];
  substitute(x);
  return x;
}

Matrix Lu::solve(const Matrix& b) const {
  const std::size_t n = lu_.rows();
  if (b.rows() != n) throw InvalidInputError("Lu::solve: shape mismatch");
  Matrix x(n, b.cols());
  std::vector<double> col(n);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < n; ++r) col[r] = b(r, c);
    // csq-lint: allow(hot-path-alloc-transitive): per-column overload returns its solution vector by value; the matrix variant is not on the solver hot path
    const std::vector<double> xc = solve(col);
    for (std::size_t r = 0; r < n; ++r) x(r, c) = xc[r];
  }
  return x;
}

std::vector<double> Lu::solve_refined(const std::vector<double>& b) const {
  std::vector<double> x = solve(b);
  const std::size_t n = lu_.rows();
  // Residual r = b - A x, then the correction solve A dx = r.
  std::vector<double> r(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t j = 0; j < n; ++j) s -= a_(i, j) * x[j];
    r[i] = s;
  }
  const std::vector<double> dx = solve(std::move(r));
  for (std::size_t i = 0; i < n; ++i) x[i] += dx[i];
  return x;
}

double Lu::determinant() const {
  double d = sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

Matrix Lu::inverse() const {
  const std::size_t n = lu_.rows();
  Matrix inv(n, n);
  std::vector<double> x(n);
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t i = 0; i < n; ++i)
      x[i] = static_cast<std::size_t>(perm_[i]) == c ? 1.0 : 0.0;
    substitute(x);
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = x[r];
  }
  return inv;
}

double Lu::condition_estimate() const {
  if (cond_ >= 0.0) return cond_;
  // The matrices here are small, so the exact ||A^{-1}||_1 via n unit-vector
  // solves is affordable and beats a Hager-style estimate in reliability.
  // The columns stream through one reused buffer — the boundary stage calls
  // this once per analyze, so the n heap-allocating solves it used to make
  // showed up in the allocation profile.
  const std::size_t n = lu_.rows();
  std::vector<double> x(n);
  double inv_norm = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t i = 0; i < n; ++i)
      x[i] = static_cast<std::size_t>(perm_[i]) == c ? 1.0 : 0.0;
    substitute(x);
    double col = 0.0;
    for (std::size_t i = 0; i < n; ++i) col += std::abs(x[i]);
    inv_norm = std::max(inv_norm, col);
  }
  cond_ = norm1(a_) * inv_norm;
  return cond_;
}

double Lu::residual_max(const std::vector<double>& x, const std::vector<double>& b) const {
  const std::size_t n = lu_.rows();
  if (x.size() != n || b.size() != n)
    throw InvalidInputError("Lu::residual_max: size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t j = 0; j < n; ++j) s -= a_(i, j) * x[j];
    worst = std::max(worst, std::abs(s));
  }
  return worst;
}

std::vector<double> solve_left(const Matrix& a, const std::vector<double>& b) {
  return Lu(a.transpose()).solve(b);
}

Matrix inverse(const Matrix& a) { return Lu(a).inverse(); }

}  // namespace csq::linalg
