// Umbrella header for the cyclesteal library: analysis and simulation of
// task assignment with cycle stealing (Harchol-Balter et al., ICDCS 2003).
#pragma once

#include "analysis/cscq.h"          // IWYU pragma: export
#include "analysis/cscq_map.h"     // IWYU pragma: export
#include "analysis/cscq_ph.h"      // IWYU pragma: export
#include "analysis/csid.h"         // IWYU pragma: export
#include "analysis/dedicated.h"    // IWYU pragma: export
#include "analysis/resilient.h"    // IWYU pragma: export
#include "analysis/stability.h"    // IWYU pragma: export
#include "analysis/truncated_cscq.h"  // IWYU pragma: export
#include "core/config.h"           // IWYU pragma: export
#include "core/deadline.h"         // IWYU pragma: export
#include "core/faultpoint.h"       // IWYU pragma: export
#include "core/solver.h"           // IWYU pragma: export
#include "core/status.h"           // IWYU pragma: export
#include "core/sweep.h"            // IWYU pragma: export
#include "core/table.h"            // IWYU pragma: export
#include "dist/distribution.h"     // IWYU pragma: export
#include "durable/checkpoint.h"    // IWYU pragma: export
#include "durable/journal.h"       // IWYU pragma: export
#include "dist/moment_match.h"     // IWYU pragma: export
#include "dist/phase_type.h"       // IWYU pragma: export
#include "mg1/mg1.h"               // IWYU pragma: export
#include "mg1/mmc.h"               // IWYU pragma: export
#include "msim/multi_sim.h"        // IWYU pragma: export
#include "obs/obs.h"               // IWYU pragma: export
#include "obs/trace.h"             // IWYU pragma: export
#include "sim/simulator.h"         // IWYU pragma: export
