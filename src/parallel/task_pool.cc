#include "parallel/task_pool.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <stdexcept>

#include "core/status.h"
#include "obs/obs.h"

namespace csq::par {

namespace {

// Idle ladder bounds (see worker_loop): spin -> yield -> suspend.
constexpr int kSpinBound = 64;
constexpr int kYieldBound = 16;

// Adaptive steal backoff: after a full round of declines the requester
// pauses for `backoff` relax-spins, doubling (bounded) each dry round and
// resetting to the floor whenever work arrives. Keeps a two-worker pool
// from hammering each other's mailboxes while one long task finishes.
constexpr int kBackoffFloor = 8;
constexpr int kBackoffCap = 4096;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

inline std::uint64_t xorshift64(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

}  // namespace

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int resolve_threads(int threads) {
  if (threads == 0) return hardware_threads();
  return std::max(1, threads);
}

TaskPool::TaskPool(int threads) {
  if (threads < 1) throw InvalidInputError("TaskPool: need >= 1 thread");
  const std::size_t k = static_cast<std::size_t>(threads);
  workers_.reserve(k);
  for (int i = 0; i < threads; ++i) {
    // Mailbox capacity k: at most one outstanding request per other worker
    // (k - 1), so pushes can never find the mailbox full.
    auto w = std::make_unique<Worker>(k);
    w->victim_state = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1) + 1;
    workers_.push_back(std::move(w));
  }
  reply_slots_ = std::make_unique<SpscSlot<Reply>[]>(k * k);
  for (std::size_t i = 0; i < workers_.size(); ++i)
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
}

TaskPool::~TaskPool() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lk(wake_m_);
    wake_cv_.notify_all();
  }
  for (auto& w : workers_) w->thread.join();
  // A pool is only destroyed after every parallel_for returned, so every
  // queue is empty; tasks are plain values, so nothing to free either way.
}

// Relaxed loads throughout: the per-worker counters are monotonic
// statistics — the snapshot tolerates skew and orders against nothing.
PoolStats TaskPool::stats() const {
  PoolStats s;
  for (const auto& w : workers_) {
    s.tasks_executed += w->executed.load(std::memory_order_relaxed);
    s.steals += w->steals.load(std::memory_order_relaxed);
    s.suspensions += w->suspensions.load(std::memory_order_relaxed);
    s.steal_requests += w->steal_requests.load(std::memory_order_relaxed);
    s.declines += w->declines.load(std::memory_order_relaxed);
  }
  return s;
}

void TaskPool::notify_if_sleepers() {
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lk(wake_m_);
    wake_cv_.notify_all();
  }
}

void TaskPool::enqueue_external(RangeTask task) {
  pending_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lk(inject_m_);
    injected_.push_back(task);
  }
  notify_if_sleepers();
}

void TaskPool::push_local(std::size_t self, RangeTask task) {
  pending_.fetch_add(1, std::memory_order_seq_cst);
  workers_[self]->local.push_back(task);
  notify_if_sleepers();
}

void TaskPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                            std::size_t grain, const RunBudget& budget) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  Job job;
  job.fn = fn;
  job.grain = grain;
  job.budget = budget;
  // Relaxed: the job is published to the workers by enqueue_external's
  // queue synchronization; no worker reads `remaining` before that.
  job.remaining.store(n, std::memory_order_relaxed);
  enqueue_external(RangeTask{&job, 0, n});
  std::unique_lock<std::mutex> lk(job.m);
  job.done_cv.wait(lk, [&] { return job.done; });
  if (job.error) std::rethrow_exception(job.error);
}

void TaskPool::service_mailbox(std::size_t self) {
  Worker& me = *workers_[self];
  StealRequest req;
  while (me.mailbox.try_pop(req)) {
    Reply reply;
    const std::size_t have = me.local.size();
    if (have >= 2) {
      // Steal-half: hand over the oldest entries — the front of the stack
      // holds the largest not-yet-split ranges, so half the entries is
      // roughly half the remaining indices.
      const auto give = static_cast<std::ptrdiff_t>(have / 2);
      reply.tasks.assign(me.local.begin(), me.local.begin() + give);
      me.local.erase(me.local.begin(), me.local.begin() + give);
      CSQ_OBS_COUNT("pool.channel.grants");
    } else {
      // 0 or 1 tasks: keep what we have (an executing worker refills its
      // stack by splitting; the requester retries after its backoff).
      // Relaxed: monotonic stats counter, no ordering carried.
      me.declines.fetch_add(1, std::memory_order_relaxed);
      CSQ_OBS_COUNT("pool.channel.declines");
    }
    if (!reply_slot(self, req.requester).try_push(std::move(reply))) {
      // Unreachable by protocol (one outstanding request per pair, and the
      // requester always consumes the reply) — but if a reply were ever
      // dropped here, granted tasks must not be lost: put them back.
      Reply orphan;
      (void)reply_slot(self, req.requester).try_pop(orphan);
    }
  }
}

bool TaskPool::try_get_local_or_injected(std::size_t self, RangeTask& out) {
  Worker& me = *workers_[self];
  if (!me.local.empty()) {
    out = me.local.back();
    me.local.pop_back();
    pending_.fetch_sub(1, std::memory_order_seq_cst);
    return true;
  }
  std::lock_guard<std::mutex> lk(inject_m_);
  if (injected_.empty()) return false;
  out = injected_.back();
  injected_.pop_back();
  pending_.fetch_sub(1, std::memory_order_seq_cst);
  return true;
}

bool TaskPool::try_steal(std::size_t self) {
  Worker& me = *workers_[self];
  const std::size_t k = workers_.size();
  const std::size_t start = static_cast<std::size_t>(xorshift64(me.victim_state) % k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t victim = (start + i) % k;
    if (victim == self) continue;
    if (!workers_[victim]->mailbox.try_push(
            StealRequest{static_cast<std::uint32_t>(self)}))
      continue;  // mailbox full: victim is swamped with requests, try another
    // Relaxed: monotonic stats counter, no ordering carried.
    me.steal_requests.fetch_add(1, std::memory_order_relaxed);
    CSQ_OBS_COUNT("pool.channel.requests");
    notify_if_sleepers();  // the victim may be suspended; its predicate
                           // includes "my mailbox is nonempty"
    Reply reply;
    SpscSlot<Reply>& slot = reply_slot(victim, self);
    while (!slot.try_pop(reply)) {
      // seq_cst on stop_: the shutdown flag must totally order against the
      // sleepers_/mailbox protocol (see notify_if_sleepers) — a relaxed
      // read here could spin past a shutdown forever. Cold path: the loop
      // body is dominated by try_pop and service_mailbox, not this load.
      if (stop_.load(std::memory_order_seq_cst)) return false;
      // Answer our own mailbox while we wait (we are empty: declines),
      // so rings of mutually-waiting requesters always drain.
      service_mailbox(self);
      cpu_relax();
    }
    if (!reply.tasks.empty()) {
      // Transfer: pending_ stays untouched — the tasks were "in a queue"
      // on the victim and are "in a queue" here again.
      me.local.insert(me.local.end(), std::make_move_iterator(reply.tasks.begin()),
                      std::make_move_iterator(reply.tasks.end()));
      // Relaxed: monotonic stats counter, no ordering carried.
      me.steals.fetch_add(1, std::memory_order_relaxed);
      CSQ_OBS_COUNT("pool.tasks.stolen");
      return true;
    }
  }
  return false;
}

void TaskPool::execute(RangeTask task, std::size_t self) {
  Job* job = task.job;
  std::size_t begin = task.begin;
  std::size_t end = task.end;

  // Split: keep the lower half, expose the upper half to thieves.
  while (end - begin > job->grain) {
    const std::size_t mid = begin + (end - begin + 1) / 2;
    push_local(self, RangeTask{job, mid, end});
    end = mid;
  }
  // The stack just grew: answer any queued steal requests before diving
  // into the (possibly long) body, so thieves wait one split, not one task.
  service_mailbox(self);

  std::exception_ptr first_error;
  if (job->budget.interrupted()) {
    // Between-tasks budget observation: skip this range, surface the
    // interruption as the job's error. Already-executed indices keep their
    // results (the caller sees partial progress plus the typed error).
    try {
      job->budget.check("par::TaskPool::parallel_for");
    } catch (...) {
      first_error = std::current_exception();
    }
  } else {
    for (std::size_t i = begin; i < end; ++i) {
      try {
        job->fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
  }
  // Relaxed: monotonic stats counter, no ordering carried.
  workers_[self]->executed.fetch_add(1, std::memory_order_relaxed);
  CSQ_OBS_COUNT("pool.tasks.executed");

  if (first_error) {
    std::lock_guard<std::mutex> lk(job->m);
    if (!job->error) job->error = first_error;
  }
  // acq_rel: the release half publishes this range's side effects to
  // whichever worker observes the count hit zero; the acquire half makes
  // every earlier range's effects visible to the finisher before `done`.
  if (job->remaining.fetch_sub(end - begin, std::memory_order_acq_rel) == end - begin) {
    std::lock_guard<std::mutex> lk(job->m);
    job->done = true;
    job->done_cv.notify_all();
  }
}

void TaskPool::worker_loop(std::size_t self) {
  Worker& me = *workers_[self];
  int spins = 0;
  int yields = 0;
  int backoff = kBackoffFloor;
  while (!stop_.load(std::memory_order_seq_cst)) {
    service_mailbox(self);
    RangeTask task;
    if (try_get_local_or_injected(self, task)) {
      execute(task, self);
      spins = 0;
      yields = 0;
      backoff = kBackoffFloor;
      continue;
    }
    if (workers_.size() > 1 && pending_.load(std::memory_order_seq_cst) > 0) {
      if (try_steal(self)) {
        spins = 0;
        yields = 0;
        backoff = kBackoffFloor;
        continue;
      }
      // Every victim declined (they are splitting or finishing up): pause
      // before the next round so busy workers are not drowned in requests.
      CSQ_OBS_COUNT("pool.channel.backoffs");
      for (int p = 0; p < backoff && !stop_.load(std::memory_order_relaxed); ++p)
        cpu_relax();
      backoff = std::min(backoff * 2, kBackoffCap);
      continue;
    }
    if (++spins < kSpinBound) {
      cpu_relax();
      continue;
    }
    if (++yields < kYieldBound) {
      std::this_thread::yield();
      continue;
    }
    // Suspend. Registering as a sleeper (seq_cst) before re-checking
    // pending_ closes the race with producers (see header). The predicate
    // includes the mailbox so a steal request always wakes its victim.
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lk(wake_m_);
      if (pending_.load(std::memory_order_seq_cst) == 0 &&
          !me.mailbox.maybe_nonempty() && !stop_.load(std::memory_order_seq_cst)) {
        me.suspensions.fetch_add(1, std::memory_order_relaxed);
        CSQ_OBS_COUNT("pool.workers.suspended");
        wake_cv_.wait(lk, [&] {
          return stop_.load(std::memory_order_seq_cst) ||
                 pending_.load(std::memory_order_seq_cst) > 0 ||
                 me.mailbox.maybe_nonempty();
        });
      }
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    spins = 0;
    yields = 0;
    backoff = kBackoffFloor;
  }
  // Shutdown: any requester still waiting on a reply checks stop_ itself;
  // leftover mailbox entries need no answer once stop_ is set.
}

TaskPool& TaskPool::shared(int threads) {
  if (threads < 2)
    throw InvalidInputError("TaskPool::shared: needs >= 2 threads (run inline otherwise)");
  static std::mutex m;
  static std::map<int, std::unique_ptr<TaskPool>> pools;
  std::lock_guard<std::mutex> lk(m);
  auto& slot = pools[threads];
  if (!slot) slot = std::make_unique<TaskPool>(threads);
  return *slot;
}

void parallel_for(std::size_t n, int threads, const std::function<void(std::size_t)>& fn,
                  std::size_t grain, const RunBudget& budget) {
  threads = resolve_threads(threads);
  if (threads <= 1 || n <= 1) {
    // Inline path: same every-index-attempted / first-exception contract as
    // the pool, so switching thread counts never changes semantics. The
    // budget is observed between indices, mirroring the pool's
    // between-tasks observation.
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < n; ++i) {
      if (budget.interrupted()) {
        try {
          budget.check("par::parallel_for");
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
        break;
      }
      try {
        fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  TaskPool::shared(threads).parallel_for(n, fn, grain, budget);
}

}  // namespace csq::par
