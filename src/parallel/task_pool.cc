#include "parallel/task_pool.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "core/status.h"
#include "obs/obs.h"

namespace csq::par {

namespace {

// Backoff ladder bounds (see worker_loop): spin -> yield -> suspend.
constexpr int kSpinBound = 64;
constexpr int kYieldBound = 16;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

inline std::uint64_t xorshift64(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

}  // namespace

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int resolve_threads(int threads) {
  if (threads == 0) return hardware_threads();
  return std::max(1, threads);
}

TaskPool::TaskPool(int threads) {
  if (threads < 1) throw InvalidInputError("TaskPool: need >= 1 thread");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    auto w = std::make_unique<Worker>();
    w->victim_state = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1) + 1;
    workers_.push_back(std::move(w));
  }
  for (std::size_t i = 0; i < workers_.size(); ++i)
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
}

TaskPool::~TaskPool() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lk(wake_m_);
    wake_cv_.notify_all();
  }
  for (auto& w : workers_) w->thread.join();
  // A pool is only destroyed after every parallel_for returned, so the
  // queues are empty; drain defensively anyway.
  for (auto& w : workers_)
    while (RangeTask* t = w->deque.pop()) delete t;
  for (RangeTask* t : injected_) delete t;
}

PoolStats TaskPool::stats() const {
  PoolStats s;
  for (const auto& w : workers_) {
    s.tasks_executed += w->executed;
    s.steals += w->steals;
    s.suspensions += w->suspensions;
  }
  return s;
}

void TaskPool::notify_if_sleepers() {
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lk(wake_m_);
    wake_cv_.notify_all();
  }
}

void TaskPool::enqueue_external(RangeTask* task) {
  pending_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lk(inject_m_);
    injected_.push_back(task);
  }
  notify_if_sleepers();
}

void TaskPool::push_local(std::size_t self, RangeTask* task) {
  pending_.fetch_add(1, std::memory_order_seq_cst);
  workers_[self]->deque.push(task);
  notify_if_sleepers();
}

void TaskPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                            std::size_t grain, const RunBudget& budget) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  Job job;
  job.fn = fn;
  job.grain = grain;
  job.budget = budget;
  job.remaining.store(n, std::memory_order_relaxed);
  enqueue_external(new RangeTask{&job, 0, n});
  std::unique_lock<std::mutex> lk(job.m);
  job.done_cv.wait(lk, [&] { return job.done; });
  if (job.error) std::rethrow_exception(job.error);
}

TaskPool::RangeTask* TaskPool::find_task(std::size_t self) {
  Worker& me = *workers_[self];
  if (RangeTask* t = me.deque.pop()) {
    pending_.fetch_sub(1, std::memory_order_seq_cst);
    return t;
  }
  {
    std::lock_guard<std::mutex> lk(inject_m_);
    if (!injected_.empty()) {
      RangeTask* t = injected_.back();
      injected_.pop_back();
      pending_.fetch_sub(1, std::memory_order_seq_cst);
      return t;
    }
  }
  // Explore: one randomized pass over the other workers' deques.
  const std::size_t k = workers_.size();
  const std::size_t start = static_cast<std::size_t>(xorshift64(me.victim_state) % k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t victim = (start + i) % k;
    if (victim == self) continue;
    if (RangeTask* t = workers_[victim]->deque.steal()) {
      pending_.fetch_sub(1, std::memory_order_seq_cst);
      ++me.steals;
      CSQ_OBS_COUNT("pool.tasks.stolen");
      return t;
    }
  }
  return nullptr;
}

void TaskPool::execute(RangeTask* task, std::size_t self) {
  Job* job = task->job;
  std::size_t begin = task->begin;
  std::size_t end = task->end;
  delete task;

  // Split: keep the lower half, expose the upper half to thieves.
  while (end - begin > job->grain) {
    const std::size_t mid = begin + (end - begin + 1) / 2;
    push_local(self, new RangeTask{job, mid, end});
    end = mid;
  }

  std::exception_ptr first_error;
  if (job->budget.interrupted()) {
    // Between-tasks budget observation: skip this range, surface the
    // interruption as the job's error. Already-executed indices keep their
    // results (the caller sees partial progress plus the typed error).
    try {
      job->budget.check("par::TaskPool::parallel_for");
    } catch (...) {
      first_error = std::current_exception();
    }
  } else {
    for (std::size_t i = begin; i < end; ++i) {
      try {
        job->fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
  }
  ++workers_[self]->executed;
  CSQ_OBS_COUNT("pool.tasks.executed");

  if (first_error) {
    std::lock_guard<std::mutex> lk(job->m);
    if (!job->error) job->error = first_error;
  }
  if (job->remaining.fetch_sub(end - begin, std::memory_order_acq_rel) == end - begin) {
    std::lock_guard<std::mutex> lk(job->m);
    job->done = true;
    job->done_cv.notify_all();
  }
}

void TaskPool::worker_loop(std::size_t self) {
  Worker& me = *workers_[self];
  int spins = 0;
  int yields = 0;
  while (!stop_.load(std::memory_order_seq_cst)) {
    if (RangeTask* t = find_task(self)) {
      execute(t, self);
      spins = 0;
      yields = 0;
      continue;
    }
    if (++spins < kSpinBound) {
      cpu_relax();
      continue;
    }
    if (++yields < kYieldBound) {
      std::this_thread::yield();
      continue;
    }
    // Suspend. Registering as a sleeper (seq_cst) before re-checking
    // pending_ closes the race with producers (see header).
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lk(wake_m_);
      if (pending_.load(std::memory_order_seq_cst) == 0 &&
          !stop_.load(std::memory_order_seq_cst)) {
        ++me.suspensions;
        CSQ_OBS_COUNT("pool.workers.suspended");
        wake_cv_.wait(lk, [&] {
          return stop_.load(std::memory_order_seq_cst) ||
                 pending_.load(std::memory_order_seq_cst) > 0;
        });
      }
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    spins = 0;
    yields = 0;
  }
}

TaskPool& TaskPool::shared(int threads) {
  if (threads < 2)
    throw InvalidInputError("TaskPool::shared: needs >= 2 threads (run inline otherwise)");
  static std::mutex m;
  static std::map<int, std::unique_ptr<TaskPool>> pools;
  std::lock_guard<std::mutex> lk(m);
  auto& slot = pools[threads];
  if (!slot) slot = std::make_unique<TaskPool>(threads);
  return *slot;
}

void parallel_for(std::size_t n, int threads, const std::function<void(std::size_t)>& fn,
                  std::size_t grain, const RunBudget& budget) {
  threads = resolve_threads(threads);
  if (threads <= 1 || n <= 1) {
    // Inline path: same every-index-attempted / first-exception contract as
    // the pool, so switching thread counts never changes semantics. The
    // budget is observed between indices, mirroring the pool's
    // between-tasks observation.
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < n; ++i) {
      if (budget.interrupted()) {
        try {
          budget.check("par::parallel_for");
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
        break;
      }
      try {
        fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  TaskPool::shared(threads).parallel_for(n, fn, grain, budget);
}

}  // namespace csq::par
