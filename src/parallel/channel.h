// Bounded lock-free channels for the pool's steal-request protocol.
//
// Two shapes, matched to how task_pool.cc uses them:
//
//   MpscChannel<T>  — many producers, ONE consumer. Each worker owns one as
//                     its steal-request mailbox: any other worker may post a
//                     request; only the owner drains it. Vyukov bounded-
//                     queue slot sequencing: a producer claims a slot with
//                     one CAS on the tail ticket, publishes the value with a
//                     release store of the slot's sequence number; the
//                     consumer needs no atomics on its head index at all.
//
//   SpscSlot<T>     — capacity-one rendezvous, ONE producer, ONE consumer.
//                     One per (victim, requester) worker pair carries the
//                     reply to a steal request (a batch of tasks, or a
//                     decline). The protocol guarantees at most one
//                     outstanding request per pair, so capacity one is not a
//                     restriction — it is the proof that replies can never
//                     collide.
//
// Both are TSan-clean by construction: every value handoff is ordered by a
// release store of the slot state and the matching acquire load on the
// other side. No spurious failures: try_* return false only when the
// channel is genuinely full/empty at the linearization point.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace csq::par {

// Many-producer / single-consumer bounded channel. Capacity is fixed at
// construction; try_push fails (returns false) when full. The single
// consumer calls try_pop / maybe_nonempty; calling them from two threads
// concurrently is a contract violation.
template <typename T>
class MpscChannel {
 public:
  explicit MpscChannel(std::size_t capacity) : slots_(capacity) {
    // Relaxed: single-threaded construction — nobody races the initial
    // sequence numbers, publication happens when the channel is shared.
    for (std::size_t i = 0; i < slots_.size(); ++i)
      slots_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpscChannel(const MpscChannel&) = delete;
  MpscChannel& operator=(const MpscChannel&) = delete;

  // Producer side. Claims a ticket with CAS, then publishes with a release
  // store — after which exactly one consumer pop can observe the value.
  bool try_push(T value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos % slots_.size()];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      if (seq == pos) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed))
          break;  // ticket claimed; pos unchanged by the failed-CAS reload
      } else if (seq < pos) {
        return false;  // slot still holds a value one lap behind: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);  // lost a race; retry
      }
    }
    Slot& slot = slots_[pos % slots_.size()];
    slot.value = std::move(value);
    slot.seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. head_ is plain: only the single consumer touches it.
  // Acquire on seq pairs with the producer's release publish, making the
  // slot value visible; the release store below hands the slot back.
  bool try_pop(T& out) {
    Slot& slot = slots_[head_ % slots_.size()];
    if (slot.seq.load(std::memory_order_acquire) != head_ + 1) return false;
    out = std::move(slot.value);
    slot.seq.store(head_ + slots_.size(), std::memory_order_release);
    ++head_;
    return true;
  }

  // Cheap consumer-side peek (one acquire load); may race with concurrent
  // pushes, so false only means "empty at the moment of the load".
  [[nodiscard]] bool maybe_nonempty() const {
    const Slot& slot = slots_[head_ % slots_.size()];
    return slot.seq.load(std::memory_order_acquire) == head_ + 1;
  }

 private:
  struct Slot {
    std::atomic<std::size_t> seq{0};
    T value{};
  };
  std::vector<Slot> slots_;
  std::atomic<std::size_t> tail_{0};  // producers' ticket counter
  std::size_t head_ = 0;              // single consumer only
};

// Single-producer / single-consumer capacity-one channel. The producer may
// push only after the previous value was consumed (enforced here by
// returning false, guaranteed never to trigger by the pool's one-
// outstanding-request-per-pair protocol).
template <typename T>
class SpscSlot {
 public:
  SpscSlot() = default;
  SpscSlot(const SpscSlot&) = delete;
  SpscSlot& operator=(const SpscSlot&) = delete;

  // full_ is the SPSC hand-off flag: release on store publishes value_,
  // acquire on load makes it visible — classic message-passing pairing.
  bool try_push(T value) {
    if (full_.load(std::memory_order_acquire)) return false;
    value_ = std::move(value);
    full_.store(true, std::memory_order_release);
    return true;
  }

  // Mirror of try_push: acquire sees the published value, release returns
  // the empty slot to the producer.
  bool try_pop(T& out) {
    if (!full_.load(std::memory_order_acquire)) return false;
    out = std::move(value_);
    full_.store(false, std::memory_order_release);
    return true;
  }

 private:
  std::atomic<bool> full_{false};
  T value_{};
};

}  // namespace csq::par
