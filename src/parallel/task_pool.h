// Dependency-free work-stealing thread pool, channel-based.
//
// N workers, each owning a PRIVATE task stack — no concurrent deque, so the
// owner's push/pop are plain vector operations with no atomics or fences on
// the hot path. Work migrates only by message passing (parallel/channel.h):
// an idle worker posts a steal request into the victim's MPSC mailbox and
// waits on the (victim, requester) SPSC reply slot; the victim answers
// between tasks with either half of its stack (steal-half, oldest — i.e.
// largest — ranges first) or a decline. A requester whose whole sweep of
// victims declined backs off with an adaptive exponential pause before
// retrying, and falls through spin -> yield -> condition-variable suspend
// once nothing is pending anywhere, so an idle pool costs nothing.
//
// External callers submit index ranges through parallel_for(); a worker
// executing a range repeatedly splits off its upper half into its own stack
// until the range is at most `grain` wide, so steal-half hands thieves the
// large unsplit ranges.
//
// The pool never touches the caller's thread: parallel_for() blocks until
// every index has been attempted. Exceptions thrown by the body are caught
// per index; the first one is rethrown to the caller after the whole range
// has been attempted (per-index isolation — one bad index does not stop the
// others). Results written to out[i] by index are therefore bit-identical
// regardless of worker count or steal schedule.
//
// Nested parallel_for calls from inside a worker are not supported (the
// inner call would block a worker on work only workers can run); the
// library's parallel entry points (core/sweep, sim, msim) are all top-level.
//
// Budgets: parallel_for accepts a RunBudget; workers observe it *between*
// range tasks (one check per task execution, so worst-case overshoot is one
// grain-sized range). Once the budget is interrupted, unclaimed ranges are
// skipped and the matching csq::CancelledError / csq::DeadlineExceededError
// is rethrown after the job drains — indices already attempted keep their
// results. Which indices were attempted under an expiring deadline is
// timing-dependent; pass an inert budget for bit-identical runs.
//
// Liveness: every waiting state answers its own mailbox. A busy victim
// replies between tasks, an idle requester declines while it waits for its
// own reply, and a sleeping worker is woken by the requester's notify (the
// suspend predicate includes "my mailbox is nonempty"), so request cycles
// always drain and no steal request is ever lost.
//
// Throws csq::InvalidInputError (core/status.h) on malformed arguments.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/deadline.h"
#include "parallel/channel.h"

namespace csq::par {

// Cumulative activity counters (monotone; read with stats()).
struct PoolStats {
  std::uint64_t tasks_executed = 0;  // range tasks run (leaves after splits)
  std::uint64_t steals = 0;          // granted steal batches received
  std::uint64_t suspensions = 0;     // times a worker fully backed off to the CV
  std::uint64_t steal_requests = 0;  // requests posted to a victim's mailbox
  std::uint64_t declines = 0;        // requests answered with no tasks
};

class TaskPool {
 public:
  // Spawns `threads` workers (>= 1). The caller's thread is never used.
  explicit TaskPool(int threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  [[nodiscard]] int threads() const { return static_cast<int>(workers_.size()); }

  // Run fn(i) for every i in [0, n), splitting into subranges of at most
  // `grain` indices. Blocks until all indices have been attempted; the first
  // exception thrown by fn (if any) is rethrown here. Thread-safe: multiple
  // threads may submit jobs concurrently.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1, const RunBudget& budget = {});

  [[nodiscard]] PoolStats stats() const;

  // Process-wide pool of exactly `threads` workers, created on first use and
  // cached per thread count (idle pools are suspended, so keeping a few
  // sizes alive is free). threads must be >= 2 — single-threaded callers
  // should run inline instead (see par::parallel_for).
  static TaskPool& shared(int threads);

 private:
  struct Job {
    std::function<void(std::size_t)> fn;
    std::size_t grain = 1;
    RunBudget budget;  // observed by workers between range tasks
    std::atomic<std::size_t> remaining{0};  // indices not yet attempted
    std::mutex m;
    std::condition_variable done_cv;
    bool done = false;
    std::exception_ptr error;  // first failure, guarded by m
  };

  // Plain value: tasks live inside the owning worker's private stack (or a
  // reply batch in flight) — never on the heap individually.
  struct RangeTask {
    Job* job = nullptr;
    std::size_t begin = 0, end = 0;
  };

  // A steal request names the worker to reply to.
  struct StealRequest {
    std::uint32_t requester = 0;
  };

  // Reply to a steal request: a batch of tasks (grant) or empty (decline).
  struct Reply {
    std::vector<RangeTask> tasks;
  };

  struct Worker {
    explicit Worker(std::size_t mailbox_capacity) : mailbox(mailbox_capacity) {}

    std::vector<RangeTask> local;  // private LIFO stack; front = largest ranges
    MpscChannel<StealRequest> mailbox;
    std::thread thread;
    std::uint64_t victim_state = 0;  // xorshift state for victim selection
    // Activity counters: written by the owner only, but read live by
    // stats() from any thread — relaxed atomics keep that well-defined.
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> suspensions{0};
    std::atomic<std::uint64_t> steal_requests{0};
    std::atomic<std::uint64_t> declines{0};
  };

  void worker_loop(std::size_t self);
  // Answer every queued steal request: grant half the private stack (the
  // oldest entries) or decline. Called between tasks and from every wait
  // loop, so requests are never left hanging.
  void service_mailbox(std::size_t self);
  bool try_get_local_or_injected(std::size_t self, RangeTask& out);
  // Post one steal request and wait for the reply; true if tasks arrived.
  bool try_steal(std::size_t self);
  void execute(RangeTask task, std::size_t self);
  void enqueue_external(RangeTask task);
  void push_local(std::size_t self, RangeTask task);
  void notify_if_sleepers();

  [[nodiscard]] SpscSlot<Reply>& reply_slot(std::size_t victim, std::size_t requester) {
    return reply_slots_[victim * workers_.size() + requester];
  }

  std::vector<std::unique_ptr<Worker>> workers_;
  // (victim, requester) reply matrix; see parallel/channel.h for why
  // capacity one per pair suffices.
  std::unique_ptr<SpscSlot<Reply>[]> reply_slots_;
  std::atomic<bool> stop_{false};

  // External (non-worker) submissions; workers drain it when their own stack
  // is empty. Mutex-protected: submissions are rare (one per parallel_for).
  std::mutex inject_m_;
  std::vector<RangeTask> injected_;

  // Suspend/wake machinery. pending_ counts tasks sitting in some queue (not
  // yet claimed); its seq_cst pairing with sleepers_ makes the "new task vs
  // worker going to sleep" race safe (Dekker-style: either the producer sees
  // the sleeper and notifies, or the sleeper sees pending_ > 0 and stays
  // up). Steal transfers leave pending_ untouched — the tasks stay "in some
  // queue" end to end, so a granted batch in flight still holds its
  // requester awake.
  std::atomic<std::int64_t> pending_{0};
  std::atomic<int> sleepers_{0};
  std::mutex wake_m_;
  std::condition_variable wake_cv_;
};

// Number of hardware threads (>= 1).
[[nodiscard]] int hardware_threads();

// Resolve a user-facing thread-count option: 0 means "all hardware threads",
// anything else is clamped to >= 1.
[[nodiscard]] int resolve_threads(int threads);

// Facade: run fn(i) for i in [0, n). threads <= 1 runs inline on the calling
// thread (no pool, no synchronization — the deterministic baseline);
// threads >= 2 uses TaskPool::shared(threads). Both paths attempt every
// index and rethrow the first exception afterwards, so error semantics and
// by-index results do not depend on the thread count.
void parallel_for(std::size_t n, int threads, const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1, const RunBudget& budget = {});

// Facade: out[i] = f(i) for i in [0, n); ordering of the result vector is by
// index regardless of execution order. R must be default-constructible.
template <typename F>
[[nodiscard]] auto parallel_map(std::size_t n, int threads, F&& f, std::size_t grain = 1,
                                const RunBudget& budget = {}) {
  using R = std::decay_t<decltype(f(std::size_t{0}))>;
  std::vector<R> out(n);
  parallel_for(n, threads, [&](std::size_t i) { out[i] = f(i); }, grain, budget);
  return out;
}

}  // namespace csq::par
