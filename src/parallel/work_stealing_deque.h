// Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005).
//
// One owner thread pushes and pops at the bottom (LIFO, maximizing locality
// for recursively split ranges); any number of thief threads steal from the
// top (FIFO, taking the largest unsplit ranges and minimizing contention
// with the owner). Lock-free: the only synchronization is a CAS on `top_`
// that at most one of {owner on the last element, one thief} can win.
//
// Memory ordering is deliberately the sequentially consistent variant of the
// algorithm rather than the fence-based weak-memory formulation (Lê et al.,
// PPoPP 2013): ThreadSanitizer does not model standalone
// atomic_thread_fence, so the fence-based version reports false races, and
// at this pool's task granularity (sweep points and simulation replications,
// microseconds to seconds each) the cost of seq_cst on two uncontended
// atomics is unmeasurable. Ring slots are relaxed atomics — they are racily
// re-read by thieves and validated by the CAS on `top_`.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace csq::par {

template <typename T>
class WorkStealingDeque {
  static_assert(std::is_pointer_v<T>, "deque elements must be pointers");

 public:
  // Relaxed in the constructor/destructor: both run single-threaded — the
  // deque is published to thieves (and quiesced again) by the pool.
  explicit WorkStealingDeque(std::int64_t capacity = 64) {
    ring_.store(new Ring(capacity), std::memory_order_relaxed);
  }
  ~WorkStealingDeque() {
    // Relaxed: destruction is single-threaded (see above).
    delete ring_.load(std::memory_order_relaxed);
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  // Owner only. Never fails; grows the ring when full.
  // Chase-Lev orderings: bottom_ is owner-written so its load is relaxed;
  // the acquire on top_ pairs with thieves' CAS-release; the slot store is
  // relaxed because the seq_cst store to bottom_ publishes it — that store
  // also keeps the owner/thief race on the last element sound (it must be
  // totally ordered against steal()'s top_/bottom_ accesses).
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* r = ring_.load(std::memory_order_relaxed);
    if (b - t >= r->capacity) r = grow(r, t, b);
    r->slot(b).store(item, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  // Owner only. nullptr when empty.
  T pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* r = ring_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // already empty; restore
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T item = r->slot(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race with thieves for it via the CAS on top_.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed))
        item = nullptr;  // a thief got there first
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  // Any thread. nullptr when empty or when the steal race was lost.
  T steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Ring* r = ring_.load(std::memory_order_acquire);
    T item = r->slot(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return nullptr;
    return item;
  }

  // Racy size estimate (monitoring / victim selection only).
  [[nodiscard]] std::int64_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

 private:
  struct Ring {
    explicit Ring(std::int64_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T>[static_cast<std::size_t>(cap)]) {}
    std::atomic<T>& slot(std::int64_t i) { return slots[static_cast<std::size_t>(i & mask)]; }

    std::int64_t capacity;  // power of two
    std::int64_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;
  };

  // Owner only. Doubles capacity, copying live entries [t, b). The old ring
  // is retired, not freed: a concurrent thief that loaded it before the
  // swap may still read a slot from it, and keeping retired rings alive
  // until destruction is the simplest safe reclamation.
  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    Ring* bigger = new Ring(old->capacity * 2);
    // Relaxed slot copies: only the owner writes slots, and the release
    // store of ring_ below publishes the filled ring to thieves.
    for (std::int64_t i = t; i < b; ++i)
      bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    ring_.store(bigger, std::memory_order_release);
    retired_.emplace_back(old);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> ring_{nullptr};
  std::vector<std::unique_ptr<Ring>> retired_;  // owner-only
};

}  // namespace csq::par
