// Service-time distributions: raw-moment bookkeeping plus sampling.
//
// The analytic machinery consumes only the first three raw moments (and, for
// short jobs, the exponential rate); the discrete-event simulator consumes
// samples. Both views live behind the Distribution interface so a single
// SystemConfig drives analysis and simulation alike.
//
// Throws csq::InvalidInputError (core/status.h) on malformed arguments.
#pragma once

#include <memory>
#include <random>
#include <stdexcept>
#include <string>

namespace csq::dist {

// First three raw moments of a nonnegative random variable.
struct Moments {
  double m1 = 0.0;
  double m2 = 0.0;
  double m3 = 0.0;

  [[nodiscard]] double mean() const { return m1; }
  [[nodiscard]] double variance() const { return m2 - m1 * m1; }
  // Squared coefficient of variation C^2 = Var/mean^2.
  [[nodiscard]] double scv() const { return variance() / (m1 * m1); }

  // Moments of an exponential with the given mean: k! mean^k.
  static Moments exponential(double mean) {
    return {mean, 2.0 * mean * mean, 6.0 * mean * mean * mean};
  }
};

using Rng = std::mt19937_64;

class Distribution {
 public:
  virtual ~Distribution() = default;

  [[nodiscard]] virtual double sample(Rng& rng) const = 0;
  // k in {1,2,3}.
  [[nodiscard]] virtual double moment(int k) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] double mean() const { return moment(1); }
  [[nodiscard]] Moments moments() const { return {moment(1), moment(2), moment(3)}; }
  [[nodiscard]] double scv() const { return moments().scv(); }
};

using DistPtr = std::shared_ptr<const Distribution>;

// Point mass at `value`.
class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value);
  [[nodiscard]] double sample(Rng&) const override { return value_; }
  [[nodiscard]] double moment(int k) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double value_;
};

// Uniform on [lo, hi].
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double moment(int k) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double lo_, hi_;
};

// Bounded Pareto on [lo, hi] with shape alpha — the canonical heavy-tailed
// job-size model in the task-assignment literature (Harchol-Balter et al.).
class BoundedPareto final : public Distribution {
 public:
  BoundedPareto(double lo, double hi, double alpha);
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double moment(int k) const override;
  [[nodiscard]] std::string name() const override;

  // Bounded Pareto with the requested mean: solves for `lo` given hi, alpha.
  static BoundedPareto with_mean(double mean, double hi, double alpha);

 private:
  double lo_, hi_, alpha_;
};

// Lognormal parameterized by mean and squared coefficient of variation.
class LogNormal final : public Distribution {
 public:
  LogNormal(double mean, double scv);
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double moment(int k) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double mu_, sigma_;
};

}  // namespace csq::dist
