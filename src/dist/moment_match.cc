#include "dist/moment_match.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>

#include "core/status.h"
#include "obs/obs.h"

namespace csq::dist {

namespace {

// Memo key: the exact bit patterns of the target moments plus the requested
// moment count. Keying on bits (not values) keeps the cache a pure
// memoization — two calls hit the same entry only when fit_ph would have
// performed the identical computation, so cached and fresh results are
// indistinguishable (fit_ph is deterministic in its inputs).
struct FitKey {
  std::uint64_t m1, m2, m3;
  int max_moments;

  bool operator==(const FitKey&) const = default;
};

struct FitKeyHash {
  std::size_t operator()(const FitKey& k) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ull ^ static_cast<std::uint64_t>(k.max_moments);
    for (std::uint64_t v : {k.m1, k.m2, k.m3}) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h *= 0xff51afd7ed558ccdull;
    }
    return static_cast<std::size_t>(h);
  }
};

struct FitEntry {
  PhaseType ph;
  FitReport report;
};

// The 3-moment Coxian fit runs a 4096-point grid scan plus bisection
// (~17 us), and a sweep or batch re-fits the same few distributions for
// every config. thread_local keeps the cache lock-free; the size cap bounds
// memory on adversarial workloads (clearing is cheap and merely re-pays one
// fit per distinct key).
constexpr std::size_t kFitCacheCap = 4096;

std::unordered_map<FitKey, FitEntry, FitKeyHash>& fit_cache() {
  thread_local std::unordered_map<FitKey, FitEntry, FitKeyHash> cache;
  return cache;
}

// g(x) from the reduced 3-moment Coxian-2 system; see fit_coxian2_3moments.
double reduced_g(double x, const Moments& m, double* y_out, double* p_out) {
  const double denom = m.m1 - x;
  const double y = (m.m2 / 2.0 - x * x) / denom - x;
  const double p = denom / y;
  if (y_out) *y_out = y;
  if (p_out) *p_out = p;
  return x * x * x + denom * (x * x + x * y + y * y) - m.m3 / 6.0;
}

bool valid_root(double x, double y, double p, double m1) {
  return x > 0.0 && x < m1 && y > 0.0 && p > 0.0 && p <= 1.0 + 1e-12;
}

}  // namespace

bool fit_coxian2_3moments(const Moments& m, double* mu1, double* mu2, double* p_out) {
  // Coxian-2 with sojourn means x = 1/mu1, y = 1/mu2 and continuation
  // probability p satisfies
  //   m1   = x + p y
  //   m2/2 = x^2 + p y (x + y)
  //   m3/6 = x^3 + p y (x^2 + x y + y^2).
  // Eliminating p and y leaves a single equation g(x) = 0 on (0, m1).
  const double m1 = m.m1;
  if (m1 <= 0.0) return false;
  const int kGrid = 4096;
  double prev_x = m1 * (1.0 / (kGrid + 1));
  double prev_g = reduced_g(prev_x, m, nullptr, nullptr);
  for (int i = 2; i <= kGrid; ++i) {
    const double x = m1 * (static_cast<double>(i) / (kGrid + 1));
    const double g = reduced_g(x, m, nullptr, nullptr);
    if (std::isfinite(prev_g) && std::isfinite(g) && prev_g * g <= 0.0) {
      // Bisect on [prev_x, x].
      double lo = prev_x, hi = x, glo = prev_g;
      for (int it = 0; it < 200; ++it) {
        const double mid = 0.5 * (lo + hi);
        const double gm = reduced_g(mid, m, nullptr, nullptr);
        if (glo * gm <= 0.0) {
          hi = mid;
        } else {
          lo = mid;
          glo = gm;
        }
      }
      double y = 0.0, p = 0.0;
      const double x_root = 0.5 * (lo + hi);
      reduced_g(x_root, m, &y, &p);
      if (valid_root(x_root, y, p, m1)) {
        *mu1 = 1.0 / x_root;
        *mu2 = 1.0 / y;
        *p_out = std::min(p, 1.0);
        return true;
      }
    }
    prev_x = x;
    prev_g = g;
  }
  return false;
}

PhaseType fit_mixed_erlang(double mean, double scv) {
  if (mean <= 0.0 || scv <= 0.0 || scv > 1.0 + 1e-12)
    throw InvalidInputError("fit_mixed_erlang: need mean > 0, 0 < scv <= 1");
  if (scv > 1.0 - 1e-9) return PhaseType::exponential(1.0 / mean);
  // Tijms: pick k with 1/k <= scv <= 1/(k-1); mix Erlang(k-1) and Erlang(k).
  const int k = static_cast<int>(std::ceil(1.0 / scv));
  const double kd = k;
  const double p =
      (1.0 / (1.0 + scv)) * (kd * scv - std::sqrt(kd * (1.0 + scv) - kd * kd * scv));
  const double rate = (kd - p) / mean;
  // Build as a single Erlang(k) chain entered at stage 2 with probability p
  // (shortening it to k-1 stages).
  const auto n = static_cast<std::size_t>(k);
  std::vector<double> alpha(n, 0.0);
  alpha[0] = 1.0 - p;
  alpha[1] = p;
  linalg::Matrix t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    t(i, i) = -rate;
    if (i + 1 < n) t(i, i + 1) = rate;
  }
  return {std::move(alpha), std::move(t)};
}

PhaseType fit_ph(const Moments& target, int max_moments, FitReport* report) {
  if (report) *report = FitReport{max_moments, 1, false};
  if (target.m1 <= 0.0) throw InvalidInputError("fit_ph: mean must be positive");
  if (max_moments < 1 || max_moments > 3)
    throw InvalidInputError("fit_ph: max_moments must be 1..3");

  const FitKey key{std::bit_cast<std::uint64_t>(target.m1),
                   std::bit_cast<std::uint64_t>(target.m2),
                   std::bit_cast<std::uint64_t>(target.m3), max_moments};
  auto& cache = fit_cache();
  if (const auto it = cache.find(key); it != cache.end()) {
    CSQ_OBS_COUNT("dist.fit.cache_hits");
    if (report) *report = it->second.report;
    return it->second.ph;
  }
  CSQ_OBS_COUNT("dist.fit.cache_misses");

  FitReport local_report{max_moments, 1, false};
  const auto memoize = [&](PhaseType ph) -> PhaseType {
    if (cache.size() >= kFitCacheCap) cache.clear();
    cache.emplace(key, FitEntry{ph, local_report});
    if (report) *report = local_report;
    return ph;
  };

  if (max_moments == 1) {
    local_report.moments_matched = 1;
    return memoize(PhaseType::exponential(1.0 / target.m1));
  }

  const double scv = target.scv();
  if (scv < -1e-9) throw InvalidInputError("fit_ph: m2 < m1^2 is not realizable");

  const auto two_moment = [&]() -> PhaseType {
    local_report.moments_matched = 2;
    if (std::abs(scv - 1.0) < 1e-9) {
      local_report.moments_matched = 3;  // exponential matches all of them
      return PhaseType::exponential(1.0 / target.m1);
    }
    if (scv < 1.0) return fit_mixed_erlang(target.m1, std::max(scv, 1e-9));
    return PhaseType::coxian_mean_scv(target.m1, scv);
  };

  if (max_moments == 2) return memoize(two_moment());

  double mu1 = 0, mu2 = 0, p = 0;
  if (fit_coxian2_3moments(target, &mu1, &mu2, &p)) {
    local_report.moments_matched = 3;
    return memoize(PhaseType::coxian({mu1, mu2}, {p}));
  }
  local_report.used_fallback = true;
  return memoize(two_moment());
}

}  // namespace csq::dist
