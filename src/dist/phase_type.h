// Continuous phase-type (PH) distributions: absorption time of a CTMC with
// initial vector alpha and subgenerator T. Covers exponential, Erlang,
// hyperexponential and Coxian as named constructors; arbitrary (alpha, T)
// accepted with validation.
//
// Throws csq::InvalidInputError (core/status.h) on malformed arguments.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dist/distribution.h"
#include "jets/jet.h"
#include "linalg/matrix.h"

namespace csq::dist {

class PhaseType final : public Distribution {
 public:
  // General constructor: alpha must be a probability vector over the phases,
  // T a valid subgenerator (negative diagonal, nonnegative off-diagonal,
  // nonpositive row sums with at least one strictly negative "exit").
  // Throws csq::InvalidInputError on malformed inputs and
  // csq::IllConditionedError when the moment solve against T degenerates.
  PhaseType(std::vector<double> alpha, linalg::Matrix t);

  static PhaseType exponential(double rate);
  static PhaseType erlang(int k, double rate);
  // Mixture of exponentials: with probability probs[i], Exp(rates[i]).
  static PhaseType hyperexp(std::vector<double> probs, std::vector<double> rates);
  // Coxian: phase i has rate rates[i]; after phase i < k-1, continue to phase
  // i+1 with probability cont[i], else absorb. cont has size k-1.
  static PhaseType coxian(std::vector<double> rates, std::vector<double> cont);
  // Coxian with the given mean and squared coefficient of variation scv >= 1
  // (two-moment match; the paper's "Coxian with appropriate mean and C^2=8").
  static PhaseType coxian_mean_scv(double mean, double scv);

  [[nodiscard]] std::size_t num_phases() const { return alpha_.size(); }
  [[nodiscard]] const std::vector<double>& alpha() const { return alpha_; }
  [[nodiscard]] const linalg::Matrix& subgenerator() const { return t_; }
  // Exit (absorption) rate vector: -T * 1.
  [[nodiscard]] const std::vector<double>& exit_rates() const { return exit_; }

  [[nodiscard]] bool is_exponential() const { return num_phases() == 1; }
  // For a one-phase PH, the exponential rate.
  [[nodiscard]] double rate() const;

  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double moment(int k) const override;
  [[nodiscard]] std::string name() const override;

  // Jet of the LST built from the first three moments.
  [[nodiscard]] jets::Jet lst_jet() const;

  // Same shape, mean scaled by `factor` (all rates divided by factor).
  [[nodiscard]] PhaseType scaled(double factor) const;

 private:
  std::vector<double> alpha_;
  linalg::Matrix t_;
  std::vector<double> exit_;
  double moments_[3];  // cached raw moments
};

}  // namespace csq::dist
