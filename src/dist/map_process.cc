#include "dist/map_process.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "linalg/lu.h"

#include "core/status.h"

#include "core/numeric.h"

namespace csq::dist {

MapProcess::MapProcess(linalg::Matrix d0, linalg::Matrix d1)
    : d0_(std::move(d0)), d1_(std::move(d1)) {
  const std::size_t n = d0_.rows();
  if (n == 0 || d0_.cols() != n || d1_.rows() != n || d1_.cols() != n)
    throw InvalidInputError("MapProcess: D0/D1 must be square and same size");
  for (std::size_t i = 0; i < n; ++i) {
    if (d0_(i, i) >= 0.0) throw InvalidInputError("MapProcess: D0 diagonal must be < 0");
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && d0_(i, j) < 0.0)
        throw InvalidInputError("MapProcess: negative D0 off-diagonal");
      if (d1_(i, j) < 0.0) throw InvalidInputError("MapProcess: negative D1 entry");
      row += d0_(i, j) + d1_(i, j);
    }
    if (std::abs(row) > 1e-9)
      throw InvalidInputError("MapProcess: rows of D0 + D1 must sum to zero");
  }
  // Stationary phases: pi (D0 + D1) = 0, sum pi = 1. Replace one equation
  // with normalization and solve the transpose system.
  linalg::Matrix q = d0_ + d1_;
  for (std::size_t i = 0; i < n; ++i) q(i, 0) = 1.0;
  std::vector<double> rhs(n, 0.0);
  rhs[0] = 1.0;
  pi_ = linalg::Lu(q.transpose()).solve(rhs);
  const std::vector<double> rates = d1_.row_sums();
  mean_rate_ = linalg::dot(pi_, rates);
}

MapProcess MapProcess::poisson(double rate) {
  if (rate <= 0.0) throw InvalidInputError("MapProcess::poisson: rate <= 0");
  return {linalg::Matrix{{-rate}}, linalg::Matrix{{rate}}};
}

MapProcess MapProcess::mmpp2(double rate0, double rate1, double switch_01, double switch_10) {
  if (rate0 < 0.0 || rate1 < 0.0 || switch_01 <= 0.0 || switch_10 <= 0.0)
    throw InvalidInputError("MapProcess::mmpp2: bad parameters");
  if (num::exactly_zero(rate0) && num::exactly_zero(rate1))
    throw InvalidInputError("MapProcess::mmpp2: no arrivals at all");
  linalg::Matrix d0{{-(rate0 + switch_01), switch_01}, {switch_10, -(rate1 + switch_10)}};
  linalg::Matrix d1{{rate0, 0.0}, {0.0, rate1}};
  return {std::move(d0), std::move(d1)};
}

MapProcess MapProcess::bursty(double mean_rate, double peak_to_mean, double high_fraction,
                              double high_sojourn) {
  if (mean_rate <= 0.0 || peak_to_mean <= 1.0 || high_fraction <= 0.0 ||
      high_fraction >= 1.0 || high_sojourn <= 0.0)
    throw InvalidInputError("MapProcess::bursty: bad parameters");
  const double rate_high = peak_to_mean * mean_rate;
  // Mean rate = f * rate_high + (1 - f) * rate_low.
  const double rate_low = (mean_rate - high_fraction * rate_high) / (1.0 - high_fraction);
  if (rate_low < 0.0)
    throw InvalidInputError("MapProcess::bursty: peak_to_mean too large for fraction");
  const double leave_high = 1.0 / high_sojourn;
  // Stationary high fraction f = s01/(s01 + s10).
  const double leave_low = leave_high * high_fraction / (1.0 - high_fraction);
  return mmpp2(rate_low, rate_high, leave_low, leave_high);
}

MapProcess::State MapProcess::stationary_state(Rng& rng) const {
  double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
  State s;
  for (std::size_t i = 0; i + 1 < pi_.size(); ++i) {
    if (u < pi_[i]) {
      s.phase = i;
      return s;
    }
    u -= pi_[i];
    s.phase = i + 1;
  }
  s.phase = pi_.size() - 1;
  return s;
}

double MapProcess::next_interarrival(State& state, Rng& rng) const {
  const std::size_t n = num_phases();
  double elapsed = 0.0;
  for (;;) {
    const double out = -d0_(state.phase, state.phase);
    elapsed += std::exponential_distribution<double>(out)(rng);
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng) * out;
    // Arrival transitions first.
    for (std::size_t j = 0; j < n; ++j) {
      if (u < d1_(state.phase, j)) {
        state.phase = j;
        return elapsed;
      }
      u -= d1_(state.phase, j);
    }
    // Otherwise a silent phase change.
    for (std::size_t j = 0; j < n; ++j) {
      if (j == state.phase) continue;
      if (u < d0_(state.phase, j)) {
        state.phase = j;
        break;
      }
      u -= d0_(state.phase, j);
    }
  }
}

}  // namespace csq::dist
