#include "dist/phase_type.h"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "linalg/lu.h"

#include "core/status.h"

namespace csq::dist {

PhaseType::PhaseType(std::vector<double> alpha, linalg::Matrix t)
    : alpha_(std::move(alpha)), t_(std::move(t)) {
  const std::size_t k = alpha_.size();
  if (k == 0 || t_.rows() != k || t_.cols() != k)
    throw InvalidInputError("PhaseType: alpha/T shape mismatch");
  double mass = 0.0;
  for (double a : alpha_) {
    if (a < -1e-12) throw InvalidInputError("PhaseType: negative alpha entry");
    mass += a;
  }
  if (std::abs(mass - 1.0) > 1e-9)
    throw InvalidInputError("PhaseType: alpha must sum to 1");
  exit_.assign(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    if (t_(i, i) >= 0.0) throw InvalidInputError("PhaseType: diagonal must be negative");
    double row = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      if (i != j && t_(i, j) < -1e-12)
        throw InvalidInputError("PhaseType: negative off-diagonal");
      row += t_(i, j);
    }
    if (row > 1e-9) throw InvalidInputError("PhaseType: positive row sum in T");
    exit_[i] = -row;
  }
  // Cache moments: E[X^k] = k! * alpha * M^k * 1 with M = (-T)^{-1}.
  linalg::Matrix neg_t = t_;
  neg_t *= -1.0;
  const linalg::Matrix m = linalg::inverse(neg_t);
  std::vector<double> v = alpha_ * m;
  double fact = 1.0;
  for (int i = 0; i < 3; ++i) {
    fact *= (i + 1);
    moments_[i] = fact * linalg::sum(v);
    v = v * m;
  }
}

PhaseType PhaseType::exponential(double rate) {
  if (rate <= 0.0) throw InvalidInputError("PhaseType::exponential: rate <= 0");
  return {{1.0}, linalg::Matrix{{-rate}}};
}

PhaseType PhaseType::erlang(int k, double rate) {
  if (k < 1 || rate <= 0.0) throw InvalidInputError("PhaseType::erlang: bad params");
  const auto n = static_cast<std::size_t>(k);
  std::vector<double> alpha(n, 0.0);
  alpha[0] = 1.0;
  linalg::Matrix t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    t(i, i) = -rate;
    if (i + 1 < n) t(i, i + 1) = rate;
  }
  return {std::move(alpha), std::move(t)};
}

PhaseType PhaseType::hyperexp(std::vector<double> probs, std::vector<double> rates) {
  if (probs.size() != rates.size() || probs.empty())
    throw InvalidInputError("PhaseType::hyperexp: bad params");
  const std::size_t n = probs.size();
  linalg::Matrix t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rates[i] <= 0.0) throw InvalidInputError("PhaseType::hyperexp: rate <= 0");
    t(i, i) = -rates[i];
  }
  return {std::move(probs), std::move(t)};
}

PhaseType PhaseType::coxian(std::vector<double> rates, std::vector<double> cont) {
  const std::size_t n = rates.size();
  if (n == 0 || cont.size() != n - 1)
    throw InvalidInputError("PhaseType::coxian: need |cont| = |rates| - 1");
  std::vector<double> alpha(n, 0.0);
  alpha[0] = 1.0;
  linalg::Matrix t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rates[i] <= 0.0) throw InvalidInputError("PhaseType::coxian: rate <= 0");
    t(i, i) = -rates[i];
    if (i + 1 < n) {
      if (cont[i] < 0.0 || cont[i] > 1.0)
        throw InvalidInputError("PhaseType::coxian: continuation prob outside [0,1]");
      t(i, i + 1) = rates[i] * cont[i];
    }
  }
  return {std::move(alpha), std::move(t)};
}

PhaseType PhaseType::coxian_mean_scv(double mean, double scv) {
  if (mean <= 0.0) throw InvalidInputError("coxian_mean_scv: mean <= 0");
  if (std::abs(scv - 1.0) < 1e-9) return exponential(1.0 / mean);
  if (scv < 1.0)
    throw InvalidInputError("coxian_mean_scv: scv < 1 (use moment_match::fit_ph)");
  // Two-moment Coxian: mu1 = 2/m1; then m2 = (scv+1) m1^2 determines the
  // second phase. Derivation: with x = 1/mu1 = m1/2,
  //   y = 1/mu2 = m2/m1 - m1,  p = (m1 - x)/y.
  const double m2 = (scv + 1.0) * mean * mean;
  const double x = mean / 2.0;
  const double y = m2 / mean - mean;
  const double p = (mean - x) / y;
  return coxian({1.0 / x, 1.0 / y}, {p});
}

double PhaseType::rate() const {
  if (!is_exponential()) throw InvalidInputError("PhaseType::rate: not exponential");
  return -t_(0, 0);
}

double PhaseType::sample(Rng& rng) const {
  // Walk the absorbing CTMC.
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  double total = 0.0;
  // Draw initial phase.
  double u = unif(rng);
  std::size_t phase = 0;
  for (; phase + 1 < alpha_.size(); ++phase) {
    if (u < alpha_[phase]) break;
    u -= alpha_[phase];
  }
  for (;;) {
    const double out = -t_(phase, phase);
    total += std::exponential_distribution<double>(out)(rng);
    double v = unif(rng) * out;
    if (v < exit_[phase]) return total;
    v -= exit_[phase];
    std::size_t next = 0;
    for (std::size_t j = 0; j < alpha_.size(); ++j) {
      if (j == phase) continue;
      if (v < t_(phase, j)) {
        next = j;
        break;
      }
      v -= t_(phase, j);
      next = j;  // numerical slack: land on the last candidate
    }
    phase = next;
  }
}

double PhaseType::moment(int k) const {
  if (k < 1 || k > 3) throw InvalidInputError("PhaseType::moment: k must be 1..3");
  return moments_[k - 1];
}

std::string PhaseType::name() const {
  std::ostringstream os;
  os << "PH(" << num_phases() << " phases, mean=" << moments_[0] << ")";
  return os.str();
}

jets::Jet PhaseType::lst_jet() const {
  return jets::lst_from_moments(moments_[0], moments_[1], moments_[2]);
}

PhaseType PhaseType::scaled(double factor) const {
  if (factor <= 0.0) throw InvalidInputError("PhaseType::scaled: factor <= 0");
  linalg::Matrix t = t_;
  t *= 1.0 / factor;
  return {alpha_, std::move(t)};
}

}  // namespace csq::dist
