#include "dist/distribution.h"

#include <cmath>
#include <sstream>

#include "core/status.h"

namespace csq::dist {

namespace {
void check_moment_order(int k) {
  if (k < 1 || k > 3) throw InvalidInputError("Distribution::moment: k must be 1..3");
}
}  // namespace

Deterministic::Deterministic(double value) : value_(value) {
  if (value < 0.0) throw InvalidInputError("Deterministic: negative value");
}

double Deterministic::moment(int k) const {
  check_moment_order(k);
  return std::pow(value_, k);
}

std::string Deterministic::name() const {
  std::ostringstream os;
  os << "Det(" << value_ << ")";
  return os.str();
}

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  if (lo < 0.0 || hi <= lo) throw InvalidInputError("Uniform: need 0 <= lo < hi");
}

double Uniform::sample(Rng& rng) const {
  return std::uniform_real_distribution<double>(lo_, hi_)(rng);
}

double Uniform::moment(int k) const {
  check_moment_order(k);
  // E[X^k] = (hi^{k+1} - lo^{k+1}) / ((k+1)(hi - lo))
  return (std::pow(hi_, k + 1) - std::pow(lo_, k + 1)) / ((k + 1) * (hi_ - lo_));
}

std::string Uniform::name() const {
  std::ostringstream os;
  os << "U(" << lo_ << "," << hi_ << ")";
  return os.str();
}

BoundedPareto::BoundedPareto(double lo, double hi, double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha) {
  if (lo <= 0.0 || hi <= lo || alpha <= 0.0)
    throw InvalidInputError("BoundedPareto: need 0 < lo < hi, alpha > 0");
}

double BoundedPareto::sample(Rng& rng) const {
  const double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
  // Inverse CDF of the bounded Pareto.
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
}

double BoundedPareto::moment(int k) const {
  check_moment_order(k);
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  const double norm = la / (1.0 - la / ha);
  if (std::abs(alpha_ - k) < 1e-12) {
    // E[X^k] = alpha * norm * ln(hi/lo) when alpha == k.
    return alpha_ * norm * std::log(hi_ / lo_);
  }
  return alpha_ * norm / (alpha_ - k) *
         (std::pow(lo_, static_cast<double>(k) - alpha_) -
          std::pow(hi_, static_cast<double>(k) - alpha_));
}

std::string BoundedPareto::name() const {
  std::ostringstream os;
  os << "BP(" << lo_ << "," << hi_ << ";a=" << alpha_ << ")";
  return os.str();
}

BoundedPareto BoundedPareto::with_mean(double mean, double hi, double alpha) {
  // Bisection on lo in (0, mean): the mean is increasing in lo.
  double a = mean * 1e-9;
  double b = mean;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (a + b);
    const double m = BoundedPareto(mid, hi, alpha).moment(1);
    (m < mean ? a : b) = mid;
  }
  return {0.5 * (a + b), hi, alpha};
}

LogNormal::LogNormal(double mean, double scv) {
  if (mean <= 0.0 || scv <= 0.0) throw InvalidInputError("LogNormal: need mean, scv > 0");
  sigma_ = std::sqrt(std::log(1.0 + scv));
  mu_ = std::log(mean) - 0.5 * sigma_ * sigma_;
}

double LogNormal::sample(Rng& rng) const {
  return std::exp(std::normal_distribution<double>(mu_, sigma_)(rng));
}

double LogNormal::moment(int k) const {
  check_moment_order(k);
  return std::exp(k * mu_ + 0.5 * k * k * sigma_ * sigma_);
}

std::string LogNormal::name() const {
  std::ostringstream os;
  os << "LogN(mu=" << mu_ << ",sig=" << sigma_ << ")";
  return os.str();
}

}  // namespace csq::dist
