// Markovian Arrival Process (MAP): a CTMC with generator D0 + D1 where D1
// transitions emit an arrival. Subsumes Poisson (1 phase) and MMPP. The
// paper notes its Poisson-arrival assumption "can be generalized to a MAP";
// analysis/cscq_map.* implements that generalization for the short class.
//
// Throws csq::InvalidInputError (core/status.h) on malformed arguments.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "dist/distribution.h"
#include "linalg/matrix.h"

namespace csq::dist {

class MapProcess {
 public:
  // d0: non-arrival transitions (negative diagonal); d1: arrival transitions
  // (nonnegative). Rows of d0 + d1 must sum to zero. Throws
  // csq::InvalidInputError on malformed generators and
  // csq::IllConditionedError when the stationary-phase solve degenerates.
  MapProcess(linalg::Matrix d0, linalg::Matrix d1);

  static MapProcess poisson(double rate);
  // 2-phase MMPP: arrival rate rate_i while in phase i; phase flips at
  // switch_01 (0 -> 1) and switch_10 (1 -> 0).
  static MapProcess mmpp2(double rate0, double rate1, double switch_01, double switch_10);
  // MMPP2 with a target mean rate and burstiness knobs: the high phase
  // carries `peak_to_mean` times the mean rate and holds a fraction
  // `high_fraction` of the time; mean sojourn in the high phase is
  // `high_sojourn`.
  static MapProcess bursty(double mean_rate, double peak_to_mean, double high_fraction,
                           double high_sojourn);

  [[nodiscard]] std::size_t num_phases() const { return d0_.rows(); }
  [[nodiscard]] const linalg::Matrix& d0() const { return d0_; }
  [[nodiscard]] const linalg::Matrix& d1() const { return d1_; }

  // Stationary distribution of the phase process (generator D0 + D1).
  [[nodiscard]] const std::vector<double>& stationary_phases() const { return pi_; }
  // Long-run arrival rate: pi D1 1.
  [[nodiscard]] double mean_rate() const { return mean_rate_; }

  // Sampling state for the simulator: current phase.
  struct State {
    std::size_t phase = 0;
  };
  // Initial phase drawn from the stationary distribution.
  [[nodiscard]] State stationary_state(Rng& rng) const;
  // Time until the next arrival, advancing the phase state.
  [[nodiscard]] double next_interarrival(State& state, Rng& rng) const;

 private:
  linalg::Matrix d0_, d1_;
  std::vector<double> pi_;
  double mean_rate_ = 0.0;
};

using MapPtr = std::shared_ptr<const MapProcess>;

}  // namespace csq::dist
