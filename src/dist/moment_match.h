// Moment matching: build a small phase-type distribution whose first moments
// agree with a target. This is the approximation engine of the paper — the
// busy-period transitions of the CS-CQ chain are represented by a 2-stage
// Coxian matched to the busy period's first three moments.
//
// Throws csq::InvalidInputError (core/status.h) on malformed arguments.
#pragma once

#include "dist/distribution.h"
#include "dist/phase_type.h"

namespace csq::dist {

struct FitReport {
  int moments_requested = 3;
  int moments_matched = 3;     // how many the returned PH actually matches
  bool used_fallback = false;  // 3-moment Coxian fit infeasible or degenerate
};

// Fit a phase-type distribution to the given raw moments.
//
// max_moments == 3 (default): 2-stage Coxian matching m1, m2, m3 when the
//   classical feasibility condition holds (normalized moments
//   n2 = m2/m1^2 > 2 and n3 = m3 m1 / ... large enough); falls back to a
//   two-moment fit otherwise.
// max_moments == 2: two-moment fit — Coxian-2 for scv > 1, mixed Erlang for
//   scv < 1, exponential at scv == 1.
// max_moments == 1: exponential with the target mean.
//
// Throws std::invalid_argument for non-realizable inputs (m1 <= 0, m2 < m1^2
// beyond numerical slack, ...). `report`, when non-null, records what was
// actually matched (used by the moment-matching ablation bench).
//
// Results are memoized per thread, keyed on the exact bit patterns of
// (m1, m2, m3, max_moments): sweeps and batches re-fit the same few
// distributions for every config, and the 3-moment Coxian fit's root search
// is the analysis path's single most expensive scalar computation. Cached
// returns are copies of the originally computed fit, so memoization is
// observationally invisible (cache hit/miss traffic is exported as the
// dist.fit.cache_hits / dist.fit.cache_misses counters).
[[nodiscard]] PhaseType fit_ph(const Moments& target, int max_moments = 3,
                               FitReport* report = nullptr);

// Exact three-moment 2-stage Coxian fit. Returns false when infeasible.
// On success fills rates {mu1, mu2} and continuation probability p.
bool fit_coxian2_3moments(const Moments& target, double* mu1, double* mu2, double* p);

// Two-moment mixed-Erlang fit for scv < 1 (Tijms' construction): mixture of
// Erlang(k-1) and Erlang(k) with common rate, 1/k <= scv <= 1.
[[nodiscard]] PhaseType fit_mixed_erlang(double mean, double scv);

}  // namespace csq::dist
