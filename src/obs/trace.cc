#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>

#include "core/deadline.h"

namespace csq::obs {

namespace {

std::atomic<bool> g_tracing{false};
std::atomic<std::size_t> g_dropped{0};

std::mutex& buffer_mu() {
  static std::mutex mu;
  return mu;
}

std::vector<TraceEvent>& buffer() {
  static std::vector<TraceEvent> events;
  return events;
}

// Small sequential thread ids in first-recording order, so traces from a
// pool run read as lanes 0..n rather than opaque native handles.
int this_thread_tid() {
  static std::atomic<int> next{0};
  thread_local int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

int& this_thread_depth() {
  thread_local int depth = 0;
  return depth;
}

}  // namespace

// Relaxed: the tracing flag is an on/off hint polled at span construction —
// no event data is published through it, so no ordering is required.
void set_tracing(bool on) { g_tracing.store(on, std::memory_order_relaxed); }

// Relaxed load: pairs with the relaxed store above; order-free hint.
bool tracing_enabled() { return g_tracing.load(std::memory_order_relaxed); }

std::vector<TraceEvent> trace_events() {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(buffer_mu());
    out = buffer();
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.depth < b.depth;
  });
  return out;
}

// Relaxed: monotonic drop counter, statistics only — no ordering needed.
std::size_t trace_dropped() { return g_dropped.load(std::memory_order_relaxed); }

void clear_trace() {
  std::lock_guard<std::mutex> lock(buffer_mu());
  buffer().clear();
  // Relaxed store: the counter is statistics-only; the buffer itself is
  // ordered by buffer_mu(), the atomic piggybacks no synchronization.
  g_dropped.store(0, std::memory_order_relaxed);
}

std::string chrome_trace_json() {
  const std::vector<TraceEvent> events = trace_events();
  std::int64_t epoch_ns = 0;
  if (!events.empty()) epoch_ns = events.front().start_ns;
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    // Microseconds with nanosecond decimals; ts relative to the first span
    // so the viewer opens at t=0.
    const double ts_us = static_cast<double>(e.start_ns - epoch_ns) / 1000.0;
    const double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
    out << "\n  {\"name\": \"" << e.name << "\", \"cat\": \"csq\", \"ph\": \"X\""
        << ", \"ts\": " << ts_us << ", \"dur\": " << dur_us
        << ", \"pid\": 1, \"tid\": " << e.tid
        << ", \"args\": {\"depth\": " << e.depth << "}}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

Span::Span(const char* name) {
  if (!tracing_enabled()) return;
  name_ = name;
  depth_ = this_thread_depth()++;
  start_ns_ = timebase::now_ns();
}

Span::~Span() {
  if (name_ == nullptr) return;
  --this_thread_depth();
  TraceEvent e;
  e.name = name_;
  e.start_ns = start_ns_;
  e.dur_ns = timebase::now_ns() - start_ns_;
  e.tid = this_thread_tid();
  e.depth = depth_;
  std::lock_guard<std::mutex> lock(buffer_mu());
  if (buffer().size() >= kMaxTraceEvents) {
    // Relaxed: monotonic drop counter; the buffer is guarded by the mutex.
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer().push_back(std::move(e));
}

}  // namespace csq::obs
