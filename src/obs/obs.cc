#include "obs/obs.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace csq::obs {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

// Relaxed ordering throughout: the histogram is a statistics sink. Each
// field advances independently (count is monotonic, min/max only tighten,
// sum is a CAS loop on its own cell) and no reader synchronizes-with a
// writer through any of them — snapshots tolerate torn cross-field views.
void Histogram::observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  double old_sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old_sum, old_sum + v, std::memory_order_relaxed)) {
  }
  double old_min = min_.load(std::memory_order_relaxed);
  while (v < old_min &&
         !min_.compare_exchange_weak(old_min, v, std::memory_order_relaxed)) {
  }
  double old_max = max_.load(std::memory_order_relaxed);
  while (v > old_max &&
         !max_.compare_exchange_weak(old_max, v, std::memory_order_relaxed)) {
  }
}

namespace {

// min_/max_ rest at +/-infinity until the first observation lands; clamp the
// sentinel to 0 so snapshots (and the JSON they feed) never carry an inf.
double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

// Relaxed loads: statistics reads — nothing orders against them.
double Histogram::min() const {
  return finite_or_zero(min_.load(std::memory_order_relaxed));
}

// Relaxed load: statistics read — nothing orders against it.
double Histogram::max() const {
  return finite_or_zero(max_.load(std::memory_order_relaxed));
}

// Relaxed stores: reset is only called from quiesced scopes (tests, snapshot
// epochs); there is no concurrent reader that needs ordering against it.
void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

Registry& Registry::instance() {
  // Intentionally immortal (never destroyed): the shared TaskPool's workers
  // live until static teardown and bump counters from their idle loops, so a
  // function-local static Registry could be destroyed while they still hold
  // references. Reachable through this pointer forever, so leak checkers
  // classify it "still reachable", not leaked.
  static Registry* r = new Registry();
  return *r;
}

Registry::Entry& Registry::entry(const std::string& name, MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
  } else if (it->second.kind != kind) {
    throw InternalError(
        "obs metric \"" + name + "\" registered as " + to_string(it->second.kind) +
            " but requested as " + to_string(kind),
        Diagnostics{});
  }
  return it->second;
}

Counter& Registry::counter(const std::string& name) {
  return entry(name, MetricKind::kCounter).counter;
}

Gauge& Registry::gauge(const std::string& name) {
  return entry(name, MetricKind::kGauge).gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  return entry(name, MetricKind::kHistogram).histogram;
}

std::int64_t Registry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != MetricKind::kCounter) return 0;
  return it->second.counter.value();
}

std::vector<MetricRow> Registry::snapshot() const {
  std::vector<MetricRow> rows;
  std::lock_guard<std::mutex> lock(mu_);
  rows.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricRow row;
    row.name = name;
    row.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        row.value = static_cast<double>(e.counter.value());
        break;
      case MetricKind::kGauge:
        row.value = e.gauge.value();
        break;
      case MetricKind::kHistogram:
        row.value = static_cast<double>(e.histogram.count());
        row.sum = e.histogram.sum();
        row.min = e.histogram.min();
        row.max = e.histogram.max();
        break;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

// Shortest round-trip-safe decimal; integers print without a fraction so
// counters read naturally in the JSON.
std::string number(double v) {
  const auto as_int = static_cast<std::int64_t>(v);
  if (static_cast<double>(as_int) == v &&  // csq-lint: allow(no-float-eq): exact integer check for formatting, not a tolerance comparison
      v >= -9.0e15 && v <= 9.0e15) {
    return std::to_string(as_int);
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string Registry::metrics_json() const {
  const std::vector<MetricRow> rows = snapshot();
  std::ostringstream out;
  out << "{\n";
  bool first = true;
  for (const MetricRow& r : rows) {
    if (!first) out << ",\n";
    first = false;
    out << "  \"" << r.name << "\": ";
    if (r.kind == MetricKind::kHistogram) {
      out << "{\"count\": " << number(r.value) << ", \"sum\": " << number(r.sum)
          << ", \"min\": " << number(r.min) << ", \"max\": " << number(r.max) << "}";
    } else {
      out << number(r.value);
    }
  }
  out << "\n}\n";
  return out.str();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    e.counter.reset();
    e.gauge.reset();
    e.histogram.reset();
  }
}

std::int64_t MetricsDelta::value(const std::string& name) const {
  for (const auto& [n, v] : values)
    if (n == name) return v;
  return 0;
}

Diagnostics MetricsDelta::to_diagnostics() const {
  Diagnostics d;
  const std::int64_t iters = value("qbd.fi.iterations") + value("qbd.relaxed.iterations") +
                             value("qbd.logred.doublings");
  if (iters > 0) d.iterations = static_cast<int>(iters);
  for (const auto& [n, v] : values)
    d.notes.push_back("obs " + n + " += " + std::to_string(v));
  return d;
}

DeltaScope::DeltaScope() {
  for (const MetricRow& r : Registry::instance().snapshot())
    if (r.kind == MetricKind::kCounter)
      base_.emplace_back(r.name, static_cast<std::int64_t>(r.value));
}

MetricsDelta DeltaScope::delta() const {
  MetricsDelta d;
  for (const MetricRow& r : Registry::instance().snapshot()) {
    if (r.kind != MetricKind::kCounter) continue;
    std::int64_t before = 0;
    for (const auto& [n, v] : base_)
      if (n == r.name) {
        before = v;
        break;
      }
    const auto now = static_cast<std::int64_t>(r.value);
    if (now != before) d.values.emplace_back(r.name, now - before);
  }
  return d;
}

}  // namespace csq::obs
