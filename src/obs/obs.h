// Observability metrics: a process-wide Registry of named counters, gauges
// and histograms, dependency-free and zero-cost when compiled out.
//
// Metric names are literal "module.sub.metric" strings (three lowercase
// dot-separated segments, same grammar as fault sites) and each name is
// registered at exactly one call site repo-wide — enforced by lint rule R10
// `metric-naming`, so the metric catalogue in docs/observability.md is
// statically enumerable with grep.
//
// Instrumentation goes through the CSQ_OBS_* macros, never Registry calls
// in solver code: each macro caches the metric handle in a function-local
// static, so the steady-state cost of a counter bump is one relaxed atomic
// add. Configuring with -DCSQ_OBS=OFF defines CSQ_OBS_DISABLED and every
// macro expands to `((void)0)` — no registration, no atomics, no strings in
// the binary (the Registry type still exists so tooling links either way).
//
//   CSQ_OBS_COUNT("qbd.solve.calls");              // += 1
//   CSQ_OBS_COUNT_N("qbd.fi.iterations", n);       // += n
//   CSQ_OBS_GAUGE_SET("solver.fallback.stage", v); // last-write-wins level
//   CSQ_OBS_HIST("sweep.point.microseconds", us);  // count/sum/min/max
//
// Counters are monotone per process run; per-call attribution uses
// DeltaScope, which snapshots every counter at construction and returns the
// increments since (`MetricsDelta`). Analysis entry points capture one and
// attach the delta to their *Result next to SolveStats. Deltas are computed
// from process-global counters, so under concurrent solves (a threaded
// sweep) a delta attributes the *process's* activity during the call, not
// the call's alone — exact attribution needs a single-threaded run.
//
// Thread-safety: registration takes a mutex (once per site); updates are
// lock-free relaxed atomics, safe from any pool worker.
//
// Throws csq::InternalError (metric re-registered under a different kind).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"

namespace csq::obs {

// False when the build was configured with -DCSQ_OBS=OFF: the CSQ_OBS_*
// macros expand to no-ops and the Registry stays empty. Tests branch on this
// so one suite covers both builds.
[[nodiscard]] constexpr bool compiled_in() {
#ifdef CSQ_OBS_DISABLED
  return false;
#else
  return true;
#endif
}

enum class MetricKind { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(MetricKind kind);

// Monotone event count. add() is a relaxed fetch_add: safe from any thread,
// no ordering implied with respect to the events being counted.
class Counter {
 public:
  // Relaxed: the count is monotonic and carries no ordering with the
  // events it counts; a racy, eventually-consistent total is all readers need.
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  // Relaxed store: reset only runs from quiesced scopes (tests, snapshots).
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Last-write-wins level (e.g. which fallback stage produced the answer).
class Gauge {
 public:
  // Relaxed: last-write-wins level — a torn read order across gauges is
  // acceptable, nothing synchronizes-with the store.
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }
  // Relaxed store: reset only runs from quiesced scopes (tests, snapshots).
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Streaming count/sum/min/max over observed values. min/max use CAS loops;
// count and sum are relaxed atomics (sum is exact for integer-valued
// observations within 2^53).
class Histogram {
 public:
  void observe(double v);
  // Relaxed loads: statistics reads, snapshots tolerate torn field views.
  [[nodiscard]] std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  // min()/max() are 0 when count() == 0.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  void reset();

 private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Rest at +/-infinity so the first observe() CAS always seeds them.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

// One metric's state at snapshot time. `value` is the counter count, gauge
// level, or histogram count; sum/min/max are histogram-only.
struct MetricRow {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

// Counter increments attributed to a code region by DeltaScope. Only
// counters that moved are recorded, so an empty `values` means "nothing
// instrumented ran" (or the build has obs compiled out).
struct MetricsDelta {
  std::vector<std::pair<std::string, std::int64_t>> values;

  // Increment of `name` within the scope; 0 if it did not move.
  [[nodiscard]] std::int64_t value(const std::string& name) const;
  [[nodiscard]] bool empty() const { return values.empty(); }
  // Folds the solver-loop counters into the Diagnostics shape used by
  // SolveStats::to_diagnostics (iterations <- qbd.fi.iterations + relaxed +
  // logred doublings; notes list every moved counter).
  [[nodiscard]] Diagnostics to_diagnostics() const;
};

// Process-wide metric registry. `counter("a.b.c")` returns a reference that
// stays valid for the life of the process (node-based storage), so macro
// sites cache it in a function-local static.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // All registered metrics, sorted by name.
  [[nodiscard]] std::vector<MetricRow> snapshot() const;

  // Current value of the named counter, or 0 when it was never registered
  // (including every -DCSQ_OBS=OFF build). Read-only: never registers the
  // name — safe for assertions and load-shedding heuristics that must not
  // pollute the catalog.
  [[nodiscard]] std::int64_t counter_value(const std::string& name) const;

  // Flat JSON object, one member per metric (histograms nest
  // {count,sum,min,max}). Shape documented in docs/observability.md.
  [[nodiscard]] std::string metrics_json() const;

  // Zero every metric (registrations persist). Test isolation only.
  void reset();

 private:
  Registry() = default;

  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Entry& entry(const std::string& name, MetricKind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

// Snapshots every counter at construction; delta() reports the increments
// since. Cheap relative to a solve (one mutex + O(#metrics) copies), not
// relative to an inner loop — use at analysis granularity.
class DeltaScope {
 public:
  DeltaScope();
  [[nodiscard]] MetricsDelta delta() const;

 private:
  std::vector<std::pair<std::string, std::int64_t>> base_;
};

}  // namespace csq::obs

#ifndef CSQ_OBS_DISABLED

// Statement macros (do-while) so they compose with if/else without braces.
// The function-local static resolves the name -> handle lookup once per
// site; thereafter each hit is a single relaxed atomic op.
#define CSQ_OBS_COUNT(name)                                     \
  do {                                                          \
    static ::csq::obs::Counter& csq_obs_handle_ =               \
        ::csq::obs::Registry::instance().counter(name);         \
    csq_obs_handle_.add(1);                                     \
  } while (0)

#define CSQ_OBS_COUNT_N(name, n)                                \
  do {                                                          \
    static ::csq::obs::Counter& csq_obs_handle_ =               \
        ::csq::obs::Registry::instance().counter(name);         \
    csq_obs_handle_.add(static_cast<std::int64_t>(n));          \
  } while (0)

#define CSQ_OBS_GAUGE_SET(name, v)                              \
  do {                                                          \
    static ::csq::obs::Gauge& csq_obs_handle_ =                 \
        ::csq::obs::Registry::instance().gauge(name);           \
    csq_obs_handle_.set(static_cast<double>(v));                \
  } while (0)

#define CSQ_OBS_HIST(name, v)                                   \
  do {                                                          \
    static ::csq::obs::Histogram& csq_obs_handle_ =             \
        ::csq::obs::Registry::instance().histogram(name);       \
    csq_obs_handle_.observe(static_cast<double>(v));            \
  } while (0)

#else  // CSQ_OBS_DISABLED: no registration, no atomics. The value argument
       // sits under an unevaluated sizeof so a variable counted only for
       // obs does not become "set but unused" in the disabled build.

#define CSQ_OBS_COUNT(name) ((void)0)
#define CSQ_OBS_COUNT_N(name, n) ((void)sizeof(n))
#define CSQ_OBS_GAUGE_SET(name, v) ((void)sizeof(v))
#define CSQ_OBS_HIST(name, v) ((void)sizeof(v))

#endif  // CSQ_OBS_DISABLED
