// RAII span tracing with Chrome-trace export.
//
// A Span marks a named region of a solve (one solver stage, one sweep point,
// one simulation run). Spans are declared through CSQ_OBS_SPAN — names obey
// the same literal "module.sub.stage" grammar as metrics (lint rule R10) —
// and record nothing unless tracing was switched on at runtime:
//
//   obs::set_tracing(true);
//   { CSQ_OBS_SPAN("qbd.solve.fi"); ...stage... }   // one complete event
//   std::string json = obs::chrome_trace_json();    // load in chrome://tracing
//
// Cost model: with tracing off (the default) a span is one relaxed atomic
// load; with -DCSQ_OBS=OFF the macro vanishes entirely. With tracing on,
// the closing brace appends one event to a global mutex-protected buffer —
// spans are stage-granular, so the lock is uncontended in practice.
//
// Timestamps come from csq::timebase::now_ns() (steady_clock + virtual
// offset), so traces are deadline-consistent: a `burn` fault that trips a
// budget also lengthens the enclosing span, and tests can script exact
// durations by advancing the virtual clock.
//
// Thread attribution: each recording thread gets a small sequential tid (in
// first-recording order) and per-thread nesting depth, both carried on the
// event, so the Chrome view groups spans into per-thread lanes.
//
// The buffer holds at most kMaxTraceEvents events; beyond that new events
// are dropped and counted (trace_dropped()) rather than growing without
// bound inside a long sweep.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace csq::obs {

inline constexpr std::size_t kMaxTraceEvents = 1u << 20;

struct TraceEvent {
  std::string name;
  std::int64_t start_ns = 0;  // timebase::now_ns() at span open
  std::int64_t dur_ns = 0;
  int tid = 0;    // small sequential id, assigned at a thread's first record
  int depth = 0;  // nesting depth within the thread when the span opened
};

// Runtime switch; off by default. Spans opened while tracing is off record
// nothing even if it is switched on before they close.
void set_tracing(bool on);
[[nodiscard]] bool tracing_enabled();

// Completed events so far, sorted by (start_ns, depth). Snapshot copy.
[[nodiscard]] std::vector<TraceEvent> trace_events();

// Events discarded after the buffer filled.
[[nodiscard]] std::size_t trace_dropped();

// Drop all buffered events and the dropped count (test isolation).
void clear_trace();

// Chrome trace-event JSON ({"traceEvents":[...]}): complete ("ph":"X")
// events with microsecond ts/dur normalized to the earliest span. Load via
// chrome://tracing or https://ui.perfetto.dev.
[[nodiscard]] std::string chrome_trace_json();

// Prefer CSQ_OBS_SPAN over declaring Span directly: the macro compiles out
// with -DCSQ_OBS=OFF and keeps the name visible to the R10 lint pass.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&&) = delete;
  Span& operator=(Span&&) = delete;

 private:
  const char* name_ = nullptr;  // null when tracing was off at open
  std::int64_t start_ns_ = 0;
  int depth_ = 0;
};

}  // namespace csq::obs

#ifndef CSQ_OBS_DISABLED

#define CSQ_OBS_CONCAT_INNER_(a, b) a##b
#define CSQ_OBS_CONCAT_(a, b) CSQ_OBS_CONCAT_INNER_(a, b)
// Line-numbered variable so two spans can share a scope (outer + retry).
#define CSQ_OBS_SPAN(name) \
  const ::csq::obs::Span CSQ_OBS_CONCAT_(csq_obs_span_, __LINE__)(name)

#else

#define CSQ_OBS_SPAN(name) ((void)0)

#endif  // CSQ_OBS_DISABLED
