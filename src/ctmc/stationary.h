// Stationary distribution of a finite CTMC by Gauss-Seidel sweeps on
// pi Q = 0 with renormalization.
//
// Throws csq::InvalidInputError on API misuse,
// csq::IllConditionedError when the stationary system is numerically
// singular, and csq::DeadlineExceededError / csq::CancelledError when
// opts.budget is interrupted between sweeps (core/status.h).
#pragma once

#include <vector>

#include "core/deadline.h"
#include "ctmc/sparse.h"

namespace csq::ctmc {

struct StationaryOptions {
  // Convergence criterion: L1 norm of the per-sweep change of pi. (A
  // max-relative criterion stalls on the exponentially small lattice tail
  // states, which carry no weight in any functional of interest.)
  double tolerance = 1e-10;
  int max_sweeps = 50000;
  // Relaxation factor in (0, 2); 1.0 = plain Gauss-Seidel. Over-relaxation
  // can oscillate on the singular stationary system — keep 1.0 unless
  // experimenting.
  double omega = 1.0;
  // Wall-clock/cancellation budget, polled once per sweep (worst-case
  // overshoot: one full Gauss-Seidel pass over the state space).
  RunBudget budget;
};

struct StationaryResult {
  std::vector<double> pi;
  int sweeps = 0;
  bool converged = false;
};

// The chain must be irreducible over the states with positive outflow.
[[nodiscard]] StationaryResult stationary(const Generator& q,
                                          const StationaryOptions& opts = {});

}  // namespace csq::ctmc
