#include "ctmc/sparse.h"

#include <algorithm>
#include <stdexcept>

#include "core/status.h"

#include "core/numeric.h"

namespace csq::ctmc {

void Generator::add(std::size_t from, std::size_t to, double rate) {
  if (finalized()) throw InvalidInputError("Generator::add after finalize");
  if (from >= n_ || to >= n_) throw InvalidInputError("Generator::add: state out of range");
  if (from == to) throw InvalidInputError("Generator::add: self-loop");
  if (rate < 0.0) throw InvalidInputError("Generator::add: negative rate");
  if (num::exactly_zero(rate)) return;
  triplets_.push_back({from, to, rate});
  out_rate_[from] += rate;
}

void Generator::finalize() {
  if (finalized()) throw InvalidInputError("Generator::finalize called twice");
  std::sort(triplets_.begin(), triplets_.end(), [](const Triplet& a, const Triplet& b) {
    return a.to != b.to ? a.to < b.to : a.from < b.from;
  });
  col_ptr_.assign(n_ + 1, 0);
  row_idx_.reserve(triplets_.size());
  value_.reserve(triplets_.size());
  for (std::size_t i = 0; i < triplets_.size();) {
    std::size_t j = i;
    double acc = triplets_[i].rate;
    while (j + 1 < triplets_.size() && triplets_[j + 1].to == triplets_[i].to &&
           triplets_[j + 1].from == triplets_[i].from) {
      ++j;
      acc += triplets_[j].rate;
    }
    row_idx_.push_back(triplets_[i].from);
    value_.push_back(acc);
    col_ptr_[triplets_[i].to + 1] = row_idx_.size();
    i = j + 1;
  }
  // Make col_ptr cumulative over empty columns too.
  for (std::size_t c = 1; c <= n_; ++c) col_ptr_[c] = std::max(col_ptr_[c], col_ptr_[c - 1]);
  triplets_.clear();
  triplets_.shrink_to_fit();
}

}  // namespace csq::ctmc
