#include "ctmc/stationary.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/status.h"

#include "core/faultpoint.h"

#include "core/numeric.h"

#include "obs/obs.h"

#include "obs/trace.h"

namespace csq::ctmc {

StationaryResult stationary(const Generator& q, const StationaryOptions& opts) {
  if (!q.finalized()) throw InvalidInputError("ctmc::stationary: generator not finalized");
  if (opts.omega <= 0.0 || opts.omega >= 2.0)
    throw InvalidInputError("ctmc::stationary: omega must be in (0, 2)");
  const std::size_t n = q.size();
  CSQ_OBS_SPAN("ctmc.stationary.solve");
  StationaryResult res;
  res.pi.assign(n, 1.0 / static_cast<double>(n));
  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    if (opts.budget.interrupted()) {
      Diagnostics d;
      d.iterations = sweep;
      d.tolerance = opts.tolerance;
      opts.budget.check("ctmc::stationary", std::move(d));
    }
    CSQ_FAULT_POINT("ctmc.stationary.sweep");
    double l1_change = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double d = q.diagonal(j);
      if (num::exactly_zero(d)) {
        res.pi[j] = 0.0;  // absorbing or unreachable padding state
        continue;
      }
      double inflow = 0.0;
      q.for_each_inflow(j, [&](std::size_t i, double rate) {
        if (i != j) inflow += res.pi[i] * rate;
      });
      const double gs = inflow / (-d);
      const double next = std::max(0.0, res.pi[j] + opts.omega * (gs - res.pi[j]));
      l1_change += std::abs(next - res.pi[j]);
      res.pi[j] = next;
    }
    // Renormalize.
    double mass = 0.0;
    for (double x : res.pi) mass += x;
    if (mass <= 0.0) {
      Diagnostics d;
      d.iterations = sweep + 1;
      throw IllConditionedError("ctmc::stationary: zero mass", std::move(d));
    }
    for (double& x : res.pi) x /= mass;
    res.sweeps = sweep + 1;
    if (l1_change < opts.tolerance) {
      res.converged = true;
      break;
    }
  }
  CSQ_OBS_COUNT_N("ctmc.stationary.sweeps", res.sweeps);
  return res;
}

}  // namespace csq::ctmc
