// Sparse CTMC generator, stored by column for stationary-equation sweeps.
//
// The paper dismisses truncating the 2-D infinite chain as "neither
// sufficiently accurate nor robust"; we build the truncated chain anyway as
// an exactness oracle for the exponential/exponential case, so the ablation
// bench can quantify both the truncation error and the busy-period-
// approximation error.
//
// Throws csq::InvalidInputError (core/status.h) on malformed arguments.
#pragma once

#include <cstddef>
#include <vector>

namespace csq::ctmc {

// Builder for a CTMC generator Q. Off-diagonal rates are added with add();
// diagonals are derived at finalize() so rows sum to zero.
class Generator {
 public:
  explicit Generator(std::size_t n) : n_(n), out_rate_(n, 0.0) {}

  [[nodiscard]] std::size_t size() const { return n_; }

  // Add rate from state `from` to state `to` (accumulates duplicates).
  void add(std::size_t from, std::size_t to, double rate);

  // Build column-compressed form. Call once, after all add()s.
  void finalize();

  // q_jj = -(total outflow of j).
  [[nodiscard]] double diagonal(std::size_t j) const { return -out_rate_[j]; }

  // Iterate the in-flows of state j: calls f(i, rate) for each i != j with
  // Q(i, j) = rate > 0.
  template <typename F>
  void for_each_inflow(std::size_t j, F&& f) const {
    for (std::size_t k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) f(row_idx_[k], value_[k]);
  }

  [[nodiscard]] bool finalized() const { return !col_ptr_.empty(); }

 private:
  struct Triplet {
    std::size_t from, to;
    double rate;
  };
  std::size_t n_;
  std::vector<Triplet> triplets_;
  std::vector<double> out_rate_;
  std::vector<std::size_t> col_ptr_;
  std::vector<std::size_t> row_idx_;
  std::vector<double> value_;
};

}  // namespace csq::ctmc
