// Structured error taxonomy and solver diagnostics.
//
// Every numerical failure in the library is classified by an ErrorCode and
// carries a Diagnostics payload (iteration counts, residuals, spectral-radius
// and condition estimates, offered loads) so callers can distinguish "your
// input is outside the stability region" from "the solver gave up" and react
// programmatically — retry with different options, fall back to simulation,
// or report structured errors upstream (csq_cli --json-errors).
//
// The concrete exception types multiply-inherit from the std exception the
// call site historically threw (std::invalid_argument / std::domain_error /
// std::runtime_error) and from csq::Error, so existing `catch
// (std::domain_error&)` code keeps working while new code can `catch (const
// csq::Error& e)` and read e.status().
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace csq {

enum class ErrorCode {
  kOk = 0,
  kInvalidInput,         // malformed model/config (caller bug)
  kUnstable,             // offered load outside the stability region
  kNotConverged,         // iterative solver exhausted its fallback chain
  kIllConditioned,       // singular / numerically untrustworthy linear system
  kVerificationFailed,   // a computed solution failed its self-checks
  kInternal,             // anything else (should not happen)
  kDeadlineExceeded,     // a RunBudget wall-clock deadline expired mid-solve
  kCancelled,            // a cooperative CancelToken was triggered
  kOverloaded,           // admission control shed the request (serve layer)
  kCorruptJournal,       // a durability artifact failed its integrity checks
};

// Stable identifier for the code ("Ok", "InvalidInput", ...).
[[nodiscard]] const char* error_code_name(ErrorCode code);

// Name of the exception class that carries the code ("InvalidInputError",
// "UnstableError", ...) — the `error_class` field of csq_cli --json-errors.
[[nodiscard]] const char* error_class_name(ErrorCode code);

// How much self-verification analyze()/qbd::solve() run on their results.
//   kNone  — trust the solver.
//   kBasic — mass ≈ 1, no negative probabilities, sp(R) < 1, finite values.
//   kFull  — kBasic plus the R-equation residual and moment sanity checks.
enum class VerifyLevel { kNone = 0, kBasic, kFull };

// Context attached to statuses and errors. Fields default to "unset"
// (NaN / -1) and are serialized only when set.
struct Diagnostics {
  long iterations = -1;              // iterations spent by the failing stage
  double residual = kUnset;          // e.g. ‖A0 + R A1 + R² A2‖_max
  double spectral_radius = kUnset;   // sp(R) estimate (power iteration)
  double condition_estimate = kUnset;  // 1-norm condition estimate
  double rho_short = kUnset;
  double rho_long = kUnset;
  double tolerance = kUnset;         // tolerance in force when recorded
  double budget_ms = kUnset;         // RunBudget deadline in force, if any
  double elapsed_ms = kUnset;        // elapsed budget time when recorded
  std::string stage;                 // solver stage ("functional_iteration", ...)
  std::vector<std::string> notes;    // fallback / verification trail

  static constexpr double kUnset = -1.0;
  [[nodiscard]] bool has(double field) const { return field >= 0.0; }

  // Convenience for the pervasive "record the offered loads" case.
  [[nodiscard]] static Diagnostics loads(double rho_short, double rho_long);

  // Flat JSON object of the set fields (notes as a string array).
  [[nodiscard]] std::string to_json() const;
};

// Outcome of a solver call or verification pass.
struct SolverStatus {
  ErrorCode code = ErrorCode::kOk;
  std::string message;
  Diagnostics diagnostics;

  [[nodiscard]] bool ok() const { return code == ErrorCode::kOk; }
  // {"ok":true} or {"error":{"code":...,"message":...,"diagnostics":{...}}}.
  [[nodiscard]] std::string to_json() const;
};

// Mixin base for every structured exception. Not derived from
// std::exception — the concrete types inherit their what() from the std
// exception they historically were.
class Error {
 public:
  virtual ~Error() = default;
  [[nodiscard]] ErrorCode code() const { return status_.code; }
  [[nodiscard]] const Diagnostics& diagnostics() const { return status_.diagnostics; }
  [[nodiscard]] const SolverStatus& status() const { return status_; }

 protected:
  Error(ErrorCode code, const std::string& message, Diagnostics diagnostics);

 private:
  SolverStatus status_;
};

class InvalidInputError : public std::invalid_argument, public Error {
 public:
  explicit InvalidInputError(const std::string& message, Diagnostics diagnostics = {});
};

class UnstableError : public std::domain_error, public Error {
 public:
  explicit UnstableError(const std::string& message, Diagnostics diagnostics = {});
};

class NotConvergedError : public std::domain_error, public Error {
 public:
  explicit NotConvergedError(const std::string& message, Diagnostics diagnostics = {});
};

class IllConditionedError : public std::domain_error, public Error {
 public:
  explicit IllConditionedError(const std::string& message, Diagnostics diagnostics = {});
};

class VerificationFailedError : public std::runtime_error, public Error {
 public:
  explicit VerificationFailedError(const std::string& message, Diagnostics diagnostics = {});
};

// A broken internal invariant (CSQ_ASSERT failure, impossible state reached).
// Unlike the other taxonomy types this signals a bug in the library, not a
// property of the input.
class InternalError : public std::logic_error, public Error {
 public:
  explicit InternalError(const std::string& message, Diagnostics diagnostics = {});
};

// A wall-clock RunBudget deadline expired while the solver was still making
// progress. diagnostics carry the budget, elapsed time, and whatever partial
// SolveStats the interrupted stage had accumulated (in stage/notes).
class DeadlineExceededError : public std::runtime_error, public Error {
 public:
  explicit DeadlineExceededError(const std::string& message, Diagnostics diagnostics = {});
};

// A cooperative CancelToken was triggered by the caller; the interrupted
// operation unwound at its next poll point. Not a failure of the input or
// the solver.
class CancelledError : public std::runtime_error, public Error {
 public:
  explicit CancelledError(const std::string& message, Diagnostics diagnostics = {});
};

// Admission control shed the request: the serving tier was at its queue-depth
// or in-flight-cost limit and rejected the work instead of queueing it
// unboundedly (src/serve/). Transient by definition — the caller should back
// off and retry; diagnostics.notes carry a "retry_after_ms=<hint>" entry.
class OverloadedError : public std::runtime_error, public Error {
 public:
  explicit OverloadedError(const std::string& message, Diagnostics diagnostics = {});
};

// A durability artifact (write-ahead journal, sweep checkpoint) failed its
// integrity checks away from the torn tail a crash legitimately leaves: a
// frame whose CRC or framing is broken *mid-file* while valid frames follow
// it. A torn tail is silently discarded by recovery; mid-file corruption
// means the artifact lies about history and must not be trusted
// (src/durable/). diagnostics.stage carries the artifact path, notes the
// byte offset of the bad frame.
class CorruptJournalError : public std::runtime_error, public Error {
 public:
  explicit CorruptJournalError(const std::string& message, Diagnostics diagnostics = {});
};

// Throw the exception type matching `code` (kOk/kInternal -> InternalError).
[[noreturn]] void throw_error(ErrorCode code, const std::string& message,
                              Diagnostics diagnostics = {});

// Classify an exception into a SolverStatus: structured errors keep their
// payload; bare std exceptions are mapped by type (invalid_argument ->
// kInvalidInput, domain_error -> kUnstable, else kInternal).
[[nodiscard]] SolverStatus status_from_exception(const std::exception& e);

}  // namespace csq
