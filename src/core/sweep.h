// Parameter sweeps that regenerate the paper's figure series.
#pragma once

#include <limits>
#include <vector>

#include "core/config.h"

namespace csq {

// One x-point of a figure: per-policy mean response times for both classes.
// NaN marks "unstable at this point" (the paper's curves diverge there).
struct SweepRow {
  double x = 0.0;
  double dedicated_short = std::numeric_limits<double>::quiet_NaN();
  double csid_short = std::numeric_limits<double>::quiet_NaN();
  double cscq_short = std::numeric_limits<double>::quiet_NaN();
  double dedicated_long = std::numeric_limits<double>::quiet_NaN();
  double csid_long = std::numeric_limits<double>::quiet_NaN();
  double cscq_long = std::numeric_limits<double>::quiet_NaN();
};

[[nodiscard]] std::vector<double> linspace(double lo, double hi, int n);

// Figures 4 and 5: response time vs rho_S at fixed rho_L.
[[nodiscard]] std::vector<SweepRow> sweep_rho_short(double rho_long, double mean_short,
                                                    double mean_long, double long_scv,
                                                    const std::vector<double>& rho_shorts);

// Figure 6: response time vs rho_L at fixed rho_S.
[[nodiscard]] std::vector<SweepRow> sweep_rho_long(double rho_short, double mean_short,
                                                   double mean_long, double long_scv,
                                                   const std::vector<double>& rho_longs);

}  // namespace csq
