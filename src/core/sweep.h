// Parameter sweeps that regenerate the paper's figure series.
//
// Sweep points are independent, so they evaluate concurrently on the
// work-stealing pool (src/parallel/) when SweepOptions::threads > 1. Row i
// of the result is always grid point i, and each point is written only by
// the worker that computed it, so sweep output is bit-identical for every
// thread count — except under a finite SweepOptions::budget, where *which*
// points get evaluated before the deadline is timing-dependent (each
// evaluated row is still deterministic). A point whose analysis throws the
// csq error taxonomy (UnstableError near the stability boundary,
// NotConvergedError, ...) yields NaN columns and a per-policy PointStatus
// instead of aborting the sweep.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/deadline.h"

// The policy panel keys rows by simulator policy; the fixed underlying type
// lets us name the enum without pulling the simulator into every sweep
// consumer (sweep.cc includes it for real).
namespace csq::sim {
enum class PolicyKind : std::uint8_t;
}

namespace csq {

// Why a policy column of a SweepRow holds (or does not hold) a value.
// NaN columns previously conflated "unstable here" with "the solver choked";
// the status byte separates them.
enum class PointStatus : std::uint8_t {
  kOk = 0,       // analytic value present
  kUnstable,     // outside the policy's stability region (expected NaN)
  kFailed,       // in-region but the solver failed (NotConverged, ...)
  kDegraded,     // value present but from a fallback rung, not the exact
                 // analysis (resilient sweeps only)
  kTimedOut,     // the sweep budget was exhausted before this point ran
};

// "ok", "unstable", "failed", "degraded", "timed-out".
[[nodiscard]] const char* point_status_name(PointStatus s);

// One x-point of a figure: per-policy mean response times for both classes.
// NaN marks "no analytic value" — the matching status byte says why.
struct SweepRow {
  double x = 0.0;
  double dedicated_short = std::numeric_limits<double>::quiet_NaN();
  double csid_short = std::numeric_limits<double>::quiet_NaN();
  double cscq_short = std::numeric_limits<double>::quiet_NaN();
  double dedicated_long = std::numeric_limits<double>::quiet_NaN();
  double csid_long = std::numeric_limits<double>::quiet_NaN();
  double cscq_long = std::numeric_limits<double>::quiet_NaN();
  PointStatus dedicated_status = PointStatus::kUnstable;
  PointStatus csid_status = PointStatus::kUnstable;
  PointStatus cscq_status = PointStatus::kUnstable;
};

struct SweepOptions {
  // Worker threads evaluating sweep points: 1 = inline on the caller
  // (default), 0 = all hardware threads, n >= 2 = pool of n workers.
  int threads = 1;
  // Keep row i == grid point i (always honored today; reserved so future
  // non-deterministic reductions have an explicit opt-out).
  bool deterministic_order = true;
  // Wall-clock/cancellation budget, polled once per sweep point (never
  // inside one): an interrupted budget — deadline or cancellation — marks
  // every not-yet-evaluated point kTimedOut and keeps every already-
  // evaluated row, so running out of time degrades coverage rather than
  // discarding the sweep (no exception escapes the pool).
  RunBudget budget;
  // Evaluate the CS-CQ column through analyze_resilient() instead of the
  // exact analysis only: points the QBD solver cannot crack fall back to
  // truncation/simulation and are marked kDegraded instead of kFailed.
  bool resilient = false;
  // Resume hooks, driven by checkpointed sweeps (src/durable/checkpoint.h);
  // plain sweeps leave them unset. With resume_done set (both vectors must
  // parallel the grid, else csq::InvalidInputError), point i is skipped when
  // (*resume_done)[i] != 0 and (*resume_rows)[i] is returned verbatim —
  // bit-identical resumption, since evaluation is deterministic.
  const std::vector<SweepRow>* resume_rows = nullptr;
  const std::vector<std::uint8_t>* resume_done = nullptr;
  // Invoked with every freshly evaluated (not resumed) row, from whichever
  // pool worker computed it — must be thread-safe. The periodic-checkpoint
  // trigger.
  std::function<void(std::size_t, const SweepRow&)> on_row;
};

// n evenly spaced points over [lo, hi] inclusive. Edge cases: n == 1 yields
// {lo}; lo == hi yields n copies of lo; the last point is exactly hi (no
// rounding drift). Throws csq::InvalidInputError for n <= 0 or non-finite
// bounds.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, int n);

// n evenly spaced points strictly inside (lo, hi): lo + k (hi-lo)/(n+1) for
// k = 1..n. Use for sweep grids over a stability region so no point lands
// exactly on the boundary, where the analysis is degenerate. Requires
// lo < hi and n >= 1. Edge case, deliberately unlike linspace: n == 1
// yields the single midpoint {(lo+hi)/2}, never the boundary {lo}.
[[nodiscard]] std::vector<double> linspace_open(double lo, double hi, int n);

// Canonical operating-point grids for the paper's figure series. The fig4/5/6
// benches, the golden regression suite (tests/test_golden_figures.cc) and ad
// hoc sweeps all pull from these three builders, so the x-axes cannot drift
// apart between a bench rerun and the pinned golden values.

// Figures 4-5 x-axis: rho_S from 0.05 to 1.45 in steps of 0.05 (29 points).
[[nodiscard]] std::vector<double> fig_grid_rho_short();

// Figure 6 short-job panels: rho_L from 0.01 to 0.49 (25 points), strictly
// below the CS-CQ frontier rho_L = 2 - rho_S = 0.5 at the figure's rho_S = 1.5.
[[nodiscard]] std::vector<double> fig_grid_rho_long_shorts();

// Figure 6 long-job panels: rho_L from 0.02 to 0.96 (25 points) — the long
// host is stable for any rho_L < 1 regardless of policy.
[[nodiscard]] std::vector<double> fig_grid_rho_long_longs();

// Figures 4 and 5: response time vs rho_S at fixed rho_L. Runs under the
// ambient sweep budget: csq::DeadlineExceededError / csq::CancelledError
// escape when it is interrupted mid-sweep.
[[nodiscard]] std::vector<SweepRow> sweep_rho_short(double rho_long, double mean_short,
                                                    double mean_long, double long_scv,
                                                    const std::vector<double>& rho_shorts,
                                                    const SweepOptions& opts = {});

// Figure 6: response time vs rho_L at fixed rho_S.
[[nodiscard]] std::vector<SweepRow> sweep_rho_long(double rho_short, double mean_short,
                                                   double mean_long, double long_scv,
                                                   const std::vector<double>& rho_longs,
                                                   const SweepOptions& opts = {});

// --- policy x job-size-distribution x load panel ---------------------------

// Long-job size families the panel sweeps over. All three are evaluated
// through the same three-moment interface, so the analytic policies stay
// analyzable even under the heavy-tailed family.
enum class JobSizeDist : std::uint8_t {
  kExp,      // exponential (the paper's scv == 1 baseline); long_scv ignored
  kCoxian,   // two-moment Coxian fit at the requested long_scv
  kBPareto,  // BoundedPareto(alpha = 1.5, hi = 1000 x mean) matched to the
             // requested mean — the Crovella-style heavy tail of Van Houdt's
             // stealing-vs-sharing comparison; long_scv ignored
};

// "exp", "coxian", "bpareto".
[[nodiscard]] const char* job_size_dist_name(JobSizeDist d);

// Inverse of job_size_dist_name. Throws csq::InvalidInputError on unknown
// names, listing the valid ones.
[[nodiscard]] JobSizeDist job_size_dist_from_name(const std::string& name);

// Workload for one panel column: exponential shorts with mean mean_short;
// longs drawn from the requested family matched to mean_long (kCoxian also
// honors long_scv; see JobSizeDist for the fixed kBPareto shape). The CLI
// and serve layer build --dist workloads through this too, so "bpareto" means
// the same distribution everywhere. Throws csq::InvalidInputError (via the
// dist constructors) on malformed parameters.
[[nodiscard]] SystemConfig panel_workload(JobSizeDist dist, double rho_short,
                                          double rho_long, double mean_short,
                                          double mean_long, double long_scv);

// One cell of the panel: a policy evaluated at one load under one long-size
// family. Analytic policies (sim::policy_registry() rows with analytic ==
// true) carry exact values and zero CIs; the rest carry replicated-
// simulation means with across-replication 95% half-widths. NaN response
// columns pair with a non-kOk status, exactly like SweepRow.
struct PanelRow {
  sim::PolicyKind policy{};
  JobSizeDist dist = JobSizeDist::kExp;
  double rho_short = 0.0;
  double rho_long = 0.0;
  double short_response = std::numeric_limits<double>::quiet_NaN();
  double long_response = std::numeric_limits<double>::quiet_NaN();
  double short_ci95 = 0.0;
  double long_ci95 = 0.0;
  PointStatus status = PointStatus::kUnstable;
  bool analytic = false;
};

struct PanelOptions {
  // Worker threads across panel cells: 1 = inline, 0 = all hardware
  // threads, n >= 2 = pool of n. Each cell's replications run inline on the
  // worker that owns the cell, seeded by (seed, policy, dist, point) alone,
  // so the panel is bit-identical for every thread count.
  int threads = 1;
  std::uint64_t seed = 20030701;
  // Simulation effort per non-analytic cell.
  std::size_t sim_completions = 200000;
  int sim_replications = 4;
  // Per-policy knobs forwarded to make_policy for the simulated cells.
  PolicyConfig policy;
  // Same once-per-cell budget contract as SweepOptions::budget.
  RunBudget budget;
};

// Evaluate every requested policy on the rho_short grid at fixed rho_long
// under the given long-size family. Rows are policy-major (all grid points
// of policies[0], then policies[1], ...), row i is always the same cell, and
// evaluation is deterministic, so the panel is bit-identical for every
// thread count. Throws csq::InvalidInputError on malformed arguments.
[[nodiscard]] std::vector<PanelRow> sweep_policy_panel(
    const std::vector<sim::PolicyKind>& policies, JobSizeDist dist, double rho_long,
    double mean_short, double mean_long, double long_scv,
    const std::vector<double>& rho_shorts, const PanelOptions& opts = {});

}  // namespace csq
