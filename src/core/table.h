// Minimal fixed-width ASCII table / CSV writer for bench and example output.
//
// Throws csq::InvalidInputError (core/status.h) on malformed arguments.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace csq {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // NaN cells render as "-" (unstable / not applicable).
  void add_row(const std::vector<double>& values);
  void add_row(std::vector<std::string> cells);

  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Format a double compactly ("-" for NaN).
[[nodiscard]] std::string format_cell(double v, int precision = 4);

}  // namespace csq
