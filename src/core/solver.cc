#include "core/solver.h"

#include <stdexcept>

#include "analysis/cscq.h"
#include "analysis/csid.h"
#include "analysis/dedicated.h"
#include "analysis/stability.h"

namespace csq {

const char* policy_label(Policy p) {
  switch (p) {
    case Policy::kDedicated: return "Dedicated";
    case Policy::kCsId: return "CS-ID";
    case Policy::kCsCq: return "CS-CQ";
  }
  return "?";
}

PolicyMetrics analyze(Policy policy, const SystemConfig& config, int busy_period_moments) {
  switch (policy) {
    case Policy::kDedicated:
      return analysis::analyze_dedicated(config);
    case Policy::kCsId: {
      analysis::CsidOptions opts;
      opts.busy_period_moments = busy_period_moments;
      return analysis::analyze_csid(config, opts).metrics;
    }
    case Policy::kCsCq: {
      analysis::CscqOptions opts;
      opts.busy_period_moments = busy_period_moments;
      return analysis::analyze_cscq(config, opts).metrics;
    }
  }
  throw std::invalid_argument("analyze: unknown policy");
}

bool is_stable(Policy policy, const SystemConfig& config) {
  const double rs = config.rho_short();
  const double rl = config.rho_long();
  if (rl >= 1.0) return false;
  switch (policy) {
    case Policy::kDedicated: return analysis::dedicated_stable(rs, rl);
    case Policy::kCsId: return analysis::csid_stable(rs, rl);
    case Policy::kCsCq: return analysis::cscq_stable(rs, rl);
  }
  return false;
}

}  // namespace csq
