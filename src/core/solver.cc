#include "core/solver.h"

#include <cmath>
#include <string>
#include <vector>

#include "analysis/cscq.h"
#include "analysis/csid.h"
#include "analysis/dedicated.h"
#include "analysis/stability.h"

namespace csq {

namespace {

void check_class(const ClassMetrics& m, double lambda, const char* label,
                 VerifyLevel level, std::vector<std::string>& failures) {
  const auto bad = [&](const std::string& what) {
    failures.push_back(std::string(label) + ": " + what);
  };
  if (!std::isfinite(m.mean_response) || !std::isfinite(m.mean_wait) ||
      !std::isfinite(m.mean_number)) {
    bad("non-finite metric");
    return;
  }
  if (m.mean_response <= 0.0) bad("mean response not positive");
  if (m.mean_wait < -1e-6) bad("negative mean wait");
  if (m.mean_number < -1e-9) bad("negative mean number");
  if (level == VerifyLevel::kFull) {
    const double expect = lambda * m.mean_response;
    if (std::abs(m.mean_number - expect) > 1e-6 * std::max(1.0, std::abs(expect)))
      bad("E[N] inconsistent with Little's law");
  }
}

}  // namespace

const char* policy_label(Policy p) {
  switch (p) {
    case Policy::kDedicated: return "Dedicated";
    case Policy::kCsId: return "CS-ID";
    case Policy::kCsCq: return "CS-CQ";
  }
  return "?";
}

SolverStatus verify_metrics(const PolicyMetrics& metrics, const SystemConfig& config,
                            VerifyLevel level) {
  SolverStatus status;
  if (level == VerifyLevel::kNone) return status;
  std::vector<std::string> failures;
  check_class(metrics.shorts, config.effective_lambda_short(), "shorts", level, failures);
  check_class(metrics.longs, config.lambda_long, "longs", level, failures);
  if (!failures.empty()) {
    status.code = ErrorCode::kVerificationFailed;
    status.message = "verify_metrics: " + failures.front() +
                     (failures.size() > 1
                          ? " (+" + std::to_string(failures.size() - 1) + " more)"
                          : "");
    status.diagnostics =
        Diagnostics::loads(config.rho_short(), config.rho_long());
    status.diagnostics.notes = std::move(failures);
  }
  return status;
}

PolicyMetrics analyze(Policy policy, const SystemConfig& config, int busy_period_moments,
                      VerifyLevel verify, const RunBudget& budget,
                      qbd::Workspace* workspace) {
  budget.check("analyze");
  PolicyMetrics metrics;
  switch (policy) {
    case Policy::kDedicated:
      metrics = analysis::analyze_dedicated(config);
      break;
    case Policy::kCsId: {
      analysis::CsidOptions opts;
      opts.busy_period_moments = busy_period_moments;
      opts.qbd.verify = verify;
      opts.qbd.budget = budget;
      opts.workspace = workspace;
      metrics = analysis::analyze_csid(config, opts).metrics;
      break;
    }
    case Policy::kCsCq: {
      analysis::CscqOptions opts;
      opts.busy_period_moments = busy_period_moments;
      opts.qbd.verify = verify;
      opts.qbd.budget = budget;
      opts.workspace = workspace;
      metrics = analysis::analyze_cscq(config, opts).metrics;
      break;
    }
    default: throw InvalidInputError("analyze: unknown policy");
  }
  const SolverStatus v = verify_metrics(metrics, config, verify);
  if (!v.ok()) throw VerificationFailedError(v.message, v.diagnostics);
  return metrics;
}

AnalyzeOutcome try_analyze(Policy policy, const SystemConfig& config,
                           int busy_period_moments, VerifyLevel verify,
                           const RunBudget& budget, qbd::Workspace* workspace) noexcept {
  AnalyzeOutcome out;
  try {
    out.metrics = analyze(policy, config, busy_period_moments, verify, budget, workspace);
  } catch (const Error& e) {
    out.status = e.status();
  } catch (const std::exception& e) {
    out.status = status_from_exception(e);
  } catch (...) {
    out.status.code = ErrorCode::kInternal;
    out.status.message = "analyze: unknown exception";
  }
  return out;
}

bool is_stable(Policy policy, const SystemConfig& config) {
  const double rs = config.rho_short();
  const double rl = config.rho_long();
  if (rl >= 1.0) return false;
  switch (policy) {
    case Policy::kDedicated: return analysis::dedicated_stable(rs, rl);
    case Policy::kCsId: return analysis::csid_stable(rs, rl);
    case Policy::kCsCq: return analysis::cscq_stable(rs, rl);
  }
  return false;
}

}  // namespace csq
