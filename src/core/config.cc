#include "core/config.h"

#include <memory>

#include "core/status.h"

#include "core/numeric.h"

namespace csq {

void SystemConfig::validate() const {
  if (!short_size || !long_size)
    throw InvalidInputError("SystemConfig: size distributions must be set");
  if (lambda_short < 0.0 || lambda_long < 0.0)
    throw InvalidInputError("SystemConfig: arrival rates must be nonnegative");
}

SystemConfig SystemConfig::from_loads(double rho_short, double rho_long,
                                      dist::DistPtr short_size, dist::DistPtr long_size) {
  if (!short_size || !long_size)
    throw InvalidInputError("SystemConfig::from_loads: distributions must be set");
  if (rho_short < 0.0 || rho_long < 0.0)
    // Name the values in the message: a negative load collides with the
    // Diagnostics "unset" sentinel, so the payload alone can't show it.
    throw InvalidInputError("SystemConfig::from_loads: loads must be nonnegative (rho_short = " +
                                std::to_string(rho_short) + ", rho_long = " +
                                std::to_string(rho_long) + ")",
                            Diagnostics::loads(rho_short, rho_long));
  SystemConfig c;
  c.short_size = std::move(short_size);
  c.long_size = std::move(long_size);
  c.lambda_short = rho_short / c.short_size->mean();
  c.lambda_long = rho_long / c.long_size->mean();
  return c;
}

SystemConfig SystemConfig::paper_setup(double rho_short, double rho_long, double mean_short,
                                       double mean_long, double long_scv) {
  auto shorts = std::make_shared<dist::PhaseType>(dist::PhaseType::exponential(1.0 / mean_short));
  auto longs = std::make_shared<dist::PhaseType>(
      num::approx_eq(long_scv, 1.0) ? dist::PhaseType::exponential(1.0 / mean_long)
                      : dist::PhaseType::coxian_mean_scv(mean_long, long_scv));
  return from_loads(rho_short, rho_long, std::move(shorts), std::move(longs));
}

ClassMetrics class_metrics_from_response(double mean_response, double lambda,
                                         double mean_size) {
  return {mean_response, mean_response - mean_size, lambda * mean_response};
}

}  // namespace csq
