#include "core/config.h"

#include <cstdio>
#include <memory>
#include <string>

#include "core/status.h"

#include "core/numeric.h"

namespace csq {

void SystemConfig::validate() const {
  if (!short_size || !long_size)
    throw InvalidInputError("SystemConfig: size distributions must be set");
  if (lambda_short < 0.0 || lambda_long < 0.0)
    throw InvalidInputError("SystemConfig: arrival rates must be nonnegative");
}

SystemConfig SystemConfig::from_loads(double rho_short, double rho_long,
                                      dist::DistPtr short_size, dist::DistPtr long_size) {
  if (!short_size || !long_size)
    throw InvalidInputError("SystemConfig::from_loads: distributions must be set");
  if (rho_short < 0.0 || rho_long < 0.0)
    // Name the values in the message: a negative load collides with the
    // Diagnostics "unset" sentinel, so the payload alone can't show it.
    throw InvalidInputError("SystemConfig::from_loads: loads must be nonnegative (rho_short = " +
                                std::to_string(rho_short) + ", rho_long = " +
                                std::to_string(rho_long) + ")",
                            Diagnostics::loads(rho_short, rho_long));
  SystemConfig c;
  c.short_size = std::move(short_size);
  c.long_size = std::move(long_size);
  c.lambda_short = rho_short / c.short_size->mean();
  c.lambda_long = rho_long / c.long_size->mean();
  return c;
}

SystemConfig SystemConfig::paper_setup(double rho_short, double rho_long, double mean_short,
                                       double mean_long, double long_scv) {
  auto shorts = std::make_shared<dist::PhaseType>(dist::PhaseType::exponential(1.0 / mean_short));
  auto longs = std::make_shared<dist::PhaseType>(
      num::approx_eq(long_scv, 1.0) ? dist::PhaseType::exponential(1.0 / mean_long)
                      : dist::PhaseType::coxian_mean_scv(mean_long, long_scv));
  return from_loads(rho_short, rho_long, std::move(shorts), std::move(longs));
}

ClassMetrics class_metrics_from_response(double mean_response, double lambda,
                                         double mean_size) {
  return {mean_response, mean_response - mean_size, lambda * mean_response};
}

namespace {

// Hexfloat rendering: exact, locale-independent, and equal iff the doubles
// are bit-identical (modulo -0.0 == 0.0, which the analysis cannot tell
// apart either).
std::string hexf(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

void append_dist(std::string* key, const char* tag, const dist::Distribution& d) {
  *key += tag;
  *key += "{m1=" + hexf(d.moment(1)) + ",m2=" + hexf(d.moment(2)) +
          ",m3=" + hexf(d.moment(3)) + "}";
}

}  // namespace

std::string canonical_key(const SystemConfig& config) {
  config.validate();
  std::string key;
  key.reserve(160);
  key += "lamS=" + hexf(config.effective_lambda_short());
  key += "|lamL=" + hexf(config.lambda_long);
  key += "|";
  append_dist(&key, "S", *config.short_size);
  key += "|";
  append_dist(&key, "L", *config.long_size);
  if (config.short_arrivals) {
    // A MAP replaces the Poisson stream: fold its full (D0, D1) identity in,
    // element by element — two MAPs with equal mean rate but different
    // burstiness must not collide.
    key += "|MAP{";
    const linalg::Matrix& d0 = config.short_arrivals->d0();
    const linalg::Matrix& d1 = config.short_arrivals->d1();
    for (std::size_t i = 0; i < d0.rows(); ++i)
      for (std::size_t j = 0; j < d0.cols(); ++j)
        key += hexf(d0(i, j)) + "," + hexf(d1(i, j)) + ";";
    key += "}";
  }
  return key;
}

std::uint64_t config_hash(const SystemConfig& config) {
  // FNV-1a 64-bit over the canonical key.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : canonical_key(config)) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace csq
