// Public configuration and result types for the cyclesteal library.
//
// Throws csq::InvalidInputError (core/status.h) on malformed arguments.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "dist/distribution.h"
#include "dist/map_process.h"
#include "dist/phase_type.h"

namespace csq {

// A two-class, two-host system: short (beneficiary) and long (donor) jobs
// arrive Poisson with the given rates; sizes are drawn i.i.d. from the given
// distributions. This single object drives both the analytic solvers and the
// discrete-event simulator.
struct SystemConfig {
  double lambda_short = 0.0;
  double lambda_long = 0.0;
  dist::DistPtr short_size;
  dist::DistPtr long_size;
  // Optional Markovian arrival process for the short class (the paper's
  // "can be generalized to a MAP"). When set it replaces the Poisson stream
  // and lambda_short is ignored; the effective rate is its mean rate.
  dist::MapPtr short_arrivals;

  [[nodiscard]] double effective_lambda_short() const {
    return short_arrivals ? short_arrivals->mean_rate() : lambda_short;
  }
  [[nodiscard]] double rho_short() const {
    return effective_lambda_short() * short_size->mean();
  }
  [[nodiscard]] double rho_long() const { return lambda_long * long_size->mean(); }

  // Throws std::invalid_argument on missing distributions / negative rates.
  void validate() const;

  // Convenience: build a config from per-class loads and size distributions
  // (lambda = rho / mean).
  static SystemConfig from_loads(double rho_short, double rho_long, dist::DistPtr short_size,
                                 dist::DistPtr long_size);

  // The paper's canonical setups: exponential shorts with the given mean;
  // longs exponential (scv == 1) or two-moment Coxian (scv > 1).
  static SystemConfig paper_setup(double rho_short, double rho_long, double mean_short,
                                  double mean_long, double long_scv = 1.0);
};

// Per-policy tuning knobs for the simulator's policy plug-ins (the policy
// zoo of docs/policies.md). One block covers every policy: each policy reads
// only the knobs it names and ignores the rest, so a single PolicyConfig can
// drive a whole policy x load sweep panel. Validation happens in the policy
// constructors (make_policy throws csq::InvalidInputError on bad knobs).
struct PolicyConfig {
  // Threshold stealing: an idle thief raids the other host only when the
  // victim's queue holds at least steal_threshold jobs...
  int steal_threshold = 2;
  // ...and then takes at most steal_batch of them in one raid.
  int steal_batch = 2;
  // Central work sharing: an arrival that would make a busy host's queue
  // exceed share_threshold is pushed to the other host instead.
  int share_threshold = 1;
};

// Per-class steady-state metrics.
struct ClassMetrics {
  double mean_response = 0.0;  // E[T] = wait + service
  double mean_wait = 0.0;      // E[T] - E[X]
  double mean_number = 0.0;    // E[N] = lambda E[T] (Little)
};

struct PolicyMetrics {
  ClassMetrics shorts;
  ClassMetrics longs;
};

// Build ClassMetrics from a mean response time.
[[nodiscard]] ClassMetrics class_metrics_from_response(double mean_response, double lambda,
                                                       double mean_size);

// Canonical textual identity of a config, suitable as a memo-cache key: the
// arrival rates and the first three raw moments of each size distribution
// (plus the MAP identity when one is set), every double rendered in hexfloat
// so two configs share a key iff they are bit-identical inputs to the
// analysis. Two distributions with equal moments canonicalize equally — by
// design, since the analytic solvers consume only the moments.
// Throws csq::InvalidInputError (via validate()) on malformed configs.
[[nodiscard]] std::string canonical_key(const SystemConfig& config);

// FNV-1a 64-bit hash of canonical_key() — a compact shard/bucket identity
// for the serve-layer solver cache.
[[nodiscard]] std::uint64_t config_hash(const SystemConfig& config);

}  // namespace csq
