#include "core/table.h"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/status.h"

namespace csq {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw InvalidInputError("Table: need headers");
}

void Table::add_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) cells.push_back(format_cell(v));
  add_row(std::move(cells));
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw InvalidInputError("Table::add_row: wrong number of cells");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c])) << cells[c];
    os << '\n';
  };
  line(headers_);
  std::size_t total = headers_.size() - 1;
  for (std::size_t w : width) total += w + 1;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) line(row);
}

void Table::write_csv(std::ostream& os) const {
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) os << (c == 0 ? "" : ",") << cells[c];
    os << '\n';
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
}

std::string format_cell(double v, int precision) {
  if (std::isnan(v)) return "-";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace csq
