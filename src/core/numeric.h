// Canonical floating-point comparison helpers.
//
// Raw `==`/`!=` between floating-point expressions is banned repo-wide by
// csq_lint rule `no-float-eq` (see docs/static-analysis.md): most call sites
// actually want a tolerance, and the ones that genuinely want bit-exact
// comparison should say so explicitly. These helpers encode both intents:
//
//   approx_eq / approx_zero — combined absolute + relative tolerance; use
//     for convergence checks, mass/normalization checks, and any comparison
//     of computed quantities.
//   exactly_eq / exactly_zero — bit-exact IEEE comparison; use only where
//     exactness is the semantics (sparse-skip fast paths over entries that
//     are structurally zero, sentinel values, branch on a user-supplied
//     constant). Wrapping the comparison in a named function makes the
//     intent auditable.
#pragma once

#include <algorithm>
#include <cmath>

namespace csq::num {

inline constexpr double kDefaultAbsTol = 1e-12;
inline constexpr double kDefaultRelTol = 1e-9;

// True when |a - b| <= abs_tol or |a - b| <= rel_tol * max(|a|, |b|).
// NaN compares unequal to everything; equal infinities compare equal.
[[nodiscard]] inline bool approx_eq(double a, double b, double abs_tol = kDefaultAbsTol,
                                    double rel_tol = kDefaultRelTol) {
  if (a == b) return true;  // csq-lint: allow(no-float-eq): this is the canonical helper
  const double diff = std::abs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::abs(a), std::abs(b));
}

[[nodiscard]] inline bool approx_zero(double x, double abs_tol = kDefaultAbsTol) {
  return std::abs(x) <= abs_tol;
}

// Bit-exact equality, named so the intent is explicit at the call site.
[[nodiscard]] constexpr bool exactly_eq(double a, double b) {
  return a == b;  // csq-lint: allow(no-float-eq): explicit bit-exact comparison
}

// Bit-exact zero test (sparse-skip fast paths: skipping only structural
// zeros never changes the computed result, a tolerance would).
[[nodiscard]] constexpr bool exactly_zero(double x) {
  return x == 0.0;  // csq-lint: allow(no-float-eq): explicit bit-exact comparison
}

}  // namespace csq::num
