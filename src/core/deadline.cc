#include "core/deadline.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

namespace csq {

namespace timebase {

namespace {
std::atomic<std::int64_t>& virtual_offset() {
  static std::atomic<std::int64_t> offset{0};
  return offset;
}
}  // namespace

std::int64_t now_ns() {
  const auto steady = std::chrono::steady_clock::now().time_since_epoch();
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(steady).count();
  return ns + virtual_offset().load(std::memory_order_relaxed);
}

void advance_virtual_ns(std::int64_t delta_ns) {
  if (delta_ns <= 0) return;
  virtual_offset().fetch_add(delta_ns, std::memory_order_relaxed);
}

void reset_virtual() { virtual_offset().store(0, std::memory_order_relaxed); }

std::int64_t virtual_offset_ns() { return virtual_offset().load(std::memory_order_relaxed); }

}  // namespace timebase

namespace {

constexpr double kNsPerMs = 1e6;

// ms -> ns offset with saturation (avoids int64 overflow for huge finite ms).
std::int64_t ms_to_ns_saturating(double ms) {
  const double ns = ms * kNsPerMs;
  if (ns >= static_cast<double>(INT64_MAX) / 2) return INT64_MAX / 2;
  return static_cast<std::int64_t>(ns);
}

}  // namespace

RunBudget RunBudget::with_timeout_ms(double ms) {
  if (std::isnan(ms)) throw InvalidInputError("RunBudget timeout must not be NaN");
  RunBudget b;
  b.start_ns_ = timebase::now_ns();
  if (std::isinf(ms)) return b;  // unlimited, but elapsed_ms() is measured
  if (ms <= 0.0) {
    b.deadline_ns_ = b.start_ns_;  // already expired: now >= deadline holds
    return b;
  }
  b.deadline_ns_ = b.start_ns_ + ms_to_ns_saturating(ms);
  return b;
}

RunBudget RunBudget::with_token(const CancelToken& token) const {
  RunBudget b = *this;
  b.flag_ = token.flag_;
  if (b.start_ns_ == 0) b.start_ns_ = timebase::now_ns();
  return b;
}

RunBudget RunBudget::slice_ms(double ms) const {
  if (std::isnan(ms)) throw InvalidInputError("RunBudget slice must not be NaN");
  RunBudget b = *this;
  b.start_ns_ = timebase::now_ns();
  if (std::isinf(ms)) return b;  // keep the parent deadline
  const std::int64_t cap =
      ms <= 0.0 ? b.start_ns_ : b.start_ns_ + ms_to_ns_saturating(ms);
  if (cap < b.deadline_ns_) b.deadline_ns_ = cap;
  return b;
}

double RunBudget::remaining_ms() const {
  if (!has_deadline()) return std::numeric_limits<double>::infinity();
  const std::int64_t left = deadline_ns_ - timebase::now_ns();
  return left <= 0 ? 0.0 : static_cast<double>(left) / kNsPerMs;
}

double RunBudget::elapsed_ms() const {
  if (start_ns_ == 0) return 0.0;
  return static_cast<double>(timebase::now_ns() - start_ns_) / kNsPerMs;
}

double RunBudget::budget_ms() const {
  if (!has_deadline()) return std::numeric_limits<double>::infinity();
  return static_cast<double>(deadline_ns_ - start_ns_) / kNsPerMs;
}

void RunBudget::check(const std::string& where) const { check(where, Diagnostics{}); }

void RunBudget::check(const std::string& where, Diagnostics d) const {
  if (cancelled()) {
    d = annotate(std::move(d));
    if (d.stage.empty()) d.stage = where;
    throw CancelledError("cancelled in " + where, std::move(d));
  }
  if (expired()) {
    d = annotate(std::move(d));
    if (d.stage.empty()) d.stage = where;
    throw DeadlineExceededError("deadline exceeded in " + where + " (budget " +
                                    std::to_string(budget_ms()) + " ms)",
                                std::move(d));
  }
}

Diagnostics RunBudget::annotate(Diagnostics d) const {
  if (has_deadline()) {
    d.budget_ms = budget_ms();
    d.elapsed_ms = elapsed_ms();
  }
  return d;
}

}  // namespace csq
