// Deterministic fault injection: named fault sites compiled in under
// -DCSQ_FAULT_INJECTION, armed by tests/CLI to fire on the Nth pass.
//
// A fault site is a named probe in recovery-relevant code:
//
//   CSQ_FAULT_POINT("qbd.logred.iterate");              // plain site
//   CSQ_FAULT_POINT_MATRIX("qbd.fi.iterate", ptr, n);   // can corrupt data
//
// Site names are `module.sub.action` (three lowercase dot-separated
// segments; lint rule `fault-site-naming`) and each name appears exactly
// once in the tree, so a site identifies one code location. With the CMake
// option OFF (the default) both macros expand to `((void)0)` — zero code,
// zero data, no hot-path cost.
//
// Arming: `arm(parse_arm_spec("qbd.fi.iterate:3:throw:NotConverged"))` makes
// the third pass through that site throw; the site then disarms itself
// (single-shot), so the retry/fallback machinery that runs after the failure
// sees a healthy site. Kinds:
//
//   throw:<ErrorCode>   throw the matching taxonomy error at the site
//   nan                 overwrite element 0 of a matrix site's data with NaN
//                       (firing at a plain site is an InternalError)
//   burn:<ms>           advance the virtual clock (timebase) by <ms> — makes
//                       deadline expiry testable without sleeping
//
// Everything here is process-global and mutex-protected; sites may be hit
// from worker threads. hits() counts every pass through a site (armed or
// not) for test assertions; counters and armings reset via disarm_all().
//
// Throws csq::InvalidInputError (arm/parse on bad spec, or arm when fault
// injection is not compiled in) and, when an armed site fires, whatever the
// armed kind dictates (any taxonomy error, or csq::InternalError for `nan`
// at a plain site).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/status.h"

namespace csq::fault {

// True when the library was built with -DCSQ_FAULT_INJECTION=ON. Tests that
// need armed sites GTEST_SKIP() when this is false.
constexpr bool enabled() {
#ifdef CSQ_FAULT_INJECTION
  return true;
#else
  return false;
#endif
}

enum class Kind {
  kThrow,  // throw the taxonomy error `code`
  kNan,    // inject NaN into the site's matrix data
  kBurn,   // advance the virtual clock by burn_ms
};

struct ArmSpec {
  std::string site;                       // "module.sub.action"
  long trigger_count = 1;                 // fire on the Nth pass (1-based)
  Kind kind = Kind::kThrow;
  ErrorCode code = ErrorCode::kInternal;  // for kThrow
  double burn_ms = 0.0;                   // for kBurn
};

// Parse "site:count:kind" where kind is "throw:<ErrorCode>", "nan", or
// "burn:<ms>", e.g. "qbd.fi.iterate:1:throw:NotConverged".
[[nodiscard]] ArmSpec parse_arm_spec(const std::string& text);

// Arm a site (replacing any previous arming of the same site). Throws
// InvalidInputError when fault injection is not compiled in or the spec is
// malformed — arming must never silently do nothing.
void arm(const ArmSpec& spec);

// Drop all armings and zero all hit counters.
void disarm_all();

// Total passes through `site` since the last disarm_all() (0 when the flag
// is off — the macros compile away).
[[nodiscard]] long hits(const std::string& site);

// Sites currently armed (for diagnostics).
[[nodiscard]] std::vector<std::string> armed_sites();

namespace detail {
// Macro entry points; never call directly. An armed site throws whatever
// its plan entry configures — any taxonomy class can surface:
// Throws csq::InvalidInputError, csq::UnstableError,
// csq::NotConvergedError, csq::IllConditionedError,
// csq::VerificationFailedError, csq::DeadlineExceededError,
// csq::CancelledError, csq::OverloadedError or
// csq::CorruptJournalError, per the armed plan.
void hit(const char* site);
void hit_matrix(const char* site, double* data, std::size_t size);
}  // namespace detail

}  // namespace csq::fault

#ifdef CSQ_FAULT_INJECTION
#define CSQ_FAULT_POINT(site) ::csq::fault::detail::hit(site)
#define CSQ_FAULT_POINT_MATRIX(site, data, size) \
  ::csq::fault::detail::hit_matrix(site, data, size)
#else
#define CSQ_FAULT_POINT(site) ((void)0)
#define CSQ_FAULT_POINT_MATRIX(site, data, size) ((void)0)
#endif
