// Wall-clock run budgets and cooperative cancellation.
//
// A RunBudget bounds how long a solve may run (deadline) and lets a caller
// abort it mid-flight (CancelToken). Long-running loops poll
// `budget.interrupted()` (cheap: two loads, and a clock read only when a
// deadline is actually set) or call `budget.check(where)` which throws the
// matching taxonomy error. Budgets are small value types: copy them freely
// into worker threads; a copy shares the parent's deadline and token.
//
// Polling is cooperative, so deadlines overshoot by at most one poll
// interval: one functional/log-reduction iteration in qbd, one Gauss–Seidel
// sweep in ctmc, one scheduled range task in the parallel pool, one sweep
// point, or one simulation replication (the current replication always runs
// to completion). See docs/robustness.md §7 for the full contract.
//
// Time source: timebase::now_ns() is std::chrono::steady_clock plus an
// atomic *virtual offset* that tests and the fault-injection layer can
// advance without sleeping — deadline behaviour is testable deterministically
// (no timing-dependent sleeps) by burning virtual time at a fault site.
//
// Throws csq::DeadlineExceededError / csq::CancelledError (from check()) and
// csq::InvalidInputError (from with_timeout_ms on NaN).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/status.h"

namespace csq {

namespace timebase {

// Monotonic nanoseconds since an arbitrary epoch: steady_clock + virtual offset.
[[nodiscard]] std::int64_t now_ns();

// Advance the virtual clock (negative deltas are ignored). Affects every
// RunBudget in the process; intended for tests and fault injection only.
void advance_virtual_ns(std::int64_t delta_ns);

// Reset the virtual offset to zero (test isolation).
void reset_virtual();

[[nodiscard]] std::int64_t virtual_offset_ns();

}  // namespace timebase

// Shared cooperative cancel flag. Construction allocates the shared state;
// copies observe and trigger the same flag. A default-constructed token is
// live (not cancelled) until cancel() is called on any copy.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() const { flag_->store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  friend class RunBudget;
  std::shared_ptr<std::atomic<bool>> flag_;
};

// Deadline + cancel flag bundle threaded through solver options. The default
// instance is inert (no deadline, no token): interrupted() is branch-only and
// never reads the clock, so budget support costs nothing when unused.
class RunBudget {
 public:
  RunBudget() = default;  // unlimited, uncancellable

  [[nodiscard]] static RunBudget unlimited() { return RunBudget{}; }

  // Budget expiring `ms` milliseconds from now. ms <= 0 yields an
  // already-expired budget (every check(), including the first, throws);
  // +infinity yields an unlimited budget; NaN throws InvalidInputError.
  [[nodiscard]] static RunBudget with_timeout_ms(double ms);

  // Copy of this budget that also observes `token`.
  [[nodiscard]] RunBudget with_token(const CancelToken& token) const;

  // Sub-budget capped at `ms` from now but never extending past this
  // budget's own deadline; shares the cancel token. Used by the degradation
  // ladder to stop an early rung starving later ones.
  [[nodiscard]] RunBudget slice_ms(double ms) const;

  [[nodiscard]] bool has_deadline() const { return deadline_ns_ != kNoDeadline; }
  [[nodiscard]] bool expired() const {
    return has_deadline() && timebase::now_ns() >= deadline_ns_;
  }
  [[nodiscard]] bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }
  // The poll predicate: true once the budget should stop being spent.
  [[nodiscard]] bool interrupted() const { return cancelled() || expired(); }

  // Milliseconds until the deadline, clamped at 0; +infinity when unlimited.
  [[nodiscard]] double remaining_ms() const;
  // Milliseconds since this budget was started (0 for an inert default).
  [[nodiscard]] double elapsed_ms() const;
  // The total budget in ms; +infinity when unlimited.
  [[nodiscard]] double budget_ms() const;

  // Throw CancelledError (checked first) or DeadlineExceededError if
  // interrupted; `where` names the poll site in the message and stage.
  void check(const std::string& where) const;

  // As above, but attach caller-provided diagnostics (partial solver
  // progress) to the thrown error. No-op when not interrupted.
  void check(const std::string& where, Diagnostics d) const;

  // Stamp budget_ms/elapsed_ms into a Diagnostics payload (no-op when inert).
  [[nodiscard]] Diagnostics annotate(Diagnostics d) const;

 private:
  static constexpr std::int64_t kNoDeadline = INT64_MAX;

  std::int64_t start_ns_ = 0;
  std::int64_t deadline_ns_ = kNoDeadline;
  std::shared_ptr<std::atomic<bool>> flag_;  // null when no token attached
};

}  // namespace csq
