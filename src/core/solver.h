// One-call analytic entry points over the three analyzed policies.
#pragma once

#include "core/config.h"

namespace csq {

enum class Policy { kDedicated, kCsId, kCsCq };

[[nodiscard]] const char* policy_label(Policy p);

// Analytic mean response times for the given policy. Throws
// std::domain_error outside the policy's stability region.
// `busy_period_moments` selects how many busy-period moments the cycle-
// stealing chains match (3 = paper's setting; 1/2 for ablations); ignored by
// Dedicated.
[[nodiscard]] PolicyMetrics analyze(Policy policy, const SystemConfig& config,
                                    int busy_period_moments = 3);

// True when the policy is stable for the config's loads.
[[nodiscard]] bool is_stable(Policy policy, const SystemConfig& config);

}  // namespace csq
