// One-call analytic entry points over the three analyzed policies.
#pragma once

#include "core/config.h"
#include "core/deadline.h"
#include "core/status.h"

namespace csq {

namespace qbd {
struct Workspace;  // qbd/qbd.h — scratch buffers + cached block patterns
}

enum class Policy { kDedicated, kCsId, kCsCq };

[[nodiscard]] const char* policy_label(Policy p);

// Analytic mean response times for the given policy. Throws the structured
// taxonomy of core/status.h (csq::UnstableError outside the policy's
// stability region, csq::InvalidInputError on malformed configs, ...), all
// of which derive from the std exceptions historically thrown here.
// `busy_period_moments` selects how many busy-period moments the cycle-
// stealing chains match (3 = paper's setting; 1/2 for ablations); ignored by
// Dedicated. `verify` gates the self-checks run on the result (finite,
// nonnegative metrics; kFull adds Little's-law consistency) — failures throw
// csq::VerificationFailedError. `budget` bounds the underlying QBD solve;
// csq::DeadlineExceededError / csq::CancelledError propagate from it with
// partial SolveStats, as do csq::NotConvergedError when the whole fallback
// chain fails and csq::IllConditionedError from the linear-algebra stages. `workspace` (optional) is handed to the underlying QBD
// solve so repeated calls reuse its scratch buffers and cached block
// patterns; reuse never changes results (analysis/batch.h is the loop-level
// wrapper that manages one for you).
[[nodiscard]] PolicyMetrics analyze(Policy policy, const SystemConfig& config,
                                    int busy_period_moments = 3,
                                    VerifyLevel verify = VerifyLevel::kBasic,
                                    const RunBudget& budget = {},
                                    qbd::Workspace* workspace = nullptr);

// Non-throwing variant: classifies any failure into a SolverStatus instead
// of propagating exceptions. `metrics` is meaningful iff `status.ok()`.
struct AnalyzeOutcome {
  SolverStatus status;
  PolicyMetrics metrics;

  [[nodiscard]] bool ok() const { return status.ok(); }
};

[[nodiscard]] AnalyzeOutcome try_analyze(Policy policy, const SystemConfig& config,
                                         int busy_period_moments = 3,
                                         VerifyLevel verify = VerifyLevel::kBasic,
                                         const RunBudget& budget = {},
                                         qbd::Workspace* workspace = nullptr) noexcept;

// Self-checks on a computed PolicyMetrics: every metric finite, responses
// positive, waits/numbers nonnegative (up to rounding); kFull additionally
// checks E[N] = lambda E[T] (Little's law) against the config's rates.
[[nodiscard]] SolverStatus verify_metrics(const PolicyMetrics& metrics,
                                          const SystemConfig& config,
                                          VerifyLevel level = VerifyLevel::kBasic);

// True when the policy is stable for the config's loads.
[[nodiscard]] bool is_stable(Policy policy, const SystemConfig& config);

}  // namespace csq
