// CSQ_ASSERT — always-on invariant check that reports through the error
// taxonomy instead of calling abort().
//
// The standard assert() macro is banned by csq_lint rule `banned-identifier`:
// it compiles out under NDEBUG (the default RelWithDebInfo build), so the
// invariants it guards silently stop being checked exactly where we run the
// numbers that matter. CSQ_ASSERT is always compiled in and throws
// csq::InternalError (taxonomy code kInternal) on failure, so a tripped
// invariant surfaces as a structured, catchable error with the failing
// expression and source location in the message.
//
// Use it for cheap invariants only — it is one predictable branch, but it is
// a branch on every call.
#pragma once

#include "core/status.h"

namespace csq::detail {
// Throws csq::InternalError with "<file>:<line>: CSQ_ASSERT(<expr>) failed".
[[noreturn]] void assert_fail(const char* expr, const char* file, int line);
}  // namespace csq::detail

#define CSQ_ASSERT(cond)                                                 \
  do {                                                                   \
    if (!(cond)) ::csq::detail::assert_fail(#cond, __FILE__, __LINE__);  \
  } while (false)
