#include "core/status.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/check.h"

namespace csq {

namespace {

// Compact numeric formatting for JSON (shortest round-trippable-ish form).
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "Ok";
    case ErrorCode::kInvalidInput: return "InvalidInput";
    case ErrorCode::kUnstable: return "Unstable";
    case ErrorCode::kNotConverged: return "NotConverged";
    case ErrorCode::kIllConditioned: return "IllConditioned";
    case ErrorCode::kVerificationFailed: return "VerificationFailed";
    case ErrorCode::kInternal: return "Internal";
    case ErrorCode::kDeadlineExceeded: return "DeadlineExceeded";
    case ErrorCode::kCancelled: return "Cancelled";
    case ErrorCode::kOverloaded: return "Overloaded";
    case ErrorCode::kCorruptJournal: return "CorruptJournal";
  }
  return "?";
}

const char* error_class_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "";
    case ErrorCode::kInvalidInput: return "InvalidInputError";
    case ErrorCode::kUnstable: return "UnstableError";
    case ErrorCode::kNotConverged: return "NotConvergedError";
    case ErrorCode::kIllConditioned: return "IllConditionedError";
    case ErrorCode::kVerificationFailed: return "VerificationFailedError";
    case ErrorCode::kInternal: return "InternalError";
    case ErrorCode::kDeadlineExceeded: return "DeadlineExceededError";
    case ErrorCode::kCancelled: return "CancelledError";
    case ErrorCode::kOverloaded: return "OverloadedError";
    case ErrorCode::kCorruptJournal: return "CorruptJournalError";
  }
  return "?";
}

Diagnostics Diagnostics::loads(double rho_short, double rho_long) {
  Diagnostics d;
  d.rho_short = rho_short;
  d.rho_long = rho_long;
  return d;
}

std::string Diagnostics::to_json() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  const auto field = [&](const char* key, const std::string& value, bool quoted) {
    if (!first) os << ',';
    first = false;
    os << '"' << key << "\":";
    if (quoted)
      os << '"' << escape(value) << '"';
    else
      os << value;
  };
  if (iterations >= 0) field("iterations", std::to_string(iterations), false);
  if (has(residual)) field("residual", fmt(residual), false);
  if (has(spectral_radius)) field("spectral_radius", fmt(spectral_radius), false);
  if (has(condition_estimate)) field("condition_estimate", fmt(condition_estimate), false);
  if (has(rho_short)) field("rho_short", fmt(rho_short), false);
  if (has(rho_long)) field("rho_long", fmt(rho_long), false);
  if (has(tolerance)) field("tolerance", fmt(tolerance), false);
  if (has(budget_ms)) field("budget_ms", fmt(budget_ms), false);
  if (has(elapsed_ms)) field("elapsed_ms", fmt(elapsed_ms), false);
  if (!stage.empty()) field("stage", stage, true);
  if (!notes.empty()) {
    if (!first) os << ',';
    first = false;
    os << "\"notes\":[";
    for (std::size_t i = 0; i < notes.size(); ++i) {
      if (i > 0) os << ',';
      os << '"' << escape(notes[i]) << '"';
    }
    os << ']';
  }
  os << '}';
  return os.str();
}

std::string SolverStatus::to_json() const {
  if (ok()) return "{\"ok\":true}";
  std::ostringstream os;
  os << "{\"error\":{\"code\":\"" << error_code_name(code) << "\",\"error_class\":\""
     << error_class_name(code) << "\",\"message\":\"" << escape(message)
     << "\",\"diagnostics\":" << diagnostics.to_json() << "}}";
  return os.str();
}

Error::Error(ErrorCode code, const std::string& message, Diagnostics diagnostics)
    : status_{code, message, std::move(diagnostics)} {}

InvalidInputError::InvalidInputError(const std::string& message, Diagnostics diagnostics)
    : std::invalid_argument(message),
      Error(ErrorCode::kInvalidInput, message, std::move(diagnostics)) {}

UnstableError::UnstableError(const std::string& message, Diagnostics diagnostics)
    : std::domain_error(message), Error(ErrorCode::kUnstable, message, std::move(diagnostics)) {}

NotConvergedError::NotConvergedError(const std::string& message, Diagnostics diagnostics)
    : std::domain_error(message),
      Error(ErrorCode::kNotConverged, message, std::move(diagnostics)) {}

IllConditionedError::IllConditionedError(const std::string& message, Diagnostics diagnostics)
    : std::domain_error(message),
      Error(ErrorCode::kIllConditioned, message, std::move(diagnostics)) {}

VerificationFailedError::VerificationFailedError(const std::string& message,
                                                 Diagnostics diagnostics)
    : std::runtime_error(message),
      Error(ErrorCode::kVerificationFailed, message, std::move(diagnostics)) {}

InternalError::InternalError(const std::string& message, Diagnostics diagnostics)
    : std::logic_error(message), Error(ErrorCode::kInternal, message, std::move(diagnostics)) {}

DeadlineExceededError::DeadlineExceededError(const std::string& message, Diagnostics diagnostics)
    : std::runtime_error(message),
      Error(ErrorCode::kDeadlineExceeded, message, std::move(diagnostics)) {}

CancelledError::CancelledError(const std::string& message, Diagnostics diagnostics)
    : std::runtime_error(message), Error(ErrorCode::kCancelled, message, std::move(diagnostics)) {}

OverloadedError::OverloadedError(const std::string& message, Diagnostics diagnostics)
    : std::runtime_error(message),
      Error(ErrorCode::kOverloaded, message, std::move(diagnostics)) {}

CorruptJournalError::CorruptJournalError(const std::string& message, Diagnostics diagnostics)
    : std::runtime_error(message),
      Error(ErrorCode::kCorruptJournal, message, std::move(diagnostics)) {}

void throw_error(ErrorCode code, const std::string& message, Diagnostics diagnostics) {
  switch (code) {
    case ErrorCode::kInvalidInput: throw InvalidInputError(message, std::move(diagnostics));
    case ErrorCode::kUnstable: throw UnstableError(message, std::move(diagnostics));
    case ErrorCode::kNotConverged: throw NotConvergedError(message, std::move(diagnostics));
    case ErrorCode::kIllConditioned:
      throw IllConditionedError(message, std::move(diagnostics));
    case ErrorCode::kVerificationFailed:
      throw VerificationFailedError(message, std::move(diagnostics));
    case ErrorCode::kDeadlineExceeded:
      throw DeadlineExceededError(message, std::move(diagnostics));
    case ErrorCode::kCancelled: throw CancelledError(message, std::move(diagnostics));
    case ErrorCode::kOverloaded: throw OverloadedError(message, std::move(diagnostics));
    case ErrorCode::kCorruptJournal:
      throw CorruptJournalError(message, std::move(diagnostics));
    case ErrorCode::kOk:
    case ErrorCode::kInternal: break;
  }
  throw InternalError(message, std::move(diagnostics));
}

namespace detail {
void assert_fail(const char* expr, const char* file, int line) {
  throw InternalError(std::string(file) + ":" + std::to_string(line) + ": CSQ_ASSERT(" +
                      expr + ") failed");
}
}  // namespace detail

SolverStatus status_from_exception(const std::exception& e) {
  if (const auto* err = dynamic_cast<const Error*>(&e)) return err->status();
  SolverStatus s;
  s.message = e.what();
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr)
    s.code = ErrorCode::kInvalidInput;
  else if (dynamic_cast<const std::domain_error*>(&e) != nullptr)
    s.code = ErrorCode::kUnstable;
  else
    s.code = ErrorCode::kInternal;
  return s;
}

}  // namespace csq
