#include "core/sweep.h"

#include <cmath>
#include <stdexcept>

#include "analysis/cscq.h"
#include "analysis/csid.h"
#include "core/solver.h"
#include "mg1/mg1.h"

namespace csq {

std::vector<double> linspace(double lo, double hi, int n) {
  if (n < 2) throw std::invalid_argument("linspace: need n >= 2");
  std::vector<double> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    v[static_cast<std::size_t>(i)] = lo + (hi - lo) * static_cast<double>(i) / (n - 1);
  return v;
}

namespace {

SweepRow evaluate_point(double rho_short, double rho_long, double mean_short,
                        double mean_long, double long_scv, double x) {
  SweepRow row;
  row.x = x;
  const SystemConfig config =
      SystemConfig::paper_setup(rho_short, rho_long, mean_short, mean_long, long_scv);
  for (const Policy p : {Policy::kDedicated, Policy::kCsId, Policy::kCsCq}) {
    if (!is_stable(p, config)) continue;
    const PolicyMetrics m = analyze(p, config);
    switch (p) {
      case Policy::kDedicated:
        row.dedicated_short = m.shorts.mean_response;
        row.dedicated_long = m.longs.mean_response;
        break;
      case Policy::kCsId:
        row.csid_short = m.shorts.mean_response;
        row.csid_long = m.longs.mean_response;
        break;
      case Policy::kCsCq:
        row.cscq_short = m.shorts.mean_response;
        row.cscq_long = m.longs.mean_response;
        break;
    }
  }
  // The long host is stable for every rho_L < 1 regardless of the short
  // class (paper, Figure 6 discussion) — fill long columns even where the
  // shorts saturate.
  if (rho_long < 1.0) {
    if (std::isnan(row.dedicated_long))
      row.dedicated_long = mg1::pk_response(config.lambda_long, config.long_size->moments());
    if (std::isnan(row.csid_long)) row.csid_long = analysis::csid_long_response(config);
    if (std::isnan(row.cscq_long))
      row.cscq_long = analysis::cscq_long_response_saturated(config);
  }
  return row;
}

}  // namespace

std::vector<SweepRow> sweep_rho_short(double rho_long, double mean_short, double mean_long,
                                      double long_scv, const std::vector<double>& rho_shorts) {
  std::vector<SweepRow> rows;
  rows.reserve(rho_shorts.size());
  for (const double rs : rho_shorts)
    rows.push_back(evaluate_point(rs, rho_long, mean_short, mean_long, long_scv, rs));
  return rows;
}

std::vector<SweepRow> sweep_rho_long(double rho_short, double mean_short, double mean_long,
                                     double long_scv, const std::vector<double>& rho_longs) {
  std::vector<SweepRow> rows;
  rows.reserve(rho_longs.size());
  for (const double rl : rho_longs)
    rows.push_back(evaluate_point(rho_short, rl, mean_short, mean_long, long_scv, rl));
  return rows;
}

}  // namespace csq
