#include "core/sweep.h"

#include <cmath>
#include <functional>

#include "analysis/cscq.h"
#include "analysis/csid.h"
#include "analysis/resilient.h"
#include "core/solver.h"
#include "core/status.h"
#include "mg1/mg1.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "parallel/task_pool.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace csq {

const char* point_status_name(PointStatus s) {
  switch (s) {
    case PointStatus::kOk: return "ok";
    case PointStatus::kUnstable: return "unstable";
    case PointStatus::kFailed: return "failed";
    case PointStatus::kDegraded: return "degraded";
    case PointStatus::kTimedOut: return "timed-out";
  }
  return "?";
}

std::vector<double> linspace(double lo, double hi, int n) {
  if (n <= 0) throw InvalidInputError("linspace: need n >= 1");
  if (!std::isfinite(lo) || !std::isfinite(hi))
    throw InvalidInputError("linspace: bounds must be finite");
  if (n == 1) return {lo};
  std::vector<double> v(static_cast<std::size_t>(n));
  if (lo == hi) {
    for (double& x : v) x = lo;
    return v;
  }
  for (int i = 0; i < n; ++i)
    v[static_cast<std::size_t>(i)] = lo + (hi - lo) * static_cast<double>(i) / (n - 1);
  v.back() = hi;  // exact endpoint, no rounding drift
  return v;
}

std::vector<double> linspace_open(double lo, double hi, int n) {
  if (n <= 0) throw InvalidInputError("linspace_open: need n >= 1");
  if (!std::isfinite(lo) || !std::isfinite(hi) || !(lo < hi))
    throw InvalidInputError("linspace_open: need finite lo < hi");
  std::vector<double> v(static_cast<std::size_t>(n));
  const double step = (hi - lo) / (n + 1);
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = lo + step * (i + 1);
  return v;
}

std::vector<double> fig_grid_rho_short() { return linspace(0.05, 1.45, 29); }

std::vector<double> fig_grid_rho_long_shorts() { return linspace(0.01, 0.49, 25); }

std::vector<double> fig_grid_rho_long_longs() { return linspace(0.02, 0.96, 25); }

namespace {

// How a failed in-region analysis shows up in the status byte.
PointStatus classify_failure(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnstable: return PointStatus::kUnstable;
    case ErrorCode::kDeadlineExceeded:
    case ErrorCode::kCancelled: return PointStatus::kTimedOut;
    default: return PointStatus::kFailed;
  }
}

SweepRow evaluate_point(double rho_short, double rho_long, double mean_short,
                        double mean_long, double long_scv, double x,
                        const SweepOptions& opts) {
  SweepRow row;
  row.x = x;
  CSQ_OBS_SPAN("sweep.point.evaluate");
  CSQ_OBS_COUNT("sweep.points.evaluated");
  const SystemConfig config =
      SystemConfig::paper_setup(rho_short, rho_long, mean_short, mean_long, long_scv);
  // One budget poll per point: a point that started runs to completion, so
  // a deadline overshoots by at most one point evaluation and the rows
  // already computed survive (status kTimedOut marks the rest).
  if (opts.budget.interrupted()) {
    row.dedicated_status = PointStatus::kTimedOut;
    row.csid_status = PointStatus::kTimedOut;
    row.cscq_status = PointStatus::kTimedOut;
    return row;
  }
  for (const Policy p : {Policy::kDedicated, Policy::kCsId, Policy::kCsCq}) {
    PointStatus status = PointStatus::kUnstable;
    PolicyMetrics m;
    bool have_value = false;
    if (is_stable(p, config)) {
      // Per-point isolation: a point just inside the stability region can
      // still fail to solve (UnstableError from sp(R) rounding to 1,
      // NotConvergedError, ...). Such a point keeps its NaN columns; the
      // rest of the sweep is unaffected.
      //
      // Each pool worker evaluates many points; a thread-local QBD
      // workspace amortizes solver scratch and pattern analysis across all
      // of them without sharing anything between workers, so sweep output
      // stays bit-identical for every thread count.
      thread_local qbd::Workspace sweep_ws;
      const AnalyzeOutcome out =
          try_analyze(p, config, 3, VerifyLevel::kBasic, opts.budget, &sweep_ws);
      if (out.ok()) {
        m = out.metrics;
        have_value = true;
        status = PointStatus::kOk;
      } else if (p == Policy::kCsCq && opts.resilient) {
        // Resilient sweeps never give up on an in-region CS-CQ point: walk
        // the degradation ladder and mark non-exact answers kDegraded.
        try {
          analysis::ResilientOptions ropts;
          ropts.budget = opts.budget;
          // A sweep point is one of many: bound the simulation rung's cost
          // (the CI is still reported per-point by analyze_resilient users
          // who need it; sweep rows only keep the mean).
          ropts.sim.total_completions = 100000;
          ropts.sim_reps.replications = 4;
          const analysis::ResilientResult r = analysis::analyze_resilient(config, ropts);
          m = r.metrics;
          have_value = true;
          status = r.rung_used == analysis::Rung::kExact ? PointStatus::kOk
                                                         : PointStatus::kDegraded;
        } catch (const std::exception&) {
          status = classify_failure(out.status.code);
        }
      } else {
        status = classify_failure(out.status.code);
      }
    }
    switch (p) {
      case Policy::kDedicated:
        row.dedicated_status = status;
        if (!have_value) break;
        row.dedicated_short = m.shorts.mean_response;
        row.dedicated_long = m.longs.mean_response;
        break;
      case Policy::kCsId:
        row.csid_status = status;
        if (!have_value) break;
        row.csid_short = m.shorts.mean_response;
        row.csid_long = m.longs.mean_response;
        break;
      case Policy::kCsCq:
        row.cscq_status = status;
        if (!have_value) break;
        row.cscq_short = m.shorts.mean_response;
        row.cscq_long = m.longs.mean_response;
        break;
    }
  }
  // The long host is stable for every rho_L < 1 regardless of the short
  // class (paper, Figure 6 discussion) — fill long columns even where the
  // shorts saturate.
  if (rho_long < 1.0) {
    if (std::isnan(row.dedicated_long))
      row.dedicated_long = mg1::pk_response(config.lambda_long, config.long_size->moments());
    if (std::isnan(row.csid_long)) row.csid_long = analysis::csid_long_response(config);
    if (std::isnan(row.cscq_long))
      row.cscq_long = analysis::cscq_long_response_saturated(config);
  }
  // A point "failed" when any in-region policy lost its value to a solver
  // failure or deadline (out-of-region kUnstable is expected, not a failure).
  const auto lost = [](PointStatus s) {
    return s == PointStatus::kFailed || s == PointStatus::kTimedOut;
  };
  if (lost(row.dedicated_status) || lost(row.csid_status) || lost(row.cscq_status))
    CSQ_OBS_COUNT("sweep.points.failed");
  return row;
}

// Evaluate grid[i] -> rows[i] on `opts.threads` workers. Each worker writes
// only its own rows, and evaluate_point confines failures to NaN columns, so
// the result is identical for every thread count.
std::vector<SweepRow> run_sweep(const std::vector<double>& grid, const SweepOptions& opts,
                                const std::function<SweepRow(double)>& point) {
  if (opts.resume_done != nullptr || opts.resume_rows != nullptr) {
    if (opts.resume_done == nullptr || opts.resume_rows == nullptr ||
        opts.resume_done->size() != grid.size() || opts.resume_rows->size() != grid.size())
      throw InvalidInputError(
          "sweep: resume_rows/resume_done must both be set and parallel the grid");
  }
  return par::parallel_map(grid.size(), opts.threads, [&](std::size_t i) {
    if (opts.resume_done != nullptr && (*opts.resume_done)[i] != 0)
      return (*opts.resume_rows)[i];
    SweepRow row = point(grid[i]);
    if (opts.on_row) opts.on_row(i, row);
    return row;
  });
}

}  // namespace

std::vector<SweepRow> sweep_rho_short(double rho_long, double mean_short, double mean_long,
                                      double long_scv, const std::vector<double>& rho_shorts,
                                      const SweepOptions& opts) {
  return run_sweep(rho_shorts, opts, [&](double rs) {
    return evaluate_point(rs, rho_long, mean_short, mean_long, long_scv, rs, opts);
  });
}

std::vector<SweepRow> sweep_rho_long(double rho_short, double mean_short, double mean_long,
                                     double long_scv, const std::vector<double>& rho_longs,
                                     const SweepOptions& opts) {
  return run_sweep(rho_longs, opts, [&](double rl) {
    return evaluate_point(rho_short, rl, mean_short, mean_long, long_scv, rl, opts);
  });
}

const char* job_size_dist_name(JobSizeDist d) {
  switch (d) {
    case JobSizeDist::kExp: return "exp";
    case JobSizeDist::kCoxian: return "coxian";
    case JobSizeDist::kBPareto: return "bpareto";
  }
  return "?";
}

JobSizeDist job_size_dist_from_name(const std::string& name) {
  for (const JobSizeDist d : {JobSizeDist::kExp, JobSizeDist::kCoxian, JobSizeDist::kBPareto})
    if (name == job_size_dist_name(d)) return d;
  throw InvalidInputError("unknown job-size distribution \"" + name +
                          "\" (valid: exp|coxian|bpareto)");
}

// Workload for one panel column: exponential shorts; longs from the
// requested family, matched to mean_long (and, for Coxian, long_scv).
SystemConfig panel_workload(JobSizeDist family, double rho_short, double rho_long,
                            double mean_short, double mean_long, double long_scv) {
  auto shorts =
      std::make_shared<dist::PhaseType>(dist::PhaseType::exponential(1.0 / mean_short));
  dist::DistPtr longs;
  switch (family) {
    case JobSizeDist::kExp:
      longs = std::make_shared<dist::PhaseType>(dist::PhaseType::exponential(1.0 / mean_long));
      break;
    case JobSizeDist::kCoxian:
      longs = std::make_shared<dist::PhaseType>(
          dist::PhaseType::coxian_mean_scv(mean_long, long_scv));
      break;
    case JobSizeDist::kBPareto:
      longs = std::make_shared<dist::BoundedPareto>(
          dist::BoundedPareto::with_mean(mean_long, 1000.0 * mean_long, 1.5));
      break;
  }
  return SystemConfig::from_loads(rho_short, rho_long, std::move(shorts), std::move(longs));
}

namespace {

// The three policies the library analyzes exactly; everything else goes
// through replicated simulation.
bool analytic_policy(sim::PolicyKind kind, Policy* out) {
  switch (kind) {
    case sim::PolicyKind::kDedicated: *out = Policy::kDedicated; return true;
    case sim::PolicyKind::kCsId: *out = Policy::kCsId; return true;
    case sim::PolicyKind::kCsCq: *out = Policy::kCsCq; return true;
    default: return false;
  }
}

PanelRow evaluate_panel_cell(sim::PolicyKind kind, JobSizeDist family, double rho_short,
                             double rho_long, double mean_short, double mean_long,
                             double long_scv, std::uint64_t cell_seed,
                             const PanelOptions& opts) {
  PanelRow row;
  row.policy = kind;
  row.dist = family;
  row.rho_short = rho_short;
  row.rho_long = rho_long;
  CSQ_OBS_COUNT("sweep.panel.cells");
  // Same once-per-cell poll as evaluate_point: a started cell finishes.
  if (opts.budget.interrupted()) {
    row.status = PointStatus::kTimedOut;
    return row;
  }
  const SystemConfig config =
      panel_workload(family, rho_short, rho_long, mean_short, mean_long, long_scv);
  Policy p{};
  if (analytic_policy(kind, &p)) {
    row.analytic = true;
    if (!is_stable(p, config)) return row;  // kUnstable
    thread_local qbd::Workspace panel_ws;
    const AnalyzeOutcome out =
        try_analyze(p, config, 3, VerifyLevel::kBasic, opts.budget, &panel_ws);
    if (out.ok()) {
      row.short_response = out.metrics.shorts.mean_response;
      row.long_response = out.metrics.longs.mean_response;
      row.status = PointStatus::kOk;
    } else {
      row.status = classify_failure(out.status.code);
    }
    return row;
  }
  // Simulated cell. The zoo policies pool both servers, so the work-
  // conservation bound rho_S + rho_L < 2 is the widest meaningful region;
  // beyond it the queues have no steady state and the estimate would be
  // pure truncation artifact.
  if (rho_short + rho_long >= 2.0) return row;  // kUnstable
  sim::SimOptions sopts;
  sopts.seed = cell_seed;
  sopts.total_completions = opts.sim_completions;
  sopts.policy = opts.policy;
  sim::ReplicationOptions ropts;
  ropts.replications = opts.sim_replications;
  ropts.threads = 1;  // cells parallelize; replications stay inline
  try {
    const sim::ReplicatedResult r = sim::simulate_replications(kind, config, sopts, ropts);
    row.short_response = r.shorts.mean_response;
    row.short_ci95 = r.shorts.ci95;
    row.long_response = r.longs.mean_response;
    row.long_ci95 = r.longs.ci95;
    row.status = PointStatus::kOk;
  } catch (const Error& e) {
    row.status = classify_failure(e.code());
  }
  return row;
}

}  // namespace

std::vector<PanelRow> sweep_policy_panel(const std::vector<sim::PolicyKind>& policies,
                                         JobSizeDist dist, double rho_long,
                                         double mean_short, double mean_long,
                                         double long_scv,
                                         const std::vector<double>& rho_shorts,
                                         const PanelOptions& opts) {
  if (policies.empty())
    throw InvalidInputError("sweep_policy_panel: need >= 1 policy");
  if (rho_shorts.empty())
    throw InvalidInputError("sweep_policy_panel: need >= 1 grid point");
  if (opts.sim_replications < 1)
    throw InvalidInputError("sweep_policy_panel: need >= 1 sim replication");
  CSQ_OBS_SPAN("sweep.panel.run");
  const std::size_t cells = policies.size() * rho_shorts.size();
  // Cell (policy, point) seeds derive from (seed, kind, dist, point) alone:
  // which worker evaluates the cell is irrelevant, so the panel is
  // bit-identical for every thread count.
  return par::parallel_map(cells, opts.threads, [&](std::size_t i) {
    const std::size_t pi = i / rho_shorts.size();
    const std::size_t xi = i % rho_shorts.size();
    const sim::PolicyKind kind = policies[pi];
    const std::uint64_t cell_seed = sim::split_seed(
        sim::split_seed(sim::split_seed(opts.seed, static_cast<std::uint64_t>(kind)),
                        static_cast<std::uint64_t>(dist)),
        xi);
    return evaluate_panel_cell(kind, dist, rho_shorts[xi], rho_long, mean_short,
                               mean_long, long_scv, cell_seed, opts);
  });
}

}  // namespace csq
