#include "core/faultpoint.h"

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>

#include "core/deadline.h"

namespace csq::fault {

namespace {

struct Registry {
  std::mutex mutex;
  std::map<std::string, ArmSpec> armed;  // site -> pending arming
  std::map<std::string, long> hit_counts;
};

Registry& registry() {
  static Registry r;
  return r;
}

ErrorCode code_from_name(const std::string& name) {
  if (name == "InvalidInput") return ErrorCode::kInvalidInput;
  if (name == "Unstable") return ErrorCode::kUnstable;
  if (name == "NotConverged") return ErrorCode::kNotConverged;
  if (name == "IllConditioned") return ErrorCode::kIllConditioned;
  if (name == "VerificationFailed") return ErrorCode::kVerificationFailed;
  if (name == "Internal") return ErrorCode::kInternal;
  if (name == "DeadlineExceeded") return ErrorCode::kDeadlineExceeded;
  if (name == "Cancelled") return ErrorCode::kCancelled;
  if (name == "Overloaded") return ErrorCode::kOverloaded;
  if (name == "CorruptJournal") return ErrorCode::kCorruptJournal;
  throw InvalidInputError("unknown ErrorCode in fault spec: '" + name + "'");
}

// Pops the armed spec if this pass is the firing one; counts the hit either way.
bool should_fire(const char* site, ArmSpec* out) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  ++r.hit_counts[site];
  const auto it = r.armed.find(site);
  if (it == r.armed.end()) return false;
  if (--it->second.trigger_count > 0) return false;
  *out = it->second;
  r.armed.erase(it);  // single-shot: later passes see a healthy site
  return true;
}

[[noreturn]] void fire_throw(const ArmSpec& spec) {
  Diagnostics d;
  d.stage = spec.site;
  d.notes.push_back("injected fault (CSQ_FAULT_INJECTION)");
  throw_error(spec.code, "injected " + std::string(error_code_name(spec.code)) +
                             " fault at site " + spec.site,
              std::move(d));
}

void fire(const ArmSpec& spec, double* data, std::size_t size) {
  switch (spec.kind) {
    case Kind::kThrow: fire_throw(spec);
    case Kind::kNan:
      if (data == nullptr || size == 0) {
        throw InternalError("fault kind 'nan' armed at non-matrix site " + spec.site);
      }
      data[0] = std::numeric_limits<double>::quiet_NaN();
      return;
    case Kind::kBurn:
      timebase::advance_virtual_ns(static_cast<std::int64_t>(spec.burn_ms * 1e6));
      return;
  }
}

[[noreturn]] void bad_spec(const std::string& text, const std::string& why) {
  throw InvalidInputError("bad fault spec '" + text + "': " + why +
                          " (expected site:count:kind, kind = throw:<ErrorCode> | nan | "
                          "burn:<ms>)");
}

}  // namespace

ArmSpec parse_arm_spec(const std::string& text) {
  const std::size_t c1 = text.find(':');
  if (c1 == std::string::npos) bad_spec(text, "missing count");
  const std::size_t c2 = text.find(':', c1 + 1);
  if (c2 == std::string::npos) bad_spec(text, "missing kind");

  ArmSpec spec;
  spec.site = text.substr(0, c1);
  if (spec.site.empty()) bad_spec(text, "empty site");
  const std::string count_str = text.substr(c1 + 1, c2 - c1 - 1);
  try {
    std::size_t used = 0;
    spec.trigger_count = std::stol(count_str, &used);
    if (used != count_str.size()) bad_spec(text, "count is not an integer");
  } catch (const std::invalid_argument&) {
    bad_spec(text, "count is not an integer");
  } catch (const std::out_of_range&) {
    bad_spec(text, "count out of range");
  }
  if (spec.trigger_count < 1) bad_spec(text, "count must be >= 1");

  const std::string kind = text.substr(c2 + 1);
  if (kind == "nan") {
    spec.kind = Kind::kNan;
  } else if (kind.rfind("throw:", 0) == 0) {
    spec.kind = Kind::kThrow;
    spec.code = code_from_name(kind.substr(6));
  } else if (kind.rfind("burn:", 0) == 0) {
    spec.kind = Kind::kBurn;
    const std::string ms_str = kind.substr(5);
    try {
      std::size_t used = 0;
      spec.burn_ms = std::stod(ms_str, &used);
      if (used != ms_str.size()) bad_spec(text, "burn duration is not a number");
    } catch (const std::invalid_argument&) {
      bad_spec(text, "burn duration is not a number");
    } catch (const std::out_of_range&) {
      bad_spec(text, "burn duration out of range");
    }
    if (!(spec.burn_ms > 0.0)) bad_spec(text, "burn duration must be > 0");
  } else {
    bad_spec(text, "unknown kind '" + kind + "'");
  }
  return spec;
}

void arm(const ArmSpec& spec) {
  if (!enabled()) {
    throw InvalidInputError(
        "cannot arm fault site '" + spec.site +
        "': fault injection is not compiled in (configure with -DCSQ_FAULT_INJECTION=ON)");
  }
  if (spec.site.empty()) throw InvalidInputError("cannot arm an empty fault site name");
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.armed[spec.site] = spec;
}

void disarm_all() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.armed.clear();
  r.hit_counts.clear();
}

long hits(const std::string& site) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.hit_counts.find(site);
  return it == r.hit_counts.end() ? 0 : it->second;
}

std::vector<std::string> armed_sites() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> sites;
  sites.reserve(r.armed.size());
  for (const auto& [site, spec] : r.armed) sites.push_back(site);
  return sites;
}

namespace detail {

void hit(const char* site) {
  ArmSpec spec;
  if (should_fire(site, &spec)) fire(spec, nullptr, 0);
}

void hit_matrix(const char* site, double* data, std::size_t size) {
  ArmSpec spec;
  if (should_fire(site, &spec)) fire(spec, data, size);
}

}  // namespace detail

}  // namespace csq::fault
