// Stability regions (Theorem 1 of the paper, plus Dedicated).
//
//   Dedicated:  rho_S < 1               and rho_L < 1
//   CS-ID:      rho_S^2 + rho_S rho_L < 1 + rho_S   (equivalently
//               rho_S < ((1-rho_L) + sqrt((1-rho_L)^2 + 4)) / 2),  rho_L < 1
//   CS-CQ:      rho_S < 2 - rho_L       and rho_L < 1
//
// The CS-ID frontier follows from the renewal analysis of the long host:
// its idle probability is (1 - rho_L)/(1 + rho_S), a fraction P(idle) of
// shorts is stolen (PASTA), so the short host is stable iff
// rho_S (1 - P(idle)) < 1. At rho_L = 0 the bound is the golden ratio
// (1+sqrt(5))/2 ~ 1.618, matching the paper's "about 1.6".
//
// Throws csq::InvalidInputError on malformed arguments and
// csq::UnstableError when the offered load is outside the stability
// region (core/status.h).
#pragma once

namespace csq::analysis {

[[nodiscard]] bool dedicated_stable(double rho_short, double rho_long);
[[nodiscard]] bool csid_stable(double rho_short, double rho_long);
[[nodiscard]] bool cscq_stable(double rho_short, double rho_long);

// Supremum of stable rho_S at the given rho_L (requires rho_long < 1).
[[nodiscard]] double dedicated_max_rho_short(double rho_long);
[[nodiscard]] double csid_max_rho_short(double rho_long);
[[nodiscard]] double cscq_max_rho_short(double rho_long);

// Long-host idle probability under CS-ID (exact, any service distributions):
// (1 - rho_long) / (1 + rho_short).
[[nodiscard]] double csid_long_host_idle_probability(double rho_short, double rho_long);

}  // namespace csq::analysis
