#include "analysis/csid.h"

#include <cmath>

#include "analysis/stability.h"
#include "mg1/mg1.h"
#include "transforms/busy_period.h"

#include "core/numeric.h"
#include "obs/trace.h"

namespace csq::analysis {

namespace {

const dist::PhaseType& require_exponential_shorts(const SystemConfig& config) {
  const auto* ph = dynamic_cast<const dist::PhaseType*>(config.short_size.get());
  if (ph == nullptr || !ph->is_exponential())
    throw InvalidInputError(
        "analyze_csid: the analytic model requires exponential short sizes "
        "(use the simulator for general shorts)");
  return *ph;
}

}  // namespace

CsidResult analyze_csid(const SystemConfig& config, const CsidOptions& opts) {
  CSQ_OBS_SPAN("analysis.csid.analyze");
  const obs::DeltaScope obs_scope;
  config.validate();
  const double mu_s = require_exponential_shorts(config).rate();
  const double ls = config.lambda_short;
  const double ll = config.lambda_long;
  const dist::Moments xs = config.short_size->moments();
  const dist::Moments xl = config.long_size->moments();
  const double rho_s = ls * xs.m1;
  const double rho_l = ll * xl.m1;
  if (rho_l >= 1.0 || !csid_stable(rho_s, rho_l))
    throw UnstableError("analyze_csid: outside CS-ID stability region (rho_S = " +
                            std::to_string(rho_s) + " must be < " +
                            std::to_string(rho_l < 1.0 ? csid_max_rho_short(rho_l) : 0.0) +
                            ")",
                        Diagnostics::loads(rho_s, rho_l));

  CsidResult res;
  res.p_long_host_idle = csid_long_host_idle_probability(rho_s, rho_l);
  res.fraction_stolen = res.p_long_host_idle;

  // --- long jobs: M/G/1 with setup -----------------------------------------
  res.metrics.longs = class_metrics_from_response(csid_long_response(config), ll, xl.m1);
  if (ll > 0.0) {
    const double a = ll / (ls + ll);
    const double b = ll / (ll + mu_s);
    res.p_setup = ((1.0 - a) * b) / (1.0 - (1.0 - a) * (1.0 - b));
  }

  // --- short host: MMPP/M/1 QBD ---------------------------------------------
  // Modulator phases: I, S0 (stolen short in service, no long behind it),
  // SW (stolen short in service, >=1 long waiting), L* (B_L busy period),
  // M* (B_{N+1}(mu_S) busy period started by the longs behind a stolen short).
  const dist::Moments bl_m = transforms::mg1_busy_period(xl, ll);
  const dist::Moments bm_m = transforms::batch_busy_period(xl, ll, mu_s);
  const dist::PhaseType bl = dist::fit_ph(bl_m, opts.busy_period_moments, &res.fit_single);
  const dist::PhaseType bm = dist::fit_ph(bm_m, opts.busy_period_moments, &res.fit_batch);

  const std::size_t kl = bl.num_phases();
  const std::size_t km = bm.num_phases();
  const std::size_t m = 3 + kl + km;
  const std::size_t ph_i = 0, ph_s0 = 1, ph_sw = 2;
  const auto ph_l = [&](std::size_t i) { return 3 + i; };
  const auto ph_m = [&](std::size_t j) { return 3 + kl + j; };

  // Modulator generator (within-level transitions; off-diagonal only).
  qbd::Matrix mod(m, m);
  for (std::size_t i = 0; i < kl; ++i) mod(ph_i, ph_l(i)) = ll * bl.alpha()[i];
  mod(ph_i, ph_s0) = ls;  // a short steals the idle long host
  mod(ph_s0, ph_i) = mu_s;
  mod(ph_s0, ph_sw) = ll;
  for (std::size_t j = 0; j < km; ++j) mod(ph_sw, ph_m(j)) = mu_s * bm.alpha()[j];
  const auto add_ph_block = [&mod](const dist::PhaseType& ph, auto index, std::size_t to) {
    const auto& t = ph.subgenerator();
    for (std::size_t i = 0; i < ph.num_phases(); ++i) {
      for (std::size_t j = 0; j < ph.num_phases(); ++j)
        if (i != j) mod(index(i), index(j)) += t(i, j);
      mod(index(i), to) += ph.exit_rates()[i];
    }
  };
  add_ph_block(bl, ph_l, ph_i);
  add_ph_block(bm, ph_m, ph_i);

  // Short-host arrivals: rate lambda_S in every modulator phase except Idle
  // (a short arriving to an idle long host is stolen, not queued here).
  qbd::Matrix arrivals(m, m);
  for (std::size_t i = 1; i < m; ++i) arrivals(i, i) = ls;

  qbd::Model model;
  model.a0 = arrivals;
  model.a1 = mod;
  model.a2 = qbd::Matrix(m, m);
  for (std::size_t i = 0; i < m; ++i) model.a2(i, i) = mu_s;
  model.first_down = model.a2;
  model.boundary.resize(1);
  model.boundary[0].local = mod;
  model.boundary[0].up = arrivals;

  const qbd::Solution sol = qbd::solve(model, opts.qbd, opts.workspace);
  res.solve_stats = sol.stats;

  // Diagnostic: modulator idle probability vs the closed form.
  double idle_mass = sol.boundary_pi[0][ph_i] + sol.repeating_mass_by_phase()[ph_i];
  res.modulator_idle_error = std::abs(idle_mass - res.p_long_host_idle);

  // Response time of queued (non-stolen) shorts via Little's law on the
  // short-host population; stolen shorts complete in exactly E[X_S].
  const double f = res.fraction_stolen;
  ClassMetrics shorts;
  if (ls > 0.0) {
    const double lambda_queued = ls * (1.0 - f);
    const double mean_queued_response =
        lambda_queued > 0.0 ? sol.mean_level() / lambda_queued : xs.m1;
    const double mean_response = f * xs.m1 + (1.0 - f) * mean_queued_response;
    shorts = class_metrics_from_response(mean_response, ls, xs.m1);
  } else {
    shorts = class_metrics_from_response(xs.m1, 0.0, xs.m1);
  }
  res.metrics.shorts = shorts;
  res.obs_metrics = obs_scope.delta();
  return res;
}

double csid_long_response(const SystemConfig& config) {
  config.validate();
  const double mu_s = require_exponential_shorts(config).rate();
  const double ls = config.lambda_short;
  const double ll = config.lambda_long;
  const dist::Moments xl = config.long_size->moments();
  if (ll * xl.m1 >= 1.0)
    throw UnstableError("csid_long_response: rho_L >= 1 (long host unstable)",
                        Diagnostics::loads(Diagnostics::kUnset, ll * xl.m1));
  if (num::exactly_zero(ll)) return xl.m1;
  // Probability the first long of a long-busy-cycle finds a (stolen) short in
  // service: race from the idle long host between long arrivals and
  // short-steal-then-complete cycles.
  const double a = ll / (ls + ll);
  const double b = ll / (ll + mu_s);
  const double q = ((1.0 - a) * b) / (1.0 - (1.0 - a) * (1.0 - b));
  const dist::Moments setup{q / mu_s, 2.0 * q / (mu_s * mu_s), 6.0 * q / (mu_s * mu_s * mu_s)};
  return mg1::setup_response(ll, xl, setup);
}

}  // namespace csq::analysis
