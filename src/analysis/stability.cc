#include "analysis/stability.h"

#include <cmath>

#include "core/status.h"

namespace csq::analysis {

namespace {
void require_rho_long(double rho_long) {
  if (rho_long < 0.0 || rho_long >= 1.0) {
    Diagnostics d;
    d.rho_long = rho_long;
    throw UnstableError("stability: need 0 <= rho_long < 1", std::move(d));
  }
}
}  // namespace

bool dedicated_stable(double rho_short, double rho_long) {
  return rho_short < 1.0 && rho_long < 1.0;
}

bool csid_stable(double rho_short, double rho_long) {
  return rho_long < 1.0 && rho_short < csid_max_rho_short(rho_long);
}

bool cscq_stable(double rho_short, double rho_long) {
  return rho_long < 1.0 && rho_short < 2.0 - rho_long;
}

double dedicated_max_rho_short(double rho_long) {
  require_rho_long(rho_long);
  return 1.0;
}

double csid_max_rho_short(double rho_long) {
  require_rho_long(rho_long);
  // Positive root of rho_S^2 + rho_S (rho_L - 1) - 1 = 0.
  const double b = 1.0 - rho_long;
  return 0.5 * (b + std::sqrt(b * b + 4.0));
}

double cscq_max_rho_short(double rho_long) {
  require_rho_long(rho_long);
  return 2.0 - rho_long;
}

double csid_long_host_idle_probability(double rho_short, double rho_long) {
  require_rho_long(rho_long);
  if (rho_short < 0.0) throw InvalidInputError("csid idle: rho_short < 0");
  return (1.0 - rho_long) / (1.0 + rho_short);
}

}  // namespace csq::analysis
