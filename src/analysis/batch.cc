#include "analysis/batch.h"

#include "obs/obs.h"
#include "qbd/qbd.h"

namespace csq::analysis {

std::vector<AnalyzeOutcome> analyze_batch(const std::vector<BatchRequest>& items,
                                          const RunBudget& budget) {
  std::vector<AnalyzeOutcome> out;
  out.reserve(items.size());
  // One workspace for the whole batch: the first solve sizes the buffers
  // and the pattern analysis reuses the index vectors' capacity from then
  // on, so items after the first run allocation-free inside the QBD loop.
  qbd::Workspace ws;
  for (const BatchRequest& req : items) {
    CSQ_OBS_COUNT("analysis.batch.items");
    if (budget.interrupted()) {
      AnalyzeOutcome timed_out;
      timed_out.status.code = ErrorCode::kDeadlineExceeded;
      timed_out.status.message = "analyze_batch: budget interrupted";
      out.push_back(std::move(timed_out));
      continue;
    }
    out.push_back(try_analyze(req.policy, req.config, req.busy_period_moments,
                              req.verify, budget, &ws));
  }
  return out;
}

}  // namespace csq::analysis
