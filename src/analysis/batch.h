// Batched analytic solves sharing one QBD workspace.
//
// A figure sweep, a serve session, or a calibration loop issues dozens of
// analyze() calls whose QBD chains share block structure (the phase counts
// depend on busy_period_moments, not on the load point). Run standalone,
// every call allocates its own iteration scratch, re-analyzes the block
// sparsity patterns, and re-fits the same busy-period moment triples.
// analyze_batch() amortizes all three: one qbd::Workspace (buffers + cached
// BlockPatterns, see qbd/qbd.h) serves the whole batch, and the phase-type
// fit memo in dist/moment_match.cc turns repeated Coxian fits into lookups.
//
// Semantics match a loop of try_analyze() calls exactly — workspace reuse
// never changes results (the equivalence is pinned by the kernel test
// suite and the golden figure tests, which run both ways). Failures are
// per-item: outcome i carries the status for items[i]; one diverging
// config does not abort its neighbours. The batch budget is polled once
// per item, so a deadline degrades coverage item-by-item like a sweep.
#pragma once

#include <vector>

#include "core/config.h"
#include "core/deadline.h"
#include "core/solver.h"

namespace csq::analysis {

// One analytic request: which policy to analyze at which operating point.
struct BatchRequest {
  Policy policy = Policy::kCsCq;
  SystemConfig config;
  int busy_period_moments = 3;
  VerifyLevel verify = VerifyLevel::kBasic;
};

// Evaluate every request in order, reusing one QBD workspace across the
// batch. Outcome i corresponds to items[i]; items that fail (unstable,
// not converged, budget interrupted) report through their status instead
// of throwing. Exports the obs counter analysis.batch.items.
[[nodiscard]] std::vector<AnalyzeOutcome> analyze_batch(
    const std::vector<BatchRequest>& items, const RunBudget& budget = {});

}  // namespace csq::analysis
