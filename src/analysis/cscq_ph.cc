#include "analysis/cscq_ph.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "analysis/stability.h"
#include "mg1/mg1.h"
#include "transforms/busy_period.h"

namespace csq::analysis {

namespace {

// Unordered pairs {i, j} (i <= j) of in-service short phases, plus the
// dynamics of two parallel PH services on that space.
struct PairSpace {
  explicit PairSpace(const dist::PhaseType& ph) : k(ph.num_phases()), ph_(&ph) {
    index.assign(k, std::vector<std::size_t>(k, 0));
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = i; j < k; ++j) {
        index[i][j] = index[j][i] = pairs.size();
        pairs.emplace_back(i, j);
      }
  }

  // Visit the events of pair state `pid`:
  //   on_change(new_pid, rate)        — one service changes phase;
  //   on_exit(surviving_phase, rate)  — one service completes.
  template <typename FChange, typename FExit>
  void for_each_event(std::size_t pid, FChange&& on_change, FExit&& on_exit) const {
    const auto [i, j] = pairs[pid];
    const linalg::Matrix& t = ph_->subgenerator();
    const auto slot = [&](std::size_t active, std::size_t other) {
      for (std::size_t n = 0; n < k; ++n) {
        if (n == active) continue;
        const double r = t(active, n);
        if (r > 0.0) on_change(index[n][other], r);
      }
      const double e = ph_->exit_rates()[active];
      if (e > 0.0) on_exit(other, e);
    };
    slot(i, j);
    slot(j, i);  // when i == j the duplicate visits double the rates, as two
                 // identical services should
  }

  // PH distribution of the FIRST completion among two services, started from
  // the given distribution over pair states.
  [[nodiscard]] dist::PhaseType first_completion(std::vector<double> alpha) const {
    linalg::Matrix t(pairs.size(), pairs.size());
    for (std::size_t pid = 0; pid < pairs.size(); ++pid) {
      double out = 0.0;
      for_each_event(
          pid,
          [&](std::size_t to, double r) {
            t(pid, to) += r;
            out += r;
          },
          [&](std::size_t, double r) { out += r; });
      t(pid, pid) = -out;
    }
    return {std::move(alpha), std::move(t)};
  }

  // Two freshly-started services.
  [[nodiscard]] std::vector<double> fresh_pair_alpha() const {
    std::vector<double> a(pairs.size(), 0.0);
    const auto& beta = ph_->alpha();
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = 0; j < k; ++j) a[index[i][j]] += beta[i] * beta[j];
    return a;
  }

  std::size_t k;
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  std::vector<std::vector<std::size_t>> index;

 private:
  const dist::PhaseType* ph_;
};

const dist::PhaseType& require_ph_shorts(const SystemConfig& config) {
  const auto* ph = dynamic_cast<const dist::PhaseType*>(config.short_size.get());
  if (ph == nullptr)
    throw InvalidInputError("analyze_cscq_ph: short sizes must be phase-type");
  return *ph;
}

}  // namespace

CscqPhResult analyze_cscq_ph(const SystemConfig& config, const CscqPhOptions& opts) {
  config.validate();
  const dist::PhaseType& xs = require_ph_shorts(config);
  const double ls = config.lambda_short;
  const double ll = config.lambda_long;
  const dist::Moments xl = config.long_size->moments();
  const double rho_l = ll * xl.m1;
  const double rho_s = ls * xs.mean();
  if (rho_l >= 1.0 || !cscq_stable(rho_s, rho_l))
    throw UnstableError("analyze_cscq_ph: outside CS-CQ stability region (rho_S = " +
                            std::to_string(rho_s) + " must be < 2 - rho_L = " +
                            std::to_string(2.0 - rho_l) + ")",
                        Diagnostics::loads(rho_s, rho_l));

  const PairSpace pair(xs);
  const std::size_t k = pair.k;
  const std::size_t p = pair.pairs.size();
  const std::vector<double>& beta = xs.alpha();
  const std::vector<double>& exit = xs.exit_rates();
  const linalg::Matrix& s_t = xs.subgenerator();

  CscqPhResult res;
  res.busy_single = transforms::mg1_busy_period(xl, ll);
  const dist::PhaseType bl = dist::fit_ph(res.busy_single, opts.busy_period_moments);
  const std::size_t kl = bl.num_phases();

  // The B_{N+1} window Theta is the first completion among the two shorts in
  // service when the long arrived. Its initial pair distribution is what an
  // arriving long observes (region-2 A states, PASTA) — which comes from the
  // solved chain, so iterate to a fixed point starting from fresh services.
  // One pass is exact for exponential shorts.
  std::vector<double> window_alpha = pair.fresh_pair_alpha();
  for (int iter = 0; iter < std::max(1, opts.window_iterations); ++iter) {
    res.window_iterations = iter + 1;
    res.window = pair.first_completion(window_alpha).moments();
    res.busy_batch = transforms::batch_busy_period_window(xl, ll, res.window);
    const dist::PhaseType bn = dist::fit_ph(res.busy_batch, opts.busy_period_moments);
    const std::size_t kp = bn.num_phases();

    // --- phase indexing -----------------------------------------------------
    const std::size_t m = 2 * p + (kl + kp) * k;  // repeating levels >= 2
    const std::size_t b1 = k + (kl + kp) * k;     // boundary level 1
    const std::size_t b0 = 1 + kl + kp;           // boundary level 0
    res.num_phases = m;

    const auto rep_a = [&](std::size_t pid) { return pid; };
    const auto rep_w = [&](std::size_t pid) { return p + pid; };
    const auto rep_l = [&](std::size_t b, std::size_t i) { return 2 * p + b * k + i; };
    const auto rep_p = [&](std::size_t c, std::size_t i) {
      return 2 * p + kl * k + c * k + i;
    };
    const auto b1_a = [&](std::size_t i) { return i; };
    const auto b1_l = [&](std::size_t b, std::size_t i) { return k + b * k + i; };
    const auto b1_p = [&](std::size_t c, std::size_t i) { return k + kl * k + c * k + i; };
    const auto b0_a = [] { return std::size_t{0}; };
    const auto b0_l = [&](std::size_t b) { return 1 + b; };
    const auto b0_p = [&](std::size_t c) { return 1 + kl + c; };

    qbd::Model model;
    model.a0 = qbd::Matrix(m, m);
    for (std::size_t i = 0; i < m; ++i) model.a0(i, i) = ls;  // arrivals queue

    model.a1 = qbd::Matrix(m, m);
    model.a2 = qbd::Matrix(m, m);
    model.first_down = qbd::Matrix(m, b1);

    // One in-service short's phase dynamics inside the L/P busy blocks.
    const auto add_busy_block = [&](const dist::PhaseType& bp, auto rep_idx,
                                    auto b1_target) {
      for (std::size_t b = 0; b < bp.num_phases(); ++b) {
        for (std::size_t i = 0; i < k; ++i) {
          const std::size_t from = rep_idx(b, i);
          // Short phase changes.
          for (std::size_t n = 0; n < k; ++n)
            if (n != i && s_t(i, n) > 0.0) model.a1(from, rep_idx(b, n)) += s_t(i, n);
          // Short completion: next queued short starts fresh.
          for (std::size_t l = 0; l < k; ++l) {
            model.a2(from, rep_idx(b, l)) += exit[i] * beta[l];
            model.first_down(from, b1_target(b, l)) += exit[i] * beta[l];
          }
          // Busy-period stage changes.
          for (std::size_t c = 0; c < bp.num_phases(); ++c)
            if (c != b && bp.subgenerator()(b, c) > 0.0)
              model.a1(from, rep_idx(c, i)) += bp.subgenerator()(b, c);
          // Busy period ends: the freed server takes a queued short.
          for (std::size_t l = 0; l < k; ++l)
            model.a1(from, rep_a(pair.index[i][l])) += bp.exit_rates()[b] * beta[l];
        }
      }
    };
    add_busy_block(bl, rep_l, b1_l);
    add_busy_block(bn, rep_p, b1_p);

    for (std::size_t pid = 0; pid < p; ++pid) {
      // A pairs: zero longs, both servers on shorts.
      pair.for_each_event(
          pid, [&](std::size_t to, double r) { model.a1(rep_a(pid), rep_a(to)) += r; },
          [&](std::size_t surviving, double r) {
            // A completion pulls the next queued short (fresh phase).
            for (std::size_t l = 0; l < k; ++l)
              model.a2(rep_a(pid), rep_a(pair.index[surviving][l])) += r * beta[l];
            model.first_down(rep_a(pid), b1_a(surviving)) += r;
          });
      model.a1(rep_a(pid), rep_w(pid)) += ll;  // long arrival waits

      // W pairs: >= 1 long waiting; the first completion hands that server to
      // the long (start B_{N+1}); the surviving short continues in its phase.
      pair.for_each_event(
          pid, [&](std::size_t to, double r) { model.a1(rep_w(pid), rep_w(to)) += r; },
          [&](std::size_t surviving, double r) {
            for (std::size_t c = 0; c < kp; ++c) {
              model.a2(rep_w(pid), rep_p(c, surviving)) += r * bn.alpha()[c];
              model.first_down(rep_w(pid), b1_p(c, surviving)) += r * bn.alpha()[c];
            }
          });
    }

    // --- boundary level 1: one short in service -----------------------------
    model.boundary.resize(2);
    {
      qbd::BoundaryLevel& lvl = model.boundary[1];
      lvl.local = qbd::Matrix(b1, b1);
      lvl.up = qbd::Matrix(b1, m);
      lvl.down = qbd::Matrix(b1, b0);
      for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t n = 0; n < k; ++n)
          if (n != i && s_t(i, n) > 0.0) lvl.local(b1_a(i), b1_a(n)) += s_t(i, n);
        // A long arrival finds a free host: B_L starts, the short keeps going.
        for (std::size_t b = 0; b < kl; ++b)
          lvl.local(b1_a(i), b1_l(b, i)) += ll * bl.alpha()[b];
        // A short arrival starts fresh on the second server.
        for (std::size_t l = 0; l < k; ++l)
          lvl.up(b1_a(i), rep_a(pair.index[i][l])) += ls * beta[l];
        lvl.down(b1_a(i), b0_a()) += exit[i];
      }
      const auto busy1 = [&](const dist::PhaseType& bp, auto b1_idx, auto rep_idx,
                             auto b0_idx) {
        for (std::size_t b = 0; b < bp.num_phases(); ++b) {
          for (std::size_t i = 0; i < k; ++i) {
            const std::size_t from = b1_idx(b, i);
            for (std::size_t n = 0; n < k; ++n)
              if (n != i && s_t(i, n) > 0.0) lvl.local(from, b1_idx(b, n)) += s_t(i, n);
            for (std::size_t c = 0; c < bp.num_phases(); ++c)
              if (c != b && bp.subgenerator()(b, c) > 0.0)
                lvl.local(from, b1_idx(c, i)) += bp.subgenerator()(b, c);
            lvl.local(from, b1_a(i)) += bp.exit_rates()[b];  // busy period ends
            lvl.up(from, rep_idx(b, i)) += ls;               // new short queues
            lvl.down(from, b0_idx(b)) += exit[i];
          }
        }
      };
      busy1(bl, b1_l, rep_l, b0_l);
      busy1(bn, b1_p, rep_p, b0_p);
    }

    // --- boundary level 0: no shorts ----------------------------------------
    {
      qbd::BoundaryLevel& lvl = model.boundary[0];
      lvl.local = qbd::Matrix(b0, b0);
      lvl.up = qbd::Matrix(b0, b1);
      for (std::size_t b = 0; b < kl; ++b)
        lvl.local(b0_a(), b0_l(b)) += ll * bl.alpha()[b];
      for (std::size_t l = 0; l < k; ++l) lvl.up(b0_a(), b1_a(l)) += ls * beta[l];
      const auto busy0 = [&](const dist::PhaseType& bp, auto b0_idx, auto b1_idx) {
        for (std::size_t b = 0; b < bp.num_phases(); ++b) {
          for (std::size_t c = 0; c < bp.num_phases(); ++c)
            if (c != b && bp.subgenerator()(b, c) > 0.0)
              lvl.local(b0_idx(b), b0_idx(c)) += bp.subgenerator()(b, c);
          lvl.local(b0_idx(b), b0_a()) += bp.exit_rates()[b];
          for (std::size_t l = 0; l < k; ++l)
            lvl.up(b0_idx(b), b1_idx(b, l)) += ls * beta[l];
        }
      };
      busy0(bl, b0_l, b1_l);
      busy0(bn, b0_p, b1_p);
    }

    const qbd::Solution sol = qbd::solve(model, opts.qbd);
    res.solve_stats = sol.stats;
    res.qbd_mass_error = std::abs(sol.total_mass() - 1.0);

    // --- short jobs ----------------------------------------------------------
    const double mean_shorts = sol.mean_level();
    res.metrics.shorts =
        ls > 0.0 ? class_metrics_from_response(mean_shorts / ls, ls, xs.mean())
                 : class_metrics_from_response(xs.mean(), 0.0, xs.mean());

    // --- long jobs: M/G/1 with pair-state-dependent setup --------------------
    res.p_region1 = sol.boundary_pi[0][b0_a()];
    for (std::size_t i = 0; i < k; ++i) res.p_region1 += sol.boundary_pi[1][b1_a(i)];
    const std::vector<double> rep_mass = sol.repeating_mass_by_phase();
    std::vector<double> pair_cond(p, 0.0);
    for (std::size_t pid = 0; pid < p; ++pid) pair_cond[pid] = rep_mass[rep_a(pid)];
    res.p_region2 = linalg::sum(pair_cond);
    const double pa = res.p_region1 + res.p_region2;
    dist::Moments setup{0.0, 0.0, 0.0};
    if (res.p_region2 > 0.0 && pa > 0.0) {
      for (double& x : pair_cond) x /= res.p_region2;
      const double w2 = res.p_region2 / pa;
      const dist::Moments theta = pair.first_completion(pair_cond).moments();
      setup = {w2 * theta.m1, w2 * theta.m2, w2 * theta.m3};
    }
    res.metrics.longs =
        ll > 0.0
            ? class_metrics_from_response(mg1::setup_response(ll, xl, setup), ll, xl.m1)
            : class_metrics_from_response(xl.m1, 0.0, xl.m1);

    // --- fixed-point update of the window's pair distribution ----------------
    if (k == 1 || res.p_region2 <= 0.0) break;  // exponential: already exact
    double diff = 0.0;
    for (std::size_t pid = 0; pid < p; ++pid)
      diff = std::max(diff, std::abs(pair_cond[pid] - window_alpha[pid]));
    window_alpha = std::move(pair_cond);
    if (diff < 1e-10) break;
  }
  return res;
}

}  // namespace csq::analysis
