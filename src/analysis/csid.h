// Cycle Stealing with Immediate Dispatch (CS-ID) — the paper's baseline,
// analyzed in the companion technical report (Harchol-Balter et al.,
// CMU-CS-02-158). The system decomposes into two coupled-but-one-way
// processes:
//
// Long host. A renewal process independent of the short host: idle periods
//   Exp(lambda_S + lambda_L); a cycle's busy part is a longs' busy period
//   started either by one long (the first arrival was long) or by one short
//   plus the longs accumulating behind it. This gives the exact idle
//   probability P(idle) = (1 - rho_L)/(1 + rho_S), and by PASTA a fraction
//   P(idle) of shorts is stolen (those complete in exactly E[X_S]).
//   Long-job response is an M/G/1 with setup chi: the first long of a
//   long-busy-cycle finds a short in service with probability
//       q = (1-a) b / (1 - (1-a)(1-b)),  a = lambda_L/(lambda_S+lambda_L),
//                                        b = lambda_L/(lambda_L+mu_S),
//   in which case it waits the short's (memoryless) residual Exp(mu_S).
//
// Short host. Arrivals are the shorts that find the long host busy: a
//   Markov-modulated Poisson process whose modulator is the long-host state
//   {Idle, Short-in-service, Short-in-service-with-longs-waiting, busy
//   period phases}, with the long-host busy periods represented by the same
//   busy-period-transition technique as CS-CQ (B_L for long-started cycles;
//   B_{N+1} with delta = mu_S for the longs accumulated behind a stolen
//   short). The short host is then an MMPP/M/1 QBD.
#pragma once

#include "core/config.h"
#include "dist/moment_match.h"
#include "obs/obs.h"
#include "qbd/qbd.h"

namespace csq::analysis {

struct CsidOptions {
  int busy_period_moments = 3;
  qbd::Options qbd;
  // Scratch reused by the QBD solve; see CscqOptions::workspace.
  qbd::Workspace* workspace = nullptr;
};

struct CsidResult {
  PolicyMetrics metrics;

  double p_long_host_idle = 0.0;   // exact closed form
  double fraction_stolen = 0.0;    // = P(idle) by PASTA
  double p_setup = 0.0;            // q above
  // Consistency diagnostic: the modulator's stationary idle probability
  // should reproduce the closed form; |difference| recorded here.
  double modulator_idle_error = 0.0;
  dist::FitReport fit_single;
  dist::FitReport fit_batch;
  qbd::SolveStats solve_stats;     // R-solver stage, residual, condition estimate
  obs::MetricsDelta obs_metrics;   // counter increments during this call
};

// Throws csq::UnstableError (a std::domain_error) outside the CS-ID
// stability region and csq::InvalidInputError (a std::invalid_argument) when
// short sizes are not exponential. QBD and linear-algebra failures escape
// as csq::NotConvergedError / csq::VerificationFailedError /
// csq::IllConditionedError; csq::DeadlineExceededError /
// csq::CancelledError surface when opts.budget is interrupted.
[[nodiscard]] CsidResult analyze_csid(const SystemConfig& config, const CsidOptions& opts = {});

// Long-job mean response only. The long host's behaviour depends only on the
// arrival streams (which shorts steal it is decided at arrival instants), so
// this is valid for ALL rho_S — including short-host-overloaded operating
// points like Figure 6's rho_S = 1.5. Requires rho_L < 1.
[[nodiscard]] double csid_long_response(const SystemConfig& config);

}  // namespace csq::analysis
