// CS-CQ with MAP (Markovian Arrival Process) short-job arrivals — the
// paper's other sketched generalization ("we assume a Poisson arrival
// process ... which can be generalized to a MAP").
//
// Only the short class is generalized (long arrivals stay Poisson, so the
// busy-period transitions B_L and B_{N+1} are untouched). The QBD phase
// space becomes {A, W, L*, P*} x {MAP phase}: D1 transitions move up a level
// while possibly switching the arrival phase; D0 off-diagonal transitions
// switch the arrival phase in place. Short sizes are exponential, as in the
// paper's numerical sections.
//
// Throws csq::InvalidInputError on malformed arguments and
// csq::UnstableError when the offered load is outside the stability
// region (core/status.h).
#pragma once

#include <cstddef>

#include "core/config.h"
#include "dist/moment_match.h"
#include "qbd/qbd.h"

namespace csq::analysis {

struct CscqMapOptions {
  int busy_period_moments = 3;
  qbd::Options qbd;
};

struct CscqMapResult {
  PolicyMetrics metrics;
  double p_region1 = 0.0;
  double p_region2 = 0.0;
  double qbd_mass_error = 0.0;
  std::size_t num_phases = 0;
  qbd::SolveStats solve_stats;  // R-solver stage, residual, condition estimate
};

// Requires exponential short sizes and config.short_arrivals set (use
// dist::MapProcess::poisson to recover the base model — unit-tested to agree
// with analyze_cscq). Stability uses the MAP's mean rate.
// Throws csq::NotConvergedError / csq::VerificationFailedError /
// csq::IllConditionedError when the QBD or linear-algebra stages fail, and
// csq::DeadlineExceededError / csq::CancelledError on budget interruption.
[[nodiscard]] CscqMapResult analyze_cscq_map(const SystemConfig& config,
                                             const CscqMapOptions& opts = {});

}  // namespace csq::analysis
