#include "analysis/cscq.h"

#include <cmath>

#include "analysis/stability.h"
#include "mg1/mg1.h"
#include "transforms/busy_period.h"

#include "core/faultpoint.h"
#include "core/numeric.h"
#include "obs/trace.h"

namespace csq::analysis {

namespace {

const dist::PhaseType& require_exponential_shorts(const SystemConfig& config) {
  const auto* ph = dynamic_cast<const dist::PhaseType*>(config.short_size.get());
  if (ph == nullptr || !ph->is_exponential())
    throw InvalidInputError(
        "analyze_cscq: the analytic chain requires exponential short sizes "
        "(use the simulator for general shorts)");
  return *ph;
}

}  // namespace

CscqResult analyze_cscq(const SystemConfig& config, const CscqOptions& opts) {
  CSQ_OBS_SPAN("analysis.cscq.analyze");
  const obs::DeltaScope obs_scope;
  config.validate();
  const double mu_s = require_exponential_shorts(config).rate();
  const double ls = config.lambda_short;
  const double ll = config.lambda_long;
  const dist::Moments xl = config.long_size->moments();
  const double rho_l = ll * xl.m1;
  const double rho_s = ls / mu_s;
  if (rho_l >= 1.0 || !cscq_stable(rho_s, rho_l))
    throw UnstableError("analyze_cscq: outside CS-CQ stability region (rho_S = " +
                            std::to_string(rho_s) + " must be < 2 - rho_L = " +
                            std::to_string(2.0 - rho_l) + ")",
                        Diagnostics::loads(rho_s, rho_l));

  CscqResult res;

  // --- busy-period transitions -------------------------------------------
  res.busy_single = transforms::mg1_busy_period(xl, ll);
  res.busy_batch = transforms::batch_busy_period(xl, ll, 2.0 * mu_s);
  const dist::PhaseType bl =
      dist::fit_ph(res.busy_single, opts.busy_period_moments, &res.fit_single);
  const dist::PhaseType bn =
      dist::fit_ph(res.busy_batch, opts.busy_period_moments, &res.fit_batch);

  const std::size_t kl = bl.num_phases();
  const std::size_t kp = bn.num_phases();
  const std::size_t m = 2 + kl + kp;      // repeating phases: A, W, L*, P*
  const std::size_t b = 1 + kl + kp;      // boundary phases:  A, L*, P*

  // Phase indices.
  const auto rep_a = std::size_t{0};
  const auto rep_w = std::size_t{1};
  const auto rep_l = [&](std::size_t i) { return 2 + i; };
  const auto rep_p = [&](std::size_t j) { return 2 + kl + j; };
  const auto bnd_a = std::size_t{0};
  const auto bnd_l = [&](std::size_t i) { return 1 + i; };
  const auto bnd_p = [&](std::size_t j) { return 1 + kl + j; };

  // Copy a PH subgenerator into a block of `dst`, sending exits to `to_a`.
  const auto add_ph_block = [](qbd::Matrix& dst, const dist::PhaseType& ph,
                               auto phase_index, std::size_t to_a) {
    const auto& t = ph.subgenerator();
    for (std::size_t i = 0; i < ph.num_phases(); ++i) {
      for (std::size_t j = 0; j < ph.num_phases(); ++j)
        if (i != j) dst(phase_index(i), phase_index(j)) += t(i, j);
      dst(phase_index(i), to_a) += ph.exit_rates()[i];
    }
  };

  // --- repeating blocks (levels >= 2) --------------------------------------
  qbd::Model model;
  model.a0 = qbd::Matrix(m, m);
  for (std::size_t i = 0; i < m; ++i) model.a0(i, i) = ls;  // short arrivals

  model.a1 = qbd::Matrix(m, m);
  model.a1(rep_a, rep_w) = ll;  // long arrives, both hosts on shorts -> waits
  add_ph_block(model.a1, bl, rep_l, rep_a);
  add_ph_block(model.a1, bn, rep_p, rep_a);

  model.a2 = qbd::Matrix(m, m);
  model.a2(rep_a, rep_a) = 2.0 * mu_s;  // two servers on shorts
  // W: first of two shorts completes; the freed host starts the B_{N+1}
  // busy period (enter the fitted PH by its initial vector).
  for (std::size_t j = 0; j < kp; ++j) model.a2(rep_w, rep_p(j)) = 2.0 * mu_s * bn.alpha()[j];
  for (std::size_t i = 0; i < kl; ++i) model.a2(rep_l(i), rep_l(i)) = mu_s;
  for (std::size_t j = 0; j < kp; ++j) model.a2(rep_p(j), rep_p(j)) = mu_s;

  // Level 2 -> level 1 (boundary phase set).
  model.first_down = qbd::Matrix(m, b);
  model.first_down(rep_a, bnd_a) = 2.0 * mu_s;
  for (std::size_t j = 0; j < kp; ++j)
    model.first_down(rep_w, bnd_p(j)) = 2.0 * mu_s * bn.alpha()[j];
  for (std::size_t i = 0; i < kl; ++i) model.first_down(rep_l(i), bnd_l(i)) = mu_s;
  for (std::size_t j = 0; j < kp; ++j) model.first_down(rep_p(j), bnd_p(j)) = mu_s;

  // --- boundary levels 0 and 1 ---------------------------------------------
  model.boundary.resize(2);
  {
    // Level 0: no shorts in service. A long arriving to an empty-of-longs
    // system finds a free host: B_L starts (region 1 -> region 3).
    qbd::BoundaryLevel& lvl = model.boundary[0];
    lvl.local = qbd::Matrix(b, b);
    for (std::size_t i = 0; i < kl; ++i) lvl.local(bnd_a, bnd_l(i)) = ll * bl.alpha()[i];
    add_ph_block(lvl.local, bl, bnd_l, bnd_a);
    add_ph_block(lvl.local, bn, bnd_p, bnd_a);
    lvl.up = qbd::Matrix(b, b);
    for (std::size_t i = 0; i < b; ++i) lvl.up(i, i) = ls;
  }
  {
    // Level 1: one short in service (one server); the other host is free for
    // longs, so a long arrival still starts B_L.
    qbd::BoundaryLevel& lvl = model.boundary[1];
    lvl.local = qbd::Matrix(b, b);
    for (std::size_t i = 0; i < kl; ++i) lvl.local(bnd_a, bnd_l(i)) = ll * bl.alpha()[i];
    add_ph_block(lvl.local, bl, bnd_l, bnd_a);
    add_ph_block(lvl.local, bn, bnd_p, bnd_a);
    lvl.up = qbd::Matrix(b, m);
    lvl.up(bnd_a, rep_a) = ls;
    for (std::size_t i = 0; i < kl; ++i) lvl.up(bnd_l(i), rep_l(i)) = ls;
    for (std::size_t j = 0; j < kp; ++j) lvl.up(bnd_p(j), rep_p(j)) = ls;
    lvl.down = qbd::Matrix(b, b);
    for (std::size_t i = 0; i < b; ++i) lvl.down(i, i) = mu_s;
  }

  CSQ_FAULT_POINT("analysis.cscq.solve");
  const qbd::Solution sol = qbd::solve(model, opts.qbd, opts.workspace);
  res.solve_stats = sol.stats;
  res.qbd_mass_error = std::abs(sol.total_mass() - 1.0);
  res.short_count_decay = sol.tail_decay_rate();
  res.short_count_p99 = sol.level_quantile(0.99);

  // --- short jobs: Little's law on the exact short-job count ---------------
  const double mean_shorts = sol.mean_level();
  const dist::Moments xs = config.short_size->moments();
  ClassMetrics shorts;
  if (ls > 0.0) {
    shorts = class_metrics_from_response(mean_shorts / ls, ls, xs.m1);
  } else {
    // A lone short always finds a free host.
    shorts = class_metrics_from_response(xs.m1, 0.0, xs.m1);
  }
  res.metrics.shorts = shorts;

  // --- long jobs: M/G/1 with setup chi --------------------------------------
  // First long of a long-busy-cycle arrives to zero longs (phase A). Region 1
  // = levels 0..1 (a host is free), region 2 = levels >= 2 (both on shorts).
  res.p_region1 = sol.boundary_pi[0][bnd_a] + sol.boundary_pi[1][bnd_a];
  res.p_region2 = sol.repeating_mass_by_phase()[rep_a];
  const double pa = res.p_region1 + res.p_region2;
  const double w2 = pa > 0.0 ? res.p_region2 / pa : 0.0;
  // chi = Exp(2 mu_S) w.p. w2, else 0.
  const double delta = 2.0 * mu_s;
  const dist::Moments setup{w2 / delta, 2.0 * w2 / (delta * delta),
                            6.0 * w2 / (delta * delta * delta)};
  res.metrics.longs = class_metrics_from_response(mg1::setup_response(ll, xl, setup), ll, xl.m1);
  res.obs_metrics = obs_scope.delta();
  return res;
}

double cscq_long_response_saturated(const SystemConfig& config) {
  config.validate();
  const double mu_s = require_exponential_shorts(config).rate();
  const double ll = config.lambda_long;
  const dist::Moments xl = config.long_size->moments();
  if (ll * xl.m1 >= 1.0)
    throw UnstableError("cscq_long_response_saturated: rho_L >= 1",
                        Diagnostics::loads(Diagnostics::kUnset, ll * xl.m1));
  if (num::exactly_zero(ll)) return xl.m1;
  const double delta = 2.0 * mu_s;
  const dist::Moments setup{1.0 / delta, 2.0 / (delta * delta), 6.0 / (delta * delta * delta)};
  return mg1::setup_response(ll, xl, setup);
}

}  // namespace csq::analysis
