// CS-CQ with PHASE-TYPE short-job sizes — the generalization the paper
// sketches in one sentence ("this is straightforward to generalize using any
// phase-type (e.g., Coxian) distribution").
//
// The chain keeps the exact short-job count as the QBD level; phases now
// carry the service stage(s) of the short job(s) in service:
//
//   A  — zero longs. Level 0: one state; level 1: the in-service short's
//        phase (k states); levels >= 2: the unordered pair of in-service
//        phases (k(k+1)/2 states).
//   W  — both servers on shorts, >= 1 long waiting: unordered pair states.
//        On the first completion the long grabs that server and the
//        surviving short continues in its current phase.
//   L* — B_L busy period stages x in-service short phase.
//   P* — B_{N+1} busy period stages x in-service short phase.
//
// Busy-period moments: B_L as before; B_{N+1} uses the accumulation window
// Theta = first completion among the two in-service PH shorts, computed as
// the absorption time of the pair process started from the pair
// distribution an arriving long observes (region-2 A states, by PASTA).
// Since that distribution comes from the solved chain, the window is
// refined by a short fixed-point iteration; for exponential shorts it is
// Exp(2 mu_S) immediately and everything reduces to analyze_cscq
// (unit-tested to 1e-8).
//
// Long jobs again see an M/G/1 with setup: zero when the first long of a
// busy cycle finds a free host, and the first-completion time from the pair
// state {i,j} it observes otherwise — the pair distribution is read off the
// solved chain (PASTA), and the setup moments follow from the pair-process
// absorption time started from that distribution.
//
// Throws csq::InvalidInputError on malformed arguments and
// csq::UnstableError when the offered load is outside the stability
// region (core/status.h).
#pragma once

#include <cstddef>

#include "core/config.h"
#include "dist/moment_match.h"
#include "qbd/qbd.h"

namespace csq::analysis {

struct CscqPhOptions {
  int busy_period_moments = 3;
  // Fixed-point iterations refining the B_{N+1} accumulation window: the
  // window's initial pair state is the region-2 pair distribution seen by
  // the arriving long (PASTA), which itself comes from the solved chain.
  // Starting from two fresh services, a handful of iterations converge; for
  // exponential shorts one pass is already exact.
  int window_iterations = 8;
  qbd::Options qbd;
};

struct CscqPhResult {
  PolicyMetrics metrics;
  double p_region1 = 0.0;      // zero longs, a host free for longs
  double p_region2 = 0.0;      // zero longs, both hosts serving shorts
  dist::Moments window;        // Theta: first completion among two services
  dist::Moments busy_single;   // B_L
  dist::Moments busy_batch;    // B_{N+1}
  double qbd_mass_error = 0.0;
  std::size_t num_phases = 0;   // repeating-level phase count
  int window_iterations = 0;    // fixed-point iterations actually performed
  qbd::SolveStats solve_stats;  // R-solver stage, residual, condition estimate
};

// Requires the short size distribution to be a dist::PhaseType (any number
// of phases); throws std::domain_error outside the CS-CQ stability region.
// Throws csq::NotConvergedError / csq::VerificationFailedError /
// csq::IllConditionedError when the QBD or linear-algebra stages fail, and
// csq::DeadlineExceededError / csq::CancelledError on budget interruption.
[[nodiscard]] CscqPhResult analyze_cscq_ph(const SystemConfig& config,
                                           const CscqPhOptions& opts = {});

}  // namespace csq::analysis
