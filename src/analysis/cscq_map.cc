#include "analysis/cscq_map.h"

#include <cmath>

#include "analysis/stability.h"
#include "mg1/mg1.h"
#include "transforms/busy_period.h"

namespace csq::analysis {

namespace {

const dist::PhaseType& require_exponential_shorts(const SystemConfig& config) {
  const auto* ph = dynamic_cast<const dist::PhaseType*>(config.short_size.get());
  if (ph == nullptr || !ph->is_exponential())
    throw InvalidInputError("analyze_cscq_map: short sizes must be exponential");
  return *ph;
}

}  // namespace

CscqMapResult analyze_cscq_map(const SystemConfig& config, const CscqMapOptions& opts) {
  config.validate();
  if (!config.short_arrivals)
    throw InvalidInputError("analyze_cscq_map: config.short_arrivals must be set");
  const dist::MapProcess& map = *config.short_arrivals;
  const double mu_s = require_exponential_shorts(config).rate();
  const double ll = config.lambda_long;
  const dist::Moments xl = config.long_size->moments();
  const double rho_l = ll * xl.m1;
  const double rho_s = map.mean_rate() / mu_s;
  if (rho_l >= 1.0 || !cscq_stable(rho_s, rho_l))
    throw UnstableError(
        "analyze_cscq_map: outside CS-CQ stability region (mean-rate rho_S = " +
            std::to_string(rho_s) + " must be < 2 - rho_L = " +
            std::to_string(2.0 - rho_l) + ")",
        Diagnostics::loads(rho_s, rho_l));

  const dist::PhaseType bl =
      dist::fit_ph(transforms::mg1_busy_period(xl, ll), opts.busy_period_moments);
  const dist::PhaseType bn = dist::fit_ph(
      transforms::batch_busy_period(xl, ll, 2.0 * mu_s), opts.busy_period_moments);
  const std::size_t kl = bl.num_phases();
  const std::size_t kp = bn.num_phases();
  const std::size_t v = map.num_phases();
  const linalg::Matrix& d0 = map.d0();
  const linalg::Matrix& d1 = map.d1();

  // Base phases as in analyze_cscq; the MAP phase is the fast index.
  const std::size_t base_rep = 2 + kl + kp;   // A, W, L*, P*
  const std::size_t base_bnd = 1 + kl + kp;   // A, L*, P*
  const std::size_t m = base_rep * v;
  const std::size_t b = base_bnd * v;

  CscqMapResult res;
  res.num_phases = m;

  const auto rep = [&](std::size_t base, std::size_t a) { return base * v + a; };
  const std::size_t rep_a = 0, rep_w = 1;
  const auto rep_l = [&](std::size_t i) { return 2 + i; };
  const auto rep_p = [&](std::size_t j) { return 2 + kl + j; };
  const auto bnd = [&](std::size_t base, std::size_t a) { return base * v + a; };
  const std::size_t bnd_a = 0;
  const auto bnd_l = [&](std::size_t i) { return 1 + i; };
  const auto bnd_p = [&](std::size_t j) { return 1 + kl + j; };

  // Scatter base-level transitions over all MAP phases (MAP phase carried
  // along unchanged), into `dst` with the base->index mapping given.
  const auto add_base = [&](qbd::Matrix& dst, auto from_idx, std::size_t from_base,
                            auto to_idx, std::size_t to_base, double rate) {
    for (std::size_t a = 0; a < v; ++a)
      dst(from_idx(from_base, a), to_idx(to_base, a)) += rate;
  };
  // MAP transitions: D1 moves up a level (arrival), D0 off-diagonals change
  // the arrival phase in place.
  const auto add_map = [&](qbd::Matrix& up, qbd::Matrix& local, auto idx,
                           std::size_t num_base) {
    for (std::size_t base = 0; base < num_base; ++base)
      for (std::size_t a = 0; a < v; ++a)
        for (std::size_t a2 = 0; a2 < v; ++a2) {
          if (d1(a, a2) > 0.0) up(idx(base, a), idx(base, a2)) += d1(a, a2);
          if (a2 != a && d0(a, a2) > 0.0) local(idx(base, a), idx(base, a2)) += d0(a, a2);
        }
  };

  qbd::Model model;
  model.a0 = qbd::Matrix(m, m);
  model.a1 = qbd::Matrix(m, m);
  model.a2 = qbd::Matrix(m, m);
  model.first_down = qbd::Matrix(m, b);
  add_map(model.a0, model.a1, rep, base_rep);

  const auto add_ph_block = [&](qbd::Matrix& dst, const dist::PhaseType& ph, auto base_of,
                                std::size_t to_a) {
    const auto& t = ph.subgenerator();
    for (std::size_t i = 0; i < ph.num_phases(); ++i) {
      for (std::size_t j = 0; j < ph.num_phases(); ++j)
        if (i != j) add_base(dst, rep, base_of(i), rep, base_of(j), t(i, j));
      add_base(dst, rep, base_of(i), rep, to_a, ph.exit_rates()[i]);
    }
  };

  add_base(model.a1, rep, rep_a, rep, rep_w, ll);
  add_ph_block(model.a1, bl, rep_l, rep_a);
  add_ph_block(model.a1, bn, rep_p, rep_a);

  add_base(model.a2, rep, rep_a, rep, rep_a, 2.0 * mu_s);
  for (std::size_t j = 0; j < kp; ++j)
    add_base(model.a2, rep, rep_w, rep, rep_p(j), 2.0 * mu_s * bn.alpha()[j]);
  for (std::size_t i = 0; i < kl; ++i)
    add_base(model.a2, rep, rep_l(i), rep, rep_l(i), mu_s);
  for (std::size_t j = 0; j < kp; ++j)
    add_base(model.a2, rep, rep_p(j), rep, rep_p(j), mu_s);

  add_base(model.first_down, rep, rep_a, bnd, bnd_a, 2.0 * mu_s);
  for (std::size_t j = 0; j < kp; ++j)
    add_base(model.first_down, rep, rep_w, bnd, bnd_p(j), 2.0 * mu_s * bn.alpha()[j]);
  for (std::size_t i = 0; i < kl; ++i)
    add_base(model.first_down, rep, rep_l(i), bnd, bnd_l(i), mu_s);
  for (std::size_t j = 0; j < kp; ++j)
    add_base(model.first_down, rep, rep_p(j), bnd, bnd_p(j), mu_s);

  const auto add_boundary_common = [&](qbd::BoundaryLevel& lvl) {
    lvl.local = qbd::Matrix(b, b);
    // A long arrival at levels 0/1 finds a free host: B_L starts.
    for (std::size_t i = 0; i < kl; ++i)
      add_base(lvl.local, bnd, bnd_a, bnd, bnd_l(i), ll * bl.alpha()[i]);
    const auto add_bnd_ph = [&](const dist::PhaseType& ph, auto base_of) {
      const auto& t = ph.subgenerator();
      for (std::size_t i = 0; i < ph.num_phases(); ++i) {
        for (std::size_t j = 0; j < ph.num_phases(); ++j)
          if (i != j) add_base(lvl.local, bnd, base_of(i), bnd, base_of(j), t(i, j));
        add_base(lvl.local, bnd, base_of(i), bnd, bnd_a, ph.exit_rates()[i]);
      }
    };
    add_bnd_ph(bl, bnd_l);
    add_bnd_ph(bn, bnd_p);
  };

  model.boundary.resize(2);
  {
    qbd::BoundaryLevel& lvl = model.boundary[0];
    add_boundary_common(lvl);
    lvl.up = qbd::Matrix(b, b);
    add_map(lvl.up, lvl.local, bnd, base_bnd);
  }
  {
    qbd::BoundaryLevel& lvl = model.boundary[1];
    add_boundary_common(lvl);
    // Up from level 1 maps boundary bases onto repeating bases.
    lvl.up = qbd::Matrix(b, m);
    for (std::size_t a = 0; a < v; ++a)
      for (std::size_t a2 = 0; a2 < v; ++a2) {
        if (d1(a, a2) <= 0.0) continue;
        lvl.up(bnd(bnd_a, a), rep(rep_a, a2)) += d1(a, a2);
        for (std::size_t i = 0; i < kl; ++i)
          lvl.up(bnd(bnd_l(i), a), rep(rep_l(i), a2)) += d1(a, a2);
        for (std::size_t j = 0; j < kp; ++j)
          lvl.up(bnd(bnd_p(j), a), rep(rep_p(j), a2)) += d1(a, a2);
      }
    // Silent D0 phase changes at level 1.
    for (std::size_t base = 0; base < base_bnd; ++base)
      for (std::size_t a = 0; a < v; ++a)
        for (std::size_t a2 = 0; a2 < v; ++a2)
          if (a2 != a && d0(a, a2) > 0.0) lvl.local(bnd(base, a), bnd(base, a2)) += d0(a, a2);
    lvl.down = qbd::Matrix(b, b);
    for (std::size_t i = 0; i < b; ++i) lvl.down(i, i) = mu_s;
  }

  const qbd::Solution sol = qbd::solve(model, opts.qbd);
  res.solve_stats = sol.stats;
  res.qbd_mass_error = std::abs(sol.total_mass() - 1.0);

  const double lambda_eff = map.mean_rate();
  const dist::Moments xs = config.short_size->moments();
  res.metrics.shorts = class_metrics_from_response(sol.mean_level() / lambda_eff,
                                                   lambda_eff, xs.m1);

  for (std::size_t a = 0; a < v; ++a)
    res.p_region1 += sol.boundary_pi[0][bnd(bnd_a, a)] + sol.boundary_pi[1][bnd(bnd_a, a)];
  const std::vector<double> rep_mass = sol.repeating_mass_by_phase();
  for (std::size_t a = 0; a < v; ++a) res.p_region2 += rep_mass[rep(rep_a, a)];
  const double pa = res.p_region1 + res.p_region2;
  const double w2 = pa > 0.0 ? res.p_region2 / pa : 0.0;
  const double delta = 2.0 * mu_s;
  const dist::Moments setup{w2 / delta, 2.0 * w2 / (delta * delta),
                            6.0 * w2 / (delta * delta * delta)};
  res.metrics.longs =
      ll > 0.0
          ? class_metrics_from_response(mg1::setup_response(ll, xl, setup), ll, xl.m1)
          : class_metrics_from_response(xl.m1, 0.0, xl.m1);
  return res;
}

}  // namespace csq::analysis
