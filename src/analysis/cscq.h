// Cycle Stealing with Central Queue (CS-CQ) — the paper's contribution.
//
// The number of short jobs is tracked exactly as the level of a QBD; the
// long-job dimension is collapsed into "busy period transitions": phase-type
// (default 2-stage Coxian) sojourns matched to the first three moments of
//
//   B_L      — M/G/1 busy period of longs started by one long (a long
//              arrived while a host was free for longs), and
//   B_{N+1}  — busy period started by the N+1 longs present when one of two
//              in-service shorts completes, N ~ #arrivals in Exp(2 mu_S)
//              (a long arrived while both hosts were serving shorts).
//
// Repeating-level phases:
//   A  — zero longs; shorts served by min(n,2) servers;
//   W  — both servers on shorts, >=1 long waiting (paper's region 5);
//   L* — B_L phases (regions 3);  P* — B_{N+1} phases (region 4).
//
// Short-job response time comes from the QBD mean level and Little's law;
// long-job response time from an M/G/1 queue with setup time chi, where chi
// is 0 if the first long of a long-busy-cycle finds <= 1 short in service
// (paper's region 1) and Exp(2 mu_S) if it finds both hosts serving shorts
// (region 2), with probabilities read off the solved chain via PASTA.
//
// Restrictions (same as the paper's numerical sections): Poisson arrivals,
// exponential short sizes inside the chain (the simulator takes general
// shorts), general long sizes represented by their first three moments.
#pragma once

#include <cstddef>

#include "core/config.h"
#include "dist/moment_match.h"
#include "obs/obs.h"
#include "qbd/qbd.h"

namespace csq::analysis {

struct CscqOptions {
  // How many busy-period moments the phase-type transitions match (1..3).
  // 3 is the paper's choice; 1 and 2 exist for the ablation bench.
  int busy_period_moments = 3;
  qbd::Options qbd;
  // Scratch reused by the QBD solve (buffers + cached block patterns).
  // Callers issuing many analyses (sweeps, batches, serve loops) pass one to
  // amortize allocation and pattern analysis; nullptr = solve-local scratch.
  qbd::Workspace* workspace = nullptr;
};

struct CscqResult {
  PolicyMetrics metrics;

  // Diagnostics.
  double p_region1 = 0.0;  // P(zero longs, <= 1 short in service)
  double p_region2 = 0.0;  // P(zero longs, both servers on shorts)
  dist::Moments busy_single;  // B_L moments
  dist::Moments busy_batch;   // B_{N+1} moments
  dist::FitReport fit_single;
  dist::FitReport fit_batch;
  double qbd_mass_error = 0.0;  // |total stationary mass - 1|
  qbd::SolveStats solve_stats;  // R-solver stage, residual, condition estimate
  // Obs counter increments during this call (process-global; see
  // src/obs/obs.h for the concurrent-solve attribution caveat).
  obs::MetricsDelta obs_metrics;

  // Short-job queue-length distribution (the chain tracks it exactly):
  // P(N_S = n) ~ c * decay^n asymptotically, and the 99th percentile of the
  // short-job count — the backlog a provisioner must absorb.
  double short_count_decay = 0.0;
  std::size_t short_count_p99 = 0;
};

// Throws csq::UnstableError (a std::domain_error) outside the stability
// region (rho_L < 1 and rho_S < 2 - rho_L) and csq::InvalidInputError (a
// std::invalid_argument) when the short size distribution is not
// exponential; QBD solver failures surface as csq::NotConvergedError /
// csq::VerificationFailedError with diagnostics attached, with
// csq::IllConditionedError escaping from the linear-algebra stages.
// Throws csq::DeadlineExceededError / csq::CancelledError when
// opts.budget is interrupted mid-analysis.
[[nodiscard]] CscqResult analyze_cscq(const SystemConfig& config, const CscqOptions& opts = {});

// Long-job mean response when the SHORT class is overloaded
// (rho_S >= 2 - rho_L) but rho_L < 1 — Figure 6 plots long curves across
// this regime. With the short queue saturated, the first long of every
// long-busy-cycle finds both hosts serving shorts, so the M/G/1 setup time
// is Exp(2 mu_S) with probability one.
[[nodiscard]] double cscq_long_response_saturated(const SystemConfig& config);

}  // namespace csq::analysis
