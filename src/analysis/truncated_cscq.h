// Exact CS-CQ chain for exponential short and long sizes, truncated in both
// dimensions and solved as a finite sparse CTMC.
//
// The paper rejects this approach for production use ("truncation is neither
// sufficiently accurate nor robust") — we implement it as an exactness
// oracle: for exponential/exponential workloads and generous caps it
// converges to the true chain, letting the test-suite and the ablation bench
// measure (a) the busy-period-transition approximation error of the QBD
// analysis and (b) the truncation error the paper warns about.
//
// State space: (n_S, n_L, c) with
//   c = A — n_L == 0, shorts on min(n_S,2) servers;
//   c = L — n_L >= 1, one server serving longs, the other serving shorts;
//   c = W — n_L >= 1, both servers on shorts (n_S >= 2), longs all waiting.
//
// Throws csq::InvalidInputError on malformed arguments,
// csq::UnstableError when the offered load is outside the stability
// region, and csq::DeadlineExceededError / csq::CancelledError when
// opts.budget is interrupted during the Gauss-Seidel solve (core/status.h).
#pragma once

#include "core/config.h"
#include "core/deadline.h"
#include "obs/obs.h"

namespace csq::analysis {

struct TruncatedCscqOptions {
  int max_shorts = 200;
  int max_longs = 200;
  double tolerance = 1e-10;  // L1 change per sweep; see ctmc::StationaryOptions
  int max_sweeps = 50000;
  double sor_omega = 1.0;
  // Wall-clock/cancellation budget, forwarded to ctmc::stationary (polled
  // once per Gauss-Seidel sweep).
  RunBudget budget;
};

struct TruncatedCscqResult {
  PolicyMetrics metrics;
  double p_region1 = 0.0;       // P(n_L = 0, n_S <= 1)
  double p_region2 = 0.0;       // P(n_L = 0, n_S >= 2)
  double mass_at_short_cap = 0.0;  // truncation health: P(n_S == max)
  double mass_at_long_cap = 0.0;
  bool converged = false;
  int sweeps = 0;
  obs::MetricsDelta obs_metrics;   // counter increments during this call
};

// Throws std::invalid_argument unless both size distributions are
// exponential; std::domain_error outside the CS-CQ stability region.
// The truncated-chain solve can also surface csq::IllConditionedError
// from the linear-algebra stage.
[[nodiscard]] TruncatedCscqResult analyze_cscq_truncated(const SystemConfig& config,
                                                         const TruncatedCscqOptions& opts = {});

}  // namespace csq::analysis
