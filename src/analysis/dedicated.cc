#include "analysis/dedicated.h"

#include "mg1/mg1.h"
#include "obs/trace.h"

namespace csq::analysis {

PolicyMetrics analyze_dedicated(const SystemConfig& config) {
  CSQ_OBS_SPAN("analysis.dedicated.analyze");
  config.validate();
  const dist::Moments xs = config.short_size->moments();
  const dist::Moments xl = config.long_size->moments();
  PolicyMetrics m;
  m.shorts = class_metrics_from_response(mg1::pk_response(config.lambda_short, xs),
                                         config.lambda_short, xs.m1);
  m.longs = class_metrics_from_response(mg1::pk_response(config.lambda_long, xl),
                                        config.lambda_long, xl.m1);
  return m;
}

}  // namespace csq::analysis
