#include "analysis/truncated_cscq.h"

#include "analysis/stability.h"
#include "core/faultpoint.h"
#include "core/status.h"
#include "ctmc/sparse.h"
#include "obs/trace.h"
#include "ctmc/stationary.h"
#include "dist/phase_type.h"

namespace csq::analysis {

namespace {

double exponential_rate(const dist::DistPtr& d, const char* what) {
  const auto* ph = dynamic_cast<const dist::PhaseType*>(d.get());
  if (ph == nullptr || !ph->is_exponential())
    throw InvalidInputError(std::string("analyze_cscq_truncated: ") + what +
                            " size must be exponential");
  return ph->rate();
}

}  // namespace

TruncatedCscqResult analyze_cscq_truncated(const SystemConfig& config,
                                           const TruncatedCscqOptions& opts) {
  CSQ_OBS_SPAN("analysis.truncated.analyze");
  const obs::DeltaScope obs_scope;
  config.validate();
  const double mu_s = exponential_rate(config.short_size, "short");
  const double mu_l = exponential_rate(config.long_size, "long");
  const double ls = config.lambda_short;
  const double ll = config.lambda_long;
  const double rho_s = ls / mu_s;
  const double rho_l = ll / mu_l;
  if (!cscq_stable(rho_s, rho_l))
    throw UnstableError("analyze_cscq_truncated: outside CS-CQ stability region",
                        Diagnostics::loads(rho_s, rho_l));
  if (opts.max_shorts < 3 || opts.max_longs < 2)
    throw InvalidInputError("analyze_cscq_truncated: caps too small");

  const int ns_max = opts.max_shorts;
  const int nl_max = opts.max_longs;

  // State encoding. Configurations: A only at n_L = 0; L for n_L >= 1; W for
  // n_L >= 1 and n_S >= 2. Pack as:
  //   A(ns)        -> ns                                  (0..ns_max)
  //   L(ns, nl)    -> base_l + (nl-1)*(ns_max+1) + ns
  //   W(ns, nl)    -> base_w + (nl-1)*(ns_max-1) + (ns-2)
  const std::size_t base_l = static_cast<std::size_t>(ns_max) + 1;
  const std::size_t stride_l = static_cast<std::size_t>(ns_max) + 1;
  const std::size_t base_w = base_l + static_cast<std::size_t>(nl_max) * stride_l;
  const std::size_t stride_w = static_cast<std::size_t>(ns_max) - 1;
  const std::size_t n_states = base_w + static_cast<std::size_t>(nl_max) * stride_w;

  const auto id_a = [&](int ns) { return static_cast<std::size_t>(ns); };
  const auto id_l = [&](int ns, int nl) {
    return base_l + static_cast<std::size_t>(nl - 1) * stride_l + static_cast<std::size_t>(ns);
  };
  const auto id_w = [&](int ns, int nl) {
    return base_w + static_cast<std::size_t>(nl - 1) * stride_w + static_cast<std::size_t>(ns - 2);
  };

  ctmc::Generator q(n_states);

  for (int ns = 0; ns <= ns_max; ++ns) {
    // --- A states ---
    if (ns < ns_max) q.add(id_a(ns), id_a(ns + 1), ls);
    if (ns >= 1) q.add(id_a(ns), id_a(ns - 1), std::min(ns, 2) * mu_s);
    if (nl_max >= 1 && ll > 0.0) {
      if (ns >= 2)
        q.add(id_a(ns), id_w(ns, 1), ll);
      else
        q.add(id_a(ns), id_l(ns, 1), ll);
    }
    for (int nl = 1; nl <= nl_max; ++nl) {
      // --- L states ---
      const std::size_t s = id_l(ns, nl);
      if (ns < ns_max) q.add(s, id_l(ns + 1, nl), ls);
      if (nl < nl_max && ll > 0.0) q.add(s, id_l(ns, nl + 1), ll);
      q.add(s, nl == 1 ? id_a(ns) : id_l(ns, nl - 1), mu_l);
      if (ns >= 1) q.add(s, id_l(ns - 1, nl), mu_s);
      // --- W states (n_S >= 2) ---
      if (ns >= 2) {
        const std::size_t w = id_w(ns, nl);
        if (ns < ns_max) q.add(w, id_w(ns + 1, nl), ls);
        if (nl < nl_max && ll > 0.0) q.add(w, id_w(ns, nl + 1), ll);
        q.add(w, id_l(ns - 1, nl), 2.0 * mu_s);
      }
    }
  }
  q.finalize();

  CSQ_FAULT_POINT("analysis.truncated.solve");
  const ctmc::StationaryResult st =
      ctmc::stationary(q, {opts.tolerance, opts.max_sweeps, opts.sor_omega, opts.budget});

  TruncatedCscqResult res;
  res.converged = st.converged;
  res.sweeps = st.sweeps;

  double mean_shorts = 0.0, mean_longs = 0.0;
  for (int ns = 0; ns <= ns_max; ++ns) {
    const double pa = st.pi[id_a(ns)];
    mean_shorts += ns * pa;
    if (ns <= 1)
      res.p_region1 += pa;
    else
      res.p_region2 += pa;
    if (ns == ns_max) res.mass_at_short_cap += pa;
    for (int nl = 1; nl <= nl_max; ++nl) {
      double p = st.pi[id_l(ns, nl)];
      if (ns >= 2) p += st.pi[id_w(ns, nl)];
      mean_shorts += ns * p;
      mean_longs += nl * p;
      if (ns == ns_max) res.mass_at_short_cap += p;
      if (nl == nl_max) res.mass_at_long_cap += p;
    }
  }

  const double mean_xs = 1.0 / mu_s;
  const double mean_xl = 1.0 / mu_l;
  res.metrics.shorts = class_metrics_from_response(ls > 0.0 ? mean_shorts / ls : mean_xs,
                                                   ls, mean_xs);
  res.metrics.longs = class_metrics_from_response(ll > 0.0 ? mean_longs / ll : mean_xl,
                                                  ll, mean_xl);
  res.obs_metrics = obs_scope.delta();
  return res;
}

}  // namespace csq::analysis
