// Dedicated task assignment: shorts to the short host, longs to the long
// host, no stealing — each host is a plain M/G/1 (Pollaczek-Khinchine).
#pragma once

#include "core/config.h"

namespace csq::analysis {

// Throws csq::UnstableError (a std::domain_error) when either host is
// overloaded and csq::InvalidInputError on malformed configs. Fault
// injection inside the M/G/1 moment kernels can also surface
// csq::DeadlineExceededError / csq::CancelledError (the shared fault-plan
// machinery, core/faultpoint.h, injects whatever the plan configures).
[[nodiscard]] PolicyMetrics analyze_dedicated(const SystemConfig& config);

}  // namespace csq::analysis
