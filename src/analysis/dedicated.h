// Dedicated task assignment: shorts to the short host, longs to the long
// host, no stealing — each host is a plain M/G/1 (Pollaczek-Khinchine).
#pragma once

#include "core/config.h"

namespace csq::analysis {

// Throws std::domain_error when either host is overloaded.
[[nodiscard]] PolicyMetrics analyze_dedicated(const SystemConfig& config);

}  // namespace csq::analysis
