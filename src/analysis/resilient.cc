#include "analysis/resilient.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "analysis/cscq.h"
#include "analysis/stability.h"
#include "core/solver.h"
#include "msim/multi_sim.h"
#include "obs/trace.h"

namespace csq::analysis {

const char* rung_name(Rung r) {
  switch (r) {
    case Rung::kExact: return "exact";
    case Rung::kTruncated: return "truncated";
    case Rung::kSimulation: return "simulation";
  }
  return "?";
}

namespace {

Diagnostics ladder_diagnostics(const SystemConfig& config, const ResilientOptions& opts,
                               const std::vector<RungAttempt>& attempts) {
  Diagnostics d = Diagnostics::loads(config.rho_short(), config.rho_long());
  for (const RungAttempt& a : attempts) {
    std::string note = std::string(rung_name(a.rung)) + ": ";
    note += a.succeeded ? "ok"
                        : std::string(error_code_name(a.status.code)) + " — " + a.status.message;
    d.notes.push_back(std::move(note));
  }
  return opts.budget.annotate(std::move(d));
}

}  // namespace

ResilientResult analyze_resilient(const SystemConfig& config, const ResilientOptions& opts) {
  CSQ_OBS_SPAN("analysis.resilient.ladder");
  const obs::DeltaScope obs_scope;
  config.validate();
  if (!(opts.exact_budget_fraction > 0.0) || !(opts.exact_budget_fraction <= 1.0))
    throw InvalidInputError("analyze_resilient: exact_budget_fraction must be in (0, 1]");
  if (!(opts.truncation_mass_tolerance > 0.0))
    throw InvalidInputError("analyze_resilient: truncation_mass_tolerance must be > 0");
  const double rho_s = config.rho_short();
  const double rho_l = config.rho_long();
  if (rho_l >= 1.0 || !cscq_stable(rho_s, rho_l))
    throw UnstableError(
        "analyze_resilient: outside the CS-CQ stability region — no rung can "
        "produce a steady-state answer",
        Diagnostics::loads(rho_s, rho_l));
  opts.budget.check("analyze_resilient/entry", Diagnostics::loads(rho_s, rho_l));

  ResilientResult res;

  // Run one rung body, classifying any failure into a recorded RungAttempt.
  // CancelledError aborts the ladder (the caller asked to stop); so does
  // UnstableError, which the entry check makes unreachable in practice.
  const auto attempt = [&](Rung rung, const auto& body) -> bool {
    CSQ_OBS_COUNT("resilient.attempts.count");
    RungAttempt a;
    a.rung = rung;
    const std::int64_t t0 = timebase::now_ns();
    try {
      body();
      a.succeeded = true;
    } catch (const CancelledError&) {
      throw;
    } catch (const UnstableError&) {
      throw;
    } catch (const Error& e) {
      a.status = e.status();
    } catch (const std::exception& e) {
      a.status = status_from_exception(e);
    }
    a.elapsed_ms = static_cast<double>(timebase::now_ns() - t0) / 1e6;
    res.attempts.push_back(std::move(a));
    if (res.attempts.back().succeeded)
      CSQ_OBS_GAUGE_SET("resilient.rung.used", static_cast<int>(rung));
    return res.attempts.back().succeeded;
  };

  // Record a rung skipped because the deadline already passed. Cancellation
  // never records a skip: it throws out of the ladder instead.
  const auto deadline_skip = [&](Rung rung, const std::string& where) {
    if (opts.budget.cancelled()) opts.budget.check(where);
    RungAttempt a;
    a.rung = rung;
    a.status.code = ErrorCode::kDeadlineExceeded;
    a.status.message = where + ": rung skipped, budget exhausted";
    a.status.diagnostics = opts.budget.annotate({});
    res.attempts.push_back(std::move(a));
  };

  // --- rung 1: exact QBD analysis ------------------------------------------
  if (opts.start_rung > Rung::kExact) {
    // Skipped by request (the caller already ran the exact analysis).
  } else if (opts.budget.interrupted()) {
    deadline_skip(Rung::kExact, "analyze_resilient/exact");
  } else {
    CscqOptions copts;
    copts.busy_period_moments = opts.busy_period_moments;
    copts.qbd = opts.qbd;
    copts.qbd.verify = opts.verify;
    copts.qbd.budget = opts.budget.has_deadline()
                           ? opts.budget.slice_ms(opts.budget.remaining_ms() *
                                                  opts.exact_budget_fraction)
                           : opts.budget;
    const bool ok = attempt(Rung::kExact, [&] {
      const CscqResult r = analyze_cscq(config, copts);
      const SolverStatus v = verify_metrics(r.metrics, config, opts.verify);
      if (!v.ok()) throw VerificationFailedError(v.message, v.diagnostics);
      res.metrics = r.metrics;
      res.solve_stats = r.solve_stats;
      res.rung_used = Rung::kExact;
    });
    if (ok) {
      res.obs_metrics = obs_scope.delta();
      return res;
    }
  }

  // --- rung 2: truncated finite CTMC with growing caps ---------------------
  for (const int cap : opts.start_rung > Rung::kTruncated ? std::vector<int>{}
                                                          : opts.truncation_caps) {
    if (opts.budget.interrupted()) {
      deadline_skip(Rung::kTruncated, "analyze_resilient/truncated");
      break;
    }
    const bool ok = attempt(Rung::kTruncated, [&] {
      TruncatedCscqOptions topts = opts.truncated;
      topts.max_shorts = cap;
      topts.max_longs = cap;
      topts.budget = opts.budget;
      const TruncatedCscqResult r = analyze_cscq_truncated(config, topts);
      const double mass = std::max(r.mass_at_short_cap, r.mass_at_long_cap);
      Diagnostics d = Diagnostics::loads(rho_s, rho_l);
      d.iterations = r.sweeps;
      if (!r.converged)
        throw NotConvergedError("analyze_resilient: truncated solve did not converge at cap " +
                                    std::to_string(cap),
                                std::move(d));
      if (mass > opts.truncation_mass_tolerance) {
        d.residual = mass;
        throw VerificationFailedError(
            "analyze_resilient: stranded probability mass " + std::to_string(mass) +
                " at cap " + std::to_string(cap) + " exceeds the truncation tolerance",
            std::move(d));
      }
      const SolverStatus v = verify_metrics(r.metrics, config, opts.verify);
      if (!v.ok()) throw VerificationFailedError(v.message, v.diagnostics);
      res.metrics = r.metrics;
      res.rung_used = Rung::kTruncated;
      res.truncation_cap = cap;
      res.truncation_mass = mass;
    });
    if (ok) {
      res.obs_metrics = obs_scope.delta();
      return res;
    }
    // A caps-independent rejection (e.g. non-exponential longs) will not be
    // cured by growing the truncation; fall through to simulation at once.
    if (res.attempts.back().status.code == ErrorCode::kInvalidInput) break;
  }

  // --- rung 3: simulation (always runs its initial batch) ------------------
  if (opts.budget.cancelled()) opts.budget.check("analyze_resilient/simulation");
  const bool ok = attempt(Rung::kSimulation, [&] {
    msim::MultiConfig mc;
    mc.short_hosts = 1;
    mc.long_hosts = 1;
    mc.workload = config;
    sim::ReplicationOptions ropts = opts.sim_reps;
    ropts.budget = opts.budget;
    ropts.target_rel_ci = opts.sim_target_rel_ci;
    ropts.max_replications = std::max(ropts.max_replications, ropts.replications);
    const msim::MultiReplicatedResult mr =
        msim::simulate_multi_replications(msim::MultiPolicy::kCsCq, mc, opts.sim, ropts);
    PolicyMetrics m;
    m.shorts = class_metrics_from_response(mr.shorts.mean_response,
                                           config.effective_lambda_short(),
                                           config.short_size->mean());
    m.longs = class_metrics_from_response(mr.longs.mean_response, config.lambda_long,
                                          config.long_size->mean());
    const SolverStatus v = verify_metrics(m, config, opts.verify);
    if (!v.ok()) throw VerificationFailedError(v.message, v.diagnostics);
    res.metrics = m;
    res.rung_used = Rung::kSimulation;
    res.ci_half_width_short = mr.shorts.ci95;
    res.ci_half_width_long = mr.longs.ci95;
    res.replications_used = static_cast<int>(mr.replications.size());
  });
  if (ok) {
    res.obs_metrics = obs_scope.delta();
    return res;
  }

  // Every rung failed. Prefer the budget's typed error when it was the
  // limiting factor; otherwise report the exhausted ladder with its trail.
  Diagnostics d = ladder_diagnostics(config, opts, res.attempts);
  d.stage = "analyze_resilient";
  if (opts.budget.interrupted()) opts.budget.check("analyze_resilient", std::move(d));
  throw NotConvergedError("analyze_resilient: every rung of the degradation ladder failed",
                          std::move(d));
}

}  // namespace csq::analysis
