// Analytic -> truncated -> simulation degradation ladder for CS-CQ.
//
// analyze_resilient() always tries to return *an* answer, trading exactness
// for robustness one rung at a time:
//
//   rung 1 (exact)      — the paper's QBD analysis (analyze_cscq), run under
//                         a ~50% slice of the overall budget so a stuck
//                         solve cannot starve the fallbacks;
//   rung 2 (truncated)  — the finite-CTMC truncation oracle
//                         (analyze_cscq_truncated) with growing caps,
//                         accepted only when converged and the probability
//                         mass stranded at either cap is below
//                         truncation_mass_tolerance (a rejected cap raises
//                         csq::VerificationFailedError internally; it is
//                         recorded in the attempt trail, never escaping the
//                         ladder);
//   rung 3 (simulation) — msim::simulate_multi_replications on the 1+1-host
//                         instance, with adaptive CI-width stopping. Once
//                         entered this rung always completes its initial
//                         replication batch, so a finite budget degrades the
//                         confidence interval rather than the availability
//                         of the estimate.
//
// Budget contract: the overall budget is checked once at ladder entry (an
// already-expired budget throws immediately — "no rung fits") and at each
// truncated-rung attempt; expiry between rungs skips straight to the
// simulation rung. Cancellation, by contrast, aborts the whole ladder at
// the next poll point: a user who cancelled does not want a simulation
// consolation prize.
//
// Throws csq::InvalidInputError on malformed configs, csq::UnstableError
// outside the CS-CQ stability region (no rung can help — an unstable
// simulation never converges), csq::CancelledError when the budget's token
// fires, csq::DeadlineExceededError when the budget is exhausted before any
// rung can start, and csq::NotConvergedError when every rung failed for
// non-budget reasons (diagnostics notes carry the per-rung trail).
#pragma once

#include <string>
#include <vector>

#include "analysis/truncated_cscq.h"
#include "core/config.h"
#include "core/deadline.h"
#include "core/status.h"
#include "obs/obs.h"
#include "qbd/qbd.h"
#include "sim/simulator.h"

namespace csq::analysis {

enum class Rung { kExact = 0, kTruncated, kSimulation };

// "exact", "truncated", "simulation".
[[nodiscard]] const char* rung_name(Rung r);

// One rung attempt, successful or not, in ladder order.
struct RungAttempt {
  Rung rung = Rung::kExact;
  bool succeeded = false;
  // kOk when succeeded; otherwise the classified failure (including
  // kDeadlineExceeded for a rung skipped because the budget ran out).
  SolverStatus status;
  double elapsed_ms = 0.0;  // wall time (incl. virtual) spent in the attempt
};

struct ResilientOptions {
  // Overall ladder budget (see the contract above). Default: unlimited.
  RunBudget budget;
  // First rung to try. A caller that already ran (and failed) the exact
  // analysis itself — the serve layer's retry loop — starts at kTruncated
  // instead of paying for the exact solve a second time; earlier rungs are
  // simply not attempted (they leave no trail entry).
  Rung start_rung = Rung::kExact;
  // Fraction of the remaining budget granted to the exact rung (its slice);
  // the rest is left for the fallbacks.
  double exact_budget_fraction = 0.5;
  int busy_period_moments = 3;  // exact rung (3 = paper's setting)
  VerifyLevel verify = VerifyLevel::kBasic;
  qbd::Options qbd;  // exact rung; its budget is overwritten by the slice
  // Truncated rung: square caps tried in order until the health check
  // passes. Options other than caps/budget come from `truncated`.
  std::vector<int> truncation_caps = {100, 200, 400};
  double truncation_mass_tolerance = 1e-6;
  TruncatedCscqOptions truncated;
  // Simulation rung. sim.seed/total_completions/... are used as given;
  // sim_reps.budget/target_rel_ci are overwritten from this struct.
  sim::SimOptions sim;
  sim::ReplicationOptions sim_reps;
  double sim_target_rel_ci = 0.02;  // adaptive CI target (0 disables)
};

struct ResilientResult {
  PolicyMetrics metrics;           // the answer, from whichever rung held
  Rung rung_used = Rung::kExact;
  std::vector<RungAttempt> attempts;  // ladder trail, in order, incl. success
  // Simulation rung only: across-replication 95% CI half-widths on the mean
  // responses and the replication count used. 0 / 0 for analytic rungs.
  double ci_half_width_short = 0.0;
  double ci_half_width_long = 0.0;
  int replications_used = 0;
  // Exact rung only: the QBD solve trail.
  qbd::SolveStats solve_stats;
  // Truncated rung only: accepted caps and the worst stranded mass.
  int truncation_cap = 0;
  double truncation_mass = 0.0;
  // Obs counter increments across the whole ladder walk (every rung
  // attempted, not just the one that held).
  obs::MetricsDelta obs_metrics;
};

// Rungs that fail are caught and recorded in `attempts`; only errors the
// ladder treats as non-degradable propagate — csq::InvalidInputError for
// malformed configs and csq::IllConditionedError escaping a rung's
// linear-algebra stage before the ladder can demote it.
[[nodiscard]] ResilientResult analyze_resilient(const SystemConfig& config,
                                                const ResilientOptions& opts = {});

}  // namespace csq::analysis
