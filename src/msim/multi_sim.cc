#include "msim/multi_sim.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "parallel/task_pool.h"
#include "sim/rng.h"
#include "sim/stats.h"

#include "core/faultpoint.h"
#include "core/status.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace csq::msim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using sim::Job;
using sim::JobClass;

struct Server {
  bool busy = false;
  double done = 0.0;
  Job job;
};

// Shared mutable state the per-policy schedulers operate on.
struct World {
  int k = 0;  // short hosts: servers [0, k)
  int m = 0;  // long hosts:  servers [k, k+m)
  double now = 0.0;
  std::vector<Server> servers;

  [[nodiscard]] int total() const { return k + m; }
  [[nodiscard]] bool idle(int s) const { return !servers[static_cast<std::size_t>(s)].busy; }
  void start(int s, const Job& job) {
    Server& sv = servers[static_cast<std::size_t>(s)];
    if (sv.busy) throw InternalError("msim: server already busy");
    sv.busy = true;
    sv.job = job;
    sv.done = now + job.size;
  }
  // Any idle server in [lo, hi), or -1.
  [[nodiscard]] int find_idle(int lo, int hi) const {
    for (int s = lo; s < hi; ++s)
      if (idle(s)) return s;
    return -1;
  }
  [[nodiscard]] int servers_serving_longs() const {
    int n = 0;
    for (const Server& s : servers)
      if (s.busy && s.job.cls == JobClass::kLong) ++n;
    return n;
  }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual void arrival(World& w, const Job& job) = 0;
  virtual void freed(World& w, int server) = 0;
};

// Central FCFS queue per partition.
class DedicatedScheduler final : public Scheduler {
 public:
  void arrival(World& w, const Job& job) override {
    const bool is_short = job.cls == JobClass::kShort;
    const int s = is_short ? w.find_idle(0, w.k) : w.find_idle(w.k, w.total());
    if (s >= 0)
      w.start(s, job);
    else
      (is_short ? shorts_ : longs_).push_back(job);
  }
  void freed(World& w, int server) override {
    auto& q = server < w.k ? shorts_ : longs_;
    if (!q.empty()) {
      w.start(server, q.front());
      q.pop_front();
    }
  }

 private:
  std::deque<Job> shorts_;
  std::deque<Job> longs_;
};

// Immediate dispatch with idle-donor stealing; JSQ within each partition.
class CsIdScheduler final : public Scheduler {
 public:
  explicit CsIdScheduler(const World& w)
      : queues_(static_cast<std::size_t>(w.total())) {}

  void arrival(World& w, const Job& job) override {
    if (job.cls == JobClass::kShort) {
      const int donor = w.find_idle(w.k, w.total());
      if (donor >= 0) {
        w.start(donor, job);
        return;
      }
      dispatch_jsq(w, job, 0, w.k);
      return;
    }
    dispatch_jsq(w, job, w.k, w.total());
  }
  void freed(World& w, int server) override {
    auto& q = queues_[static_cast<std::size_t>(server)];
    if (!q.empty()) {
      w.start(server, q.front());
      q.pop_front();
    }
  }

 private:
  void dispatch_jsq(World& w, const Job& job, int lo, int hi) {
    int best = lo;
    std::size_t best_len = std::numeric_limits<std::size_t>::max();
    for (int s = lo; s < hi; ++s) {
      const std::size_t len =
          queues_[static_cast<std::size_t>(s)].size() + (w.idle(s) ? 0 : 1);
      if (len < best_len) {
        best_len = len;
        best = s;
      }
    }
    if (w.idle(best))
      w.start(best, job);
    else
      queues_[static_cast<std::size_t>(best)].push_back(job);
  }

  std::vector<std::deque<Job>> queues_;
};

// Central queue per class; at most m servers serve longs at a time.
class CsCqScheduler final : public Scheduler {
 public:
  void arrival(World& w, const Job& job) override {
    (job.cls == JobClass::kShort ? shorts_ : longs_).push_back(job);
    schedule(w);
  }
  void freed(World& w, int server) override {
    (void)server;
    schedule(w);
  }

 private:
  void schedule(World& w) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (int s = 0; s < w.total(); ++s) {
        if (!w.idle(s)) continue;
        if (!longs_.empty() && w.servers_serving_longs() < w.m) {
          w.start(s, longs_.front());
          longs_.pop_front();
          progress = true;
        } else if (!shorts_.empty()) {
          w.start(s, shorts_.front());
          shorts_.pop_front();
          progress = true;
        }
      }
    }
  }

  std::deque<Job> shorts_;
  std::deque<Job> longs_;
};

// Class-blind policy zoo over n = k + m interchangeable hosts: per-host
// FCFS queues and uniform random dispatch, refined by idle-queue
// signalling (JIQ), pull-side stealing (one/half/threshold-batch from the
// longest-queue victim) or push-side sharing. Decisions draw from a
// dedicated RNG stream (13), disjoint from the arrival stream (7), so the
// sampled arrival sequence is policy-independent under a fixed seed — the
// same isolation contract as the two-host zoo.
class ZooScheduler final : public Scheduler {
 public:
  ZooScheduler(MultiPolicy policy, const World& w, const sim::SimOptions& opts)
      : policy_(policy),
        cfg_(opts.policy),
        rng_(sim::make_rng(opts.seed, /*stream=*/13)),
        queues_(static_cast<std::size_t>(w.total())) {
    if (policy == MultiPolicy::kThresholdSteal) {
      if (cfg_.steal_threshold < 1)
        throw InvalidInputError("msim Threshold-Steal: steal_threshold must be >= 1");
      if (cfg_.steal_batch < 1)
        throw InvalidInputError("msim Threshold-Steal: steal_batch must be >= 1");
    }
    if (policy == MultiPolicy::kWorkSharing && cfg_.share_threshold < 0)
      throw InvalidInputError("msim Work-Sharing: share_threshold must be >= 0");
    if (policy == MultiPolicy::kJiq)
      for (int s = 0; s < w.total(); ++s) idle_.push_back(s);
  }

  void arrival(World& w, const Job& job) override {
    if (policy_ == MultiPolicy::kJiq) {
      if (!idle_.empty()) {
        const int s = idle_.front();
        idle_.pop_front();
        w.start(s, job);
        return;
      }
      queues_[static_cast<std::size_t>(random_host(w))].push_back(job);
      return;
    }
    const int host = random_host(w);
    if (policy_ == MultiPolicy::kWorkSharing && !w.idle(host) &&
        queues_[static_cast<std::size_t>(host)].size() >=
            static_cast<std::size_t>(cfg_.share_threshold)) {
      // Push to an idle host when one exists, else to a second random host.
      int other = w.find_idle(0, w.total());
      if (other < 0) other = random_other(w, host);
      place(w, other, job);
      return;
    }
    place(w, host, job);
  }

  void freed(World& w, int server) override {
    auto& q = queues_[static_cast<std::size_t>(server)];
    if (!q.empty()) {
      w.start(server, q.front());
      q.pop_front();
      return;
    }
    switch (policy_) {
      case MultiPolicy::kJiq: idle_.push_back(server); return;
      case MultiPolicy::kStealOne: steal(w, server, /*half=*/false); return;
      case MultiPolicy::kStealHalf: steal(w, server, /*half=*/true); return;
      case MultiPolicy::kThresholdSteal: steal(w, server, /*half=*/false); return;
      default: return;
    }
  }

 private:
  void place(World& w, int host, const Job& job) {
    if (w.idle(host))
      w.start(host, job);
    else
      queues_[static_cast<std::size_t>(host)].push_back(job);
  }
  int random_host(const World& w) {
    return static_cast<int>(rng_() % static_cast<std::uint64_t>(w.total()));
  }
  int random_other(const World& w, int host) {
    const int r = static_cast<int>(rng_() % static_cast<std::uint64_t>(w.total() - 1));
    return r >= host ? r + 1 : r;
  }
  void steal(World& w, int thief, bool half) {
    // Longest-queue victim, lowest index on ties — deterministic under the
    // replication contract.
    int victim = -1;
    std::size_t longest = 0;
    for (int s = 0; s < w.total(); ++s) {
      if (s == thief) continue;
      const std::size_t len = queues_[static_cast<std::size_t>(s)].size();
      if (len > longest) {
        longest = len;
        victim = s;
      }
    }
    if (victim < 0) return;
    std::size_t take = half ? (longest + 1) / 2 : 1;
    if (policy_ == MultiPolicy::kThresholdSteal) {
      if (longest < static_cast<std::size_t>(cfg_.steal_threshold)) return;
      take = std::min(longest, static_cast<std::size_t>(cfg_.steal_batch));
    }
    auto& vq = queues_[static_cast<std::size_t>(victim)];
    auto& mine = queues_[static_cast<std::size_t>(thief)];
    w.start(thief, vq.front());
    vq.pop_front();
    for (std::size_t i = 1; i < take; ++i) {
      mine.push_back(vq.front());
      vq.pop_front();
    }
  }

  MultiPolicy policy_;
  PolicyConfig cfg_;
  dist::Rng rng_;
  std::vector<std::deque<Job>> queues_;
  std::deque<int> idle_;  // JIQ only: exactly the idle servers, FIFO
};

}  // namespace

const char* multi_policy_name(MultiPolicy p) {
  switch (p) {
    case MultiPolicy::kDedicated: return "Dedicated";
    case MultiPolicy::kCsId: return "CS-ID";
    case MultiPolicy::kCsCq: return "CS-CQ";
    case MultiPolicy::kRandom: return "Random";
    case MultiPolicy::kJiq: return "JIQ";
    case MultiPolicy::kStealOne: return "Steal-One";
    case MultiPolicy::kStealHalf: return "Steal-Half";
    case MultiPolicy::kThresholdSteal: return "Threshold-Steal";
    case MultiPolicy::kWorkSharing: return "Work-Sharing";
  }
  return "?";
}

MultiPolicy multi_policy_from_token(const std::string& token) {
  // Same token spellings as sim::policy_registry(); only policies with a
  // multi-host generalization appear here.
  static const std::pair<const char*, MultiPolicy> kTokens[] = {
      {"dedicated", MultiPolicy::kDedicated},
      {"csid", MultiPolicy::kCsId},
      {"cscq", MultiPolicy::kCsCq},
      {"random", MultiPolicy::kRandom},
      {"jiq", MultiPolicy::kJiq},
      {"steal-one", MultiPolicy::kStealOne},
      {"steal-half", MultiPolicy::kStealHalf},
      {"threshold-steal", MultiPolicy::kThresholdSteal},
      {"work-sharing", MultiPolicy::kWorkSharing},
  };
  for (const auto& [tok, pol] : kTokens)
    if (token == tok) return pol;
  std::string valid;
  for (const auto& [tok, pol] : kTokens) {
    if (!valid.empty()) valid += "|";
    valid += tok;
  }
  throw InvalidInputError("unknown multi-host policy \"" + token + "\" (valid: " + valid +
                          ")");
}

MultiResult simulate_multi(MultiPolicy policy, const MultiConfig& config,
                           const sim::SimOptions& opts) {
  config.workload.validate();
  if (config.short_hosts < 1 || config.long_hosts < 1)
    throw InvalidInputError("simulate_multi: need >= 1 host per partition");
  if (opts.total_completions < 100)
    throw InvalidInputError("simulate_multi: total_completions too small");

  World w;
  w.k = config.short_hosts;
  w.m = config.long_hosts;
  w.servers.resize(static_cast<std::size_t>(w.total()));

  std::unique_ptr<Scheduler> sched;
  switch (policy) {
    case MultiPolicy::kDedicated: sched = std::make_unique<DedicatedScheduler>(); break;
    case MultiPolicy::kCsId: sched = std::make_unique<CsIdScheduler>(w); break;
    case MultiPolicy::kCsCq: sched = std::make_unique<CsCqScheduler>(); break;
    default: sched = std::make_unique<ZooScheduler>(policy, w, opts); break;
  }

  dist::Rng rng = sim::make_rng(opts.seed, /*stream=*/7);
  dist::MapProcess::State map_state;
  if (config.workload.short_arrivals)
    map_state = config.workload.short_arrivals->stationary_state(rng);
  const auto draw_gap = [&](JobClass cls) {
    if (cls == JobClass::kShort && config.workload.short_arrivals)
      return config.workload.short_arrivals->next_interarrival(map_state, rng);
    const double rate = cls == JobClass::kShort ? config.workload.lambda_short
                                                : config.workload.lambda_long;
    if (rate <= 0.0) return kInf;
    return std::exponential_distribution<double>(rate)(rng);
  };
  const auto draw_size = [&](JobClass cls) {
    return (cls == JobClass::kShort ? *config.workload.short_size
                                    : *config.workload.long_size)
        .sample(rng);
  };

  CSQ_OBS_SPAN("msim.engine.run");
  std::uint64_t events = 0;
  double next_arrival[2] = {draw_gap(JobClass::kShort), draw_gap(JobClass::kLong)};
  std::size_t completions = 0;
  const auto warmup =
      static_cast<std::size_t>(opts.warmup_fraction * static_cast<double>(opts.total_completions));
  sim::BatchMeans resp_short(opts.batches), resp_long(opts.batches);
  std::vector<double> busy(w.servers.size(), 0.0);
  double last_event = 0.0;

  while (completions < opts.total_completions) {
    ++events;
    double t = next_arrival[0];
    int ev = 0;  // 0/1 arrivals, 2+s completion on server s
    if (next_arrival[1] < t) {
      t = next_arrival[1];
      ev = 1;
    }
    for (int s = 0; s < w.total(); ++s) {
      const Server& sv = w.servers[static_cast<std::size_t>(s)];
      if (sv.busy && sv.done < t) {
        t = sv.done;
        ev = 2 + s;
      }
    }
    if (t == kInf) throw InternalError("simulate_multi: no events");
    const double dt = t - last_event;
    for (std::size_t s = 0; s < w.servers.size(); ++s)
      if (w.servers[s].busy) busy[s] += dt;
    last_event = t;
    w.now = t;

    if (ev <= 1) {
      const JobClass cls = static_cast<JobClass>(ev);
      const Job job{w.now, draw_size(cls), cls};
      next_arrival[ev] = w.now + draw_gap(cls);
      sched->arrival(w, job);
    } else {
      const int s = ev - 2;
      Server& sv = w.servers[static_cast<std::size_t>(s)];
      const Job done = sv.job;
      sv.busy = false;
      ++completions;
      if (completions > warmup)
        (done.cls == JobClass::kShort ? resp_short : resp_long).add(w.now - done.arrival);
      sched->freed(w, s);
    }
  }

  CSQ_OBS_COUNT_N("msim.engine.events", events);

  MultiResult res;
  res.shorts = {resp_short.count(), resp_short.mean(), resp_short.ci95_halfwidth()};
  res.longs = {resp_long.count(), resp_long.mean(), resp_long.ci95_halfwidth()};
  res.sim_time = w.now;
  for (int s = 0; s < w.k; ++s)
    res.short_partition_utilization += busy[static_cast<std::size_t>(s)] / (w.now * w.k);
  for (int s = w.k; s < w.total(); ++s)
    res.long_partition_utilization += busy[static_cast<std::size_t>(s)] / (w.now * w.m);
  return res;
}

MultiReplicatedResult simulate_multi_replications(MultiPolicy policy,
                                                  const MultiConfig& config,
                                                  const sim::SimOptions& opts,
                                                  const sim::ReplicationOptions& ropts) {
  if (ropts.replications < 1)
    throw InvalidInputError("simulate_multi_replications: need >= 1 replication");
  if (!(ropts.target_rel_ci >= 0.0) || !std::isfinite(ropts.target_rel_ci))
    throw InvalidInputError("simulate_multi_replications: target_rel_ci must be finite and >= 0");
  const bool adaptive = ropts.target_rel_ci > 0.0;
  if (adaptive && ropts.max_replications < ropts.replications)
    throw InvalidInputError("simulate_multi_replications: max_replications < replications");
  const std::size_t n = static_cast<std::size_t>(ropts.replications);
  MultiReplicatedResult out;
  const auto run_batch = [&](std::size_t first, std::size_t count) {
    CSQ_OBS_COUNT("msim.reps.rounds");
    CSQ_OBS_COUNT_N("msim.reps.total", count);
    std::vector<MultiResult> batch =
        par::parallel_map(count, ropts.threads, [&](std::size_t i) {
          CSQ_FAULT_POINT("msim.replication.start");
          sim::SimOptions rep_opts = opts;
          rep_opts.seed = sim::split_seed(opts.seed, first + i);
          return simulate_multi(policy, config, rep_opts);
        });
    out.replications.insert(out.replications.end(), batch.begin(), batch.end());
  };
  const auto reaggregate = [&] {
    std::vector<sim::ClassStats> shorts, longs;
    shorts.reserve(out.replications.size());
    longs.reserve(out.replications.size());
    for (const MultiResult& r : out.replications) {
      shorts.push_back(r.shorts);
      longs.push_back(r.longs);
    }
    out.shorts = sim::aggregate_replications(shorts);
    out.longs = sim::aggregate_replications(longs);
  };
  run_batch(0, n);
  reaggregate();
  // Same between-rounds budget contract as sim::simulate_replications: the
  // initial batch always completes; exhaustion only stops extension.
  while (adaptive &&
         std::max(sim::relative_ci(out.shorts), sim::relative_ci(out.longs)) >
             ropts.target_rel_ci &&
         out.replications.size() < static_cast<std::size_t>(ropts.max_replications) &&
         !ropts.budget.interrupted()) {
    const std::size_t room =
        static_cast<std::size_t>(ropts.max_replications) - out.replications.size();
    run_batch(out.replications.size(), std::min(n, room));
    reaggregate();
  }
  return out;
}

}  // namespace csq::msim
