// Multi-host generalization of the simulator: k short (beneficiary) hosts
// plus m long (donor) hosts. The paper analyzes the 2-host instance and
// lists real installations with 2-8 hosts (Table 1); this module lets a
// user study cycle stealing at those sizes by simulation.
//
// Policies:
//   Dedicated — central FCFS queue per partition (M/G/k per class);
//   CS-ID     — immediate dispatch: an arriving short grabs an idle donor
//               if one exists, else joins the shortest short-host queue
//               (JSQ); longs JSQ among donors and never migrate;
//   CS-CQ     — one central queue per class; a freed host takes a long if
//               fewer than m hosts are serving longs, else a short (the
//               renamable-hosts invariant, generalized).
//
// Throws csq::InvalidInputError (core/status.h) on malformed arguments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "sim/simulator.h"

namespace csq::msim {

enum class MultiPolicy : std::uint8_t {
  kDedicated,
  kCsId,
  kCsCq,
  // The class-blind policy zoo of src/sim/policies.cc generalized to
  // n = k + m interchangeable hosts (docs/policies.md): random dispatch,
  // JIQ idle-queue signalling, and stealing/sharing refinements that pick
  // the longest-queue victim instead of "the other host".
  kRandom,
  kJiq,
  kStealOne,
  kStealHalf,
  kThresholdSteal,
  kWorkSharing,
};

[[nodiscard]] const char* multi_policy_name(MultiPolicy p);

// Resolve the registry token spelling ("cscq", "steal-half", ...; same
// tokens as sim::policy_registry()) to a MultiPolicy. Throws
// csq::InvalidInputError for tokens without a multi-host generalization.
[[nodiscard]] MultiPolicy multi_policy_from_token(const std::string& token);

struct MultiConfig {
  int short_hosts = 1;
  int long_hosts = 1;
  SystemConfig workload;
};

struct MultiResult {
  sim::ClassStats shorts;
  sim::ClassStats longs;
  double short_partition_utilization = 0.0;  // busy fraction averaged over partition
  double long_partition_utilization = 0.0;
  double sim_time = 0.0;
};

// Throws std::invalid_argument on malformed configs. Uses seed/completions/
// warmup/batches from SimOptions (server_speeds and tags_cutoff ignored).
[[nodiscard]] MultiResult simulate_multi(MultiPolicy policy, const MultiConfig& config,
                                         const sim::SimOptions& opts = {});

struct MultiReplicatedResult {
  // Per-replication results; replication r always runs RNG substream
  // split_seed(opts.seed, r), so the vector is identical for every thread
  // count.
  std::vector<MultiResult> replications;
  sim::ClassStats shorts;  // across-replication mean ± 95% CI
  sim::ClassStats longs;
};

// Run ropts.replications independent multi-host simulations in parallel on
// ropts.threads workers (same determinism, adaptive CI-stopping, and budget
// contracts as sim::simulate_replications — the budget is polled only
// between replication rounds, so the initial batch always completes).
// Throws csq::InvalidInputError on malformed options (core/status.h).
[[nodiscard]] MultiReplicatedResult simulate_multi_replications(
    MultiPolicy policy, const MultiConfig& config, const sim::SimOptions& opts = {},
    const sim::ReplicationOptions& ropts = {});

}  // namespace csq::msim
