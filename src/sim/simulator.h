// Discrete-event simulation of the two-host, two-class system.
//
// The engine owns the clock, the two servers and the Poisson arrival
// streams; a Policy object owns the queues and decides which job a freed
// server runs. This is the validation harness of Section 4 of the paper
// (their C simulator) and the only way to evaluate non-analyzed policies
// such as M/G/2/SJF (Section 6).
//
// Throws csq::InvalidInputError (core/status.h) on malformed arguments.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/deadline.h"
#include "sim/stats.h"

namespace csq::sim {

enum class JobClass : std::uint8_t { kShort = 0, kLong = 1 };

// The fixed underlying type lets downstream headers (core/sweep.h) forward-
// declare the enum instead of pulling the whole simulator in.
enum class PolicyKind : std::uint8_t {
  kDedicated,
  kCsId,
  kCsCq,
  kCsCqNoRename,  // CS-CQ with a fixed long host (ablation: the paper credits
                  // renamable hosts for CS-CQ's lower long-job penalty)
  kMg2Fcfs,       // central queue, FCFS, both servers
  kMg2Sjf,        // central queue, non-preemptive shortest-job-first
  kLwr,           // immediate dispatch to the host with Least Work Remaining
                  // (provably equivalent to central-queue M/G/k FCFS [7])
  kTags,          // TAGS (Task Assignment by Guessing Size, Harchol-Balter
                  // JACM 2002): every job starts at host 0 and is killed and
                  // restarted from scratch at host 1 if it exceeds the
                  // cutoff — size-based segregation without knowing sizes
  kRoundRobin,    // alternate arrivals between hosts, per-host FCFS — the
                  // paper's "by far the most common" blind baseline
  // The class-blind policy zoo (docs/policies.md): random dispatch and its
  // work-stealing / work-sharing / idle-queue refinements, in the frame of
  // Van Houdt's stealing-vs-sharing comparison (arXiv:1810.13186) and
  // Mitzenmacher's JIQ fluid analysis (arXiv:1606.01833).
  kRandom,         // uniform random host per arrival, per-host FCFS
  kJiq,            // Join-Idle-Queue: an arrival takes an idle server when
                   // one exists, else falls back to random dispatch
  kStealOne,       // random dispatch + a host going idle steals one queued
                   // job from the other host
  kStealHalf,      // as kStealOne but the thief takes half the victim queue
                   // (ceil(q/2)), serving one and queueing the rest
  kThresholdSteal, // as kStealOne but raids only victims with >=
                   // steal_threshold queued jobs, taking <= steal_batch
  kWorkSharing,    // random dispatch + push-on-arrival: an arrival that finds
                   // its host's queue past share_threshold is pushed to the
                   // other host (central work sharing, the donor initiates)
};

[[nodiscard]] const char* policy_name(PolicyKind kind);

// Registry entry for one policy plug-in. `token` is the stable CLI/serve
// spelling ("cscq", "steal-half", ...), `display` equals policy_name(kind),
// and `analytic` says whether the library has an exact analysis for the
// policy (CS-CQ / CS-ID / Dedicated) or only the simulator.
struct PolicyInfo {
  PolicyKind kind;
  const char* token;
  const char* display;
  bool analytic;
};

// Every registered policy, in PolicyKind declaration order. The registry is
// the single source the CLI, the serve layer and the sweep panel resolve
// names against, so adding a PolicyKind means adding exactly one row here
// (the lint rule policy-registry cross-checks the enum against it).
[[nodiscard]] const std::vector<PolicyInfo>& policy_registry();

// Resolve a registry token ("cscq", "steal-half", ...) to its PolicyKind.
// Throws csq::InvalidInputError for unknown tokens, listing the valid ones.
[[nodiscard]] PolicyKind policy_kind_from_token(const std::string& token);

// Registry token for a kind (inverse of policy_kind_from_token).
[[nodiscard]] const char* policy_token(PolicyKind kind);

struct Job {
  double arrival = 0.0;
  double size = 0.0;
  JobClass cls = JobClass::kShort;
};

struct SimOptions {
  std::uint64_t seed = 20030701;          // ICDCS'03 vintage
  std::size_t total_completions = 400000; // stop after this many completions
  double warmup_fraction = 0.1;           // discarded prefix (by completions)
  int batches = 20;                       // batch-means batches for the CI
  // Relative host speeds (service duration = size / speed). The paper's
  // analysis assumes homogeneous hosts "for ease of exposition"; the
  // simulator supports the heterogeneous extension it mentions.
  std::array<double, 2> server_speeds{1.0, 1.0};
  // TAGS cutoff: work granted at host 0 before kill-and-restart at host 1.
  double tags_cutoff = 1.0;
  // Knobs for the policy zoo (stealing thresholds, sharing threshold);
  // policies without knobs ignore it.
  PolicyConfig policy;
};

struct ClassStats {
  std::size_t completions = 0;
  double mean_response = 0.0;
  double ci95 = 0.0;  // batch-means half width
};

struct SimResult {
  ClassStats shorts;
  ClassStats longs;
  double sim_time = 0.0;
  std::array<double, 2> utilization{};  // busy fraction per server
  double p_long_host_idle = 0.0;        // fraction of time server 1 is idle
  // Conservation ledger: every arrival must end the run completed, queued in
  // the policy, or still on a server — arrivals == completions_total +
  // queued_final + in_service_final, or the policy lost/duplicated a job
  // (the policies test suite asserts this for every registered policy).
  std::size_t arrivals = 0;
  std::size_t completions_total = 0;  // includes the warmup prefix
  std::size_t queued_final = 0;
  std::size_t in_service_final = 0;
  // FNV-1a hash over the arrival sequence (arrival time, size and class
  // bits, in order). The engine draws arrivals from its own RNG stream and
  // policies draw decisions from a disjoint stream, so this hash depends
  // only on (seed, config) — never on the policy. The substream-isolation
  // regression test pins that.
  std::uint64_t arrival_hash = 0;
};

// Multi-replication runs (see simulate_replications).
struct ReplicationOptions {
  int replications = 8;
  // Worker threads running replications: 1 = inline on the caller
  // (default), 0 = all hardware threads, n >= 2 = work-stealing pool of n.
  int threads = 1;
  // Wall-clock/cancellation budget. Observed only *between* replication
  // rounds, never mid-replication and never before the initial batch: once
  // simulate_replications starts, all `replications` runs complete (the
  // degradation ladder relies on the simulation rung always producing an
  // estimate). An interrupted budget only stops further adaptive extension
  // — it is reported through the result, not an exception. Because the
  // extension count then depends on wall-clock time, adaptive runs under a
  // finite deadline are not bit-identical across machines; each individual
  // replication (substream split_seed(seed, r)) still is.
  RunBudget budget;
  // Adaptive CI-width stopping: when > 0, after the initial batch keep
  // adding rounds of up to `replications` further runs until every class's
  // relative CI half-width (ci95 / |mean_response|) is <= target_rel_ci,
  // max_replications is reached, or the budget is interrupted. 0 disables
  // the rule (exactly `replications` runs — the historical behaviour).
  double target_rel_ci = 0.0;
  // Hard cap on total replications under the adaptive rule (ignored when
  // target_rel_ci == 0). Must be >= replications.
  int max_replications = 64;
};

struct ReplicatedResult {
  // Per-replication results. Replication r always uses RNG substream
  // split_seed(opts.seed, r), so element r — and therefore the aggregate —
  // is bit-identical for every thread count.
  std::vector<SimResult> replications;
  // Across-replication aggregates: mean of the per-replication means, with
  // a normal-approximation 95% CI over replications (the independent-
  // replications estimator, tighter-tailed than single-run batch means).
  ClassStats shorts;
  ClassStats longs;
};

class Engine;

// Scheduling policy: owns its queues; reacts to arrivals and completions by
// starting jobs on idle servers through the Engine.
class Policy {
 public:
  virtual ~Policy() = default;
  virtual void on_arrival(Engine& eng, const Job& job) = 0;
  virtual void on_server_free(Engine& eng, int server) = 0;
  // Called when the job on `server` exhausts its allotted service, before
  // the completion is recorded. Return true if the job is genuinely done;
  // return false to claim it instead (e.g. TAGS kills the job at its cutoff
  // and resubmits it to the overflow host) — no response time is recorded.
  virtual bool on_service_end(Engine& eng, int server, const Job& job) {
    (void)eng;
    (void)server;
    (void)job;
    return true;
  }
  // Jobs currently held in the policy's queues — the policy-side term of the
  // conservation ledger (SimResult::queued_final).
  [[nodiscard]] virtual std::size_t queued() const = 0;
};

class Engine {
 public:
  Engine(const SystemConfig& config, const SimOptions& opts);

  // Run to completion with the given policy.
  [[nodiscard]] SimResult run(Policy& policy);

  // --- services for Policy implementations --------------------------------
  [[nodiscard]] bool server_idle(int s) const { return !servers_[s].busy; }
  // Class of the job currently on server s (undefined when idle).
  [[nodiscard]] JobClass server_job_class(int s) const { return servers_[s].job.cls; }
  // Start `job` on `server`. By default the service requirement is the job's
  // full size; `work` overrides it (TAGS runs a job only up to its cutoff).
  void start(int server, const Job& job, double work = -1.0);
  [[nodiscard]] double now() const { return now_; }
  // Remaining processing time of the job on server s (0 when idle).
  [[nodiscard]] double server_remaining(int s) const {
    return servers_[s].busy ? servers_[s].done - now_ : 0.0;
  }
  [[nodiscard]] double server_speed(int s) const { return opts_.server_speeds[s]; }

 private:
  struct Server {
    bool busy = false;
    double done = 0.0;
    Job job;
  };

  void record_completion(const Job& job);

  SystemConfig config_;
  SimOptions opts_;
  dist::Rng rng_;
  double now_ = 0.0;
  std::array<Server, 2> servers_{};
  std::array<double, 2> next_arrival_{};
  std::array<double, 2> busy_time_{};
  double long_host_idle_time_ = 0.0;
  double last_event_time_ = 0.0;
  std::size_t completions_ = 0;
  std::size_t warmup_completions_ = 0;
  BatchMeans resp_short_;
  BatchMeans resp_long_;
};

// Simulate the given policy on the given system.
[[nodiscard]] SimResult simulate(PolicyKind kind, const SystemConfig& config,
                                 const SimOptions& opts = {});

// Factory used by simulate(); exposed for tests that drive Engine directly.
[[nodiscard]] std::unique_ptr<Policy> make_policy(PolicyKind kind, const SimOptions& opts);

// ci95 / |mean_response|, or 0 when the mean is zero (no meaningful
// relative width). Drives the adaptive CI-width stopping rule.
[[nodiscard]] double relative_ci(const ClassStats& stats);

// Run ropts.replications independent simulations, replication r seeded with
// the substream split_seed(opts.seed, r), in parallel on ropts.threads
// workers. Results (per replication and aggregated) are bit-identical
// regardless of thread count; see docs/performance.md for the determinism
// contract. With ropts.target_rel_ci > 0, further rounds of replications
// (substream indices continuing where the batch left off) are appended
// until the relative CI target, ropts.max_replications, or the budget is
// hit — see ReplicationOptions for the budget observation points. Throws
// csq::InvalidInputError on malformed options (core/status.h).
[[nodiscard]] ReplicatedResult simulate_replications(PolicyKind kind,
                                                     const SystemConfig& config,
                                                     const SimOptions& opts = {},
                                                     const ReplicationOptions& ropts = {});

// Across-replication aggregation used by simulate_replications: mean of
// per-replication means plus a 95% normal CI over replications. Exposed for
// the multi-host simulator and tests.
[[nodiscard]] ClassStats aggregate_replications(const std::vector<ClassStats>& reps);

}  // namespace csq::sim
