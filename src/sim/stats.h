// Streaming statistics for simulation output: Welford accumulators and
// batch-means confidence intervals.
//
// Throws csq::InvalidInputError (core/status.h) on malformed arguments.
#pragma once

#include <cstddef>
#include <vector>

namespace csq::sim {

// Numerically stable running mean/variance.
class Welford {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;  // sample variance (n-1)

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Batch-means estimator: splits an observation stream into `batches` equal
// contiguous batches and treats batch means as i.i.d. samples — the standard
// way to get a confidence interval out of one long correlated run.
class BatchMeans {
 public:
  explicit BatchMeans(int batches = 20);

  void add(double x) { values_.push_back(x); }
  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double mean() const;
  // Half-width of the ~95% confidence interval (0 when too few samples).
  [[nodiscard]] double ci95_halfwidth() const;

 private:
  int batches_;
  std::vector<double> values_;
};

// Approximate two-sided 97.5% Student-t quantile for df degrees of freedom.
[[nodiscard]] double student_t_975(int df);

}  // namespace csq::sim
