#include "sim/rng.h"

namespace csq::sim {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

dist::Rng make_rng(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t s = seed ^ (0xd1b54a32d192ed03ULL * (stream + 1));
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  std::seed_seq seq{static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(a >> 32),
                    static_cast<std::uint32_t>(b), static_cast<std::uint32_t>(b >> 32)};
  return dist::Rng(seq);
}

}  // namespace csq::sim
