#include "sim/rng.h"

namespace csq::sim {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

dist::Rng make_rng(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t s = seed ^ (0xd1b54a32d192ed03ULL * (stream + 1));
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  std::seed_seq seq{static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(a >> 32),
                    static_cast<std::uint32_t>(b), static_cast<std::uint32_t>(b >> 32)};
  return dist::Rng(seq);
}

std::uint64_t split_seed(std::uint64_t seed, std::uint64_t key) {
  // Two splitmix rounds over a keyed state: enough mixing that adjacent keys
  // (replication indices) share no low-bit structure.
  std::uint64_t s = seed ^ (0xbf58476d1ce4e5b9ULL * (key + 1));
  (void)splitmix64(s);
  return splitmix64(s);
}

}  // namespace csq::sim
