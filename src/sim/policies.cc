// The five task-assignment policies the paper discusses, as simulator
// schedulers. Server 1 plays the "long host" / donor role wherever the
// policy distinguishes hosts; under CS-CQ hosts are renamable, so the
// scheduler only maintains the invariant that at most one server serves
// longs at a time.
#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <stdexcept>

#include "sim/simulator.h"

#include <cstdint>

#include "core/status.h"
#include "obs/obs.h"
#include "sim/rng.h"

namespace csq::sim {

namespace {

class DedicatedPolicy final : public Policy {
 public:
  void on_arrival(Engine& eng, const Job& job) override {
    const int host = job.cls == JobClass::kShort ? 0 : 1;
    if (eng.server_idle(host))
      eng.start(host, job);
    else
      queue_[static_cast<std::size_t>(host)].push_back(job);
  }
  void on_server_free(Engine& eng, int server) override {
    auto& q = queue_[static_cast<std::size_t>(server)];
    if (!q.empty()) {
      eng.start(server, q.front());
      q.pop_front();
    }
  }
  [[nodiscard]] std::size_t queued() const override {
    return queue_[0].size() + queue_[1].size();
  }

 private:
  std::array<std::deque<Job>, 2> queue_;
};

class CsIdPolicy final : public Policy {
 public:
  void on_arrival(Engine& eng, const Job& job) override {
    if (job.cls == JobClass::kLong) {
      if (eng.server_idle(1))
        eng.start(1, job);
      else
        long_queue_.push_back(job);
      return;
    }
    // A short steals the long host only if it is idle at this instant.
    if (eng.server_idle(1))
      eng.start(1, job);
    else if (eng.server_idle(0))
      eng.start(0, job);
    else
      short_queue_.push_back(job);
  }
  void on_server_free(Engine& eng, int server) override {
    if (server == 0) {
      if (!short_queue_.empty()) {
        eng.start(0, short_queue_.front());
        short_queue_.pop_front();
      }
      return;
    }
    // The long host serves its own (long) queue; queued shorts never move to
    // it under immediate dispatch.
    if (!long_queue_.empty()) {
      eng.start(1, long_queue_.front());
      long_queue_.pop_front();
    }
  }
  [[nodiscard]] std::size_t queued() const override {
    return short_queue_.size() + long_queue_.size();
  }

 private:
  std::deque<Job> short_queue_;
  std::deque<Job> long_queue_;
};

class CsCqPolicy final : public Policy {
 public:
  void on_arrival(Engine& eng, const Job& job) override {
    (job.cls == JobClass::kShort ? short_queue_ : long_queue_).push_back(job);
    schedule(eng);
  }
  void on_server_free(Engine& eng, int server) override {
    (void)server;
    schedule(eng);
  }
  [[nodiscard]] std::size_t queued() const override {
    return short_queue_.size() + long_queue_.size();
  }

 private:
  void schedule(Engine& eng) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (int s = 0; s < 2; ++s) {
        if (!eng.server_idle(s)) continue;
        const int o = 1 - s;
        const bool other_serving_long =
            !eng.server_idle(o) && eng.server_job_class(o) == JobClass::kLong;
        if (!long_queue_.empty() && !other_serving_long) {
          // This server becomes (or stays) the long host.
          eng.start(s, long_queue_.front());
          long_queue_.pop_front();
          progress = true;
        } else if (!short_queue_.empty()) {
          eng.start(s, short_queue_.front());
          short_queue_.pop_front();
          progress = true;
        }
      }
    }
  }

  std::deque<Job> short_queue_;
  std::deque<Job> long_queue_;
};

// CS-CQ with a FIXED long host (server 1): server 0 never serves longs, so
// a long arriving while server 1 runs a short must wait even if server 0 is
// idle. Quantifies what renaming buys (the paper credits renaming for
// CS-CQ's long-job penalty being lower than CS-ID's).
class CsCqNoRenamePolicy final : public Policy {
 public:
  void on_arrival(Engine& eng, const Job& job) override {
    (job.cls == JobClass::kShort ? short_queue_ : long_queue_).push_back(job);
    schedule(eng);
  }
  void on_server_free(Engine& eng, int server) override {
    (void)server;
    schedule(eng);
  }
  [[nodiscard]] std::size_t queued() const override {
    return short_queue_.size() + long_queue_.size();
  }

 private:
  void schedule(Engine& eng) {
    if (eng.server_idle(1)) {
      if (!long_queue_.empty()) {
        eng.start(1, long_queue_.front());
        long_queue_.pop_front();
      } else if (!short_queue_.empty()) {
        eng.start(1, short_queue_.front());
        short_queue_.pop_front();
      }
    }
    if (eng.server_idle(0) && !short_queue_.empty()) {
      eng.start(0, short_queue_.front());
      short_queue_.pop_front();
    }
  }

  std::deque<Job> short_queue_;
  std::deque<Job> long_queue_;
};

// Least-Work-Remaining immediate dispatch: each arrival goes to the host
// with the smaller backlog (in-service remainder plus queued work) and is
// served FCFS there. Provably equivalent to central-queue M/G/k FCFS
// (Harchol-Balter, JACM 2002) — the test-suite checks that equivalence.
class LwrPolicy final : public Policy {
 public:
  void on_arrival(Engine& eng, const Job& job) override {
    const auto backlog = [&](int s) {
      return eng.server_remaining(s) +
             queued_work_[static_cast<std::size_t>(s)] / eng.server_speed(s);
    };
    const int target = backlog(0) <= backlog(1) ? 0 : 1;
    if (eng.server_idle(target)) {
      eng.start(target, job);
    } else {
      queue_[static_cast<std::size_t>(target)].push_back(job);
      queued_work_[static_cast<std::size_t>(target)] += job.size;
    }
  }
  void on_server_free(Engine& eng, int server) override {
    auto& q = queue_[static_cast<std::size_t>(server)];
    if (!q.empty()) {
      queued_work_[static_cast<std::size_t>(server)] -= q.front().size;
      eng.start(server, q.front());
      q.pop_front();
    }
  }
  [[nodiscard]] std::size_t queued() const override {
    return queue_[0].size() + queue_[1].size();
  }

 private:
  std::array<std::deque<Job>, 2> queue_;
  std::array<double, 2> queued_work_{};
};

// TAGS (Task Assignment by Guessing Size): all jobs start at host 0, FCFS,
// but are only granted `cutoff` units of work there; a job that exceeds the
// cutoff is killed and restarted FROM SCRATCH at host 1, which runs to
// completion. No size or class knowledge is used — the cutoff alone
// segregates shorts from longs (at the price of the wasted cutoff work).
class TagsPolicy final : public Policy {
 public:
  explicit TagsPolicy(double cutoff) : cutoff_(cutoff) {
    if (cutoff <= 0.0) throw InvalidInputError("TAGS: cutoff must be positive");
  }

  void on_arrival(Engine& eng, const Job& job) override {
    if (eng.server_idle(0))
      eng.start(0, job, std::min(job.size, cutoff_));
    else
      first_queue_.push_back(job);
  }
  bool on_service_end(Engine& eng, int server, const Job& job) override {
    if (server == 0 && job.size > cutoff_) {
      // Killed at the cutoff: restart from scratch at the overflow host.
      if (eng.server_idle(1))
        eng.start(1, job);
      else
        overflow_queue_.push_back(job);
      return false;
    }
    return true;
  }
  void on_server_free(Engine& eng, int server) override {
    if (server == 0) {
      if (!first_queue_.empty()) {
        eng.start(0, first_queue_.front(), std::min(first_queue_.front().size, cutoff_));
        first_queue_.pop_front();
      }
    } else if (!overflow_queue_.empty()) {
      eng.start(1, overflow_queue_.front());
      overflow_queue_.pop_front();
    }
  }
  [[nodiscard]] std::size_t queued() const override {
    return first_queue_.size() + overflow_queue_.size();
  }

 private:
  double cutoff_;
  std::deque<Job> first_queue_;
  std::deque<Job> overflow_queue_;
};

// Round-Robin immediate dispatch, per-host FCFS — the blind baseline the
// paper calls "by far the most common task assignment policy".
class RoundRobinPolicy final : public Policy {
 public:
  void on_arrival(Engine& eng, const Job& job) override {
    const int host = next_;
    next_ = 1 - next_;
    if (eng.server_idle(host))
      eng.start(host, job);
    else
      queue_[static_cast<std::size_t>(host)].push_back(job);
  }
  void on_server_free(Engine& eng, int server) override {
    auto& q = queue_[static_cast<std::size_t>(server)];
    if (!q.empty()) {
      eng.start(server, q.front());
      q.pop_front();
    }
  }
  [[nodiscard]] std::size_t queued() const override {
    return queue_[0].size() + queue_[1].size();
  }

 private:
  int next_ = 0;
  std::array<std::deque<Job>, 2> queue_;
};

class Mg2FcfsPolicy final : public Policy {
 public:
  void on_arrival(Engine& eng, const Job& job) override {
    for (int s = 0; s < 2; ++s) {
      if (eng.server_idle(s)) {
        eng.start(s, job);
        return;
      }
    }
    queue_.push_back(job);
  }
  void on_server_free(Engine& eng, int server) override {
    if (!queue_.empty()) {
      eng.start(server, queue_.front());
      queue_.pop_front();
    }
  }
  [[nodiscard]] std::size_t queued() const override { return queue_.size(); }

 private:
  std::deque<Job> queue_;
};

// Non-preemptive shortest-job-first at both servers (Section 6's M/G/2/SJF).
class Mg2SjfPolicy final : public Policy {
 public:
  void on_arrival(Engine& eng, const Job& job) override {
    for (int s = 0; s < 2; ++s) {
      if (eng.server_idle(s)) {
        eng.start(s, job);
        return;
      }
    }
    queue_.emplace(job.size, job);
  }
  void on_server_free(Engine& eng, int server) override {
    if (!queue_.empty()) {
      eng.start(server, queue_.begin()->second);
      queue_.erase(queue_.begin());
    }
  }
  [[nodiscard]] std::size_t queued() const override { return queue_.size(); }

 private:
  std::multimap<double, Job> queue_;
};

// --- the class-blind policy zoo (docs/policies.md) -------------------------
//
// Every policy below treats the two hosts symmetrically and ignores job
// classes: per-host FCFS queues fed by uniform random dispatch, refined by
// stealing (pull), sharing (push) or idle-queue signalling. Policy decisions
// draw from a private RNG on stream kPolicyStream, disjoint from the
// engine's arrival stream (0) and msim's (7): the sampled arrival sequence
// is a function of (seed, config) alone, never of the policy — the
// substream-isolation regression test pins SimResult::arrival_hash on that.

constexpr std::uint64_t kPolicyStream = 11;

// Jobs moved victim -> thief by any stealing policy (one call site so the
// metric catalogue stays statically enumerable).
void note_steals(std::size_t n) { CSQ_OBS_COUNT_N("sim.policy.steals", n); }

class TwoQueuePolicy : public Policy {
 public:
  explicit TwoQueuePolicy(std::uint64_t seed) : rng_(make_rng(seed, kPolicyStream)) {}
  [[nodiscard]] std::size_t queued() const override {
    return queue_[0].size() + queue_[1].size();
  }

 protected:
  // Uniform coin flip over the two hosts.
  int random_host() {
    CSQ_OBS_COUNT("sim.policy.dispatches");
    return static_cast<int>(rng_() & 1U);
  }
  void enqueue_or_start(Engine& eng, int host, const Job& job) {
    if (eng.server_idle(host))
      eng.start(host, job);
    else
      queue_[static_cast<std::size_t>(host)].push_back(job);
  }
  // Serve the host's own queue; true if a job was started.
  bool serve_own(Engine& eng, int server) {
    auto& q = queue_[static_cast<std::size_t>(server)];
    if (q.empty()) return false;
    eng.start(server, q.front());
    q.pop_front();
    return true;
  }

  dist::Rng rng_;
  std::array<std::deque<Job>, 2> queue_;
};

// Uniform random dispatch, per-host FCFS, no migration: the blind baseline
// the JIQ and stealing refinements are measured against.
class RandomPolicy final : public TwoQueuePolicy {
 public:
  using TwoQueuePolicy::TwoQueuePolicy;
  void on_arrival(Engine& eng, const Job& job) override {
    enqueue_or_start(eng, random_host(), job);
  }
  void on_server_free(Engine& eng, int server) override { serve_own(eng, server); }
};

// Join-Idle-Queue (Mitzenmacher, arXiv:1606.01833): servers that go idle
// join a FIFO idle queue; an arrival takes the head of that queue when it is
// non-empty and only falls back to random dispatch when every server is
// busy. Jobs never wait while a server idles, which is exactly why JIQ
// dominates blind random dispatch (the property suite pins that).
class JiqPolicy final : public TwoQueuePolicy {
 public:
  explicit JiqPolicy(std::uint64_t seed) : TwoQueuePolicy(seed), idle_({0, 1}) {}
  void on_arrival(Engine& eng, const Job& job) override {
    if (!idle_.empty()) {
      const int s = idle_.front();
      idle_.pop_front();
      CSQ_OBS_COUNT("sim.policy.idle_hits");
      eng.start(s, job);
      return;
    }
    // Both busy: the idle queue is empty, so this can only queue.
    queue_[static_cast<std::size_t>(random_host())].push_back(job);
  }
  void on_server_free(Engine& eng, int server) override {
    if (!serve_own(eng, server)) idle_.push_back(server);
  }

 private:
  std::deque<int> idle_;  // invariant: exactly the idle servers, FIFO
};

// Randomized work stealing, steal-one variant: random dispatch, and a host
// that goes idle with an empty queue pulls the oldest queued job from the
// other host.
class StealOnePolicy final : public TwoQueuePolicy {
 public:
  using TwoQueuePolicy::TwoQueuePolicy;
  void on_arrival(Engine& eng, const Job& job) override {
    enqueue_or_start(eng, random_host(), job);
  }
  void on_server_free(Engine& eng, int server) override {
    if (serve_own(eng, server)) return;
    auto& victim = queue_[static_cast<std::size_t>(1 - server)];
    if (victim.empty()) return;
    note_steals(1);
    eng.start(server, victim.front());
    victim.pop_front();
  }
};

// Steal-half: as steal-one, but the thief takes ceil(q/2) jobs from the
// victim's queue front, serving the first and queueing the rest locally —
// one raid rebalances the backlog instead of a single job.
class StealHalfPolicy final : public TwoQueuePolicy {
 public:
  using TwoQueuePolicy::TwoQueuePolicy;
  void on_arrival(Engine& eng, const Job& job) override {
    enqueue_or_start(eng, random_host(), job);
  }
  void on_server_free(Engine& eng, int server) override {
    if (serve_own(eng, server)) return;
    auto& mine = queue_[static_cast<std::size_t>(server)];
    auto& victim = queue_[static_cast<std::size_t>(1 - server)];
    if (victim.empty()) return;
    const std::size_t take = (victim.size() + 1) / 2;
    note_steals(take);
    eng.start(server, victim.front());
    victim.pop_front();
    for (std::size_t i = 1; i < take; ++i) {
      mine.push_back(victim.front());
      victim.pop_front();
    }
  }
};

// Threshold/batch stealing: raid only a victim with >= steal_threshold
// queued jobs, and take at most steal_batch of them — stealing work is only
// moved when the imbalance is worth the migration.
class ThresholdStealPolicy final : public TwoQueuePolicy {
 public:
  ThresholdStealPolicy(std::uint64_t seed, const PolicyConfig& cfg)
      : TwoQueuePolicy(seed), cfg_(cfg) {
    if (cfg.steal_threshold < 1)
      throw InvalidInputError("Threshold-Steal: steal_threshold must be >= 1");
    if (cfg.steal_batch < 1)
      throw InvalidInputError("Threshold-Steal: steal_batch must be >= 1");
  }
  void on_arrival(Engine& eng, const Job& job) override {
    enqueue_or_start(eng, random_host(), job);
  }
  void on_server_free(Engine& eng, int server) override {
    if (serve_own(eng, server)) return;
    auto& mine = queue_[static_cast<std::size_t>(server)];
    auto& victim = queue_[static_cast<std::size_t>(1 - server)];
    if (victim.size() < static_cast<std::size_t>(cfg_.steal_threshold)) return;
    const std::size_t take =
        std::min(victim.size(), static_cast<std::size_t>(cfg_.steal_batch));
    note_steals(take);
    eng.start(server, victim.front());
    victim.pop_front();
    for (std::size_t i = 1; i < take; ++i) {
      mine.push_back(victim.front());
      victim.pop_front();
    }
  }

 private:
  PolicyConfig cfg_;
};

// Central work sharing (push-on-arrival, Van Houdt arXiv:1810.13186's
// "sharing" side): random dispatch, but an arrival that finds its host busy
// with share_threshold or more queued jobs is pushed to the other host
// instead — the loaded host initiates the transfer at arrival instants,
// where stealing lets the idle host pull at departure instants.
class WorkSharingPolicy final : public TwoQueuePolicy {
 public:
  WorkSharingPolicy(std::uint64_t seed, const PolicyConfig& cfg)
      : TwoQueuePolicy(seed), cfg_(cfg) {
    if (cfg.share_threshold < 0)
      throw InvalidInputError("Work-Sharing: share_threshold must be >= 0");
  }
  void on_arrival(Engine& eng, const Job& job) override {
    const int host = random_host();
    if (!eng.server_idle(host) &&
        queue_[static_cast<std::size_t>(host)].size() >=
            static_cast<std::size_t>(cfg_.share_threshold)) {
      CSQ_OBS_COUNT("sim.policy.shares");
      enqueue_or_start(eng, 1 - host, job);
      return;
    }
    enqueue_or_start(eng, host, job);
  }
  void on_server_free(Engine& eng, int server) override { serve_own(eng, server); }

 private:
  PolicyConfig cfg_;
};

}  // namespace

std::unique_ptr<Policy> make_policy(PolicyKind kind, const SimOptions& opts) {
  switch (kind) {
    case PolicyKind::kDedicated: return std::make_unique<DedicatedPolicy>();
    case PolicyKind::kCsId: return std::make_unique<CsIdPolicy>();
    case PolicyKind::kCsCq: return std::make_unique<CsCqPolicy>();
    case PolicyKind::kCsCqNoRename: return std::make_unique<CsCqNoRenamePolicy>();
    case PolicyKind::kMg2Fcfs: return std::make_unique<Mg2FcfsPolicy>();
    case PolicyKind::kMg2Sjf: return std::make_unique<Mg2SjfPolicy>();
    case PolicyKind::kLwr: return std::make_unique<LwrPolicy>();
    case PolicyKind::kTags: return std::make_unique<TagsPolicy>(opts.tags_cutoff);
    case PolicyKind::kRoundRobin: return std::make_unique<RoundRobinPolicy>();
    case PolicyKind::kRandom: return std::make_unique<RandomPolicy>(opts.seed);
    case PolicyKind::kJiq: return std::make_unique<JiqPolicy>(opts.seed);
    case PolicyKind::kStealOne: return std::make_unique<StealOnePolicy>(opts.seed);
    case PolicyKind::kStealHalf: return std::make_unique<StealHalfPolicy>(opts.seed);
    case PolicyKind::kThresholdSteal:
      return std::make_unique<ThresholdStealPolicy>(opts.seed, opts.policy);
    case PolicyKind::kWorkSharing:
      return std::make_unique<WorkSharingPolicy>(opts.seed, opts.policy);
  }
  throw InvalidInputError("make_policy: unknown kind");
}

}  // namespace csq::sim
