// The five task-assignment policies the paper discusses, as simulator
// schedulers. Server 1 plays the "long host" / donor role wherever the
// policy distinguishes hosts; under CS-CQ hosts are renamable, so the
// scheduler only maintains the invariant that at most one server serves
// longs at a time.
#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <stdexcept>

#include "sim/simulator.h"

#include "core/status.h"

namespace csq::sim {

namespace {

class DedicatedPolicy final : public Policy {
 public:
  void on_arrival(Engine& eng, const Job& job) override {
    const int host = job.cls == JobClass::kShort ? 0 : 1;
    if (eng.server_idle(host))
      eng.start(host, job);
    else
      queue_[static_cast<std::size_t>(host)].push_back(job);
  }
  void on_server_free(Engine& eng, int server) override {
    auto& q = queue_[static_cast<std::size_t>(server)];
    if (!q.empty()) {
      eng.start(server, q.front());
      q.pop_front();
    }
  }

 private:
  std::array<std::deque<Job>, 2> queue_;
};

class CsIdPolicy final : public Policy {
 public:
  void on_arrival(Engine& eng, const Job& job) override {
    if (job.cls == JobClass::kLong) {
      if (eng.server_idle(1))
        eng.start(1, job);
      else
        long_queue_.push_back(job);
      return;
    }
    // A short steals the long host only if it is idle at this instant.
    if (eng.server_idle(1))
      eng.start(1, job);
    else if (eng.server_idle(0))
      eng.start(0, job);
    else
      short_queue_.push_back(job);
  }
  void on_server_free(Engine& eng, int server) override {
    if (server == 0) {
      if (!short_queue_.empty()) {
        eng.start(0, short_queue_.front());
        short_queue_.pop_front();
      }
      return;
    }
    // The long host serves its own (long) queue; queued shorts never move to
    // it under immediate dispatch.
    if (!long_queue_.empty()) {
      eng.start(1, long_queue_.front());
      long_queue_.pop_front();
    }
  }

 private:
  std::deque<Job> short_queue_;
  std::deque<Job> long_queue_;
};

class CsCqPolicy final : public Policy {
 public:
  void on_arrival(Engine& eng, const Job& job) override {
    (job.cls == JobClass::kShort ? short_queue_ : long_queue_).push_back(job);
    schedule(eng);
  }
  void on_server_free(Engine& eng, int server) override {
    (void)server;
    schedule(eng);
  }

 private:
  void schedule(Engine& eng) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (int s = 0; s < 2; ++s) {
        if (!eng.server_idle(s)) continue;
        const int o = 1 - s;
        const bool other_serving_long =
            !eng.server_idle(o) && eng.server_job_class(o) == JobClass::kLong;
        if (!long_queue_.empty() && !other_serving_long) {
          // This server becomes (or stays) the long host.
          eng.start(s, long_queue_.front());
          long_queue_.pop_front();
          progress = true;
        } else if (!short_queue_.empty()) {
          eng.start(s, short_queue_.front());
          short_queue_.pop_front();
          progress = true;
        }
      }
    }
  }

  std::deque<Job> short_queue_;
  std::deque<Job> long_queue_;
};

// CS-CQ with a FIXED long host (server 1): server 0 never serves longs, so
// a long arriving while server 1 runs a short must wait even if server 0 is
// idle. Quantifies what renaming buys (the paper credits renaming for
// CS-CQ's long-job penalty being lower than CS-ID's).
class CsCqNoRenamePolicy final : public Policy {
 public:
  void on_arrival(Engine& eng, const Job& job) override {
    (job.cls == JobClass::kShort ? short_queue_ : long_queue_).push_back(job);
    schedule(eng);
  }
  void on_server_free(Engine& eng, int server) override {
    (void)server;
    schedule(eng);
  }

 private:
  void schedule(Engine& eng) {
    if (eng.server_idle(1)) {
      if (!long_queue_.empty()) {
        eng.start(1, long_queue_.front());
        long_queue_.pop_front();
      } else if (!short_queue_.empty()) {
        eng.start(1, short_queue_.front());
        short_queue_.pop_front();
      }
    }
    if (eng.server_idle(0) && !short_queue_.empty()) {
      eng.start(0, short_queue_.front());
      short_queue_.pop_front();
    }
  }

  std::deque<Job> short_queue_;
  std::deque<Job> long_queue_;
};

// Least-Work-Remaining immediate dispatch: each arrival goes to the host
// with the smaller backlog (in-service remainder plus queued work) and is
// served FCFS there. Provably equivalent to central-queue M/G/k FCFS
// (Harchol-Balter, JACM 2002) — the test-suite checks that equivalence.
class LwrPolicy final : public Policy {
 public:
  void on_arrival(Engine& eng, const Job& job) override {
    const auto backlog = [&](int s) {
      return eng.server_remaining(s) +
             queued_work_[static_cast<std::size_t>(s)] / eng.server_speed(s);
    };
    const int target = backlog(0) <= backlog(1) ? 0 : 1;
    if (eng.server_idle(target)) {
      eng.start(target, job);
    } else {
      queue_[static_cast<std::size_t>(target)].push_back(job);
      queued_work_[static_cast<std::size_t>(target)] += job.size;
    }
  }
  void on_server_free(Engine& eng, int server) override {
    auto& q = queue_[static_cast<std::size_t>(server)];
    if (!q.empty()) {
      queued_work_[static_cast<std::size_t>(server)] -= q.front().size;
      eng.start(server, q.front());
      q.pop_front();
    }
  }

 private:
  std::array<std::deque<Job>, 2> queue_;
  std::array<double, 2> queued_work_{};
};

// TAGS (Task Assignment by Guessing Size): all jobs start at host 0, FCFS,
// but are only granted `cutoff` units of work there; a job that exceeds the
// cutoff is killed and restarted FROM SCRATCH at host 1, which runs to
// completion. No size or class knowledge is used — the cutoff alone
// segregates shorts from longs (at the price of the wasted cutoff work).
class TagsPolicy final : public Policy {
 public:
  explicit TagsPolicy(double cutoff) : cutoff_(cutoff) {
    if (cutoff <= 0.0) throw InvalidInputError("TAGS: cutoff must be positive");
  }

  void on_arrival(Engine& eng, const Job& job) override {
    if (eng.server_idle(0))
      eng.start(0, job, std::min(job.size, cutoff_));
    else
      first_queue_.push_back(job);
  }
  bool on_service_end(Engine& eng, int server, const Job& job) override {
    if (server == 0 && job.size > cutoff_) {
      // Killed at the cutoff: restart from scratch at the overflow host.
      if (eng.server_idle(1))
        eng.start(1, job);
      else
        overflow_queue_.push_back(job);
      return false;
    }
    return true;
  }
  void on_server_free(Engine& eng, int server) override {
    if (server == 0) {
      if (!first_queue_.empty()) {
        eng.start(0, first_queue_.front(), std::min(first_queue_.front().size, cutoff_));
        first_queue_.pop_front();
      }
    } else if (!overflow_queue_.empty()) {
      eng.start(1, overflow_queue_.front());
      overflow_queue_.pop_front();
    }
  }

 private:
  double cutoff_;
  std::deque<Job> first_queue_;
  std::deque<Job> overflow_queue_;
};

// Round-Robin immediate dispatch, per-host FCFS — the blind baseline the
// paper calls "by far the most common task assignment policy".
class RoundRobinPolicy final : public Policy {
 public:
  void on_arrival(Engine& eng, const Job& job) override {
    const int host = next_;
    next_ = 1 - next_;
    if (eng.server_idle(host))
      eng.start(host, job);
    else
      queue_[static_cast<std::size_t>(host)].push_back(job);
  }
  void on_server_free(Engine& eng, int server) override {
    auto& q = queue_[static_cast<std::size_t>(server)];
    if (!q.empty()) {
      eng.start(server, q.front());
      q.pop_front();
    }
  }

 private:
  int next_ = 0;
  std::array<std::deque<Job>, 2> queue_;
};

class Mg2FcfsPolicy final : public Policy {
 public:
  void on_arrival(Engine& eng, const Job& job) override {
    for (int s = 0; s < 2; ++s) {
      if (eng.server_idle(s)) {
        eng.start(s, job);
        return;
      }
    }
    queue_.push_back(job);
  }
  void on_server_free(Engine& eng, int server) override {
    if (!queue_.empty()) {
      eng.start(server, queue_.front());
      queue_.pop_front();
    }
  }

 private:
  std::deque<Job> queue_;
};

// Non-preemptive shortest-job-first at both servers (Section 6's M/G/2/SJF).
class Mg2SjfPolicy final : public Policy {
 public:
  void on_arrival(Engine& eng, const Job& job) override {
    for (int s = 0; s < 2; ++s) {
      if (eng.server_idle(s)) {
        eng.start(s, job);
        return;
      }
    }
    queue_.emplace(job.size, job);
  }
  void on_server_free(Engine& eng, int server) override {
    if (!queue_.empty()) {
      eng.start(server, queue_.begin()->second);
      queue_.erase(queue_.begin());
    }
  }

 private:
  std::multimap<double, Job> queue_;
};

}  // namespace

std::unique_ptr<Policy> make_policy(PolicyKind kind, const SimOptions& opts) {
  switch (kind) {
    case PolicyKind::kDedicated: return std::make_unique<DedicatedPolicy>();
    case PolicyKind::kCsId: return std::make_unique<CsIdPolicy>();
    case PolicyKind::kCsCq: return std::make_unique<CsCqPolicy>();
    case PolicyKind::kCsCqNoRename: return std::make_unique<CsCqNoRenamePolicy>();
    case PolicyKind::kMg2Fcfs: return std::make_unique<Mg2FcfsPolicy>();
    case PolicyKind::kMg2Sjf: return std::make_unique<Mg2SjfPolicy>();
    case PolicyKind::kLwr: return std::make_unique<LwrPolicy>();
    case PolicyKind::kTags: return std::make_unique<TagsPolicy>(opts.tags_cutoff);
    case PolicyKind::kRoundRobin: return std::make_unique<RoundRobinPolicy>();
  }
  throw InvalidInputError("make_policy: unknown kind");
}

}  // namespace csq::sim
