#include "sim/stats.h"

#include <cmath>
#include <stdexcept>

#include "core/status.h"

namespace csq::sim {

void Welford::add(double x) {
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double Welford::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

BatchMeans::BatchMeans(int batches) : batches_(batches) {
  if (batches < 2) throw InvalidInputError("BatchMeans: need >= 2 batches");
}

double BatchMeans::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double BatchMeans::ci95_halfwidth() const {
  const std::size_t b = static_cast<std::size_t>(batches_);
  if (values_.size() < 2 * b) return 0.0;
  const std::size_t per = values_.size() / b;
  Welford batch_stats;
  for (std::size_t i = 0; i < b; ++i) {
    double s = 0.0;
    for (std::size_t j = i * per; j < (i + 1) * per; ++j) s += values_[j];
    batch_stats.add(s / static_cast<double>(per));
  }
  const double se = std::sqrt(batch_stats.variance() / static_cast<double>(b));
  return student_t_975(batches_ - 1) * se;
}

double student_t_975(int df) {
  if (df < 1) return 12.7;
  static constexpr double kTable[] = {12.71, 4.30, 3.18, 2.78, 2.57, 2.45, 2.36, 2.31,
                                      2.26,  2.23, 2.20, 2.18, 2.16, 2.14, 2.13, 2.12,
                                      2.11,  2.10, 2.09, 2.09};
  if (df <= 20) return kTable[df - 1];
  if (df <= 30) return 2.04;
  if (df <= 60) return 2.00;
  return 1.96;
}

}  // namespace csq::sim
