#include "sim/simulator.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <stdexcept>

#include <algorithm>

#include "parallel/task_pool.h"
#include "sim/rng.h"

#include "core/faultpoint.h"
#include "core/status.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace csq::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// FNV-1a over the bits of one word; chained per arrival to fingerprint the
// arrival sequence independently of any policy decision.
std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t word) {
  for (int b = 0; b < 8; ++b) {
    h ^= (word >> (8 * b)) & 0xffU;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t double_bits(double x) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(x));
  std::memcpy(&u, &x, sizeof(u));
  return u;
}
}

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kDedicated: return "Dedicated";
    case PolicyKind::kCsId: return "CS-ID";
    case PolicyKind::kCsCq: return "CS-CQ";
    case PolicyKind::kCsCqNoRename: return "CS-CQ-norename";
    case PolicyKind::kMg2Fcfs: return "M/G/2-FCFS";
    case PolicyKind::kMg2Sjf: return "M/G/2-SJF";
    case PolicyKind::kLwr: return "LWR";
    case PolicyKind::kTags: return "TAGS";
    case PolicyKind::kRoundRobin: return "Round-Robin";
    case PolicyKind::kRandom: return "Random";
    case PolicyKind::kJiq: return "JIQ";
    case PolicyKind::kStealOne: return "Steal-One";
    case PolicyKind::kStealHalf: return "Steal-Half";
    case PolicyKind::kThresholdSteal: return "Threshold-Steal";
    case PolicyKind::kWorkSharing: return "Work-Sharing";
  }
  return "?";
}

const std::vector<PolicyInfo>& policy_registry() {
  // One row per PolicyKind enumerator, in declaration order; display names
  // must match policy_name() (the registry round-trip test pins both).
  static const std::vector<PolicyInfo> kRegistry = {
      {PolicyKind::kDedicated, "dedicated", "Dedicated", true},
      {PolicyKind::kCsId, "csid", "CS-ID", true},
      {PolicyKind::kCsCq, "cscq", "CS-CQ", true},
      {PolicyKind::kCsCqNoRename, "cscq-norename", "CS-CQ-norename", false},
      {PolicyKind::kMg2Fcfs, "mg2-fcfs", "M/G/2-FCFS", false},
      {PolicyKind::kMg2Sjf, "mg2-sjf", "M/G/2-SJF", false},
      {PolicyKind::kLwr, "lwr", "LWR", false},
      {PolicyKind::kTags, "tags", "TAGS", false},
      {PolicyKind::kRoundRobin, "rr", "Round-Robin", false},
      {PolicyKind::kRandom, "random", "Random", false},
      {PolicyKind::kJiq, "jiq", "JIQ", false},
      {PolicyKind::kStealOne, "steal-one", "Steal-One", false},
      {PolicyKind::kStealHalf, "steal-half", "Steal-Half", false},
      {PolicyKind::kThresholdSteal, "threshold-steal", "Threshold-Steal", false},
      {PolicyKind::kWorkSharing, "work-sharing", "Work-Sharing", false},
  };
  return kRegistry;
}

PolicyKind policy_kind_from_token(const std::string& token) {
  for (const PolicyInfo& info : policy_registry())
    if (token == info.token) return info.kind;
  std::string valid;
  for (const PolicyInfo& info : policy_registry()) {
    if (!valid.empty()) valid += "|";
    valid += info.token;
  }
  throw InvalidInputError("unknown policy \"" + token + "\" (valid: " + valid + ")");
}

const char* policy_token(PolicyKind kind) {
  for (const PolicyInfo& info : policy_registry())
    if (info.kind == kind) return info.token;
  throw InvalidInputError("policy_token: unregistered PolicyKind");
}

Engine::Engine(const SystemConfig& config, const SimOptions& opts)
    : config_(config),
      opts_(opts),
      rng_(make_rng(opts.seed)),
      resp_short_(opts.batches),
      resp_long_(opts.batches) {
  config_.validate();
  if (opts_.total_completions < 100)
    throw InvalidInputError("SimOptions: total_completions too small");
  if (opts_.server_speeds[0] <= 0.0 || opts_.server_speeds[1] <= 0.0)
    throw InvalidInputError("SimOptions: server speeds must be positive");
  warmup_completions_ =
      static_cast<std::size_t>(opts_.warmup_fraction * static_cast<double>(opts_.total_completions));
}

void Engine::start(int server, const Job& job, double work) {
  Server& s = servers_[static_cast<std::size_t>(server)];
  if (s.busy) throw InternalError("Engine::start: server already busy");
  s.busy = true;
  s.job = job;
  const double amount = work < 0.0 ? job.size : work;
  s.done = now_ + amount / opts_.server_speeds[static_cast<std::size_t>(server)];
}

void Engine::record_completion(const Job& job) {
  ++completions_;
  if (completions_ <= warmup_completions_) return;
  const double resp = now_ - job.arrival;
  (job.cls == JobClass::kShort ? resp_short_ : resp_long_).add(resp);
}

SimResult Engine::run(Policy& policy) {
  CSQ_OBS_SPAN("sim.engine.run");
  std::uint64_t events = 0;
  std::size_t arrivals = 0;
  std::uint64_t arrival_hash = 14695981039346656037ULL;  // FNV offset basis
  dist::MapProcess::State map_state;
  if (config_.short_arrivals) map_state = config_.short_arrivals->stationary_state(rng_);
  const auto draw_interarrival = [this, &map_state](JobClass cls) {
    if (cls == JobClass::kShort && config_.short_arrivals)
      return config_.short_arrivals->next_interarrival(map_state, rng_);
    const double rate = cls == JobClass::kShort ? config_.lambda_short : config_.lambda_long;
    if (rate <= 0.0) return kInf;
    return std::exponential_distribution<double>(rate)(rng_);
  };
  const auto draw_size = [this](JobClass cls) {
    const dist::Distribution& d =
        cls == JobClass::kShort ? *config_.short_size : *config_.long_size;
    return d.sample(rng_);
  };

  next_arrival_[0] = draw_interarrival(JobClass::kShort);
  next_arrival_[1] = draw_interarrival(JobClass::kLong);

  while (completions_ < opts_.total_completions) {
    ++events;
    // Next event: one of two arrivals or two completions.
    double t = next_arrival_[0];
    int ev = 0;  // 0,1: arrival short/long; 2,3: completion on server 0/1
    if (next_arrival_[1] < t) {
      t = next_arrival_[1];
      ev = 1;
    }
    for (int s = 0; s < 2; ++s) {
      if (servers_[static_cast<std::size_t>(s)].busy &&
          servers_[static_cast<std::size_t>(s)].done < t) {
        t = servers_[static_cast<std::size_t>(s)].done;
        ev = 2 + s;
      }
    }
    if (t == kInf) throw InternalError("Engine::run: no events (both arrival rates zero?)");

    // Accumulate busy/idle time over (last_event_time_, t].
    const double dt = t - last_event_time_;
    for (int s = 0; s < 2; ++s)
      if (servers_[static_cast<std::size_t>(s)].busy) busy_time_[static_cast<std::size_t>(s)] += dt;
    if (!servers_[1].busy) long_host_idle_time_ += dt;
    last_event_time_ = t;
    now_ = t;

    if (ev <= 1) {
      const JobClass cls = static_cast<JobClass>(ev);
      Job job{now_, draw_size(cls), cls};
      next_arrival_[static_cast<std::size_t>(ev)] = now_ + draw_interarrival(cls);
      ++arrivals;
      arrival_hash = fnv1a_mix(arrival_hash, double_bits(job.arrival));
      arrival_hash = fnv1a_mix(arrival_hash, double_bits(job.size));
      arrival_hash = fnv1a_mix(arrival_hash, static_cast<std::uint64_t>(job.cls));
      policy.on_arrival(*this, job);
    } else {
      const int s = ev - 2;
      Server& server = servers_[static_cast<std::size_t>(s)];
      const Job done = server.job;
      server.busy = false;
      server.done = 0.0;
      if (policy.on_service_end(*this, s, done)) record_completion(done);
      policy.on_server_free(*this, s);
    }
  }

  CSQ_OBS_COUNT_N("sim.engine.events", events);
  CSQ_OBS_COUNT_N("sim.engine.arrivals", arrivals);

  SimResult res;
  res.shorts = {resp_short_.count(), resp_short_.mean(), resp_short_.ci95_halfwidth()};
  res.longs = {resp_long_.count(), resp_long_.mean(), resp_long_.ci95_halfwidth()};
  res.sim_time = now_;
  res.utilization = {busy_time_[0] / now_, busy_time_[1] / now_};
  res.p_long_host_idle = long_host_idle_time_ / now_;
  res.arrivals = arrivals;
  res.completions_total = completions_;
  res.queued_final = policy.queued();
  res.in_service_final = static_cast<std::size_t>(servers_[0].busy ? 1 : 0) +
                         static_cast<std::size_t>(servers_[1].busy ? 1 : 0);
  res.arrival_hash = arrival_hash;
  return res;
}

SimResult simulate(PolicyKind kind, const SystemConfig& config, const SimOptions& opts) {
  Engine engine(config, opts);
  const std::unique_ptr<Policy> policy = make_policy(kind, opts);
  return engine.run(*policy);
}

ClassStats aggregate_replications(const std::vector<ClassStats>& reps) {
  ClassStats agg;
  if (reps.empty()) return agg;
  double sum = 0.0;
  for (const ClassStats& r : reps) {
    agg.completions += r.completions;
    sum += r.mean_response;
  }
  const double n = static_cast<double>(reps.size());
  agg.mean_response = sum / n;
  if (reps.size() >= 2) {
    double ss = 0.0;
    for (const ClassStats& r : reps) {
      const double d = r.mean_response - agg.mean_response;
      ss += d * d;
    }
    agg.ci95 = 1.96 * std::sqrt(ss / (n - 1.0) / n);
  }
  return agg;
}

double relative_ci(const ClassStats& stats) {
  const double mean = std::abs(stats.mean_response);
  return mean > 0.0 ? stats.ci95 / mean : 0.0;
}

ReplicatedResult simulate_replications(PolicyKind kind, const SystemConfig& config,
                                       const SimOptions& opts,
                                       const ReplicationOptions& ropts) {
  if (ropts.replications < 1)
    throw InvalidInputError("simulate_replications: need >= 1 replication");
  if (!(ropts.target_rel_ci >= 0.0) || !std::isfinite(ropts.target_rel_ci))
    throw InvalidInputError("simulate_replications: target_rel_ci must be finite and >= 0");
  const bool adaptive = ropts.target_rel_ci > 0.0;
  if (adaptive && ropts.max_replications < ropts.replications)
    throw InvalidInputError("simulate_replications: max_replications < replications");
  const std::size_t n = static_cast<std::size_t>(ropts.replications);
  ReplicatedResult out;
  // Replication r's stream depends only on (opts.seed, r) — which worker
  // runs it is irrelevant — and each worker writes only its own slot, so
  // each batch is thread-count invariant.
  const auto run_batch = [&](std::size_t first, std::size_t count) {
    CSQ_OBS_COUNT("sim.reps.rounds");
    CSQ_OBS_COUNT_N("sim.reps.total", count);
    std::vector<SimResult> batch =
        par::parallel_map(count, ropts.threads, [&](std::size_t i) {
          CSQ_FAULT_POINT("sim.replication.start");
          SimOptions rep_opts = opts;
          rep_opts.seed = split_seed(opts.seed, first + i);
          return simulate(kind, config, rep_opts);
        });
    out.replications.insert(out.replications.end(), batch.begin(), batch.end());
  };
  const auto reaggregate = [&] {
    std::vector<ClassStats> shorts, longs;
    shorts.reserve(out.replications.size());
    longs.reserve(out.replications.size());
    for (const SimResult& r : out.replications) {
      shorts.push_back(r.shorts);
      longs.push_back(r.longs);
    }
    out.shorts = aggregate_replications(shorts);
    out.longs = aggregate_replications(longs);
  };
  run_batch(0, n);
  reaggregate();
  // Adaptive extension: the budget is polled only here, between rounds, so
  // the initial batch always completes and budget exhaustion degrades the
  // answer's precision instead of discarding it.
  while (adaptive &&
         std::max(relative_ci(out.shorts), relative_ci(out.longs)) > ropts.target_rel_ci &&
         out.replications.size() < static_cast<std::size_t>(ropts.max_replications) &&
         !ropts.budget.interrupted()) {
    const std::size_t room =
        static_cast<std::size_t>(ropts.max_replications) - out.replications.size();
    run_batch(out.replications.size(), std::min(n, room));
    reaggregate();
  }
  return out;
}

}  // namespace csq::sim
