// Seeding helpers for the simulator's random number generation.
#pragma once

#include <cstdint>

#include "dist/distribution.h"

namespace csq::sim {

// Deterministically derive a well-mixed RNG from (seed, stream) so replicas
// and parameter sweeps get independent, reproducible streams
// (splitmix64-style seeding of std::mt19937_64).
[[nodiscard]] dist::Rng make_rng(std::uint64_t seed, std::uint64_t stream = 0);

// Seed-sequence split: derive a child seed from (seed, key) with a splitmix
// round, so hierarchical consumers — replication r of sweep point p gets
// split_seed(split_seed(seed, p), r) — own statistically independent
// substreams that depend only on their coordinates, never on which thread
// ran them. This is what makes parallel multi-replication simulation
// bit-identical for every thread count.
[[nodiscard]] std::uint64_t split_seed(std::uint64_t seed, std::uint64_t key);

}  // namespace csq::sim
