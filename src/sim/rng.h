// Seeding helpers for the simulator's random number generation.
#pragma once

#include <cstdint>

#include "dist/distribution.h"

namespace csq::sim {

// Deterministically derive a well-mixed RNG from (seed, stream) so replicas
// and parameter sweeps get independent, reproducible streams
// (splitmix64-style seeding of std::mt19937_64).
[[nodiscard]] dist::Rng make_rng(std::uint64_t seed, std::uint64_t stream = 0);

}  // namespace csq::sim
