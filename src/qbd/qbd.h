// Quasi-birth-death (QBD) process solver (matrix-analytic method).
//
// Supports the chain shape the paper's analysis needs: a few heterogeneous
// boundary levels (phase sets may differ level to level) followed by an
// infinite level-independent repeating portion. The stationary distribution
// of the repeating portion is matrix-geometric: pi_{K+j} = pi_K R^j, where R
// is the minimal nonnegative solution of A0 + R A1 + R^2 A2 = 0
// (Neuts 1981; Latouche & Ramaswami 1999).
//
// Robustness: solve_r runs a fallback chain — functional iteration, then
// logarithmic reduction (quadratically convergent, so it survives the
// near-boundary configs where the linear iteration stalls), then a
// relaxed-tolerance retry — and records per-stage diagnostics in SolveStats.
// Failures throw the structured taxonomy of core/status.h; solutions can be
// self-verified via Solution::verify().
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/deadline.h"
#include "core/status.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"

namespace csq::qbd {

using linalg::Matrix;

// One boundary level. `local` holds within-level transition *rates*
// (off-diagonal; the solver fills diagonals so generator rows sum to zero),
// `up` the rates to the next level, `down` the rates to the previous level
// (empty for level 0).
struct BoundaryLevel {
  Matrix local;
  Matrix up;
  Matrix down;
};

// QBD model: boundary levels 0..K-1, then repeating levels K, K+1, ... with
// blocks a0 (up), a1 (within-level, off-diagonal only), a2 (down). The first
// repeating level K transitions down into boundary level K-1 via
// `first_down` (m x b_{K-1}); its per-row rate totals must match a2's so the
// repeating generator row sums stay level-independent.
struct Model {
  std::vector<BoundaryLevel> boundary;
  Matrix a0, a1, a2;
  Matrix first_down;
};

struct Options {
  double tolerance = 1e-13;
  int max_iterations = 200000;
  // Enable the solve_r fallback chain (logarithmic reduction, then a
  // relaxed-tolerance retry) when functional iteration fails. Off = the
  // pre-fallback behaviour: functional iteration or bust.
  bool allow_fallback = true;
  // Tolerance multiplier for the last-resort relaxed retry.
  double fallback_tolerance_factor = 1e3;
  // Self-verification level applied by solve() to its Solution.
  VerifyLevel verify = VerifyLevel::kBasic;
  // Wall-clock/cancellation budget. The iteration loops poll it (functional
  // iteration every 16 iterations, log-reduction every doubling step, power
  // iteration every 64 steps) and throw csq::DeadlineExceededError /
  // csq::CancelledError with the partial SolveStats accumulated so far.
  // Default: unlimited.
  RunBudget budget;
};

// Which stage of the fallback chain produced R.
enum class RMethod { kFunctionalIteration, kLogReduction, kRelaxedIteration };
[[nodiscard]] const char* r_method_name(RMethod method);

// Scratch buffers reused across solver iterations (and across solves, when
// the caller keeps one alive). The functional iteration runs thousands of
// steps of R <- -(A0 + R² A2) A1⁻¹; assembling each step into these buffers
// with the structure-aware kernels instead of temporaries makes the hot
// loop allocation-free after warm-up. The workspace also caches the
// BlockPatterns of the solve's constant blocks: solve_r classifies A0/A2
// once per solve (reusing the pattern vectors' capacity across solves) and
// every iteration multiply dispatches on the cached structure instead of
// paying the generic dense kernel. Buffers size themselves lazily; a
// Workspace is cheap to default-construct.
struct Workspace {
  linalg::Matrix r2, acc, next;       // functional iteration: R², A0 + R²A2, next R
  linalg::Matrix cand;                // Aitken-extrapolated candidate iterate
  linalg::Matrix hh, ll, hl, lh;      // logarithmic reduction squares/cross terms
  linalg::Matrix prod;                // generic product scratch
  linalg::BlockPattern pat_a0;        // zero structure of A0 (this solve)
  linalg::BlockPattern pat_a2;        // zero structure of A2 (this solve)
};

// Diagnostics recorded by solve_r / solve.
struct SolveStats {
  RMethod method = RMethod::kFunctionalIteration;
  int iterations = 0;                 // iterations spent by the winning stage
  double residual = -1.0;             // ‖A0 + R A1 + R² A2‖_max at acceptance
  double spectral_radius = -1.0;      // sp(R) power-iteration estimate
  double boundary_condition = -1.0;   // condition estimate of the boundary solve
  std::vector<std::string> trail;     // human-readable per-stage notes

  // Fold these stats into a Diagnostics payload.
  [[nodiscard]] Diagnostics to_diagnostics() const;
};

struct Solution {
  std::vector<std::vector<double>> boundary_pi;  // stationary mass, levels 0..K-1
  std::vector<double> pi_k;                      // level K (first repeating)
  Matrix r;                                      // rate matrix R
  Matrix i_minus_r_inv;                          // (I - R)^{-1}
  SolveStats stats;                              // how R was obtained, residuals

  // Spectral-radius proxy: max row sum of R (< 1 for positive recurrence).
  [[nodiscard]] double r_row_sum_max() const;

  // E[level] with boundary level i worth i and repeating level K+j worth K+j.
  [[nodiscard]] double mean_level() const;

  // P(level == n).
  [[nodiscard]] double level_probability(std::size_t n) const;

  // P(level > n) — exact partial sums for the boundary plus the closed-form
  // matrix-geometric tail.
  [[nodiscard]] double level_tail(std::size_t n) const;

  // Asymptotic decay rate of the level distribution: the spectral radius of
  // R, so P(level = n) ~ c * rate^n for large n. Returns the estimate the
  // solver already computed (stats.spectral_radius, same estimator and
  // tolerance); falls back to a fresh estimate for hand-built Solutions.
  [[nodiscard]] double tail_decay_rate() const;

  // Smallest n with P(level <= n) >= q (q in (0,1)); e.g. q = 0.99 bounds
  // the backlog a provisioner must absorb.
  [[nodiscard]] std::size_t level_quantile(double q) const;

  // Stationary mass of each repeating-portion phase, summed over all levels
  // >= K: pi_K (I-R)^{-1}.
  [[nodiscard]] std::vector<double> repeating_mass_by_phase() const;

  // Total stationary mass (== 1 up to numerical error; used by tests).
  [[nodiscard]] double total_mass() const;

  // Self-verification: total mass ≈ 1, no negative probabilities, sp(R) < 1,
  // finite values; kFull adds the R-equation residual and E[level] sanity.
  // Returns kOk or kVerificationFailed with the failing checks in the notes.
  [[nodiscard]] SolverStatus verify(VerifyLevel level = VerifyLevel::kFull) const;
};

// Solve the QBD. Throws csq::UnstableError if the process is not positive
// recurrent (sp(R) >= 1), csq::NotConvergedError when the whole fallback
// chain fails, csq::InvalidInputError for malformed models,
// csq::VerificationFailedError when opts.verify rejects the solution, and
// csq::DeadlineExceededError / csq::CancelledError when opts.budget is
// interrupted mid-solve (all derive from std exceptions). Pass a Workspace
// to reuse scratch buffers and cached block patterns across repeated solves
// (sweeps, batches, the analysis layer's per-thread scratch).
[[nodiscard]] Solution solve(const Model& model, const Options& opts = {},
                             Workspace* workspace = nullptr);

// Minimal nonnegative solution of A0 + R A1 + R^2 A2 = 0. a1 must carry its
// diagonal. Runs the fallback chain described above (unless
// opts.allow_fallback is false); per-stage diagnostics are written to
// *stats_out when given. Shares solve()'s throw contract, plus
// csq::IllConditionedError when a stage's linear solve degenerates. Pass a Workspace to reuse scratch buffers across
// repeated solves (a local one is used otherwise).
[[nodiscard]] Matrix solve_r(const Matrix& a0, const Matrix& a1, const Matrix& a2,
                             const Options& opts = {}, SolveStats* stats_out = nullptr,
                             Workspace* workspace = nullptr);

// One entry of a solve_r_batch: the three repeating blocks, with a1 carrying
// its diagonal exactly as solve_r expects.
struct RBlocks {
  Matrix a0, a1, a2;
};

// Batched R solves: one Workspace — scratch buffers plus cached block
// patterns — is shared across the whole batch, so a sweep's worth of solves
// pays the allocation and pattern-analysis cost once instead of per config.
// Entry i of the result is the R matrix for items[i]; per-item diagnostics
// land in (*stats_out)[i] when stats_out is given. Failures throw the same
// taxonomy as solve_r (the first failing item aborts the batch).
[[nodiscard]] std::vector<Matrix> solve_r_batch(const std::vector<RBlocks>& items,
                                                const Options& opts = {},
                                                std::vector<SolveStats>* stats_out = nullptr);

// G matrix by logarithmic reduction (Latouche-Ramaswami); the second stage
// of the solve_r fallback chain and an independent cross-check in the
// test-suite. G solves A2 + A1 G + A0 G^2 = 0 (first-passage probabilities
// down a level). Reports the doubling-step count / final update size via the
// optional out-params.
[[nodiscard]] Matrix solve_g_logred(const Matrix& a0, const Matrix& a1, const Matrix& a2,
                                    const Options& opts = {}, int* steps_out = nullptr,
                                    double* last_update_out = nullptr,
                                    Workspace* workspace = nullptr);

// R from G: R = A0 (-A1 - A0 G)^{-1}.
[[nodiscard]] Matrix r_from_g(const Matrix& a0, const Matrix& a1, const Matrix& g);

// Spectral-radius estimate via Gelfand's formula with repeated squaring
// (||m^(2^k)||^(1/2^k)), with early exit once the estimate stops moving.
// Unlike plain power iteration this converges geometrically in k for every
// spectrum — defective eigenvalues and equal-modulus complex pairs included
// — so `tolerance` is genuinely reachable. When the iteration budget (or
// the RunBudget) runs out before the estimate settles, the last iterate is
// still returned but *converged_out is false — callers that need a trusted
// estimate must check it (solve_r retries with a larger budget and then
// throws csq::NotConvergedError; best-effort callers like tail_decay_rate
// ignore it). *iterations_out reports the iterations actually spent.
[[nodiscard]] double spectral_radius_estimate(const Matrix& m, int max_iterations = 500,
                                              double tolerance = 1e-12,
                                              bool* converged_out = nullptr,
                                              int* iterations_out = nullptr,
                                              const RunBudget& budget = {});

}  // namespace csq::qbd
