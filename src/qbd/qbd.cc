#include "qbd/qbd.h"

#include <cmath>
#include <stdexcept>

#include "linalg/lu.h"

namespace csq::qbd {

namespace {

// Fill the diagonal of `local` so that each generator row sums to zero given
// the other blocks in that block-row.
void fill_diagonal(Matrix& local, const std::vector<const Matrix*>& others) {
  for (std::size_t i = 0; i < local.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < local.cols(); ++j)
      if (j != i) s += local(i, j);
    for (const Matrix* m : others)
      if (!m->empty())
        for (std::size_t j = 0; j < m->cols(); ++j) s += (*m)(i, j);
    local(i, i) = -s;
  }
}

void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

}  // namespace

double Solution::r_row_sum_max() const {
  double best = 0.0;
  for (std::size_t i = 0; i < r.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < r.cols(); ++j) s += r(i, j);
    best = std::max(best, s);
  }
  return best;
}

double Solution::mean_level() const {
  const std::size_t k = boundary_pi.size();
  double mean = 0.0;
  for (std::size_t i = 0; i < k; ++i) mean += static_cast<double>(i) * linalg::sum(boundary_pi[i]);
  const std::vector<double> tail = pi_k * i_minus_r_inv;           // sum_j pi_K R^j
  const std::vector<double> tail2 = (tail * i_minus_r_inv) * r;    // sum_j j pi_K R^j
  mean += static_cast<double>(k) * linalg::sum(tail) + linalg::sum(tail2);
  return mean;
}

double Solution::level_probability(std::size_t n) const {
  const std::size_t k = boundary_pi.size();
  if (n < k) return linalg::sum(boundary_pi[n]);
  std::vector<double> v = pi_k;
  for (std::size_t j = k; j < n; ++j) v = v * r;
  return linalg::sum(v);
}

std::vector<double> Solution::repeating_mass_by_phase() const { return pi_k * i_minus_r_inv; }

double Solution::level_tail(std::size_t n) const {
  const std::size_t k = boundary_pi.size();
  double below = 0.0;
  for (std::size_t i = 0; i < k && i <= n; ++i) below += linalg::sum(boundary_pi[i]);
  if (n < k) return 1.0 - below;
  // P(level > n) = pi_K R^{n-K+1} (I-R)^{-1} 1.
  std::vector<double> v = pi_k;
  for (std::size_t j = k; j <= n; ++j) v = v * r;
  return linalg::sum(v * i_minus_r_inv);
}

double Solution::tail_decay_rate() const {
  const std::size_t m = r.rows();
  std::vector<double> v(m, 1.0);
  double norm = 0.0;
  for (int it = 0; it < 500; ++it) {
    v = r * v;
    norm = 0.0;
    for (double x : v) norm = std::max(norm, std::abs(x));
    if (norm == 0.0) return 0.0;
    for (double& x : v) x /= norm;
  }
  return norm;
}

std::size_t Solution::level_quantile(double q) const {
  if (q <= 0.0 || q >= 1.0) throw std::invalid_argument("level_quantile: q must be in (0,1)");
  double cdf = 0.0;
  const std::size_t k = boundary_pi.size();
  for (std::size_t i = 0; i < k; ++i) {
    cdf += linalg::sum(boundary_pi[i]);
    if (cdf >= q) return i;
  }
  std::vector<double> v = pi_k;
  for (std::size_t n = k;; ++n) {
    cdf += linalg::sum(v);
    if (cdf >= q) return n;
    v = v * r;
    if (n > k + 100000000) throw std::logic_error("level_quantile: runaway");
  }
}

double Solution::total_mass() const {
  double s = 0.0;
  for (const auto& b : boundary_pi) s += linalg::sum(b);
  return s + linalg::sum(repeating_mass_by_phase());
}

Matrix solve_r(const Matrix& a0, const Matrix& a1, const Matrix& a2, const Options& opts) {
  const std::size_t m = a0.rows();
  require(a0.cols() == m && a1.rows() == m && a1.cols() == m && a2.rows() == m &&
              a2.cols() == m,
          "solve_r: blocks must be square and same size");
  const Matrix a1_inv = linalg::inverse(a1);
  Matrix r(m, m);
  for (int it = 0; it < opts.max_iterations; ++it) {
    // R <- -(A0 + R^2 A2) A1^{-1}
    Matrix next = (-1.0) * ((a0 + r * r * a2) * a1_inv);
    const double diff = (next - r).max_abs();
    r = std::move(next);
    if (r.max_abs() > 1e6) throw std::domain_error("solve_r: iteration diverged (unstable QBD?)");
    if (diff < opts.tolerance) {
      // Positive recurrence check: sp(R) < 1. Power-iterate a few steps.
      std::vector<double> v(m, 1.0);
      double norm = 1.0;
      for (int p = 0; p < 200; ++p) {
        v = r * v;
        norm = 0.0;
        for (double x : v) norm = std::max(norm, std::abs(x));
        if (norm == 0.0) break;
        for (double& x : v) x /= norm;
      }
      if (norm >= 1.0 - 1e-10)
        throw std::domain_error("solve_r: spectral radius >= 1 (QBD not positive recurrent)");
      return r;
    }
  }
  throw std::domain_error("solve_r: functional iteration did not converge");
}

Matrix solve_g_logred(const Matrix& a0, const Matrix& a1, const Matrix& a2,
                      const Options& opts) {
  // Logarithmic reduction (Latouche & Ramaswami 1999, Ch. 8).
  const std::size_t m = a0.rows();
  const Matrix neg_a1_inv = linalg::inverse((-1.0) * a1);
  Matrix h = neg_a1_inv * a0;  // "up" probability block
  Matrix l = neg_a1_inv * a2;  // "down" probability block
  Matrix g = l;
  Matrix t = h;
  for (int it = 0; it < 64; ++it) {
    const Matrix u = h * l + l * h;
    const Matrix m2 = linalg::inverse(Matrix::identity(m) - u);
    const Matrix h2 = m2 * (h * h);
    const Matrix l2 = m2 * (l * l);
    g += t * l2;
    t = t * h2;
    h = h2;
    l = l2;
    if (t.max_abs() < opts.tolerance) break;
  }
  return g;
}

Matrix r_from_g(const Matrix& a0, const Matrix& a1, const Matrix& g) {
  return a0 * linalg::inverse((-1.0) * a1 - a0 * g);
}

Solution solve(const Model& model, const Options& opts) {
  const std::size_t k = model.boundary.size();
  require(k >= 1, "qbd::solve: need at least one boundary level");
  const std::size_t m = model.a0.rows();
  require(model.a1.rows() == m && model.a2.rows() == m && model.first_down.rows() == m,
          "qbd::solve: repeating block shape mismatch");

  // Copy and complete diagonals.
  std::vector<Matrix> local(k);
  for (std::size_t i = 0; i < k; ++i) {
    const BoundaryLevel& b = model.boundary[i];
    const std::size_t bi = b.local.rows();
    require(b.local.cols() == bi, "qbd::solve: boundary local not square");
    if (i == 0)
      require(b.down.empty(), "qbd::solve: level 0 must have no down block");
    else
      require(b.down.rows() == bi && b.down.cols() == model.boundary[i - 1].local.rows(),
              "qbd::solve: boundary down block shape mismatch");
    const std::size_t up_cols = (i + 1 < k) ? model.boundary[i + 1].local.rows() : m;
    require(b.up.rows() == bi && b.up.cols() == up_cols,
            "qbd::solve: boundary up block shape mismatch");
    local[i] = b.local;
    std::vector<const Matrix*> others{&b.up};
    if (i > 0) others.push_back(&b.down);
    fill_diagonal(local[i], others);
  }
  require(model.first_down.cols() == model.boundary[k - 1].local.rows(),
          "qbd::solve: first_down shape mismatch");
  // The repeating diagonal must be level-independent: first_down and a2 must
  // carry the same per-row outflow.
  {
    const std::vector<double> fd = model.first_down.row_sums();
    const std::vector<double> a2s = model.a2.row_sums();
    for (std::size_t i = 0; i < m; ++i)
      require(std::abs(fd[i] - a2s[i]) < 1e-9,
              "qbd::solve: first_down row sums must match a2 row sums");
  }
  Matrix a1 = model.a1;
  {
    std::vector<const Matrix*> others{&model.a0, &model.a2};
    fill_diagonal(a1, others);
  }

  const Matrix r = solve_r(model.a0, a1, model.a2, opts);
  const Matrix i_minus_r_inv = linalg::inverse(Matrix::identity(m) - r);

  // Assemble boundary balance equations. Unknowns x = (pi_0,...,pi_{k-1},pi_K).
  std::vector<std::size_t> offset(k + 1);
  std::size_t n = 0;
  for (std::size_t i = 0; i < k; ++i) {
    offset[i] = n;
    n += local[i].rows();
  }
  offset[k] = n;
  n += m;

  // e[r][c]: coefficient of unknown r in balance equation c (x * E = 0).
  Matrix e(n, n);
  const auto add_block = [&e](std::size_t row0, std::size_t col0, const Matrix& blk) {
    for (std::size_t i = 0; i < blk.rows(); ++i)
      for (std::size_t j = 0; j < blk.cols(); ++j) e(row0 + i, col0 + j) += blk(i, j);
  };
  for (std::size_t i = 0; i < k; ++i) {
    add_block(offset[i], offset[i], local[i]);
    add_block(offset[i], offset[i + 1], model.boundary[i].up);
    if (i > 0) add_block(offset[i], offset[i - 1], model.boundary[i].down);
  }
  // Level K equations: pi_{K-1} U_{K-1} (added above) + pi_K (A1 + R A2).
  add_block(offset[k], offset[k], a1 + r * model.a2);
  // Level K's down-flow into level K-1's equations.
  add_block(offset[k], offset[k - 1], model.first_down);

  // Replace equation 0 with normalization:
  // sum boundary + pi_K (I-R)^{-1} 1 = 1.
  for (std::size_t row = 0; row < n; ++row) e(row, 0) = 0.0;
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < local[i].rows(); ++j) e(offset[i] + j, 0) = 1.0;
  for (std::size_t i = 0; i < m; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < m; ++j) s += i_minus_r_inv(i, j);
    e(offset[k] + i, 0) = s;
  }

  std::vector<double> rhs(n, 0.0);
  rhs[0] = 1.0;
  const std::vector<double> x = linalg::Lu(e.transpose()).solve(rhs);

  Solution sol;
  sol.r = r;
  sol.i_minus_r_inv = i_minus_r_inv;
  sol.boundary_pi.resize(k);
  for (std::size_t i = 0; i < k; ++i)
    sol.boundary_pi[i].assign(x.begin() + static_cast<std::ptrdiff_t>(offset[i]),
                              x.begin() + static_cast<std::ptrdiff_t>(offset[i + 1]));
  sol.pi_k.assign(x.begin() + static_cast<std::ptrdiff_t>(offset[k]), x.end());
  return sol;
}

}  // namespace csq::qbd
