#include "qbd/qbd.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "linalg/lu.h"

#include "core/status.h"

#include "core/faultpoint.h"

#include "core/numeric.h"

#include "obs/obs.h"

#include "obs/trace.h"

namespace csq::qbd {

namespace {

// Fill the diagonal of `local` so that each generator row sums to zero given
// the other blocks in that block-row.
void fill_diagonal(Matrix& local, const std::vector<const Matrix*>& others) {
  for (std::size_t i = 0; i < local.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < local.cols(); ++j)
      if (j != i) s += local(i, j);
    for (const Matrix* m : others)
      if (!m->empty())
        for (std::size_t j = 0; j < m->cols(); ++j) s += (*m)(i, j);
    local(i, i) = -s;
  }
}

void require(bool cond, const char* msg) {
  if (!cond) throw InvalidInputError(msg);
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

// ‖A0 + R A1 + R² A2‖_max — how well R solves its defining equation.
double r_residual(const Matrix& a0, const Matrix& a1, const Matrix& a2, const Matrix& r) {
  return (a0 + r * a1 + r * r * a2).max_abs();
}

struct IterationOutcome {
  Matrix r;
  bool converged = false;
  bool diverged = false;
  bool interrupted = false;  // the RunBudget stopped the loop
  int iterations = 0;
  double last_diff = -1.0;
};

// Per-solve kernel activity, flushed to the qbd.kernel.* counters once per
// solve_r call (never per iteration — a counter bump inside the hot loop
// would cost more than the multiply it measures).
struct KernelTallies {
  long pattern_mults = 0;   // structure-dispatched multiplies (non-dense kind)
  long dense_mults = 0;     // blocked restrict dense multiplies
  long extrapolations = 0;  // accepted Aitken limit jumps
  long analyses = 0;        // block patterns classified
};

// One FI step from `r` into ws.next: F(R) = (A0 + R² A2)(-A1⁻¹), assembled
// with the pattern kernels (A2's structure cached in ws.pat_a2, A0 added
// through its pattern). The caller passes -A1⁻¹ so the negation is folded
// into the constant instead of costing a pass per iteration (IEEE negation
// commutes with addition exactly, so the iterates are bit-identical to the
// -(…)A1⁻¹ form). No heap allocation once the buffers are warm.
void fi_step(const Matrix& r, const Matrix& a0, const Matrix& neg_a1_inv, const Matrix& a2,
             Workspace& ws, KernelTallies& tally) {
  linalg::multiply_into_dense(ws.r2, r, r);
  linalg::multiply_into_pattern(ws.acc, ws.r2, a2, ws.pat_a2);
  linalg::add_into_pattern(ws.acc, a0, ws.pat_a0);
  linalg::multiply_into_dense(ws.next, ws.acc, neg_a1_inv);
  tally.dense_mults += 2;
  tally.pattern_mults += ws.pat_a2.kind == linalg::PatternKind::kDense ? 0 : 1;
}

// R <- -(A0 + R² A2) A1^{-1} from R = 0 until the update falls below tol.
// Each step is assembled in the workspace's scratch buffers, so the loop
// performs no heap allocation after the first iteration. The budget is
// polled every 16 iterations (worst-case overshoot: 16 cheap steps).
//
// The iteration converges linearly at rate ~ sp(R), which drags near the
// stability boundary, so the loop layers a deterministic Aitken jump on
// top: once the observed update ratio is stable, the geometric limit
// R* ≈ R + Δ ρ/(1-ρ) is formed elementwise and validated by one genuine FI
// step — the jump is adopted only when that step's update is smaller than
// the pre-jump update, so a bad extrapolation costs one step and changes
// nothing. All decisions depend only on iterate values (never on timing or
// thread count), keeping solves bit-reproducible.
IterationOutcome functional_iteration(const Matrix& a0, const Matrix& neg_a1_inv,
                                      const Matrix& a2, double tolerance,
                                      int max_iterations, Workspace& ws,
                                      const RunBudget& budget, KernelTallies& tally) {
  IterationOutcome out;
  const std::size_t m = a0.rows();
  out.r = Matrix(m, m);
  double prev_diff = -1.0;
  double prev_ratio = -1.0;
  int next_extrap = 12;  // warm-up: let the linear rate establish itself
  for (int it = 0; it < max_iterations; ++it) {
    if ((it & 15) == 0 && budget.interrupted()) {
      out.interrupted = true;
      return out;
    }
    CSQ_FAULT_POINT_MATRIX("qbd.fi.iterate", &out.r(0, 0), m * m);
    fi_step(out.r, a0, neg_a1_inv, a2, ws, tally);
    const double diff = linalg::max_abs_diff(ws.next, out.r);
    std::swap(out.r, ws.next);  // out.r = new iterate; ws.next = previous one
    out.iterations = it + 1;
    out.last_diff = diff;
    // A non-finite update (e.g. NaN leaked into an iterate) can never
    // converge — classify it as divergence so the fallback chain engages
    // instead of burning the whole iteration budget.
    if (!std::isfinite(diff) || out.r.max_abs() > 1e6) {
      out.diverged = true;
      return out;
    }
    if (diff < tolerance) {
      out.converged = true;
      return out;
    }

    const double ratio = prev_diff > 0.0 ? diff / prev_diff : -1.0;
    if (it + 1 >= next_extrap && prev_ratio > 0.0 && ratio > 0.05 && ratio < 0.995 &&
        std::abs(ratio - prev_ratio) < 0.02 * ratio) {
      // Geometric limit jump: cand = R + (R - R_prev) ρ/(1-ρ).
      const double f = ratio / (1.0 - ratio);
      ws.cand = out.r;
      ws.cand.add_scaled(out.r, f);
      ws.cand.add_scaled(ws.next, -f);
      // Validate with one genuine step from the candidate; the step is real
      // work, so it counts against the iteration budget.
      ++it;
      fi_step(ws.cand, a0, neg_a1_inv, a2, ws, tally);
      const double cand_diff = linalg::max_abs_diff(ws.next, ws.cand);
      out.iterations = it + 1;
      if (std::isfinite(cand_diff) && cand_diff < diff) {
        std::swap(out.r, ws.next);  // adopt F(cand): one step past the jump
        out.last_diff = cand_diff;
        ++tally.extrapolations;
        if (cand_diff < tolerance && out.r.max_abs() <= 1e6) {
          out.converged = true;
          return out;
        }
        // Keep tracking the rate from the post-jump iterate. The asymptotic
        // ratio is a property of the map, not the iterate, so the pre-jump
        // estimate stays valid and the next jump only waits for the ratio to
        // re-stabilize instead of a full warm-up.
        prev_diff = cand_diff;
        prev_ratio = ratio;
        next_extrap = it + 1 + 3;
        continue;
      }
      // Rejected jump: keep the pre-jump iterate, back off before retrying.
      next_extrap = it + 1 + 32;
      prev_diff = diff;
      prev_ratio = ratio;
      continue;
    }
    prev_diff = diff;
    prev_ratio = ratio;
  }
  return out;
}

}  // namespace

const char* r_method_name(RMethod method) {
  switch (method) {
    case RMethod::kFunctionalIteration: return "functional_iteration";
    case RMethod::kLogReduction: return "logarithmic_reduction";
    case RMethod::kRelaxedIteration: return "relaxed_iteration";
  }
  return "?";
}

Diagnostics SolveStats::to_diagnostics() const {
  Diagnostics d;
  d.iterations = iterations;
  d.residual = residual;
  d.spectral_radius = spectral_radius;
  d.condition_estimate = boundary_condition;
  d.stage = r_method_name(method);
  d.notes = trail;
  return d;
}

double spectral_radius_estimate(const Matrix& m, int max_iterations, double tolerance,
                                bool* converged_out, int* iterations_out,
                                const RunBudget& budget) {
  // Gelfand's formula with repeated squaring: after k squarings the stored
  // matrix is a normalized m^(2^k), and ||m^(2^k)||^(1/2^k) -> sp(m) with
  // error O(log(2^k) / 2^k) — geometric in k even for defective or
  // complex-pair spectra, where plain power iteration stalls at O(1/iters)
  // and can never certify 1e-12. ~55 squarings of these small dense R
  // matrices are cheaper than a few hundred power steps.
  const std::size_t n = m.rows();
  CSQ_OBS_SPAN("qbd.solve.spectral");
  bool converged = false;
  int iterations = 0;
  double estimate = 0.0;
  if (n == 0) {
    converged = true;
  } else {
    const auto inf_norm = [n](const Matrix& a) {
      double best = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        double s = 0.0;
        for (std::size_t j = 0; j < n; ++j) s += std::abs(a(i, j));
        best = std::max(best, s);
      }
      return best;
    };
    Matrix p = m;
    Matrix sq;  // squaring scratch, reused: no per-step allocation after k = 1
    // log_est accumulates log ||m^(2^k)|| / 2^k across the normalizations.
    double log_est = 0.0;
    double scale = 1.0;  // 2^-k
    double prev = std::numeric_limits<double>::infinity();
    // 2^60 effective power puts the defectiveness error far below 1e-12;
    // honour a smaller caller-provided iteration cap.
    const int max_squarings = std::min(max_iterations, 60);
    for (int k = 0; k <= max_squarings; ++k) {
      if (budget.interrupted()) break;  // best effort; caller decides
      iterations = k;
      const double c = inf_norm(p);
      if (num::exactly_zero(c)) {  // m^(2^k) == 0: nilpotent, sp = 0
        estimate = 0.0;
        converged = true;
        break;
      }
      log_est += std::log(c) * scale;
      estimate = std::exp(log_est);
      if (std::abs(estimate - prev) < tolerance * std::max(estimate, 1.0)) {
        converged = true;
        break;
      }
      prev = estimate;
      p *= 1.0 / c;
      linalg::multiply_into_dense(sq, p, p);
      std::swap(p, sq);
      scale *= 0.5;
    }
  }
  if (converged_out) *converged_out = converged;
  if (iterations_out) *iterations_out = iterations;
  CSQ_OBS_COUNT_N("qbd.spectral.squarings", iterations);
  return estimate;
}

double Solution::r_row_sum_max() const {
  double best = 0.0;
  for (std::size_t i = 0; i < r.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < r.cols(); ++j) s += r(i, j);
    best = std::max(best, s);
  }
  return best;
}

double Solution::mean_level() const {
  const std::size_t k = boundary_pi.size();
  double mean = 0.0;
  for (std::size_t i = 0; i < k; ++i) mean += static_cast<double>(i) * linalg::sum(boundary_pi[i]);
  const std::vector<double> tail = pi_k * i_minus_r_inv;           // sum_j pi_K R^j
  const std::vector<double> tail2 = (tail * i_minus_r_inv) * r;    // sum_j j pi_K R^j
  mean += static_cast<double>(k) * linalg::sum(tail) + linalg::sum(tail2);
  return mean;
}

double Solution::level_probability(std::size_t n) const {
  const std::size_t k = boundary_pi.size();
  if (n < k) return linalg::sum(boundary_pi[n]);
  std::vector<double> v = pi_k;
  std::vector<double> scratch;  // ping-pong buffer: no per-level allocation
  for (std::size_t j = k; j < n; ++j) {
    // csq-lint: allow(hot-path-generic-mult): row-vector recursion pi <- pi R has no block structure to exploit
    linalg::multiply_into(scratch, v, r);
    std::swap(v, scratch);
  }
  return linalg::sum(v);
}

std::vector<double> Solution::repeating_mass_by_phase() const { return pi_k * i_minus_r_inv; }

double Solution::level_tail(std::size_t n) const {
  const std::size_t k = boundary_pi.size();
  double below = 0.0;
  for (std::size_t i = 0; i < k && i <= n; ++i) below += linalg::sum(boundary_pi[i]);
  if (n < k) return 1.0 - below;
  // P(level > n) = pi_K R^{n-K+1} (I-R)^{-1} 1.
  std::vector<double> v = pi_k;
  std::vector<double> scratch;  // ping-pong buffer: no per-level allocation
  for (std::size_t j = k; j <= n; ++j) {
    // csq-lint: allow(hot-path-generic-mult): row-vector recursion pi <- pi R has no block structure to exploit
    linalg::multiply_into(scratch, v, r);
    std::swap(v, scratch);
  }
  return linalg::sum(v * i_minus_r_inv);
}

double Solution::tail_decay_rate() const {
  // solve_r already ran the same estimator (500 squarings, 1e-12) on this R;
  // reuse its result instead of re-estimating per query. Hand-built
  // Solutions (tests, cross-checks) have no stats and estimate fresh.
  if (stats.spectral_radius >= 0.0) return stats.spectral_radius;
  return spectral_radius_estimate(r);
}

std::size_t Solution::level_quantile(double q) const {
  if (q <= 0.0 || q >= 1.0)
    throw InvalidInputError("level_quantile: q must be in (0,1)");
  double cdf = 0.0;
  const std::size_t k = boundary_pi.size();
  for (std::size_t i = 0; i < k; ++i) {
    cdf += linalg::sum(boundary_pi[i]);
    if (cdf >= q) return i;
  }
  std::vector<double> v = pi_k;
  std::vector<double> scratch;  // ping-pong buffer: no per-level allocation
  for (std::size_t n = k;; ++n) {
    cdf += linalg::sum(v);
    if (cdf >= q) return n;
    // csq-lint: allow(hot-path-generic-mult): row-vector recursion pi <- pi R has no block structure to exploit
    linalg::multiply_into(scratch, v, r);
    std::swap(v, scratch);
    if (n > k + 100000000) {
      Diagnostics d;
      d.iterations = static_cast<long>(n - k);
      d.notes.push_back("cdf reached " + fmt(cdf) + " chasing quantile " + fmt(q));
      throw NotConvergedError("level_quantile: runaway (sp(R) too close to 1?)",
                              std::move(d));
    }
  }
}

double Solution::total_mass() const {
  double s = 0.0;
  for (const auto& b : boundary_pi) s += linalg::sum(b);
  return s + linalg::sum(repeating_mass_by_phase());
}

SolverStatus Solution::verify(VerifyLevel level) const {
  SolverStatus status;
  if (level == VerifyLevel::kNone) return status;
  std::vector<std::string> failures;
  constexpr double kNegTol = 1e-9;

  double min_entry = 0.0;
  bool all_finite = true;
  const auto scan = [&](const std::vector<double>& v) {
    for (const double x : v) {
      if (!std::isfinite(x)) all_finite = false;
      min_entry = std::min(min_entry, x);
    }
  };
  for (const auto& b : boundary_pi) scan(b);
  scan(pi_k);
  if (!all_finite) failures.push_back("non-finite stationary probabilities");
  if (min_entry < -kNegTol)
    failures.push_back("negative stationary probability (min " + fmt(min_entry) + ")");

  for (const double x : r.data())
    if (!std::isfinite(x)) {
      failures.push_back("non-finite entry in R");
      break;
    }

  const double mass = total_mass();
  if (!std::isfinite(mass) || std::abs(mass - 1.0) > 1e-6)
    failures.push_back("total mass " + fmt(mass) + " not within 1e-6 of 1");

  const double sp =
      stats.spectral_radius >= 0.0 ? stats.spectral_radius : spectral_radius_estimate(r);
  if (!(sp < 1.0))
    failures.push_back("spectral radius of R " + fmt(sp) + " not < 1");

  if (level == VerifyLevel::kFull) {
    if (stats.residual >= 0.0 && stats.residual > 1e-6)
      failures.push_back("R-equation residual " + fmt(stats.residual) + " above 1e-6");
    const double mean = mean_level();
    if (!std::isfinite(mean) || mean < -kNegTol)
      failures.push_back("mean level " + fmt(mean) + " not finite/nonnegative");
  }

  if (!failures.empty()) {
    status.code = ErrorCode::kVerificationFailed;
    status.message = "qbd::Solution::verify: " + failures.front() +
                     (failures.size() > 1
                          ? " (+" + std::to_string(failures.size() - 1) + " more)"
                          : "");
    status.diagnostics = stats.to_diagnostics();
    status.diagnostics.notes.insert(status.diagnostics.notes.end(), failures.begin(),
                                    failures.end());
  }
  return status;
}

Matrix solve_r(const Matrix& a0, const Matrix& a1, const Matrix& a2, const Options& opts,
               SolveStats* stats_out, Workspace* workspace) {
  const std::size_t m = a0.rows();
  require(a0.cols() == m && a1.rows() == m && a1.cols() == m && a2.rows() == m &&
              a2.cols() == m,
          "solve_r: blocks must be square and same size");
  Workspace local_ws;
  Workspace& ws = workspace ? *workspace : local_ws;
  SolveStats stats;
  CSQ_OBS_COUNT("qbd.solve.calls");
  // A warm workspace keeps the iteration allocation-free; count the solves
  // that had to (re)shape scratch so sweeps can verify buffer reuse.
  if (ws.r2.rows() != m || ws.r2.cols() != m) CSQ_OBS_COUNT("qbd.workspace.resizes");

  // Classify the constant blocks once per solve; every iteration multiply
  // below dispatches on the cached structure. Tallies flush to the obs
  // counters exactly once per solve — on success or failure — so the
  // aggregates stay per-solve, not per-iteration.
  linalg::analyze_pattern_into(ws.pat_a0, a0);
  linalg::analyze_pattern_into(ws.pat_a2, a2);
  KernelTallies tally;
  tally.analyses = 2;
  struct TallyFlush {
    const KernelTallies& t;
    ~TallyFlush() {
      CSQ_OBS_COUNT_N("qbd.kernel.pattern_mults", t.pattern_mults);
      CSQ_OBS_COUNT_N("qbd.kernel.dense_mults", t.dense_mults);
      CSQ_OBS_COUNT_N("qbd.kernel.extrapolations", t.extrapolations);
      CSQ_OBS_COUNT_N("qbd.kernel.pattern_analyses", t.analyses);
    }
  } tally_flush{tally};

  // Accept R when it solves its equation to near the rate scale's precision.
  const double scale =
      std::max(1.0, std::max(a0.max_abs(), std::max(a1.max_abs(), a2.max_abs())));
  const double accept_residual = std::max(1e-10, opts.tolerance * 1e3) * scale;

  // Interrupted exit: publish partial stats, then let the budget throw the
  // matching taxonomy error (CancelledError / DeadlineExceededError).
  const auto throw_interrupted = [&](const std::string& where) {
    stats.trail.push_back(where + ": interrupted by " +
                          (opts.budget.cancelled() ? "cancellation" : "deadline"));
    if (stats_out) *stats_out = stats;
    Diagnostics d = stats.to_diagnostics();
    d.tolerance = opts.tolerance;
    opts.budget.check(where, std::move(d));
    throw InternalError("solve_r: interrupted exit taken without an interrupted budget");
  };

  // sp(R) with a trusted convergence status: one larger-budget retry, then a
  // structured failure — never a silently unconverged estimate.
  const auto sp_checked = [&](const Matrix& r, const std::string& where) -> double {
    bool conv = false;
    int iters = 0;
    double sp = spectral_radius_estimate(r, 500, 1e-12, &conv, &iters, opts.budget);
    if (!conv && !opts.budget.interrupted())
      sp = spectral_radius_estimate(r, 20000, 1e-12, &conv, &iters, opts.budget);
    if (conv) return sp;
    stats.trail.push_back(where + ": spectral-radius power iteration exhausted after " +
                          std::to_string(iters) + " iterations (last estimate " + fmt(sp) +
                          ")");
    if (opts.budget.interrupted()) throw_interrupted(where);
    Diagnostics d = stats.to_diagnostics();
    d.iterations = iters;
    d.tolerance = opts.tolerance;
    if (stats_out) *stats_out = stats;
    throw NotConvergedError(
        where + ": spectral-radius power iteration did not converge", std::move(d));
  };

  // Successful exit: record residual + spectral radius, reject sp(R) >= 1.
  const auto finish = [&](Matrix r, RMethod method, int iterations) -> Matrix {
    CSQ_OBS_GAUGE_SET("solver.fallback.stage", static_cast<int>(method));
    if (method != RMethod::kFunctionalIteration) CSQ_OBS_COUNT("solver.fallback.engaged");
    stats.method = method;
    stats.iterations = iterations;
    stats.residual = r_residual(a0, a1, a2, r);
    stats.spectral_radius = sp_checked(r, std::string("solve_r/") + r_method_name(method));
    if (stats.spectral_radius >= 1.0 - 1e-10) {
      Diagnostics d = stats.to_diagnostics();
      d.tolerance = opts.tolerance;
      if (stats_out) *stats_out = stats;
      throw UnstableError(
          "solve_r: spectral radius " + fmt(stats.spectral_radius) +
              " >= 1 (QBD not positive recurrent)",
          std::move(d));
    }
    if (stats_out) *stats_out = stats;
    return r;
  };

  // -A1⁻¹ once per solve: the fixed-point map is R <- (A0 + R² A2)(-A1⁻¹),
  // so folding the sign here saves a negation pass every iteration.
  Matrix neg_a1_inv = linalg::inverse(a1);
  neg_a1_inv *= -1.0;

  // Stage 1: functional iteration (linear convergence; stalls near the
  // stability boundary where sp(R) -> 1).
  const IterationOutcome fi = [&] {
    CSQ_OBS_SPAN("qbd.solve.fi");
    return functional_iteration(a0, neg_a1_inv, a2, opts.tolerance, opts.max_iterations, ws,
                                opts.budget, tally);
  }();
  CSQ_OBS_COUNT_N("qbd.fi.iterations", fi.iterations);
  stats.trail.push_back(std::string("functional_iteration: ") +
                        (fi.converged      ? "converged"
                         : fi.diverged     ? "diverged"
                         : fi.interrupted  ? "interrupted by budget"
                                           : "iteration budget exhausted") +
                        " after " + std::to_string(fi.iterations) +
                        " iterations (last update " + fmt(fi.last_diff) +
                        (tally.extrapolations > 0
                             ? ", " + std::to_string(tally.extrapolations) +
                                   " accepted extrapolation jumps"
                             : "") +
                        ")");
  if (fi.interrupted) throw_interrupted("solve_r/functional_iteration");
  if (fi.converged) return finish(fi.r, RMethod::kFunctionalIteration, fi.iterations);

  if (!opts.allow_fallback) {
    stats.residual = r_residual(a0, a1, a2, fi.r);
    Diagnostics d = stats.to_diagnostics();
    d.iterations = fi.iterations;
    d.tolerance = opts.tolerance;
    d.stage = "functional_iteration";
    if (stats_out) *stats_out = stats;
    if (fi.diverged)
      throw UnstableError("solve_r: iteration diverged (unstable QBD?)", std::move(d));
    throw NotConvergedError("solve_r: functional iteration did not converge",
                            std::move(d));
  }

  // Stage 2: logarithmic reduction (quadratically convergent; also the
  // arbiter of genuine instability — sp(R from G) >= 1 means the chain is
  // not positive recurrent, not that the iteration was unlucky).
  if (opts.budget.interrupted()) throw_interrupted("solve_r/fallback_entry");
  int lr_steps = 0;
  double lr_last = -1.0;
  const Matrix g = solve_g_logred(a0, a1, a2, opts, &lr_steps, &lr_last, &ws);
  const Matrix r_lr = r_from_g(a0, a1, g);
  const double lr_residual = r_residual(a0, a1, a2, r_lr);
  stats.trail.push_back("logarithmic_reduction: " + std::to_string(lr_steps) +
                        " doubling steps, residual " + fmt(lr_residual));
  const double lr_sp = sp_checked(r_lr, "solve_r/logarithmic_reduction");
  if (lr_sp >= 1.0 - 1e-10) {
    stats.residual = lr_residual;
    stats.spectral_radius = lr_sp;
    Diagnostics d = stats.to_diagnostics();
    d.stage = "logarithmic_reduction";
    d.tolerance = opts.tolerance;
    if (stats_out) *stats_out = stats;
    throw UnstableError("solve_r: spectral radius " + fmt(lr_sp) +
                            " >= 1 (QBD not positive recurrent)",
                        std::move(d));
  }
  if (lr_residual <= accept_residual) return finish(r_lr, RMethod::kLogReduction, lr_steps);

  // Stage 3: relaxed-tolerance functional iteration — rescues configs where
  // the update plateaus just above the requested tolerance from rounding.
  const double relaxed_tol = opts.tolerance * opts.fallback_tolerance_factor;
  const IterationOutcome relaxed = [&] {
    CSQ_OBS_SPAN("qbd.solve.relaxed");
    return functional_iteration(a0, neg_a1_inv, a2, relaxed_tol, opts.max_iterations, ws,
                                opts.budget, tally);
  }();
  CSQ_OBS_COUNT_N("qbd.relaxed.iterations", relaxed.iterations);
  stats.trail.push_back(std::string("relaxed_iteration (tol ") + fmt(relaxed_tol) +
                        "): " + (relaxed.converged ? "converged" : "failed") + " after " +
                        std::to_string(relaxed.iterations) + " iterations");
  if (relaxed.interrupted) throw_interrupted("solve_r/relaxed_iteration");
  if (relaxed.converged) return finish(relaxed.r, RMethod::kRelaxedIteration, relaxed.iterations);

  stats.residual = std::min(lr_residual, r_residual(a0, a1, a2, relaxed.r));
  stats.spectral_radius = lr_sp;
  Diagnostics d = stats.to_diagnostics();
  d.iterations = fi.iterations + relaxed.iterations;
  d.tolerance = opts.tolerance;
  d.stage = "fallback_chain";
  if (stats_out) *stats_out = stats;
  throw NotConvergedError(
      "solve_r: fallback chain exhausted (functional iteration, logarithmic "
      "reduction, relaxed retry) without an acceptable R",
      std::move(d));
}

Matrix solve_g_logred(const Matrix& a0, const Matrix& a1, const Matrix& a2,
                      const Options& opts, int* steps_out, double* last_update_out,
                      Workspace* workspace) {
  // Logarithmic reduction (Latouche & Ramaswami 1999, Ch. 8). The doubling
  // loop assembles its products in workspace scratch; the per-step inverse
  // is the only remaining allocation.
  const std::size_t m = a0.rows();
  Workspace local_ws;
  Workspace& ws = workspace ? *workspace : local_ws;
  CSQ_OBS_SPAN("qbd.solve.logred");
  const Matrix neg_a1_inv = linalg::inverse((-1.0) * a1);
  Matrix h = neg_a1_inv * a0;  // "up" probability block
  Matrix l = neg_a1_inv * a2;  // "down" probability block
  Matrix g = l;
  Matrix t = h;
  int steps = 0;
  for (int it = 0; it < 64; ++it) {
    if (opts.budget.interrupted()) {
      Diagnostics d;
      d.iterations = steps;
      d.tolerance = opts.tolerance;
      opts.budget.check("qbd::solve_g_logred", std::move(d));
    }
    CSQ_FAULT_POINT("qbd.logred.iterate");
    linalg::multiply_into_dense(ws.hl, h, l);
    linalg::multiply_into_dense(ws.lh, l, h);
    ws.hl += ws.lh;  // U = HL + LH
    // I - U, built in scratch without a fresh identity.
    ws.lh.reshape_zero(m, m);
    for (std::size_t i = 0; i < m; ++i) ws.lh(i, i) = 1.0;
    ws.lh.add_scaled(ws.hl, -1.0);
    // csq-lint: allow(hot-path-alloc-transitive): log-reduction runs O(log eps) iterations, one fresh inverse per step is not the bottleneck
    const Matrix m2 = linalg::inverse(ws.lh);
    linalg::multiply_into_dense(ws.hh, h, h);
    linalg::multiply_into_dense(ws.ll, l, l);
    linalg::multiply_into_dense(h, m2, ws.hh);  // H <- M2 H²
    linalg::multiply_into_dense(l, m2, ws.ll);  // L <- M2 L²
    linalg::multiply_into_dense(ws.prod, t, l);
    g += ws.prod;  // G += T L'
    linalg::multiply_into_dense(ws.prod, t, h);
    std::swap(t, ws.prod);  // T <- T H'
    steps = it + 1;
    if (t.max_abs() < opts.tolerance) break;
  }
  if (steps_out) *steps_out = steps;
  if (last_update_out) *last_update_out = t.max_abs();
  CSQ_OBS_COUNT_N("qbd.logred.doublings", steps);
  return g;
}

Matrix r_from_g(const Matrix& a0, const Matrix& a1, const Matrix& g) {
  return a0 * linalg::inverse((-1.0) * a1 - a0 * g);
}

std::vector<Matrix> solve_r_batch(const std::vector<RBlocks>& items, const Options& opts,
                                  std::vector<SolveStats>* stats_out) {
  // One workspace for the whole batch: scratch buffers and pattern vectors
  // warm up on the first item and are reused (capacity included) by every
  // subsequent solve.
  Workspace ws;
  std::vector<Matrix> rs;
  rs.reserve(items.size());
  if (stats_out) {
    stats_out->clear();
    stats_out->reserve(items.size());
  }
  for (const RBlocks& blocks : items) {
    SolveStats stats;
    // csq-lint: allow(hot-path-alloc-transitive): batch driver loop — each item's R matrix is the result being returned, not scratch
    rs.push_back(solve_r(blocks.a0, blocks.a1, blocks.a2, opts, &stats, &ws));
    if (stats_out) stats_out->push_back(std::move(stats));
  }
  return rs;
}

Solution solve(const Model& model, const Options& opts, Workspace* workspace) {
  const std::size_t k = model.boundary.size();
  require(k >= 1, "qbd::solve: need at least one boundary level");
  const std::size_t m = model.a0.rows();
  require(model.a1.rows() == m && model.a2.rows() == m && model.first_down.rows() == m,
          "qbd::solve: repeating block shape mismatch");

  // Copy and complete diagonals.
  std::vector<Matrix> local(k);
  for (std::size_t i = 0; i < k; ++i) {
    const BoundaryLevel& b = model.boundary[i];
    const std::size_t bi = b.local.rows();
    require(b.local.cols() == bi, "qbd::solve: boundary local not square");
    if (i == 0)
      require(b.down.empty(), "qbd::solve: level 0 must have no down block");
    else
      require(b.down.rows() == bi && b.down.cols() == model.boundary[i - 1].local.rows(),
              "qbd::solve: boundary down block shape mismatch");
    const std::size_t up_cols = (i + 1 < k) ? model.boundary[i + 1].local.rows() : m;
    require(b.up.rows() == bi && b.up.cols() == up_cols,
            "qbd::solve: boundary up block shape mismatch");
    local[i] = b.local;
    std::vector<const Matrix*> others{&b.up};
    if (i > 0) others.push_back(&b.down);
    fill_diagonal(local[i], others);
  }
  require(model.first_down.cols() == model.boundary[k - 1].local.rows(),
          "qbd::solve: first_down shape mismatch");
  // The repeating diagonal must be level-independent: first_down and a2 must
  // carry the same per-row outflow.
  {
    const std::vector<double> fd = model.first_down.row_sums();
    const std::vector<double> a2s = model.a2.row_sums();
    for (std::size_t i = 0; i < m; ++i)
      require(std::abs(fd[i] - a2s[i]) < 1e-9,
              "qbd::solve: first_down row sums must match a2 row sums");
  }
  Matrix a1 = model.a1;
  {
    std::vector<const Matrix*> others{&model.a0, &model.a2};
    fill_diagonal(a1, others);
  }

  SolveStats stats;
  const Matrix r = solve_r(model.a0, a1, model.a2, opts, &stats, workspace);
  const Matrix i_minus_r_inv = linalg::inverse(Matrix::identity(m) - r);

  // Assemble boundary balance equations. Unknowns x = (pi_0,...,pi_{k-1},pi_K).
  std::vector<std::size_t> offset(k + 1);
  std::size_t n = 0;
  for (std::size_t i = 0; i < k; ++i) {
    offset[i] = n;
    n += local[i].rows();
  }
  offset[k] = n;
  n += m;

  // e[r][c]: coefficient of unknown r in balance equation c (x * E = 0).
  Matrix e(n, n);
  const auto add_block = [&e](std::size_t row0, std::size_t col0, const Matrix& blk) {
    for (std::size_t i = 0; i < blk.rows(); ++i)
      for (std::size_t j = 0; j < blk.cols(); ++j) e(row0 + i, col0 + j) += blk(i, j);
  };
  for (std::size_t i = 0; i < k; ++i) {
    add_block(offset[i], offset[i], local[i]);
    add_block(offset[i], offset[i + 1], model.boundary[i].up);
    if (i > 0) add_block(offset[i], offset[i - 1], model.boundary[i].down);
  }
  // Level K equations: pi_{K-1} U_{K-1} (added above) + pi_K (A1 + R A2).
  add_block(offset[k], offset[k], a1 + r * model.a2);
  // Level K's down-flow into level K-1's equations.
  add_block(offset[k], offset[k - 1], model.first_down);

  // Replace equation 0 with normalization:
  // sum boundary + pi_K (I-R)^{-1} 1 = 1.
  for (std::size_t row = 0; row < n; ++row) e(row, 0) = 0.0;
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < local[i].rows(); ++j) e(offset[i] + j, 0) = 1.0;
  for (std::size_t i = 0; i < m; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < m; ++j) s += i_minus_r_inv(i, j);
    e(offset[k] + i, 0) = s;
  }

  std::vector<double> rhs(n, 0.0);
  rhs[0] = 1.0;
  opts.budget.check("qbd::solve/boundary", stats.to_diagnostics());
  CSQ_FAULT_POINT("qbd.solve.boundary");
  std::vector<double> x;
  {
    CSQ_OBS_SPAN("qbd.solve.boundary");
    const linalg::Lu lu(e.transpose());
    stats.boundary_condition = lu.condition_estimate();
    if (stats.boundary_condition > 1e12)
      stats.trail.push_back("boundary system ill-conditioned (cond ~ " +
                            fmt(stats.boundary_condition) + "); iterative refinement applied");
    x = lu.solve_refined(rhs);
  }

  Solution sol;
  sol.r = r;
  sol.i_minus_r_inv = i_minus_r_inv;
  sol.stats = std::move(stats);
  sol.boundary_pi.resize(k);
  for (std::size_t i = 0; i < k; ++i)
    sol.boundary_pi[i].assign(x.begin() + static_cast<std::ptrdiff_t>(offset[i]),
                              x.begin() + static_cast<std::ptrdiff_t>(offset[i + 1]));
  sol.pi_k.assign(x.begin() + static_cast<std::ptrdiff_t>(offset[k]), x.end());

  if (opts.verify != VerifyLevel::kNone) {
    const SolverStatus v = sol.verify(opts.verify);
    if (!v.ok()) throw VerificationFailedError(v.message, v.diagnostics);
  }
  return sol;
}

}  // namespace csq::qbd
