// The csq_serve core: a bounded-admission, retrying, degrading analysis
// server over the work-stealing solver stack. The csq_serve binary
// (tools/csq_serve.cc) is a thin stdin/stdout shell around this class; every
// behaviour lives here so the deterministic test suite (tests/test_serve.cc)
// can drive it in-process.
//
// Request lifecycle:
//
//   submit(line)
//     ├─ parse            — malformed JSON/schema => immediate InvalidInput
//     │                     response (counted serve.requests.invalid)
//     ├─ admission        — draining, queue at depth, or in-flight cost at
//     │                     the cap => shed with an Overloaded response and
//     │                     a retry_after_ms hint (serve.requests.shed);
//     │                     otherwise enqueue (serve.requests.admitted)
//     ├─ dispatch         — a worker (or process_one() when workers == 0)
//     │                     runs the op under a per-request RunBudget slice
//     │                     derived from the server deadline policy and the
//     │                     request's own timeout_ms, cancellable at drain
//     ├─ retry            — transient failures (NotConverged /
//     │                     IllConditioned) retried up to
//     │                     RetryPolicy::max_attempts with capped
//     │                     exponential backoff + deterministic jitter
//     │                     (serve.requests.retried)
//     ├─ degrade          — a CS-CQ analyze whose retries are exhausted
//     │                     escalates through analyze_resilient() starting
//     │                     at the truncated rung; the response is marked
//     │                     degraded with the attempt trail
//     │                     (serve.requests.degraded) and is NEVER cached
//     └─ respond          — every admitted request gets exactly one
//                           response (serve.requests.completed, or
//                           serve.requests.cancelled when drain cancelled
//                           it)
//
// Caching: exact, verified analyze results only, in an LRU keyed on the
// canonical config identity (serve/cache.h). Degraded, faulted and
// unverified answers never enter it.
//
// Drain: drain() stops admission, waits up to drain_timeout_ms for in-flight
// work, then cancels the stragglers (their budgets' cancel tokens fire) and
// answers every still-queued request with Cancelled. Idempotent; the
// destructor drains. Counter balance after drain, asserted by the soak
// suite: received == admitted + shed + invalid and
// admitted == completed + cancelled.
//
// Determinism: responses carry no timestamps or elapsed times, and deadline/
// cancel failures are normalized to fixed messages, so a response depends
// only on the request content — bit-identical across worker counts.
//
// Durability: with ServerOptions::journal set, admission write-aheads the
// request line and finish() journals the response before delivering it
// (docs/serving.md §9). submit_recovered() re-admits journal replays under
// their original sequence numbers. Because responses are deterministic,
// re-executing a request that crashed mid-flight reproduces the exact bytes
// a completed journal record would have replayed.
//
// Fault sites (compiled under -DCSQ_FAULT_INJECTION): serve.admission.shed
// (admission decision), serve.dispatch.run (per attempt, at execution
// start), serve.cache.insert (in SolverCache).
//
// Thread-safety: submit()/call()/drain()/stats() are safe from any thread.
//
// Throws csq::InvalidInputError (malformed ServerOptions at construction)
// and csq::InternalError only on unreachable-state bugs. Errors raised while
// serving a request — including the internally thrown csq::OverloadedError
// at the admission gate — never escape: they become error responses.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/deadline.h"
#include "core/status.h"
#include "durable/journal.h"
#include "serve/backoff.h"
#include "serve/cache.h"
#include "serve/request.h"

namespace csq::serve {

struct ServerOptions {
  // Worker threads executing requests. 0 = caller-driven: nothing executes
  // until process_one() is called (deterministic single-threaded tests).
  int workers = 2;
  // Admission bounds: pending (not yet running) requests beyond this depth
  // are shed, as is any request that would push the summed cost() of
  // pending + running work past max_inflight_cost.
  std::size_t queue_depth = 64;
  double max_inflight_cost = 1024.0;
  // Default per-request budget in ms; <= 0 = unlimited. A request's own
  // timeout_ms (>= 0) tightens but never extends this.
  double request_timeout_ms = 10000.0;
  // Grace for in-flight work during drain before cancellation, in ms.
  double drain_timeout_ms = 2000.0;
  // Base for the retry_after_ms hint on shed responses: hint = base *
  // (1 + pending depth at the shed decision).
  double shed_retry_after_ms = 10.0;
  std::size_t cache_capacity = 256;
  RetryPolicy retry;
  // Threads handed to sweep/replication execution inside one request
  // (sweeps and simulations parallelize internally; keep 1 unless the
  // server itself runs few workers).
  int op_threads = 1;
  // Escalate exhausted CS-CQ analyzes through the degradation ladder
  // instead of failing them.
  bool allow_degraded = true;
  // When set, invoked (serialized by an internal mutex) with every finished
  // response line — the binary's stdout writer. Tickets are completed
  // either way. Never invoked for the empty responses of a suppressed
  // invalid burst.
  std::function<void(const std::string&)> sink;
  // Write-ahead journal (durable/journal.h). When set, every admitted
  // request is appended under the admission lock *before* it becomes
  // runnable, and its response is appended before delivery — so a crash
  // never silently drops an admitted request and recovery can re-answer
  // completed ones bit-identically. An append failure at admission refuses
  // the request with an error response. Non-owning: the journal must
  // outlive the server (the binary owns it so it can flush after drain).
  durable::Journal* journal = nullptr;
  // Bounded malformed-line handling: this many consecutive invalid NDJSON
  // lines are answered individually; the limit-th answer announces the
  // suppression (one serve.codec.invalid_burst bump), and further invalid
  // lines resolve their tickets with an empty response that never reaches
  // the sink. Any well-formed line resets the run. 0 = answer every line.
  int invalid_burst_limit = 8;
};

// Completion handle for one submitted request.
class Ticket {
 public:
  // Blocks until the response is ready and returns it (one line, no '\n').
  [[nodiscard]] const std::string& wait();
  [[nodiscard]] bool done() const;

 private:
  friend class Server;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::string response_;
};

class Server {
 public:
  explicit Server(ServerOptions opts = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Admit one NDJSON request line. Always returns a ticket that will
  // resolve to exactly one well-formed response (immediately for parse
  // failures and sheds).
  std::shared_ptr<Ticket> submit(const std::string& line);

  // Re-admit a request recovered from the write-ahead journal under its
  // original sequence number `seq` (durable::RecoveredRequest::seq). Unlike
  // submit() it bypasses the depth/cost shed decision — the request was
  // already admitted in a previous life — and appends no new request
  // record; the response is journaled against `seq`, so a second crash and
  // recovery sees it completed. Counted in Stats::recovered.
  std::shared_ptr<Ticket> submit_recovered(const std::string& line, std::uint64_t seq);

  // Synchronous convenience: submit and wait. With workers == 0 the request
  // is executed on the calling thread.
  [[nodiscard]] std::string call(const std::string& line);

  // workers == 0 mode: execute the oldest pending request on the calling
  // thread. Returns false when nothing was pending.
  bool process_one();

  // Stop admitting, give in-flight work drain_timeout_ms, cancel the rest.
  // Idempotent; safe from signal-adjacent contexts (not async-signal-safe —
  // call from the main loop after a flag, not from the handler).
  void drain();

  [[nodiscard]] bool draining() const;

  // Lifetime request tallies (local mirrors of the serve.requests.*
  // counters, available in -DCSQ_OBS=OFF builds).
  struct Stats {
    std::int64_t received = 0;
    std::int64_t admitted = 0;
    std::int64_t shed = 0;
    std::int64_t invalid = 0;
    std::int64_t completed = 0;
    std::int64_t cancelled = 0;
    std::int64_t retried = 0;
    std::int64_t degraded = 0;
    std::int64_t recovered = 0;           // journal replays re-admitted
    std::int64_t invalid_suppressed = 0;  // burst-suppressed invalid lines
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] SolverCache::Stats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] std::size_t pending() const;

 private:
  struct Pending {
    Request request;
    std::string raw_id;
    std::string raw_line;  // journaled verbatim on admission
    double cost = 0.0;
    std::uint64_t journal_seq = 0;
    bool journaled = false;  // response must be appended against journal_seq
    CancelToken cancel;
    std::shared_ptr<Ticket> ticket;
  };

  // Admission gate: throws csq::OverloadedError (caught in submit) when the
  // request must be shed; otherwise journals (write-ahead) and enqueues it.
  // `recovered` skips the depth/cost shed decision and the request append.
  void admit(const std::shared_ptr<Pending>& p, bool recovered = false);
  void note_invalid();
  // Complete a never-admitted request (parse failure, shed) inline.
  void respond_inline(const std::shared_ptr<Ticket>& ticket, const std::string& response);
  void execute(const std::shared_ptr<Pending>& p);
  // Drives the analysis under the request budget. Analysis failures escape
  // to execute(), which converts them to taxonomy responses:
  // csq::UnstableError, csq::NotConvergedError, csq::IllConditionedError,
  // csq::VerificationFailedError from the solver chain, and
  // csq::DeadlineExceededError / csq::CancelledError when the request
  // budget interrupts a retry.
  std::string run_with_retries(const Pending& p, const RunBudget& budget);
  std::string execute_op(const Request& req, const RunBudget& budget, ResponseExtras* extras);
  std::string run_resilient(const Request& req, const RunBudget& budget,
                            ResponseExtras* extras, bool skip_exact);
  void finish(const std::shared_ptr<Pending>& p, const std::string& response, bool cancelled);
  void deliver(const std::shared_ptr<Ticket>& ticket, const std::string& response);
  void note_degraded();
  void update_depth_gauge();
  void worker_loop();
  [[nodiscard]] RunBudget request_budget(const Pending& p) const;

  ServerOptions opts_;
  SolverCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: pending_ non-empty or stopping
  std::condition_variable drain_cv_;  // drain(): pending empty and running == 0
  std::deque<std::shared_ptr<Pending>> pending_;
  std::vector<std::shared_ptr<Pending>> running_;
  bool draining_ = false;
  bool stop_ = false;
  double inflight_cost_ = 0.0;
  int invalid_run_ = 0;  // consecutive malformed lines (burst bounding)
  Stats stats_;

  std::mutex sink_mu_;
  std::vector<std::thread> workers_;
};

}  // namespace csq::serve
