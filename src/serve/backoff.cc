#include "serve/backoff.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace csq::serve {

void RetryPolicy::validate() const {
  if (max_attempts < 1)
    throw InvalidInputError("RetryPolicy: max_attempts must be >= 1");
  if (!(base_delay_ms >= 0.0) || !std::isfinite(base_delay_ms))
    throw InvalidInputError("RetryPolicy: base_delay_ms must be finite and >= 0");
  if (!(multiplier >= 1.0) || !std::isfinite(multiplier))
    throw InvalidInputError("RetryPolicy: multiplier must be finite and >= 1");
  if (!(max_delay_ms >= base_delay_ms) || !std::isfinite(max_delay_ms))
    throw InvalidInputError("RetryPolicy: max_delay_ms must be finite and >= base_delay_ms");
  if (!(jitter_fraction >= 0.0) || !(jitter_fraction < 1.0))
    throw InvalidInputError("RetryPolicy: jitter_fraction must be in [0, 1)");
}

bool transient(ErrorCode code) {
  return code == ErrorCode::kNotConverged || code == ErrorCode::kIllConditioned;
}

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

double backoff_delay_ms(const RetryPolicy& policy, const std::string& key, int retry) {
  policy.validate();
  if (retry < 1) throw InvalidInputError("backoff_delay_ms: retry must be >= 1");
  const double exponential =
      policy.base_delay_ms * std::pow(policy.multiplier, static_cast<double>(retry - 1));
  const double capped = std::min(exponential, policy.max_delay_ms);
  // Hash -> uniform in [1 - j, 1 + j): top 53 bits as a double in [0, 1).
  const std::uint64_t h = fnv1a(key + "#" + std::to_string(retry));
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return capped * (1.0 - policy.jitter_fraction + 2.0 * policy.jitter_fraction * unit);
}

}  // namespace csq::serve
