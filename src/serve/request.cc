#include "serve/request.h"

#include <cmath>
#include <set>
#include <utility>

#include "serve/json.h"
#include "sim/simulator.h"

namespace csq::serve {

const char* op_name(OpKind op) {
  switch (op) {
    case OpKind::kPing: return "ping";
    case OpKind::kAnalyze: return "analyze";
    case OpKind::kSweep: return "sweep";
    case OpKind::kSimulate: return "simulate";
  }
  return "?";
}

namespace {

// Fields every op accepts, plus the per-op extensions. Unknown fields are
// rejected outright: a typoed "rho_i" silently defaulting to 0 would return
// a confidently wrong answer.
const std::set<std::string>& allowed_fields(OpKind op) {
  static const std::set<std::string> ping = {"id", "op"};
  static const std::set<std::string> analyze = {
      "id", "op", "policy", "rho_s", "rho_l", "mean_s", "mean_l",
      "scv_l", "verify", "timeout_ms", "resilient"};
  static const std::set<std::string> sweep = {
      "id", "op", "policy", "axis", "from", "to", "points", "rho_s",
      "rho_l", "mean_s", "mean_l", "scv_l", "timeout_ms"};
  static const std::set<std::string> simulate = {
      "id", "op", "policy", "rho_s", "rho_l", "mean_s", "mean_l", "scv_l",
      "timeout_ms", "seed", "completions", "replications", "sim_policy", "dist"};
  switch (op) {
    case OpKind::kPing: return ping;
    case OpKind::kAnalyze: return analyze;
    case OpKind::kSweep: return sweep;
    case OpKind::kSimulate: return simulate;
  }
  return ping;
}

double number_field(const JsonValue& obj, const char* key, double fallback) {
  const JsonValue* v = obj.find(key);
  return v == nullptr ? fallback : v->as_number(key);
}

double positive_field(const JsonValue& obj, const char* key, double fallback) {
  const double v = number_field(obj, key, fallback);
  if (!(v > 0.0) || !std::isfinite(v))
    throw InvalidInputError(std::string("field \"") + key + "\" must be a positive number");
  return v;
}

double load_field(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr)
    throw InvalidInputError(std::string("missing required field \"") + key + "\"");
  const double load = v->as_number(key);
  if (!std::isfinite(load) || load < 0.0)
    throw InvalidInputError(std::string("field \"") + key +
                            "\" must be a finite nonnegative load");
  return load;
}

int int_field(const JsonValue& obj, const char* key, int fallback, int lo, int hi) {
  const double v = number_field(obj, key, fallback);
  const double rounded = std::floor(v);
  if (rounded != v ||  // csq-lint: allow(no-float-eq): integrality check on a parsed count, not a tolerance comparison
      v < lo || v > hi)
    throw InvalidInputError(std::string("field \"") + key + "\" must be an integer in [" +
                            std::to_string(lo) + ", " + std::to_string(hi) + "]");
  return static_cast<int>(v);
}

Policy policy_field(const JsonValue& obj) {
  const JsonValue* v = obj.find("policy");
  if (v == nullptr) return Policy::kCsCq;
  const std::string& name = v->as_string("policy");
  if (name == "dedicated") return Policy::kDedicated;
  if (name == "csid") return Policy::kCsId;
  if (name == "cscq") return Policy::kCsCq;
  throw InvalidInputError("field \"policy\" must be one of dedicated|csid|cscq, got \"" +
                          name + "\"");
}

VerifyLevel verify_field(const JsonValue& obj) {
  const JsonValue* v = obj.find("verify");
  if (v == nullptr) return VerifyLevel::kBasic;
  const std::string& name = v->as_string("verify");
  if (name == "none") return VerifyLevel::kNone;
  if (name == "basic") return VerifyLevel::kBasic;
  if (name == "full") return VerifyLevel::kFull;
  throw InvalidInputError("field \"verify\" must be one of none|basic|full, got \"" + name +
                          "\"");
}

const char* verify_name(VerifyLevel v) {
  switch (v) {
    case VerifyLevel::kNone: return "none";
    case VerifyLevel::kBasic: return "basic";
    case VerifyLevel::kFull: return "full";
  }
  return "?";
}

void parse_workload(const JsonValue& obj, Request* req) {
  req->rho_s = load_field(obj, "rho_s");
  req->rho_l = load_field(obj, "rho_l");
  req->mean_s = positive_field(obj, "mean_s", 1.0);
  req->mean_l = positive_field(obj, "mean_l", 1.0);
  req->scv_l = positive_field(obj, "scv_l", 1.0);
  if (req->scv_l < 1.0)
    throw InvalidInputError("field \"scv_l\" must be >= 1 (two-moment Coxian fit)");
}

}  // namespace

Request parse_request(const std::string& line) {
  const JsonValue root = parse_json(line);
  if (!root.is_object()) throw InvalidInputError("request must be a JSON object");

  Request req;
  if (const JsonValue* id = root.find("id"); id != nullptr)
    req.id = id->as_string("id");
  if (req.id.size() > 256) throw InvalidInputError("field \"id\" longer than 256 bytes");

  const JsonValue* opv = root.find("op");
  if (opv == nullptr) throw InvalidInputError("missing required field \"op\"");
  const std::string& op = opv->as_string("op");
  if (op == "ping") req.op = OpKind::kPing;
  else if (op == "analyze") req.op = OpKind::kAnalyze;
  else if (op == "sweep") req.op = OpKind::kSweep;
  else if (op == "simulate") req.op = OpKind::kSimulate;
  else
    throw InvalidInputError("field \"op\" must be one of ping|analyze|sweep|simulate, got \"" +
                            op + "\"");

  const std::set<std::string>& allowed = allowed_fields(req.op);
  for (const std::string& key : root.keys())
    if (allowed.find(key) == allowed.end())
      throw InvalidInputError("unknown field \"" + key + "\" for op \"" + op + "\"");

  req.timeout_ms = number_field(root, "timeout_ms", -1.0);
  if (std::isnan(req.timeout_ms))
    throw InvalidInputError("field \"timeout_ms\" must not be NaN");

  switch (req.op) {
    case OpKind::kPing:
      break;
    case OpKind::kAnalyze: {
      req.policy = policy_field(root);
      req.verify = verify_field(root);
      parse_workload(root, &req);
      if (const JsonValue* r = root.find("resilient"); r != nullptr)
        req.resilient = r->as_bool("resilient");
      if (req.resilient && req.policy != Policy::kCsCq)
        throw InvalidInputError("resilient analysis is only available for policy \"cscq\"");
      break;
    }
    case OpKind::kSweep: {
      req.policy = policy_field(root);
      if (const JsonValue* a = root.find("axis"); a != nullptr) {
        const std::string& axis = a->as_string("axis");
        if (axis == "rho_s") req.axis = SweepAxis::kRhoShort;
        else if (axis == "rho_l") req.axis = SweepAxis::kRhoLong;
        else
          throw InvalidInputError("field \"axis\" must be rho_s or rho_l, got \"" + axis +
                                  "\"");
      }
      // Only the fixed axis is required; the swept one comes from from/to.
      const char* fixed = req.axis == SweepAxis::kRhoShort ? "rho_l" : "rho_s";
      const double fixed_load = load_field(root, fixed);
      if (req.axis == SweepAxis::kRhoShort) req.rho_l = fixed_load;
      else req.rho_s = fixed_load;
      req.mean_s = positive_field(root, "mean_s", 1.0);
      req.mean_l = positive_field(root, "mean_l", 1.0);
      req.scv_l = positive_field(root, "scv_l", 1.0);
      const JsonValue* from = root.find("from");
      if (from == nullptr) throw InvalidInputError("missing required field \"from\"");
      req.from = from->as_number("from");
      if (!(req.from > 0.0) || !std::isfinite(req.from))
        throw InvalidInputError("field \"from\" must be a positive number");
      const JsonValue* to = root.find("to");
      if (to == nullptr) throw InvalidInputError("missing required field \"to\"");
      req.to = to->as_number("to");
      if (!(req.to >= req.from) || !std::isfinite(req.to))
        throw InvalidInputError("field \"to\" must be a finite number >= \"from\"");
      if (root.find("points") == nullptr)
        throw InvalidInputError("missing required field \"points\"");
      req.points = int_field(root, "points", 0, 1, 512);
      break;
    }
    case OpKind::kSimulate: {
      req.policy = policy_field(root);
      parse_workload(root, &req);
      const double seed = number_field(root, "seed", 20030701.0);
      if (seed < 0 || seed > 9.0e15 ||
          std::floor(seed) != seed)  // csq-lint: allow(no-float-eq): integrality check on a parsed seed, not a tolerance comparison
        throw InvalidInputError("field \"seed\" must be a nonnegative integer");
      req.seed = static_cast<std::uint64_t>(seed);
      req.completions = int_field(root, "completions", 20000, 1000, 2000000);
      req.replications = int_field(root, "replications", 4, 1, 64);
      // Policy-zoo extensions. Both are validated here, at parse time, so a
      // typoed token fails the request (listing the valid tokens) instead of
      // silently defaulting to CS-CQ under exponential longs.
      if (const JsonValue* sp = root.find("sim_policy"); sp != nullptr) {
        req.sim_policy = sp->as_string("sim_policy");
        (void)sim::policy_kind_from_token(req.sim_policy);
      }
      if (const JsonValue* dv = root.find("dist"); dv != nullptr) {
        req.dist = dv->as_string("dist");
        (void)job_size_dist_from_name(req.dist);
      }
      break;
    }
  }
  return req;
}

double Request::cost() const {
  switch (op) {
    case OpKind::kPing: return 0.0;
    case OpKind::kAnalyze: return 1.0;
    case OpKind::kSweep: return static_cast<double>(points);
    case OpKind::kSimulate:
      // One analyze-equivalent per 100k simulated completions per replication.
      return std::max(1.0, static_cast<double>(completions) * replications / 100000.0);
  }
  return 1.0;
}

SystemConfig Request::config() const {
  if (dist.empty()) return SystemConfig::paper_setup(rho_s, rho_l, mean_s, mean_l, scv_l);
  // "dist" selects the long-size family through the same builder as the
  // CLI's --dist flag, so "bpareto" names the identical distribution on
  // both surfaces.
  return panel_workload(job_size_dist_from_name(dist), rho_s, rho_l, mean_s, mean_l,
                        scv_l);
}

std::string Request::cache_key() const {
  return canonical_key(config()) + "|policy=" + policy_label(policy) +
         "|verify=" + verify_name(verify);
}

namespace {

void append_field(std::string* out, const char* key, const std::string& value_json) {
  *out += ",\"";
  *out += key;
  *out += "\":";
  *out += value_json;
}

std::string quoted(const std::string& s) { return "\"" + json_escape(s) + "\""; }

std::string response_prefix(const std::string& id, bool ok) {
  return "{\"id\":" + quoted(id) + ",\"ok\":" + (ok ? "true" : "false");
}

void append_extras(std::string* out, const ResponseExtras& extras) {
  if (extras.retries > 0)
    append_field(out, "retries", std::to_string(extras.retries));
  if (extras.degraded) {
    append_field(out, "degraded", "true");
    append_field(out, "rung", quoted(extras.rung));
  }
  if (!extras.attempts.empty()) {
    std::string trail = "[";
    for (std::size_t i = 0; i < extras.attempts.size(); ++i) {
      if (i > 0) trail += ",";
      trail += quoted(extras.attempts[i]);
    }
    trail += "]";
    append_field(out, "attempts", trail);
  }
}

std::string class_metrics_json(const ClassMetrics& c) {
  return "{\"mean_response\":" + json_number(c.mean_response) +
         ",\"mean_wait\":" + json_number(c.mean_wait) +
         ",\"mean_number\":" + json_number(c.mean_number) + "}";
}

}  // namespace

std::string ok_response(const Request& req, const std::string& result_json,
                        const ResponseExtras& extras) {
  std::string out = response_prefix(req.id, true);
  append_field(&out, "op", quoted(op_name(req.op)));
  append_field(&out, "result", result_json);
  append_extras(&out, extras);
  out += "}";
  return out;
}

std::string error_response(const std::string& id, ErrorCode code, const std::string& message,
                           double retry_after_ms, int retries) {
  std::string out = response_prefix(id, false);
  std::string err = "{\"code\":" + quoted(error_code_name(code)) +
                    ",\"message\":" + quoted(message);
  if (retry_after_ms >= 0.0) err += ",\"retry_after_ms\":" + json_number(retry_after_ms);
  err += "}";
  append_field(&out, "error", err);
  if (retries > 0) append_field(&out, "retries", std::to_string(retries));
  out += "}";
  return out;
}

std::string metrics_json(const PolicyMetrics& m) {
  return "{\"shorts\":" + class_metrics_json(m.shorts) +
         ",\"longs\":" + class_metrics_json(m.longs) + "}";
}

std::string sweep_json(const std::vector<SweepRow>& rows) {
  std::string out = "{\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    if (i > 0) out += ",";
    out += "{\"x\":" + json_number(r.x);
    out += ",\"dedicated_short\":" + json_number(r.dedicated_short);
    out += ",\"csid_short\":" + json_number(r.csid_short);
    out += ",\"cscq_short\":" + json_number(r.cscq_short);
    out += ",\"dedicated_long\":" + json_number(r.dedicated_long);
    out += ",\"csid_long\":" + json_number(r.csid_long);
    out += ",\"cscq_long\":" + json_number(r.cscq_long);
    out += ",\"dedicated_status\":" + quoted(point_status_name(r.dedicated_status));
    out += ",\"csid_status\":" + quoted(point_status_name(r.csid_status));
    out += ",\"cscq_status\":" + quoted(point_status_name(r.cscq_status));
    out += "}";
  }
  out += "]}";
  return out;
}

std::string simulate_json(const ClassMetrics& shorts, double ci_short,
                          const ClassMetrics& longs, double ci_long, int replications) {
  return "{\"shorts\":" + class_metrics_json(shorts) + ",\"ci95_short\":" +
         json_number(ci_short) + ",\"longs\":" + class_metrics_json(longs) +
         ",\"ci95_long\":" + json_number(ci_long) +
         ",\"replications\":" + std::to_string(replications) + "}";
}

}  // namespace csq::serve
