#include "serve/cache.h"

#include "core/faultpoint.h"
#include "obs/obs.h"

namespace csq::serve {

std::optional<PolicyMetrics> SolverCache::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    CSQ_OBS_COUNT("serve.cache.misses");
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  CSQ_OBS_COUNT("serve.cache.hits");
  return it->second->second;
}

void SolverCache::insert(const std::string& key, const PolicyMetrics& metrics) {
  // Fires before the lock and before any mutation: an armed fault here
  // must leave the cache exactly as it was.
  CSQ_FAULT_POINT("serve.cache.insert");
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->second = metrics;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
    CSQ_OBS_COUNT("serve.cache.evictions");
  }
  lru_.emplace_front(key, metrics);
  index_[key] = lru_.begin();
  ++stats_.inserts;
  CSQ_OBS_COUNT("serve.cache.inserts");
}

std::size_t SolverCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

SolverCache::Stats SolverCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SolverCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace csq::serve
