// Request parsing and response serialization for the csq_serve protocol.
//
// The wire format is newline-delimited JSON (NDJSON): one request object per
// line in, one response object per line out. The full schema is documented
// in docs/serving.md; the shape in brief:
//
//   {"id":"r1","op":"analyze","policy":"cscq","rho_s":0.9,"rho_l":0.5}
//   {"id":"r2","op":"sweep","axis":"rho_s","from":0.1,"to":1.3,"points":25,
//    "rho_l":0.5}
//   {"id":"r3","op":"simulate","rho_s":0.9,"rho_l":0.5,"completions":20000,
//    "replications":4,"seed":1,"sim_policy":"steal-half","dist":"bpareto"}
//   {"id":"r4","op":"ping"}
//
// Parsing is strict: unknown top-level fields, wrong-kind values and
// out-of-range parameters all raise InvalidInput — a central queue that
// guesses what a malformed request meant is a central queue that melts down
// politely. Responses are built by the helpers below and are deliberately
// free of timestamps and elapsed times so a response depends only on the
// request content (the soak suite asserts bit-identical responses across
// server thread counts).
//
// Throws csq::InvalidInputError (malformed or out-of-range requests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/solver.h"
#include "core/status.h"
#include "core/sweep.h"

namespace csq::serve {

enum class OpKind { kPing, kAnalyze, kSweep, kSimulate };

// "ping", "analyze", "sweep", "simulate".
[[nodiscard]] const char* op_name(OpKind op);

// Sweep axis: vary rho_S at fixed rho_L, or the reverse.
enum class SweepAxis { kRhoShort, kRhoLong };

// One parsed request. Field defaults are the protocol defaults; a Request
// produced by parse_request() has already passed range validation.
struct Request {
  std::string id;  // echoed verbatim in the response ("" when absent)
  OpKind op = OpKind::kPing;

  // Workload (analyze/simulate; sweep uses the fixed-axis subset).
  Policy policy = Policy::kCsCq;
  double rho_s = 0.0;
  double rho_l = 0.0;
  double mean_s = 1.0;
  double mean_l = 1.0;
  double scv_l = 1.0;
  VerifyLevel verify = VerifyLevel::kBasic;

  // Per-request deadline in ms; < 0 means "server default". 0 is honoured
  // as an already-expired budget (useful for deadline testing).
  double timeout_ms = -1.0;

  // analyze only: run the degradation ladder directly instead of the exact
  // analysis (the server also escalates to the ladder on its own after the
  // retry budget is spent).
  bool resilient = false;

  // sweep only.
  SweepAxis axis = SweepAxis::kRhoShort;
  double from = 0.0;
  double to = 0.0;
  int points = 0;

  // simulate only.
  std::uint64_t seed = 20030701;
  int completions = 20000;
  int replications = 4;
  // Optional "sim_policy": any sim::policy_registry() token ("steal-half",
  // "jiq", ...), overriding the analytic-policy mapping — this is how the
  // policy zoo is served. Empty = derive from `policy` (legacy behaviour).
  std::string sim_policy;
  // Optional "dist": long-size family name ("exp"|"coxian"|"bpareto",
  // csq::job_size_dist_from_name). Empty = the paper_setup workload shaped
  // by scv_l alone (legacy behaviour).
  std::string dist;

  // Admission-control weight in abstract cost units: an analyze is 1, a
  // sweep costs its point count, a simulation scales with total simulated
  // completions. Used against ServerOptions::max_inflight_cost.
  [[nodiscard]] double cost() const;

  // The workload as a SystemConfig (paper_setup shape: exponential shorts,
  // exponential or two-moment-Coxian longs).
  [[nodiscard]] SystemConfig config() const;

  // Memo-cache identity: canonical_key(config()) extended with the policy
  // and verify level. Only meaningful for op == kAnalyze.
  [[nodiscard]] std::string cache_key() const;
};

// Parse one NDJSON request line. Throws csq::InvalidInputError naming the
// offending field on any schema violation.
[[nodiscard]] Request parse_request(const std::string& line);

// Extra response annotations accumulated by the server while executing a
// request: retry count, degradation rung, attempt trail.
struct ResponseExtras {
  int retries = 0;            // transient failures retried before the answer
  bool degraded = false;      // answer came from a fallback rung
  std::string rung;           // rung_name() of the rung that held (degraded)
  std::vector<std::string> attempts;  // human-readable ladder/retry trail
};

// {"id":...,"ok":true,"op":...,"result":<result_json>} plus any extras.
// `result_json` must already be a serialized JSON value.
[[nodiscard]] std::string ok_response(const Request& req, const std::string& result_json,
                                      const ResponseExtras& extras = {});

// {"id":...,"ok":false,"error":{"code":...,"message":...}}; retry_after_ms
// is emitted when >= 0 (Overloaded responses), retries when > 0.
[[nodiscard]] std::string error_response(const std::string& id, ErrorCode code,
                                         const std::string& message,
                                         double retry_after_ms = -1.0, int retries = 0);

// Result payload builders (serialized JSON values for ok_response).
[[nodiscard]] std::string metrics_json(const PolicyMetrics& m);
[[nodiscard]] std::string sweep_json(const std::vector<SweepRow>& rows);
[[nodiscard]] std::string simulate_json(const ClassMetrics& shorts, double ci_short,
                                        const ClassMetrics& longs, double ci_long,
                                        int replications);

}  // namespace csq::serve
