#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <utility>

#include "analysis/resilient.h"
#include "core/faultpoint.h"
#include "core/solver.h"
#include "core/sweep.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "qbd/qbd.h"
#include "serve/json.h"
#include "sim/simulator.h"

namespace csq::serve {
namespace {

// Best-effort id recovery for lines that fail schema validation: when the
// line is at least a JSON object with a sane string "id", the error response
// echoes it so the client can still match the rejection to its request.
[[nodiscard]] std::string recover_id(const std::string& line) {
  try {
    const JsonValue root = parse_json(line);
    if (!root.is_object()) return "";
    const JsonValue* id = root.find("id");
    if (id == nullptr || !id->is_string()) return "";
    const std::string& s = id->as_string("id");
    return s.size() <= 256 ? s : "";
  } catch (const Error&) {
    return "";
  }
}

}  // namespace

const std::string& Ticket::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return response_;
}

bool Ticket::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

Server::Server(ServerOptions opts) : opts_(std::move(opts)), cache_(opts_.cache_capacity) {
  if (opts_.workers < 0 || opts_.workers > 256)
    throw InvalidInputError("ServerOptions: workers must be in [0, 256]");
  if (opts_.queue_depth < 1)
    throw InvalidInputError("ServerOptions: queue_depth must be >= 1");
  if (!(opts_.max_inflight_cost > 0.0))
    throw InvalidInputError("ServerOptions: max_inflight_cost must be > 0");
  if (std::isnan(opts_.request_timeout_ms) || std::isnan(opts_.drain_timeout_ms))
    throw InvalidInputError("ServerOptions: timeouts must not be NaN");
  if (opts_.op_threads < 0)
    throw InvalidInputError("ServerOptions: op_threads must be >= 0");
  opts_.retry.validate();
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

Server::~Server() { drain(); }

std::shared_ptr<Ticket> Server::submit(const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.received;
  }
  CSQ_OBS_COUNT("serve.requests.received");

  auto ticket = std::make_shared<Ticket>();
  auto pending = std::make_shared<Pending>();
  pending->ticket = ticket;
  pending->raw_line = line;
  try {
    pending->request = parse_request(line);
  } catch (const Error& e) {
    const SolverStatus st = e.status();
    note_invalid();
    int run = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (opts_.invalid_burst_limit > 0) {
        run = ++invalid_run_;
        if (run > opts_.invalid_burst_limit) ++stats_.invalid_suppressed;
      }
    }
    if (run > 0 && run == opts_.invalid_burst_limit) {
      // The burst boundary: one response announces the suppression; the
      // garbage that follows is counted but no longer answered line-by-line.
      CSQ_OBS_COUNT("serve.codec.invalid_burst");
      respond_inline(ticket,
                     error_response(recover_id(line), st.code,
                                    std::to_string(run) +
                                        " consecutive malformed lines — suppressing "
                                        "further per-line error responses until a "
                                        "well-formed line arrives"));
    } else if (run > opts_.invalid_burst_limit && opts_.invalid_burst_limit > 0) {
      // Mid-burst: resolve the ticket (empty response, skipped by the sink).
      respond_inline(ticket, "");
    } else {
      respond_inline(ticket, error_response(recover_id(line), st.code, st.message));
    }
    return ticket;
  }
  {
    // A well-formed line ends any malformed-line burst.
    std::lock_guard<std::mutex> lock(mu_);
    invalid_run_ = 0;
  }
  pending->raw_id = pending->request.id;
  pending->cost = pending->request.cost();

  try {
    admit(pending);
  } catch (const Error& e) {
    const SolverStatus st = e.status();
    if (st.code == ErrorCode::kOverloaded) {
      double hint = 0.0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.shed;
        hint = opts_.shed_retry_after_ms * (1.0 + static_cast<double>(pending_.size()));
      }
      CSQ_OBS_COUNT("serve.requests.shed");
      respond_inline(ticket, error_response(pending->raw_id, st.code, st.message, hint));
    } else {
      // A non-overload failure at the admission gate (an armed fault with a
      // different code, or a write-ahead journal append that failed): answer
      // it inline as invalid rather than crash. The client learns its
      // request was refused — never a silent drop.
      note_invalid();
      respond_inline(ticket, error_response(pending->raw_id, st.code, st.message));
    }
  }
  return ticket;
}

std::shared_ptr<Ticket> Server::submit_recovered(const std::string& line,
                                                 std::uint64_t seq) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.received;
    ++stats_.recovered;
  }
  CSQ_OBS_COUNT("serve.requests.recovered");
  auto ticket = std::make_shared<Ticket>();
  auto pending = std::make_shared<Pending>();
  pending->ticket = ticket;
  pending->raw_line = line;
  pending->journal_seq = seq;
  // The response still gets journaled against the original seq, so a second
  // crash + recovery sees this request completed instead of re-running it.
  pending->journaled = opts_.journal != nullptr;
  try {
    pending->request = parse_request(line);
  } catch (const Error& e) {
    // Journaled requests parsed successfully before the crash; failing now
    // means the file was edited. Still answer the ticket.
    const SolverStatus st = e.status();
    note_invalid();
    respond_inline(ticket, error_response(recover_id(line), st.code, st.message));
    return ticket;
  }
  pending->raw_id = pending->request.id;
  pending->cost = pending->request.cost();
  try {
    admit(pending, /*recovered=*/true);
  } catch (const Error& e) {
    // Only a draining server or an armed admission fault can get here (the
    // shed decision is bypassed): answer inline, never drop.
    const SolverStatus st = e.status();
    note_invalid();
    respond_inline(ticket, error_response(pending->raw_id, st.code, st.message));
  }
  return ticket;
}

void Server::note_invalid() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.invalid;
  }
  CSQ_OBS_COUNT("serve.requests.invalid");
}

void Server::admit(const std::shared_ptr<Pending>& p, bool recovered) {
  // Fires before the depth/cost decision so chaos tests can force a shed
  // (armed with throw:Overloaded) or a gate failure with any other code.
  CSQ_FAULT_POINT("serve.admission.shed");
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_)
    throw OverloadedError("server draining: not admitting new requests");
  if (!recovered) {
    // Journal replays bypass the shed decision: they were admitted in a
    // previous life, and refusing them now would break exactly-one-response.
    if (pending_.size() >= opts_.queue_depth)
      throw OverloadedError("request queue at depth limit " +
                            std::to_string(opts_.queue_depth));
    if (inflight_cost_ + p->cost > opts_.max_inflight_cost)
      throw OverloadedError("in-flight cost " + std::to_string(inflight_cost_) + " + " +
                            std::to_string(p->cost) + " exceeds limit " +
                            std::to_string(opts_.max_inflight_cost));
  }
  if (opts_.journal != nullptr && !p->journaled) {
    // Write-ahead: the request record must be durable before the request
    // can run. A throw here (full disk, armed durable.journal.append)
    // escapes to submit(), which refuses the request with an error
    // response — the client is told, nothing is silently dropped.
    p->journal_seq = opts_.journal->append_request(p->raw_line);
    p->journaled = true;
  }
  pending_.push_back(p);  // csq-lint: allow(serve-hygiene): this IS the bounded admit path — depth and cost were checked above under the same lock
  inflight_cost_ += p->cost;
  ++stats_.admitted;
  CSQ_OBS_COUNT("serve.requests.admitted");
  update_depth_gauge();
  work_cv_.notify_one();
}

std::string Server::call(const std::string& line) {
  const std::shared_ptr<Ticket> ticket = submit(line);
  if (opts_.workers == 0)
    while (!ticket->done() && process_one()) {
    }
  return ticket->wait();
}

bool Server::process_one() {
  std::shared_ptr<Pending> p;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.empty()) return false;
    p = pending_.front();
    pending_.pop_front();
    running_.push_back(p);
    update_depth_gauge();
  }
  execute(p);
  return true;
}

void Server::worker_loop() {
  for (;;) {
    std::shared_ptr<Pending> p;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      if (pending_.empty()) {
        if (stop_) return;
        continue;
      }
      p = pending_.front();
      pending_.pop_front();
      running_.push_back(p);
      update_depth_gauge();
    }
    execute(p);
  }
}

void Server::execute(const std::shared_ptr<Pending>& p) {
  CSQ_OBS_SPAN("serve.request.handle");
  const std::string& id = p->raw_id;
  std::string response;
  bool cancelled = false;
  try {
    const RunBudget budget = request_budget(*p);
    response = run_with_retries(*p, budget);
  } catch (const CancelledError&) {
    // Normalized message: the stage the cancel landed in is timing-
    // dependent, and responses must depend only on request content.
    response = error_response(id, ErrorCode::kCancelled, "request cancelled");
    cancelled = true;
  } catch (const DeadlineExceededError&) {
    response = error_response(id, ErrorCode::kDeadlineExceeded, "request budget exhausted");
  } catch (const Error& e) {
    const SolverStatus st = e.status();
    response = error_response(id, st.code, st.message);
  } catch (const std::exception& e) {
    response = error_response(id, ErrorCode::kInternal, e.what());
  }
  finish(p, response, cancelled);
}

RunBudget Server::request_budget(const Pending& p) const {
  double limit = std::numeric_limits<double>::infinity();
  if (opts_.request_timeout_ms > 0.0) limit = opts_.request_timeout_ms;
  if (p.request.timeout_ms >= 0.0) limit = std::min(limit, p.request.timeout_ms);
  const RunBudget base =
      std::isinf(limit) ? RunBudget() : RunBudget::with_timeout_ms(limit);
  return base.with_token(p.cancel);
}

std::string Server::run_with_retries(const Pending& p, const RunBudget& budget) {
  const Request& req = p.request;
  ResponseExtras extras;
  for (int attempt = 1;; ++attempt) {
    try {
      CSQ_FAULT_POINT("serve.dispatch.run");
      budget.check("serve/dispatch");
      return execute_op(req, budget, &extras);
    } catch (const CancelledError&) {
      throw;
    } catch (const DeadlineExceededError&) {
      throw;
    } catch (const Error& e) {
      const SolverStatus st = e.status();
      const bool retryable = transient(st.code) && attempt < opts_.retry.max_attempts &&
                             !budget.interrupted();
      extras.attempts.push_back("attempt " + std::to_string(attempt) + ": " +
                                error_code_name(st.code) + " — " + st.message);
      if (retryable) {
        ++extras.retries;
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.retried;
        }
        CSQ_OBS_COUNT("serve.requests.retried");
        const double delay = std::min(backoff_delay_ms(opts_.retry, req.id, extras.retries),
                                      budget.remaining_ms());
        if (delay > 0.0)
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
        continue;
      }
      // Out of retries (or non-transient): a CS-CQ analyze escalates through
      // the degradation ladder — skipping the exact rung already attempted —
      // so the client still gets an answer, marked degraded.
      if (transient(st.code) && req.op == OpKind::kAnalyze && req.policy == Policy::kCsCq &&
          !req.resilient && opts_.allow_degraded && !budget.interrupted())
        return run_resilient(req, budget, &extras, /*skip_exact=*/true);
      return error_response(req.id, st.code, st.message, -1.0, extras.retries);
    }
  }
}

std::string Server::execute_op(const Request& req, const RunBudget& budget,
                               ResponseExtras* extras) {
  switch (req.op) {
    case OpKind::kPing:
      return ok_response(req, "{\"pong\":true}", *extras);

    case OpKind::kAnalyze: {
      if (req.resilient) return run_resilient(req, budget, extras, /*skip_exact=*/false);
      // Unverified solves are never cached: the memo must hold only answers
      // that passed their self-checks.
      const bool cacheable = req.verify != VerifyLevel::kNone;
      const std::string key = cacheable ? req.cache_key() : std::string();
      if (cacheable)
        if (const std::optional<PolicyMetrics> hit = cache_.lookup(key); hit.has_value())
          return ok_response(req, metrics_json(*hit), *extras);
      // A serve session is a stream of analyze ops: a thread-local QBD
      // workspace carries solver scratch and cached block patterns from one
      // request to the next (same amortization as analysis/batch.h).
      thread_local qbd::Workspace serve_ws;
      const PolicyMetrics m =
          analyze(req.policy, req.config(), 3, req.verify, budget, &serve_ws);
      if (cacheable) {
        try {
          cache_.insert(key, m);
        } catch (const Error&) {
          // Armed serve.cache.insert fault: drop the insert, keep the
          // freshly computed (verified) answer.
        }
      }
      return ok_response(req, metrics_json(m), *extras);
    }

    case OpKind::kSweep: {
      SweepOptions sopts;
      sopts.threads = opts_.op_threads;
      sopts.budget = budget;
      const std::vector<double> grid = linspace(req.from, req.to, req.points);
      const std::vector<SweepRow> rows =
          req.axis == SweepAxis::kRhoShort
              ? sweep_rho_short(req.rho_l, req.mean_s, req.mean_l, req.scv_l, grid, sopts)
              : sweep_rho_long(req.rho_s, req.mean_s, req.mean_l, req.scv_l, grid, sopts);
      return ok_response(req, sweep_json(rows), *extras);
    }

    case OpKind::kSimulate: {
      sim::PolicyKind kind = sim::PolicyKind::kCsCq;
      if (req.policy == Policy::kDedicated) kind = sim::PolicyKind::kDedicated;
      if (req.policy == Policy::kCsId) kind = sim::PolicyKind::kCsId;
      // "sim_policy" opens the full registry (already validated at parse).
      if (!req.sim_policy.empty()) kind = sim::policy_kind_from_token(req.sim_policy);
      sim::SimOptions so;
      so.seed = req.seed;
      so.total_completions = static_cast<std::size_t>(req.completions);
      sim::ReplicationOptions ro;
      ro.replications = req.replications;
      ro.threads = opts_.op_threads;
      ro.budget = budget;
      ro.target_rel_ci = 0.0;  // fixed replication count => deterministic
      const SystemConfig cfg = req.config();
      const sim::ReplicatedResult r = sim::simulate_replications(kind, cfg, so, ro);
      const ClassMetrics shorts = class_metrics_from_response(
          r.shorts.mean_response, cfg.effective_lambda_short(), cfg.short_size->mean());
      const ClassMetrics longs = class_metrics_from_response(
          r.longs.mean_response, cfg.lambda_long, cfg.long_size->mean());
      return ok_response(req,
                         simulate_json(shorts, r.shorts.ci95, longs, r.longs.ci95,
                                       static_cast<int>(r.replications.size())),
                         *extras);
    }
  }
  throw InternalError("execute_op: unreachable op", Diagnostics{});
}

std::string Server::run_resilient(const Request& req, const RunBudget& budget,
                                  ResponseExtras* extras, bool skip_exact) {
  analysis::ResilientOptions ropts;
  ropts.budget = budget;
  ropts.verify = req.verify;
  if (skip_exact) ropts.start_rung = analysis::Rung::kTruncated;
  // Serving-tier simulation rung: small fixed batch so the worst-case rung
  // stays interactive and deterministic (no adaptive extension).
  ropts.sim.total_completions = 20000;
  ropts.sim_reps.replications = 2;
  ropts.sim_reps.threads = opts_.op_threads;
  ropts.sim_target_rel_ci = 0.0;
  const analysis::ResilientResult r = analysis::analyze_resilient(req.config(), ropts);
  for (const analysis::RungAttempt& a : r.attempts) {
    std::string note = std::string(analysis::rung_name(a.rung)) + ": ";
    note += a.succeeded
                ? "ok"
                : std::string(error_code_name(a.status.code)) + " — " + a.status.message;
    extras->attempts.push_back(std::move(note));
  }
  if (r.rung_used != analysis::Rung::kExact) {
    extras->degraded = true;
    extras->rung = analysis::rung_name(r.rung_used);
    note_degraded();
  } else if (req.verify != VerifyLevel::kNone) {
    // The ladder's exact rung is the same verified analysis the plain path
    // runs — cacheable; fallback rungs never are.
    try {
      cache_.insert(req.cache_key(), r.metrics);
    } catch (const Error&) {
      // Armed serve.cache.insert fault: drop the insert.
    }
  }
  return ok_response(req, metrics_json(r.metrics), *extras);
}

void Server::finish(const std::shared_ptr<Pending>& p, const std::string& response,
                    bool cancelled) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = std::find(running_.begin(), running_.end(), p);
    if (it != running_.end()) running_.erase(it);
    inflight_cost_ -= p->cost;
    if (cancelled) {
      ++stats_.cancelled;
      CSQ_OBS_COUNT("serve.requests.cancelled");
    } else {
      ++stats_.completed;
      CSQ_OBS_COUNT("serve.requests.completed");
    }
    drain_cv_.notify_all();
  }
  if (p->journaled && opts_.journal != nullptr) {
    try {
      // Journal before delivery: any response the client can have observed
      // has its bytes on disk, so recovery re-emits rather than re-executes.
      opts_.journal->append_response(p->journal_seq, response);
    } catch (const Error&) {
      // Response record lost (armed fault / dead disk): recovery will
      // re-execute the request, and determinism reproduces the same bytes.
    }
  }
  deliver(p->ticket, response);
}

void Server::respond_inline(const std::shared_ptr<Ticket>& ticket,
                            const std::string& response) {
  deliver(ticket, response);
}

void Server::deliver(const std::shared_ptr<Ticket>& ticket, const std::string& response) {
  // Empty responses are burst-suppressed invalid lines: the ticket resolves
  // but nothing is written downstream.
  if (opts_.sink && !response.empty()) {
    std::lock_guard<std::mutex> lock(sink_mu_);
    opts_.sink(response);
  }
  {
    std::lock_guard<std::mutex> lock(ticket->mu_);
    ticket->done_ = true;
    ticket->response_ = response;
  }
  ticket->cv_.notify_all();
}

void Server::note_degraded() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.degraded;
  }
  CSQ_OBS_COUNT("serve.requests.degraded");
}

void Server::update_depth_gauge() {
  CSQ_OBS_GAUGE_SET("serve.queue.depth", pending_.size());
}

void Server::drain() {
  std::vector<std::shared_ptr<Pending>> abandoned;
  {
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;
    // Grace period: let the workers finish what is queued and running.
    if (opts_.workers > 0 && opts_.drain_timeout_ms > 0.0) {
      drain_cv_.wait_for(
          lock,
          std::chrono::duration<double, std::milli>(opts_.drain_timeout_ms),
          [this] { return pending_.empty() && running_.empty(); });
    }
    // Whatever is still queued will never run: answer it as cancelled.
    abandoned.assign(pending_.begin(), pending_.end());
    pending_.clear();
    update_depth_gauge();
    // Whatever is still running gets its cancel token fired; the worker
    // observes it at the next budget poll and responds Cancelled.
    for (const std::shared_ptr<Pending>& p : running_) p->cancel.cancel();
  }
  for (const std::shared_ptr<Pending>& p : abandoned)
    finish(p, error_response(p->raw_id, ErrorCode::kCancelled, "request cancelled"),
           /*cancelled=*/true);
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [this] { return running_.empty(); });
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
}

bool Server::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t Server::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

}  // namespace csq::serve
