// LRU memo-cache of verified analysis results, keyed on the canonical
// config identity (Request::cache_key, built on csq::canonical_key).
//
// Poison-resistance is the design constraint: only *verified exact* results
// may be inserted — the server never caches a degraded-ladder answer, a
// partially-converged solve, or anything produced while a fault was armed
// (a faulted solve throws before reaching the insert). The fault site
// `serve.cache.insert` sits ahead of the mutation, so an injected failure
// leaves the cache untouched and the response unaffected (the server drops
// the insert and still answers from the fresh solve).
//
// Thread-safety: every method takes the internal mutex; safe from all
// worker threads. Capacity 0 disables the cache entirely (lookup always
// misses, insert is dropped) so a server can run memo-free.
//
// Throws nothing of its own; an armed serve.cache.insert fault throws the
// taxonomy error it was armed with out of insert().
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/config.h"

namespace csq::serve {

class SolverCache {
 public:
  explicit SolverCache(std::size_t capacity) : capacity_(capacity) {}

  // The cached metrics for `key`, bumping it to most-recently-used; nullopt
  // on a miss. Counts serve.cache.hits / serve.cache.misses.
  [[nodiscard]] std::optional<PolicyMetrics> lookup(const std::string& key);

  // Insert (or refresh) a verified result, evicting the least-recently-used
  // entry when full. Fault site serve.cache.insert fires before any
  // mutation. No-op at capacity 0.
  void insert(const std::string& key, const PolicyMetrics& metrics);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  // Lifetime hit/miss/insert/evict tallies (local mirrors of the obs
  // counters, available in -DCSQ_OBS=OFF builds too).
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t inserts = 0;
    std::int64_t evictions = 0;
  };
  [[nodiscard]] Stats stats() const;

  void clear();

 private:
  using Entry = std::pair<std::string, PolicyMetrics>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace csq::serve
