// Retry policy for transient solver failures: capped exponential backoff
// with deterministic jitter.
//
// "Transient" means the failure class where an immediate retry has a real
// chance of succeeding — NotConverged and IllConditioned (a borderline solve
// may converge with the process under different memory/load conditions, and
// under fault injection the faulted first attempt is followed by a healthy
// site). InvalidInput, Unstable and VerificationFailed are deterministic
// properties of the request and are never retried; Deadline/Cancelled mean
// the caller no longer wants the answer.
//
// Jitter is deterministic by design: it is drawn from an FNV-1a hash of the
// request id and the attempt number, not from a process RNG, so a replayed
// request script produces bit-identical retry schedules (the soak suite
// depends on this) while distinct requests still decorrelate their retries.
//
// Throws csq::InvalidInputError (validate() on malformed policies).
#pragma once

#include <string>

#include "core/status.h"

namespace csq::serve {

struct RetryPolicy {
  // Total attempts of the primary solve (1 = no retries).
  int max_attempts = 3;
  double base_delay_ms = 1.0;    // delay before the first retry
  double multiplier = 2.0;       // growth per retry
  double max_delay_ms = 50.0;    // cap on any single delay
  double jitter_fraction = 0.25; // delay is scaled by 1 +/- this, hashed

  // Throws csq::InvalidInputError on non-positive/non-finite parameters.
  void validate() const;
};

// True when `code` is worth retrying under this policy's semantics.
[[nodiscard]] bool transient(ErrorCode code);

// Delay in ms before retry number `retry` (1-based: the delay after the
// first failed attempt is retry == 1) of the request identified by `key`.
// Deterministic in (policy, key, retry).
[[nodiscard]] double backoff_delay_ms(const RetryPolicy& policy, const std::string& key,
                                      int retry);

}  // namespace csq::serve
