#include "serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace csq::serve {

namespace {

[[noreturn]] void bad(const std::string& what, std::size_t at) {
  throw InvalidInputError("json: " + what + " at byte " + std::to_string(at));
}

// Single-pass recursive-descent parser over the request line. Positions are
// byte offsets into the original text so error messages point at the spot.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value(0);
    skip_ws();
    if (pos_ != text_.size()) bad("trailing characters after value", pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) bad("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) bad(std::string("expected '") + c + "'", pos_);
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue value(int depth) {
    if (depth > kMaxJsonDepth) bad("nesting too deep", pos_);
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return JsonValue::make_string(string());
      case 't': return literal("true", JsonValue::make_bool(true));
      case 'f': return literal("false", JsonValue::make_bool(false));
      case 'n': return literal("null", JsonValue::make_null());
      default: return number();
    }
  }

  JsonValue literal(const char* word, JsonValue v) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p)
        bad(std::string("invalid literal (expected \"") + word + "\")", pos_);
      ++pos_;
    }
    return v;
  }

  JsonValue object(int depth) {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (consume('}')) return JsonValue::make_object(std::move(members));
    while (true) {
      skip_ws();
      if (peek() != '"') bad("expected object key string", pos_);
      std::string key = string();
      // Duplicate keys are ambiguous (which value wins?) — reject them so a
      // request can never smuggle a second "rho_s" past validation.
      for (const std::pair<std::string, JsonValue>& m : members)
        if (m.first == key) bad("duplicate object key \"" + key + "\"", pos_);
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue array(int depth) {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (consume(']')) return JsonValue::make_array(std::move(items));
    while (true) {
      items.push_back(value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) bad("unterminated string", pos_);
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        escape(&out);
        continue;
      }
      if (c < 0x20) bad("raw control character in string", pos_);
      out.push_back(static_cast<char>(c));
      ++pos_;
    }
  }

  void escape(std::string* out) {
    if (pos_ >= text_.size()) bad("unterminated escape", pos_);
    const char c = text_[pos_++];
    switch (c) {
      case '"': out->push_back('"'); return;
      case '\\': out->push_back('\\'); return;
      case '/': out->push_back('/'); return;
      case 'b': out->push_back('\b'); return;
      case 'f': out->push_back('\f'); return;
      case 'n': out->push_back('\n'); return;
      case 'r': out->push_back('\r'); return;
      case 't': out->push_back('\t'); return;
      case 'u': unicode_escape(out); return;
      default: bad("invalid escape", pos_ - 1);
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) bad("truncated \\u escape", pos_);
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else bad("invalid \\u escape digit", pos_ - 1);
    }
    return v;
  }

  void unicode_escape(std::string* out) {
    unsigned cp = hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate — need the pair
      if (!(consume('\\') && consume('u'))) bad("unpaired surrogate", pos_);
      const unsigned lo = hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) bad("invalid low surrogate", pos_);
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      bad("unpaired low surrogate", pos_);
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (consume('-')) { /* sign */ }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
      bad("invalid number", start);
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
        bad("digits required after decimal point", pos_);
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
        bad("digits required in exponent", pos_);
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') bad("invalid number", start);
    if (!std::isfinite(v)) bad("number out of range", start);
    return JsonValue::make_number(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void kind_error(const std::string& where, const char* wanted) {
  throw InvalidInputError("field \"" + where + "\" must be " + wanted);
}

}  // namespace

double JsonValue::as_number(const std::string& where) const {
  if (kind_ != Kind::kNumber) kind_error(where, "a number");
  return number_;
}

bool JsonValue::as_bool(const std::string& where) const {
  if (kind_ != Kind::kBool) kind_error(where, "a boolean");
  return bool_;
}

const std::string& JsonValue::as_string(const std::string& where) const {
  if (kind_ != Kind::kString) kind_error(where, "a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array(const std::string& where) const {
  if (kind_ != Kind::kArray) kind_error(where, "an array");
  return items_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

std::vector<std::string> JsonValue::keys() const {
  std::vector<std::string> out;
  out.reserve(members_.size());
  for (const auto& [k, v] : members_) out.push_back(k);
  return out;
}

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

JsonValue parse_json(const std::string& text) { return Parser(text).parse(); }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(raw);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace csq::serve
