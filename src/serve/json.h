// Minimal JSON for the serving tier: a recursive-descent parser producing a
// small value tree, plus the escaping/number-formatting helpers the response
// builders use. Dependency-free by design (matching the rest of the tree)
// and deliberately strict: the server treats every parse failure as a
// malformed request and answers with an InvalidInput taxonomy error, so the
// parser must reject garbage rather than guess.
//
// Scope: RFC 8259 values (objects, arrays, strings with \uXXXX escapes,
// numbers, true/false/null), UTF-8 passed through verbatim, no comments, no
// trailing commas. Depth is capped (kMaxDepth) so a hostile request cannot
// recurse the stack away.
//
// Throws csq::InvalidInputError (parse errors, wrong-kind accessor calls).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"

namespace csq::serve {

// Nesting depth beyond which parsing fails (hostile-input stack guard).
inline constexpr int kMaxJsonDepth = 64;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }

  // Checked accessors: throw InvalidInputError when the kind mismatches,
  // naming `where` so request-field errors read well.
  [[nodiscard]] double as_number(const std::string& where) const;
  [[nodiscard]] bool as_bool(const std::string& where) const;
  [[nodiscard]] const std::string& as_string(const std::string& where) const;
  [[nodiscard]] const std::vector<JsonValue>& as_array(const std::string& where) const;

  // Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  // Member names present in an object (insertion order), for
  // unknown-field diagnostics.
  [[nodiscard]] std::vector<std::string> keys() const;

  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;   // kObject
};

// Parse exactly one JSON value spanning the whole input (trailing
// non-whitespace is an error). Throws csq::InvalidInputError with a byte
// offset on malformed input.
[[nodiscard]] JsonValue parse_json(const std::string& text);

// Escape a string for embedding between double quotes in JSON output.
[[nodiscard]] std::string json_escape(const std::string& s);

// Compact round-trippable-ish number formatting ("%.12g", matching the
// Diagnostics JSON in core/status.cc); NaN/inf become null (JSON has no
// non-finite numbers).
[[nodiscard]] std::string json_number(double v);

}  // namespace csq::serve
