#include "durable/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "core/faultpoint.h"
#include "core/status.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace csq::durable {

namespace {

// Table-driven CRC-32 (IEEE 802.3 polynomial, reflected). The table is a
// pure function of the polynomial; building it once at first use keeps the
// translation unit free of a 1 KiB literal.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
      t[i] = c;
    }
    return t;
  }();
  return table;
}

constexpr const char* kMagic = "CSQJ1";

[[nodiscard]] const char* kind_token(RecordKind kind) {
  return kind == RecordKind::kRequest ? "req" : "res";
}

[[nodiscard]] std::string errno_text(const char* what, const std::string& path) {
  return std::string("journal ") + what + " failed for '" + path +
         "': " + std::strerror(errno);
}

// Full write loop: write(2) may be interrupted or partial; the journal's
// durability story depends on every byte landing.
void write_all(int fd, const std::string& bytes, const std::string& path) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw InternalError(errno_text("write", path));
    }
    off += static_cast<std::size_t>(n);
  }
}

[[nodiscard]] Diagnostics offset_diag(const std::string& path, std::size_t offset) {
  Diagnostics d;
  d.stage = path;
  d.notes.push_back("byte offset " + std::to_string(offset));
  return d;
}

// Parse one frame starting at `pos`. Returns true and advances `pos` past
// the frame on success; false (pos untouched) when the bytes at `pos` do not
// form a complete well-formed frame — the caller decides torn-tail vs
// corruption.
bool parse_frame(const std::string& data, std::size_t& pos, Record* out) {
  const std::size_t header_end = data.find('\n', pos);
  if (header_end == std::string::npos) return false;
  std::istringstream header(data.substr(pos, header_end - pos));
  std::string magic;
  std::string type;
  std::uint64_t seq = 0;
  std::uint64_t len = 0;
  std::string crc_hex;
  header >> magic >> type >> seq >> len >> crc_hex;
  if (header.fail() || magic != kMagic || (type != "req" && type != "res") ||
      crc_hex.size() != 8)
    return false;
  std::uint32_t want_crc = 0;
  for (const char c : crc_hex) {
    const int digit = c >= '0' && c <= '9'   ? c - '0'
                      : c >= 'a' && c <= 'f' ? c - 'a' + 10
                                             : -1;
    if (digit < 0) return false;
    want_crc = (want_crc << 4) | static_cast<std::uint32_t>(digit);
  }
  const std::size_t payload_start = header_end + 1;
  // Truncation check, phrased to survive a corrupt header whose len is near
  // UINT64_MAX: `payload_start + len + 1` could wrap past the size check and
  // index on garbage offsets.
  if (payload_start >= data.size()) return false;               // no payload bytes
  if (len > data.size() - payload_start - 1) return false;      // truncated payload
  if (data[payload_start + len] != '\n') return false;      // framing newline lost
  const std::string payload = data.substr(payload_start, len);
  if (crc32(payload.data(), payload.size()) != want_crc) return false;
  out->kind = type == "req" ? RecordKind::kRequest : RecordKind::kResponse;
  out->seq = seq;
  out->payload = payload;
  pos = payload_start + len + 1;
  return true;
}

// Does any well-formed frame start at or after `pos`? Distinguishes a torn
// tail (no) from mid-file corruption (yes).
[[nodiscard]] bool frame_follows(const std::string& data, std::size_t pos) {
  for (std::size_t at = data.find(kMagic, pos); at != std::string::npos;
       at = data.find(kMagic, at + 1)) {
    std::size_t probe = at;
    Record r;
    if (parse_frame(data, probe, &r)) return true;
  }
  return false;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    crc = (crc >> 8) ^ crc_table()[(crc ^ bytes[i]) & 0xFFu];
  return crc ^ 0xFFFFFFFFu;
}

Journal::~Journal() {
  try {
    close();
  } catch (const Error&) {
    // Destructor: a failed final sync has no caller to inform; the on-disk
    // tail is at worst torn, which replay() handles by design.
  }
}

Journal::Journal(Journal&& other) noexcept {
  const std::lock_guard<std::mutex> lock(other.mu_);
  fd_ = std::exchange(other.fd_, -1);
  path_ = std::move(other.path_);
  opts_ = other.opts_;
  next_seq_ = other.next_seq_;
  unsynced_ = std::exchange(other.unsynced_, 0);
  fsync_count_ = other.fsync_count_;
  poisoned_ = other.poisoned_;
}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this == &other) return *this;
  try {
    close();
  } catch (const Error&) {
    // See ~Journal: the replaced journal's tail is recoverable regardless.
  }
  const std::lock_guard<std::mutex> lock(other.mu_);
  fd_ = std::exchange(other.fd_, -1);
  path_ = std::move(other.path_);
  opts_ = other.opts_;
  next_seq_ = other.next_seq_;
  unsynced_ = std::exchange(other.unsynced_, 0);
  fsync_count_ = other.fsync_count_;
  poisoned_ = other.poisoned_;
  return *this;
}

Journal Journal::open(const std::string& path, JournalOptions opts) {
  if (path.empty()) throw InvalidInputError("journal: path must not be empty");
  if (opts.fsync_every < 1)
    throw InvalidInputError("journal: fsync_every must be >= 1");
  if (opts.next_seq < 1) throw InvalidInputError("journal: next_seq must be >= 1");
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) throw InvalidInputError(errno_text("open", path));
  if (opts.trim_tail_bytes > 0) {
    // Drop a torn tail before the first append so new frames continue the
    // good history instead of landing after a partial frame.
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      const std::string msg = errno_text("fstat", path);
      ::close(fd);
      throw InvalidInputError(msg);
    }
    if (static_cast<std::uint64_t>(st.st_size) < opts.trim_tail_bytes) {
      ::close(fd);
      throw InvalidInputError("journal: trim_tail_bytes " +
                              std::to_string(opts.trim_tail_bytes) + " exceeds size of '" +
                              path + "' — the file changed since replay");
    }
    if (::ftruncate(fd, st.st_size - static_cast<off_t>(opts.trim_tail_bytes)) != 0) {
      const std::string msg = errno_text("truncate of torn tail", path);
      ::close(fd);
      throw InvalidInputError(msg);
    }
  }
  Journal j;
  j.fd_ = fd;
  j.path_ = path;
  j.opts_ = opts;
  j.next_seq_ = opts.next_seq;
  return j;
}

std::uint64_t Journal::append_request(const std::string& line) {
  std::uint64_t seq = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    seq = next_seq_++;
  }
  append_record(RecordKind::kRequest, seq, line);
  return seq;
}

void Journal::append_response(std::uint64_t seq, const std::string& line) {
  append_record(RecordKind::kResponse, seq, line);
}

void Journal::append_record(RecordKind kind, std::uint64_t seq,
                            const std::string& payload) {
  // Fires before any byte is written, so an armed fault models a full
  // append failure: nothing lands, the caller refuses the work.
  CSQ_FAULT_POINT("durable.journal.append");
  if (payload.find('\n') != std::string::npos)
    throw InvalidInputError("journal: payload must be a single line (no '\\n')");
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", crc32(payload.data(), payload.size()));
  std::string frame = kMagic;
  frame += ' ';
  frame += kind_token(kind);
  frame += ' ';
  frame += std::to_string(seq);
  frame += ' ';
  frame += std::to_string(payload.size());
  frame += ' ';
  frame += crc_hex;
  frame += '\n';
  frame += payload;
  frame += '\n';
  const std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_)
    throw InternalError("journal: disabled — an earlier failed append left a "
                        "partial frame that could not be rolled back");
  if (fd_ < 0) throw InternalError("journal: append on a closed journal");
  // One write_all per frame: appends are serialized on mu_, so a process
  // crash can only tear the *last* frame. A failed write, though, may leave
  // a partial frame with the process still running — roll the file back to
  // the pre-append length so a later append cannot land after the debris
  // (which replay() would refuse as mid-file corruption). If even the
  // rollback fails, poison the journal: refusing all further appends keeps
  // the broken frame a tail, which stays recoverable.
  const off_t pre_size = ::lseek(fd_, 0, SEEK_END);
  try {
    write_all(fd_, frame, path_);
  } catch (const Error&) {
    if (pre_size < 0 || ::ftruncate(fd_, pre_size) != 0) {
      poisoned_ = true;
      CSQ_OBS_COUNT("durable.journal.poisoned");
    }
    throw;
  }
  CSQ_OBS_COUNT("durable.journal.appends");
  if (++unsynced_ >= opts_.fsync_every) sync_locked();
}

void Journal::sync_locked() {
  CSQ_FAULT_POINT("durable.journal.fsync");
  if (::fsync(fd_) != 0) throw InternalError(errno_text("fsync", path_));
  unsynced_ = 0;
  ++fsync_count_;
  CSQ_OBS_COUNT("durable.journal.fsyncs");
}

void Journal::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0 && unsynced_ > 0) sync_locked();
}

void Journal::close() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return;
  if (unsynced_ > 0) sync_locked();
  ::close(fd_);
  fd_ = -1;
}

long Journal::fsyncs() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return fsync_count_;
}

std::vector<Record> replay(const std::string& path, ReplayStats* stats) {
  CSQ_OBS_SPAN("durable.journal.replay");
  CSQ_FAULT_POINT("durable.journal.replay");
  ReplayStats local;
  std::vector<Record> records;
  std::ifstream in(path, std::ios::binary);
  if (in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string data = buf.str();
    std::size_t pos = 0;
    while (pos < data.size()) {
      Record r;
      if (parse_frame(data, pos, &r)) {
        ++local.frames;
        if (r.seq > local.max_seq) local.max_seq = r.seq;
        records.push_back(std::move(r));
        continue;
      }
      if (frame_follows(data, pos + 1))
        throw CorruptJournalError(
            "journal '" + path + "': corrupt frame at byte " + std::to_string(pos) +
                " with well-formed frames after it — refusing to trust this file",
            offset_diag(path, pos));
      // Broken tail with nothing after it: the expected crash artifact.
      local.torn_tail = true;
      local.torn_bytes = data.size() - pos;
      CSQ_OBS_COUNT("durable.journal.torn");
      break;
    }
  }
  // A missing file is an empty history, not an error: first boot with
  // --journal looks exactly like a recovery with nothing to recover.
  CSQ_OBS_COUNT_N("durable.journal.replayed", static_cast<long>(local.frames));
  if (stats != nullptr) *stats = local;
  return records;
}

Recovery recover(const std::string& path) {
  Recovery out;
  const std::vector<Record> records = replay(path, &out.stats);
  std::map<std::uint64_t, std::size_t> by_seq;  // seq -> index into out.requests
  for (const Record& r : records) {
    const auto it = by_seq.find(r.seq);
    if (r.kind == RecordKind::kRequest) {
      if (it != by_seq.end()) continue;  // duplicate request: first wins
      by_seq.emplace(r.seq, out.requests.size());
      RecoveredRequest rr;
      rr.seq = r.seq;
      rr.request = r.payload;
      out.requests.push_back(std::move(rr));
    } else {
      if (it == by_seq.end())
        throw CorruptJournalError(
            "journal '" + path + "': response record for seq " + std::to_string(r.seq) +
                " has no matching request — history is incomplete",
            offset_diag(path, 0));
      RecoveredRequest& rr = out.requests[it->second];
      if (rr.response.empty()) rr.response = r.payload;  // duplicate response: first wins
    }
  }
  return out;
}

}  // namespace csq::durable
