// Checkpointed parameter sweeps: periodic atomic snapshots of sweep
// progress so `csq_cli sweep --checkpoint=FILE` survives SIGKILL and
// resumes to byte-identical SweepRows (docs/serving.md §9, robustness §11).
//
// File format (binary, little-endian on every supported target):
//
//   magic   "CSQCKPT1" (8 bytes)
//   version u32 (currently 1)
//   meta    u32 length + bytes — the canonical sweep identity (axis, fixed
//           parameters as exact double bit patterns, grid CRC). Resuming
//           with a different identity throws csq::InvalidInputError: a
//           checkpoint must never silently graft rows from one sweep onto
//           another.
//   n       u64 point count
//   n times u8 done + SweepRow as 7 raw 8-byte doubles (x + 6 columns,
//           bit-exact, NaN patterns preserved) + 3 status bytes
//   crc     u32 CRC-32 of everything after the magic
//
// Atomicity: save writes FILE.tmp, fsyncs it, then rename(2)s over FILE —
// a crash leaves either the old complete checkpoint or the new one, never a
// torn mix. A checkpoint that fails its CRC/structure checks on load (the
// rename itself was interrupted, or the file predates the format) is
// treated as absent — the sweep restarts from scratch rather than trusting
// a broken snapshot (counted durable.checkpoint.rejected).
//
// Done semantics: a row is checkpointed as done only when *no* policy
// status is kTimedOut. Timed-out points are budget artifacts, not results;
// resuming re-evaluates them, which is what makes an interrupted run
// converge to the uninterrupted bytes.
//
// Throws csq::InvalidInputError (bad options, unwritable path, identity
// mismatch), csq::InternalError (I/O syscall failures mid-save), and from
// the underlying sweep csq::DeadlineExceededError / csq::CancelledError
// when an ambient budget interrupts it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/sweep.h"

namespace csq::durable {

// In-memory image of one checkpoint file.
struct SweepCheckpoint {
  std::string meta;                // canonical sweep identity
  std::vector<SweepRow> rows;      // rows[i] = grid point i (bit-exact)
  std::vector<std::uint8_t> done;  // done[i] != 0: row i is final
};

// Atomic save: tmp + fsync + rename. Requires rows.size() == done.size().
void save_sweep_checkpoint(const std::string& path, const SweepCheckpoint& ckpt);

// Load `path`. Missing file => nullopt. A file that fails magic, version,
// CRC or structure checks => nullopt with the rejection note in *reason —
// the caller restarts from scratch (a half-renamed checkpoint is a crash
// artifact, like a torn journal tail).
[[nodiscard]] std::optional<SweepCheckpoint> load_sweep_checkpoint(
    const std::string& path, std::string* reason = nullptr);

struct CheckpointedSweepOptions {
  SweepOptions sweep;
  // Atomic snapshot after this many freshly evaluated rows (and always once
  // at the end).
  int every = 8;
};

struct CheckpointedSweepResult {
  std::vector<SweepRow> rows;
  std::size_t resumed = 0;     // rows taken as-is from the checkpoint
  std::size_t evaluated = 0;   // rows computed this run
  std::size_t incomplete = 0;  // rows still timed out (budget expired again)
};

// sweep_rho_short / sweep_rho_long with checkpointing layered on: load
// `path` (validating the sweep identity), skip done rows, evaluate the
// rest, snapshot every `every` fresh rows, and leave a final checkpoint
// covering the whole grid. Output rows are byte-identical to the plain
// sweep functions for any interruption history.
[[nodiscard]] CheckpointedSweepResult checkpointed_sweep_rho_short(
    const std::string& path, double rho_long, double mean_short, double mean_long,
    double long_scv, const std::vector<double>& rho_shorts,
    const CheckpointedSweepOptions& opts = {});

[[nodiscard]] CheckpointedSweepResult checkpointed_sweep_rho_long(
    const std::string& path, double rho_short, double mean_short, double mean_long,
    double long_scv, const std::vector<double>& rho_longs,
    const CheckpointedSweepOptions& opts = {});

}  // namespace csq::durable
