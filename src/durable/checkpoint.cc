#include "durable/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

#include "durable/journal.h"  // crc32
#include "obs/obs.h"

namespace csq::durable {

namespace {

constexpr char kMagic[8] = {'C', 'S', 'Q', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t kVersion = 1;
// u8 done + 7 doubles + 3 status bytes per point.
constexpr std::size_t kPointBytes = 1 + 7 * 8 + 3;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFFu);
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFFu);
}

void put_double(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));  // bit-exact: NaN patterns survive
  put_u64(out, bits);
}

[[nodiscard]] std::uint32_t get_u32(const std::string& in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(in[at + static_cast<std::size_t>(i)]);
  return v;
}

[[nodiscard]] std::uint64_t get_u64(const std::string& in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(in[at + static_cast<std::size_t>(i)]);
  return v;
}

[[nodiscard]] double get_double(const std::string& in, std::size_t at) {
  const std::uint64_t bits = get_u64(in, at);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Exact textual identity of a double: hex bit pattern, so 0.1 vs the nearest
// representable neighbour never alias in a checkpoint meta string.
[[nodiscard]] std::string double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(bits));
  return buf;
}

[[nodiscard]] std::string sweep_meta(const char* axis, double fixed, double mean_short,
                                     double mean_long, double long_scv,
                                     const std::vector<double>& grid) {
  std::string raw;
  raw.reserve(grid.size() * 8);
  for (const double x : grid) put_double(raw, x);
  std::ostringstream os;
  os << "axis=" << axis << ";fixed=" << double_bits(fixed)
     << ";mean_s=" << double_bits(mean_short) << ";mean_l=" << double_bits(mean_long)
     << ";scv_l=" << double_bits(long_scv) << ";n=" << grid.size() << ";grid_crc=";
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", crc32(raw.data(), raw.size()));
  os << crc_hex;
  return os.str();
}

// A row is final only when no policy column is a budget artifact.
[[nodiscard]] bool row_done(const SweepRow& row) {
  return row.dedicated_status != PointStatus::kTimedOut &&
         row.csid_status != PointStatus::kTimedOut &&
         row.cscq_status != PointStatus::kTimedOut;
}

// Tracks progress during one checkpointed sweep and drives the periodic
// atomic saves. on_row arrives from pool workers; everything is serialized
// on an internal mutex (saves are rare and the sweep point dominates).
class Checkpointer {
 public:
  Checkpointer(std::string path, SweepCheckpoint state, int every)
      : path_(std::move(path)), state_(std::move(state)), every_(every) {}

  void note_row(std::size_t i, const SweepRow& row) {
    const std::lock_guard<std::mutex> lock(mu_);
    state_.rows[i] = row;
    state_.done[i] = row_done(row) ? 1 : 0;
    if (++fresh_since_save_ >= every_) {
      save_sweep_checkpoint(path_, state_);
      fresh_since_save_ = 0;
    }
  }

  // Final snapshot covering the full grid (rows merged by run_sweep).
  void finalize(const std::vector<SweepRow>& rows) {
    const std::lock_guard<std::mutex> lock(mu_);
    state_.rows = rows;
    for (std::size_t i = 0; i < rows.size(); ++i) state_.done[i] = row_done(rows[i]) ? 1 : 0;
    save_sweep_checkpoint(path_, state_);
  }

 private:
  std::mutex mu_;
  std::string path_;
  SweepCheckpoint state_;
  int every_;
  int fresh_since_save_ = 0;
};

using SweepFn = std::vector<SweepRow> (*)(double, double, double, double,
                                          const std::vector<double>&, const SweepOptions&);

CheckpointedSweepResult run_checkpointed(const std::string& path, const char* axis,
                                         double fixed, double mean_short, double mean_long,
                                         double long_scv, const std::vector<double>& grid,
                                         const CheckpointedSweepOptions& opts,
                                         SweepFn sweep_fn) {
  if (path.empty())
    throw InvalidInputError("checkpointed sweep: checkpoint path must not be empty");
  if (opts.every < 1)
    throw InvalidInputError("checkpointed sweep: every must be >= 1");
  const std::string meta =
      sweep_meta(axis, fixed, mean_short, mean_long, long_scv, grid);

  SweepCheckpoint state;
  state.meta = meta;
  state.rows.resize(grid.size());
  state.done.assign(grid.size(), 0);
  std::string reason;
  if (std::optional<SweepCheckpoint> loaded = load_sweep_checkpoint(path, &reason);
      loaded.has_value()) {
    if (loaded->meta != meta)
      throw InvalidInputError(
          "checkpoint '" + path + "' belongs to a different sweep (" + loaded->meta +
          " vs " + meta + ") — refusing to graft rows across sweeps");
    if (loaded->rows.size() == grid.size()) state = std::move(*loaded);
  }

  CheckpointedSweepResult result;
  for (const std::uint8_t d : state.done) result.resumed += d != 0 ? 1 : 0;
  result.evaluated = grid.size() - result.resumed;
  CSQ_OBS_COUNT_N("durable.checkpoint.resumed", static_cast<long>(result.resumed));

  Checkpointer ckpt(path, state, opts.every);
  SweepOptions sopts = opts.sweep;
  // The checkpoint's done rows short-circuit; fresh rows stream into the
  // checkpointer, which snapshots every `every` of them.
  sopts.resume_rows = &state.rows;
  sopts.resume_done = &state.done;
  sopts.on_row = [&ckpt](std::size_t i, const SweepRow& row) { ckpt.note_row(i, row); };
  result.rows = sweep_fn(fixed, mean_short, mean_long, long_scv, grid, sopts);
  ckpt.finalize(result.rows);
  for (const SweepRow& row : result.rows) result.incomplete += row_done(row) ? 0 : 1;
  return result;
}

}  // namespace

void save_sweep_checkpoint(const std::string& path, const SweepCheckpoint& ckpt) {
  if (path.empty()) throw InvalidInputError("checkpoint: path must not be empty");
  if (ckpt.rows.size() != ckpt.done.size())
    throw InvalidInputError("checkpoint: rows and done must be the same length");
  std::string body;  // everything after the magic, CRC'd as one block
  body.reserve(16 + ckpt.meta.size() + ckpt.rows.size() * kPointBytes);
  put_u32(body, kVersion);
  put_u32(body, static_cast<std::uint32_t>(ckpt.meta.size()));
  body += ckpt.meta;
  put_u64(body, ckpt.rows.size());
  for (std::size_t i = 0; i < ckpt.rows.size(); ++i) {
    const SweepRow& r = ckpt.rows[i];
    body += static_cast<char>(ckpt.done[i] != 0 ? 1 : 0);
    put_double(body, r.x);
    put_double(body, r.dedicated_short);
    put_double(body, r.csid_short);
    put_double(body, r.cscq_short);
    put_double(body, r.dedicated_long);
    put_double(body, r.csid_long);
    put_double(body, r.cscq_long);
    body += static_cast<char>(r.dedicated_status);
    body += static_cast<char>(r.csid_status);
    body += static_cast<char>(r.cscq_status);
  }
  put_u32(body, crc32(body.data(), body.size()));

  // tmp + fsync + rename: the published name always holds a complete image.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0)
    throw InvalidInputError("checkpoint: cannot write '" + tmp +
                            "': " + std::strerror(errno));
  std::string file(kMagic, sizeof(kMagic));
  file += body;
  std::size_t off = 0;
  bool failed = false;
  while (off < file.size()) {
    const ssize_t n = ::write(fd, file.data() + off, file.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      failed = true;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  // Flush-before-publish: the rename must never expose unsynced bytes.
  if (!failed && ::fsync(fd) != 0) failed = true;
  ::close(fd);
  if (failed || std::rename(tmp.c_str(), path.c_str()) != 0)
    throw InternalError("checkpoint: failed to publish '" + path +
                        "': " + std::strerror(errno));
  CSQ_OBS_COUNT("durable.checkpoint.saves");
}

std::optional<SweepCheckpoint> load_sweep_checkpoint(const std::string& path,
                                                     std::string* reason) {
  const auto reject = [&](const std::string& why) -> std::optional<SweepCheckpoint> {
    if (reason != nullptr) *reason = why;
    CSQ_OBS_COUNT("durable.checkpoint.rejected");
    return std::nullopt;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (reason != nullptr) *reason = "missing";
    return std::nullopt;  // first run: not a rejection
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  if (data.size() < sizeof(kMagic) + 4 + 4 + 8 + 4) return reject("truncated header");
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) return reject("bad magic");
  const std::string body = data.substr(sizeof(kMagic), data.size() - sizeof(kMagic) - 4);
  const std::uint32_t want_crc = get_u32(data, data.size() - 4);
  if (crc32(body.data(), body.size()) != want_crc) return reject("CRC mismatch");
  std::size_t at = 0;
  const std::uint32_t version = get_u32(body, at);
  at += 4;
  if (version != kVersion)
    return reject("version " + std::to_string(version) + " != " + std::to_string(kVersion));
  const std::uint32_t meta_len = get_u32(body, at);
  at += 4;
  if (at + meta_len + 8 > body.size()) return reject("truncated meta");
  SweepCheckpoint ckpt;
  ckpt.meta = body.substr(at, meta_len);
  at += meta_len;
  const std::uint64_t n = get_u64(body, at);
  at += 8;
  // Divide instead of multiplying: `n * kPointBytes` can wrap for a crafted
  // (still CRC-valid) count near 2^64, sneaking past the size check into a
  // huge resize below.
  const std::size_t point_block = body.size() - at;
  if (point_block % kPointBytes != 0 || n != point_block / kPointBytes)
    return reject("point block size mismatch");
  ckpt.rows.resize(n);
  ckpt.done.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ckpt.done[i] = static_cast<std::uint8_t>(body[at]) != 0 ? 1 : 0;
    ++at;
    SweepRow& r = ckpt.rows[i];
    r.x = get_double(body, at);
    r.dedicated_short = get_double(body, at + 8);
    r.csid_short = get_double(body, at + 16);
    r.cscq_short = get_double(body, at + 24);
    r.dedicated_long = get_double(body, at + 32);
    r.csid_long = get_double(body, at + 40);
    r.cscq_long = get_double(body, at + 48);
    at += 56;
    const auto status_at = [&](std::size_t k) {
      const auto raw = static_cast<std::uint8_t>(body[at + k]);
      return raw <= static_cast<std::uint8_t>(PointStatus::kTimedOut)
                 ? static_cast<PointStatus>(raw)
                 : PointStatus::kFailed;
    };
    r.dedicated_status = status_at(0);
    r.csid_status = status_at(1);
    r.cscq_status = status_at(2);
    at += 3;
  }
  return ckpt;
}

CheckpointedSweepResult checkpointed_sweep_rho_short(
    const std::string& path, double rho_long, double mean_short, double mean_long,
    double long_scv, const std::vector<double>& rho_shorts,
    const CheckpointedSweepOptions& opts) {
  return run_checkpointed(path, "rho_s", rho_long, mean_short, mean_long, long_scv,
                          rho_shorts, opts, &sweep_rho_short);
}

CheckpointedSweepResult checkpointed_sweep_rho_long(
    const std::string& path, double rho_short, double mean_short, double mean_long,
    double long_scv, const std::vector<double>& rho_longs,
    const CheckpointedSweepOptions& opts) {
  return run_checkpointed(path, "rho_l", rho_short, mean_short, mean_long, long_scv,
                          rho_longs, opts, &sweep_rho_long);
}

}  // namespace csq::durable
