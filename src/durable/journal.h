// Write-ahead request journal for the serving tier (docs/serving.md §9).
//
// An append-only, CRC-framed log of admitted requests and completed
// responses. The server appends a request record *before* the request
// becomes runnable and a response record *before* the response line is
// delivered, so after a crash the journal is the authoritative history:
// every admitted request is present, and every response the client may have
// seen has its bytes on disk. recover() replays a journal into paired
// records so a restarted csq_serve can re-answer completed requests
// bit-identically and re-execute the rest under fresh RunBudget slices.
//
// Frame format (one record):
//
//   CSQJ1 <type> <seq> <len> <crc8hex>\n
//   <payload bytes>\n
//
// where <type> is `req` or `res`, <seq> the decimal journal sequence number
// pairing a response to its request, <len> the payload byte count and
// <crc8hex> the lowercase-hex CRC-32 (IEEE) of the payload. Payloads are the
// NDJSON request/response lines themselves and therefore never contain a
// newline. The trailing '\n' after the payload is framing, not payload.
//
// Torn tails vs corruption: a crash can leave a half-written final frame.
// replay() discards a broken *tail* (no well-formed frame follows it)
// silently — that is the expected crash artifact, counted in
// ReplayStats::torn_tail. A broken frame *followed by* a well-formed one
// cannot be produced by the append path and means the file was tampered
// with or the disk lied: that throws csq::CorruptJournalError. Reopening a
// replayed journal for appending must therefore physically drop the torn
// tail first (JournalOptions::trim_tail_bytes) — otherwise the next append
// would land after the partial frame and manufacture exactly that
// mid-file-corruption shape.
//
// Durability policy: appends are written immediately (write(2)), fsync is
// batched every JournalOptions::fsync_every records; flush()/close() always
// sync. A SIGKILL therefore loses nothing already appended (the page cache
// survives the process); only an OS/power failure can lose the un-synced
// tail, and that loss is always a *tail*, handled as torn.
//
// Fault sites: durable.journal.append, durable.journal.fsync,
// durable.journal.replay.
//
// Thread-safety: Journal serializes appends internally; replay()/recover()
// are stateless free functions.
//
// Throws csq::InvalidInputError (unopenable path, oversized payload, payload
// containing '\n'), csq::CorruptJournalError (mid-file corruption),
// csq::InternalError (write/fsync syscall failures on an open journal).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace csq::durable {

// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) of `size` bytes.
// crc32("123456789") == 0xCBF43926. Chain blocks by passing the previous
// result as `seed`.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

enum class RecordKind : std::uint8_t { kRequest = 0, kResponse = 1 };

// One decoded journal frame.
struct Record {
  RecordKind kind = RecordKind::kRequest;
  std::uint64_t seq = 0;
  std::string payload;
};

struct ReplayStats {
  std::size_t frames = 0;      // well-formed frames decoded
  std::uint64_t max_seq = 0;   // highest sequence number seen
  bool torn_tail = false;      // a broken tail was discarded
  std::size_t torn_bytes = 0;  // size of the discarded tail
};

struct JournalOptions {
  // fsync after this many appended records (1 = sync every record). The
  // batch counter is shared by request and response records.
  int fsync_every = 32;
  // First sequence number handed out by append_request. Recovery passes
  // ReplayStats::max_seq + 1 so re-journaled work never collides with
  // history.
  std::uint64_t next_seq = 1;
  // Bytes to truncate off the end of an existing file before the first
  // append. Recovery passes ReplayStats::torn_bytes so new frames land
  // where the good history ends — appending *after* a torn tail would turn
  // the expected crash artifact into mid-file corruption that the next
  // replay() refuses.
  std::size_t trim_tail_bytes = 0;
};

// Append handle on one journal file. Move-only; the destructor closes
// (best-effort sync) if still open.
class Journal {
 public:
  Journal() = default;  // closed handle
  ~Journal();
  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Open `path` for appending, creating it if missing. Existing contents are
  // preserved — pass ReplayStats::max_seq + 1 as opts.next_seq when
  // appending to a replayed journal.
  [[nodiscard]] static Journal open(const std::string& path, JournalOptions opts = {});

  // Append a request record; returns its sequence number.
  std::uint64_t append_request(const std::string& line);
  // Append the response paired to request `seq`.
  void append_response(std::uint64_t seq, const std::string& line);
  // Low-level append of an explicit record (tests and tools; the typed
  // wrappers above are the server path).
  void append_record(RecordKind kind, std::uint64_t seq, const std::string& payload);

  // fsync anything not yet covered by the batch policy. No-op when closed.
  void flush();
  // flush + close the descriptor. Idempotent.
  void close();

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }
  // fsync(2) calls issued so far (batching observability for tests).
  [[nodiscard]] long fsyncs() const;

 private:
  mutable std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  JournalOptions opts_;
  std::uint64_t next_seq_ = 1;
  int unsynced_ = 0;   // records appended since the last fsync
  long fsync_count_ = 0;
  // Set when a failed append left bytes on disk that could not be rolled
  // back: the file may end in a partial frame, so further appends would
  // create mid-file corruption. All later appends throw.
  bool poisoned_ = false;

  void sync_locked();
};

// Decode every frame of `path`. A missing or empty file replays to an empty
// record list; a torn tail is discarded into `stats`; mid-file corruption
// throws csq::CorruptJournalError naming the byte offset.
[[nodiscard]] std::vector<Record> replay(const std::string& path,
                                         ReplayStats* stats = nullptr);

// One request's recovered state: the original request line plus, when the
// request completed before the crash, the exact response bytes.
struct RecoveredRequest {
  std::uint64_t seq = 0;
  std::string request;
  std::string response;  // empty = never completed
  [[nodiscard]] bool completed() const { return !response.empty(); }
};

struct Recovery {
  std::vector<RecoveredRequest> requests;  // in first-appearance journal order
  ReplayStats stats;
};

// replay() + pair request/response records by sequence number. Duplicate
// records for a seq keep the first occurrence (an append retried after a
// partially observed failure must not change history); a response with no
// matching request is mid-file corruption and throws
// csq::CorruptJournalError.
[[nodiscard]] Recovery recover(const std::string& path);

}  // namespace csq::durable
