#include "mg1/mmc.h"

#include <cmath>

#include "core/status.h"
#include "obs/obs.h"

namespace csq::mg1 {

double erlang_c(int c, double a) {
  if (c < 1 || a < 0.0) throw InvalidInputError("erlang_c: bad params");
  if (a >= c) throw UnstableError("erlang_c: offered load >= c (unstable)");
  // Iteratively compute the Erlang-B blocking probability, then convert.
  double b = 1.0;
  for (int k = 1; k <= c; ++k) b = a * b / (k + a * b);
  CSQ_OBS_COUNT_N("mg1.erlang.terms", c);
  return b / (1.0 - (a / c) * (1.0 - b));
}

double mmc_wait(int c, double lambda, double mu) {
  if (mu <= 0.0) throw InvalidInputError("mmc_wait: mu <= 0");
  const double a = lambda / mu;
  const double pw = erlang_c(c, a);
  return pw / (c * mu - lambda);
}

double mmc_response(int c, double lambda, double mu) { return 1.0 / mu + mmc_wait(c, lambda, mu); }

}  // namespace csq::mg1
