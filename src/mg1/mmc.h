// Erlang-C / M/M/c formulas — used to validate the CS-CQ analysis in the
// limiting case lambda_L -> 0, where short jobs see an M/M/2 queue.
//
// Throws csq::InvalidInputError on malformed arguments and
// csq::UnstableError when the offered load is outside the stability
// region (core/status.h).
#pragma once

namespace csq::mg1 {

// Erlang-C probability of waiting in M/M/c with offered load a = lambda/mu.
// Requires a < c.
[[nodiscard]] double erlang_c(int c, double offered_load);

// Mean waiting time in M/M/c.
[[nodiscard]] double mmc_wait(int c, double lambda, double mu);

// Mean response time in M/M/c.
[[nodiscard]] double mmc_response(int c, double lambda, double mu);

}  // namespace csq::mg1
