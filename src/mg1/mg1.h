// Classical single-server queueing formulas used throughout the analysis:
// Pollaczek-Khinchine, and the M/G/1 queue whose busy periods begin with a
// setup time (Takagi 1991) — the model the paper uses for the long jobs'
// response time under both cycle-stealing policies.
//
// Throws csq::InvalidInputError on malformed arguments,
// csq::UnstableError when the offered load is outside the stability
// region, and csq::DeadlineExceededError / csq::CancelledError when a
// passed-in RunBudget is already interrupted at entry — the formulas are
// closed-form, so entry is the only poll point (core/status.h,
// core/deadline.h).
#pragma once

#include "core/deadline.h"
#include "dist/distribution.h"

namespace csq::mg1 {

// Mean waiting time (time in queue, excluding service) of M/G/1 FCFS:
// lambda m2 / (2 (1 - rho)). Throws std::domain_error when rho >= 1.
[[nodiscard]] double pk_wait(double lambda, const dist::Moments& job,
                             const RunBudget& budget = {});

// Mean response time (wait + service).
[[nodiscard]] double pk_response(double lambda, const dist::Moments& job,
                                 const RunBudget& budget = {});

// Mean waiting time of an M/G/1 queue in which every busy period is preceded
// by an independent setup time S (possibly zero with positive probability):
//   E[W] = lambda m2 / (2(1-rho)) + (2 E[S] + lambda E[S^2]) / (2(1 + lambda E[S])).
[[nodiscard]] double setup_wait(double lambda, const dist::Moments& job,
                                const dist::Moments& setup, const RunBudget& budget = {});

[[nodiscard]] double setup_response(double lambda, const dist::Moments& job,
                                    const dist::Moments& setup,
                                    const RunBudget& budget = {});

// M/M/1 mean response time 1/(mu - lambda).
[[nodiscard]] double mm1_response(double lambda, double mu, const RunBudget& budget = {});

// Second moment of M/G/1 FCFS waiting time (via the Takacs recursion):
//   E[W^2] = 2 E[W]^2 + lambda m3 / (3 (1 - rho)).
[[nodiscard]] double pk_wait_second_moment(double lambda, const dist::Moments& job,
                                           const RunBudget& budget = {});

}  // namespace csq::mg1
