#include "mg1/mg1.h"

#include <string>
#include <utility>

#include "core/status.h"

#include "core/faultpoint.h"

namespace csq::mg1 {

namespace {
double check_rho(double lambda, const dist::Moments& job, const RunBudget& budget,
                 const char* where) {
  budget.check(where);  // closed-form formulas: entry is the only poll point
  if (lambda < 0.0) throw InvalidInputError("mg1: lambda < 0");
  const double rho = lambda * job.m1;
  if (rho >= 1.0) {
    Diagnostics d;
    d.rho_long = rho;  // the M/G/1 queues here model the long (donor) class
    throw UnstableError("mg1: rho = " + std::to_string(rho) + " >= 1 (unstable)",
                        std::move(d));
  }
  return rho;
}
}  // namespace

double pk_wait(double lambda, const dist::Moments& job, const RunBudget& budget) {
  const double rho = check_rho(lambda, job, budget, "mg1::pk_wait");
  CSQ_FAULT_POINT("mg1.pk.wait");
  return lambda * job.m2 / (2.0 * (1.0 - rho));
}

double pk_response(double lambda, const dist::Moments& job, const RunBudget& budget) {
  return job.m1 + pk_wait(lambda, job, budget);
}

double setup_wait(double lambda, const dist::Moments& job, const dist::Moments& setup,
                  const RunBudget& budget) {
  check_rho(lambda, job, budget, "mg1::setup_wait");
  CSQ_FAULT_POINT("mg1.setup.wait");
  return pk_wait(lambda, job) +
         (2.0 * setup.m1 + lambda * setup.m2) / (2.0 * (1.0 + lambda * setup.m1));
}

double setup_response(double lambda, const dist::Moments& job, const dist::Moments& setup,
                      const RunBudget& budget) {
  return job.m1 + setup_wait(lambda, job, setup, budget);
}

double mm1_response(double lambda, double mu, const RunBudget& budget) {
  budget.check("mg1::mm1_response");
  if (lambda >= mu) {
    Diagnostics d;
    d.rho_long = lambda / mu;
    throw UnstableError("mm1: lambda >= mu (unstable)", std::move(d));
  }
  return 1.0 / (mu - lambda);
}

double pk_wait_second_moment(double lambda, const dist::Moments& job,
                             const RunBudget& budget) {
  const double rho = check_rho(lambda, job, budget, "mg1::pk_wait_second_moment");
  const double w1 = pk_wait(lambda, job);
  return 2.0 * w1 * w1 + lambda * job.m3 / (3.0 * (1.0 - rho));
}

}  // namespace csq::mg1
