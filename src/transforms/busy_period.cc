#include "transforms/busy_period.h"

#include <cmath>
#include <stdexcept>

#include "core/status.h"

namespace csq::transforms {

using jets::Jet;

namespace {
void require_stable(const dist::Moments& job, double lambda) {
  if (lambda < 0.0) {
    Diagnostics d;
    d.notes.push_back("lambda = " + std::to_string(lambda));
    throw InvalidInputError("busy period: lambda < 0", std::move(d));
  }
  if (lambda * job.m1 >= 1.0) {
    Diagnostics d;
    d.rho_long = lambda * job.m1;
    throw UnstableError("busy period: rho >= 1, busy period has no finite moments",
                        std::move(d));
  }
}
}  // namespace

dist::Moments mg1_busy_period(const dist::Moments& job, double lambda) {
  require_stable(job, lambda);
  const double r = 1.0 - lambda * job.m1;  // 1 - rho
  const double b1 = job.m1 / r;
  const double b2 = job.m2 / (r * r * r);
  const double b3 = job.m3 / (r * r * r * r) +
                    3.0 * lambda * job.m2 * job.m2 / (r * r * r * r * r);
  return {b1, b2, b3};
}

dist::Moments delay_cycle(const Jet& initial_work, const dist::Moments& job,
                          double lambda) {
  require_stable(job, lambda);
  const dist::Moments bl = mg1_busy_period(job, lambda);
  // sigma(s) = s + lambda (1 - B~_L(s)); constant term is 0.
  const Jet bl_lst = jets::lst_from_moments(bl.m1, bl.m2, bl.m3);
  const Jet sigma = Jet::variable() + lambda * (1.0 - bl_lst);
  const Jet b = jets::compose0(initial_work, sigma);
  const auto mm = jets::moments_from_lst(b);
  return {mm.m1, mm.m2, mm.m3};
}

jets::Jet batch_initial_work_lst(const dist::Moments& job, double lambda, double delta) {
  if (delta <= 0.0) throw InvalidInputError("batch_initial_work_lst: delta <= 0");
  const Jet x = jets::lst_from_moments(job.m1, job.m2, job.m3);
  // G(z) = E[z^N] = delta / (delta + lambda (1 - z)); W~ = X~ * G(X~).
  // G's derivatives at z0 = X~(0) = 1: G(1)=1, G^(k)(1) = k! (lambda/delta)^k.
  const double r = lambda / delta;
  const std::array<double, jets::kOrder> g_derivs = {1.0, r, 2.0 * r * r, 6.0 * r * r * r};
  return x * jets::compose(g_derivs, x);
}

dist::Moments batch_busy_period(const dist::Moments& job, double lambda, double delta) {
  return delay_cycle(batch_initial_work_lst(job, lambda, delta), job, lambda);
}

dist::Moments batch_busy_period_window(const dist::Moments& job, double lambda,
                                       const dist::Moments& window) {
  if (window.m1 <= 0.0)
    throw InvalidInputError("batch_busy_period_window: window mean <= 0");
  const Jet x = jets::lst_from_moments(job.m1, job.m2, job.m3);
  // G(z) = E[z^N] = Theta~(lambda (1 - z)); derivatives at z = 1:
  // G^(k)(1) = lambda^k E[Theta^k].
  const std::array<double, jets::kOrder> g_derivs = {
      1.0, lambda * window.m1, lambda * lambda * window.m2,
      lambda * lambda * lambda * window.m3};
  const Jet w = x * jets::compose(g_derivs, x);
  return delay_cycle(w, job, lambda);
}

}  // namespace csq::transforms
