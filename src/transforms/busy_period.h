// Busy-period transforms for the busy-period-transition technique.
//
// The CS-CQ chain replaces the long-job dimension with transitions whose
// durations are busy periods of the long-job M/G/1 queue:
//
//   B_L      — busy period started by a single long job;
//   B_{N+1}  — busy period started by N+1 long jobs, where N is the number
//              of Poisson(lambda) arrivals during an Exp(delta) window (the
//              wait for the first of the in-service shorts to complete;
//              delta = 2 mu_S for CS-CQ, mu_S for the CS-ID short-service
//              accumulation period).
//
// Moments of B_L come from the classical closed forms; moments of B_{N+1}
// are extracted by jet (truncated Taylor) arithmetic on the LST composition
//   B~(s) = W~(s + lambda (1 - B~_L(s))),
//   W~(s) = X~(s) * delta / (delta + lambda (1 - X~(s))).
//
// Throws csq::InvalidInputError on malformed arguments and
// csq::UnstableError when the offered load is outside the stability
// region (core/status.h).
#pragma once

#include "dist/distribution.h"
#include "jets/jet.h"

namespace csq::transforms {

// First three raw moments of the M/G/1 busy period with job-size moments
// `job` and Poisson arrival rate `lambda`. Requires rho = lambda*m1 < 1.
[[nodiscard]] dist::Moments mg1_busy_period(const dist::Moments& job, double lambda);

// Busy period started by an initial amount of work with LST jet
// `initial_work`, into which Poisson(lambda) arrivals of size `job` keep
// accumulating ("delay cycle"). Requires rho < 1.
[[nodiscard]] dist::Moments delay_cycle(const jets::Jet& initial_work,
                                        const dist::Moments& job, double lambda);

// Moments of B_{N+1}(delta) described above.
[[nodiscard]] dist::Moments batch_busy_period(const dist::Moments& job, double lambda,
                                              double delta);

// Initial work of B_{N+1}: W = sum of N+1 jobs, N ~ #arrivals in Exp(delta).
[[nodiscard]] jets::Jet batch_initial_work_lst(const dist::Moments& job, double lambda,
                                               double delta);

// Generalization of B_{N+1} to an arbitrary accumulation window: busy period
// started by N+1 jobs where N ~ #Poisson(lambda) arrivals during a window
// with the given raw moments (for exponential windows this reduces to
// batch_busy_period with delta = 1/window.m1). Used by the phase-type-shorts
// extension, where the window is the first completion among two PH services.
[[nodiscard]] dist::Moments batch_busy_period_window(const dist::Moments& job, double lambda,
                                                     const dist::Moments& window);

}  // namespace csq::transforms
