// Capacity planning with the analytic solver: given an SLA on both classes
// (short-job mean response <= sla_short; long-job penalty vs a dedicated
// partition <= max_penalty), find the highest sustainable short-job load
// under each policy by bisection. This is the kind of what-if loop the
// paper's "seconds, not hours" analysis speed enables.
#include <functional>
#include <iostream>

#include "csq.h"

namespace {

using namespace csq;

// Largest rho_S in (0, hi) satisfying `ok` (monotone violation assumed).
double bisect_max_load(double hi, const std::function<bool(double)>& ok) {
  double lo = 0.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    (ok(mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace

int main() {
  const double rho_l = 0.5, mean_s = 1.0, mean_l = 10.0, scv_l = 8.0;
  const double sla_short = 8.0;      // mean short response must stay below this
  const double max_penalty = 0.10;   // longs may lose at most 10% vs Dedicated

  const SystemConfig probe = SystemConfig::paper_setup(0.1, rho_l, mean_s, mean_l, scv_l);
  const double dedicated_long = mg1::pk_response(probe.lambda_long, probe.long_size->moments());

  std::cout << "SLA: E[T_S] <= " << sla_short << ", long penalty <= " << 100 * max_penalty
            << "% (vs dedicated long host " << dedicated_long << ")\n\n";

  Table t({"policy", "max rho_S meeting SLA", "E[T_S] there", "long penalty there"});
  for (const Policy p : {Policy::kDedicated, Policy::kCsId, Policy::kCsCq}) {
    const auto ok = [&](double rho_s) {
      const SystemConfig c = SystemConfig::paper_setup(rho_s, rho_l, mean_s, mean_l, scv_l);
      if (!is_stable(p, c)) return false;
      try {
        const PolicyMetrics m = analyze(p, c);
        const double penalty = (m.longs.mean_response - dedicated_long) / dedicated_long;
        return m.shorts.mean_response <= sla_short && penalty <= max_penalty;
      } catch (const std::domain_error&) {
        return false;
      }
    };
    const double best = bisect_max_load(2.0, ok);
    const SystemConfig c = SystemConfig::paper_setup(best, rho_l, mean_s, mean_l, scv_l);
    const PolicyMetrics m = analyze(p, c);
    t.add_row({policy_label(p), format_cell(best),
               format_cell(m.shorts.mean_response),
               format_cell(100.0 * (m.longs.mean_response - dedicated_long) / dedicated_long) +
                   "%"});
  }
  t.print(std::cout);

  std::cout << "\nReading: cycle stealing converts the long host's idle time into\n"
               "admissible short-job throughput — CS-CQ buys the most headroom.\n";

  // Beyond means: the chain tracks the short-job count exactly, so the
  // matrix-geometric tail gives buffer-sizing numbers directly.
  std::cout << "\nBacklog tail under CS-CQ at the SLA point:\n";
  Table tail({"rho_S", "P(N_S > n) decay", "99th pct of N_S"});
  for (const double rho_s : {0.8, 1.0, 1.2}) {
    const SystemConfig c = SystemConfig::paper_setup(rho_s, rho_l, mean_s, mean_l, scv_l);
    const analysis::CscqResult r = analysis::analyze_cscq(c);
    tail.add_row({rho_s, r.short_count_decay, static_cast<double>(r.short_count_p99)});
  }
  tail.print(std::cout);
  return 0;
}
