// Quickstart: analyze one system under all three policies and cross-check
// the CS-CQ analysis against the discrete-event simulator.
//
//   build/examples/quickstart
#include <iostream>

#include "csq.h"

int main() {
  using namespace csq;

  // Shorts: exponential, mean 1; longs: exponential, mean 10.
  // Loads: rho_S = 1.15 (the short host alone would be OVERLOADED),
  //        rho_L = 0.5  (the long host has idle cycles to donate).
  const SystemConfig config = SystemConfig::paper_setup(
      /*rho_short=*/1.15, /*rho_long=*/0.5, /*mean_short=*/1.0, /*mean_long=*/10.0);

  std::cout << "System: lambda_S = " << config.lambda_short
            << ", lambda_L = " << config.lambda_long
            << ", E[X_S] = " << config.short_size->mean()
            << ", E[X_L] = " << config.long_size->mean() << "\n\n";

  Table table({"policy", "stable?", "E[T] short", "E[T] long"});
  for (const Policy p : {Policy::kDedicated, Policy::kCsId, Policy::kCsCq}) {
    if (!is_stable(p, config)) {
      table.add_row({policy_label(p), "NO", "-", "-"});
      continue;
    }
    const PolicyMetrics m = analyze(p, config);
    table.add_row({policy_label(p), "yes", format_cell(m.shorts.mean_response),
                   format_cell(m.longs.mean_response)});
  }
  table.print(std::cout);

  std::cout << "\nCross-check (CS-CQ, simulation, 10^6 completions):\n";
  sim::SimOptions opts;
  opts.total_completions = 1000000;
  const sim::SimResult s = sim::simulate(sim::PolicyKind::kCsCq, config, opts);
  std::cout << "  sim E[T] short = " << s.shorts.mean_response << " +- " << s.shorts.ci95
            << "\n  sim E[T] long  = " << s.longs.mean_response << " +- " << s.longs.ci95
            << "\n";
  return 0;
}
