// A two-node web/application farm with heavy-tailed request sizes: static
// requests (shorts) vs report/export requests (longs). The analysis assumes
// exponential shorts; this example uses the simulator to check that the
// policy ranking survives heavy-tailed (bounded Pareto) short sizes, the
// canonical web workload model.
#include <iostream>
#include <memory>

#include "csq.h"

int main() {
  using namespace csq;

  const double rho_s = 1.1, rho_l = 0.45;

  std::cout << "=== Web farm: analysis (exponential shorts) ===\n";
  const SystemConfig analytic =
      SystemConfig::paper_setup(rho_s, rho_l, 1.0, 20.0, 8.0);
  Table t1({"policy", "E[T_S]", "E[T_L]"});
  for (const Policy p : {Policy::kCsId, Policy::kCsCq}) {
    const PolicyMetrics m = analyze(p, analytic);
    t1.add_row({policy_label(p), format_cell(m.shorts.mean_response),
                format_cell(m.longs.mean_response)});
  }
  t1.print(std::cout);

  std::cout << "\n=== Same loads, bounded-Pareto shorts (alpha=1.5), simulation ===\n";
  SystemConfig heavy = analytic;
  const auto bp = std::make_shared<dist::BoundedPareto>(
      dist::BoundedPareto::with_mean(1.0, 1000.0, 1.5));
  heavy.short_size = bp;
  heavy.lambda_short = rho_s / bp->mean();

  sim::SimOptions opts;
  opts.total_completions = 1500000;
  Table t2({"policy", "sim E[T_S]", "+-", "sim E[T_L]", "+-"});
  for (const auto kind :
       {sim::PolicyKind::kCsId, sim::PolicyKind::kCsCq, sim::PolicyKind::kMg2Sjf}) {
    const sim::SimResult r = sim::simulate(kind, heavy, opts);
    t2.add_row({sim::policy_name(kind), format_cell(r.shorts.mean_response),
                format_cell(r.shorts.ci95), format_cell(r.longs.mean_response),
                format_cell(r.longs.ci95)});
  }
  t2.print(std::cout);

  std::cout << "\nReading: CS-CQ's advantage over CS-ID for shorts is preserved (and\n"
               "typically amplified) under heavy-tailed short sizes — queued shorts,\n"
               "not just lucky arrivals, get to use donated cycles.\n";
  return 0;
}
