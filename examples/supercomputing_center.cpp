// A supercomputing-center scenario in the spirit of the paper's Table 1
// (Xolas/Pleiades/Cray J90-class installations running LoadLeveler/LSF/PBS/
// NQS, run-to-completion): users submit an upper bound on CPU time; jobs
// under 1 hour go to the "short" partition, the rest to the "long"
// partition. Should the scheduler let short jobs steal the long partition's
// idle cycles, and is a central queue worth it over immediate dispatch?
#include <iostream>

#include "csq.h"

int main() {
  using namespace csq;

  // Time unit: hours. Short jobs average 0.5h; long jobs average 6h with
  // high variability (C^2 = 8), which matches measured supercomputing
  // workloads far better than exponential.
  const double mean_short = 0.5, mean_long = 6.0, scv_long = 8.0;
  const double rho_long = 0.4;  // the long partition is half-idle

  std::cout << "Supercomputing center, mean_S=" << mean_short << "h, mean_L=" << mean_long
            << "h (C^2=" << scv_long << "), rho_L=" << rho_long << "\n\n";

  Table table({"rho_S", "Dedicated E[T_S]", "CS-ID E[T_S]", "CS-CQ E[T_S]",
               "Dedicated E[T_L]", "CS-ID E[T_L]", "CS-CQ E[T_L]"});
  for (const double rho_s : {0.5, 0.8, 0.95, 1.05, 1.2, 1.4}) {
    const auto rows =
        sweep_rho_short(rho_long, mean_short, mean_long, scv_long, {rho_s});
    const SweepRow& r = rows.front();
    table.add_row({r.x, r.dedicated_short, r.csid_short, r.cscq_short, r.dedicated_long,
                   r.csid_long, r.cscq_long});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: beyond rho_S = 1 only the cycle-stealing policies keep the\n"
         "short partition stable at all; below it, CS-CQ cuts short-job response\n"
         "by up to an order of magnitude while long jobs pay only a few percent\n"
         "(they can wait at most one residual short service).\n";

  // What does the long partition actually pay at the heaviest stable point?
  const SystemConfig c =
      SystemConfig::paper_setup(1.2, rho_long, mean_short, mean_long, scv_long);
  const double ded_long =
      mg1::pk_response(c.lambda_long, c.long_size->moments());
  const auto cscq = analysis::analyze_cscq(c);
  std::cout << "\nAt rho_S=1.2: long-job penalty vs a dedicated long partition = "
            << 100.0 * (cscq.metrics.longs.mean_response - ded_long) / ded_long << "%\n";
  return 0;
}
