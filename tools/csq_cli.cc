// csq_cli — command-line front end for the cyclesteal library.
//
//   csq_cli analyze   --policy cscq|csid|dedicated [workload flags]
//                     [--resilient] (cscq only: exact -> truncated ->
//                     simulation degradation ladder)
//   csq_cli simulate  --policy <registry token; see docs/policies.md>
//                     [workload flags] [--dist exp|coxian|bpareto]
//                     [--completions N] [--seed N] [--tags-cutoff X]
//                     [--steal-threshold N] [--steal-batch N]
//                     [--share-threshold N] [--reps N] [--target-ci X]
//                     [--max-reps N]
//   csq_cli sweep     --x rho_s|rho_l --from A --to B --points N
//                     [workload flags] [--csv] [--resilient]
//                     [--checkpoint FILE [--checkpoint-every N]]
//                     (crash-resumable: periodic atomic snapshots; rerun
//                     with the same flags + file to resume byte-identically)
//   csq_cli sweep     --policy a,b,... [--dist exp|coxian|bpareto]
//                     [--from A --to B --points N] [--csv|--json]
//                     (policy x dist x load panel: analysis for
//                     cscq/csid/dedicated, replicated simulation elsewhere;
//                     bit-identical across --threads values)
//   csq_cli stability [--points N]
//
// Workload flags: --rho-s X --rho-l X --mean-s X --mean-l X --scv-l X
// (defaults 0.9, 0.5, 1, 1, 1; shorts exponential as in the paper).
//
// Global flags: --json-errors (emit structured diagnostics as JSON on
// stdout), --metrics[=file] (flat JSON dump of the obs counters after the
// command; stdout without a file), --trace=file (record solver-stage spans
// and write Chrome trace-event JSON — load in chrome://tracing; see
// docs/observability.md), --verify none|basic|full (self-check level for
// analytic results),
// --timeout-ms X (wall-clock RunBudget for the command; exceeded deadlines
// exit 7 unless --resilient degrades to a cheaper answer first), --fault
// site:count:kind[,site:count:kind...] (arm deterministic fault-injection
// sites; requires a -DCSQ_FAULT_INJECTION=ON build, see core/faultpoint.h).
//
// Exit codes follow the error taxonomy: 0 ok, 1 internal error, 2 invalid
// input, 3 unstable (outside the stability region), 4 solver not converged,
// 5 ill-conditioned system, 6 result failed self-verification, 7 deadline
// exceeded, 8 cancelled, 10 corrupt durability artifact.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "csq.h"
#include "callgraph.h"
#include "lint.h"

namespace {

using namespace csq;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  [[nodiscard]] double number(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    try {
      return std::stod(it->second);
    } catch (const std::exception&) {
      throw InvalidInputError("invalid number for --" + key + ": '" + it->second + "'");
    }
  }
  [[nodiscard]] std::string text(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const { return flags.count(key) > 0; }
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc < 2) return a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) throw InvalidInputError("expected --flag, got " + key);
    key = key.substr(2);
    if (key.empty() || key[0] == '=')
      throw InvalidInputError("malformed flag \"" + std::string(argv[i]) +
                              "\": empty flag name");
    // --key=value binds tighter than the next-token form, so values that
    // start with "--" (or look like flags) stay expressible.
    const std::size_t eq = key.find('=');
    if (eq != std::string::npos) {
      if (eq + 1 == key.size())
        throw InvalidInputError("malformed flag \"" + std::string(argv[i]) +
                                "\": empty value (drop the '=' for a boolean flag)");
      a.flags[key.substr(0, eq)] = key.substr(eq + 1);
      continue;
    }
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      a.flags[key] = argv[++i];
    } else {
      a.flags[key] = "1";  // boolean flag
    }
  }
  return a;
}

SystemConfig workload(const Args& a) {
  return SystemConfig::paper_setup(a.number("rho-s", 0.9), a.number("rho-l", 0.5),
                                   a.number("mean-s", 1.0), a.number("mean-l", 1.0),
                                   a.number("scv-l", 1.0));
}

VerifyLevel verify_level(const Args& a) {
  const std::string v = a.text("verify", "basic");
  if (v == "none") return VerifyLevel::kNone;
  if (v == "basic") return VerifyLevel::kBasic;
  if (v == "full") return VerifyLevel::kFull;
  throw InvalidInputError("unknown --verify level: " + v + " (want none|basic|full)");
}

// The command's RunBudget: inert without --timeout-ms.
RunBudget run_budget(const Args& a) {
  if (!a.has("timeout-ms")) return {};
  return RunBudget::with_timeout_ms(a.number("timeout-ms", 0.0));
}

void print_metrics(const PolicyMetrics& m) {
  Table t({"class", "E[T]", "E[W]", "E[N]"});
  t.add_row({"short", format_cell(m.shorts.mean_response), format_cell(m.shorts.mean_wait),
             format_cell(m.shorts.mean_number)});
  t.add_row({"long", format_cell(m.longs.mean_response), format_cell(m.longs.mean_wait),
             format_cell(m.longs.mean_number)});
  t.print(std::cout);
}

int cmd_analyze(const Args& a) {
  const SystemConfig c = workload(a);
  const std::string p = a.text("policy", "cscq");
  const VerifyLevel verify = verify_level(a);
  const RunBudget budget = run_budget(a);
  if (a.has("resilient")) {
    if (p != "cscq") {
      std::cerr << "--resilient applies to --policy cscq only\n";
      return 2;
    }
    analysis::ResilientOptions opts;
    opts.budget = budget;
    opts.verify = verify;
    const analysis::ResilientResult r = analysis::analyze_resilient(c, opts);
    print_metrics(r.metrics);
    std::cout << "rung: " << analysis::rung_name(r.rung_used);
    if (r.rung_used == analysis::Rung::kTruncated)
      std::cout << " (caps " << r.truncation_cap << ", stranded mass "
                << format_cell(r.truncation_mass) << ")";
    if (r.rung_used == analysis::Rung::kSimulation)
      std::cout << " (" << r.replications_used << " replications, ci95 short "
                << format_cell(r.ci_half_width_short) << ", long "
                << format_cell(r.ci_half_width_long) << ")";
    std::cout << "\n";
    for (const analysis::RungAttempt& at : r.attempts)
      if (!at.succeeded)
        std::cout << "  " << analysis::rung_name(at.rung) << ": "
                  << error_code_name(at.status.code) << " — " << at.status.message << "\n";
    return 0;
  }
  PolicyMetrics m;
  if (p == "cscq") {
    m = analyze(Policy::kCsCq, c, /*busy_period_moments=*/3, verify, budget);
  } else if (p == "csid") {
    m = analyze(Policy::kCsId, c, /*busy_period_moments=*/3, verify, budget);
  } else if (p == "dedicated") {
    m = analyze(Policy::kDedicated, c, /*busy_period_moments=*/3, verify, budget);
  } else {
    std::cerr << "unknown analytic policy: " << p << "\n";
    return 2;
  }
  print_metrics(m);
  return 0;
}

// Per-policy knobs shared by simulate and the sweep panel.
PolicyConfig policy_knobs(const Args& a) {
  PolicyConfig cfg;
  cfg.steal_threshold = static_cast<int>(a.number("steal-threshold", cfg.steal_threshold));
  cfg.steal_batch = static_cast<int>(a.number("steal-batch", cfg.steal_batch));
  cfg.share_threshold = static_cast<int>(a.number("share-threshold", cfg.share_threshold));
  return cfg;
}

// Workload honoring --dist (long-size family); plain --scv-l workload
// otherwise, so existing invocations are unchanged.
SystemConfig sim_workload(const Args& a) {
  if (!a.has("dist")) return workload(a);
  return panel_workload(job_size_dist_from_name(a.text("dist", "exp")),
                        a.number("rho-s", 0.9), a.number("rho-l", 0.5),
                        a.number("mean-s", 1.0), a.number("mean-l", 1.0),
                        a.number("scv-l", 1.0));
}

int cmd_simulate(const Args& a) {
  // Policy tokens resolve through the registry — one source of names for
  // the CLI, serve layer and sweep panel (csq::InvalidInputError exits 2
  // and lists the valid tokens).
  const sim::PolicyKind kind = sim::policy_kind_from_token(a.text("policy", "cscq"));
  sim::SimOptions o;
  o.total_completions = static_cast<std::size_t>(a.number("completions", 500000));
  o.seed = static_cast<std::uint64_t>(a.number("seed", o.seed));
  o.tags_cutoff = a.number("tags-cutoff", o.tags_cutoff);
  o.policy = policy_knobs(a);
  Table t({"class", "E[T]", "ci95", "completions"});
  const int reps = static_cast<int>(a.number("reps", 1));
  if (reps > 1 || a.has("target-ci")) {
    // Independent replications with deterministic per-replication substreams:
    // results are identical for any --threads value (except the adaptive
    // replication *count* under --timeout-ms; see sim::ReplicationOptions).
    sim::ReplicationOptions ropts;
    ropts.replications = reps;
    ropts.threads = static_cast<int>(a.number("threads", 1));
    ropts.budget = run_budget(a);
    ropts.target_rel_ci = a.number("target-ci", 0.0);
    ropts.max_replications =
        static_cast<int>(a.number("max-reps", std::max(ropts.max_replications, reps)));
    const sim::ReplicatedResult r = sim::simulate_replications(kind, sim_workload(a), o, ropts);
    t.add_row({"short", format_cell(r.shorts.mean_response), format_cell(r.shorts.ci95),
               std::to_string(r.shorts.completions)});
    t.add_row({"long", format_cell(r.longs.mean_response), format_cell(r.longs.ci95),
               std::to_string(r.longs.completions)});
  } else {
    const sim::SimResult r = sim::simulate(kind, sim_workload(a), o);
    t.add_row({"short", format_cell(r.shorts.mean_response), format_cell(r.shorts.ci95),
               std::to_string(r.shorts.completions)});
    t.add_row({"long", format_cell(r.longs.mean_response), format_cell(r.longs.ci95),
               std::to_string(r.longs.completions)});
  }
  t.print(std::cout);
  return 0;
}

// JSON numbers rendered with round-trip precision: the acceptance contract
// is byte-identical --json output across thread counts, so every double is
// printed at %.17g (NaN columns become null — JSON has no NaN).
std::string json_number(double v) {
  if (std::isnan(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// sweep --policy a,b,... [--dist exp|coxian|bpareto]: the policy x
// job-size-distribution x load panel. Analytic policies (cscq/csid/
// dedicated) evaluate exactly; the rest run replicated simulation. Rows are
// policy-major and bit-identical for every --threads value.
int cmd_sweep_panel(const Args& a) {
  std::vector<sim::PolicyKind> kinds;
  const std::string spec = a.text("policy", "");
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string one =
        spec.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!one.empty()) kinds.push_back(sim::policy_kind_from_token(one));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (kinds.empty()) {
    std::cerr << "sweep --policy needs a comma-separated policy list\n";
    return 2;
  }
  const JobSizeDist dist = job_size_dist_from_name(a.text("dist", "exp"));
  const auto grid = linspace(a.number("from", 0.1), a.number("to", 1.3),
                             static_cast<int>(a.number("points", 7)));
  PanelOptions opts;
  opts.threads = static_cast<int>(a.number("threads", 1));
  opts.seed = static_cast<std::uint64_t>(a.number("seed", opts.seed));
  opts.sim_completions = static_cast<std::size_t>(
      a.number("completions", static_cast<double>(opts.sim_completions)));
  opts.sim_replications = static_cast<int>(a.number("reps", opts.sim_replications));
  opts.policy = policy_knobs(a);
  opts.budget = run_budget(a);
  const std::vector<PanelRow> rows = sweep_policy_panel(
      kinds, dist, a.number("rho-l", 0.5), a.number("mean-s", 1.0),
      a.number("mean-l", 1.0), a.number("scv-l", 4.0), grid, opts);
  if (a.has("json")) {
    std::cout << "[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const PanelRow& r = rows[i];
      std::cout << (i == 0 ? "" : ",") << "\n  {\"policy\":\"" << sim::policy_token(r.policy)
                << "\",\"dist\":\"" << job_size_dist_name(r.dist)
                << "\",\"rho_s\":" << json_number(r.rho_short)
                << ",\"rho_l\":" << json_number(r.rho_long)
                << ",\"short_response\":" << json_number(r.short_response)
                << ",\"short_ci95\":" << json_number(r.short_ci95)
                << ",\"long_response\":" << json_number(r.long_response)
                << ",\"long_ci95\":" << json_number(r.long_ci95) << ",\"status\":\""
                << point_status_name(r.status) << "\",\"analytic\":"
                << (r.analytic ? "true" : "false") << "}";
    }
    std::cout << "\n]\n";
    return 0;
  }
  Table t({"policy", "dist", "rho_s", "short_T", "short_ci95", "long_T", "long_ci95",
           "status", "analytic"});
  for (const PanelRow& r : rows)
    t.add_row({sim::policy_token(r.policy), job_size_dist_name(r.dist),
               format_cell(r.rho_short), format_cell(r.short_response),
               format_cell(r.short_ci95), format_cell(r.long_response),
               format_cell(r.long_ci95), point_status_name(r.status),
               r.analytic ? "yes" : "no"});
  if (a.has("csv"))
    t.write_csv(std::cout);
  else
    t.print(std::cout);
  return 0;
}

int cmd_sweep(const Args& a) {
  if (a.has("policy") || a.has("dist")) return cmd_sweep_panel(a);
  const std::string axis = a.text("x", "rho_s");
  const auto grid =
      linspace(a.number("from", 0.05), a.number("to", 1.45),
               static_cast<int>(a.number("points", 15)));
  // Points evaluate on the work-stealing pool; rows are bit-identical for
  // any --threads value (0 = all hardware threads).
  SweepOptions opts;
  opts.threads = static_cast<int>(a.number("threads", 1));
  opts.budget = run_budget(a);
  opts.resilient = a.has("resilient");
  const std::string checkpoint = a.text("checkpoint", "");
  std::vector<SweepRow> rows;
  if (axis != "rho_s" && axis != "rho_l") {
    std::cerr << "unknown sweep axis: " << axis << "\n";
    return 2;
  }
  if (!checkpoint.empty()) {
    // Checkpointed path: identical stdout rows, crash-resumable. Progress
    // notes go to stderr so --csv output stays machine-readable.
    durable::CheckpointedSweepOptions copts;
    copts.sweep = opts;
    copts.every = static_cast<int>(a.number("checkpoint-every", copts.every));
    const durable::CheckpointedSweepResult r =
        axis == "rho_s"
            ? durable::checkpointed_sweep_rho_short(
                  checkpoint, a.number("rho-l", 0.5), a.number("mean-s", 1.0),
                  a.number("mean-l", 1.0), a.number("scv-l", 1.0), grid, copts)
            : durable::checkpointed_sweep_rho_long(
                  checkpoint, a.number("rho-s", 0.9), a.number("mean-s", 1.0),
                  a.number("mean-l", 1.0), a.number("scv-l", 1.0), grid, copts);
    if (r.resumed > 0)
      std::cerr << "sweep: resumed " << r.resumed << " row(s) from " << checkpoint
                << ", evaluated " << r.evaluated << "\n";
    if (r.incomplete > 0)
      std::cerr << "sweep: " << r.incomplete
                << " row(s) still timed out — rerun with the same --checkpoint to finish\n";
    rows = r.rows;
  } else if (axis == "rho_s") {
    rows = sweep_rho_short(a.number("rho-l", 0.5), a.number("mean-s", 1.0),
                           a.number("mean-l", 1.0), a.number("scv-l", 1.0), grid, opts);
  } else {
    rows = sweep_rho_long(a.number("rho-s", 0.9), a.number("mean-s", 1.0),
                          a.number("mean-l", 1.0), a.number("scv-l", 1.0), grid, opts);
  }
  Table t({axis, "ded_short", "csid_short", "cscq_short", "ded_long", "csid_long",
           "cscq_long", "ded_status", "csid_status", "cscq_status"});
  for (const SweepRow& r : rows)
    t.add_row({format_cell(r.x), format_cell(r.dedicated_short), format_cell(r.csid_short),
               format_cell(r.cscq_short), format_cell(r.dedicated_long),
               format_cell(r.csid_long), format_cell(r.cscq_long),
               point_status_name(r.dedicated_status), point_status_name(r.csid_status),
               point_status_name(r.cscq_status)});
  if (a.has("csv"))
    t.write_csv(std::cout);
  else
    t.print(std::cout);
  return 0;
}

int cmd_stability(const Args& a) {
  const int points = static_cast<int>(a.number("points", 20));
  Table t({"rho_l", "dedicated", "csid", "cscq"});
  for (const double rho_l : linspace(0.0, 0.95, points))
    t.add_row({rho_l, analysis::dedicated_max_rho_short(rho_l),
               analysis::csid_max_rho_short(rho_l), analysis::cscq_max_rho_short(rho_l)});
  if (a.has("csv"))
    t.write_csv(std::cout);
  else
    t.print(std::cout);
  return 0;
}

void usage() {
  std::cout <<
      "csq_cli — cycle-stealing task assignment (ICDCS'03 reproduction)\n"
      "usage: csq_cli <analyze|simulate|sweep|stability> [--flags]\n"
      "  workload: --rho-s X --rho-l X --mean-s X --mean-l X --scv-l X\n"
      "  analyze:  --policy cscq|csid|dedicated [--verify none|basic|full]\n"
      "            [--resilient] (cscq: exact->truncated->simulation ladder)\n"
      "  simulate: --policy <registry token; docs/policies.md lists them>\n"
      "                     [--dist exp|coxian|bpareto] [--completions N]\n"
      "                     [--seed N] [--tags-cutoff X] [--steal-threshold N]\n"
      "                     [--steal-batch N] [--share-threshold N] [--reps N]\n"
      "                     [--target-ci X] [--max-reps N]\n"
      "  sweep:    --x rho_s|rho_l --from A --to B --points N [--csv]\n"
      "            [--resilient] [--checkpoint FILE [--checkpoint-every N]]\n"
      "            (--checkpoint: crash-resumable; rerun with the same flags\n"
      "             and file to resume — output rows are byte-identical)\n"
      "  sweep:    --policy a,b,... [--dist exp|coxian|bpareto] [--csv|--json]\n"
      "            [--from A --to B --points N] [--reps N] [--completions N]\n"
      "            (policy panel: analysis where available, replicated\n"
      "             simulation elsewhere; bit-identical across --threads)\n"
      "  stability: [--points N] [--csv]\n"
      "  global:   --json-errors (structured error JSON on stdout)\n"
      "            --metrics[=file] (obs counter dump; docs/observability.md)\n"
      "            --trace=file (Chrome trace-event JSON of solver spans)\n"
      "            --timeout-ms X (wall-clock budget; deadline exit = 7)\n"
      "            --fault site:count:kind[,...] (needs CSQ_FAULT_INJECTION)\n"
      "exit codes: 0 ok, 1 internal, 2 invalid input, 3 unstable,\n"
      "            4 not converged, 5 ill-conditioned, 6 verification failed,\n"
      "            7 deadline exceeded, 8 cancelled, 9 overloaded (csq_serve),\n"
      "            10 corrupt journal/checkpoint\n";
}

// Exit code per taxonomy code (documented in usage()).
int exit_code(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return 0;
    case ErrorCode::kInvalidInput: return 2;
    case ErrorCode::kUnstable: return 3;
    case ErrorCode::kNotConverged: return 4;
    case ErrorCode::kIllConditioned: return 5;
    case ErrorCode::kVerificationFailed: return 6;
    case ErrorCode::kDeadlineExceeded: return 7;
    case ErrorCode::kCancelled: return 8;
    case ErrorCode::kOverloaded: return 9;
    case ErrorCode::kCorruptJournal: return 10;
    case ErrorCode::kInternal: return 1;
  }
  return 1;
}

int report_error(const SolverStatus& status, bool json) {
  if (json) {
    std::cout << status.to_json() << "\n";
  } else {
    std::cerr << "error [" << error_code_name(status.code) << "]: " << status.message
              << "\n";
    const std::string diag = status.diagnostics.to_json();
    if (diag != "{}") std::cerr << "diagnostics: " << diag << "\n";
  }
  return exit_code(status.code);
}

[[nodiscard]] bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return false;
  out << content;
  return out.good();
}

// --metrics[=file] and --trace=file run after the command (even a failed
// one: a trace of the run that errored is exactly the interesting trace).
// Returns 0, or exit code 2 when a requested file cannot be written.
int write_observability(const Args& a) {
  int rc = 0;
  if (a.has("metrics")) {
    const std::string dest = a.text("metrics", "1");
    const std::string json = obs::Registry::instance().metrics_json();
    if (dest == "1") {
      std::cout << json;
    } else if (!write_file(dest, json)) {
      std::cerr << "error: cannot write metrics file '" << dest << "'\n";
      rc = 2;
    }
  }
  if (a.has("trace")) {
    const std::string dest = a.text("trace", "1");
    if (dest == "1") {
      std::cerr << "error: --trace needs a file name (--trace=out.json)\n";
      rc = 2;
    } else if (!write_file(dest, obs::chrome_trace_json())) {
      std::cerr << "error: cannot write trace file '" << dest << "'\n";
      rc = 2;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  try {
    a = parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  const bool json_errors = a.has("json-errors");
  // Switch tracing on before dispatch so every solver-stage span records.
  if (a.has("trace")) obs::set_tracing(true);
  int rc = 0;
  try {
    if (a.has("fault")) {
      // Arm before dispatch so every command can be chaos-tested. Rejected
      // with InvalidInputError when fault injection is not compiled in.
      std::string specs = a.text("fault", "");
      std::size_t start = 0;
      while (start <= specs.size()) {
        const std::size_t comma = specs.find(',', start);
        const std::string one =
            specs.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
        if (!one.empty()) fault::arm(fault::parse_arm_spec(one));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }
    const auto dispatch = [&]() -> int {
      if (a.command == "analyze") return cmd_analyze(a);
      if (a.command == "simulate") return cmd_simulate(a);
      if (a.command == "sweep") return cmd_sweep(a);
      if (a.command == "stability") return cmd_stability(a);
      // Hidden maintenance flag: proves the csq_lint suppression parser and
      // the semantic index on the installed binary (the CI matrix runs it
      // before trusting lint output).
      if (a.command == "--lint-selftest") {
        bool sup_ok = false;
        bool idx_ok = false;
        std::cout << lint::suppression_selftest(&sup_ok);
        std::cout << lint::index_selftest(&idx_ok);
        return (sup_ok && idx_ok) ? 0 : exit_code(ErrorCode::kVerificationFailed);
      }
      usage();
      return a.command.empty() ? 1 : 2;
    };
    rc = dispatch();
  } catch (const Error& e) {
    rc = report_error(e.status(), json_errors);
  } catch (const std::exception& e) {
    rc = report_error(status_from_exception(e), json_errors);
  }
  const int obs_rc = write_observability(a);
  return rc != 0 ? rc : obs_rc;
}
