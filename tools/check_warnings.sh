#!/usr/bin/env sh
# Strict-build gate (CI; also handy locally before a PR):
#   1. Build the whole tree -Wall -Wextra -Werror in a scratch dir so
#      warning regressions fail fast (covers src/parallel and the new
#      test/bench binaries).
#   2. Build the ThreadSanitizer configuration (-DCSQ_TSAN=ON) and run the
#      concurrency suite (`ctest -L parallel`) under it: the work-stealing
#      pool's race gate. Skip with CSQ_SKIP_TSAN=1 for a warnings-only pass.
#
# usage: tools/check_warnings.sh [build-dir] [tsan-build-dir]
#        (defaults: build-werror, build-tsan)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-werror"}
tsan_dir=${2:-"$repo_root/build-tsan"}

cmake -B "$build_dir" -S "$repo_root" -DCSQ_WERROR=ON >/dev/null
cmake --build "$build_dir" -j
echo "check_warnings: OK (no warnings under -Wall -Wextra -Werror)"

if [ "${CSQ_SKIP_TSAN:-0}" = "1" ]; then
  echo "check_warnings: skipping ThreadSanitizer gate (CSQ_SKIP_TSAN=1)"
  exit 0
fi

cmake -B "$tsan_dir" -S "$repo_root" -DCSQ_TSAN=ON -DCSQ_WERROR=ON >/dev/null
cmake --build "$tsan_dir" -j --target csq_parallel_tests
(cd "$tsan_dir" && ctest -L parallel --output-on-failure)
echo "check_warnings: OK (parallel suite clean under ThreadSanitizer)"
