#!/usr/bin/env sh
# Build the whole tree with -Wall -Wextra -Werror in a scratch build dir so
# warning regressions fail fast (CI gate; also handy locally before a PR).
#
# usage: tools/check_warnings.sh [build-dir]   (default: build-werror)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-werror"}

cmake -B "$build_dir" -S "$repo_root" -DCSQ_WERROR=ON >/dev/null
cmake --build "$build_dir" -j
echo "check_warnings: OK (no warnings under -Wall -Wextra -Werror)"
