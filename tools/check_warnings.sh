#!/usr/bin/env sh
# Staged strict-build matrix (CI; also handy locally before a PR). Stages
# run in order and the script exits nonzero at the first failing stage
# (fail-fast), printing a per-stage summary either way:
#
#   werror      whole tree under -Wall -Wextra -Werror
#   asan-ubsan  ASan+UBSan build, tier1 + kernels + policies + properties
#               suites under it                          (CSQ_SKIP_ASAN=1)
#   tsan        TSan build, `ctest -L parallel`, `-L serve`, `-L durable`
#               and `-L policies` under it               (CSQ_SKIP_TSAN=1)
#   chaos       fault-injection build (ASan+UBSan, -DCSQ_FAULT_INJECTION=ON),
#               `ctest -L chaos` under it                (CSQ_SKIP_CHAOS=1)
#   serve       csq_serve end-to-end under ASan: SIGTERM mid-load must drain
#               cleanly (exit 0) and flush the metrics file
#                                                        (CSQ_SKIP_SERVE=1)
#   durable     `ctest -L durable` (journal/checkpoint/crash suites) under
#               ASan, the fault-injected journal drill under the chaos
#               build, then the end-to-end SIGKILL harness
#               tools/chaos_crash.sh against the ASan binaries
#                                                        (CSQ_SKIP_DURABLE=1)
#   obs         `ctest -L obs` under the TSan build (counter/span thread
#               safety), plus a -DCSQ_OBS=OFF -Werror build proving the
#               compiled-out configuration stays warning-free
#                                                        (CSQ_SKIP_OBS=1)
#   bench       fresh guarded-benchmark run vs newest committed BENCH_*.json;
#               fails if BM_AnalyzeCscq (+10%), BM_AnalyzeBatch30 (+15%) or
#               the 1-thread sweep panel (+15%) regresses, or if
#               BM_JournalAppend blows its absolute 5 µs/request cap
#                                                        (CSQ_SKIP_BENCH=1)
#   clang-tidy  src/ against .clang-tidy, if clang-tidy is installed
#   csq-lint    project invariants: csq_lint --selftest, JSON-checked repo
#               scan under a 2s wall-clock budget, cold/warm --cache parity,
#               SARIF artifact emitted to the build dir
#
# usage: tools/check_warnings.sh [build-dir] [tsan-build-dir] [asan-build-dir]
#        (defaults: build-werror, build-tsan, build-asan; the chaos stage
#        builds in build-chaos)
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-werror"}
tsan_dir=${2:-"$repo_root/build-tsan"}
asan_dir=${3:-"$repo_root/build-asan"}

summary=""
note() {
  summary="${summary}check_warnings: $1
"
  printf 'check_warnings: %s\n' "$1"
}
finish() {
  printf '\n===== check_warnings summary =====\n%s' "$summary"
}
fail() {
  note "FAIL  $1"
  finish
  exit 1
}

# --- stage 1: -Werror -------------------------------------------------------
cmake -B "$build_dir" -S "$repo_root" -DCSQ_WERROR=ON >/dev/null || fail "werror (configure)"
cmake --build "$build_dir" -j || fail "werror (build)"
note "PASS  werror      (no warnings under -Wall -Wextra -Werror)"

# --- stage 2: ASan + UBSan --------------------------------------------------
if [ "${CSQ_SKIP_ASAN:-0}" = "1" ]; then
  note "SKIP  asan-ubsan  (CSQ_SKIP_ASAN=1)"
else
  cmake -B "$asan_dir" -S "$repo_root" -DCSQ_SANITIZE=ON -DCSQ_WERROR=ON >/dev/null \
    || fail "asan-ubsan (configure)"
  cmake --build "$asan_dir" -j || fail "asan-ubsan (build)"
  (cd "$asan_dir" && ctest -L tier1 --output-on-failure) || fail "asan-ubsan (tier1 suite)"
  # The kernel-equivalence suite rides in tier1, but run it by label too so
  # a relabel can never silently drop the restrict-pointer kernels from the
  # ASan net (they are the code most worth running under it).
  (cd "$asan_dir" && ctest -L kernels --output-on-failure) || fail "asan-ubsan (kernels suite)"
  # Same insurance for the policy zoo and the property suite: both ride in
  # tier1, but run them by label so a relabel can never silently drop the
  # newest policies' event loops from the ASan net.
  (cd "$asan_dir" && ctest -L policies --output-on-failure) || fail "asan-ubsan (policies suite)"
  (cd "$asan_dir" && ctest -L properties --output-on-failure) || fail "asan-ubsan (properties suite)"
  note "PASS  asan-ubsan  (tier1 + kernels + policies + properties suites clean under ASan+UBSan)"
fi

# --- stage 3: TSan ----------------------------------------------------------
if [ "${CSQ_SKIP_TSAN:-0}" = "1" ]; then
  note "SKIP  tsan        (CSQ_SKIP_TSAN=1)"
else
  cmake -B "$tsan_dir" -S "$repo_root" -DCSQ_TSAN=ON -DCSQ_WERROR=ON >/dev/null \
    || fail "tsan (configure)"
  cmake --build "$tsan_dir" -j --target csq_parallel_tests || fail "tsan (build)"
  (cd "$tsan_dir" && ctest -L parallel --output-on-failure) || fail "tsan (parallel suite)"
  # The server's submit/worker/drain handshake is the other cross-thread
  # surface: run the serve suite (soak included) under the same build. The
  # serve label also carries the sh tests that exec the csq_serve binary, so
  # build both targets.
  cmake --build "$tsan_dir" -j --target csq_serve_tests csq_serve \
    || fail "tsan (serve build)"
  (cd "$tsan_dir" && ctest -L serve --output-on-failure) || fail "tsan (serve suite)"
  # The journal sits on the submit/finish seam (append under the server lock,
  # fsync batching): run the durable suite under the same build. The crash
  # drills exec csq_serve/csq_cli, so build those too.
  cmake --build "$tsan_dir" -j --target csq_durable_tests csq_cli \
    || fail "tsan (durable build)"
  (cd "$tsan_dir" && ctest -L durable --output-on-failure) || fail "tsan (durable suite)"
  # The policy suite's determinism tests replicate across thread counts on
  # the steal pool, so its cross-thread hand-offs belong under TSan too.
  cmake --build "$tsan_dir" -j --target csq_policies_tests \
    || fail "tsan (policies build)"
  (cd "$tsan_dir" && ctest -L policies --output-on-failure) || fail "tsan (policies suite)"
  note "PASS  tsan        (parallel + serve + durable + policies suites clean under ThreadSanitizer)"
fi

# --- stage 4: chaos (fault injection under ASan+UBSan) ----------------------
if [ "${CSQ_SKIP_CHAOS:-0}" = "1" ]; then
  note "SKIP  chaos       (CSQ_SKIP_CHAOS=1)"
else
  chaos_dir="$repo_root/build-chaos"
  cmake -B "$chaos_dir" -S "$repo_root" -DCSQ_FAULT_INJECTION=ON -DCSQ_SANITIZE=ON \
    -DCSQ_WERROR=ON >/dev/null || fail "chaos (configure)"
  cmake --build "$chaos_dir" -j || fail "chaos (build)"
  (cd "$chaos_dir" && ctest -L chaos --output-on-failure) || fail "chaos (chaos suite)"
  note "PASS  chaos       (fault-injected ladder clean under ASan+UBSan)"
fi

# --- stage 5: serve (SIGTERM drain end-to-end under ASan) --------------------
if [ "${CSQ_SKIP_SERVE:-0}" = "1" ]; then
  note "SKIP  serve       (CSQ_SKIP_SERVE=1)"
elif [ "${CSQ_SKIP_ASAN:-0}" = "1" ]; then
  note "SKIP  serve       (needs the asan stage's build)"
else
  cmake --build "$asan_dir" -j --target csq_serve || fail "serve (build)"
  serve_tmp=$(mktemp -d)
  # Drip a mixed request stream (valid analyzes + hostile lines) and SIGTERM
  # the server mid-load. The drain contract: every admitted request is still
  # answered, the metrics file is flushed, and the exit code is 0 — under
  # ASan, so a leaked worker or use-after-drain fails the stage too.
  (
    i=0
    while [ "$i" -lt 40 ]; do
      printf '{"id":"s%d","op":"analyze","rho_s":0.5,"rho_l":0.5}\n' "$i"
      printf 'not json\n'
      i=$((i + 1))
      sleep 0.05
    done
  ) | "$asan_dir/tools/csq_serve" --workers 2 \
        --metrics="$serve_tmp/metrics.json" > "$serve_tmp/responses.ndjson" &
  serve_pid=$!
  sleep 1
  kill -TERM "$serve_pid" 2>/dev/null
  wait "$serve_pid"
  serve_rc=$?
  [ "$serve_rc" -eq 0 ] || fail "serve (SIGTERM drain exited $serve_rc, want 0)"
  grep -q 'serve.requests.admitted' "$serve_tmp/metrics.json" \
    || fail "serve (metrics file missing serve.requests.admitted)"
  grep -q '"ok":true' "$serve_tmp/responses.ndjson" \
    || fail "serve (no successful responses before the drain)"
  grep -q '"ok":false' "$serve_tmp/responses.ndjson" \
    || fail "serve (hostile lines produced no error responses)"
  rm -rf "$serve_tmp"
  note "PASS  serve       (SIGTERM mid-load drained cleanly under ASan, metrics flushed)"
fi

# --- stage 6: durable (crash-safety suites + SIGKILL harness) ----------------
if [ "${CSQ_SKIP_DURABLE:-0}" = "1" ]; then
  note "SKIP  durable     (CSQ_SKIP_DURABLE=1)"
elif [ "${CSQ_SKIP_ASAN:-0}" = "1" ]; then
  note "SKIP  durable     (needs the asan stage's build)"
else
  # Journal/checkpoint unit suites plus the in-process fork/exec crash drills,
  # all under ASan so recovery-path leaks and buffer slips fail the stage.
  cmake --build "$asan_dir" -j --target csq_durable_tests csq_serve csq_cli \
    || fail "durable (build)"
  (cd "$asan_dir" && ctest -L durable --output-on-failure) || fail "durable (suite)"
  # The journal-append fault drill (admission must be refused loudly, never
  # silently dropped) needs -DCSQ_FAULT_INJECTION=ON; it self-skips elsewhere,
  # so run the suite once more under the chaos stage's build.
  if [ "${CSQ_SKIP_CHAOS:-0}" != "1" ]; then
    cmake --build "$repo_root/build-chaos" -j --target csq_durable_tests csq_serve csq_cli \
      || fail "durable (fault-injection build)"
    (cd "$repo_root/build-chaos" && ctest -L durable --output-on-failure) \
      || fail "durable (suite under fault injection)"
  fi
  # End-to-end: SIGKILL the real binaries mid-load and mid-sweep, recover,
  # and hold the exactly-once / byte-identity / resume-identical contracts.
  "$repo_root/tools/chaos_crash.sh" "$asan_dir" || fail "durable (chaos_crash.sh)"
  note "PASS  durable     (ctest -L durable + SIGKILL chaos harness clean under ASan)"
fi

# --- stage 7: obs (thread safety + compiled-out build) -----------------------
if [ "${CSQ_SKIP_OBS:-0}" = "1" ]; then
  note "SKIP  obs         (CSQ_SKIP_OBS=1)"
else
  if [ "${CSQ_SKIP_TSAN:-0}" = "1" ]; then
    note "SKIP  obs-tsan    (needs the tsan stage's build)"
  else
    # Counters are bumped from pool workers and spans close concurrently:
    # run the obs suite under the TSan build from stage 3.
    cmake --build "$tsan_dir" -j --target csq_obs_tests || fail "obs (tsan build)"
    (cd "$tsan_dir" && ctest -L obs --output-on-failure) || fail "obs (suite under TSan)"
  fi
  # The zero-overhead contract: the whole tree (including the obs suite,
  # which branches on obs::compiled_in()) must build warning-free with the
  # macros compiled out.
  obs_off_dir="$repo_root/build-obs-off"
  cmake -B "$obs_off_dir" -S "$repo_root" -DCSQ_OBS=OFF -DCSQ_WERROR=ON >/dev/null \
    || fail "obs (CSQ_OBS=OFF configure)"
  cmake --build "$obs_off_dir" -j || fail "obs (CSQ_OBS=OFF build)"
  (cd "$obs_off_dir" && ctest -L obs --output-on-failure) || fail "obs (suite with obs off)"
  note "PASS  obs         (TSan-clean counters/spans; CSQ_OBS=OFF builds and passes)"
fi

# --- stage 8: bench (perf regression gate) -----------------------------------
if [ "${CSQ_SKIP_BENCH:-0}" = "1" ]; then
  note "SKIP  bench       (CSQ_SKIP_BENCH=1)"
else
  # A fresh run of the guarded benchmarks against the newest committed
  # BENCH_*.json snapshot: tools/bench_compare.py fails the stage when any
  # guard exceeds its own budget (BM_AnalyzeCscq +10%, BM_AnalyzeBatch30
  # +15%, the 1-thread sweep panel +15%, BM_JournalAppend 5 µs absolute).
  # Uses the plain `build` tree — the
  # sanitizer builds above would measure the sanitizer, and the werror tree
  # does not enable benchmarks by default.
  bench_dir="$repo_root/build"
  cmake -B "$bench_dir" -S "$repo_root" >/dev/null || fail "bench (configure)"
  cmake --build "$bench_dir" -j --target perf_solver || fail "bench (build)"
  bench_tmp=$(mktemp)
  "$repo_root/tools/bench_json.sh" "$bench_dir" "$bench_tmp" \
    --benchmark_filter='BM_Analyze.*|BM_Journal.*|BM_SweepPanel30Points/threads:1/' \
    --benchmark_min_time=2 \
    || { rm -f "$bench_tmp"; fail "bench (run)"; }
  python3 "$repo_root/tools/bench_compare.py" "$bench_tmp" \
    || { rm -f "$bench_tmp"; fail "bench (guarded benchmark regressed vs committed baseline)"; }
  rm -f "$bench_tmp"
  note "PASS  bench       (guarded benchmarks within budget vs committed baseline)"
fi

# --- stage 9: clang-tidy (optional tool) ------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json is exported by the werror configure above.
  find "$repo_root/src" -name '*.cc' -print0 \
    | xargs -0 clang-tidy -p "$build_dir" --quiet --warnings-as-errors='*' \
    || fail "clang-tidy"
  note "PASS  clang-tidy  (src/ clean against .clang-tidy)"
else
  note "SKIP  clang-tidy  (not installed)"
fi

# --- stage 10: csq_lint -----------------------------------------------------
cmake --build "$build_dir" -j --target csq_lint || fail "csq-lint (build)"
"$build_dir/tools/csq_lint" --selftest >/dev/null || fail "csq-lint (selftest)"
# Machine-checked repo scan: parse the JSON document instead of trusting the
# exit code alone, and hold the full-tree run to a 2-second wall-clock budget
# (the incremental index exists so the gate stays effectively free; a blown
# budget means the indexer regressed). Cold run primes the cache, warm run
# must agree with it.
lint_tmp=$(mktemp -d)
lint_cold_start=$(date +%s%N 2>/dev/null || date +%s)
"$build_dir/tools/csq_lint" --root "$repo_root" --format=json \
  --cache "$lint_tmp/index.cache" > "$lint_tmp/cold.json" \
  || { rm -rf "$lint_tmp"; fail "csq-lint (repo scan)"; }
lint_cold_end=$(date +%s%N 2>/dev/null || date +%s)
case "$lint_cold_start" in
  *[!0-9]*) : ;;  # date without %N support: skip the budget check
  *)
    lint_ms=$(( (lint_cold_end - lint_cold_start) / 1000000 ))
    [ "$lint_ms" -le 2000 ] \
      || { rm -rf "$lint_tmp"; fail "csq-lint (cold scan took ${lint_ms}ms, budget 2000ms)"; }
    ;;
esac
python3 - "$lint_tmp/cold.json" <<'PY' || { rm -rf "$lint_tmp"; fail "csq-lint (JSON document malformed)"; }
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["tool"] == "csq_lint", doc
assert doc["count"] == len(doc["findings"]) == 0, doc["findings"][:5]
PY
"$build_dir/tools/csq_lint" --root "$repo_root" --format=json \
  --cache "$lint_tmp/index.cache" > "$lint_tmp/warm.json" \
  || { rm -rf "$lint_tmp"; fail "csq-lint (warm cached scan)"; }
cmp -s "$lint_tmp/cold.json" "$lint_tmp/warm.json" \
  || { rm -rf "$lint_tmp"; fail "csq-lint (cold vs warm cache runs disagree)"; }
rm -rf "$lint_tmp"
# SARIF artifact for code-scanning upload; validated structurally so a
# serialization regression fails here, not in the consumer.
"$build_dir/tools/csq_lint" --root "$repo_root" --format=sarif > "$build_dir/lint.sarif" \
  || fail "csq-lint (SARIF emit)"
python3 "$repo_root/tools/validate_sarif.py" "$build_dir/lint.sarif" \
  || fail "csq-lint (SARIF artifact invalid)"
note "PASS  csq-lint    (repo clean in <2s, cache stable, SARIF at build/lint.sarif)"

finish
